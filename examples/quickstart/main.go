// Quickstart: run one built-in benchmark under two configurations and
// compare the three measurements the paper reports.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"denovogpu"
)

func main() {
	// SPM_G: a spin mutex with globally scoped synchronization — the
	// kind of fine-grained synchronization conventional GPU coherence
	// handles poorly (paper Figure 3).
	const bench = "SPM_G"

	gpu, err := denovogpu.RunByName(denovogpu.GD(), bench)
	if err != nil {
		log.Fatal(err)
	}
	dnv, err := denovogpu.RunByName(denovogpu.DD(), bench)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s — conventional GPU coherence (GD) vs DeNovo (DD), both DRF:\n\n", bench)
	fmt.Printf("%-18s %15s %15s %9s\n", "metric", "GD", "DD", "DD/GD")
	row := func(name string, g, d float64, unit string) {
		fmt.Printf("%-18s %12.0f %s %12.0f %s %8.0f%%\n", name, g, unit, d, unit, 100*d/g)
	}
	row("execution time", float64(gpu.Cycles), float64(dnv.Cycles), "cyc")
	row("dynamic energy", gpu.TotalEnergyPJ()/1e6, dnv.TotalEnergyPJ()/1e6, " uJ")
	row("network traffic", float64(gpu.TotalFlits()), float64(dnv.TotalFlits()), "flt")

	fmt.Printf("\nWhy: DeNovo registers synchronization variables and written data\n")
	fmt.Printf("in the L1, so critical sections hit locally instead of round-tripping\n")
	fmt.Printf("to the L2 every time:\n")
	fmt.Printf("  GD atomics executed remotely at L2: %d\n", gpu.Stats.Get("l1.atomics_remote"))
	fmt.Printf("  DD sync hits in L1:                 %d (misses: %d)\n",
		dnv.Stats.Get("l1.sync_hits"), dnv.Stats.Get("l1.sync_misses"))
}
