// Scopes contrasts the consistency models on the same program: a
// per-CU lock protecting per-CU data, annotated with local scope. Under
// HRF (GH, DH) the annotation keeps every lock operation in the L1;
// under DRF (GD, DD) the annotation is ignored and every lock operation
// is globally ordered. The program is identical and verified in all
// cases — only the cost changes, which is the paper's central
// programmability argument: scopes are a performance annotation that a
// DRF machine can safely ignore, not a correctness obligation.
//
//	go run ./examples/scopes
package main

import (
	"fmt"
	"log"

	"denovogpu"
)

const (
	iters   = 60
	threads = 32
)

func main() {
	lockBase := denovogpu.Addr(0x10_0000)
	dataBase := denovogpu.Addr(0x20_0000)

	kernel := func(c *denovogpu.Ctx) {
		// Stride the per-CU variables so each CU's lock is homed at a
		// *different* node's L2 bank — otherwise every global atomic
		// would be a same-node access and the comparison would hide
		// GD's remote-synchronization cost.
		lock := lockBase + denovogpu.Addr(64*(5*c.CU+1))
		data := dataBase + denovogpu.Addr(64*(5*c.CU+1))
		for i := 0; i < iters; i++ {
			for c.AtomicCAS(lock, 0, 1, denovogpu.ScopeLocal) != 0 {
				c.Wait(8)
			}
			c.Store(data, c.Load(data)+1)
			c.AtomicStore(lock, 0, denovogpu.ScopeLocal)
		}
	}
	verify := func(h denovogpu.Host) error {
		for cu := 0; cu < h.NumCUs(); cu++ {
			want := uint32(3 * iters) // 3 blocks per CU
			if got := h.Read(dataBase + denovogpu.Addr(64*(5*cu+1))); got != want {
				return fmt.Errorf("CU %d counter = %d, want %d", cu, got, want)
			}
		}
		return nil
	}

	fmt.Println("Per-CU locking with ScopeLocal annotations, all five configurations:")
	fmt.Printf("\n%-8s %12s %14s %16s %18s\n", "config", "cycles", "total flits", "atomic flits", "scope honored?")
	for _, cfg := range denovogpu.AllConfigs() {
		rep, err := denovogpu.RunKernel(cfg, "scopes", kernel, 45, threads, nil, verify)
		if err != nil {
			log.Fatal(err)
		}
		honored := "yes (HRF)"
		if cfg.Model == denovogpu.DRF {
			honored = "no (DRF: treated global)"
		}
		fmt.Printf("%-8s %12d %14d %16d   %s\n",
			rep.Config, rep.Cycles, rep.TotalFlits(), rep.Flits[3], honored)
	}
	fmt.Println("\nDeNovo under DRF (DD) needs no scope to stay fast: after the first")
	fmt.Println("access it owns the lock word, so 'global' synchronization already")
	fmt.Println("executes in the L1 — the paper's case against scoped models.")
}
