// Globalsync reproduces the shape of the paper's Figure 3: on
// benchmarks whose fine-grained synchronization genuinely needs global
// scope, DeNovo's ownership-based protocol beats conventional GPU
// coherence on execution time, energy, and traffic — and HRF cannot
// help, because there is no local scope to exploit.
//
//	go run ./examples/globalsync
package main

import (
	"fmt"
	"log"

	"denovogpu"
	"denovogpu/internal/stats"
)

func main() {
	benches := []string{"FAM_G", "SLM_G", "SPM_G", "SPMBO_G"}
	fmt.Println("Globally scoped synchronization microbenchmarks, D* vs G*")
	fmt.Println("(normalized to G*; lower is better — paper Figure 3)")
	fmt.Printf("\n%-10s %12s %12s %12s\n", "benchmark", "exec time", "energy", "traffic")

	var sumT, sumE, sumF float64
	for _, b := range benches {
		g, err := denovogpu.RunByName(denovogpu.GD(), b)
		if err != nil {
			log.Fatal(err)
		}
		d, err := denovogpu.RunByName(denovogpu.DD(), b)
		if err != nil {
			log.Fatal(err)
		}
		rt := 100 * float64(d.Cycles) / float64(g.Cycles)
		re := 100 * d.TotalEnergyPJ() / g.TotalEnergyPJ()
		rf := 100 * float64(d.TotalFlits()) / float64(g.TotalFlits())
		sumT += rt
		sumE += re
		sumF += rf
		fmt.Printf("%-10s %11.0f%% %11.0f%% %11.0f%%\n", b, rt, re, rf)

		if b == "SPM_G" {
			// Show where the traffic goes, like Figure 3c's stacks.
			fmt.Printf("           traffic classes (G* -> D*):")
			for c := stats.TrafficClass(0); c < stats.NumTrafficClasses; c++ {
				fmt.Printf("  %s %d->%d", c, g.Flits[c], d.Flits[c])
			}
			fmt.Println()
		}
	}
	n := float64(len(benches))
	fmt.Printf("%-10s %11.0f%% %11.0f%% %11.0f%%\n", "AVG", sumT/n, sumE/n, sumF/n)
	fmt.Println("\nPaper reports D* at 72% exec time, 49% energy, 19% traffic on average.")
}
