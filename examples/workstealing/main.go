// Workstealing runs UTS — dynamic work stealing with per-CU local
// queues and a global overflow queue — under all five configurations.
// Dynamic sharing is where scopes struggle (paper Table 2's last row):
// a scoped protocol must conservatively use global scope wherever data
// might migrate, while DeNovo's ownership adapts at word granularity.
//
//	go run ./examples/workstealing
package main

import (
	"fmt"
	"log"

	"denovogpu"
)

func main() {
	fmt.Println("UTS (unbalanced tree search) under the five configurations:")
	fmt.Printf("\n%-8s %14s %14s %14s %10s\n", "config", "cycles", "energy (uJ)", "flits", "vs GD")
	var base float64
	for _, cfg := range denovogpu.AllConfigs() {
		rep, err := denovogpu.RunByName(cfg, "UTS")
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = float64(rep.Cycles)
		}
		fmt.Printf("%-8s %14d %14.1f %14d %9.0f%%\n",
			rep.Config, rep.Cycles, rep.TotalEnergyPJ()/1e6, rep.TotalFlits(),
			100*float64(rep.Cycles)/base)
	}
	fmt.Println("\nEvery configuration computes the identical traversal (the runs are")
	fmt.Println("verified against the host-side tree walk); they differ only in how")
	fmt.Println("the memory system carries the same sharing pattern.")
}
