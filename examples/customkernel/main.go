// Customkernel shows how to write your own workload against the device
// API: a producer-consumer pipeline where stage-one blocks publish
// results under a flag (release store) and stage-two blocks consume
// them (acquire loads) — classic fine-grained synchronization that
// conventional GPU coherence supports poorly.
//
//	go run ./examples/customkernel
package main

import (
	"fmt"
	"log"

	"denovogpu"
)

const (
	nChunks = 30
	chunkSz = 64 // words per chunk
	threads = 32
)

func main() {
	var (
		data  = denovogpu.Addr(0x10_0000)
		flags = denovogpu.Addr(0x20_0000) // one flag line per chunk
		out   = denovogpu.Addr(0x30_0000)
	)
	flagAt := func(i int) denovogpu.Addr { return flags + denovogpu.Addr(64*i) }

	// Producers (even blocks) square chunk values and publish; consumers
	// (odd blocks) wait for their chunk's flag and sum it.
	kernel := func(c *denovogpu.Ctx) {
		chunk := c.TB / 2
		base := data + denovogpu.Addr(4*chunkSz*chunk)
		if c.TB%2 == 0 { // producer
			for off := 0; off < chunkSz; off += threads {
				v := c.LoadStride(base + denovogpu.Addr(4*off))
				for i := range v {
					v[i] = v[i] * v[i]
				}
				c.StoreStride(base+denovogpu.Addr(4*off), v)
			}
			c.AtomicStore(flagAt(chunk), 1, denovogpu.ScopeGlobal) // release
			return
		}
		for c.AtomicLoad(flagAt(chunk), denovogpu.ScopeGlobal) == 0 { // acquire
			c.Compute(30)
		}
		var sum uint32
		for off := 0; off < chunkSz; off += threads {
			for _, v := range c.LoadStride(base + denovogpu.Addr(4*off)) {
				sum += v
			}
		}
		c.Store(out+denovogpu.Addr(4*chunk), sum)
	}

	setup := func(h denovogpu.Host) {
		for i := 0; i < nChunks*chunkSz; i++ {
			h.Write(data+denovogpu.Addr(4*i), uint32(i%100))
		}
	}
	verify := func(h denovogpu.Host) error {
		for chunk := 0; chunk < nChunks; chunk++ {
			var want uint32
			for i := 0; i < chunkSz; i++ {
				v := uint32((chunk*chunkSz + i) % 100)
				want += v * v
			}
			if got := h.Read(out + denovogpu.Addr(4*chunk)); got != want {
				return fmt.Errorf("chunk %d sum = %d, want %d", chunk, got, want)
			}
		}
		return nil
	}

	fmt.Println("Producer-consumer pipeline (custom kernel) under GD and DD:")
	for _, cfg := range []denovogpu.Config{denovogpu.GD(), denovogpu.DD()} {
		rep, err := denovogpu.RunKernel(cfg, "pipeline", kernel, 2*nChunks, threads, setup, verify)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s %10d cycles, %8.1f uJ, %9d flits (verified)\n",
			rep.Config, rep.Cycles, rep.TotalEnergyPJ()/1e6, rep.TotalFlits())
	}
	fmt.Println("\nThe consumer's acquire invalidates the whole L1 under GPU coherence,")
	fmt.Println("but spares owned (registered) words under DeNovo — so the producer's")
	fmt.Println("just-written chunk streams from the owner's L1 instead of the L2.")
}
