// Benchmark harness: one benchmark function per paper table/figure.
// Each runs the corresponding experiment matrix and reports the paper's
// metrics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates every number EXPERIMENTS.md records. The "sim_" metrics
// are simulated quantities (cycles, picojoules, flit crossings), not
// wall-clock performance of the simulator itself.
package denovogpu_test

import (
	"fmt"
	"testing"

	"denovogpu"
	"denovogpu/internal/figures"
)

// report attaches one run's three headline metrics to the bench.
func report(b *testing.B, suffix string, r *figures.Run) {
	b.Helper()
	if r == nil || r.Err != nil {
		b.Fatalf("%s: %v", suffix, r.Err)
	}
	b.ReportMetric(float64(r.Report.Cycles), "sim_cycles_"+suffix)
	b.ReportMetric(r.Report.TotalEnergyPJ()/1e6, "sim_uJ_"+suffix)
	b.ReportMetric(float64(r.Report.TotalFlits()), "sim_flits_"+suffix)
}

// reportAverages attaches the per-config normalized averages (percent
// of baseline) — the numbers the paper quotes in its prose.
func reportAverages(b *testing.B, m *figures.Matrix, baseline string) {
	b.Helper()
	for _, mt := range []figures.Metric{figures.Exec, figures.Energy, figures.Traffic} {
		avg := figures.Average(m.Normalized(mt, baseline), m.Configs)
		for _, cfg := range m.Configs {
			name := map[figures.Metric]string{
				figures.Exec: "avg_exec_pct_", figures.Energy: "avg_energy_pct_", figures.Traffic: "avg_traffic_pct_",
			}[mt] + cfg
			b.ReportMetric(avg[cfg], name)
		}
	}
}

// BenchmarkFig2 regenerates Figure 2 (a: execution time, b: dynamic
// energy, c: network traffic) — ten no-synchronization applications
// under G* and D*, normalized to D*. Paper: G* ≈ D* (within ~1%), D*
// ~5% lower traffic, with a large LAVA traffic gap.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := figures.Fig2(0)
		if err := m.FirstErr(); err != nil {
			b.Fatal(err)
		}
		reportAverages(b, m, "DD")
		report(b, "LAVA_GD", m.Get("LAVA", "GD"))
		report(b, "LAVA_DD", m.Get("LAVA", "DD"))
	}
}

// BenchmarkFig3 regenerates Figure 3 — four globally scoped
// synchronization microbenchmarks under G* and D*, normalized to G*.
// Paper: D* at 72% execution time, 49% energy, 19% traffic on average.
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := figures.Fig3(0)
		if err := m.FirstErr(); err != nil {
			b.Fatal(err)
		}
		reportAverages(b, m, "GD")
	}
}

// BenchmarkFig4 regenerates Figure 4 — nine locally scoped / hybrid
// synchronization benchmarks under all five configurations, normalized
// to GD. Paper: GH ~46% faster than GD; GH modestly (~6%) ahead of DD;
// DD+RO ≈ GH; DH best overall.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := figures.Fig4(0)
		if err := m.FirstErr(); err != nil {
			b.Fatal(err)
		}
		reportAverages(b, m, "GD")
	}
}

// BenchmarkTable3Latencies validates the latency ranges of Table 3.
func BenchmarkTable3Latencies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, r := range figures.Table3Latencies() {
			b.ReportMetric(float64(r.Min), "cyc_min_"+sanitize(r.What))
			b.ReportMetric(float64(r.Max), "cyc_max_"+sanitize(r.What))
		}
	}
}

func sanitize(s string) string {
	out := []rune(s)
	for i, r := range out {
		if r == ' ' {
			out[i] = '_'
		}
	}
	return string(out)
}

// BenchmarkAblationStoreBuffer sweeps the store-buffer size on LAVA
// (DESIGN.md ablation 1): the GPU protocol's traffic blows up once the
// accumulator set no longer fits, while DeNovo is insensitive.
func BenchmarkAblationStoreBuffer(b *testing.B) {
	for _, entries := range []int{64, 256, 1024} {
		entries := entries
		b.Run(fmt.Sprintf("entries=%d", entries), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, mk := range []func() denovogpu.Config{denovogpu.GD, denovogpu.DD} {
					cfg := mk()
					cfg.SBEntries = entries
					rep, err := denovogpu.RunByName(cfg, "LAVA")
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(rep.TotalFlits()), "sim_flits_"+cfg.Name())
					b.ReportMetric(float64(rep.Cycles), "sim_cycles_"+cfg.Name())
				}
			}
		})
	}
}

// BenchmarkAblationMSHRCoalescing toggles DeNovoSync0's same-CU MSHR
// coalescing on the most contended benchmark (DESIGN.md ablation 2).
func BenchmarkAblationMSHRCoalescing(b *testing.B) {
	for _, off := range []bool{false, true} {
		off := off
		name := "coalescing"
		if off {
			name = "no-coalescing"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := denovogpu.DD()
				cfg.NoMSHRCoalescing = off
				rep, err := denovogpu.RunByName(cfg, "SPM_G")
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rep.Cycles), "sim_cycles")
				b.ReportMetric(float64(rep.TotalFlits()), "sim_flits")
			}
		})
	}
}

// BenchmarkAblationReadOnlyRegion isolates the DD -> DD+RO delta on the
// barrier benchmark, whose read-only coefficient table is reloaded
// after every acquire under plain DD but survives under DD+RO.
func BenchmarkAblationReadOnlyRegion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, mk := range []func() denovogpu.Config{denovogpu.DD, denovogpu.DDRO} {
			cfg := mk()
			rep, err := denovogpu.RunByName(cfg, "TBEX_LG")
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(rep.Cycles), "sim_cycles_"+rep.Config)
			b.ReportMetric(float64(rep.TotalFlits()), "sim_flits_"+rep.Config)
		}
	}
}

// BenchmarkAblationSyncBackoff compares DeNovoSync0 with the DeNovoSync
// read-backoff extension on the ticket lock (FAM_G), whose waiters spin
// with synchronization *reads*. The result reproduces the trade-off the
// paper describes in Section 3: backoff cuts ownership ping-pong and
// wire traffic substantially, but on a ticket lock the next waiter is
// always *successful*, so throttling it lands on the critical path and
// costs execution time — which is why the paper sticks to DeNovoSync0.
func BenchmarkAblationSyncBackoff(b *testing.B) {
	for _, backoff := range []bool{false, true} {
		backoff := backoff
		name := "denovosync0"
		if backoff {
			name = "denovosync-backoff"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := denovogpu.DD()
				cfg.SyncBackoff = backoff
				rep, err := denovogpu.RunByName(cfg, "FAM_G")
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rep.Cycles), "sim_cycles")
				b.ReportMetric(float64(rep.TotalFlits()), "sim_flits")
				b.ReportMetric(float64(rep.Stats.Get("l1.ownership_transfers")), "sim_transfers")
			}
		})
	}
}

// BenchmarkAblationDirectTransfer evaluates direct cache-to-cache
// transfers (the paper's future-work optimization for remote L1 hits)
// on the tree barrier, whose exchange phase reads remotely owned data
// every iteration.
func BenchmarkAblationDirectTransfer(b *testing.B) {
	for _, direct := range []bool{false, true} {
		direct := direct
		name := "registry-path"
		if direct {
			name = "direct-transfer"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := denovogpu.DD()
				cfg.DirectTransfer = direct
				rep, err := denovogpu.RunByName(cfg, "TB_LG")
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rep.Cycles), "sim_cycles")
				b.ReportMetric(float64(rep.Stats.Get("l1.direct_reads_served")), "sim_direct_hits")
			}
		})
	}
}

// BenchmarkExtensionMESI runs the extension configuration (conventional
// directory MESI — Table 1's first row, which the paper classifies but
// does not evaluate) against GD and DD on one benchmark from each
// group, quantifying the "poor fit" the paper asserts: invalidation and
// ack traffic plus write-for-ownership stalls on streaming kernels,
// against competitive behaviour on fine-grained synchronization.
func BenchmarkExtensionMESI(b *testing.B) {
	for _, bench := range []string{"PF", "FAM_G", "SPM_L"} {
		bench := bench
		b.Run(bench, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, cfg := range []denovogpu.Config{denovogpu.GD(), denovogpu.DD(), denovogpu.MESI()} {
					rep, err := denovogpu.RunByName(cfg, bench)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(rep.Cycles), "sim_cycles_"+cfg.Name())
					b.ReportMetric(float64(rep.TotalFlits()), "sim_flits_"+cfg.Name())
				}
			}
		})
	}
}

// BenchmarkAblationL1Size sweeps the L1 capacity on the tree barrier,
// whose per-iteration exchange working set stresses residency:
// DeNovo's registered-data reuse depends on written working sets
// staying resident, so small L1s force writebacks and erode its
// advantage.
func BenchmarkAblationL1Size(b *testing.B) {
	for _, kb := range []int{4, 8, 32} {
		kb := kb
		b.Run(fmt.Sprintf("l1=%dKB", kb), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, mk := range []func() denovogpu.Config{denovogpu.GD, denovogpu.DD} {
					cfg := mk()
					cfg.L1Bytes = kb * 1024
					rep, err := denovogpu.RunByName(cfg, "TB_LG")
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(rep.Cycles), "sim_cycles_"+cfg.Name())
					b.ReportMetric(float64(rep.Stats.Get("l1.writebacks")), "sim_writebacks_"+cfg.Name())
				}
			}
		})
	}
}
