package denovogpu_test

import (
	"fmt"
	"testing"

	"denovogpu"
	"denovogpu/internal/workload/graph"
)

// TestGraphDifferential is the sequential-reference differential
// harness for the graph-analytics family: every workload's Verify is a
// pure-Go serial run over the same generated graph, so executing each
// (workload, protocol, seed) cell through the simulator checks the
// device result word-for-word against the reference. Any protocol or
// phase-drain bug that corrupts data fails here as a wrong answer.
func TestGraphDifferential(t *testing.T) {
	params := []graph.Params{
		{N: 320, AvgDeg: 6, Seed: 7},
		{N: 640, AvgDeg: 8, Seed: 42},
	}
	if testing.Short() {
		params = params[:1]
	}
	configs := append(denovogpu.AllConfigs(), denovogpu.Specialized())
	families := []struct {
		name string
		mk   func(graph.Params) denovogpu.Workload
	}{
		{"BFS", graph.BFS},
		{"PR", graph.PageRank},
		{"SSSP", graph.SSSP},
	}
	for _, fam := range families {
		for _, p := range params {
			for _, cfg := range configs {
				fam, p, cfg := fam, p, cfg
				t.Run(fmt.Sprintf("%s/%s/n%d-seed%d", fam.name, cfg.Name(), p.N, p.Seed), func(t *testing.T) {
					t.Parallel()
					rep, err := denovogpu.Run(cfg, fam.mk(p))
					if err != nil {
						t.Fatalf("differential check failed: %v", err)
					}
					if rep.Cycles == 0 {
						t.Fatalf("empty report %+v", rep)
					}
				})
			}
		}
	}
}

// TestGraphSpecializedDeterminism pins that the per-phase specialized
// configuration — the one exercising mid-workload protocol switches —
// is as deterministic as the fixed-protocol ones: identical runs give
// bit-identical measurements.
func TestGraphSpecializedDeterminism(t *testing.T) {
	w := graph.BFS(graph.Params{N: 320, AvgDeg: 6, Seed: 7})
	a, err := denovogpu.Run(denovogpu.Specialized(), w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := denovogpu.Run(denovogpu.Specialized(), w)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.EnergyPJ != b.EnergyPJ || a.Flits != b.Flits {
		t.Fatalf("specialized runs differ: %+v vs %+v", a, b)
	}
}
