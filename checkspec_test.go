package denovogpu

import (
	"bytes"
	"strings"
	"testing"
)

func TestCheckKeyCanonicalization(t *testing.T) {
	base := CheckCellSpec{Config: ConfigSpec{Name: "DD"}, Program: "MP"}
	k1, err := CheckKey("v1", base)
	if err != nil {
		t.Fatal(err)
	}

	// Explicitly spelled defaults share the key with omitted ones.
	spelled := base
	spelled.Budget = 20_000_000 // mcheck.DefaultBudget
	spelled.Explorer = "dpor"
	if k2, err := CheckKey("v1", spelled); err != nil || k2 != k1 {
		t.Errorf("spelled-out defaults changed the key: %v %v", k2 == k1, err)
	}

	// Anything that changes what the cell explores changes the key.
	for name, mut := range map[string]CheckCellSpec{
		"program":  {Config: ConfigSpec{Name: "DD"}, Program: "LB"},
		"config":   {Config: ConfigSpec{Name: "DH"}, Program: "MP"},
		"budget":   {Config: ConfigSpec{Name: "DD"}, Program: "MP", Budget: 1000},
		"explorer": {Config: ConfigSpec{Name: "DD"}, Program: "MP", Explorer: "sleepset"},
		"shard":    {Config: ConfigSpec{Name: "DD"}, Program: "MP", Shard: &CheckShard{Index: 1, Prefix: []uint32{7}}},
	} {
		k, err := CheckKey("v1", mut)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if k == k1 {
			t.Errorf("changing %s did not change the key", name)
		}
	}
	if k, _ := CheckKey("v2", base); k == k1 {
		t.Error("code version not folded into the key")
	}

	// Unresolvable specs are rejected.
	for name, bad := range map[string]CheckCellSpec{
		"program":        {Config: ConfigSpec{Name: "DD"}, Program: "NOPE"},
		"config":         {Config: ConfigSpec{Name: "NOPE"}, Program: "MP"},
		"explorer":       {Config: ConfigSpec{Name: "DD"}, Program: "MP", Explorer: "bfs"},
		"sharded-sleeps": {Config: ConfigSpec{Name: "DD"}, Program: "MP", Explorer: "sleepset", Shard: &CheckShard{}},
	} {
		if _, err := CheckKey("v1", bad); err == nil {
			t.Errorf("bad %s accepted", name)
		}
	}
}

func TestRunCheckCellRoundTrip(t *testing.T) {
	spec := CheckCellSpec{Config: ConfigSpec{Name: "DD"}, Program: "MP"}
	data, states, err := RunCheckCell(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := UnmarshalCheckReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if r.Program != "MP" || r.Config != "DD" || r.Explorer != "dpor" {
		t.Errorf("report identity: %+v", r)
	}
	if r.States != states || states <= 0 {
		t.Errorf("states: report %d, returned %d", r.States, states)
	}
	if len(r.Outcomes) == 0 || r.Violation != nil {
		t.Errorf("MP under DD should check clean with outcomes: %+v", r)
	}
	again, err := MarshalCheckReport(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, data) {
		t.Error("report does not round-trip canonically")
	}
	// A rerun is byte-identical (exploration determinism on the wire).
	data2, _, err := RunCheckCell(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data2, data) {
		t.Error("rerun produced different report bytes")
	}
}

// TestCheckVerdictShardIdentity: the merged verdict of a sharded run
// is byte-identical to the serial verdict, for every clean program it
// tries and at two shard counts.
func TestCheckVerdictShardIdentity(t *testing.T) {
	for _, prog := range []string{"MP", "SB+sync", "LB"} {
		spec := CheckCellSpec{Config: ConfigSpec{Name: "DD"}, Program: prog}
		serialBytes, _, err := RunCheckCell(spec)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := UnmarshalCheckReport(serialBytes)
		if err != nil {
			t.Fatal(err)
		}
		want, err := MergeCheckVerdict([]CheckReport{serial})
		if err != nil {
			t.Fatal(err)
		}
		wantBytes, err := MarshalCheckVerdict(want)
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{2, 8} {
			cells, base, err := SplitCheckCell(spec, shards)
			if err != nil {
				t.Fatal(err)
			}
			reports := []CheckReport{base}
			for _, c := range cells {
				data, _, err := RunCheckCell(c)
				if err != nil {
					t.Fatalf("%s shard %d: %v", prog, c.Shard.Index, err)
				}
				r, err := UnmarshalCheckReport(data)
				if err != nil {
					t.Fatal(err)
				}
				reports = append(reports, r)
			}
			got, err := MergeCheckVerdict(reports)
			if err != nil {
				t.Fatal(err)
			}
			gotBytes, err := MarshalCheckVerdict(got)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotBytes, wantBytes) {
				t.Errorf("%s: %d-shard verdict diverges from serial:\n--- serial ---\n%s\n--- sharded ---\n%s",
					prog, shards, wantBytes, gotBytes)
			}
		}
	}
}

// TestCheckCellViolation: an injected fault surfaces as a violation in
// both the serial report and the sharded merge, with the same verdict
// invariant.
func TestCheckCellViolation(t *testing.T) {
	cfg, err := ConfigByName("DD")
	if err != nil {
		t.Fatal(err)
	}
	cfg.FaultDisableAcquireInval = true
	spec := CheckCellSpec{Config: ConfigSpec{Raw: &cfg}, Program: "MP+preload"}

	data, _, err := RunCheckCell(spec)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := UnmarshalCheckReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Violation == nil || serial.Violation.Invariant != "oracle-conformance" {
		t.Fatalf("fault not caught serially: %+v", serial.Violation)
	}
	if serial.Violation.Outcome == "" || len(serial.Violation.Trace) == 0 {
		t.Errorf("violation missing outcome or trace: %+v", serial.Violation)
	}

	cells, base, err := SplitCheckCell(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	reports := []CheckReport{base}
	for _, c := range cells {
		d, _, err := RunCheckCell(c)
		if err != nil {
			t.Fatal(err)
		}
		r, err := UnmarshalCheckReport(d)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, r)
	}
	v, err := MergeCheckVerdict(reports)
	if err != nil {
		t.Fatal(err)
	}
	if v.Violation == nil || v.Violation.Invariant != serial.Violation.Invariant {
		t.Errorf("sharded verdict violation %+v, serial %+v", v.Violation, serial.Violation)
	}
}

func TestMergeCheckVerdictMismatch(t *testing.T) {
	if _, err := MergeCheckVerdict(nil); err == nil {
		t.Error("merging zero reports accepted")
	}
	a := CheckReport{Schema: "denovogpu-checkreport/v1", Program: "MP", Config: "DD", Explorer: "dpor", Budget: 100}
	b := a
	b.Config = "DH"
	if _, err := MergeCheckVerdict([]CheckReport{a, b}); err == nil {
		t.Error("merging reports from different cells accepted")
	}
}

func TestUnmarshalCheckReportSchema(t *testing.T) {
	if _, err := UnmarshalCheckReport([]byte(`{"schema":"denovogpu-bench/v1"}`)); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("foreign schema accepted: %v", err)
	}
	if _, err := UnmarshalCheckReport([]byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestCheckVerdictFileName(t *testing.T) {
	if got := CheckVerdictFileName("MP+preload", "DD+RO"); got != "check_MP-preload_DD-RO.json" {
		t.Errorf("file name %q", got)
	}
}

func TestCheckConfigSpecs(t *testing.T) {
	specs := CheckConfigSpecs()
	if len(specs) == 0 {
		t.Fatal("empty config set")
	}
	sawRaw := false
	for _, s := range specs {
		cfg, err := s.Resolve()
		if err != nil {
			t.Fatalf("config spec %+v: %v", s, err)
		}
		if s.Raw != nil {
			sawRaw = true
			if cfg.Name() == "" {
				t.Errorf("raw config has no name")
			}
		}
	}
	if !sawRaw {
		t.Error("expected the lazy ablation to need a raw spec")
	}
}

func TestCheckCellSpecRejectsSimulation(t *testing.T) {
	s := CellSpec{Check: &CheckCellSpec{Config: ConfigSpec{Name: "DD"}, Program: "MP"}}
	if _, err := s.Cell(); err == nil {
		t.Error("Cell() resolved a check cell")
	}
}
