package denovogpu

// This file is the model-checking counterpart of matrixspec.go: wire
// specs for check cells (one litmus program × configuration
// exploration, optionally one shard of it), the content-addressed
// cache key for a check result, and the canonical report/verdict
// encodings. The same determinism contract applies — a check cell's
// canonical report depends only on (code version, config, program,
// budget, explorer, shard), never on which worker ran it — so check
// results cache and distribute through exactly the same sweepd
// machinery as simulation cells.
//
// Reports vs verdicts: a *report* is one cell's full result, including
// its States count and its shard identity; per-shard States is
// deterministic, but the sum across shards differs between shard
// counts (different reductions prune differently). A *verdict* is the
// merged, shard-count-independent summary — program, config, outcome
// set, violation — and is byte-identical between a serial run and any
// sharded run of a clean program. (A violating program's verdict may
// differ in Detail/Trace between shardings: exploration order differs,
// so a different witness of the same broken invariant can be found
// first. The verdict's Invariant is still the deterministic merge of
// each deterministic per-shard result.)

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"denovogpu/internal/litmus"
	"denovogpu/internal/machine"
	"denovogpu/internal/mcheck"
)

// CheckShard identifies one Unit of a sharded exploration: replay
// Prefix from the root, then run source-DPOR below the cut with Sleep
// as the inherited sleep set (see mcheck.Unit). Index is the unit's
// position in its SplitPlan — the merge's tie-break order.
type CheckShard struct {
	Index  int      `json:"index"`
	Prefix []uint32 `json:"prefix,omitempty"`
	Sleep  []uint32 `json:"sleep,omitempty"`
}

// CheckCellSpec is the wire form of one model-checking cell: a
// configuration, a catalog litmus program by name, and the exploration
// parameters. Budget <= 0 selects mcheck.DefaultBudget and Explorer ""
// selects "dpor"; both are canonicalized before keying, so specs that
// spell the defaults differently share a cache key. A nil Shard means
// the whole exploration.
type CheckCellSpec struct {
	Config   ConfigSpec  `json:"config"`
	Program  string      `json:"program"`
	Budget   int         `json:"budget,omitempty"`
	Explorer string      `json:"explorer,omitempty"`
	Shard    *CheckShard `json:"shard,omitempty"`
}

// resolve canonicalizes the spec into runnable pieces.
func (s CheckCellSpec) resolve() (machine.Config, *litmus.Program, mcheck.Options, error) {
	cfg, err := s.Config.Resolve()
	if err != nil {
		return machine.Config{}, nil, mcheck.Options{}, err
	}
	p, err := LitmusProgramByName(s.Program)
	if err != nil {
		return machine.Config{}, nil, mcheck.Options{}, err
	}
	name := s.Explorer
	if name == "" {
		name = "dpor"
	}
	ex, err := mcheck.ExplorerByName(name)
	if err != nil {
		return machine.Config{}, nil, mcheck.Options{}, err
	}
	if s.Shard != nil && ex != mcheck.ExplorerDPOR {
		return machine.Config{}, nil, mcheck.Options{}, fmt.Errorf("denovogpu: sharded check cells require the dpor explorer, not %q", name)
	}
	budget := s.Budget
	if budget <= 0 {
		budget = mcheck.DefaultBudget
	}
	return cfg, p, mcheck.Options{Budget: budget, Explorer: ex}, nil
}

// Validate rejects unresolvable specs (unknown config, program or
// explorer) without running anything; the coordinator calls it at
// submit so a job never discovers a bad cell halfway through.
func (s CheckCellSpec) Validate() error {
	_, _, _, err := s.resolve()
	return err
}

// DisplayName is the spec's workload-slot label in sweepd progress
// events: "check:MP", or "check:MP#3" for shard 3.
func (s CheckCellSpec) DisplayName() string {
	if s.Shard != nil {
		return fmt.Sprintf("check:%s#%d", s.Program, s.Shard.Index)
	}
	return "check:" + s.Program
}

// LitmusProgramByName finds a catalog litmus program. Only catalog
// programs are addressable on the wire — a generated program has no
// stable name to key a cached result under.
func LitmusProgramByName(name string) (*litmus.Program, error) {
	for _, e := range litmus.Catalog() {
		if e.Program.Name == name {
			return e.Program, nil
		}
	}
	return nil, fmt.Errorf("denovogpu: unknown litmus program %q (want a catalog name; see LitmusProgramNames)", name)
}

// LitmusProgramNames lists the catalog programs, in catalog order.
func LitmusProgramNames() []string {
	var names []string
	for _, e := range litmus.Catalog() {
		names = append(names, e.Program.Name)
	}
	return names
}

// CheckKey returns the canonical content address of one check cell,
// following the CellKey recipe: hex SHA-256 over length-prefixed
// (schema, code version, canonicalized config, program, budget,
// explorer, shard). Budget and explorer are keyed post-canonicalization
// and the shard part is the canonical JSON of the Shard ("" when nil),
// so equivalent spellings share a key and anything that changes what
// the cell explores changes it.
func CheckKey(codeVersion string, s CheckCellSpec) (string, error) {
	cfg, p, opts, err := s.resolve()
	if err != nil {
		return "", err
	}
	cfgJSON, err := json.Marshal(cfg.Defaults())
	if err != nil {
		return "", err
	}
	shard := ""
	if s.Shard != nil {
		b, err := json.Marshal(s.Shard)
		if err != nil {
			return "", err
		}
		shard = string(b)
	}
	h := sha256.New()
	for _, part := range []string{
		"denovogpu-check/v1", codeVersion, string(cfgJSON), p.Name,
		fmt.Sprintf("%d", opts.Budget), opts.Explorer.String(), shard,
	} {
		fmt.Fprintf(h, "%d:%s", len(part), part)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// CheckConfigSpecs returns the full model-checking configuration set
// (mcheck.Configs: the litmus set plus the DH lazy-writes ablation) as
// wire specs — by name where ConfigByName resolves one, raw otherwise
// (the ablation has no addressable name).
func CheckConfigSpecs() []ConfigSpec {
	var out []ConfigSpec
	for _, cfg := range mcheck.Configs() {
		if _, err := ConfigByName(cfg.Name()); err == nil {
			out = append(out, ConfigSpec{Name: cfg.Name()})
		} else {
			out = append(out, ConfigSpec{Raw: &cfg})
		}
	}
	return out
}

// SplitCheckCell partitions a whole-exploration check cell into
// per-shard cells plus the split phase's own partial report (the top
// region's states, outcomes and any violation it found, as a shard-less
// CheckReport). When the returned cell list is empty — the split phase
// found a violation, or fully explored a tiny program — the partial
// report is already the cell's complete result. Otherwise the merge of
// the partial report followed by the per-shard reports, in order, is
// the cell's verdict (MergeCheckVerdict).
func SplitCheckCell(s CheckCellSpec, shards int) ([]CheckCellSpec, CheckReport, error) {
	if s.Shard != nil {
		return nil, CheckReport{}, fmt.Errorf("denovogpu: splitting an already-sharded check cell (%s)", s.DisplayName())
	}
	cfg, p, opts, err := s.resolve()
	if err != nil {
		return nil, CheckReport{}, err
	}
	plan, err := mcheck.Split(cfg, p, opts, shards)
	if err != nil {
		return nil, CheckReport{}, err
	}
	base := CheckReport{
		Schema:    checkReportSchema,
		Program:   p.Name,
		Config:    cfg.Name(),
		Explorer:  opts.Explorer.String(),
		Budget:    opts.Budget,
		States:    plan.States,
		Outcomes:  sortedOutcomeKeys(plan.Outcomes),
		Violation: wireViolation(plan.Violation),
	}
	var cells []CheckCellSpec
	for i, u := range plan.Units {
		c := s
		// Canonicalized so every shard of a cell keys against the same
		// budget and explorer spelling as its siblings.
		c.Budget = opts.Budget
		c.Explorer = opts.Explorer.String()
		c.Shard = &CheckShard{Index: i, Prefix: u.Prefix, Sleep: u.Sleep}
		cells = append(cells, c)
	}
	return cells, base, nil
}

// CheckViolation is a counterexample in wire form: the violated
// invariant, its description, the non-conformant outcome key (oracle
// conformance only) and the transition trace that reaches it.
type CheckViolation struct {
	Invariant string   `json:"invariant"`
	Detail    string   `json:"detail"`
	Outcome   string   `json:"outcome,omitempty"`
	Trace     []string `json:"trace,omitempty"`
}

// CheckReport is one check cell's full result in canonical wire form.
// Outcomes holds sorted outcome keys (litmus.Outcome.Key); States is
// per-cell deterministic but shard-count-dependent in aggregate, which
// is why it lives in the report and not the verdict.
type CheckReport struct {
	Schema    string          `json:"schema"`
	Program   string          `json:"program"`
	Config    string          `json:"config"`
	Explorer  string          `json:"explorer"`
	Budget    int             `json:"budget"`
	Shard     *CheckShard     `json:"shard,omitempty"`
	States    int             `json:"states"`
	Outcomes  []string        `json:"outcomes"`
	Violation *CheckViolation `json:"violation"`
}

// checkReportSchema versions the report encoding.
const checkReportSchema = "denovogpu-checkreport/v1"

// checkVerdictSchema versions the verdict encoding.
const checkVerdictSchema = "denovogpu-checkverdict/v1"

// MarshalCheckReport serializes a report canonically (the cache
// payload and sweepd report-endpoint format for check cells): two byte
// slices are equal iff the explorations they came from agreed exactly.
func MarshalCheckReport(r CheckReport) ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// UnmarshalCheckReport parses canonical check-report bytes, rejecting
// other schemas — a simulation report or future encoding must not
// silently round-trip through the checker's merge.
func UnmarshalCheckReport(data []byte) (CheckReport, error) {
	var r CheckReport
	if err := json.Unmarshal(data, &r); err != nil {
		return CheckReport{}, fmt.Errorf("denovogpu: parsing check report: %w", err)
	}
	if r.Schema != checkReportSchema {
		return CheckReport{}, fmt.Errorf("denovogpu: check report schema %q, want %q", r.Schema, checkReportSchema)
	}
	return r, nil
}

// RunCheckCell executes one check cell — the whole exploration, or one
// shard of it — and returns its canonical report bytes plus the states
// count for progress accounting. A *mcheck.BudgetError (or any other
// exploration error) is returned as an error, not encoded in a report:
// budget exhaustion is not a verdict, and sweepd's fail-fast plus
// lowest-index error semantics handle it exactly as api.RunMatrix
// would.
func RunCheckCell(s CheckCellSpec) ([]byte, int, error) {
	cfg, p, opts, err := s.resolve()
	if err != nil {
		return nil, 0, err
	}
	var res *mcheck.Result
	if s.Shard != nil {
		res, err = mcheck.CheckShard(cfg, p, opts, mcheck.Unit{Prefix: s.Shard.Prefix, Sleep: s.Shard.Sleep})
	} else {
		res, err = mcheck.Check(cfg, p, opts)
	}
	if err != nil {
		return nil, 0, err
	}
	r := CheckReport{
		Schema:    checkReportSchema,
		Program:   p.Name,
		Config:    cfg.Name(),
		Explorer:  opts.Explorer.String(),
		Budget:    opts.Budget,
		Shard:     s.Shard,
		States:    res.States,
		Outcomes:  sortedOutcomeKeys(res.Outcomes),
		Violation: wireViolation(res.Violation),
	}
	data, err := MarshalCheckReport(r)
	if err != nil {
		return nil, 0, err
	}
	return data, res.States, nil
}

func sortedOutcomeKeys(outcomes map[string]litmus.Outcome) []string {
	keys := make([]string, 0, len(outcomes))
	for k := range outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func wireViolation(v *mcheck.Violation) *CheckViolation {
	if v == nil {
		return nil
	}
	w := &CheckViolation{Invariant: v.Invariant, Detail: v.Detail, Trace: v.Trace}
	if v.Observed != nil {
		w.Outcome = v.Observed.Key()
	}
	return w
}

// CheckVerdict is the shard-count-independent summary of one checked
// (program, configuration) cell.
type CheckVerdict struct {
	Schema    string          `json:"schema"`
	Program   string          `json:"program"`
	Config    string          `json:"config"`
	Explorer  string          `json:"explorer"`
	Budget    int             `json:"budget"`
	Outcomes  []string        `json:"outcomes"`
	Violation *CheckViolation `json:"violation"`
}

// MergeCheckVerdict merges per-shard reports (in unit order; a serial
// run is the one-report case) into the cell's verdict: outcome keys
// unioned and sorted, the first report's violation winning (lowest
// shard index — sweepd's deterministic error convention). States is
// deliberately absent: per-shard totals are deterministic, their sum
// across shard counts is not, and the verdict is the artifact pinned
// byte-for-byte against a serial run. Reports must agree on program,
// config, explorer and budget.
func MergeCheckVerdict(reports []CheckReport) (CheckVerdict, error) {
	if len(reports) == 0 {
		return CheckVerdict{}, fmt.Errorf("denovogpu: merging zero check reports")
	}
	v := CheckVerdict{
		Schema:   checkVerdictSchema,
		Program:  reports[0].Program,
		Config:   reports[0].Config,
		Explorer: reports[0].Explorer,
		Budget:   reports[0].Budget,
	}
	union := make(map[string]bool)
	for i, r := range reports {
		if r.Program != v.Program || r.Config != v.Config || r.Explorer != v.Explorer || r.Budget != v.Budget {
			return CheckVerdict{}, fmt.Errorf("denovogpu: check report %d (%s under %s, %s, budget %d) does not belong to cell %s under %s, %s, budget %d",
				i, r.Program, r.Config, r.Explorer, r.Budget, v.Program, v.Config, v.Explorer, v.Budget)
		}
		for _, k := range r.Outcomes {
			union[k] = true
		}
		if v.Violation == nil && r.Violation != nil {
			v.Violation = r.Violation
		}
	}
	v.Outcomes = make([]string, 0, len(union))
	for k := range union {
		v.Outcomes = append(v.Outcomes, k)
	}
	sort.Strings(v.Outcomes)
	return v, nil
}

// MarshalCheckVerdict serializes a verdict canonically; for a clean
// program these bytes are identical between a serial run and any
// sharding, at any worker count.
func MarshalCheckVerdict(v CheckVerdict) ([]byte, error) {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// CheckVerdictFileName is the canonical artifact name for one cell's
// verdict ("+" appears in both program and config names and is not
// filesystem-friendly).
func CheckVerdictFileName(program, config string) string {
	return "check_" + ReportFileName(strings.ReplaceAll(program, "+", "-"), config)
}
