package denovogpu_test

import (
	"fmt"

	"denovogpu"
)

// ExampleRunKernel runs a minimal custom kernel — every thread block
// increments its own counter — under the paper's DD configuration.
func ExampleRunKernel() {
	const numTBs = 4
	base := denovogpu.Addr(0x1000)
	slot := func(tb int) denovogpu.Addr { return base + denovogpu.Addr(64*tb) }

	rep, err := denovogpu.RunKernel(denovogpu.DD(), "counter-bump",
		func(c *denovogpu.Ctx) {
			a := slot(c.TB)
			c.Store(a, c.Load(a)+1)
		},
		numTBs, 32,
		func(h denovogpu.Host) {
			for tb := 0; tb < numTBs; tb++ {
				h.Write(slot(tb), uint32(10*tb))
			}
		},
		func(h denovogpu.Host) error {
			for tb := 0; tb < numTBs; tb++ {
				if got, want := h.Read(slot(tb)), uint32(10*tb+1); got != want {
					return fmt.Errorf("TB %d counter = %d, want %d", tb, got, want)
				}
			}
			return nil
		})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s under %s: verified, ran in simulated time: %v\n", rep.Workload, rep.Config, rep.Cycles > 0)
	// Output: counter-bump under DD: verified, ran in simulated time: true
}
