package denovogpu

// This file is the serialization surface of the sweep service
// (internal/sweepd, cmd/sweepd): wire specs for matrix cells, the
// canonical cache key content-addressing a cell's result, and the
// canonical report encoding — the exact bytes the golden harness pins
// under internal/machine/testdata/golden, so a cached or
// remotely-computed report is verifiable byte-for-byte against the
// serial goldens.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime/debug"
	"sort"
	"strings"

	"denovogpu/internal/stats"
	"denovogpu/internal/workload/graph"
)

// ConfigSpec selects a configuration on the wire: by paper name
// ("GD" … "SPEC", resolved through ConfigByName) or as a raw Config
// struct. Exactly one of the two must be set. Devices, if non-zero,
// overrides the device count of the resolved configuration (so
// `{"name":"DD","devices":2}` is the 2-device DD machine, named
// "DDx2").
type ConfigSpec struct {
	Name    string  `json:"name,omitempty"`
	Raw     *Config `json:"config,omitempty"`
	Devices int     `json:"devices,omitempty"`
}

// Resolve returns the selected configuration.
func (s ConfigSpec) Resolve() (Config, error) {
	var cfg Config
	switch {
	case s.Name != "" && s.Raw != nil:
		return Config{}, fmt.Errorf("denovogpu: config spec sets both name %q and a raw config", s.Name)
	case s.Name != "":
		c, err := ConfigByName(s.Name)
		if err != nil {
			return Config{}, err
		}
		cfg = c
	case s.Raw != nil:
		cfg = *s.Raw
	default:
		return Config{}, fmt.Errorf("denovogpu: empty config spec (want name or config)")
	}
	if s.Devices != 0 {
		cfg.Devices = s.Devices
	}
	return cfg, nil
}

// CellSpec is the wire form of one matrix cell: a configuration, a
// built-in workload name, and an optional seed. Seed 0 selects the
// workload's registered default input; a non-zero seed re-parameterizes
// the graph-analytics generators (BFS, PR, SSSP) with that graph seed
// and is an error for the fixed Table 4 benchmarks.
//
// A cell with Check set is a model-checking cell instead: it carries a
// CheckCellSpec (which has its own config) and must leave the
// simulation fields empty. Check cells flow through the same sweepd
// queue/lease/cache machinery but execute via RunCheckCell, keyed by
// CheckKey.
type CellSpec struct {
	Config   ConfigSpec     `json:"config,omitempty"`
	Workload string         `json:"workload,omitempty"`
	Seed     uint64         `json:"seed,omitempty"`
	Check    *CheckCellSpec `json:"check,omitempty"`
}

// Cell resolves the spec into a runnable matrix cell.
func (s CellSpec) Cell() (MatrixCell, error) {
	if s.Check != nil {
		return MatrixCell{}, fmt.Errorf("denovogpu: cell spec is a check cell (program %q); run it with RunCheckCell, not Run", s.Check.Program)
	}
	cfg, err := s.Config.Resolve()
	if err != nil {
		return MatrixCell{}, err
	}
	w, err := workloadForSpec(s.Workload, s.Seed)
	if err != nil {
		return MatrixCell{}, err
	}
	return MatrixCell{Config: cfg, Workload: w}, nil
}

func workloadForSpec(name string, seed uint64) (Workload, error) {
	if seed == 0 {
		return WorkloadByName(name)
	}
	p := graph.DefaultParams()
	p.Seed = seed
	switch name {
	case "BFS":
		return graph.BFS(p), nil
	case "PR":
		return graph.PageRank(p), nil
	case "SSSP":
		return graph.SSSP(p), nil
	default:
		return Workload{}, fmt.Errorf("denovogpu: seed %d: only the graph workloads (BFS, PR, SSSP) are seedable, not %q", seed, name)
	}
}

// MatrixSpec is the wire form of a sweep: the cross product
// configs × workloads × seeds (config-major, then workload, then seed
// — the paper-figure convention of Matrix), plus optional explicit
// extra cells appended after the product. An empty Seeds list means
// one cell per (config, workload) at the default input.
type MatrixSpec struct {
	Configs   []ConfigSpec `json:"configs,omitempty"`
	Workloads []string     `json:"workloads,omitempty"`
	Seeds     []uint64     `json:"seeds,omitempty"`
	Cells     []CellSpec   `json:"cells,omitempty"`
	// KeepGoing runs every cell even after failures, with
	// MatrixOptions.KeepGoing semantics; off, the first failure stops
	// dispatch and unstarted cells are skipped.
	KeepGoing bool `json:"keep_going,omitempty"`
}

// CellSpecs expands the spec into its per-cell list.
func (m MatrixSpec) CellSpecs() []CellSpec {
	seeds := m.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{0}
	}
	out := make([]CellSpec, 0, len(m.Configs)*len(m.Workloads)*len(seeds)+len(m.Cells))
	for _, c := range m.Configs {
		for _, w := range m.Workloads {
			for _, s := range seeds {
				out = append(out, CellSpec{Config: c, Workload: w, Seed: s})
			}
		}
	}
	return append(out, m.Cells...)
}

// PinnedCells returns the golden-pinned (workload, config) subset —
// the cells whose reports are committed byte-for-byte under
// internal/machine/testdata/golden, in golden-harness order. It is the
// reference matrix for the sweep service's differential wall: a
// distributed or cached sweep of these cells must reproduce the
// committed files exactly.
func PinnedCells() []CellSpec {
	var cells []CellSpec
	add := func(w, c string) {
		cells = append(cells, CellSpec{Config: ConfigSpec{Name: c}, Workload: w})
	}
	allCfg := []string{"GD", "GH", "DD", "DD+RO", "DH"}
	for _, w := range []string{"LAVA", "ST", "NN", "BP", "UTS", "SPM_L"} {
		for _, c := range allCfg {
			add(w, c)
		}
	}
	for _, c := range []string{"GD", "GH"} {
		add("SPMBO_G", c)
	}
	for _, w := range []string{"BFS", "PR", "SSSP"} {
		for _, c := range []string{"GD", "DD", "DD+RO", "SPEC"} {
			add(w, c)
		}
	}
	return cells
}

// ReportFileName is the canonical artifact name for one cell's report
// ("+" in config names is not filesystem-friendly); it matches the
// committed golden file names.
func ReportFileName(workload, config string) string {
	return fmt.Sprintf("%s_%s.json", workload, strings.ReplaceAll(config, "+", "-"))
}

// CodeVersion identifies the simulator build for cache keying: the VCS
// revision when the binary was stamped with one (plus a "+dirty"
// marker for modified trees), else the module version, else "devel".
// Two binaries with equal CodeVersion are assumed to simulate
// identically; "devel" and dirty builds break that assumption, so
// development caches should be wiped after code changes (CI builds
// from clean checkouts and is immune).
func CodeVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	var rev, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value
		}
	}
	if rev != "" {
		if modified == "true" {
			return rev + "+dirty"
		}
		return rev
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	return "devel"
}

// CellKey returns the canonical content address of one simulation
// cell: the hex SHA-256 of (codeVersion, canonicalized configuration,
// workload name, seed). The configuration is canonicalized by applying
// Defaults() and serializing the resulting struct — so specs that
// spell the same machine differently (JSON field order, explicit
// default values vs omitted fields) share a key, and any field that
// changes simulated behavior changes it. Everything in Config is part
// of the key, including fields proven behavior-neutral (Invariants,
// GenericL1): a spurious miss only costs a re-simulation, a spurious
// hit would be wrong. The domain string is versioned ("/v2" since the
// Devices field landed) so warm caches written by older binaries can
// never satisfy a lookup from a build with a different Config schema.
func CellKey(codeVersion string, s CellSpec) (string, error) {
	cfg, err := s.Config.Resolve()
	if err != nil {
		return "", err
	}
	cfgJSON, err := json.Marshal(cfg.Defaults())
	if err != nil {
		return "", err
	}
	h := sha256.New()
	for _, part := range []string{
		"denovogpu-cell/v2", codeVersion, string(cfgJSON), s.Workload, fmt.Sprintf("%d", s.Seed),
	} {
		fmt.Fprintf(h, "%d:%s", len(part), part)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// reportJSON is the canonical serialized form of a Report. Maps are
// used for the named dimensions because encoding/json emits map keys
// in sorted order, making the output canonical; this is the exact
// golden-file layout pinned since PR 2.
type reportJSON struct {
	Config   string             `json:"config"`
	Workload string             `json:"workload"`
	Cycles   uint64             `json:"cycles"`
	Events   uint64             `json:"events"`
	EnergyPJ map[string]float64 `json:"energy_pj"`
	Flits    map[string]uint64  `json:"flits"`
	Counters map[string]uint64  `json:"counters"`
}

// MarshalReport serializes a report canonically: two byte slices are
// equal iff the runs they came from measured identically. This is the
// byte format of the committed golden files, of the sweep service's
// report endpoints, and of the result cache's payloads.
func MarshalReport(r Report) ([]byte, error) {
	g := reportJSON{
		Config:   r.Config,
		Workload: r.Workload,
		Cycles:   r.Cycles,
		Events:   r.Events,
		EnergyPJ: make(map[string]float64),
		Flits:    make(map[string]uint64),
		Counters: make(map[string]uint64),
	}
	for c := stats.Component(0); c < stats.NumComponents; c++ {
		g.EnergyPJ[c.String()] = r.EnergyPJ[c]
	}
	for c := stats.TrafficClass(0); c < stats.NumTrafficClasses; c++ {
		// Classes added after the goldens were pinned (XDev onward) are
		// omitted when zero, so single-device reports keep the exact byte
		// layout committed since PR 2.
		if c >= stats.NumLegacyTrafficClasses && r.Flits[c] == 0 {
			continue
		}
		g.Flits[c.String()] = r.Flits[c]
	}
	if r.Stats != nil {
		for _, n := range r.Stats.Names() {
			g.Counters[n] = r.Stats.Get(n)
		}
	}
	out, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// UnmarshalReport parses a canonically serialized report back into a
// Report (Timeline excluded: timelines are not part of the canonical
// encoding). Unknown energy or traffic dimensions are an error — a
// report from a build with different dimensions must not silently
// round-trip. MarshalReport(UnmarshalReport(b)) reproduces b exactly.
func UnmarshalReport(data []byte) (Report, error) {
	var g reportJSON
	if err := json.Unmarshal(data, &g); err != nil {
		return Report{}, fmt.Errorf("denovogpu: parsing report: %w", err)
	}
	r := Report{
		Config:   g.Config,
		Workload: g.Workload,
		Cycles:   g.Cycles,
		Events:   g.Events,
	}
	seenE := 0
	for c := stats.Component(0); c < stats.NumComponents; c++ {
		if v, ok := g.EnergyPJ[c.String()]; ok {
			r.EnergyPJ[c] = v
			seenE++
		}
	}
	if seenE != len(g.EnergyPJ) {
		return Report{}, fmt.Errorf("denovogpu: report has %d unknown energy components %v", len(g.EnergyPJ)-seenE, unknownKeys(g.EnergyPJ))
	}
	seenF := 0
	for c := stats.TrafficClass(0); c < stats.NumTrafficClasses; c++ {
		if v, ok := g.Flits[c.String()]; ok {
			r.Flits[c] = v
			seenF++
		}
	}
	if seenF != len(g.Flits) {
		return Report{}, fmt.Errorf("denovogpu: report has %d unknown traffic classes", len(g.Flits)-seenF)
	}
	st := stats.New()
	st.Cycles = g.Cycles
	st.EnergyPJ = r.EnergyPJ
	st.Flits = r.Flits
	names := make([]string, 0, len(g.Counters))
	for n := range g.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		st.Inc(n, g.Counters[n])
	}
	r.Stats = st
	return r, nil
}

func unknownKeys(m map[string]float64) []string {
	known := make(map[string]bool)
	for c := stats.Component(0); c < stats.NumComponents; c++ {
		known[c.String()] = true
	}
	var out []string
	for k := range m {
		if !known[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
