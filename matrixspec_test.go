package denovogpu_test

import (
	"encoding/json"
	"strings"
	"testing"

	"denovogpu"
)

func TestMatrixSpecCrossProduct(t *testing.T) {
	spec := denovogpu.MatrixSpec{
		Configs:   []denovogpu.ConfigSpec{{Name: "GD"}, {Name: "DD"}},
		Workloads: []string{"LAVA", "BFS"},
		Seeds:     []uint64{0, 7},
		Cells:     []denovogpu.CellSpec{{Config: denovogpu.ConfigSpec{Name: "DH"}, Workload: "UTS"}},
	}
	cells := spec.CellSpecs()
	if len(cells) != 2*2*2+1 {
		t.Fatalf("got %d cells, want 9", len(cells))
	}
	// Config-major, then workload, then seed; explicit cells appended.
	if cells[0].Config.Name != "GD" || cells[0].Workload != "LAVA" || cells[0].Seed != 0 {
		t.Errorf("cell 0 = %+v", cells[0])
	}
	if cells[1].Seed != 7 {
		t.Errorf("cell 1 = %+v, want seed 7", cells[1])
	}
	if cells[2].Workload != "BFS" {
		t.Errorf("cell 2 = %+v, want BFS", cells[2])
	}
	if last := cells[len(cells)-1]; last.Workload != "UTS" || last.Config.Name != "DH" {
		t.Errorf("explicit cell = %+v", last)
	}
}

func TestCellSpecResolution(t *testing.T) {
	// Seeded graph cell resolves to a re-parameterized generator.
	cell, err := (denovogpu.CellSpec{Config: denovogpu.ConfigSpec{Name: "DD"}, Workload: "BFS", Seed: 9}).Cell()
	if err != nil {
		t.Fatal(err)
	}
	if cell.Workload.Name != "BFS" || !strings.Contains(cell.Workload.Input, "seed 9") {
		t.Errorf("seeded BFS cell input = %q, want the seed in it", cell.Workload.Input)
	}
	// Seeding a fixed Table 4 benchmark is an error.
	if _, err := (denovogpu.CellSpec{Config: denovogpu.ConfigSpec{Name: "GD"}, Workload: "LAVA", Seed: 3}).Cell(); err == nil {
		t.Error("seeded LAVA resolved, want error")
	}
	// A raw config spec round-trips through JSON.
	cfg := denovogpu.DDRO()
	cfg.NumCUs = 4
	data, err := json.Marshal(denovogpu.CellSpec{Config: denovogpu.ConfigSpec{Raw: &cfg}, Workload: "SPM_L"})
	if err != nil {
		t.Fatal(err)
	}
	var back denovogpu.CellSpec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	got, err := back.Cell()
	if err != nil {
		t.Fatal(err)
	}
	if got.Config.NumCUs != 4 || !got.Config.ReadOnlyOpt {
		t.Errorf("raw config round trip lost fields: %+v", got.Config)
	}
	// Both name and raw set, neither set: errors.
	if _, err := (denovogpu.ConfigSpec{Name: "GD", Raw: &cfg}).Resolve(); err == nil {
		t.Error("ambiguous config spec resolved, want error")
	}
	if _, err := (denovogpu.ConfigSpec{}).Resolve(); err == nil {
		t.Error("empty config spec resolved, want error")
	}
}

func TestPinnedCellsShape(t *testing.T) {
	cells := denovogpu.PinnedCells()
	if len(cells) != 44 {
		t.Fatalf("pinned matrix has %d cells, want 44", len(cells))
	}
	seen := make(map[string]bool)
	for _, c := range cells {
		if _, err := c.Cell(); err != nil {
			t.Errorf("pinned cell %+v does not resolve: %v", c, err)
		}
		name := denovogpu.ReportFileName(c.Workload, c.Config.Name)
		if seen[name] {
			t.Errorf("duplicate pinned cell %s", name)
		}
		seen[name] = true
		if strings.Contains(name, "+") {
			t.Errorf("report file name %q contains '+'", name)
		}
	}
}

func TestUnmarshalReportRejectsUnknownDimensions(t *testing.T) {
	if _, err := denovogpu.UnmarshalReport([]byte(`{"config":"GD","workload":"X","energy_pj":{"flux-capacitor":1}}`)); err == nil {
		t.Error("unknown energy component parsed, want error")
	}
	if _, err := denovogpu.UnmarshalReport([]byte(`{"config":"GD","workload":"X","flits":{"warp-drive":1}}`)); err == nil {
		t.Error("unknown traffic class parsed, want error")
	}
	if _, err := denovogpu.UnmarshalReport([]byte(`not json`)); err == nil {
		t.Error("garbage parsed, want error")
	}
}
