package denovogpu_test

import (
	"strings"
	"testing"

	"denovogpu"
	"denovogpu/internal/workload"
)

func TestConfigByName(t *testing.T) {
	for _, name := range []string{"GD", "GH", "DD", "DD+RO", "DH", "MESI"} {
		cfg, err := denovogpu.ConfigByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cfg.Name() != name {
			t.Fatalf("round trip %q -> %q", name, cfg.Name())
		}
	}
	if _, err := denovogpu.ConfigByName("nope"); err == nil {
		t.Fatal("unknown config must error")
	}
}

func TestAllConfigsOrder(t *testing.T) {
	var names []string
	for _, c := range denovogpu.AllConfigs() {
		names = append(names, c.Name())
	}
	if strings.Join(names, ",") != "GD,GH,DD,DD+RO,DH" {
		t.Fatalf("config order %v", names)
	}
}

func TestWorkloadInventoryMatchesTable4(t *testing.T) {
	// 10 applications + 4 global-sync + 9 local-sync = 23 Table 4
	// benchmarks, plus the 3 graph-analytics workloads and the 13
	// 2-device sync ports (both beyond the paper).
	if got := len(denovogpu.Workloads()); got != 39 {
		t.Fatalf("registered benchmarks = %d, want 39", got)
	}
	if got := len(denovogpu.WorkloadsByCategory(denovogpu.Graph)); got != 3 {
		t.Fatalf("graph = %d, want 3", got)
	}
	if got := len(denovogpu.WorkloadsByCategory(denovogpu.NoSync)); got != 10 {
		t.Fatalf("no-sync = %d, want 10", got)
	}
	if got := len(denovogpu.WorkloadsByCategory(denovogpu.GlobalSync)); got != 4 {
		t.Fatalf("global-sync = %d, want 4", got)
	}
	if got := len(denovogpu.WorkloadsByCategory(denovogpu.LocalSync)); got != 9 {
		t.Fatalf("local-sync = %d, want 9", got)
	}
	if got := len(denovogpu.WorkloadsByCategory(workload.MultiDev)); got != 13 {
		t.Fatalf("multi-device = %d, want 13", got)
	}
}

func TestRunByNameUnknown(t *testing.T) {
	if _, err := denovogpu.RunByName(denovogpu.DD(), "NOPE"); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

func TestRunKernelRoundTrip(t *testing.T) {
	kernel := func(c *denovogpu.Ctx) {
		v := c.Load(0x1000)
		c.Store(0x2000, v*2)
	}
	setup := func(h denovogpu.Host) { h.Write(0x1000, 21) }
	verify := func(h denovogpu.Host) error {
		if got := h.Read(0x2000); got != 42 {
			t.Fatalf("kernel result %d", got)
		}
		return nil
	}
	for _, cfg := range append(denovogpu.AllConfigs(), denovogpu.MESI()) {
		rep, err := denovogpu.RunKernel(cfg, "double", kernel, 1, 32, setup, verify)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name(), err)
		}
		if rep.Cycles == 0 || rep.TotalEnergyPJ() <= 0 {
			t.Fatalf("%s: empty report %+v", cfg.Name(), rep)
		}
		// (Flit crossings can legitimately be zero here: both lines are
		// homed at the same node as the executing CU.)
	}
}

func TestRunVerificationFailureSurfaces(t *testing.T) {
	w := denovogpu.Workload{
		Name:   "bad",
		Host:   func(h denovogpu.Host) { h.Launch(func(*denovogpu.Ctx) {}, 1, 32) },
		Verify: func(denovogpu.Host) error { return errBoom{} },
	}
	if _, err := denovogpu.Run(denovogpu.GD(), w); err == nil || !strings.Contains(err.Error(), "verification failed") {
		t.Fatalf("verification failure not surfaced: %v", err)
	}
}

type errBoom struct{}

func (errBoom) Error() string { return "boom" }

// TestConfigByNameIndependentCopies guards the contract that resolved
// configs are free to mutate: two lookups must not share state, and
// mutations must not leak into AllConfigs.
func TestConfigByNameIndependentCopies(t *testing.T) {
	a, err := denovogpu.ConfigByName("DD")
	if err != nil {
		t.Fatal(err)
	}
	a.NumCUs = 2
	a.SyncBackoff = true
	b, err := denovogpu.ConfigByName("DD")
	if err != nil {
		t.Fatal(err)
	}
	if b.NumCUs == 2 || b.SyncBackoff {
		t.Fatalf("mutating one resolved config leaked into the next lookup: %+v", b)
	}
	if got := denovogpu.AllConfigs()[2]; got.NumCUs == 2 || got.SyncBackoff {
		t.Fatalf("mutating a resolved config leaked into AllConfigs: %+v", got)
	}
}

// TestRunDeterminism pins the simulator's determinism contract: the
// same (configuration, workload) pair run twice must produce
// bit-identical measurements. One representative benchmark per paper
// category (Figures 2, 3, 4).
func TestRunDeterminism(t *testing.T) {
	benches := []string{"LAVA", "FAM_G", "UTS"}
	if testing.Short() {
		benches = []string{"LAVA", "UTS"}
	}
	for _, bench := range benches {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			a, err := denovogpu.RunByName(denovogpu.DD(), bench)
			if err != nil {
				t.Fatal(err)
			}
			b, err := denovogpu.RunByName(denovogpu.DD(), bench)
			if err != nil {
				t.Fatal(err)
			}
			if a.Cycles != b.Cycles {
				t.Errorf("Cycles differ across identical runs: %d vs %d", a.Cycles, b.Cycles)
			}
			if a.EnergyPJ != b.EnergyPJ {
				t.Errorf("EnergyPJ differs across identical runs: %v vs %v", a.EnergyPJ, b.EnergyPJ)
			}
			if a.Flits != b.Flits {
				t.Errorf("Flits differ across identical runs: %v vs %v", a.Flits, b.Flits)
			}
		})
	}
}
