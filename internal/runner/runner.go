// Package runner provides the bounded worker pool behind parallel
// matrix execution (api.RunMatrix, cmd/bench -j, cmd/sweep -j, the
// litmus fuzzer shards and the golden harness).
//
// The pool's contract mirrors a serial loop over independent jobs:
//
//   - Jobs are identified by index [0, n) and must be independent —
//     each simulation builds its own Engine, machine and rand state, so
//     cells share no mutable state and per-cell results are identical
//     at any worker count.
//   - Per-job errors are collected into an index-ordered slice, so the
//     assembled results are deterministic regardless of completion
//     order.
//   - By default the first failure stops dispatch: in-flight jobs
//     finish, never-started jobs are marked ErrSkipped. KeepGoing runs
//     everything regardless.
//   - OnDone streams per-job completion (serialized by the pool), in
//     completion order — progress reporting, not result assembly.
package runner

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrSkipped marks a job that was never started because an earlier
// failure stopped dispatch (and KeepGoing was off).
var ErrSkipped = errors.New("runner: job skipped after earlier failure")

// Options configure a Run.
type Options struct {
	// Workers bounds the number of jobs in flight; <= 0 selects
	// runtime.GOMAXPROCS(0). Workers == 1 executes jobs strictly in
	// index order, exactly like the serial loop it replaces.
	Workers int
	// KeepGoing, if set, dispatches every job even after failures.
	// Otherwise the first failure stops dispatch (in-flight jobs still
	// complete; undispatched jobs get ErrSkipped).
	KeepGoing bool
	// OnDone, if non-nil, is invoked once per job as it completes
	// (including skipped jobs), serialized by the pool but in
	// completion order. It must not call back into the pool.
	OnDone func(i int, err error)
}

// Run executes fn(0) … fn(n-1) on a bounded pool and returns the
// per-job errors in index order, plus the first real (non-skipped)
// error by job index, or nil if every dispatched job succeeded.
//
// With KeepGoing set the returned error is fully deterministic (the
// lowest-index failure). Without it, which jobs were dispatched before
// the stop can depend on scheduling; the per-index slice always
// records faithfully what happened to each job.
func Run(n int, opts Options, fn func(i int) error) ([]error, error) {
	errs := make([]error, n)
	if n == 0 {
		return errs, nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	var (
		next atomic.Int64 // next undispatched job index
		stop atomic.Bool  // a job has failed; stop dispatching
		mu   sync.Mutex   // serializes OnDone
		wg   sync.WaitGroup
	)
	done := func(i int, err error) {
		if opts.OnDone == nil {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		opts.OnDone(i, err)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if !opts.KeepGoing && stop.Load() {
					errs[i] = ErrSkipped
					done(i, ErrSkipped)
					continue
				}
				err := fn(i)
				errs[i] = err
				if err != nil {
					stop.Store(true)
				}
				done(i, err)
			}
		}()
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil && !errors.Is(err, ErrSkipped) {
			return errs, err
		}
	}
	return errs, nil
}
