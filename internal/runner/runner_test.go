package runner

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunAllJobsOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		var counts [37]atomic.Int32
		errs, err := Run(len(counts), Options{Workers: workers}, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
			if errs[i] != nil {
				t.Fatalf("workers=%d: job %d error %v", workers, i, errs[i])
			}
		}
	}
}

func TestRunZeroJobs(t *testing.T) {
	errs, err := Run(0, Options{}, func(int) error { t.Fatal("fn called"); return nil })
	if err != nil || len(errs) != 0 {
		t.Fatalf("got %v, %v", errs, err)
	}
}

func TestRunSerialOrderAtOneWorker(t *testing.T) {
	var order []int
	_, err := Run(10, Options{Workers: 1}, func(i int) error {
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order %v not serial", order)
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int32
	_, err := Run(64, Options{Workers: workers}, func(i int) error {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		inFlight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

func TestRunStopsDispatchAfterFailure(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int32
	// Worker 1 serializes dispatch, so exactly jobs 0..3 start: job 3
	// fails, 4.. are skipped.
	errs, err := Run(20, Options{Workers: 1}, func(i int) error {
		started.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := started.Load(); n != 4 {
		t.Fatalf("%d jobs started, want 4", n)
	}
	for i, e := range errs {
		switch {
		case i < 3 && e != nil:
			t.Fatalf("job %d: %v", i, e)
		case i == 3 && !errors.Is(e, boom):
			t.Fatalf("job 3: %v", e)
		case i > 3 && !errors.Is(e, ErrSkipped):
			t.Fatalf("job %d: %v, want ErrSkipped", i, e)
		}
	}
}

func TestRunKeepGoing(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	errs, err := Run(16, Options{Workers: 4, KeepGoing: true}, func(i int) error {
		ran.Add(1)
		if i%5 == 0 {
			return fmt.Errorf("job %d: %w", i, boom)
		}
		return nil
	})
	if n := ran.Load(); n != 16 {
		t.Fatalf("%d jobs ran, want 16", n)
	}
	if !errors.Is(err, boom) || !errors.Is(errs[0], boom) {
		t.Fatalf("err = %v, errs[0] = %v", err, errs[0])
	}
	// Lowest-index failure wins deterministically under KeepGoing.
	if err.Error() != errs[0].Error() {
		t.Fatalf("err = %v, want the job-0 failure", err)
	}
}

func TestRunOnDoneSerializedAndComplete(t *testing.T) {
	var mu sync.Mutex
	inCB := false
	seen := map[int]bool{}
	_, err := Run(50, Options{Workers: 8, OnDone: func(i int, err error) {
		mu.Lock()
		if inCB {
			mu.Unlock()
			t.Error("OnDone reentered")
			return
		}
		inCB = true
		seen[i] = true
		inCB = false
		mu.Unlock()
	}}, func(i int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 50 {
		t.Fatalf("OnDone saw %d jobs, want 50", len(seen))
	}
}
