package mcheck

import (
	"fmt"
	"time"

	"denovogpu/internal/coherence"
	"denovogpu/internal/litmus"
)

// Stateless source-DPOR exploration (Abdulla, Aronis, Jonsson,
// Sagonas: "Source Sets: A Foundation for Optimal Dynamic Partial
// Order Reduction", adapted to this transition system). Where the
// legacy explorer (explore.go) prunes with a visited table keyed by a
// canonical state encoding — memory proportional to the number of
// distinct states — this explorer keeps only the current execution: a
// stack of frames, one per depth, each holding a cloned state, the
// happens-before clock of its incoming event, and the backtrack/sleep
// bookkeeping of the node. Peak memory is O(depth), independent of how
// many states the search visits, which is what lets the budget rise
// from state-table scale (~2M) to tens of millions.
//
// The transition-id-as-process abstraction: a trans value is treated
// as a "process" — at any state it denotes at most one enabled action
// (thread a's next operation, the head delivery of one channel, one
// background action of one CU word). Per-territory program order falls
// out of the dependency relation automatically, because two events
// with the same trans id share a footprint bit and are therefore
// dependent.
//
// Dependence uses a *dynamic* footprint (dynFootprint), finer than the
// legacy explorer's static one. The legacy relation is per-CU: any two
// transitions touching the same CU are dependent. That coarseness is
// nearly free under a visited table — both orders of a commuting pair
// re-converge on a hashed state — but fatal for stateless search,
// which would walk both orders of every same-CU diamond (background
// actions, acks, and thread steps on *different* words commute
// constantly) and multiply them. The dynamic footprint separates
// territories a transition actually touches at the state where it
// fires: one bit per (CU, word) L1 slot, one per thread's control
// state (pc, blocked, pending loads, release bookkeeping), one per
// variable's registry/L2 home, one per CU's end-of-kernel control.
// Transitions that read CU-wide state stay CU-coarse: a release drain
// reads the whole store buffer and the lazy/dirty masks, and a global
// acquire sweeps every clean word and races with the CU's own
// in-flight fills (it marks them stale), so both take every slot bit
// of their CU. Message sends are deliberately *not* footprinted: all
// appends to one channel already share a bit through their cause (a
// channel is per-(src, dst, var)), and an append commutes with the
// same channel's head delivery whenever both are enabled. Store-buffer
// insertion *order* is also not footprinted: slots are per-word, and
// the only order-sensitive reader (the release drain, which emits
// writethroughs oldest-first) targets per-word channels, so the
// resulting states differ only in dead bytes. Both exclusions — and
// the relation as a whole — are checked empirically by the
// TestDPORConformance differential wall against the unreduced and
// sleep-set explorers.
//
// Happens-before is the transitive closure of the footprint-dependency
// order within one execution: event i happens-before event n iff i < n
// and a chain of pairwise-dependent events connects them. Each event
// carries a clock — the bitset of its happens-before predecessors —
// computed incrementally when the event is appended: scanning
// backwards from the new event, a dependent earlier event i that is
// not already covered by the clocks merged so far is a *race* (nothing
// between them is ordered after i and before the new event, so the
// two are adjacent in the happens-before order and their order could
// be reversed); dependent events merge their clocks into the covered
// set either way, which makes the test exact.
//
// For a race (i, n) the reversal candidate sequence is
// v = notdep(i, E)·t_n: the events after i that do not happen-after i,
// followed by the racing transition itself. Source-set backtracking
// schedules one *initial* of v at frame i — an event of v with no
// happens-before predecessor inside v — unless some initial is already
// scheduled there (then the reversal is covered). The first element of
// notdep is always an initial; when notdep is empty the candidate is
// t_n itself. Because the footprint relation is not
// enabledness-preserving (a thread's final step can enable a CU's
// final release, or an append can create a delivery, with disjoint
// footprints), a candidate can fail to be enabled at frame i; the
// fallback schedules every enabled transition there, which is the
// always-sound Flanagan-Godefroid degenerate case and is rare in
// practice.
//
// Sleep sets are carried exactly as in the legacy explorer: a child
// inherits the parent's sleep entries plus its already-explored
// siblings, filtered to those independent of the taken transition; a
// node whose enabled set is entirely asleep is a redundant prefix and
// is abandoned. The reported States metric counts frames visited
// (executed transitions plus the root), the stateless analogue of the
// legacy explorer's expanded-node count.

// ebits is a growable bitset over event indices (execution depths).
type ebits []uint64

func (b ebits) test(i int) bool {
	w := i >> 6
	return w < len(b) && b[w]&(1<<(uint(i)&63)) != 0
}

func (b *ebits) set(i int) {
	w := i >> 6
	for len(*b) <= w {
		*b = append(*b, 0)
	}
	(*b)[w] |= 1 << (uint(i) & 63)
}

func (b *ebits) or(o ebits) {
	for len(*b) < len(o) {
		*b = append(*b, 0)
	}
	for i, w := range o {
		(*b)[i] |= w
	}
}

// Dynamic-footprint territory bits. Slots 0..35 are (CU, word) pairs;
// above them one bit per thread's control state, per variable's home,
// and per CU's end-of-kernel control.
const (
	fpTctl = uint(maxCUs * maxVars) // 36..41: thread control
	fpHome = fpTctl + maxThreads    // 42..47: registry/L2 home
	fpCctl = fpHome + maxVars       // 48..53: per-CU final release
)

func slotBit(ci, v uint8) uint64 { return 1 << (uint(ci)*maxVars + uint(v)) }
func tctlBit(ti uint8) uint64    { return 1 << (fpTctl + uint(ti)) }
func homeBit(v uint8) uint64     { return 1 << (fpHome + uint(v)) }
func cctlBit(ci uint8) uint64    { return 1 << (fpCctl + uint(ci)) }

// cuSlots is every word slot of one CU — the footprint of transitions
// that read or sweep CU-wide word state.
func (m *model) cuSlots(ci uint8) uint64 {
	return ((1 << uint(m.nv)) - 1) << (uint(ci) * maxVars)
}

// dynFootprint is the dynamic read/write territory of transition t at
// state s, used by the DPOR explorer and the shard split phase. It
// must be computed at the state where t is enabled; it stays valid
// while only transitions independent of t execute (anything that would
// change t's behavior shares a bit with t by construction).
func (m *model) dynFootprint(s *state, t trans) uint64 {
	kind, a, b, c := t.parts()
	switch kind {
	case tkStep:
		return m.stepFootprint(s, int(a))
	case tkFinalRel:
		// The end-of-kernel release drains the store buffer and the
		// lazy/dirty masks: CU-wide.
		return cctlBit(a) | m.cuSlots(a)
	case tkEvict, tkFlushDirty, tkWriteBack, tkLazyKick:
		return slotBit(a, c)
	case tkDeliver:
		return m.deliverFootprint(s, a, b, c)
	}
	return ^uint64(0)
}

func (m *model) stepFootprint(s *state, ti int) uint64 {
	fp := tctlBit(uint8(ti))
	op := m.opOf(ti, s)
	v := uint8(op.Var)
	if m.cfg.proto == protoSC {
		return fp | homeBit(v)
	}
	ci := m.threadCU[ti]
	if op.Kind == litmus.OpLoad || op.Kind == litmus.OpStore {
		return fp | slotBit(ci, v)
	}
	scope := m.cfg.model.Effective(op.Scope)
	releasing := (op.Kind == litmus.OpSyncStore || op.Kind == litmus.OpSyncAdd) &&
		scope == coherence.ScopeGlobal
	if releasing && s.relIssued&(1<<ti) == 0 {
		// Release phase 1: the drain reads the whole store buffer (and
		// the lazy/dirty masks), so it conflicts with every word of the
		// CU — a concurrent same-CU store must not slip under the drain.
		return fp | m.cuSlots(ci)
	}
	fp |= slotBit(ci, v)
	acquiring := (op.Kind == litmus.OpSyncLoad || op.Kind == litmus.OpSyncAdd) &&
		scope == coherence.ScopeGlobal
	if m.cfg.proto == protoDeNovo && acquiring && s.cus[ci].st[v] == wReg {
		// The sync hits the registered word in place, so the acquire
		// sweep (every clean word invalidated, own in-flight fills marked
		// stale) fires at this step.
		fp |= m.cuSlots(ci)
	}
	return fp
}

func (m *model) deliverFootprint(s *state, src, dst, v uint8) uint64 {
	if dst == home {
		return homeBit(v)
	}
	fp := slotBit(dst, v)
	var g *msg
	for i := range s.msgs {
		if s.msgs[i].src == src && s.msgs[i].dst == dst && s.msgs[i].v == v {
			g = &s.msgs[i]
			break
		}
	}
	if g == nil {
		return fp // unreachable: delivery is only enabled on a nonempty channel
	}
	switch g.kind {
	case mReadResp:
		fp |= tctlBit(g.thread)
	case mAtomicResp:
		fp |= tctlBit(g.thread)
		op := m.opOf(int(g.thread), s)
		if op.Kind == litmus.OpSyncLoad || op.Kind == litmus.OpSyncAdd {
			fp |= m.cuSlots(dst) // the acquire sweep fires at delivery
		}
	case mRegAck, mRegXfer:
		cu := &s.cus[dst]
		for i := uint8(0); i < cu.syncQLen[v]; i++ {
			ti := int(cu.syncQ[v][i])
			fp |= tctlBit(uint8(ti))
			op := m.opOf(ti, s)
			if (op.Kind == litmus.OpSyncLoad || op.Kind == litmus.OpSyncAdd) &&
				m.cfg.model.Effective(op.Scope) == coherence.ScopeGlobal {
				fp |= m.cuSlots(dst) // a queued acquire sweeps at arrival
			}
		}
	}
	return fp
}

// sleepEnt is one sleep-set member with its precomputed footprint.
type sleepEnt struct {
	t  trans
	fp uint64
}

func sleepHas(sleep []sleepEnt, t trans) bool {
	for _, u := range sleep {
		if u.t == t {
			return true
		}
	}
	return false
}

// Unit is one shard of an exploration: replay Prefix from the root
// (transition values, outermost first), then run source-DPOR below the
// cut with Sleep as the cut frame's inherited sleep set. The zero Unit
// is the whole exploration. Units come from Split; their fields are
// wire-friendly (uint32 transition values) so a shard can be shipped
// to a remote worker and replayed there deterministically.
type Unit struct {
	Prefix []uint32 `json:"prefix,omitempty"`
	Sleep  []uint32 `json:"sleep,omitempty"`
}

// dframe is one depth of the DPOR stack: the state reached, the
// incoming event's identity/footprint/clock (meaningless at the root),
// and the node's exploration bookkeeping.
type dframe struct {
	s     *state
	trace *traceNode

	t     trans  // incoming transition (event index = depth-1)
	fp    uint64 // its footprint
	clock ebits  // its happens-before predecessors

	visited bool
	enab    []trans
	enabFp  []uint64
	back    []bool // scheduled for exploration (the backtrack set)
	done    []bool // explored
	sleep   []sleepEnt
}

// exploreDPOR runs stateless source-DPOR over unit. It returns frames
// visited below the cut (the prefix was counted once by the split
// phase), terminal outcomes, and the first violation in deterministic
// DFS order, or a *BudgetError carrying progress at exhaustion.
func (m *model) exploreDPOR(oracle map[string]litmus.Outcome, budget int, unit Unit) (int, map[string]litmus.Outcome, *Violation, error) {
	outcomes := make(map[string]litmus.Outcome)
	states := 0
	start := time.Now()
	cut := len(unit.Prefix)

	violation := func(name, detail string, obs *litmus.Outcome, tn *traceNode) *Violation {
		return &Violation{
			Invariant: name,
			Detail:    detail,
			Config:    m.mcfg,
			Program:   m.p,
			Observed:  obs,
			Trace:     tn.path(),
		}
	}

	stack := make([]dframe, 1, 64)
	stack[0] = dframe{s: m.initial()}

	for len(stack) > 0 {
		d := len(stack) - 1
		fr := &stack[d]

		if !fr.visited {
			fr.visited = true
			s := fr.s
			if d >= cut {
				if states >= budget {
					return states, outcomes, nil, &BudgetError{
						Budget: budget, Config: m.mcfg.Name(), Program: m.p.Name,
						States: states, Elapsed: time.Since(start),
					}
				}
				states++
			}
			if s.viol != "" {
				return states, outcomes, violation(s.viol, s.violDetail, nil, fr.trace), nil
			}
			if name, detail := m.checkInvariants(s); name != "" {
				return states, outcomes, violation(name, detail, nil, fr.trace), nil
			}
			if m.terminal(s) {
				o, ok := m.outcome(s)
				if !ok {
					return states, outcomes, violation(s.viol, s.violDetail, nil, fr.trace), nil
				}
				k := o.Key()
				if _, permitted := oracle[k]; !permitted {
					return states, outcomes, violation("oracle-conformance",
						fmt.Sprintf("reachable outcome %s is not permitted by the %v oracle", k, m.cfg.model),
						&o, fr.trace), nil
				}
				outcomes[k] = o
				stack = stack[:d]
				continue
			}
			fr.enab = m.enabled(s)
			if len(fr.enab) == 0 {
				return states, outcomes, violation("deadlock",
					"no transition enabled in a non-terminal state (lost wakeup or stranded request)",
					nil, fr.trace), nil
			}
			fr.enabFp = make([]uint64, len(fr.enab))
			for i, t := range fr.enab {
				fr.enabFp[i] = m.dynFootprint(s, t)
			}
			fr.back = make([]bool, len(fr.enab))
			fr.done = make([]bool, len(fr.enab))
			switch {
			case d < cut:
				// Prefix replay: the split phase already branched here; take
				// exactly the shard's transition.
				want := trans(unit.Prefix[d])
				found := false
				for i, t := range fr.enab {
					if t == want {
						fr.back[i] = true
						found = true
						break
					}
				}
				if !found {
					return states, outcomes, nil, fmt.Errorf(
						"mcheck: shard prefix transition %#x not enabled at depth %d of %q under %s (stale shard?)",
						unit.Prefix[d], d, m.p.Name, m.mcfg.Name())
				}
			default:
				if d == cut && len(unit.Sleep) > 0 {
					fr.sleep = make([]sleepEnt, len(unit.Sleep))
					for i, u := range unit.Sleep {
						fr.sleep[i] = sleepEnt{trans(u), m.dynFootprint(s, trans(u))}
					}
				}
				seeded := false
				for i, t := range fr.enab {
					if !sleepHas(fr.sleep, t) {
						fr.back[i] = true
						seeded = true
						break
					}
				}
				if !seeded {
					// Sleep-blocked: every enabled transition is covered by a
					// sibling exploration. Redundant prefix; abandon.
					stack = stack[:d]
					continue
				}
			}
		}

		// Pick the lowest-ordered scheduled, unexplored, awake transition.
		sel := -1
		for i := range fr.enab {
			if fr.back[i] && !fr.done[i] && !sleepHas(fr.sleep, fr.enab[i]) {
				sel = i
				break
			}
		}
		if sel < 0 {
			stack = stack[:d]
			continue
		}
		fr.done[sel] = true
		t, ft := fr.enab[sel], fr.enabFp[sel]

		// Race detection for the new event, and its clock.
		clock := m.racesOnAppend(stack, t, ft, cut)

		// Child sleep: inherited entries and already-explored siblings,
		// filtered to those independent of the taken transition.
		var childSleep []sleepEnt
		for _, u := range fr.sleep {
			if independent(u.fp, ft) {
				childSleep = append(childSleep, u)
			}
		}
		for i := range fr.enab {
			if fr.done[i] && i != sel && independent(fr.enabFp[i], ft) {
				childSleep = append(childSleep, sleepEnt{fr.enab[i], fr.enabFp[i]})
			}
		}

		n, label := m.applyT(fr.s, t)
		stack = append(stack, dframe{
			s:     n,
			trace: &traceNode{label: label, parent: fr.trace},
			t:     t,
			fp:    ft,
			clock: clock,
			sleep: childSleep,
		})
	}
	return states, outcomes, nil, nil
}

// racesOnAppend computes the happens-before clock of the event about
// to be appended (taken from the current top frame) and schedules a
// reversal for every race it closes. Scanning backwards, `covered`
// accumulates the clocks of dependent events: a dependent event not
// yet covered is adjacent to the new event in happens-before — a race.
// Races whose frame lies inside a shard's replayed prefix are skipped:
// the split phase branched every top-region node fully, so the
// reversed order lives in a sibling unit.
func (m *model) racesOnAppend(stack []dframe, tn trans, ftn uint64, cut int) ebits {
	d := len(stack) - 1 // index of the new event
	var covered ebits
	for i := d - 1; i >= 0; i-- {
		ev := &stack[i+1] // event i
		if independent(ev.fp, ftn) {
			continue
		}
		if i >= cut && !covered.test(i) {
			m.reverseRace(stack, i, tn, covered)
		}
		covered.set(i)
		covered.or(ev.clock)
	}
	return covered
}

// reverseRace schedules, at frame i, an alternative exploration that
// runs the new event's side of the race (i, new) first: one initial of
// v = notdep(i, E)·t_n, unless an initial is already scheduled there.
func (m *model) reverseRace(stack []dframe, i int, tn trans, covered ebits) {
	d := len(stack) - 1
	fr := &stack[i]

	// notdep: events after i that do not happen-after event i.
	var notdep []int
	for j := i + 1; j < d; j++ {
		if !stack[j+1].clock.test(i) {
			notdep = append(notdep, j)
		}
	}

	// Initials of v: events with no happens-before predecessor inside
	// v. The new event qualifies when nothing in notdep happens-before
	// it — `covered` holds exactly the events that do.
	var initials []trans
	for a, j := range notdep {
		isInit := true
		for _, k := range notdep[:a] {
			if stack[j+1].clock.test(k) {
				isInit = false
				break
			}
		}
		if isInit {
			initials = append(initials, stack[j+1].t)
		}
	}
	tnInit := true
	for _, j := range notdep {
		if covered.test(j) {
			tnInit = false
			break
		}
	}
	if tnInit {
		initials = append(initials, tn)
	}

	// Source-set check: an initial already scheduled at frame i covers
	// this race.
	for idx, bt := range fr.back {
		if !bt {
			continue
		}
		for _, q := range initials {
			if fr.enab[idx] == q {
				return
			}
		}
	}

	// Schedule the first initial that is enabled at frame i. When none
	// is (the footprint relation is not enabledness-preserving: an
	// event of v may only become enabled partway through it), fall back
	// to scheduling every enabled transition — the always-sound
	// Flanagan-Godefroid degenerate case.
	for _, q := range initials {
		for idx, e := range fr.enab {
			if e == q {
				fr.back[idx] = true
				return
			}
		}
	}
	for idx := range fr.back {
		fr.back[idx] = true
	}
}
