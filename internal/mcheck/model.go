package mcheck

import (
	"fmt"

	"denovogpu/internal/coherence"
	"denovogpu/internal/consistency"
	"denovogpu/internal/litmus"
	"denovogpu/internal/machine"
)

// The abstract protocol machine. One model state holds the registry
// (memory + DeNovo owner table), every CU's controller state at
// word granularity, each thread's progress, and the multiset of
// in-flight protocol messages. Transitions are the atomic steps of the
// protocol: a thread issuing its next operation, a background cache
// action (eviction, writeback, lazy-registration kick), the per-CU
// end-of-kernel release, and the delivery of the oldest message of a
// channel. Delivery order is FIFO per (src, dst, variable) channel —
// the guarantee the mesh actually provides (XY routing keeps each
// source/destination pair in order, and every litmus variable lives on
// its own line, homed on its own bank), and the guarantee the real
// controllers rely on (gpucoh orders a word's writethrough ahead of
// its AtomicReq on the same channel; denovo orders RegFwd ahead of a
// WriteBackAck rejection).
//
// The model deliberately simplifies where the simplification only adds
// behaviors (soundness is one-directional, exactly like the oracle):
// lazy-registration kicks can start on any delayed slot rather than
// only the oldest, same-CU atomics to one word are not serialized by a
// pipeline queue, and store-buffer capacity is never exhausted. MESI
// is modeled as its litmus-level observable behavior — sequential
// consistency at operation granularity (each load/store/RMW is a
// coherent, linearizable memory access) — so its checking reduces to
// enumerating SC interleavings against the DRF oracle; the
// message-level MESI machinery is instead covered by the runtime
// sanitizer and the litmus differential harness.

// Model capacity limits. Generated and catalog programs sit well below
// these; Check rejects anything larger.
const (
	maxVars         = 6
	maxThreads      = 6
	maxCUs          = 6
	maxOpsPerThread = 8
	// home is the channel-endpoint id of a variable's registry/L2 home.
	home = 0xF
)

type proto uint8

const (
	protoGPU proto = iota
	protoDeNovo
	protoSC // MESI observable behavior at litmus-op granularity
)

// modelCfg is the slice of machine.Config the abstract machine depends
// on.
type modelCfg struct {
	proto   proto
	partial bool // GPU-H: dirty words in the L1 instead of the store buffer
	lazy    bool // DeNovo: delay data-write registration to the next release
	fault   bool // fault injection: acquires skip self-invalidation
	model   consistency.Model
}

func configOf(cfg machine.Config) (modelCfg, error) {
	mc := modelCfg{
		lazy:  cfg.LazyWrites,
		fault: cfg.FaultDisableAcquireInval,
		model: cfg.Model,
	}
	switch cfg.Protocol {
	case machine.ProtoGPU:
		mc.proto = protoGPU
		mc.partial = cfg.Model == consistency.HRF
	case machine.ProtoDeNovo:
		mc.proto = protoDeNovo
	case machine.ProtoMESI:
		mc.proto = protoSC
	default:
		return mc, fmt.Errorf("mcheck: unknown protocol %v", cfg.Protocol)
	}
	return mc, nil
}

// wstate is a word's state in one CU's L1.
type wstate uint8

const (
	wInvalid wstate = iota
	wClean          // GPU Valid / DeNovo Valid: readable, maybe stale
	wDirty          // GPU-H: unflushed local write
	wReg            // DeNovo: registered (owned, globally authoritative)
)

// mkind is a model message kind.
type mkind uint8

const (
	mReadReq mkind = iota
	mReadResp
	mReadFwd
	mWT
	mWTAck
	mAtomicReq
	mAtomicResp
	mRegReq
	mRegAck
	mRegFwd
	mRegXfer
	mWB
	mWBAck
)

var mkindName = [...]string{
	"ReadReq", "ReadResp", "ReadFwd", "WT", "WTAck", "AtomicReq",
	"AtomicResp", "RegReq", "RegAck", "RegFwd", "RegXfer", "WB", "WBAck",
}

// msg is one in-flight protocol message.
type msg struct {
	kind     mkind
	src, dst uint8 // CU slot or home
	v        uint8 // variable index
	val      uint32
	thread   uint8 // requesting thread (read / atomic round trips)
	req      uint8 // requesting CU (forward chains)
	op       uint8 // litmus.OpKind (atomics)
	stale    bool  // superseded by an acquire at the requester
	accepted bool  // WBAck verdict
}

func (g msg) chanKey() uint16 {
	return uint16(g.src)<<8 | uint16(g.dst)<<4 | uint16(g.v)
}

// vname renders a variable index the way traces and details name it.
func vname[T uint8 | int](v T) string { return fmt.Sprintf("v%d", v) }

func (g msg) String() string {
	ep := func(e uint8) string {
		if e == home {
			return "home"
		}
		return fmt.Sprintf("cu%d", e)
	}
	s := fmt.Sprintf("%s %s->%s v%d val=%d", mkindName[g.kind], ep(g.src), ep(g.dst), g.v, g.val)
	if g.stale {
		s += " stale"
	}
	return s
}

// cuState is one CU's controller state, word-granular per variable.
type cuState struct {
	st  [maxVars]wstate
	val [maxVars]uint32

	// Coalescing store buffer in insertion order; at most one slot per
	// variable (each variable is its own word).
	sbVar [maxVars]uint8
	sbVal [maxVars]uint32
	sbLen uint8

	lazy  uint8 // DeNovo: buffered write not yet registering (bitmask)
	regIn uint8 // DeNovo: registration in flight (bitmask)

	wtCnt [maxVars]uint8  // GPU: outstanding writethroughs per variable
	wtVal [maxVars]uint32 // GPU: newest in-flight writethrough value

	// DeNovo registration-transaction bookkeeping.
	syncQ    [maxVars][maxThreads]uint8 // queued sync waiters (thread ids)
	syncQLen [maxVars]uint8
	defFwd   [maxVars]uint8              // deferred RegFwd requester+1 (0 = none)
	defRead  [maxVars][maxThreads]uint16 // deferred forwarded reads (packed)
	defReadN [maxVars]uint8

	// Victim buffer: evicted registered words with writebacks in flight.
	vPresent  uint8
	vServed   uint8 // a RegFwd was served from the victim copy
	vRejected uint8 // the registry rejected the writeback (stale)
	vVal      [maxVars]uint32
}

func packDefRead(req, thread uint8, stale bool) uint16 {
	p := uint16(req)<<8 | uint16(thread)
	if stale {
		p |= 1 << 15
	}
	return p
}

func unpackDefRead(p uint16) (req, thread uint8, stale bool) {
	return uint8(p >> 8 & 0x7F), uint8(p & 0xFF), p&(1<<15) != 0
}

func (c *cuState) sbLookup(v uint8) (uint32, bool) {
	for i := uint8(0); i < c.sbLen; i++ {
		if c.sbVar[i] == v {
			return c.sbVal[i], true
		}
	}
	return 0, false
}

// sbInsert coalesces in place (keeping insertion order) or appends.
func (c *cuState) sbInsert(v uint8, val uint32) {
	for i := uint8(0); i < c.sbLen; i++ {
		if c.sbVar[i] == v {
			c.sbVal[i] = val
			return
		}
	}
	c.sbVar[c.sbLen] = v
	c.sbVal[c.sbLen] = val
	c.sbLen++
}

func (c *cuState) sbRemove(v uint8) (uint32, bool) {
	for i := uint8(0); i < c.sbLen; i++ {
		if c.sbVar[i] == v {
			val := c.sbVal[i]
			copy(c.sbVar[i:c.sbLen-1], c.sbVar[i+1:c.sbLen])
			copy(c.sbVal[i:c.sbLen-1], c.sbVal[i+1:c.sbLen])
			c.sbLen--
			return val, true
		}
	}
	return 0, false
}

// state is one node of the exploration graph.
type state struct {
	mem   [maxVars]uint32
	owner [maxVars]int8 // DeNovo registry owner, -1 = memory
	cus   [maxCUs]cuState

	pcs       [maxThreads]uint8
	blocked   uint8 // thread bitmask: waiting on a message delivery
	relIssued uint8 // thread bitmask: release drain phase done
	finalRel  uint8 // CU bitmask: end-of-kernel release issued

	// relWait is the DeNovo release fence's snapshot: the variables
	// buffered in the CU when thread ti issued its release. The fence
	// waits only for these to register — a write buffered by another
	// thread after the issue does not (and must not) block the release,
	// exactly like the real controller's per-release waiter.
	relWait [maxThreads]uint8

	loads   [maxThreads][maxOpsPerThread]uint32
	loadLen [maxThreads]uint8

	msgs []msg

	// viol records a protocol-step violation discovered while applying a
	// transition (the model-level analogue of a controller panic). Not
	// part of the encoded state; exploration stops when it is set.
	viol       string
	violDetail string
}

func (s *state) clone() *state {
	n := new(state)
	*n = *s
	n.msgs = append([]msg(nil), s.msgs...)
	return n
}

func (s *state) fail(name, detail string) {
	if s.viol == "" {
		s.viol, s.violDetail = name, detail
	}
}

// model binds a configuration and program to the transition system.
type model struct {
	cfg       modelCfg
	mcfg      machine.Config
	p         *litmus.Program
	nv, nt    int
	nc        int
	threadCU  []uint8
	cuThreads [][]int
	// scVarMask is, per thread, the home-variable footprint bits of
	// every variable the thread touches — the state-independent
	// footprint of its SC steps.
	scVarMask []uint32
}

func newModel(cfg machine.Config, p *litmus.Program) (*model, error) {
	mc, err := configOf(cfg)
	if err != nil {
		return nil, err
	}
	m := &model{cfg: mc, mcfg: cfg, p: p, nv: len(p.Vars), nt: len(p.Threads)}
	if m.nv > maxVars {
		return nil, fmt.Errorf("mcheck: program %q has %d variables (limit %d)", p.Name, m.nv, maxVars)
	}
	if m.nt > maxThreads {
		return nil, fmt.Errorf("mcheck: program %q has %d threads (limit %d)", p.Name, m.nt, maxThreads)
	}
	cuSlot := make(map[int]int)
	m.threadCU = make([]uint8, m.nt)
	m.scVarMask = make([]uint32, m.nt)
	for i, t := range p.Threads {
		if len(t.Ops) > maxOpsPerThread {
			return nil, fmt.Errorf("mcheck: program %q thread %d has %d ops (limit %d)", p.Name, i, len(t.Ops), maxOpsPerThread)
		}
		slot, ok := cuSlot[t.CU]
		if !ok {
			slot = len(cuSlot)
			cuSlot[t.CU] = slot
			m.cuThreads = append(m.cuThreads, nil)
		}
		m.threadCU[i] = uint8(slot)
		m.cuThreads[slot] = append(m.cuThreads[slot], i)
		for _, op := range t.Ops {
			m.scVarMask[i] |= 1 << (8 + op.Var)
		}
	}
	m.nc = len(cuSlot)
	if m.nc > maxCUs {
		return nil, fmt.Errorf("mcheck: program %q uses %d CUs (limit %d)", p.Name, m.nc, maxCUs)
	}
	return m, nil
}

func (m *model) initial() *state {
	s := new(state)
	for v := 0; v < maxVars; v++ {
		s.owner[v] = -1
	}
	return s
}

// applyOp evaluates a sync operation against a current value.
func applyOp(kind litmus.OpKind, cur, operand uint32) (next, ret uint32, writes bool) {
	switch kind {
	case litmus.OpSyncLoad:
		return cur, cur, false
	case litmus.OpSyncStore:
		return operand, 0, true
	case litmus.OpSyncAdd:
		return cur + operand, cur, true
	}
	panic(fmt.Sprintf("mcheck: applyOp on non-sync op %v", kind))
}

func (m *model) record(s *state, ti int, val uint32) {
	s.loads[ti][s.loadLen[ti]] = val
	s.loadLen[ti]++
}

func (m *model) opOf(ti int, s *state) litmus.Op {
	return m.p.Threads[ti].Ops[s.pcs[ti]]
}

// loadLocal resolves a read against the CU's local copies in the same
// priority order as the real controllers: GPU checks dirty words, then
// the store buffer, then in-flight writethroughs, then clean copies;
// DeNovo checks the store buffer, then any non-invalid word.
func (m *model) loadLocal(cu *cuState, v uint8) (uint32, bool) {
	if m.cfg.proto == protoGPU {
		if m.cfg.partial && cu.st[v] == wDirty {
			return cu.val[v], true
		}
		if val, ok := cu.sbLookup(v); ok {
			return val, true
		}
		if cu.wtCnt[v] > 0 {
			return cu.wtVal[v], true
		}
		if cu.st[v] != wInvalid {
			return cu.val[v], true
		}
		return 0, false
	}
	if val, ok := cu.sbLookup(v); ok {
		return val, true
	}
	if cu.st[v] != wInvalid {
		return cu.val[v], true
	}
	return 0, false
}

func (m *model) sendWT(s *state, cu *cuState, ci, v uint8, val uint32) {
	cu.wtCnt[v]++
	cu.wtVal[v] = val
	s.msgs = append(s.msgs, msg{kind: mWT, src: ci, dst: home, v: v, val: val})
}

func (m *model) sendRegReq(s *state, cu *cuState, ci, v uint8) {
	cu.regIn |= 1 << v
	cu.lazy &^= 1 << v // a registration in flight absorbs a delayed slot
	s.msgs = append(s.msgs, msg{kind: mRegReq, src: ci, dst: home, v: v})
}

// storeLocal performs a plain (data) store.
func (m *model) storeLocal(s *state, ci, v uint8, val uint32) {
	cu := &s.cus[ci]
	if m.cfg.proto == protoGPU {
		if m.cfg.partial {
			cu.st[v] = wDirty
			cu.val[v] = val
			return
		}
		cu.sbInsert(v, val)
		if cu.st[v] != wInvalid {
			cu.st[v] = wClean
			cu.val[v] = val
		}
		return
	}
	// DeNovo.
	if cu.st[v] == wReg {
		cu.val[v] = val
		return
	}
	if _, ok := cu.sbLookup(v); ok {
		cu.sbInsert(v, val) // coalesce; registration already arranged
		return
	}
	cu.sbInsert(v, val)
	if cu.regIn&(1<<v) != 0 {
		return // ride the in-flight (sync) registration
	}
	if m.cfg.lazy {
		cu.lazy |= 1 << v
		return
	}
	m.sendRegReq(s, cu, ci, v)
}

// releaseIssue is the drain phase of a global release: GPU drains the
// store buffer and flushes dirty words as writethroughs; DeNovo starts
// registration of every delayed slot.
func (m *model) releaseIssue(s *state, ci uint8) {
	cu := &s.cus[ci]
	if m.cfg.proto == protoGPU {
		for cu.sbLen > 0 {
			v, val := cu.sbVar[0], cu.sbVal[0]
			cu.sbRemove(v)
			m.sendWT(s, cu, ci, v, val)
		}
		if m.cfg.partial {
			for v := 0; v < m.nv; v++ {
				if cu.st[v] == wDirty {
					m.sendWT(s, cu, ci, uint8(v), cu.val[v])
					cu.st[v] = wClean
				}
			}
		}
		return
	}
	if m.cfg.proto == protoDeNovo {
		for v := uint8(0); int(v) < m.nv; v++ {
			if cu.lazy&(1<<v) != 0 {
				m.sendRegReq(s, cu, ci, v)
			}
		}
	}
}

// fenceClear reports whether thread ti's global release fence has
// passed. GPU: the issue phase drained the buffer and flushed dirty
// words, so the fence waits for the CU's outstanding-writethrough
// count to reach zero (a CU-wide counter, as in the real controller —
// acks for another thread's concurrent flushes are also awaited).
// DeNovo: the fence waits for the issue-time snapshot of buffered
// variables to register; writes buffered afterwards by other threads
// do not block it.
func (m *model) fenceClear(s *state, ti int) bool {
	ci := m.threadCU[ti]
	cu := &s.cus[ci]
	if m.cfg.proto == protoGPU {
		for v := 0; v < m.nv; v++ {
			if cu.wtCnt[v] != 0 {
				return false
			}
		}
		return true
	}
	for i := uint8(0); i < cu.sbLen; i++ {
		if s.relWait[ti]&(1<<cu.sbVar[i]) != 0 {
			return false
		}
	}
	return true
}

// acquireInval applies a global acquire at a CU: clean copies are
// self-invalidated (dirty and registered words are the CU's own data)
// and in-flight fills destined for this CU become stale — they must
// still complete their waiting loads, but must not install.
func (m *model) acquireInval(s *state, ci uint8) {
	if m.cfg.fault {
		return
	}
	cu := &s.cus[ci]
	for v := 0; v < m.nv; v++ {
		if cu.st[v] == wClean {
			cu.st[v] = wInvalid
		}
	}
	for i := range s.msgs {
		g := &s.msgs[i]
		switch {
		case g.kind == mReadReq && g.src == ci,
			g.kind == mReadResp && g.dst == ci,
			g.kind == mReadFwd && g.req == ci:
			g.stale = true
		}
	}
	// Reads deferred at remote owners on our behalf are also stale.
	for c := 0; c < m.nc; c++ {
		o := &s.cus[c]
		for v := 0; v < m.nv; v++ {
			for i := uint8(0); i < o.defReadN[v]; i++ {
				if req, _, _ := unpackDefRead(o.defRead[v][i]); req == ci {
					o.defRead[v][i] |= 1 << 15
				}
			}
		}
	}
}

// step applies thread ti's next operation (or one phase of it).
func (m *model) step(s *state, ti int) {
	op := m.opOf(ti, s)
	ci := m.threadCU[ti]
	cu := &s.cus[ci]
	v := uint8(op.Var)
	scope := m.cfg.model.Effective(op.Scope)

	if m.cfg.proto == protoSC {
		// MESI at litmus-op granularity: every access is a coherent,
		// linearizable memory operation.
		cur := s.mem[v]
		switch op.Kind {
		case litmus.OpLoad, litmus.OpSyncLoad:
			m.record(s, ti, cur)
		case litmus.OpStore, litmus.OpSyncStore:
			s.mem[v] = op.Val
		case litmus.OpSyncAdd:
			m.record(s, ti, cur)
			s.mem[v] = cur + op.Val
		}
		s.pcs[ti]++
		return
	}

	switch op.Kind {
	case litmus.OpLoad:
		if val, ok := m.loadLocal(cu, v); ok {
			m.record(s, ti, val)
			s.pcs[ti]++
			return
		}
		s.msgs = append(s.msgs, msg{kind: mReadReq, src: ci, dst: home, v: v, thread: uint8(ti)})
		s.blocked |= 1 << ti
		return
	case litmus.OpStore:
		m.storeLocal(s, ci, v, op.Val)
		s.pcs[ti]++
		return
	}

	// Synchronization.
	releasing := (op.Kind == litmus.OpSyncStore || op.Kind == litmus.OpSyncAdd) &&
		scope == coherence.ScopeGlobal
	acquiring := (op.Kind == litmus.OpSyncLoad || op.Kind == litmus.OpSyncAdd) &&
		scope == coherence.ScopeGlobal

	if releasing && s.relIssued&(1<<ti) == 0 {
		// Release phase 1: start the drain. The operation itself performs
		// once the fence clears (enabledness gates on fenceClear).
		m.releaseIssue(s, ci)
		if m.cfg.proto == protoDeNovo {
			var w uint8
			for i := uint8(0); i < cu.sbLen; i++ {
				w |= 1 << cu.sbVar[i]
			}
			s.relWait[ti] = w
		}
		s.relIssued |= 1 << ti
		return
	}

	if m.cfg.proto == protoGPU {
		if scope == coherence.ScopeLocal {
			m.gpuLocalAtomic(s, ti, ci, op, v)
			return
		}
		// Global: flush this word's local copies ahead of the remote
		// atomic — same-channel FIFO applies them at the home first.
		if val, ok := cu.sbRemove(v); ok {
			m.sendWT(s, cu, ci, v, val)
		}
		if m.cfg.partial && cu.st[v] == wDirty {
			m.sendWT(s, cu, ci, v, cu.val[v])
		}
		cu.st[v] = wInvalid
		s.msgs = append(s.msgs, msg{
			kind: mAtomicReq, src: ci, dst: home, v: v,
			val: op.Val, thread: uint8(ti), op: uint8(op.Kind),
		})
		s.blocked |= 1 << ti
		return
	}

	// DeNovo.
	if scope == coherence.ScopeLocal && m.cfg.lazy {
		m.denovoLocalAtomic(s, ti, ci, op, v)
		return
	}
	m.denovoSync(s, ti, ci, op, v, acquiring)
}

// gpuLocalAtomic performs a locally scoped GPU-H synchronization at
// the L1: read the local copy (fetching on a miss), RMW, and buffer a
// written result as a dirty word.
func (m *model) gpuLocalAtomic(s *state, ti int, ci uint8, op litmus.Op, v uint8) {
	cu := &s.cus[ci]
	cur, ok := m.loadLocal(cu, v)
	if !ok {
		s.msgs = append(s.msgs, msg{kind: mReadReq, src: ci, dst: home, v: v, thread: uint8(ti)})
		s.blocked |= 1 << ti
		return
	}
	m.finishGPULocal(s, ti, ci, op, v, cur)
}

func (m *model) finishGPULocal(s *state, ti int, ci uint8, op litmus.Op, v uint8, cur uint32) {
	cu := &s.cus[ci]
	next, ret, writes := applyOp(op.Kind, cur, op.Val)
	if op.Kind != litmus.OpSyncStore {
		m.record(s, ti, ret)
	}
	if writes {
		if m.cfg.partial {
			cu.st[v] = wDirty
			cu.val[v] = next
		} else {
			cu.sbInsert(v, next)
			if cu.st[v] != wInvalid {
				cu.val[v] = next
			}
		}
	}
	s.pcs[ti]++
}

// denovoLocalAtomic (DH+lazy) performs a locally scoped sync at the L1
// without ownership: the result is buffered like a lazy write and
// registered at the next global release.
func (m *model) denovoLocalAtomic(s *state, ti int, ci uint8, op litmus.Op, v uint8) {
	cu := &s.cus[ci]
	var cur uint32
	if val, ok := cu.sbLookup(v); ok {
		cur = val
	} else if cu.st[v] != wInvalid {
		cur = cu.val[v]
	} else {
		s.msgs = append(s.msgs, msg{kind: mReadReq, src: ci, dst: home, v: v, thread: uint8(ti)})
		s.blocked |= 1 << ti
		return
	}
	next, ret, writes := applyOp(op.Kind, cur, op.Val)
	if op.Kind != litmus.OpSyncStore {
		m.record(s, ti, ret)
	}
	if cu.st[v] == wReg {
		if writes {
			cu.val[v] = next
		}
	} else if writes {
		cu.sbInsert(v, next)
		if cu.regIn&(1<<v) == 0 {
			cu.lazy |= 1 << v
		}
		if cu.st[v] == wClean {
			cu.val[v] = next
		}
	}
	s.pcs[ti]++
}

// denovoSync performs a registered synchronization (global scope, or
// DH's eager local scope): hit in place on an owned word, otherwise
// queue on the word's registration transaction.
func (m *model) denovoSync(s *state, ti int, ci uint8, op litmus.Op, v uint8, acquiring bool) {
	cu := &s.cus[ci]
	if cu.st[v] == wReg {
		next, ret, _ := applyOp(op.Kind, cu.val[v], op.Val)
		cu.val[v] = next
		if op.Kind != litmus.OpSyncStore {
			m.record(s, ti, ret)
		}
		s.relIssued &^= 1 << ti
		s.relWait[ti] = 0
		s.pcs[ti]++
		if acquiring {
			m.acquireInval(s, ci)
		}
		return
	}
	if cu.regIn&(1<<v) == 0 {
		m.sendRegReq(s, cu, ci, v)
	}
	cu.syncQ[v][cu.syncQLen[v]] = uint8(ti)
	cu.syncQLen[v]++
	s.blocked |= 1 << ti
}

// ownershipArrived handles RegAck and RegXfer at a CU: the buffered
// write (if any) supersedes the carried value, queued sync operations
// are serviced in order, the word installs as registered, and deferred
// remote requests are passed onward.
func (m *model) ownershipArrived(s *state, ci, v uint8, carried uint32) {
	cu := &s.cus[ci]
	if cu.regIn&(1<<v) == 0 {
		s.fail("reg-single", fmt.Sprintf("cu%d: ownership of v%d arrived without a registration in flight", ci, v))
		return
	}
	cu.regIn &^= 1 << v
	val := carried
	if sv, ok := cu.sbRemove(v); ok {
		val = sv // our buffered write supersedes the carried value
	}
	for i := uint8(0); i < cu.syncQLen[v]; i++ {
		ti := int(cu.syncQ[v][i])
		op := m.opOf(ti, s)
		next, ret, _ := applyOp(op.Kind, val, op.Val)
		val = next
		if op.Kind != litmus.OpSyncStore {
			m.record(s, ti, ret)
		}
		s.blocked &^= 1 << ti
		s.relIssued &^= 1 << ti
		s.relWait[ti] = 0
		s.pcs[ti]++
		if (op.Kind == litmus.OpSyncLoad || op.Kind == litmus.OpSyncAdd) &&
			m.cfg.model.Effective(op.Scope) == coherence.ScopeGlobal {
			m.acquireInval(s, ci)
		}
	}
	cu.syncQLen[v] = 0
	cu.st[v] = wReg
	cu.val[v] = val
	// Serve reads forwarded while the registration was in flight (the
	// registry ordered them before any later ownership transfer) …
	for i := uint8(0); i < cu.defReadN[v]; i++ {
		req, thread, stale := unpackDefRead(cu.defRead[v][i])
		s.msgs = append(s.msgs, msg{
			kind: mReadResp, src: ci, dst: req, v: v,
			val: val, thread: thread, stale: stale,
		})
	}
	cu.defReadN[v] = 0
	// … then pass ownership onward if a remote registration queued
	// behind our own accesses.
	if cu.defFwd[v] != 0 {
		req := cu.defFwd[v] - 1
		cu.defFwd[v] = 0
		cu.st[v] = wInvalid
		s.msgs = append(s.msgs, msg{kind: mRegXfer, src: ci, dst: req, v: v, val: val})
	}
}

// deliver processes the oldest message of channel (src, dst, v).
func (m *model) deliver(s *state, src, dst, v uint8) string {
	idx := -1
	for i := range s.msgs {
		if s.msgs[i].src == src && s.msgs[i].dst == dst && s.msgs[i].v == v {
			idx = i
			break
		}
	}
	if idx < 0 {
		s.fail("model-internal", fmt.Sprintf("deliver on empty channel %d->%d v%d", src, dst, v))
		return "deliver(empty)"
	}
	g := s.msgs[idx]
	s.msgs = append(s.msgs[:idx], s.msgs[idx+1:]...)
	label := "deliver " + g.String()
	if dst == home {
		m.deliverHome(s, g)
	} else {
		m.deliverCU(s, g)
	}
	return label
}

// deliverHome processes a message at the variable's registry/L2 home.
func (m *model) deliverHome(s *state, g msg) {
	v := g.v
	switch g.kind {
	case mReadReq:
		if o := s.owner[v]; o >= 0 {
			s.msgs = append(s.msgs, msg{
				kind: mReadFwd, src: home, dst: uint8(o), v: v,
				req: g.src, thread: g.thread, stale: g.stale,
			})
		} else {
			s.msgs = append(s.msgs, msg{
				kind: mReadResp, src: home, dst: g.src, v: v,
				val: s.mem[v], thread: g.thread, stale: g.stale,
			})
		}
	case mWT:
		if s.owner[v] >= 0 {
			// The L2 bank refuses writethroughs to registered words — the
			// protocols never mix on one word.
			s.fail("protocol-mixing", fmt.Sprintf("writethrough to v%d while registered to cu%d", v, s.owner[v]))
			return
		}
		s.mem[v] = g.val
		s.msgs = append(s.msgs, msg{kind: mWTAck, src: home, dst: g.src, v: v})
	case mAtomicReq:
		if s.owner[v] >= 0 {
			s.fail("protocol-mixing", fmt.Sprintf("remote atomic on v%d while registered to cu%d", v, s.owner[v]))
			return
		}
		next, ret, _ := applyOp(litmus.OpKind(g.op), s.mem[v], g.val)
		s.mem[v] = next
		s.msgs = append(s.msgs, msg{
			kind: mAtomicResp, src: home, dst: g.src, v: v,
			val: ret, thread: g.thread,
		})
	case mRegReq:
		prev := s.owner[v]
		s.owner[v] = int8(g.src)
		if prev < 0 || uint8(prev) == g.src {
			s.msgs = append(s.msgs, msg{kind: mRegAck, src: home, dst: g.src, v: v, val: s.mem[v]})
		} else {
			s.msgs = append(s.msgs, msg{kind: mRegFwd, src: home, dst: uint8(prev), v: v, req: g.src})
		}
	case mWB:
		if s.owner[v] == int8(g.src) {
			s.mem[v] = g.val
			s.owner[v] = -1
			s.msgs = append(s.msgs, msg{kind: mWBAck, src: home, dst: g.src, v: v, accepted: true})
		} else {
			// Stale writeback: ownership moved on; the data is dropped and
			// the evicting CU learns via the nack.
			s.msgs = append(s.msgs, msg{kind: mWBAck, src: home, dst: g.src, v: v})
		}
	default:
		s.fail("model-internal", fmt.Sprintf("home received %s", g.String()))
	}
}

// deliverCU processes a message at a CU.
func (m *model) deliverCU(s *state, g msg) {
	ci := g.dst
	cu := &s.cus[ci]
	v := g.v
	switch g.kind {
	case mReadResp:
		ti := int(g.thread)
		op := m.opOf(ti, s)
		// Install only when no acquire intervened since the request.
		if !g.stale {
			if m.cfg.proto == protoGPU {
				if !(m.cfg.partial && cu.st[v] == wDirty) {
					cu.st[v] = wClean
					// Own buffered or in-flight writes are newer than the
					// fill; never resurrect the pre-write value.
					if sv, ok := cu.sbLookup(v); ok {
						cu.val[v] = sv
					} else if cu.wtCnt[v] > 0 {
						cu.val[v] = cu.wtVal[v]
					} else {
						cu.val[v] = g.val
					}
				}
			} else if cu.st[v] == wInvalid {
				cu.st[v] = wClean
				cu.val[v] = g.val
			}
		}
		s.blocked &^= 1 << ti
		switch {
		case op.Kind == litmus.OpLoad:
			// The fill completes the waiting load with the fetched value,
			// stale or not (a racy read may observe pre-acquire data).
			m.record(s, ti, g.val)
			s.pcs[ti]++
		case m.cfg.proto == protoGPU:
			m.finishGPULocal(s, ti, ci, op, v, g.val)
		default:
			// DH+lazy local atomic: retry from scratch through the buffer
			// and cache so concurrent local atomics cannot lose updates.
			m.denovoLocalAtomic(s, ti, ci, op, v)
		}
	case mReadFwd:
		switch {
		case cu.st[v] == wReg:
			s.msgs = append(s.msgs, msg{
				kind: mReadResp, src: ci, dst: g.req, v: v,
				val: cu.val[v], thread: g.thread, stale: g.stale,
			})
		case cu.vPresent&(1<<v) != 0:
			s.msgs = append(s.msgs, msg{
				kind: mReadResp, src: ci, dst: g.req, v: v,
				val: cu.vVal[v], thread: g.thread, stale: g.stale,
			})
		case cu.regIn&(1<<v) != 0:
			cu.defRead[v][cu.defReadN[v]] = packDefRead(g.req, g.thread, g.stale)
			cu.defReadN[v]++
		default:
			s.fail("swmr-registration", fmt.Sprintf("cu%d: forwarded read for v%d it does not own", ci, v))
		}
	case mWTAck:
		if cu.wtCnt[v] == 0 {
			s.fail("wt-balance", fmt.Sprintf("cu%d: writethrough ack for v%d with none outstanding", ci, v))
			return
		}
		cu.wtCnt[v]--
	case mAtomicResp:
		ti := int(g.thread)
		op := m.opOf(ti, s)
		if op.Kind != litmus.OpSyncStore {
			m.record(s, ti, g.val)
		}
		s.blocked &^= 1 << ti
		s.relIssued &^= 1 << ti
		s.relWait[ti] = 0
		s.pcs[ti]++
		if op.Kind == litmus.OpSyncLoad || op.Kind == litmus.OpSyncAdd {
			m.acquireInval(s, ci)
		}
	case mRegAck, mRegXfer:
		m.ownershipArrived(s, ci, v, g.val)
	case mRegFwd:
		req := g.req
		switch {
		case cu.vPresent&(1<<v) != 0 && cu.vServed&(1<<v) == 0:
			// Serve from the victim copy, even while re-registering.
			s.msgs = append(s.msgs, msg{kind: mRegXfer, src: ci, dst: req, v: v, val: cu.vVal[v]})
			if cu.vRejected&(1<<v) != 0 {
				cu.vPresent &^= 1 << v
				cu.vServed &^= 1 << v
				cu.vRejected &^= 1 << v
			} else {
				cu.vServed |= 1 << v
			}
		case cu.regIn&(1<<v) != 0:
			if cu.defFwd[v] != 0 {
				s.fail("reg-single", fmt.Sprintf("cu%d: second RegFwd for v%d deferred behind the first", ci, v))
				return
			}
			cu.defFwd[v] = req + 1
		case cu.st[v] == wReg:
			val := cu.val[v]
			cu.st[v] = wInvalid
			s.msgs = append(s.msgs, msg{kind: mRegXfer, src: ci, dst: req, v: v, val: val})
		default:
			s.fail("swmr-registration", fmt.Sprintf("cu%d: asked to transfer v%d it does not hold", ci, v))
		}
	case mWBAck:
		if cu.vPresent&(1<<v) == 0 {
			s.fail("wb-lost", fmt.Sprintf("cu%d: writeback ack for v%d without a victim copy", ci, v))
			return
		}
		if g.accepted || cu.vServed&(1<<v) != 0 {
			cu.vPresent &^= 1 << v
			cu.vServed &^= 1 << v
			cu.vRejected &^= 1 << v
		} else {
			// Rejected before any RegFwd: the registry believes someone
			// else owns the word, so a forward is on its way (same-channel
			// FIFO would otherwise have delivered it first). Hold the
			// victim copy for it.
			cu.vRejected |= 1 << v
		}
	default:
		s.fail("model-internal", fmt.Sprintf("cu%d received %s", ci, g.String()))
	}
}

// writeBack evicts a registered word into the victim buffer.
func (m *model) writeBack(s *state, ci, v uint8) {
	cu := &s.cus[ci]
	cu.st[v] = wInvalid
	cu.vPresent |= 1 << v
	cu.vVal[v] = cu.val[v]
	cu.vServed &^= 1 << v
	cu.vRejected &^= 1 << v
	s.msgs = append(s.msgs, msg{kind: mWB, src: ci, dst: home, v: v, val: cu.vVal[v]})
}

// allOpsDone reports whether every thread has issued (and completed)
// all of its operations.
func (m *model) allOpsDone(s *state) bool {
	if s.blocked != 0 {
		return false
	}
	for ti := range m.p.Threads {
		if int(s.pcs[ti]) < len(m.p.Threads[ti].Ops) {
			return false
		}
	}
	return true
}

// cuDone reports whether every thread of CU slot ci has finished.
func (m *model) cuDone(s *state, ci int) bool {
	for _, ti := range m.cuThreads[ci] {
		if int(s.pcs[ti]) < len(m.p.Threads[ti].Ops) || s.blocked&(1<<ti) != 0 {
			return false
		}
	}
	return true
}

// terminal reports whether the execution is complete: all operations
// done, every CU's end-of-kernel release issued and drained, and no
// message in flight.
func (m *model) terminal(s *state) bool {
	if !m.allOpsDone(s) || len(s.msgs) != 0 {
		return false
	}
	if m.cfg.proto == protoSC {
		return true
	}
	for ci := 0; ci < m.nc; ci++ {
		if s.finalRel&(1<<ci) == 0 {
			return false
		}
		cu := &s.cus[ci]
		if cu.sbLen != 0 || cu.lazy != 0 || cu.regIn != 0 || cu.vPresent != 0 {
			return false
		}
		for v := 0; v < m.nv; v++ {
			if cu.wtCnt[v] != 0 || cu.syncQLen[v] != 0 || cu.defReadN[v] != 0 || cu.defFwd[v] != 0 {
				return false
			}
		}
	}
	return true
}

// outcome reads the terminal state the way the host does: a registered
// word's authoritative copy lives in its owner's L1, everything else
// in memory.
func (m *model) outcome(s *state) (litmus.Outcome, bool) {
	var o litmus.Outcome
	o.Loads = make([][]uint32, m.nt)
	for ti := 0; ti < m.nt; ti++ {
		o.Loads[ti] = append([]uint32(nil), s.loads[ti][:s.loadLen[ti]]...)
	}
	o.Final = make([]uint32, m.nv)
	for v := 0; v < m.nv; v++ {
		if ow := s.owner[v]; ow >= 0 {
			if s.cus[ow].st[v] != wReg {
				s.fail("l2-agreement", fmt.Sprintf("terminal: registry says cu%d owns v%d but its L1 does not hold it", ow, v))
				return o, false
			}
			o.Final[v] = s.cus[ow].val[v]
		} else {
			o.Final[v] = s.mem[v]
		}
	}
	return o, true
}
