package mcheck

import (
	"fmt"

	"denovogpu/internal/litmus"
	"denovogpu/internal/machine"
	"denovogpu/internal/runner"
)

// Prefix-based shard splitting. The top of the exploration tree is
// expanded breadth-first with *full branching* — every enabled
// transition at every node, filtered only by sleep sets — until the
// frontier is at least the requested unit count. Each frontier leaf
// becomes an independent Unit: the transition prefix that reaches it
// plus the sleep set it inherited. Units then run stateless
// source-DPOR below the cut (exploreDPOR with a non-zero Unit), and
// their results merge deterministically.
//
// Soundness of the cut: a race between an event inside the prefix and
// one below the cut would normally schedule a reversal at a prefix
// frame. Units skip those additions — but because the split phase
// branched every top-region node fully (sleep sets prune only
// redundant orders, which the sleep-set argument covers), the reversed
// schedule's prefix is itself a sibling unit, explored independently.
// Sleep sets compose across the cut the same way they do between
// siblings in one DFS: a unit whose first awake transition is asleep
// abandons the redundant prefix immediately.
//
// The merge contract (matching api.RunMatrix error semantics): States
// sum (the split phase's own expansions count once, prefix replays
// count zero), Outcomes union, and the Violation of the
// lowest-indexed unit — with a split-phase violation, which precedes
// every unit, winning outright. A *BudgetError from any unit surfaces
// as the lowest-unit-index error. Verdict and outcome set are
// identical to an unsharded run at any unit count or worker count;
// the States total differs between shard counts (different reductions
// prune differently) but is identical across reruns of the same
// split.

// maxSplitDepth bounds the breadth-first split phase; beyond this the
// frontier is returned as-is (programs this deep still shard, just
// into however many units exist at the cap).
const maxSplitDepth = 24

// SplitPlan is the outcome of the split phase: the work units, plus
// everything the top-region expansion itself already determined.
type SplitPlan struct {
	// Units are the frontier work units in deterministic order. Empty
	// when the whole exploration completed inside the split phase (tiny
	// programs) or when Violation is set.
	Units []Unit
	// States counts nodes the split phase expanded itself.
	States int
	// Outcomes are terminal outcomes reached inside the top region.
	Outcomes map[string]litmus.Outcome
	// Violation is a violation found inside the top region, if any.
	Violation *Violation
}

type splitNode struct {
	s      *state
	sleep  []sleepEnt
	prefix []uint32
	trace  *traceNode
}

// Split partitions the exploration of p under cfg into at least target
// independent units (branching permitting). Requires the DPOR
// explorer; the sleep-set explorer's visited table cannot be sharded.
func Split(cfg machine.Config, p *litmus.Program, opts Options, target int) (*SplitPlan, error) {
	if opts.DisablePOR || opts.Explorer == ExplorerSleepSet {
		return nil, fmt.Errorf("mcheck: sharded exploration requires the DPOR explorer")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m, err := newModel(cfg, p)
	if err != nil {
		return nil, err
	}
	oracle, err := litmus.Oracle(p, cfg.Model, opts.OracleStateLimit)
	if err != nil {
		return nil, err
	}

	plan := &SplitPlan{Outcomes: make(map[string]litmus.Outcome)}
	violation := func(name, detail string, obs *litmus.Outcome, tn *traceNode) *SplitPlan {
		plan.Units = nil
		plan.Violation = &Violation{
			Invariant: name, Detail: detail, Config: m.mcfg, Program: m.p,
			Observed: obs, Trace: tn.path(),
		}
		return plan
	}

	frontier := []splitNode{{s: m.initial()}}
	for depth := 0; depth < maxSplitDepth && len(frontier) > 0 && len(frontier) < target; depth++ {
		var next []splitNode
		for _, nd := range frontier {
			plan.States++
			s := nd.s
			if s.viol != "" {
				return violation(s.viol, s.violDetail, nil, nd.trace), nil
			}
			if name, detail := m.checkInvariants(s); name != "" {
				return violation(name, detail, nil, nd.trace), nil
			}
			if m.terminal(s) {
				o, ok := m.outcome(s)
				if !ok {
					return violation(s.viol, s.violDetail, nil, nd.trace), nil
				}
				k := o.Key()
				if _, permitted := oracle[k]; !permitted {
					return violation("oracle-conformance",
						fmt.Sprintf("reachable outcome %s is not permitted by the %v oracle", k, m.cfg.model),
						&o, nd.trace), nil
				}
				plan.Outcomes[k] = o
				continue
			}
			enab := m.enabled(s)
			if len(enab) == 0 {
				return violation("deadlock",
					"no transition enabled in a non-terminal state (lost wakeup or stranded request)",
					nil, nd.trace), nil
			}
			var explored []sleepEnt
			for _, t := range enab {
				if sleepHas(nd.sleep, t) {
					continue
				}
				ft := m.dynFootprint(s, t)
				var cs []sleepEnt
				for _, u := range nd.sleep {
					if independent(u.fp, ft) {
						cs = append(cs, u)
					}
				}
				for _, u := range explored {
					if independent(u.fp, ft) {
						cs = append(cs, u)
					}
				}
				n, label := m.applyT(s, t)
				pfx := make([]uint32, len(nd.prefix)+1)
				copy(pfx, nd.prefix)
				pfx[len(nd.prefix)] = uint32(t)
				next = append(next, splitNode{
					s: n, sleep: cs, prefix: pfx,
					trace: &traceNode{label: label, parent: nd.trace},
				})
				explored = append(explored, sleepEnt{t, ft})
			}
		}
		frontier = next
	}
	for _, nd := range frontier {
		u := Unit{Prefix: nd.prefix}
		for _, e := range nd.sleep {
			u.Sleep = append(u.Sleep, uint32(e.t))
		}
		plan.Units = append(plan.Units, u)
	}
	return plan, nil
}

// CheckShard explores one Unit of program p under cfg: the prefix is
// replayed from the root (deterministically, uncounted), then
// source-DPOR runs below the cut. The zero Unit is a whole unsharded
// exploration. Budget applies to this unit alone.
func CheckShard(cfg machine.Config, p *litmus.Program, opts Options, u Unit) (*Result, error) {
	if opts.DisablePOR || opts.Explorer == ExplorerSleepSet {
		return nil, fmt.Errorf("mcheck: sharded exploration requires the DPOR explorer")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m, err := newModel(cfg, p)
	if err != nil {
		return nil, err
	}
	oracle, err := litmus.Oracle(p, cfg.Model, opts.OracleStateLimit)
	if err != nil {
		return nil, err
	}
	budget := opts.Budget
	if budget <= 0 {
		budget = DefaultBudget
	}
	states, outcomes, viol, err := m.exploreDPOR(oracle, budget, u)
	if err != nil {
		return nil, err
	}
	return &Result{States: states, Outcomes: outcomes, Violation: viol}, nil
}

// MergeShardResults combines a split plan with its per-unit results in
// unit order: summed States, unioned Outcomes, and the violation of
// the lowest-indexed unit (the split phase's own, which precedes every
// unit, wins outright). Nil entries — units an error stopped before
// running — contribute nothing.
func MergeShardResults(plan *SplitPlan, unitResults []*Result) *Result {
	merged := &Result{
		States:    plan.States,
		Outcomes:  make(map[string]litmus.Outcome, len(plan.Outcomes)),
		Violation: plan.Violation,
	}
	for k, o := range plan.Outcomes {
		merged.Outcomes[k] = o
	}
	for _, r := range unitResults {
		if r == nil {
			continue
		}
		merged.States += r.States
		for k, o := range r.Outcomes {
			merged.Outcomes[k] = o
		}
		if merged.Violation == nil && r.Violation != nil {
			merged.Violation = r.Violation
		}
	}
	return merged
}

// CheckSharded splits the exploration into at least shards units and
// runs them on a local worker pool (workers as in runner.Options: 0 =
// GOMAXPROCS, 1 = serial). Verdict and outcome set are identical to
// Check at any shard or worker count; shards <= 1 is exactly Check.
// Errors resolve to the lowest unit index (runner semantics), so a
// *BudgetError is deterministic too.
func CheckSharded(cfg machine.Config, p *litmus.Program, opts Options, shards, workers int) (*Result, error) {
	if shards <= 1 {
		return Check(cfg, p, opts)
	}
	plan, err := Split(cfg, p, opts, shards)
	if err != nil {
		return nil, err
	}
	if plan.Violation != nil || len(plan.Units) == 0 {
		return &Result{States: plan.States, Outcomes: plan.Outcomes, Violation: plan.Violation}, nil
	}
	results := make([]*Result, len(plan.Units))
	if _, err := runner.Run(len(plan.Units), runner.Options{Workers: workers}, func(i int) error {
		r, err := CheckShard(cfg, p, opts, plan.Units[i])
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	}); err != nil {
		return nil, err
	}
	return MergeShardResults(plan, results), nil
}
