package mcheck

import (
	"fmt"
	"sort"
	"time"

	"denovogpu/internal/coherence"
	"denovogpu/internal/litmus"
)

// Exploration: a depth-first search over the model's transition graph
// with sleep-set partial-order reduction and a visited set keyed by a
// canonical state encoding.
//
// Soundness of the reduction rests on an independence relation derived
// from write footprints. Every transition's mutations fall into two
// territories: one CU's controller state (its L1 words, store buffer,
// registration bookkeeping, and the progress/blocked/loads state of
// its threads) and one variable's home state (memory word + registry
// owner + the home's message processing). Message-channel effects are
// covered by the same bits: a channel (c -> home, v) is appended to
// only by cu(c)-footprint transitions and popped only by hv(v)-
// footprint deliveries — and a tail append commutes with a head pop
// whenever both are enabled (the channel is nonempty, so the popped
// head is unaffected by the append); likewise (home -> c, v) and
// direct CU-to-CU channels. Same-channel appends always share a
// footprint bit, so FIFO ordering conflicts are never declared
// independent.
//
// The one cross-footprint mutation is acquire-time stale marking,
// which flags a read's in-flight messages wherever they sit along the
// request chain (request, forward, deferred at an owner, response).
// It commutes with every delivery: a delivery only moves the request
// one stage down the chain, propagating the flag, so marking before
// or after the move produces the same state.
//
// The canonical encoding groups messages per channel (channels in
// sorted key order, within-channel FIFO order preserved), so two
// interleavings of independent transitions encode identically — which
// both the visited set and the sleep-set argument require.

// trans identifies a transition: kind in the top byte, operands below.
type trans uint32

const (
	tkStep       = 1 // a = thread index
	tkFinalRel   = 2 // a = CU slot
	tkEvict      = 3 // a = CU slot, c = variable
	tkFlushDirty = 4 // a = CU slot, c = variable
	tkWriteBack  = 5 // a = CU slot, c = variable
	tkLazyKick   = 6 // a = CU slot, c = variable
	tkDeliver    = 7 // a = src, b = dst, c = variable
)

func mkTrans(kind, a, b, c uint8) trans {
	return trans(kind)<<24 | trans(a)<<16 | trans(b)<<8 | trans(c)
}

func (t trans) parts() (kind, a, b, c uint8) {
	return uint8(t >> 24), uint8(t >> 16), uint8(t >> 8), uint8(t)
}

// footprint returns the write territories of a transition as a bitmask:
// bits 0..maxCUs-1 are CU territories, bits 8.. are home-variable
// territories.
func (m *model) footprint(t trans) uint32 {
	kind, a, b, c := t.parts()
	cuBit := func(ci uint8) uint32 { return 1 << ci }
	hvBit := func(v uint8) uint32 { return 1 << (8 + v) }
	switch kind {
	case tkStep:
		ci := m.threadCU[a]
		if m.cfg.proto == protoSC {
			// SC steps act on memory directly; use the thread's static
			// variable set so the footprint is state-independent.
			return cuBit(ci) | m.scVarMask[a]
		}
		return cuBit(ci)
	case tkDeliver:
		if b == home {
			return hvBit(c)
		}
		return cuBit(b)
	default: // finalRel, evict, flushDirty, writeBack, lazyKick
		return cuBit(a)
	}
}

func independent[T uint32 | uint64](fa, fb T) bool { return fa&fb == 0 }

// enabled returns the enabled transitions of s in a fixed deterministic
// order: thread steps, final releases, background cache actions, then
// channel deliveries by sorted channel key.
func (m *model) enabled(s *state) []trans {
	var ts []trans
	done := m.allOpsDone(s)
	for ti := range m.p.Threads {
		if int(s.pcs[ti]) >= len(m.p.Threads[ti].Ops) || s.blocked&(1<<ti) != 0 {
			continue
		}
		if m.cfg.proto != protoSC {
			op := m.opOf(ti, s)
			releasing := (op.Kind == litmus.OpSyncStore || op.Kind == litmus.OpSyncAdd) &&
				m.cfg.model.Effective(op.Scope) == coherence.ScopeGlobal
			if releasing && s.relIssued&(1<<ti) != 0 && !m.fenceClear(s, ti) {
				continue
			}
		}
		ts = append(ts, mkTrans(tkStep, uint8(ti), 0, 0))
	}
	if m.cfg.proto != protoSC {
		if done {
			for ci := 0; ci < m.nc; ci++ {
				if s.finalRel&(1<<ci) == 0 {
					ts = append(ts, mkTrans(tkFinalRel, uint8(ci), 0, 0))
				}
			}
		} else {
			// Background cache actions. Suppressed once all operations have
			// completed: they are optional, and the final releases drain
			// whatever must still drain.
			for ci := 0; ci < m.nc; ci++ {
				cu := &s.cus[ci]
				for v := uint8(0); int(v) < m.nv; v++ {
					switch {
					case cu.st[v] == wClean:
						ts = append(ts, mkTrans(tkEvict, uint8(ci), 0, v))
					case cu.st[v] == wDirty:
						ts = append(ts, mkTrans(tkFlushDirty, uint8(ci), 0, v))
					case cu.st[v] == wReg && cu.vPresent&(1<<v) == 0:
						ts = append(ts, mkTrans(tkWriteBack, uint8(ci), 0, v))
					}
					if cu.lazy&(1<<v) != 0 {
						ts = append(ts, mkTrans(tkLazyKick, uint8(ci), 0, v))
					}
				}
			}
		}
	}
	if len(s.msgs) > 0 {
		seen := make(map[uint16]bool, len(s.msgs))
		keys := make([]int, 0, len(s.msgs))
		for i := range s.msgs {
			k := s.msgs[i].chanKey()
			if !seen[k] {
				seen[k] = true
				keys = append(keys, int(k))
			}
		}
		sort.Ints(keys)
		for _, k := range keys {
			ts = append(ts, mkTrans(tkDeliver, uint8(k>>8), uint8(k>>4&0xF), uint8(k&0xF)))
		}
	}
	return ts
}

// applyT executes transition t on a copy of s and returns it with a
// human-readable label for counterexample traces.
func (m *model) applyT(s *state, t trans) (*state, string) {
	n := s.clone()
	kind, a, b, c := t.parts()
	switch kind {
	case tkStep:
		ti := int(a)
		op := m.opOf(ti, n)
		label := fmt.Sprintf("t%d: %s", ti, op)
		m.step(n, ti)
		return n, label
	case tkFinalRel:
		m.releaseIssue(n, a)
		n.finalRel |= 1 << a
		return n, fmt.Sprintf("cu%d: final release", a)
	case tkEvict:
		n.cus[a].st[c] = wInvalid
		return n, fmt.Sprintf("cu%d: evict %s", a, vname(c))
	case tkFlushDirty:
		cu := &n.cus[a]
		m.sendWT(n, cu, a, c, cu.val[c])
		cu.st[c] = wInvalid
		return n, fmt.Sprintf("cu%d: flush dirty %s", a, vname(c))
	case tkWriteBack:
		m.writeBack(n, a, c)
		return n, fmt.Sprintf("cu%d: write back %s", a, vname(c))
	case tkLazyKick:
		m.sendRegReq(n, &n.cus[a], a, c)
		return n, fmt.Sprintf("cu%d: register lazy %s", a, vname(c))
	case tkDeliver:
		return n, m.deliver(n, a, b, c)
	}
	n.fail("model-internal", fmt.Sprintf("unknown transition %#x", uint32(t)))
	return n, "?"
}

// encode produces the canonical byte representation of a state.
func (m *model) encode(s *state) string {
	b := make([]byte, 0, 256)
	p32 := func(v uint32) {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	for v := 0; v < m.nv; v++ {
		p32(s.mem[v])
		b = append(b, byte(s.owner[v]))
	}
	for ci := 0; ci < m.nc; ci++ {
		cu := &s.cus[ci]
		for v := 0; v < m.nv; v++ {
			b = append(b, byte(cu.st[v]))
			p32(cu.val[v])
			b = append(b, cu.wtCnt[v])
			if cu.wtCnt[v] > 0 {
				p32(cu.wtVal[v])
			}
			b = append(b, cu.syncQLen[v])
			b = append(b, cu.syncQ[v][:cu.syncQLen[v]]...)
			b = append(b, cu.defFwd[v], cu.defReadN[v])
			for i := uint8(0); i < cu.defReadN[v]; i++ {
				b = append(b, byte(cu.defRead[v][i]), byte(cu.defRead[v][i]>>8))
			}
			if cu.vPresent&(1<<v) != 0 {
				p32(cu.vVal[v])
			}
		}
		b = append(b, cu.sbLen)
		for i := uint8(0); i < cu.sbLen; i++ {
			b = append(b, cu.sbVar[i])
			p32(cu.sbVal[i])
		}
		b = append(b, cu.lazy, cu.regIn, cu.vPresent, cu.vServed, cu.vRejected)
	}
	for ti := 0; ti < m.nt; ti++ {
		b = append(b, s.pcs[ti], s.loadLen[ti], s.relWait[ti])
		for i := uint8(0); i < s.loadLen[ti]; i++ {
			p32(s.loads[ti][i])
		}
	}
	b = append(b, s.blocked, s.relIssued, s.finalRel)
	// Messages grouped per channel, channels in sorted key order,
	// within-channel FIFO order preserved: interleavings of independent
	// transitions encode identically.
	if len(s.msgs) > 0 {
		keys := make([]int, 0, len(s.msgs))
		seen := make(map[uint16]bool, len(s.msgs))
		for i := range s.msgs {
			k := s.msgs[i].chanKey()
			if !seen[k] {
				seen[k] = true
				keys = append(keys, int(k))
			}
		}
		sort.Ints(keys)
		for _, k := range keys {
			b = append(b, 0xFE, byte(k), byte(k>>8))
			for i := range s.msgs {
				g := &s.msgs[i]
				if int(g.chanKey()) != k {
					continue
				}
				flags := byte(0)
				if g.stale {
					flags |= 1
				}
				if g.accepted {
					flags |= 2
				}
				b = append(b, byte(g.kind), g.thread, g.req, g.op, flags)
				p32(g.val)
			}
		}
	}
	return string(b)
}

// traceNode is one step of the path to a state, shared structurally
// across the DFS so paths cost O(1) per node.
type traceNode struct {
	label  string
	parent *traceNode
}

func (n *traceNode) path() []string {
	var rev []string
	for ; n != nil; n = n.parent {
		rev = append(rev, n.label)
	}
	out := make([]string, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// subsetOf reports whether sorted slice a is a subset of sorted b.
func subsetOf(a, b []trans) bool {
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j >= len(b) || b[j] != x {
			return false
		}
		j++
	}
	return true
}

// explore runs the reduced DFS. It returns the number of nodes
// expanded, the terminal outcomes, and the first violation found (nil
// if none), or a *BudgetError once the node budget is exhausted.
//
// The visited set stores, per canonical state, the sleep sets it has
// been expanded with; a state is pruned when a previously expanded
// sleep set is a subset of the current one (a smaller sleep set
// explores strictly more, so the current node is covered).
func (m *model) explore(oracle map[string]litmus.Outcome, budget int, disablePOR bool) (int, map[string]litmus.Outcome, *Violation, error) {
	type frame struct {
		s     *state
		sleep []trans // sorted
		trace *traceNode
	}
	outcomes := make(map[string]litmus.Outcome)
	visited := make(map[string][][]trans)
	expanded := 0
	start := time.Now()
	stack := []frame{{s: m.initial()}}

	violation := func(name, detail string, obs *litmus.Outcome, tn *traceNode) *Violation {
		return &Violation{
			Invariant: name,
			Detail:    detail,
			Config:    m.mcfg,
			Program:   m.p,
			Observed:  obs,
			Trace:     tn.path(),
		}
	}

	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		s := fr.s

		key := m.encode(s)
		covered := false
		for _, old := range visited[key] {
			if subsetOf(old, fr.sleep) {
				covered = true
				break
			}
		}
		if covered {
			continue
		}
		if expanded >= budget {
			return expanded, outcomes, nil, &BudgetError{
				Budget: budget, Config: m.mcfg.Name(), Program: m.p.Name,
				States: expanded, Elapsed: time.Since(start),
			}
		}
		expanded++
		visited[key] = append(visited[key], fr.sleep)

		if s.viol != "" {
			return expanded, outcomes, violation(s.viol, s.violDetail, nil, fr.trace), nil
		}
		if name, detail := m.checkInvariants(s); name != "" {
			return expanded, outcomes, violation(name, detail, nil, fr.trace), nil
		}

		if m.terminal(s) {
			o, ok := m.outcome(s)
			if !ok {
				return expanded, outcomes, violation(s.viol, s.violDetail, nil, fr.trace), nil
			}
			k := o.Key()
			if _, permitted := oracle[k]; !permitted {
				return expanded, outcomes, violation("oracle-conformance",
					fmt.Sprintf("reachable outcome %s is not permitted by the %v oracle", k, m.cfg.model),
					&o, fr.trace), nil
			}
			outcomes[k] = o
			continue
		}

		ts := m.enabled(s)
		if len(ts) == 0 {
			return expanded, outcomes, violation("deadlock",
				"no transition enabled in a non-terminal state (lost wakeup or stranded request)",
				nil, fr.trace), nil
		}

		sleepSet := make(map[trans]bool, len(fr.sleep))
		if !disablePOR {
			for _, u := range fr.sleep {
				sleepSet[u] = true
			}
		}
		// Children are pushed in reverse so the lowest-ordered transition
		// pops first: exploration order (and therefore which violation is
		// reported) is deterministic.
		type child struct {
			fr frame
		}
		var children []child
		var explored []trans
		for _, t := range ts {
			if sleepSet[t] {
				continue
			}
			n, label := m.applyT(s, t)
			var childSleep []trans
			if !disablePOR {
				ft := m.footprint(t)
				for _, u := range fr.sleep {
					if independent(m.footprint(u), ft) {
						childSleep = append(childSleep, u)
					}
				}
				for _, u := range explored {
					if independent(m.footprint(u), ft) {
						childSleep = append(childSleep, u)
					}
				}
				sort.Slice(childSleep, func(i, j int) bool { return childSleep[i] < childSleep[j] })
				explored = append(explored, t)
			}
			children = append(children, child{frame{
				s:     n,
				sleep: childSleep,
				trace: &traceNode{label: label, parent: fr.trace},
			}})
		}
		for i := len(children) - 1; i >= 0; i-- {
			stack = append(stack, children[i].fr)
		}
	}
	return expanded, outcomes, nil, nil
}
