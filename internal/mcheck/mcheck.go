// Package mcheck is a bounded-exhaustive model checker for the
// simulator's coherence protocols. It enumerates every message and
// schedule interleaving of a small litmus program under an abstract
// word-granular model of a configuration's protocol — GPU
// writethrough (with or without HRF partial blocks), DeNovo
// registration (eager or lazy), or MESI's sequentially consistent
// observable behavior — checking a machine-readable invariant suite
// on every reachable state and the consistency oracle on every
// terminal outcome. Sleep-set partial-order reduction over a
// footprint-based independence relation keeps the enumeration
// tractable at litmus-program sizes.
//
// The model abstracts the cycle-level simulator but keeps the
// properties the protocols rely on: per-(source, destination, word)
// FIFO message delivery (what the mesh provides and the controllers
// assume), store-buffer coalescing with write ordering, acquire-time
// self-invalidation with in-flight fills going stale rather than
// vanishing, and the registry's single-owner transfer discipline.
// Where the model and the simulator can diverge it only adds
// interleavings (any-order lazy kicks, unserialized same-word local
// atomics), so a clean check never hides a modeled-protocol bug, and
// every reported counterexample carries a transition trace plus a
// litmus.Case for replay through the simulator itself.
package mcheck

import (
	"fmt"
	"strings"
	"time"

	"denovogpu/internal/litmus"
	"denovogpu/internal/machine"
)

// DefaultBudget bounds exploration per (configuration, program). The
// stateless DPOR explorer's memory is O(depth) regardless of budget,
// so the default is sized for deep checks rather than for the visited
// table that used to cap it at 2M; the bound exists so generated
// programs cannot wedge a CI run.
const DefaultBudget = 20_000_000

// Explorer selects the exploration algorithm.
type Explorer int

const (
	// ExplorerDPOR is the default: stateless source-DPOR (dpor.go).
	// Peak memory is O(execution depth) — independent of the number of
	// states visited — so budgets in the tens of millions run at flat
	// RSS, and explorations split into Units for distribution.
	ExplorerDPOR Explorer = iota
	// ExplorerSleepSet is the legacy explorer (explore.go): sleep-set
	// POR with a canonical-encoding visited table. Kept as the
	// reference implementation for the differential wall; peak memory
	// grows with the visited set.
	ExplorerSleepSet
)

func (e Explorer) String() string {
	switch e {
	case ExplorerDPOR:
		return "dpor"
	case ExplorerSleepSet:
		return "sleepset"
	}
	return fmt.Sprintf("Explorer(%d)", int(e))
}

// ExplorerByName parses an explorer name ("dpor" or "sleepset").
func ExplorerByName(name string) (Explorer, error) {
	switch name {
	case "dpor":
		return ExplorerDPOR, nil
	case "sleepset":
		return ExplorerSleepSet, nil
	}
	return 0, fmt.Errorf("mcheck: unknown explorer %q (want dpor or sleepset)", name)
}

// Options tunes a Check call.
type Options struct {
	// Budget caps explored nodes; <= 0 uses DefaultBudget. Exceeding it
	// returns a *BudgetError. In a sharded run the budget applies per
	// unit (each shard enforces it independently).
	Budget int
	// Explorer selects the algorithm; the zero value is ExplorerDPOR.
	Explorer Explorer
	// DisablePOR explores the full interleaving graph with no
	// reduction at all (it implies ExplorerSleepSet, whose unreduced
	// DFS is the ground truth). Exists to validate the reductions
	// (same outcomes, same verdict) and for debugging; expect orders
	// of magnitude more states.
	DisablePOR bool
	// OracleStateLimit is passed through to litmus.Oracle (<= 0 uses
	// its default). A *litmus.StateLimitError from the oracle is
	// returned as an error, never as a violation.
	OracleStateLimit int
}

// Result is a completed exploration.
type Result struct {
	// States is the number of distinct nodes expanded.
	States int
	// Outcomes is every reachable terminal outcome, keyed by
	// Outcome.Key. Populated only up to the first violation.
	Outcomes map[string]litmus.Outcome
	// Violation is the first invariant or conformance failure found in
	// deterministic exploration order, or nil if the program checks
	// clean.
	Violation *Violation
}

// Violation is a model-checking counterexample.
type Violation struct {
	// Invariant is the violated invariant's name (see Invariants).
	Invariant string
	// Detail describes the failing state.
	Detail string
	Config machine.Config
	// Program is the litmus program being checked.
	Program *litmus.Program
	// Observed is the non-conformant outcome (oracle-conformance only).
	Observed *litmus.Outcome
	// Trace is the transition sequence from the initial state.
	Trace []string
}

func (v *Violation) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mcheck: %s violated under %s: %s\n  program %s\n  trace (%d steps):",
		v.Invariant, v.Config.Name(), v.Detail, v.Program.Name, len(v.Trace))
	for _, step := range v.Trace {
		b.WriteString("\n    ")
		b.WriteString(step)
	}
	return b.String()
}

// Case converts the counterexample for replay and shrinking through
// the litmus machinery. The model trace itself does not transfer — the
// simulator schedules differently — but the (configuration, program)
// pair and the offending outcome do.
func (v *Violation) Case() *litmus.Case {
	return &litmus.Case{
		Config:   v.Config.Name(),
		Fault:    v.Config.FaultDisableAcquireInval,
		Program:  v.Program,
		Schedule: litmus.ZeroSchedule(v.Program),
		Observed: v.Observed,
	}
}

// BudgetError reports that exploration exhausted its node budget
// before completing. It is a budget exhaustion, not a verdict: the
// program is unverifiable at this budget. States and Elapsed record
// the progress made at exhaustion so budget sizing is data-driven.
type BudgetError struct {
	Budget  int
	Config  string
	Program string
	// States is the number of nodes explored when the budget ran out.
	States int
	// Elapsed is the wall time spent exploring them.
	Elapsed time.Duration
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("mcheck: state budget %d exhausted checking %q under %s (%d states in %v)",
		e.Budget, e.Program, e.Config, e.States, e.Elapsed.Round(time.Millisecond))
}

// Configs returns the configurations a full check covers: the litmus
// set (the paper's five plus MESI) and the DH lazy-writes ablation,
// whose release-time registration races are exactly where exhaustive
// checking earns its keep.
func Configs() []machine.Config {
	cfgs := litmus.Configs()
	lazy := machine.DH()
	lazy.LazyWrites = true
	return append(cfgs, lazy)
}

// Check exhaustively explores program p under configuration cfg.
// A Violation is reported in the Result, not as an error; errors are
// invalid programs, oracle state-limit exhaustion
// (*litmus.StateLimitError), or exploration budget exhaustion
// (*BudgetError).
func Check(cfg machine.Config, p *litmus.Program, opts Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m, err := newModel(cfg, p)
	if err != nil {
		return nil, err
	}
	oracle, err := litmus.Oracle(p, cfg.Model, opts.OracleStateLimit)
	if err != nil {
		return nil, err
	}
	budget := opts.Budget
	if budget <= 0 {
		budget = DefaultBudget
	}
	var (
		states   int
		outcomes map[string]litmus.Outcome
		viol     *Violation
	)
	if opts.Explorer == ExplorerSleepSet || opts.DisablePOR {
		states, outcomes, viol, err = m.explore(oracle, budget, opts.DisablePOR)
	} else {
		states, outcomes, viol, err = m.exploreDPOR(oracle, budget, Unit{})
	}
	if err != nil {
		return nil, err
	}
	return &Result{States: states, Outcomes: outcomes, Violation: viol}, nil
}
