package mcheck

import (
	"errors"
	"testing"

	"denovogpu/internal/litmus"
	"denovogpu/internal/machine"
)

// TestCatalogClean exhaustively checks every catalog shape under every
// configuration (the litmus six plus DH+lazy): no invariant violation,
// no oracle non-conformance, within the default budget.
func TestCatalogClean(t *testing.T) {
	// The four-thread and three-CU DeNovo cells run to tens of millions
	// of DPOR nodes (minutes of wall clock each; far more under the
	// race detector), and IRIW+scoped under DD/DD+RO/DH+lazy exceeds
	// any affordable stateless budget outright (see EXPERIMENTS.md:
	// co-located sync threads make acquire self-invalidation conflict
	// with every same-CU cache mutation, so the Mazurkiewicz trace
	// count dwarfs the 218k-state space). The CI mcheck job covers the
	// heavy cells through `litmus check` at the default budget on every
	// push; skip them here unconditionally so the plain `go test ./...`
	// wall stays bounded.
	heavy := map[string]bool{"IRIW+sync": true, "IRIW+scoped": true, "ISA2+transitive": true}
	for _, cfg := range Configs() {
		for _, e := range litmus.Catalog() {
			if heavy[e.Program.Name] && cfg.Protocol == machine.ProtoDeNovo {
				continue
			}
			res, err := Check(cfg, e.Program, Options{})
			if err != nil {
				t.Fatalf("%s / %s: %v", cfg.Name(), e.Program.Name, err)
			}
			if res.Violation != nil {
				t.Fatalf("%s / %s: %v", cfg.Name(), e.Program.Name, res.Violation)
			}
			if len(res.Outcomes) == 0 {
				t.Fatalf("%s / %s: no terminal outcome reached", cfg.Name(), e.Program.Name)
			}
			t.Logf("%-8s %-22s %7d states, %d outcomes", cfg.Name(), e.Program.Name, res.States, len(res.Outcomes))
		}
	}
}

// TestPORSoundOnCatalog validates the sleep-set reduction: with and
// without POR, exploration reaches exactly the same terminal outcomes
// and the same verdict.
func TestPORSoundOnCatalog(t *testing.T) {
	shapes := map[string]bool{"MP": true, "SB+sync": true, "CoRR": true, "LB": true}
	for _, cfg := range Configs() {
		for _, e := range litmus.Catalog() {
			if !shapes[e.Program.Name] {
				continue
			}
			por, err := Check(cfg, e.Program, Options{})
			if err != nil {
				t.Fatalf("%s / %s (POR): %v", cfg.Name(), e.Program.Name, err)
			}
			full, err := Check(cfg, e.Program, Options{DisablePOR: true})
			if err != nil {
				t.Fatalf("%s / %s (full): %v", cfg.Name(), e.Program.Name, err)
			}
			if (por.Violation == nil) != (full.Violation == nil) {
				t.Fatalf("%s / %s: POR verdict %v, full verdict %v",
					cfg.Name(), e.Program.Name, por.Violation, full.Violation)
			}
			for k := range full.Outcomes {
				if _, ok := por.Outcomes[k]; !ok {
					t.Errorf("%s / %s: outcome %s reachable without POR but missed with it",
						cfg.Name(), e.Program.Name, k)
				}
			}
			for k := range por.Outcomes {
				if _, ok := full.Outcomes[k]; !ok {
					t.Errorf("%s / %s: outcome %s found only with POR", cfg.Name(), e.Program.Name, k)
				}
			}
		}
	}
}

// TestWeakOutcomesReachable spot-checks model completeness: the racy
// store-buffering weak outcome (both loads 0, permitted by both
// models) must be reachable under GD, where write buffering is the
// protocol's signature relaxation.
func TestWeakOutcomesReachable(t *testing.T) {
	for _, e := range litmus.Catalog() {
		if e.Program.Name != "SB+data" {
			continue
		}
		res, err := Check(machine.GD(), e.Program, Options{})
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, o := range res.Outcomes {
			if e.Weak(o) {
				found = true
			}
		}
		if !found {
			t.Fatalf("SB+data weak outcome unreachable in the GD model; outcomes: %v", keys(res.Outcomes))
		}
		return
	}
	t.Fatal("SB+data not in catalog")
}

// TestFaultInjectionFindsViolation turns off acquire invalidation (the
// litmus engine's seeded fault) and checks the message-passing shape
// whose reader pre-caches stale data: the checker must flush out the
// stale read as an oracle-conformance violation whose Case replays.
func TestFaultInjectionFindsViolation(t *testing.T) {
	var mp *litmus.Program
	for _, e := range litmus.Catalog() {
		if e.Program.Name == "MP+preload" {
			mp = e.Program
		}
	}
	if mp == nil {
		t.Fatal("MP+preload not in catalog")
	}
	for _, base := range []machine.Config{machine.GD(), machine.DD()} {
		cfg := base
		cfg.FaultDisableAcquireInval = true
		res, err := Check(cfg, mp, Options{})
		if err != nil {
			t.Fatalf("%s: %v", base.Name(), err)
		}
		if res.Violation == nil {
			t.Fatalf("%s: fault injection not detected", base.Name())
		}
		v := res.Violation
		if v.Invariant != "oracle-conformance" {
			t.Fatalf("%s: violated %q, want oracle-conformance", base.Name(), v.Invariant)
		}
		if v.Observed == nil || len(v.Trace) == 0 {
			t.Fatalf("%s: counterexample missing outcome or trace: %+v", base.Name(), v)
		}
		c := v.Case()
		if c.Config != base.Name() || !c.Fault {
			t.Fatalf("%s: case misnames the configuration: %q fault=%v", base.Name(), c.Config, c.Fault)
		}
		if _, err := c.MarshalIndent(); err != nil {
			t.Fatalf("%s: case does not marshal: %v", base.Name(), err)
		}
	}
}

// TestBudgetError checks that exhausting the exploration budget is a
// typed, distinguishable error — never a verdict.
func TestBudgetError(t *testing.T) {
	var mp *litmus.Program
	for _, e := range litmus.Catalog() {
		if e.Program.Name == "MP" {
			mp = e.Program
		}
	}
	_, err := Check(machine.GD(), mp, Options{Budget: 10})
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("got %v, want *BudgetError", err)
	}
	if be.Budget != 10 || be.Program != "MP" {
		t.Fatalf("budget error fields: %+v", be)
	}
}

// TestOracleStateLimitPropagates checks that an oracle budget
// exhaustion surfaces as *litmus.StateLimitError, distinguishable from
// both violations and the checker's own budget error.
func TestOracleStateLimitPropagates(t *testing.T) {
	var mp *litmus.Program
	for _, e := range litmus.Catalog() {
		if e.Program.Name == "MP" {
			mp = e.Program
		}
	}
	_, err := Check(machine.GD(), mp, Options{OracleStateLimit: 2})
	var sl *litmus.StateLimitError
	if !errors.As(err, &sl) {
		t.Fatalf("got %v, want *litmus.StateLimitError", err)
	}
	var be *BudgetError
	if errors.As(err, &be) {
		t.Fatal("oracle state-limit error must not look like a checker budget error")
	}
}

// TestProgramLimits rejects programs beyond the model's fixed
// capacities instead of silently truncating them.
func TestProgramLimits(t *testing.T) {
	big := &litmus.Program{Name: "too-wide", Vars: make([]litmus.VarClass, maxVars+1)}
	big.Threads = []litmus.Thread{{CU: 0, Ops: []litmus.Op{{Kind: litmus.OpLoad, Var: 0}}}}
	if _, err := Check(machine.GD(), big, Options{}); err == nil {
		t.Fatal("program with too many variables accepted")
	}
	many := &litmus.Program{Name: "too-threaded", Vars: []litmus.VarClass{litmus.Data}}
	for i := 0; i < maxThreads+1; i++ {
		many.Threads = append(many.Threads, litmus.Thread{CU: i, Ops: []litmus.Op{{Kind: litmus.OpLoad, Var: 0}}})
	}
	if _, err := Check(machine.GD(), many, Options{}); err == nil {
		t.Fatal("program with too many threads accepted")
	}
}

func keys(m map[string]litmus.Outcome) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}
