package mcheck

import (
	"sort"
	"testing"

	"denovogpu/internal/litmus"
	"denovogpu/internal/machine"
)

// outcomeKeys returns the sorted outcome-key set of a result.
func outcomeKeys(m map[string]litmus.Outcome) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func sameKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDPORConformance is the differential wall for the stateless
// source-DPOR explorer: over the full litmus catalog × every
// configuration (the litmus six plus DH+lazy), DPOR and the legacy
// sleep-set explorer must agree on the verdict and on the exact set of
// reachable terminal outcomes. The heavy DeNovo cells are skipped
// unconditionally, exactly as in TestCatalogClean: each costs minutes
// of DPOR wall (IRIW+scoped under DD/DD+RO/DH+lazy never completes at
// an affordable stateless budget — see EXPERIMENTS.md), and the CI
// mcheck job cross-checks both explorers' per-cell outcome counts at
// full depth on every push.
func TestDPORConformance(t *testing.T) {
	heavy := map[string]bool{"IRIW+sync": true, "IRIW+scoped": true, "ISA2+transitive": true}
	for _, cfg := range Configs() {
		for _, e := range litmus.Catalog() {
			if heavy[e.Program.Name] && cfg.Protocol == machine.ProtoDeNovo {
				continue
			}
			cfg, e := cfg, e
			t.Run(cfg.Name()+"/"+e.Program.Name, func(t *testing.T) {
				t.Parallel()
				dpor, err := Check(cfg, e.Program, Options{Explorer: ExplorerDPOR})
				if err != nil {
					t.Fatalf("dpor: %v", err)
				}
				ss, err := Check(cfg, e.Program, Options{Explorer: ExplorerSleepSet})
				if err != nil {
					t.Fatalf("sleepset: %v", err)
				}
				if (dpor.Violation == nil) != (ss.Violation == nil) {
					t.Fatalf("verdicts differ: dpor %v, sleepset %v", dpor.Violation, ss.Violation)
				}
				if dpor.Violation != nil {
					return // both found one; traces legitimately differ
				}
				dk, sk := outcomeKeys(dpor.Outcomes), outcomeKeys(ss.Outcomes)
				if !sameKeys(dk, sk) {
					t.Fatalf("outcome sets differ:\n  dpor     (%d): %v\n  sleepset (%d): %v",
						len(dk), dk, len(sk), sk)
				}
				t.Logf("dpor %d vs sleepset %d states, %d outcomes", dpor.States, ss.States, len(dk))
			})
		}
	}
}

// TestDPORConformanceUnderFault runs the differential wall's
// violation side: with the acquire-invalidation fault injected, both
// explorers must flush out the stale read on the preload shape as an
// oracle-conformance violation.
func TestDPORConformanceUnderFault(t *testing.T) {
	var mp *litmus.Program
	for _, e := range litmus.Catalog() {
		if e.Program.Name == "MP+preload" {
			mp = e.Program
		}
	}
	if mp == nil {
		t.Fatal("MP+preload not in catalog")
	}
	for _, base := range []machine.Config{machine.GD(), machine.DD()} {
		cfg := base
		cfg.FaultDisableAcquireInval = true
		for _, ex := range []Explorer{ExplorerDPOR, ExplorerSleepSet} {
			res, err := Check(cfg, mp, Options{Explorer: ex})
			if err != nil {
				t.Fatalf("%s/%s: %v", base.Name(), ex, err)
			}
			if res.Violation == nil || res.Violation.Invariant != "oracle-conformance" {
				t.Fatalf("%s/%s: want oracle-conformance violation, got %v", base.Name(), ex, res.Violation)
			}
		}
	}
}

// TestShardDeterminism is the shard-split guarantee: a sharded
// exploration (any unit count, any worker count) reports the same
// verdict and the same terminal-outcome set as a serial one, and
// reruns of the same split are byte-identical (same States total).
func TestShardDeterminism(t *testing.T) {
	shapes := map[string]bool{"MP": true, "SB+sync": true, "CoRR": true, "LB": true, "WRC": true}
	for _, cfg := range Configs() {
		for _, e := range litmus.Catalog() {
			if !shapes[e.Program.Name] {
				continue
			}
			serial, err := Check(cfg, e.Program, Options{})
			if err != nil {
				t.Fatalf("%s / %s serial: %v", cfg.Name(), e.Program.Name, err)
			}
			s1, err := CheckSharded(cfg, e.Program, Options{}, 1, 1)
			if err != nil {
				t.Fatalf("%s / %s shards=1: %v", cfg.Name(), e.Program.Name, err)
			}
			// shards <= 1 must be *exactly* the serial exploration.
			if s1.States != serial.States || !sameKeys(outcomeKeys(s1.Outcomes), outcomeKeys(serial.Outcomes)) {
				t.Fatalf("%s / %s: shards=1 (%d states) differs from serial (%d states)",
					cfg.Name(), e.Program.Name, s1.States, serial.States)
			}
			s8a, err := CheckSharded(cfg, e.Program, Options{}, 8, 1)
			if err != nil {
				t.Fatalf("%s / %s shards=8 workers=1: %v", cfg.Name(), e.Program.Name, err)
			}
			s8b, err := CheckSharded(cfg, e.Program, Options{}, 8, 8)
			if err != nil {
				t.Fatalf("%s / %s shards=8 workers=8: %v", cfg.Name(), e.Program.Name, err)
			}
			if s8a.States != s8b.States {
				t.Fatalf("%s / %s: worker count changed the merged state total (%d vs %d)",
					cfg.Name(), e.Program.Name, s8a.States, s8b.States)
			}
			if (s8a.Violation == nil) != (serial.Violation == nil) {
				t.Fatalf("%s / %s: sharded verdict %v, serial %v",
					cfg.Name(), e.Program.Name, s8a.Violation, serial.Violation)
			}
			if !sameKeys(outcomeKeys(s8a.Outcomes), outcomeKeys(serial.Outcomes)) {
				t.Fatalf("%s / %s: sharded outcomes %v, serial %v",
					cfg.Name(), e.Program.Name, outcomeKeys(s8a.Outcomes), outcomeKeys(serial.Outcomes))
			}
		}
	}
}

// TestShardSplitShapes pins the split-phase contract: units cover the
// frontier, prefixes replay (CheckShard accepts every unit), and the
// merged result equals running the units by hand.
func TestShardSplitShapes(t *testing.T) {
	var mp *litmus.Program
	for _, e := range litmus.Catalog() {
		if e.Program.Name == "MP" {
			mp = e.Program
		}
	}
	cfg := machine.DD()
	plan, err := Split(cfg, mp, Options{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Units) < 8 {
		t.Fatalf("split produced %d units, want >= 8", len(plan.Units))
	}
	var results []*Result
	for i, u := range plan.Units {
		if len(u.Prefix) == 0 {
			t.Fatalf("unit %d has an empty prefix", i)
		}
		r, err := CheckShard(cfg, mp, Options{}, u)
		if err != nil {
			t.Fatalf("unit %d: %v", i, err)
		}
		results = append(results, r)
	}
	merged := MergeShardResults(plan, results)
	want := plan.States
	for _, r := range results {
		want += r.States
	}
	if merged.States != want {
		t.Fatalf("merged states %d, want the sum %d", merged.States, want)
	}
	serial, err := Check(cfg, mp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameKeys(outcomeKeys(merged.Outcomes), outcomeKeys(serial.Outcomes)) {
		t.Fatalf("merged outcomes %v, serial %v", outcomeKeys(merged.Outcomes), outcomeKeys(serial.Outcomes))
	}
}

// TestShardFaultFindsViolation: a sharded run must still catch the
// injected fault, reported from the lowest-indexed unit.
func TestShardFaultFindsViolation(t *testing.T) {
	var mp *litmus.Program
	for _, e := range litmus.Catalog() {
		if e.Program.Name == "MP+preload" {
			mp = e.Program
		}
	}
	cfg := machine.DD()
	cfg.FaultDisableAcquireInval = true
	res, err := CheckSharded(cfg, mp, Options{}, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil || res.Violation.Invariant != "oracle-conformance" {
		t.Fatalf("sharded run missed the injected fault: %v", res.Violation)
	}
	// Determinism: rerunning reports the identical counterexample.
	res2, err := CheckSharded(cfg, mp, Options{}, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Violation == nil || res2.Violation.Detail != res.Violation.Detail {
		t.Fatalf("sharded violation not deterministic:\n  %v\n  %v", res.Violation, res2.Violation)
	}
}

// TestBudgetErrorProgress: the typed budget error carries the states
// explored and elapsed wall time at exhaustion, for both explorers.
func TestBudgetErrorProgress(t *testing.T) {
	var mp *litmus.Program
	for _, e := range litmus.Catalog() {
		if e.Program.Name == "MP" {
			mp = e.Program
		}
	}
	for _, ex := range []Explorer{ExplorerDPOR, ExplorerSleepSet} {
		_, err := Check(machine.GD(), mp, Options{Budget: 10, Explorer: ex})
		be, ok := err.(*BudgetError)
		if !ok {
			t.Fatalf("%v: got %v, want *BudgetError", ex, err)
		}
		if be.States != 10 {
			t.Fatalf("%v: budget error reports %d states, want 10", ex, be.States)
		}
		if be.Elapsed <= 0 {
			t.Fatalf("%v: budget error elapsed %v, want > 0", ex, be.Elapsed)
		}
	}
}
