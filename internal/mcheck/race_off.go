//go:build !race

package mcheck

// raceEnabled reports whether the race detector is active; the
// exhaustive catalog test skips its heaviest cells under the detector
// (the dedicated CI mcheck job covers them without it).
const raceEnabled = false
