package mcheck

import "fmt"

// The machine-readable invariant suite. Each named invariant is
// checked on every explored state; the same names are used by the
// runtime sanitizer's quiesced-state checks so a model-checker
// counterexample and a simulator assertion failure read the same way.

// Invariant names a protocol invariant and documents what it protects.
type Invariant struct {
	Name string
	Doc  string
}

// Invariants returns the full suite in checking order.
func Invariants() []Invariant {
	return []Invariant{
		{"swmr-registration", "per word, at most one L1 holds it registered; ownership transfers through the registry are never duplicated"},
		{"sb-fifo", "the store buffer holds at most one coalesced slot per word, in insertion order"},
		{"lazy-reg-exclusive", "a word is never both lazily delayed and mid-registration: a registration in flight must absorb the delayed slot, or release-time kicks would issue a duplicate request and orphan the first transaction's waiters"},
		{"lazy-orphan", "every lazily delayed word has a buffered write backing it"},
		{"wt-balance", "per CU and word, the outstanding-writethrough count equals the writethroughs and acks in flight; no ack is lost or duplicated"},
		{"reg-single", "per CU and word, exactly one registration token (request, ack, forward, transfer, or deferred forward) is in flight iff a registration is pending"},
		{"dirty-protocol", "dirty L1 words exist only under the GPU protocol with HRF partial blocks; registered words only under DeNovo"},
		{"l2-agreement", "for quiescent words, the registry's owner and the L1s' registered state agree exactly"},
		{"protocol-mixing", "the home never applies a writethrough or remote atomic to a registered word"},
		{"wb-lost", "every writeback ack finds its victim copy; no registered data is dropped"},
		{"deadlock", "a non-terminal state always has an enabled transition (no lost wakeups, no stranded requests)"},
		{"oracle-conformance", "every reachable terminal outcome is permitted by the consistency model's oracle"},
		{"phase-drain", "after a phase-transition drain, the registry holds no registered words and every outgoing L1 is quiesced and clean — no ownership, buffered write, or non-read-only valid word survives a protocol switch (the model explores one protocol per run, so this is enforced by the runtime sanitizer at every switch rather than by state exploration)"},
	}
}

// checkInvariants validates the stateful invariants on s, returning
// the violated invariant's name and a detail string, or "" if all
// hold. (protocol-mixing, wb-lost, reg-single delivery hazards, and
// deadlock are detected where they occur, in the transition
// application and the explorer.)
func (m *model) checkInvariants(s *state) (string, string) {
	if m.cfg.proto == protoSC {
		return "", ""
	}
	// swmr-registration / dirty-protocol.
	for v := 0; v < m.nv; v++ {
		ownerCU := -1
		for ci := 0; ci < m.nc; ci++ {
			switch s.cus[ci].st[v] {
			case wReg:
				if m.cfg.proto != protoDeNovo {
					return "dirty-protocol", fmt.Sprintf("cu%d holds %s registered under a non-DeNovo protocol", ci, vname(v))
				}
				if ownerCU >= 0 {
					return "swmr-registration", fmt.Sprintf("cu%d and cu%d both hold %s registered", ownerCU, ci, vname(v))
				}
				ownerCU = ci
			case wDirty:
				if m.cfg.proto != protoGPU || !m.cfg.partial {
					return "dirty-protocol", fmt.Sprintf("cu%d holds %s dirty outside GPU partial-block mode", ci, vname(v))
				}
			}
		}
	}
	for ci := 0; ci < m.nc; ci++ {
		cu := &s.cus[ci]
		// sb-fifo: one coalesced slot per word.
		var seen uint8
		for i := uint8(0); i < cu.sbLen; i++ {
			bit := uint8(1) << cu.sbVar[i]
			if seen&bit != 0 {
				return "sb-fifo", fmt.Sprintf("cu%d buffers %s twice", ci, vname(cu.sbVar[i]))
			}
			seen |= bit
		}
		// lazy-reg-exclusive and lazy-orphan.
		if x := cu.lazy & cu.regIn; x != 0 {
			return "lazy-reg-exclusive", fmt.Sprintf("cu%d: %s is lazily delayed while its registration is in flight", ci, m.varOfBit(x))
		}
		if orphan := cu.lazy &^ seen; orphan != 0 {
			return "lazy-orphan", fmt.Sprintf("cu%d: %s is lazily delayed with no buffered write", ci, m.varOfBit(orphan))
		}
	}
	// wt-balance: count in-flight writethrough traffic per (cu, var).
	if m.cfg.proto == protoGPU {
		var inflight [maxCUs][maxVars]int
		for i := range s.msgs {
			g := &s.msgs[i]
			if g.kind == mWT && g.dst == home {
				inflight[g.src][g.v]++
			}
			if g.kind == mWTAck && g.src == home {
				inflight[g.dst][g.v]++
			}
		}
		for ci := 0; ci < m.nc; ci++ {
			for v := 0; v < m.nv; v++ {
				if int(s.cus[ci].wtCnt[v]) != inflight[ci][v] {
					return "wt-balance", fmt.Sprintf("cu%d: %d writethroughs outstanding for %s but %d in flight",
						ci, s.cus[ci].wtCnt[v], vname(v), inflight[ci][v])
				}
			}
		}
	}
	if m.cfg.proto == protoDeNovo {
		// reg-single: exactly one registration token in flight per
		// pending registration, zero otherwise.
		var tokens [maxCUs][maxVars]int
		for i := range s.msgs {
			g := &s.msgs[i]
			switch g.kind {
			case mRegReq:
				tokens[g.src][g.v]++
			case mRegAck, mRegXfer:
				tokens[g.dst][g.v]++
			case mRegFwd:
				tokens[g.req][g.v]++
			}
		}
		for ci := 0; ci < m.nc; ci++ {
			for v := 0; v < m.nv; v++ {
				if d := s.cus[ci].defFwd[v]; d != 0 {
					tokens[d-1][v]++
				}
			}
		}
		for ci := 0; ci < m.nc; ci++ {
			for v := 0; v < m.nv; v++ {
				want := 0
				if s.cus[ci].regIn&(1<<v) != 0 {
					want = 1
				}
				if tokens[ci][v] != want {
					return "reg-single", fmt.Sprintf("cu%d: %d registration tokens in flight for %s (want %d)",
						ci, tokens[ci][v], vname(v), want)
				}
			}
		}
		// l2-agreement on quiescent words: no registration or writeback
		// traffic touching v anywhere.
		for v := uint8(0); int(v) < m.nv; v++ {
			quiet := true
			for i := range s.msgs {
				g := &s.msgs[i]
				if g.v != v {
					continue
				}
				switch g.kind {
				case mRegReq, mRegAck, mRegFwd, mRegXfer, mWB, mWBAck:
					quiet = false
				}
			}
			for ci := 0; quiet && ci < m.nc; ci++ {
				if s.cus[ci].regIn&(1<<v) != 0 || s.cus[ci].vPresent&(1<<v) != 0 || s.cus[ci].defFwd[v] != 0 {
					quiet = false
				}
			}
			if !quiet {
				continue
			}
			regCU := -1
			for ci := 0; ci < m.nc; ci++ {
				if s.cus[ci].st[v] == wReg {
					regCU = ci
				}
			}
			switch {
			case s.owner[v] < 0 && regCU >= 0:
				return "l2-agreement", fmt.Sprintf("cu%d holds %s registered but the registry says memory owns it", regCU, vname(v))
			case s.owner[v] >= 0 && regCU != int(s.owner[v]):
				return "l2-agreement", fmt.Sprintf("registry says cu%d owns %s but that L1 does not hold it registered", s.owner[v], vname(v))
			}
		}
	}
	return "", ""
}

func (m *model) varOfBit(mask uint8) string {
	for v := 0; v < m.nv; v++ {
		if mask&(1<<v) != 0 {
			return vname(v)
		}
	}
	return fmt.Sprintf("bit %#x", mask)
}
