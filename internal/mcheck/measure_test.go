package mcheck

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"denovogpu/internal/litmus"
	"denovogpu/internal/machine"
)

// TestMeasureExplorers is a manual measurement harness, not a CI test:
//
//	MCHECK_MEASURE=prog1,prog2 [MCHECK_MEASURE_CFG=DD,DH] \
//	  go test -run TestMeasureExplorers -v
//
// It prints, per (config, program, explorer): states, outcomes, wall
// time, and the peak live heap sampled while the exploration ran (the
// number that separates the O(depth) DPOR explorer from the
// O(visited) sleep-set table).
func TestMeasureExplorers(t *testing.T) {
	sel := os.Getenv("MCHECK_MEASURE")
	if sel == "" {
		t.Skip("set MCHECK_MEASURE to a comma-separated program list")
	}
	want := map[string]bool{}
	for _, n := range split(sel) {
		want[n] = true
	}
	wantCfg := map[string]bool{}
	for _, n := range split(os.Getenv("MCHECK_MEASURE_CFG")) {
		wantCfg[n] = true
	}
	for _, e := range litmus.Catalog() {
		if !want[e.Program.Name] {
			continue
		}
		for _, cfg := range Configs() {
			if cfg.Protocol != machine.ProtoDeNovo {
				continue
			}
			if len(wantCfg) > 0 && !wantCfg[cfg.Name()] {
				continue
			}
			for _, ex := range []Explorer{ExplorerDPOR, ExplorerSleepSet} {
				runtime.GC()
				var m0 runtime.MemStats
				runtime.ReadMemStats(&m0)
				peak := uint64(0)
				stop := make(chan struct{})
				done := make(chan struct{})
				go func() {
					defer close(done)
					var ms runtime.MemStats
					for {
						select {
						case <-stop:
							return
						case <-time.After(20 * time.Millisecond):
							runtime.ReadMemStats(&ms)
							if ms.HeapAlloc > peak {
								peak = ms.HeapAlloc
							}
						}
					}
				}()
				st := time.Now()
				res, err := Check(cfg, e.Program, Options{Explorer: ex, Budget: 40_000_000})
				el := time.Since(st)
				close(stop)
				<-done
				if err != nil {
					fmt.Printf("%-8s %-16s %-8s ERR %v (%.1fs)\n", cfg.Name(), e.Program.Name, ex, err, el.Seconds())
					continue
				}
				fmt.Printf("%-8s %-16s %-8s %9d states %2d outcomes %7.2fs %7.1f MB peak heap\n",
					cfg.Name(), e.Program.Name, ex, res.States, len(res.Outcomes), el.Seconds(),
					float64(peak)/1e6)
			}
		}
	}
}

func split(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
