package workload

import (
	"fmt"
	"sort"

	"denovogpu/internal/mem"
)

// Host is what a workload's driver (the CPU side) sees: kernel launch
// plus functional coherent memory access between kernels. The machine
// package implements it.
type Host interface {
	// Launch runs a kernel over numTBs thread blocks of threadsPerTB
	// threads, returning after the kernel (and its boundary release)
	// completes in simulated time.
	Launch(k Kernel, numTBs, threadsPerTB int)
	// Read performs an untimed coherent read (between kernels).
	Read(a mem.Addr) uint32
	// Write performs an untimed coherent write (between kernels).
	Write(a mem.Addr, v uint32)
	// SetReadOnly declares [lo, hi) read-only for DeNovo's DD+RO
	// selective invalidation. The declaration is hardware-agnostic
	// program information: configurations without the optimization
	// ignore it.
	SetReadOnly(lo, hi mem.Addr)
	// ClearReadOnly revokes all read-only declarations; required before
	// the host writes a previously declared range.
	ClearReadOnly()
	// NumCUs returns the number of GPU compute units.
	NumCUs() int
}

// Canonical kernel-phase labels for per-phase protocol specialization.
// A "push" kernel scatters updates with relaxed atomics (writethrough
// friendly); a "pull" kernel streams reads and issues plain stores to
// data it will reuse (ownership friendly).
const (
	PhasePush = "push"
	PhasePull = "pull"
)

// PhasedHost is an optional Host extension: a launch that names the
// kernel's phase so the machine can specialize the coherence protocol
// per phase (machine.Config.Phases). Hosts without the extension run
// the kernel under the fixed base protocol.
type PhasedHost interface {
	Host
	// LaunchPhase is Launch with a phase label. An unknown or empty
	// phase runs under the base protocol.
	LaunchPhase(phase string, k Kernel, numTBs, threadsPerTB int)
}

// LaunchPhase launches k under the named phase when the host supports
// specialization, and falls back to a plain Launch otherwise. Workloads
// call this so they run unchanged on both kinds of host.
func LaunchPhase(h Host, phase string, k Kernel, numTBs, threadsPerTB int) {
	if ph, ok := h.(PhasedHost); ok {
		ph.LaunchPhase(phase, k, numTBs, threadsPerTB)
		return
	}
	h.Launch(k, numTBs, threadsPerTB)
}

// Category groups benchmarks the way the paper's evaluation does.
type Category int

const (
	// NoSync: traditional GPU applications with no intra-kernel
	// synchronization (Figure 2).
	NoSync Category = iota
	// GlobalSync: microbenchmarks with only globally scoped
	// fine-grained synchronization (Figure 3).
	GlobalSync
	// LocalSync: microbenchmarks with mostly locally scoped or hybrid
	// synchronization (Figure 4).
	LocalSync
	// Graph: irregular graph-analytics workloads with per-kernel-phase
	// protocol specialization (beyond the paper; Salvador et al.).
	Graph
	// MultiDev: multi-device ports of the synchronization suite (beyond
	// the paper): the same algorithms sized for N devices' worth of CUs,
	// to be run on an N-device machine (Config.Devices) where their
	// global synchronization crosses the inter-device link.
	MultiDev
)

func (c Category) String() string {
	switch c {
	case NoSync:
		return "no-sync"
	case GlobalSync:
		return "global-sync"
	case LocalSync:
		return "local-sync"
	case Graph:
		return "graph"
	case MultiDev:
		return "multi-device"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Workload is one benchmark: a host driver that allocates memory,
// launches kernels, and a verifier that checks the final memory state
// against the algorithm's specification (the simulator is functional,
// so every run computes real results).
type Workload struct {
	// Name is the paper's benchmark name (Table 4), e.g. "FAM_G".
	Name string
	// Input describes the input size, as in Table 4.
	Input string
	// Category places the benchmark in Figure 2, 3, or 4.
	Category Category
	// Host drives the benchmark.
	Host func(h Host)
	// Verify checks the final state; nil error means correct.
	Verify func(h Host) error
}

// Arena is a bump allocator for carving a workload's address space.
// Allocations are line aligned and never share a cache line with each
// other, so unrelated data structures never exhibit false sharing.
type Arena struct{ next mem.Addr }

// NewArena starts allocating at a fixed base.
func NewArena() *Arena { return &Arena{next: 0x10_0000} }

// Words reserves n words and returns the address of the first.
func (a *Arena) Words(n int) mem.Addr {
	addr := a.next
	bytes := mem.Addr((n*mem.WordBytes + mem.LineBytes - 1) / mem.LineBytes * mem.LineBytes)
	a.next += bytes
	return addr
}

// Line reserves a single line (for locks, counters, flags).
func (a *Arena) Line() mem.Addr { return a.Words(mem.WordsPerLine) }

// BulkWriter is an optional Host fast path: a coherent write of many
// contiguous words in one call (machine.Machine implements it, with
// per-line rather than per-word stale-copy invalidation).
type BulkWriter interface {
	WriteWords(base mem.Addr, vals []uint32)
}

// WriteSlice seeds memory at base with vals (host-side, untimed).
func WriteSlice(h Host, base mem.Addr, vals []uint32) {
	if bw, ok := h.(BulkWriter); ok {
		bw.WriteWords(base, vals)
		return
	}
	for i, v := range vals {
		h.Write(base+mem.Addr(4*i), v)
	}
}

// ReadSlice reads n words at base (host-side, untimed).
func ReadSlice(h Host, base mem.Addr, n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = h.Read(base + mem.Addr(4*i))
	}
	return out
}

var registry = make(map[string]Workload)

// Register adds a workload to the global registry; it panics on
// duplicate names (a build-time bug).
func Register(w Workload) {
	if _, dup := registry[w.Name]; dup {
		panic(fmt.Sprintf("workload: duplicate %q", w.Name))
	}
	registry[w.Name] = w
}

// Get returns a registered workload.
func Get(name string) (Workload, error) {
	w, ok := registry[name]
	if !ok {
		return Workload{}, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, Names())
	}
	return w, nil
}

// Names returns all registered workload names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ByCategory returns the workloads of one category in registration
// name order.
func ByCategory(c Category) []Workload {
	var out []Workload
	for _, n := range Names() {
		if registry[n].Category == c {
			out = append(out, registry[n])
		}
	}
	return out
}
