package appbench

import (
	"testing"

	"denovogpu/internal/machine"
	"denovogpu/internal/workload"
)

// TestAppsCorrectUnderGDAndDD runs every application under the two base
// protocols and verifies results against the host references. (G* and
// D* are the only distinct behaviours for no-sync apps; the HRF
// variants add nothing without local synchronization.)
func TestAppsCorrectUnderGDAndDD(t *testing.T) {
	names := []string{"BP", "PF", "LUD", "NW", "SGEMM", "ST", "HS", "NN", "SRAD", "LAVA"}
	for _, name := range names {
		w, err := workload.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range []machine.Config{machine.GD(), machine.DD()} {
			cfg := cfg
			w := w
			t.Run(name+"/"+cfg.Name(), func(t *testing.T) {
				t.Parallel()
				m := machine.New(cfg)
				w.Host(m)
				if err := m.Err(); err != nil {
					t.Fatal(err)
				}
				if err := w.Verify(m); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestAppsCorrectUnderRemainingConfigs spot-checks the three remaining
// configurations on a representative subset (full coverage of all 50
// combinations runs in the sweep, not the unit suite).
func TestAppsCorrectUnderRemainingConfigs(t *testing.T) {
	for _, name := range []string{"PF", "SGEMM", "LAVA"} {
		w, err := workload.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range []machine.Config{machine.GH(), machine.DDRO(), machine.DH()} {
			cfg := cfg
			w := w
			t.Run(name+"/"+cfg.Name(), func(t *testing.T) {
				t.Parallel()
				m := machine.New(cfg)
				w.Host(m)
				if err := m.Err(); err != nil {
					t.Fatal(err)
				}
				if err := w.Verify(m); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestLavaStoreBufferEffect verifies the mechanism behind the paper's
// LavaMD observation: under GPU coherence the accumulator set overflows
// the store buffer (forced word writethroughs); under DeNovo writes hit
// after registration, so WB/WT traffic collapses.
func TestLavaStoreBufferEffect(t *testing.T) {
	w, err := workload.Get("LAVA")
	if err != nil {
		t.Fatal(err)
	}
	run := func(cfg machine.Config) *machine.Machine {
		m := machine.New(cfg)
		w.Host(m)
		if err := m.Err(); err != nil {
			t.Fatal(err)
		}
		return m
	}
	gd := run(machine.GD())
	dd := run(machine.DD())
	if gd.Stats().Get("sb.overflow_writethroughs") == 0 {
		t.Error("LAVA under GD should overflow the store buffer")
	}
	gdWT := gd.Stats().Flits[2] // WB/WT class
	ddWT := dd.Stats().Flits[2]
	if ddWT >= gdWT {
		t.Errorf("DD WB/WT traffic (%d flits) should be far below GD (%d)", ddWT, gdWT)
	}
	if dd.Stats().Get("l1.write_hits") == 0 {
		t.Error("DD should see write hits on registered accumulators")
	}
}

func TestRegistryHasAllTable4Apps(t *testing.T) {
	if got := len(workload.ByCategory(workload.NoSync)); got != 10 {
		t.Errorf("no-sync apps registered = %d, want 10", got)
	}
}
