package appbench

import (
	"fmt"

	"denovogpu/internal/mem"
	"denovogpu/internal/workload"
)

// ---------------------------------------------------------------------
// SGEMM (Parboil): tiled integer matrix multiply. Each block computes
// one row of C; A's row element is a broadcast load, B's row is
// coalesced. Scratchpad traffic models the tile staging of the
// original.

func sgemm() workload.Workload {
	const (
		n       = 128 // 3 matrices x 64 KB
		threads = 128
	)
	a := workload.NewArena()
	A := a.Words(n * n)
	B := a.Words(n * n)
	C := a.Words(n * n)

	kernel := func(c *workload.Ctx) {
		i := c.TB
		if i >= n {
			return
		}
		acc := make([]uint32, c.Threads)
		for k := 0; k < n; k++ {
			av := c.Load(A + mem.Addr(4*(i*n+k))) // broadcast
			bv := c.LoadStride(B + mem.Addr(4*(k*n)))
			c.Scratch(1) // tile staging
			for t := range acc {
				acc[t] += av * bv[t]
			}
		}
		c.StoreStride(C+mem.Addr(4*(i*n)), acc)
	}

	av := seq(n*n, 17)
	bv := seq(n*n, 19)

	return workload.Workload{
		Name:     "SGEMM",
		Input:    "medium (scaled)",
		Category: workload.NoSync,
		Host: func(h workload.Host) {
			workload.WriteSlice(h, A, av)
			workload.WriteSlice(h, B, bv)
			h.SetReadOnly(A, A+mem.Addr(4*n*n))
			h.SetReadOnly(B, B+mem.Addr(4*n*n))
			h.Launch(kernel, n, threads)
		},
		Verify: func(h workload.Host) error {
			ref := make([]uint32, n*n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					var s uint32
					for k := 0; k < n; k++ {
						s += av[i*n+k] * bv[k*n+j]
					}
					ref[i*n+j] = s
				}
			}
			return checkSlice(h, "SGEMM", C, ref)
		},
	}
}

// ---------------------------------------------------------------------
// ST — Stencil (Parboil): 7-point 3D stencil, double buffered, several
// iterations (kernel launches).

func stencil() workload.Workload {
	const (
		nx, ny, nz = 128, 16, 4 // 2 buffers x 32 K cells = 64 KB each
		iters      = 4
		threads    = nx
	)
	size := nx * ny * nz
	a := workload.NewArena()
	buf := [2]mem.Addr{a.Words(size), a.Words(size)}
	at := func(x, y, z int) int { return (z*ny+y)*nx + x }

	step := func(it int) workload.Kernel {
		src, dst := buf[it%2], buf[1-it%2]
		return func(c *workload.Ctx) {
			y := c.TB % ny
			z := c.TB / ny
			row := func(yy, zz int) []uint32 {
				return c.LoadStride(src + mem.Addr(4*at(0, yy, zz)))
			}
			cur := row(y, z)
			sum := make([]uint32, nx)
			copy(sum, cur)
			if y > 0 {
				for t, v := range row(y-1, z) {
					sum[t] += v
				}
			}
			if y < ny-1 {
				for t, v := range row(y+1, z) {
					sum[t] += v
				}
			}
			if z > 0 {
				for t, v := range row(y, z-1) {
					sum[t] += v
				}
			}
			if z < nz-1 {
				for t, v := range row(y, z+1) {
					sum[t] += v
				}
			}
			for t := range sum {
				if t > 0 {
					sum[t] += cur[t-1]
				}
				if t < nx-1 {
					sum[t] += cur[t+1]
				}
			}
			c.StoreStride(dst+mem.Addr(4*at(0, y, z)), sum)
		}
	}

	init0 := seq(size, 23)

	return workload.Workload{
		Name:     "ST",
		Input:    fmt.Sprintf("%dx%dx%d, %d iters", nx, ny, nz, iters),
		Category: workload.NoSync,
		Host: func(h workload.Host) {
			workload.WriteSlice(h, buf[0], init0)
			for it := 0; it < iters; it++ {
				h.Launch(step(it), ny*nz, threads)
			}
		},
		Verify: func(h workload.Host) error {
			cur := append([]uint32(nil), init0...)
			for it := 0; it < iters; it++ {
				next := make([]uint32, size)
				for z := 0; z < nz; z++ {
					for y := 0; y < ny; y++ {
						for x := 0; x < nx; x++ {
							s := cur[at(x, y, z)]
							if x > 0 {
								s += cur[at(x-1, y, z)]
							}
							if x < nx-1 {
								s += cur[at(x+1, y, z)]
							}
							if y > 0 {
								s += cur[at(x, y-1, z)]
							}
							if y < ny-1 {
								s += cur[at(x, y+1, z)]
							}
							if z > 0 {
								s += cur[at(x, y, z-1)]
							}
							if z < nz-1 {
								s += cur[at(x, y, z+1)]
							}
							next[at(x, y, z)] = s
						}
					}
				}
				cur = next
			}
			return checkSlice(h, "ST", buf[iters%2], cur)
		},
	}
}

// ---------------------------------------------------------------------
// HS — Hotspot (Rodinia): 2D 5-point stencil over a temperature grid
// plus a read-only power grid.

func hotspot() workload.Workload {
	const (
		n       = 256 // power + 2 temperature buffers: 768 KB total
		iters   = 4
		threads = n
	)
	size := n * n
	a := workload.NewArena()
	power := a.Words(size)
	buf := [2]mem.Addr{a.Words(size), a.Words(size)}

	step := func(it int) workload.Kernel {
		src, dst := buf[it%2], buf[1-it%2]
		return func(c *workload.Ctx) {
			y := c.TB
			if y >= n {
				return
			}
			cur := c.LoadStride(src + mem.Addr(4*(y*n)))
			pw := c.LoadStride(power + mem.Addr(4*(y*n)))
			out := make([]uint32, n)
			copy(out, cur)
			if y > 0 {
				for t, v := range c.LoadStride(src + mem.Addr(4*((y-1)*n))) {
					out[t] += v
				}
			}
			if y < n-1 {
				for t, v := range c.LoadStride(src + mem.Addr(4*((y+1)*n))) {
					out[t] += v
				}
			}
			for t := range out {
				if t > 0 {
					out[t] += cur[t-1]
				}
				if t < n-1 {
					out[t] += cur[t+1]
				}
				out[t] = out[t]/4 + pw[t]
			}
			c.StoreStride(dst+mem.Addr(4*(y*n)), out)
		}
	}

	powerV := seq(size, 29)
	tempV := seq(size, 31)

	return workload.Workload{
		Name:     "HS",
		Input:    fmt.Sprintf("%dx%d matrix", n, n),
		Category: workload.NoSync,
		Host: func(h workload.Host) {
			workload.WriteSlice(h, power, powerV)
			workload.WriteSlice(h, buf[0], tempV)
			h.SetReadOnly(power, power+mem.Addr(4*size))
			for it := 0; it < iters; it++ {
				h.Launch(step(it), n, threads)
			}
		},
		Verify: func(h workload.Host) error {
			cur := append([]uint32(nil), tempV...)
			for it := 0; it < iters; it++ {
				next := make([]uint32, size)
				for y := 0; y < n; y++ {
					for x := 0; x < n; x++ {
						s := cur[y*n+x]
						if y > 0 {
							s += cur[(y-1)*n+x]
						}
						if y < n-1 {
							s += cur[(y+1)*n+x]
						}
						if x > 0 {
							s += cur[y*n+x-1]
						}
						if x < n-1 {
							s += cur[y*n+x+1]
						}
						next[y*n+x] = s/4 + powerV[y*n+x]
					}
				}
				cur = next
			}
			return checkSlice(h, "HS", buf[iters%2], cur)
		},
	}
}

// ---------------------------------------------------------------------
// NN — Nearest Neighbor (Rodinia): stream a large read-only record
// array, each thread tracking the minimum distance over its chunk —
// almost pure streaming reads with one word written per thread.

func nn() workload.Workload {
	const (
		records = 65536 // 512 KB of record data streams past every L1
		tbs     = 32
		threads = 64
		qlat    = 500
		qlng    = 500
	)
	a := workload.NewArena()
	lat := a.Words(records)
	lng := a.Words(records)
	out := a.Words(tbs * threads)

	perThread := records / (tbs * threads)
	kernel := func(c *workload.Ctx) {
		base := c.TB * c.Threads * perThread
		best := make([]uint32, c.Threads)
		for i := range best {
			best[i] = ^uint32(0)
		}
		for k := 0; k < perThread; k++ {
			off := mem.Addr(4 * (base + k*c.Threads))
			la := c.LoadStride(lat + off)
			lo := c.LoadStride(lng + off)
			for t := range best {
				d := absDiff(la[t], qlat) + absDiff(lo[t], qlng)
				if d < best[t] {
					best[t] = d
				}
			}
		}
		c.StoreStride(out+mem.Addr(4*c.TB*c.Threads), best)
	}

	latV := seq(records, 37)
	lngV := seq(records, 41)

	return workload.Workload{
		Name:     "NN",
		Input:    fmt.Sprintf("%dK records", records/1024),
		Category: workload.NoSync,
		Host: func(h workload.Host) {
			workload.WriteSlice(h, lat, latV)
			workload.WriteSlice(h, lng, lngV)
			h.SetReadOnly(lat, lat+mem.Addr(4*records))
			h.SetReadOnly(lng, lng+mem.Addr(4*records))
			h.Launch(kernel, tbs, threads)
		},
		Verify: func(h workload.Host) error {
			ref := make([]uint32, tbs*threads)
			for g := range ref {
				tb, t := g/threads, g%threads
				base := tb * threads * perThread
				best := ^uint32(0)
				for k := 0; k < perThread; k++ {
					i := base + k*threads + t
					d := absDiff(latV[i], qlat) + absDiff(lngV[i], qlng)
					if d < best {
						best = d
					}
				}
				ref[g] = best
			}
			return checkSlice(h, "NN", out, ref)
		},
	}
}

func absDiff(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

func init() {
	workload.Register(sgemm())
	workload.Register(stencil())
	workload.Register(hotspot())
	workload.Register(nn())
}
