package appbench

import (
	"fmt"

	"denovogpu/internal/mem"
	"denovogpu/internal/workload"
)

// ---------------------------------------------------------------------
// SRAD v2 (Rodinia): two kernels per iteration over an image — one
// computing a smoothing coefficient from the 4-neighborhood, one
// applying it. Integer arithmetic stands in for the float PDE update.

func srad() workload.Workload {
	const (
		n       = 192 // 2 arrays x 147 KB: exceeds the aggregate L1
		iters   = 2
		threads = n
	)
	size := n * n
	a := workload.NewArena()
	img := a.Words(size)
	coeff := a.Words(size)

	k1 := func(c *workload.Ctx) {
		y := c.TB
		if y >= n {
			return
		}
		cur := c.LoadStride(img + mem.Addr(4*(y*n)))
		out := make([]uint32, n)
		north, south := cur, cur
		if y > 0 {
			north = c.LoadStride(img + mem.Addr(4*((y-1)*n)))
		}
		if y < n-1 {
			south = c.LoadStride(img + mem.Addr(4*((y+1)*n)))
		}
		for t := range out {
			w, e := cur[t], cur[t]
			if t > 0 {
				w = cur[t-1]
			}
			if t < n-1 {
				e = cur[t+1]
			}
			g := absDiff(north[t], cur[t]) + absDiff(south[t], cur[t]) +
				absDiff(w, cur[t]) + absDiff(e, cur[t])
			out[t] = g/4 + 1
		}
		c.StoreStride(coeff+mem.Addr(4*(y*n)), out)
	}
	k2 := func(c *workload.Ctx) {
		y := c.TB
		if y >= n {
			return
		}
		cur := c.LoadStride(img + mem.Addr(4*(y*n)))
		cf := c.LoadStride(coeff + mem.Addr(4*(y*n)))
		var southC []uint32
		if y < n-1 {
			southC = c.LoadStride(coeff + mem.Addr(4*((y+1)*n)))
		} else {
			southC = cf
		}
		out := make([]uint32, n)
		for t := range out {
			e := cf[t]
			if t < n-1 {
				e = cf[t+1]
			}
			out[t] = cur[t] + (cf[t]+e+southC[t])/8
		}
		c.StoreStride(img+mem.Addr(4*(y*n)), out)
	}

	imgV := seq(size, 43)

	return workload.Workload{
		Name:     "SRAD",
		Input:    fmt.Sprintf("%dx%d matrix", n, n),
		Category: workload.NoSync,
		Host: func(h workload.Host) {
			workload.WriteSlice(h, img, imgV)
			for it := 0; it < iters; it++ {
				h.Launch(k1, n, threads)
				h.Launch(k2, n, threads)
			}
		},
		Verify: func(h workload.Host) error {
			cur := append([]uint32(nil), imgV...)
			cf := make([]uint32, size)
			for it := 0; it < iters; it++ {
				for y := 0; y < n; y++ {
					for x := 0; x < n; x++ {
						c0 := cur[y*n+x]
						nb := func(yy, xx int) uint32 {
							if yy < 0 || yy >= n || xx < 0 || xx >= n {
								return c0
							}
							return cur[yy*n+xx]
						}
						g := absDiff(nb(y-1, x), c0) + absDiff(nb(y+1, x), c0) +
							absDiff(nb(y, x-1), c0) + absDiff(nb(y, x+1), c0)
						cf[y*n+x] = g/4 + 1
					}
				}
				next := make([]uint32, size)
				for y := 0; y < n; y++ {
					for x := 0; x < n; x++ {
						e := cf[y*n+x]
						if x < n-1 {
							e = cf[y*n+x+1]
						}
						s := cf[y*n+x]
						if y < n-1 {
							s = cf[(y+1)*n+x]
						}
						next[y*n+x] = cur[y*n+x] + (cf[y*n+x]+e+s)/8
					}
				}
				cur = next
			}
			return checkSlice(h, "SRAD", img, cur)
		},
	}
}

// ---------------------------------------------------------------------
// LAVA — LavaMD (Rodinia): particles in boxes compute pairwise forces
// against neighbor-box particles, accumulating into per-particle force
// vectors. Each thread rewrites its four force words once per
// interaction — hundreds of writes to the same words interleaved with
// enough distinct accumulator words per CU (4 x threads > 256) to
// overflow the store buffer. Under GPU coherence the overflow defeats
// writethrough coalescing (each accumulation writes through
// separately); under DeNovo the first write registers the word and all
// subsequent writes hit — the paper's Figure 2 LavaMD effect.

func lava() workload.Workload {
	const (
		boxes     = 8 // 2x2x2 (Table 4)
		particles = 96
		sample    = 24 // interactions sampled per neighbor box
		threads   = particles
		boxWork   = 200 // compute cycles per neighbor box (pairwise force math)
	)
	a := workload.NewArena()
	pos := a.Words(boxes * particles * 4)   // x, y, z, q per particle
	force := a.Words(boxes * particles * 4) // fx, fy, fz, fw per particle

	kernel := func(c *workload.Ctx) {
		box := c.TB
		if box >= boxes {
			return
		}
		myBase := force + mem.Addr(4*(box*particles*4))
		// Load own particles' x components once.
		px := c.LoadV(stride4(pos+mem.Addr(4*(box*particles*4)), 0, particles))
		fx := make([]uint32, particles)
		fy := make([]uint32, particles)
		fz := make([]uint32, particles)
		fw := make([]uint32, particles)
		for nb := 0; nb < boxes; nb++ {
			// Pairwise force math for one neighbor box: partial sums
			// accumulate in registers (as the CUDA kernel does) ...
			for j := 0; j < sample; j++ {
				other := c.Load(pos + mem.Addr(4*((nb*particles+j)*4))) // broadcast
				for t := 0; t < particles; t++ {
					d := absDiff(px[t], other)
					fx[t] += d
					fy[t] += d >> 1
					fz[t] += d >> 2
					fw[t] += 1
				}
				c.Compute(boxWork / sample)
			}
			// ... and the force vector is written back to memory once
			// per neighbor box: the same 4 x particles accumulator words
			// are rewritten `boxes` times, and 4 x particles exceeds the
			// 256-entry store buffer, so under GPU coherence each
			// rewrite goes through as its own word writethrough (the
			// paper's LavaMD observation). DeNovo registers the words
			// on the first box and hits thereafter.
			c.StoreV(stride4(myBase, 0, particles), fx)
			c.StoreV(stride4(myBase, 1, particles), fy)
			c.StoreV(stride4(myBase, 2, particles), fz)
			c.StoreV(stride4(myBase, 3, particles), fw)
		}
	}

	posV := seq(boxes*particles*4, 47)

	return workload.Workload{
		Name:     "LAVA",
		Input:    "2x2x2 boxes",
		Category: workload.NoSync,
		Host: func(h workload.Host) {
			workload.WriteSlice(h, pos, posV)
			h.SetReadOnly(pos, pos+mem.Addr(4*boxes*particles*4))
			h.Launch(kernel, boxes, threads)
		},
		Verify: func(h workload.Host) error {
			ref := make([]uint32, boxes*particles*4)
			for box := 0; box < boxes; box++ {
				for t := 0; t < particles; t++ {
					var fx, fy, fz, fw uint32
					p := posV[(box*particles+t)*4]
					for nb := 0; nb < boxes; nb++ {
						for j := 0; j < sample; j++ {
							d := absDiff(p, posV[(nb*particles+j)*4])
							fx += d
							fy += d >> 1
							fz += d >> 2
							fw++
						}
					}
					base := (box*particles + t) * 4
					ref[base], ref[base+1], ref[base+2], ref[base+3] = fx, fy, fz, fw
				}
			}
			return checkSlice(h, "LAVA", force, ref)
		},
	}
}

// stride4 returns per-thread addresses for component comp of an
// array-of-4-vectors layout.
func stride4(base mem.Addr, comp, n int) []mem.Addr {
	addrs := make([]mem.Addr, n)
	for t := range addrs {
		addrs[t] = base + mem.Addr(4*(t*4+comp))
	}
	return addrs
}

func init() {
	workload.Register(srad())
	workload.Register(lava())
}
