// Package appbench implements the paper's ten traditional GPU
// applications (Table 4, top): Rodinia and Parboil kernels with no
// intra-kernel synchronization. They establish that DeNovo is a viable
// protocol for today's workloads (Figure 2: G* ≈ D*).
//
// The originals are CUDA applications; here each is a synthetic kernel
// that reproduces the original's *memory access pattern* — streaming,
// broadcast, tiled GEMM, stencils, wavefront dynamic programming, and
// LavaMD's repeated accumulator rewrites — over integer data so results
// verify exactly against host references. Input sizes are scaled down
// from Table 4 to keep simulations tractable; DESIGN.md documents the
// substitution. Every workload declares its genuinely read-only inputs
// via SetReadOnly, the program-level (hardware-agnostic) annotation the
// DD+RO configuration exploits.
package appbench

import (
	"fmt"

	"denovogpu/internal/mem"
	"denovogpu/internal/workload"
)

// checkSlice compares device memory to a reference.
func checkSlice(h workload.Host, name string, base mem.Addr, want []uint32) error {
	for i, w := range want {
		if got := h.Read(base + mem.Addr(4*i)); got != w {
			return fmt.Errorf("%s: word %d = %d, want %d", name, i, got, w)
		}
	}
	return nil
}

// seq returns 0..n-1 mixed by a cheap hash so data isn't trivially
// uniform.
func seq(n int, salt uint32) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		x := uint32(i)*2654435761 + salt
		x ^= x >> 15
		out[i] = x % 1000
	}
	return out
}

func min3(a, b, c uint32) uint32 {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}

// ---------------------------------------------------------------------
// BP — Backprop (Rodinia). Two forward layers and a weight-update
// kernel: broadcast reads of the input vector, coalesced reads of
// transposed weights, and strided weight writes in the update.

func backprop() workload.Workload {
	const (
		ni      = 128  // input units
		nh      = 1024 // hidden units; the weight matrix is 512 KB
		threads = 64
	)
	a := workload.NewArena()
	in := a.Words(ni)
	w1 := a.Words(ni * nh) // transposed: w1[i*nh + j]
	hid := a.Words(nh)
	w2 := a.Words(nh) // one output unit's weights
	outW := a.Line()

	fwd1 := func(c *workload.Ctx) {
		jBase := c.TB * c.Threads
		if jBase >= nh {
			return
		}
		acc := make([]uint32, c.Threads)
		for i := 0; i < ni; i++ {
			x := c.Load(in + mem.Addr(4*i)) // broadcast
			wv := c.LoadStride(w1 + mem.Addr(4*(i*nh+jBase)))
			for t := range acc {
				acc[t] += x * wv[t]
			}
		}
		c.StoreStride(hid+mem.Addr(4*jBase), acc)
	}
	fwd2 := func(c *workload.Ctx) {
		// Parallel reduction substitute: each block sums a chunk into a
		// partial, block 0's thread 0 has the first chunk.
		jBase := c.TB * c.Threads
		if jBase >= nh {
			return
		}
		hv := c.LoadStride(hid + mem.Addr(4*jBase))
		wv := c.LoadStride(w2 + mem.Addr(4*jBase))
		var sum uint32
		for t := range hv {
			sum += hv[t] * wv[t]
		}
		c.Store(outW+mem.Addr(4*c.TB), sum)
	}
	update := func(c *workload.Ctx) {
		jBase := c.TB * c.Threads
		if jBase >= nh {
			return
		}
		hv := c.LoadStride(hid + mem.Addr(4*jBase))
		for i := 0; i < ni; i += 8 { // strided partial update
			x := c.Load(in + mem.Addr(4*i))
			base := w1 + mem.Addr(4*(i*nh+jBase))
			wv := c.LoadStride(base)
			for t := range wv {
				wv[t] += x * hv[t]
			}
			c.StoreStride(base, wv)
		}
	}

	inV := seq(ni, 1)
	w1V := seq(ni*nh, 2)
	w2V := seq(nh, 3)

	return workload.Workload{
		Name:     "BP",
		Input:    "32 KB",
		Category: workload.NoSync,
		Host: func(h workload.Host) {
			workload.WriteSlice(h, in, inV)
			workload.WriteSlice(h, w1, w1V)
			workload.WriteSlice(h, w2, w2V)
			h.SetReadOnly(in, in+mem.Addr(4*ni))
			h.Launch(fwd1, nh/threads, threads)
			h.Launch(fwd2, nh/threads, threads)
			h.Launch(update, nh/threads, threads)
		},
		Verify: func(h workload.Host) error {
			hidRef := make([]uint32, nh)
			for j := 0; j < nh; j++ {
				for i := 0; i < ni; i++ {
					hidRef[j] += inV[i] * w1V[i*nh+j]
				}
			}
			if err := checkSlice(h, "BP hidden", hid, hidRef); err != nil {
				return err
			}
			w1Ref := append([]uint32(nil), w1V...)
			for i := 0; i < ni; i += 8 {
				for j := 0; j < nh; j++ {
					w1Ref[i*nh+j] += inV[i] * hidRef[j]
				}
			}
			return checkSlice(h, "BP weights", w1, w1Ref)
		},
	}
}

// ---------------------------------------------------------------------
// PF — Pathfinder (Rodinia). Row-by-row dynamic programming over a
// wall grid: each row kernel reads the previous row (with neighbors)
// and the read-only wall, writing the next row.

func pathfinder() workload.Workload {
	const (
		cols    = 32768 // 10 x 32K matrix: 1.25 MB wall, rows of 128 KB
		rows    = 10
		threads = 64
	)
	a := workload.NewArena()
	wall := a.Words(cols * rows)
	buf0 := a.Words(cols)
	buf1 := a.Words(cols)

	rowKernel := func(row int) workload.Kernel {
		// Row 0 is seeded in buf1; odd rows read buf1 and write buf0.
		src, dst := buf0, buf1
		if row%2 == 1 {
			src, dst = buf1, buf0
		}
		return func(c *workload.Ctx) {
			base := c.TB * c.Threads
			if base >= cols {
				return
			}
			cur := c.LoadStride(src + mem.Addr(4*base))
			// Neighbors within the chunk come from cur; only the chunk
			// edges need extra (halo) loads.
			leftEdge, rightEdge := cur[0], cur[c.Threads-1]
			if base > 0 {
				leftEdge = c.Load(src + mem.Addr(4*(base-1)))
			}
			if base+c.Threads < cols {
				rightEdge = c.Load(src + mem.Addr(4*(base+c.Threads)))
			}
			wv := c.LoadStride(wall + mem.Addr(4*(row*cols+base)))
			out := make([]uint32, c.Threads)
			for t := range out {
				l, r := cur[t], cur[t]
				switch {
				case t > 0:
					l = cur[t-1]
				case base > 0:
					l = leftEdge
				}
				switch {
				case t < c.Threads-1:
					r = cur[t+1]
				case base+c.Threads < cols:
					r = rightEdge
				}
				out[t] = wv[t] + min3(l, cur[t], r)
			}
			c.StoreStride(dst+mem.Addr(4*base), out)
		}
	}

	wallV := seq(cols*rows, 7)

	return workload.Workload{
		Name:     "PF",
		Input:    fmt.Sprintf("%d x %dK matrix", rows, cols/1024),
		Category: workload.NoSync,
		Host: func(h workload.Host) {
			workload.WriteSlice(h, wall, wallV)
			workload.WriteSlice(h, buf1, wallV[:cols]) // row 0 seed
			h.SetReadOnly(wall, wall+mem.Addr(4*cols*rows))
			for r := 1; r < rows; r++ {
				h.Launch(rowKernel(r), cols/threads, threads)
			}
		},
		Verify: func(h workload.Host) error {
			ref := append([]uint32(nil), wallV[:cols]...)
			for r := 1; r < rows; r++ {
				next := make([]uint32, cols)
				for i := 0; i < cols; i++ {
					l, c2, rr := ref[i], ref[i], ref[i]
					if i > 0 {
						l = ref[i-1]
					}
					if i < cols-1 {
						rr = ref[i+1]
					}
					next[i] = wallV[r*cols+i] + min3(l, c2, rr)
				}
				ref = next
			}
			final := buf1 // dst of the last (even) row
			if (rows-1)%2 == 1 {
				final = buf0 // dst of the last (odd) row
			}
			return checkSlice(h, "PF", final, ref)
		},
	}
}

// ---------------------------------------------------------------------
// LUD — LU decomposition access pattern (Rodinia): per step k, a
// kernel updates the trailing submatrix from row k and column k
// (integer multiply-subtract stands in for the float arithmetic).

func lud() workload.Workload {
	const (
		n       = 128
		threads = 128
	)
	a := workload.NewArena()
	mat := a.Words(n * n)

	step := func(k int) workload.Kernel {
		return func(c *workload.Ctx) {
			i := k + 1 + c.TB // row index
			if i >= n {
				return
			}
			aik := c.Load(mat + mem.Addr(4*(i*n+k)))
			width := n - (k + 1)
			rowK := c.LoadV(c.StrideAddrs(mat+mem.Addr(4*(k*n+k+1)), 1)[:width])
			rowI := c.LoadV(c.StrideAddrs(mat+mem.Addr(4*(i*n+k+1)), 1)[:width])
			out := make([]uint32, width)
			for t := 0; t < width; t++ {
				out[t] = rowI[t] - aik*rowK[t]
			}
			c.StoreV(c.StrideAddrs(mat+mem.Addr(4*(i*n+k+1)), 1)[:width], out)
		}
	}

	matV := seq(n*n, 11)

	return workload.Workload{
		Name:     "LUD",
		Input:    fmt.Sprintf("%dx%d matrix", n, n),
		Category: workload.NoSync,
		Host: func(h workload.Host) {
			workload.WriteSlice(h, mat, matV)
			for k := 0; k < n-1; k++ {
				h.Launch(step(k), n-1-k, threads)
			}
		},
		Verify: func(h workload.Host) error {
			ref := append([]uint32(nil), matV...)
			for k := 0; k < n-1; k++ {
				for i := k + 1; i < n; i++ {
					aik := ref[i*n+k]
					for j := k + 1; j < n; j++ {
						ref[i*n+j] -= aik * ref[k*n+j]
					}
				}
			}
			return checkSlice(h, "LUD", mat, ref)
		},
	}
}

// ---------------------------------------------------------------------
// NW — Needleman-Wunsch (Rodinia): wavefront dynamic programming; one
// kernel per anti-diagonal reads the two previous diagonals' cells and
// a read-only reference matrix.

func nw() workload.Workload {
	const (
		n       = 192
		threads = 32
		penalty = 1
	)
	a := workload.NewArena()
	score := a.Words((n + 1) * (n + 1))
	ref := a.Words(n * n)

	diag := func(d int) workload.Kernel { // d = i+j, cells with 1<=i,j<=n
		return func(c *workload.Ctx) {
			// Cells on the diagonal: i from max(1, d-n) .. min(n, d-1).
			lo := 1
			if d-n > lo {
				lo = d - n
			}
			hi := n
			if d-1 < hi {
				hi = d - 1
			}
			idx := lo + c.TB*c.Threads
			count := hi - idx + 1
			if count <= 0 {
				return
			}
			if count > c.Threads {
				count = c.Threads
			}
			addrAt := func(i, j int) mem.Addr { return score + mem.Addr(4*(i*(n+1)+j)) }
			up := make([]mem.Addr, count)
			left := make([]mem.Addr, count)
			dia := make([]mem.Addr, count)
			rv := make([]mem.Addr, count)
			outA := make([]mem.Addr, count)
			for t := 0; t < count; t++ {
				i := idx + t
				j := d - i
				up[t] = addrAt(i-1, j)
				left[t] = addrAt(i, j-1)
				dia[t] = addrAt(i-1, j-1)
				rv[t] = ref + mem.Addr(4*((i-1)*n+(j-1)))
				outA[t] = addrAt(i, j)
			}
			uv := c.LoadV(up)
			lv := c.LoadV(left)
			dv := c.LoadV(dia)
			refv := c.LoadV(rv)
			out := make([]uint32, count)
			for t := range out {
				m := dv[t] + refv[t]
				if v := uv[t] - penalty; v > m {
					m = v
				}
				if v := lv[t] - penalty; v > m {
					m = v
				}
				out[t] = m
			}
			c.StoreV(outA, out)
		}
	}

	refV := seq(n*n, 13)

	return workload.Workload{
		Name:     "NW",
		Input:    fmt.Sprintf("%dx%d matrix", n, n),
		Category: workload.NoSync,
		Host: func(h workload.Host) {
			workload.WriteSlice(h, ref, refV)
			for i := 0; i <= n; i++ {
				h.Write(score+mem.Addr(4*(i*(n+1))), uint32(1000-i))
				h.Write(score+mem.Addr(4*i), uint32(1000-i))
			}
			h.SetReadOnly(ref, ref+mem.Addr(4*n*n))
			for d := 2; d <= 2*n; d++ {
				cells := n - abs(d-n-1)
				tbs := (cells + threads - 1) / threads
				h.Launch(diag(d), tbs, threads)
			}
		},
		Verify: func(h workload.Host) error {
			sc := make([]uint32, (n+1)*(n+1))
			for i := 0; i <= n; i++ {
				sc[i*(n+1)] = uint32(1000 - i)
				sc[i] = uint32(1000 - i)
			}
			for i := 1; i <= n; i++ {
				for j := 1; j <= n; j++ {
					m := sc[(i-1)*(n+1)+j-1] + refV[(i-1)*n+j-1]
					if v := sc[(i-1)*(n+1)+j] - penalty; v > m {
						m = v
					}
					if v := sc[i*(n+1)+j-1] - penalty; v > m {
						m = v
					}
					sc[i*(n+1)+j] = m
				}
			}
			return checkSlice(h, "NW", score, sc)
		},
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func init() {
	workload.Register(backprop())
	workload.Register(pathfinder())
	workload.Register(lud())
	workload.Register(nw())
}
