package graph

import (
	"fmt"
	"math"

	"denovogpu/internal/mem"
	"denovogpu/internal/workload"
)

// Sequential references. Each is a pure-Go serial implementation over
// the same Graph the device kernels traverse; the differential tests
// run every workload under every protocol configuration and compare
// device memory against these, so a coherence or drain bug cannot hide
// behind plausible traffic numbers.

// refBFS returns the BFS level of every vertex from src (bfsInf if
// unreachable). Push and pull device kernels both compute exactly
// this: a vertex's level is determined by the first wave that reaches
// it, no matter which direction discovered it.
func refBFS(g *Graph, src int) []uint32 {
	level := fill(g.P.N, bfsInf)
	level[src] = 0
	frontier := []int32{int32(src)}
	for d := uint32(0); len(frontier) > 0; d++ {
		var nextF []int32
		for _, u := range frontier {
			for e := g.OutOff[u]; e < g.OutOff[u+1]; e++ {
				t := g.OutDst[e]
				if level[t] == bfsInf {
					level[t] = d + 1
					nextF = append(nextF, t)
				}
			}
		}
		frontier = nextF
	}
	return level
}

// refPageRank replays the device's fixed-point arithmetic serially:
// uint32 additions commute, so the parallel scatter's accumulator is
// exactly this sum regardless of arrival order, and the hub gather is
// a plain in-order sum over the same CSC the device kernel walks.
func refPageRank(g *Graph) []uint32 {
	n := g.P.N
	hub := hubCut(n)
	rank := fill(n, prOne)
	contrib := make([]uint32, n)
	for u := 0; u < n; u++ {
		contrib[u] = prOne / uint32(g.OutOff[u+1]-g.OutOff[u])
	}
	acc := make([]uint32, n)
	for it := 0; it < prIters; it++ {
		for i := range acc {
			acc[i] = 0
		}
		for u := 0; u < n; u++ {
			for e := g.OutOff[u]; e < g.OutOff[u+1]; e++ {
				if t := g.OutDst[e]; int(t) >= hub {
					acc[t] += contrib[u]
				}
			}
		}
		for v := 0; v < hub; v++ {
			s := uint32(0)
			for e := g.InOff[v]; e < g.InOff[v+1]; e++ {
				s += contrib[g.InSrc[e]]
			}
			acc[v] = s
		}
		for v := 0; v < n; v++ {
			rank[v] = prBase + prDamp*acc[v]>>10
			contrib[v] = rank[v] / uint32(g.OutOff[v+1]-g.OutOff[v])
		}
	}
	return rank
}

// checkPRTolerance compares the device's fixed-point ranks against a
// float64 PageRank of the same shape (the hub partition is invisible
// in exact arithmetic: every target still receives each in-neighbor's
// contribution exactly once). The fixed-point kernel floors once per
// contribution division and once per damping shift, and those floors
// compound through the iterations — a hub's in-neighbors deliver
// slightly undersized contributions computed from already-undersized
// ranks — so the band has a value-proportional term on top of the
// per-edge one. Anything beyond it means updates were lost or
// duplicated.
func checkPRTolerance(h workload.Host, rankBase mem.Addr, g *Graph) error {
	n := g.P.N
	rank := make([]float64, n)
	acc := make([]float64, n)
	for i := range rank {
		rank[i] = prOne
	}
	for it := 0; it < prIters; it++ {
		for i := range acc {
			acc[i] = 0
		}
		for u := 0; u < n; u++ {
			contrib := rank[u] / float64(g.OutOff[u+1]-g.OutOff[u])
			for e := g.OutOff[u]; e < g.OutOff[u+1]; e++ {
				acc[g.OutDst[e]] += contrib
			}
		}
		for v := 0; v < n; v++ {
			rank[v] = prBase + float64(prDamp)/prOne*acc[v]
		}
	}
	for v := 0; v < n; v++ {
		got := float64(h.Read(rankBase + mem.Addr(4*v)))
		inDeg := float64(g.InOff[v+1] - g.InOff[v])
		tol := 16 + 0.06*rank[v] + 2*inDeg
		if math.Abs(got-rank[v]) > tol {
			return fmt.Errorf("PR: vertex %d = %.0f, float reference %.1f (tolerance %.0f)", v, got, rank[v], tol)
		}
	}
	return nil
}

// refSSSP returns exact shortest distances from src (ssspInf if
// unreachable) by Bellman-Ford iteration to fixpoint — the same
// fixpoint the device's monotonic AtomicMin relaxation converges to.
func refSSSP(g *Graph, src int) []uint32 {
	dist := fill(g.P.N, ssspInf)
	dist[src] = 0
	for changed := true; changed; {
		changed = false
		for u := 0; u < g.P.N; u++ {
			du := dist[u]
			if du == ssspInf {
				continue
			}
			for e := g.OutOff[u]; e < g.OutOff[u+1]; e++ {
				if nd := du + g.OutW[e]; nd < dist[g.OutDst[e]] {
					dist[g.OutDst[e]] = nd
					changed = true
				}
			}
		}
	}
	return dist
}
