package graph

import (
	"fmt"

	"denovogpu/internal/mem"
	"denovogpu/internal/workload"
)

// threadsPerTB is the thread-block width; each block owns a contiguous
// run of threadsPerTB vertices (one per lane for the dense scans).
const threadsPerTB = 32

// DefaultParams is the registered benchmark input: large enough that
// the push phases contend on real hubs, small enough that a full
// config sweep stays interactive. N is one vertex tile per persistent
// worker (30 workers on the default 15-CU machine), so no worker's
// double share stretches a kernel's critical path.
func DefaultParams() Params { return Params{N: 1920, AvgDeg: 8, Seed: 42} }

func init() {
	workload.Register(BFS(DefaultParams()))
	workload.Register(PageRank(DefaultParams()))
	workload.Register(SSSP(DefaultParams()))
}

// numTBs returns the grid size covering n vertices.
func numTBs(n int) int { return (n + threadsPerTB - 1) / threadsPerTB }

// workersPerCU is how many persistent worker blocks each CU hosts.
// Two keeps intra-CU memory-level parallelism (two resident blocks
// interleave) without exceeding the residency limit.
const workersPerCU = 2

// workerGrid is the grid size for persistent-worker kernels: an exact
// multiple of the CU count, so the machine's round-robin dispatch puts
// the same workersPerCU blocks on every CU no matter the per-launch
// placement rotation.
func workerGrid(h workload.Host) int { return workersPerCU * h.NumCUs() }

// workerRange returns the half-open, tile-aligned vertex range this
// block's persistent worker covers out of n. Work is keyed by the
// physical CU (plus the block's stable sub-slot on it), not by the
// grid index: each consecutive group of NumCUs blocks lands one block
// per CU, so CU X hosts workers {X*workersPerCU .. X*workersPerCU+
// workersPerCU-1} in every kernel regardless of rotation. That is the
// persistent-threads idiom GPU graph frameworks use to keep a CU's
// slice of the frontier and its CSR/CSC window hot across kernel
// launches — the locality the pull phases' ownership protocol turns
// into local hits.
func workerRange(c *workload.Ctx, n int) (int, int) {
	wid := workerID(c)
	workers := c.NumTBs / c.NumCUs * c.NumCUs
	tiles := n / threadsPerTB
	return wid * tiles / workers * threadsPerTB, (wid + 1) * tiles / workers * threadsPerTB
}

// workerID is the block's persistent worker index (stable across
// kernels, per workerRange).
func workerID(c *workload.Ctx) int {
	return c.CU*(c.NumTBs/c.NumCUs) + c.TB/c.NumCUs
}

// maxWorkers bounds the per-worker count-slot arrays. A worker stores
// its partial count into its own slot instead of a global atomic — the
// per-block-reduction idiom that avoids contending on one counter word
// — and the host sums the slots after the kernel.
const maxWorkers = 64

// u32s converts CSR index slices for seeding device memory.
func u32s(xs []int32) []uint32 {
	out := make([]uint32, len(xs))
	for i, x := range xs {
		out[i] = uint32(x)
	}
	return out
}

// fill returns n copies of v.
func fill(n int, v uint32) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// sumSlots reads and totals the first n per-worker count slots.
func sumSlots(h workload.Host, base mem.Addr, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += int(h.Read(base + mem.Addr(4*i)))
	}
	return total
}

// checkWords compares device memory against a reference vector.
func checkWords(h workload.Host, name string, base mem.Addr, want []uint32) error {
	for i, w := range want {
		if got := h.Read(base + mem.Addr(4*i)); got != w {
			return fmt.Errorf("%s: vertex %d = %d, want %d", name, i, got, w)
		}
	}
	return nil
}

// inputDesc describes a graph input the way Table 4 describes sizes.
func inputDesc(p Params) string {
	return fmt.Sprintf("power-law N=%d avg-deg %d seed %d", p.N, p.AvgDeg, p.Seed)
}
