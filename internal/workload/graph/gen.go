// Package graph implements the irregular graph-analytics workload
// family (beyond the paper; Salvador et al., arXiv 2002.10245): push
// and pull BFS, PageRank, and SSSP over a seeded synthetic power-law
// graph, written against the per-kernel-phase specialization API
// (workload.LaunchPhase + machine.Config.Phases).
//
// Push kernels scatter updates through relaxed atomics — the access
// pattern that wants writethrough coherence with L2-side atomics. Pull
// kernels stream reads and write data they reuse across kernels — the
// pattern that wants DeNovo ownership. Every workload's Verify is a
// pure-Go sequential reference over the same graph, so a protocol bug
// in the new phase machinery shows up as a wrong answer, not just as
// implausible traffic numbers.
package graph

import (
	"math/bits"
	"sort"
)

// Params describes one synthetic power-law graph.
type Params struct {
	// N is the vertex count (multiple of 32, the thread-block width).
	N int
	// AvgDeg is the target mean out-degree.
	AvgDeg int
	// Seed selects the graph; the same seed always yields the same
	// graph, byte for byte.
	Seed uint64
}

// Graph is a directed graph in CSR (out-edges) and CSC (in-edges)
// form. Edge weights (for SSSP) align with OutDst/InSrc.
type Graph struct {
	P      Params
	OutOff []int32 // len N+1
	OutDst []int32
	OutW   []uint32 // 1..8
	InOff  []int32  // len N+1
	InSrc  []int32
	InW    []uint32
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.OutDst) }

// splitmix64 steps the generator state and returns the next value.
// Sequential and integer-only, so generation is identical on every
// platform and at any GOMAXPROCS.
func splitmix64(s *uint64) uint64 {
	*s += 0x9E3779B97F4A7C15
	z := *s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// cubeScale returns floor(n * (r/2^64)^3) using only integer
// multiplies. Cubing the uniform variate biases samples toward 0 with
// density ~ x^(-2/3), which is what gives low-index vertices their
// power-law in-degree (and hub contention for the push kernels).
func cubeScale(n uint64, r uint64) uint64 {
	h, _ := bits.Mul64(r, r)
	h, _ = bits.Mul64(h, r)
	h, _ = bits.Mul64(h, n)
	return h
}

// Generate builds the graph for p: per-vertex out-degrees drawn from a
// truncated power law, targets drawn half uniformly (connectivity)
// and half cube-biased toward low vertex indices (hubs), no
// self-loops, no duplicate edges, per-vertex targets sorted. The walk
// is strictly sequential over one splitmix64 stream, so the result
// depends only on p.
func Generate(p Params) *Graph {
	rng := p.Seed
	n := p.N
	maxExtra := 4 * (p.AvgDeg - 1) // mean of the cube-biased part is ~1/4
	if maxExtra < 1 {
		maxExtra = 1
	}
	g := &Graph{P: p, OutOff: make([]int32, n+1)}
	var dsts []int32
	for u := 0; u < n; u++ {
		want := 1 + int(cubeScale(uint64(maxExtra), splitmix64(&rng)))
		dsts = dsts[:0]
		for tries := 0; len(dsts) < want && tries < 4*want+16; tries++ {
			r := splitmix64(&rng)
			var t int
			if r&1 == 0 {
				t = int(cubeScale(uint64(n), splitmix64(&rng)))
			} else {
				t = int(splitmix64(&rng) % uint64(n))
			}
			if t == u {
				continue
			}
			dup := false
			for _, have := range dsts {
				if int(have) == t {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			dsts = append(dsts, int32(t))
		}
		if len(dsts) == 0 {
			dsts = append(dsts, int32((u+1)%n))
		}
		sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
		g.OutDst = append(g.OutDst, dsts...)
		for range dsts {
			g.OutW = append(g.OutW, 1+uint32(splitmix64(&rng)&7))
		}
		g.OutOff[u+1] = int32(len(g.OutDst))
	}
	g.buildCSC()
	return g
}

// buildCSC derives the in-edge (pull) representation by a counting
// sort over the out-edges: per-target sources arrive in ascending
// source order.
func (g *Graph) buildCSC() {
	n := g.P.N
	g.InOff = make([]int32, n+1)
	for _, t := range g.OutDst {
		g.InOff[t+1]++
	}
	for v := 0; v < n; v++ {
		g.InOff[v+1] += g.InOff[v]
	}
	g.InSrc = make([]int32, len(g.OutDst))
	g.InW = make([]uint32, len(g.OutDst))
	cursor := make([]int32, n)
	copy(cursor, g.InOff[:n])
	for u := 0; u < n; u++ {
		for e := g.OutOff[u]; e < g.OutOff[u+1]; e++ {
			t := g.OutDst[e]
			g.InSrc[cursor[t]] = int32(u)
			g.InW[cursor[t]] = g.OutW[e]
			cursor[t]++
		}
	}
}
