package graph

import (
	"reflect"
	"runtime"
	"sort"
	"testing"
)

// TestGenerateDeterministic pins the generator's portability contract:
// the same seed yields a byte-identical graph regardless of
// GOMAXPROCS, because generation walks one sequential splitmix64
// stream and never consults the scheduler.
func TestGenerateDeterministic(t *testing.T) {
	p := Params{N: 640, AvgDeg: 8, Seed: 42}
	base := Generate(p)
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, procs := range []int{1, 2, old} {
		runtime.GOMAXPROCS(procs)
		g := Generate(p)
		if !reflect.DeepEqual(base, g) {
			t.Fatalf("GOMAXPROCS=%d: graph differs from the first generation", procs)
		}
	}
	if reflect.DeepEqual(base, Generate(Params{N: 640, AvgDeg: 8, Seed: 43})) {
		t.Fatal("different seeds produced identical graphs")
	}
}

// TestGenerateWellFormed checks structural soundness for several
// (size, seed) pairs: monotone CSR/CSC offsets covering the edge
// arrays, in-range targets, no self-loops, no duplicate out-edges,
// sorted per-vertex targets, weights in 1..8 that agree between CSR
// and CSC, and CSC being exactly the transpose of CSR.
func TestGenerateWellFormed(t *testing.T) {
	for _, p := range []Params{
		{N: 32, AvgDeg: 2, Seed: 1},
		{N: 320, AvgDeg: 8, Seed: 7},
		{N: 1920, AvgDeg: 8, Seed: 42},
	} {
		g := Generate(p)
		n := p.N
		if len(g.OutOff) != n+1 || len(g.InOff) != n+1 {
			t.Fatalf("%+v: offset array lengths %d/%d", p, len(g.OutOff), len(g.InOff))
		}
		if g.OutOff[0] != 0 || int(g.OutOff[n]) != len(g.OutDst) {
			t.Fatalf("%+v: CSR offsets do not span the edge array", p)
		}
		if g.InOff[0] != 0 || int(g.InOff[n]) != len(g.InSrc) {
			t.Fatalf("%+v: CSC offsets do not span the edge array", p)
		}
		if len(g.OutW) != len(g.OutDst) || len(g.InW) != len(g.InSrc) || len(g.InSrc) != len(g.OutDst) {
			t.Fatalf("%+v: edge array lengths disagree", p)
		}
		type edge struct{ u, v int32 }
		csrW := map[edge]uint32{}
		for u := 0; u < n; u++ {
			lo, hi := g.OutOff[u], g.OutOff[u+1]
			if lo > hi {
				t.Fatalf("%+v: vertex %d has negative out-degree", p, u)
			}
			for e := lo; e < hi; e++ {
				v := g.OutDst[e]
				if v < 0 || int(v) >= n {
					t.Fatalf("%+v: edge %d->%d out of range", p, u, v)
				}
				if int(v) == u {
					t.Fatalf("%+v: self-loop at vertex %d", p, u)
				}
				if e > lo && g.OutDst[e-1] >= v {
					t.Fatalf("%+v: vertex %d targets unsorted or duplicated (%d, %d)", p, u, g.OutDst[e-1], v)
				}
				if w := g.OutW[e]; w < 1 || w > 8 {
					t.Fatalf("%+v: edge %d->%d weight %d outside 1..8", p, u, v, w)
				}
				csrW[edge{int32(u), v}] = g.OutW[e]
			}
		}
		// CSC must be the exact transpose, weights included.
		seen := 0
		for v := 0; v < n; v++ {
			for e := g.InOff[v]; e < g.InOff[v+1]; e++ {
				u := g.InSrc[e]
				w, ok := csrW[edge{u, int32(v)}]
				if !ok {
					t.Fatalf("%+v: CSC edge %d->%d missing from CSR", p, u, v)
				}
				if w != g.InW[e] {
					t.Fatalf("%+v: edge %d->%d weight %d in CSR, %d in CSC", p, u, v, w, g.InW[e])
				}
				seen++
			}
		}
		if seen != len(g.OutDst) {
			t.Fatalf("%+v: CSC has %d edges, CSR has %d", p, seen, len(g.OutDst))
		}
	}
}

// TestGeneratePowerLaw checks the property the workloads depend on:
// in-degree mass concentrates on low vertex indices (the hubs that
// make push atomics contend and make the hub/tail PageRank partition
// meaningful). The lowest-index 10% of vertices must absorb several
// times their uniform share of in-edges, and the maximum in-degree
// must dwarf the mean.
func TestGeneratePowerLaw(t *testing.T) {
	p := DefaultParams()
	g := Generate(p)
	n := p.N
	inDeg := make([]int, n)
	for _, v := range g.OutDst {
		inDeg[v]++
	}
	hubEdges := 0
	for v := 0; v < n/10; v++ {
		hubEdges += inDeg[v]
	}
	if frac := float64(hubEdges) / float64(g.NumEdges()); frac < 0.25 {
		t.Fatalf("lowest 10%% of vertices hold only %.1f%% of in-edges; degree distribution is not hub-skewed", 100*frac)
	}
	sorted := append([]int(nil), inDeg...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	mean := float64(g.NumEdges()) / float64(n)
	if float64(sorted[0]) < 8*mean {
		t.Fatalf("max in-degree %d is under 8x the mean %.1f; no hubs", sorted[0], mean)
	}
	// Mean out-degree should be in the neighbourhood of AvgDeg: the
	// truncated power law targets it, duplicate rejection shaves a bit.
	if mean < float64(p.AvgDeg)/2 || mean > float64(p.AvgDeg)*2 {
		t.Fatalf("mean degree %.1f far from target %d", mean, p.AvgDeg)
	}
}
