package graph

import (
	"denovogpu/internal/coherence"
	"denovogpu/internal/mem"
	"denovogpu/internal/workload"
)

// bfsInf marks an undiscovered vertex.
const bfsInf = 0xFFFFFFFF

// bfsSrc is the traversal root.
const bfsSrc = 0

// BFS builds the direction-optimizing breadth-first search workload: a
// push kernel (frontier vertices scatter level updates to their
// out-neighbors with relaxed AtomicMin) while the frontier is small,
// and a pull kernel (undiscovered vertices scan their in-neighbors and
// claim a level with a plain store) while it is large. The host picks
// the direction per level from the device's discovered counter, so the
// kernel sequence is identical under every protocol configuration.
func BFS(p Params) workload.Workload {
	g := Generate(p)
	a := workload.NewArena()
	outOff := a.Words(p.N + 1)
	outDst := a.Words(g.NumEdges())
	inOff := a.Words(p.N + 1)
	inSrc := a.Words(g.NumEdges())
	level := a.Words(p.N)
	counts := a.Words(maxWorkers) // per-worker discoveries this kernel

	push := func(d uint32) workload.Kernel {
		return func(c *workload.Ctx) {
			wLo, wHi := workerRange(c, p.N)
			found := uint32(0)
			for base := wLo; base < wHi; base += threadsPerTB {
				lv := c.LoadStride(level + mem.Addr(4*base))
				for i, l := range lv {
					if l != d {
						continue
					}
					u := base + i
					lo := c.Load(outOff + mem.Addr(4*u))
					hi := c.Load(outOff + mem.Addr(4*(u+1)))
					for e := lo; e < hi; e++ {
						t := c.Load(outDst + mem.Addr(4*e))
						old := c.AtomicMinRelaxed(level+mem.Addr(4*t), d+1, coherence.ScopeGlobal)
						if old == bfsInf {
							found++
						}
					}
				}
			}
			c.Store(counts+mem.Addr(4*workerID(c)), found)
		}
	}
	pull := func(d uint32) workload.Kernel {
		return func(c *workload.Ctx) {
			wLo, wHi := workerRange(c, p.N)
			found := uint32(0)
			for base := wLo; base < wHi; base += threadsPerTB {
				lv := c.LoadStride(level + mem.Addr(4*base))
				for i, l := range lv {
					if l != bfsInf {
						continue
					}
					v := base + i
					lo := c.Load(inOff + mem.Addr(4*v))
					hi := c.Load(inOff + mem.Addr(4*(v+1)))
					for e := lo; e < hi; e++ {
						u := c.Load(inSrc + mem.Addr(4*e))
						if c.Load(level+mem.Addr(4*u)) == d {
							c.Store(level+mem.Addr(4*v), d+1)
							found++
							break
						}
					}
				}
			}
			c.Store(counts+mem.Addr(4*workerID(c)), found)
		}
	}

	return workload.Workload{
		Name:     "BFS",
		Input:    inputDesc(p),
		Category: workload.Graph,
		Host: func(h workload.Host) {
			workload.WriteSlice(h, outOff, u32s(g.OutOff))
			workload.WriteSlice(h, outDst, u32s(g.OutDst))
			workload.WriteSlice(h, inOff, u32s(g.InOff))
			workload.WriteSlice(h, inSrc, u32s(g.InSrc))
			h.SetReadOnly(outOff, level)
			lv := fill(p.N, bfsInf)
			lv[bfsSrc] = 0
			workload.WriteSlice(h, level, lv)
			tbs := workerGrid(h)
			frontier := 1
			usePull := false
			for d := uint32(0); frontier > 0 && int(d) <= p.N; d++ {
				// Direction-optimizing switch: go pull once the frontier is a
				// sizable fraction of the graph. There is no switch back for
				// the sparse tail: unlike queue-based push BFS, both kernels
				// here scan the full vertex array, so a late direction change
				// regains nothing — and late pull levels are cheap anyway
				// (few undiscovered vertices remain, and the level array
				// stays hot in the pull phase's caches), while every
				// direction change costs a phase drain under a specialized
				// configuration.
				if !usePull && frontier > p.N/64 {
					usePull = true
				}
				if usePull {
					workload.LaunchPhase(h, workload.PhasePull, pull(d), tbs, threadsPerTB)
				} else {
					workload.LaunchPhase(h, workload.PhasePush, push(d), tbs, threadsPerTB)
				}
				frontier = sumSlots(h, counts, tbs)
			}
		},
		Verify: func(h workload.Host) error {
			return checkWords(h, "BFS", level, refBFS(g, bfsSrc))
		},
	}
}
