package graph

import (
	"denovogpu/internal/coherence"
	"denovogpu/internal/mem"
	"denovogpu/internal/workload"
)

// ssspInf is the unreached distance; small enough that inf + maxWeight
// cannot wrap a uint32 (AtomicMin is unsigned).
const ssspInf = 1 << 30

// SSSP builds the frontier Bellman-Ford workload: a push kernel where
// active vertices relax their out-edges with relaxed AtomicMin (and
// raise the target's next-round flag with relaxed AtomicExch), then a
// dense pull kernel swapping the activity bitmaps. Rounds repeat until
// a fixpoint (no distance lowered).
func SSSP(p Params) workload.Workload {
	g := Generate(p)
	a := workload.NewArena()
	outOff := a.Words(p.N + 1)
	outDst := a.Words(g.NumEdges())
	outW := a.Words(g.NumEdges())
	dist := a.Words(p.N)
	active := a.Words(p.N)
	next := a.Words(p.N)
	counts := a.Words(maxWorkers) // per-worker improving relaxations

	relax := func(c *workload.Ctx) {
		wLo, wHi := workerRange(c, p.N)
		improved := uint32(0)
		for base := wLo; base < wHi; base += threadsPerTB {
			av := c.LoadStride(active + mem.Addr(4*base))
			for i, flag := range av {
				if flag == 0 {
					continue
				}
				u := base + i
				du := c.Load(dist + mem.Addr(4*u))
				lo := c.Load(outOff + mem.Addr(4*u))
				hi := c.Load(outOff + mem.Addr(4*(u+1)))
				for e := lo; e < hi; e++ {
					t := c.Load(outDst + mem.Addr(4*e))
					w := c.Load(outW + mem.Addr(4*e))
					nd := du + w
					if old := c.AtomicMinRelaxed(dist+mem.Addr(4*t), nd, coherence.ScopeGlobal); old > nd {
						c.AtomicExchRelaxed(next+mem.Addr(4*t), 1, coherence.ScopeGlobal)
						improved++
					}
				}
			}
		}
		c.Store(counts+mem.Addr(4*workerID(c)), improved)
	}
	swap := func(c *workload.Ctx) {
		wLo, wHi := workerRange(c, p.N)
		for base := wLo; base < wHi; base += threadsPerTB {
			nv := c.LoadStride(next + mem.Addr(4*base))
			c.StoreStride(active+mem.Addr(4*base), nv)
			c.StoreStride(next+mem.Addr(4*base), make([]uint32, threadsPerTB))
		}
	}

	return workload.Workload{
		Name:     "SSSP",
		Input:    inputDesc(p),
		Category: workload.Graph,
		Host: func(h workload.Host) {
			workload.WriteSlice(h, outOff, u32s(g.OutOff))
			workload.WriteSlice(h, outDst, u32s(g.OutDst))
			workload.WriteSlice(h, outW, g.OutW)
			h.SetReadOnly(outOff, dist)
			dv := fill(p.N, ssspInf)
			dv[bfsSrc] = 0
			workload.WriteSlice(h, dist, dv)
			av := fill(p.N, 0)
			av[bfsSrc] = 1
			workload.WriteSlice(h, active, av)
			workload.WriteSlice(h, next, fill(p.N, 0))
			tbs := workerGrid(h)
			for round := 0; round <= p.N; round++ {
				workload.LaunchPhase(h, workload.PhasePush, relax, tbs, threadsPerTB)
				workload.LaunchPhase(h, workload.PhasePull, swap, tbs, threadsPerTB)
				if sumSlots(h, counts, tbs) == 0 {
					break
				}
			}
		},
		Verify: func(h workload.Host) error {
			return checkWords(h, "SSSP", dist, refSSSP(g, bfsSrc))
		},
	}
}
