package graph

import (
	"denovogpu/internal/coherence"
	"denovogpu/internal/mem"
	"denovogpu/internal/workload"
)

// Fixed-point PageRank constants: ranks are scaled by 2^10, damping
// 0.85 ~ prDamp/2^10, teleport mass 0.15 ~ prBase/2^10. Integer
// arithmetic keeps the device result exactly reproducible by the
// sequential reference (uint32 additions commute), on top of the
// tolerance check against the float reference.
const (
	prIters = 4
	prOne   = 1 << 10
	prBase  = 154 // round(0.15 * 2^10)
	prDamp  = 870 // round(0.85 * 2^10)
)

// hubCut is the hub partition boundary: vertices below it are "hubs".
// The generator biases edge targets toward low indices, so the low
// quarter of the vertex ID space holds the high in-degree vertices.
// The cut is tile-aligned so the gather kernel's worker ranges stay
// whole thread-block tiles.
func hubCut(n int) int { return n / 4 / threadsPerTB * threadsPerTB }

// PageRank builds a hub-partitioned hybrid PageRank: per iteration a
// push kernel scatters contributions to low in-degree targets with
// relaxed AtomicAdd (spreading the atomics across the long tail), a
// pull kernel gathers each high in-degree hub's accumulator from its
// in-edge list with plain loads and a single store (no atomic hotspot
// on hubs), and a second pull kernel applies the damping update and
// refreshes the per-vertex contribution. The partition is the standard
// remedy for atomic contention on power-law hubs, and it gives the
// pull phase real ownership-friendly work: the hub gather re-reads the
// same CSC slice every iteration.
func PageRank(p Params) workload.Workload {
	g := Generate(p)
	hub := hubCut(p.N)
	a := workload.NewArena()
	outOff := a.Words(p.N + 1)
	outDst := a.Words(g.NumEdges())
	inOff := a.Words(p.N + 1)
	inSrc := a.Words(g.NumEdges())
	contrib := a.Words(p.N)
	rank := a.Words(p.N)
	acc := a.Words(p.N)

	scatter := func(c *workload.Ctx) {
		wLo, wHi := workerRange(c, p.N)
		for base := wLo; base < wHi; base += threadsPerTB {
			cv := c.LoadStride(contrib + mem.Addr(4*base))
			offs := c.LoadStride(outOff + mem.Addr(4*base))
			end := c.Load(outOff + mem.Addr(4*(base+threadsPerTB)))
			for i := 0; i < threadsPerTB; i++ {
				if cv[i] == 0 {
					continue
				}
				lo := offs[i]
				hi := end
				if i+1 < threadsPerTB {
					hi = offs[i+1]
				}
				for e := lo; e < hi; e++ {
					t := c.Load(outDst + mem.Addr(4*e))
					if int(t) >= hub {
						c.AtomicAddRelaxed(acc+mem.Addr(4*t), cv[i], coherence.ScopeGlobal)
					}
				}
			}
		}
	}
	gather := func(c *workload.Ctx) {
		wLo, wHi := workerRange(c, hub)
		for base := wLo; base < wHi; base += threadsPerTB {
			offs := c.LoadStride(inOff + mem.Addr(4*base))
			end := c.Load(inOff + mem.Addr(4*(base+threadsPerTB)))
			sums := make([]uint32, threadsPerTB)
			for i := 0; i < threadsPerTB; i++ {
				lo := offs[i]
				hi := end
				if i+1 < threadsPerTB {
					hi = offs[i+1]
				}
				s := uint32(0)
				for e := lo; e < hi; e++ {
					u := c.Load(inSrc + mem.Addr(4*e))
					s += c.Load(contrib + mem.Addr(4*u))
				}
				sums[i] = s
			}
			c.StoreStride(acc+mem.Addr(4*base), sums)
		}
	}
	apply := func(c *workload.Ctx) {
		wLo, wHi := workerRange(c, p.N)
		for base := wLo; base < wHi; base += threadsPerTB {
			av := c.LoadStride(acc + mem.Addr(4*base))
			offs := c.LoadStride(outOff + mem.Addr(4*base))
			end := c.Load(outOff + mem.Addr(4*(base+threadsPerTB)))
			newRank := make([]uint32, threadsPerTB)
			newContrib := make([]uint32, threadsPerTB)
			for i, v := range av {
				r := prBase + prDamp*v>>10
				lo := offs[i]
				hi := end
				if i+1 < threadsPerTB {
					hi = offs[i+1]
				}
				newRank[i] = r
				newContrib[i] = r / (hi - lo)
			}
			c.StoreStride(rank+mem.Addr(4*base), newRank)
			c.StoreStride(contrib+mem.Addr(4*base), newContrib)
			c.StoreStride(acc+mem.Addr(4*base), make([]uint32, threadsPerTB))
		}
	}

	return workload.Workload{
		Name:     "PR",
		Input:    inputDesc(p),
		Category: workload.Graph,
		Host: func(h workload.Host) {
			workload.WriteSlice(h, outOff, u32s(g.OutOff))
			workload.WriteSlice(h, outDst, u32s(g.OutDst))
			workload.WriteSlice(h, inOff, u32s(g.InOff))
			workload.WriteSlice(h, inSrc, u32s(g.InSrc))
			h.SetReadOnly(outOff, contrib)
			cv := make([]uint32, p.N)
			for u := 0; u < p.N; u++ {
				cv[u] = prOne / uint32(g.OutOff[u+1]-g.OutOff[u])
			}
			workload.WriteSlice(h, contrib, cv)
			workload.WriteSlice(h, rank, fill(p.N, prOne))
			workload.WriteSlice(h, acc, fill(p.N, 0))
			tbs := workerGrid(h)
			for it := 0; it < prIters; it++ {
				workload.LaunchPhase(h, workload.PhasePush, scatter, tbs, threadsPerTB)
				workload.LaunchPhase(h, workload.PhasePull, gather, tbs, threadsPerTB)
				workload.LaunchPhase(h, workload.PhasePull, apply, tbs, threadsPerTB)
			}
		},
		Verify: func(h workload.Host) error {
			if err := checkWords(h, "PR", rank, refPageRank(g)); err != nil {
				return err
			}
			return checkPRTolerance(h, rank, g)
		},
	}
}
