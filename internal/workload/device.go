// Package workload defines the device programming API that benchmark
// kernels are written against, and the registry of all benchmarks from
// the paper's Table 4.
//
// Kernels execute as SIMT lockstep vector code at thread-block
// granularity: every memory operation supplies one address per thread
// (or uses the scalar forms, which model "thread 0 does X" idioms from
// the original microbenchmarks). The GPU timing model coalesces each
// vector access into per-warp line accesses, exactly as the simulated
// hardware would.
package workload

import (
	"denovogpu/internal/coherence"
	"denovogpu/internal/mem"
)

// Executor is the backend a kernel's context drives; the GPU package
// implements it with the CU timing model.
type Executor interface {
	// Vec performs a vector memory operation: loads (one address per
	// active lane) and/or stores. It returns the loaded values, indexed
	// like loads.
	Vec(loads []mem.Addr, stores []mem.Addr, storeVals []uint32) []uint32
	// Atomic performs a scalar synchronization access.
	Atomic(op coherence.AtomicOp, a mem.Addr, operand, operand2 uint32, order coherence.Order, scope coherence.Scope) uint32
	// Compute models n cycles of ALU work.
	Compute(n int)
	// Wait models n cycles of idle waiting (spin backoff, sleep): time
	// passes but the warp issues no instructions, so no instruction
	// energy is charged.
	Wait(n int)
	// Scratch models n scratchpad accesses.
	Scratch(n int)
}

// Kernel is a GPU kernel body, executed once per thread block.
type Kernel func(c *Ctx)

// Ctx is the per-thread-block execution context handed to kernels.
type Ctx struct {
	// TB is this thread block's index within the grid.
	TB int
	// NumTBs is the grid size in thread blocks.
	NumTBs int
	// Threads is the number of threads in this block.
	Threads int
	// CU is the compute unit executing this block.
	CU int
	// NumCUs is the number of compute units in the machine.
	NumCUs int

	Ex Executor

	// Scalar-access scratch, reused across Load/Store calls. Safe
	// because Vec completes synchronously before returning, so the
	// executor never retains these past the call.
	ldScratch [1]mem.Addr
	stScratch [1]mem.Addr
	svScratch [1]uint32
	// addrScratch backs StrideAddrs, reused across calls for the same
	// reason.
	addrScratch []mem.Addr
}

// Load reads one word (a scalar, thread-0 access).
func (c *Ctx) Load(a mem.Addr) uint32 {
	c.ldScratch[0] = a
	return c.Ex.Vec(c.ldScratch[:], nil, nil)[0]
}

// Store writes one word (a scalar, thread-0 access).
func (c *Ctx) Store(a mem.Addr, v uint32) {
	c.stScratch[0] = a
	c.svScratch[0] = v
	c.Ex.Vec(nil, c.stScratch[:], c.svScratch[:])
}

// LoadV reads one word per thread.
func (c *Ctx) LoadV(addrs []mem.Addr) []uint32 {
	return c.Ex.Vec(addrs, nil, nil)
}

// StoreV writes one word per thread.
func (c *Ctx) StoreV(addrs []mem.Addr, vals []uint32) {
	c.Ex.Vec(nil, addrs, vals)
}

// StrideAddrs returns the addresses thread i = base + 4*i*stride words,
// one per thread — the canonical coalesced access. The returned slice
// is the context's reusable scratch: it is valid until the next
// StrideAddrs call, which is enough for the load/store it feeds (Vec
// consumes the addresses before returning).
func (c *Ctx) StrideAddrs(base mem.Addr, stride int) []mem.Addr {
	if cap(c.addrScratch) < c.Threads {
		c.addrScratch = make([]mem.Addr, c.Threads)
	}
	addrs := c.addrScratch[:c.Threads]
	for i := range addrs {
		addrs[i] = base + mem.Addr(i*stride*mem.WordBytes)
	}
	return addrs
}

// LoadStride loads thread-contiguous words starting at base.
func (c *Ctx) LoadStride(base mem.Addr) []uint32 {
	return c.LoadV(c.StrideAddrs(base, 1))
}

// StoreStride stores thread-contiguous words starting at base.
func (c *Ctx) StoreStride(base mem.Addr, vals []uint32) {
	c.StoreV(c.StrideAddrs(base, 1), vals)
}

// Compute models n cycles of per-warp ALU work.
func (c *Ctx) Compute(n int) { c.Ex.Compute(n) }

// Wait models n cycles of idle waiting (backoff, sleep quantum).
func (c *Ctx) Wait(n int) { c.Ex.Wait(n) }

// Scratch models n scratchpad accesses.
func (c *Ctx) Scratch(n int) { c.Ex.Scratch(n) }

// Synchronization accesses. Following the DRF/HRF conventions (and the
// paper's ban on relaxed atomics), a sync read is an acquire, a sync
// write is a release, and RMWs are both.

// AtomicLoad is a synchronization read (acquire).
func (c *Ctx) AtomicLoad(a mem.Addr, s coherence.Scope) uint32 {
	return c.Ex.Atomic(coherence.AtomicLoad, a, 0, 0, coherence.OrderAcquire, s)
}

// AtomicStore is a synchronization write (release).
func (c *Ctx) AtomicStore(a mem.Addr, v uint32, s coherence.Scope) {
	c.Ex.Atomic(coherence.AtomicStore, a, v, 0, coherence.OrderRelease, s)
}

// AtomicAdd is a fetch-and-add (acquire+release).
func (c *Ctx) AtomicAdd(a mem.Addr, v uint32, s coherence.Scope) uint32 {
	return c.Ex.Atomic(coherence.AtomicAdd, a, v, 0, coherence.OrderAcqRel, s)
}

// AtomicCAS stores newV if the current value is oldV, returning the
// prior value (acquire+release).
func (c *Ctx) AtomicCAS(a mem.Addr, oldV, newV uint32, s coherence.Scope) uint32 {
	return c.Ex.Atomic(coherence.AtomicCAS, a, newV, oldV, coherence.OrderAcqRel, s)
}

// AtomicExch swaps in v, returning the prior value (acquire+release).
func (c *Ctx) AtomicExch(a mem.Addr, v uint32, s coherence.Scope) uint32 {
	return c.Ex.Atomic(coherence.AtomicExch, a, v, 0, coherence.OrderAcqRel, s)
}

// Relaxed atomics (beyond the paper; Salvador et al.'s graph-analytics
// extension). The RMW itself is indivisible, but it carries no
// acquire/release ordering: no invalidation before subsequent accesses
// and no store-buffer flush of prior writes. They are the accumulation
// primitive of the push-phase graph kernels, where the only property
// the algorithm needs is atomicity of the commutative update.

// AtomicAddRelaxed is a relaxed fetch-and-add.
func (c *Ctx) AtomicAddRelaxed(a mem.Addr, v uint32, s coherence.Scope) uint32 {
	return c.Ex.Atomic(coherence.AtomicAdd, a, v, 0, coherence.OrderRelaxed, s)
}

// AtomicMinRelaxed is a relaxed fetch-and-min.
func (c *Ctx) AtomicMinRelaxed(a mem.Addr, v uint32, s coherence.Scope) uint32 {
	return c.Ex.Atomic(coherence.AtomicMin, a, v, 0, coherence.OrderRelaxed, s)
}

// AtomicExchRelaxed is a relaxed exchange (flag raising).
func (c *Ctx) AtomicExchRelaxed(a mem.Addr, v uint32, s coherence.Scope) uint32 {
	return c.Ex.Atomic(coherence.AtomicExch, a, v, 0, coherence.OrderRelaxed, s)
}
