package workload

import (
	"errors"
	"testing"

	"denovogpu/internal/coherence"
	"denovogpu/internal/mem"
)

// scriptExec records the operations a kernel performs.
type scriptExec struct {
	vecs    [][2][]mem.Addr // loads, stores
	atomics []coherence.AtomicOp
	scopes  []coherence.Scope
	orders  []coherence.Order
	compute int
	scratch int
	loadVal uint32
}

func (s *scriptExec) Vec(loads []mem.Addr, stores []mem.Addr, vals []uint32) []uint32 {
	s.vecs = append(s.vecs, [2][]mem.Addr{loads, stores})
	out := make([]uint32, len(loads))
	for i := range out {
		out[i] = s.loadVal
	}
	return out
}

func (s *scriptExec) Atomic(op coherence.AtomicOp, a mem.Addr, o1, o2 uint32, order coherence.Order, scope coherence.Scope) uint32 {
	s.atomics = append(s.atomics, op)
	s.scopes = append(s.scopes, scope)
	s.orders = append(s.orders, order)
	return s.loadVal
}

func (s *scriptExec) Compute(n int) { s.compute += n }
func (s *scriptExec) Wait(n int)    { s.compute += n }
func (s *scriptExec) Scratch(n int) { s.scratch += n }

func newCtx(ex Executor) *Ctx {
	return &Ctx{TB: 2, NumTBs: 10, Threads: 4, CU: 1, NumCUs: 5, Ex: ex}
}

func TestCtxScalarOps(t *testing.T) {
	ex := &scriptExec{loadVal: 9}
	c := newCtx(ex)
	if v := c.Load(0x40); v != 9 {
		t.Fatalf("Load = %d", v)
	}
	c.Store(0x44, 5)
	if len(ex.vecs) != 2 {
		t.Fatalf("ops recorded: %d", len(ex.vecs))
	}
	if len(ex.vecs[0][0]) != 1 || ex.vecs[0][0][0] != 0x40 {
		t.Fatal("scalar load shape wrong")
	}
	if len(ex.vecs[1][1]) != 1 || ex.vecs[1][1][0] != 0x44 {
		t.Fatal("scalar store shape wrong")
	}
}

func TestCtxStrideAddrs(t *testing.T) {
	c := newCtx(&scriptExec{})
	addrs := c.StrideAddrs(0x100, 1)
	if len(addrs) != 4 {
		t.Fatalf("len %d", len(addrs))
	}
	for i, a := range addrs {
		if a != mem.Addr(0x100+4*i) {
			t.Fatalf("addr[%d] = %v", i, a)
		}
	}
	strided := c.StrideAddrs(0x100, 3)
	if strided[1] != 0x100+12 {
		t.Fatal("stride ignored")
	}
}

func TestCtxAtomicOrders(t *testing.T) {
	ex := &scriptExec{}
	c := newCtx(ex)
	c.AtomicLoad(0x40, coherence.ScopeLocal)
	c.AtomicStore(0x40, 1, coherence.ScopeGlobal)
	c.AtomicAdd(0x40, 1, coherence.ScopeGlobal)
	c.AtomicCAS(0x40, 0, 1, coherence.ScopeGlobal)
	c.AtomicExch(0x40, 1, coherence.ScopeGlobal)
	wantOrders := []coherence.Order{
		coherence.OrderAcquire, coherence.OrderRelease,
		coherence.OrderAcqRel, coherence.OrderAcqRel, coherence.OrderAcqRel,
	}
	for i, o := range wantOrders {
		if ex.orders[i] != o {
			t.Errorf("atomic %d order %v, want %v", i, ex.orders[i], o)
		}
	}
	if ex.scopes[0] != coherence.ScopeLocal || ex.scopes[1] != coherence.ScopeGlobal {
		t.Fatal("scopes not forwarded")
	}
}

func TestArenaAllocation(t *testing.T) {
	a := NewArena()
	x := a.Words(5)
	y := a.Words(1)
	z := a.Line()
	if x.LineOf() == y.LineOf() || y.LineOf() == z.LineOf() {
		t.Fatal("allocations must not share lines")
	}
	if x%mem.LineBytes != 0 || y%mem.LineBytes != 0 {
		t.Fatal("allocations must be line aligned")
	}
	if y-x < 5*mem.WordBytes {
		t.Fatal("allocation too small")
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Skip("registry populated by benchmark packages, not linked here")
	}
}

func TestRegistryUnknown(t *testing.T) {
	_, err := Get("NOPE")
	if err == nil {
		t.Fatal("unknown workload must error")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	Register(Workload{Name: "dup-test-wl"})
	Register(Workload{Name: "dup-test-wl"})
}

type fakeHost struct {
	mem map[mem.Addr]uint32
}

func (f *fakeHost) Launch(Kernel, int, int)    {}
func (f *fakeHost) Read(a mem.Addr) uint32     { return f.mem[a] }
func (f *fakeHost) Write(a mem.Addr, v uint32) { f.mem[a] = v }
func (f *fakeHost) SetReadOnly(_, _ mem.Addr)  {}
func (f *fakeHost) ClearReadOnly()             {}
func (f *fakeHost) NumCUs() int                { return 15 }

func TestSliceHelpers(t *testing.T) {
	h := &fakeHost{mem: map[mem.Addr]uint32{}}
	WriteSlice(h, 0x100, []uint32{1, 2, 3})
	got := ReadSlice(h, 0x100, 3)
	for i, v := range []uint32{1, 2, 3} {
		if got[i] != v {
			t.Fatalf("slice roundtrip[%d] = %d", i, got[i])
		}
	}
	if errors.Is(nil, nil) != true { // keep errors import honest
		t.Fatal("unreachable")
	}
}
