package syncbench

import (
	"fmt"

	"denovogpu/internal/coherence"
	"denovogpu/internal/mem"
	"denovogpu/internal/workload"
)

// BarrierParams configures the tree-barrier benchmarks (TB_LG,
// TBEX_LG). All thread blocks on a CU join a locally scoped barrier;
// one representative per CU then joins the globally scoped barrier
// (a two-level tree barrier). Each iteration's compute phase exchanges
// double-buffered data between blocks: TB_LG exchanges with a block on
// another CU; TBEX_LG additionally exchanges with a sibling block on
// the same CU before joining the global barrier.
type BarrierParams struct {
	LocalExchange bool // TBEX_LG
	TBsPerCU      int
	Iters         int
	Accesses      int
	Threads       int
	NumCUs        int // CUs per device
	Devices       int // devices; the global barrier spans all of them
}

func (p BarrierParams) defaults() BarrierParams {
	if p.TBsPerCU == 0 {
		p.TBsPerCU = DefaultTBsPerCU
	}
	if p.Iters == 0 {
		p.Iters = DefaultIters
	}
	if p.Accesses == 0 {
		p.Accesses = DefaultAccesses
	}
	if p.Threads == 0 {
		p.Threads = DefaultThreads
	}
	if p.NumCUs == 0 {
		p.NumCUs = 15
	}
	if p.Devices == 0 {
		p.Devices = 1
	}
	return p
}

// TreeBarrier builds TB_LG or TBEX_LG.
func TreeBarrier(p BarrierParams) workload.Workload {
	p = p.defaults()
	name := "TB_LG"
	if p.LocalExchange {
		name = "TBEX_LG"
	}
	name += devSuffix(p.Devices)
	workers := p.Devices * p.NumCUs
	numTBs := p.TBsPerCU * workers
	regionWords := p.Accesses * p.Threads

	lay := newLayout()
	gcount := lay.line()
	gsense := lay.line()
	lcounts := make([]mem.Addr, workers)
	lsenses := make([]mem.Addr, workers)
	for i := range lcounts {
		lcounts[i] = lay.line()
		lsenses[i] = lay.line()
	}
	// Double-buffered per-block regions: iteration it reads buffer
	// it%2 and writes buffer 1-it%2, so cross-block reads are race-free
	// (separated from the writes by the previous iteration's barrier).
	bufs := [2][]mem.Addr{}
	for b := 0; b < 2; b++ {
		bufs[b] = make([]mem.Addr, numTBs)
		for i := range bufs[b] {
			bufs[b][i] = lay.words(regionWords)
		}
	}
	// Read-only coefficients used by every compute phase: genuinely
	// read-only program data that DD+RO's selective invalidation (and
	// GH's local scopes) can keep cached across barriers.
	coef := lay.words(regionWords)
	coefAt := func(i int) uint32 { return uint32(i%7 + 1) }

	// twoLevelBarrier joins the two-level phase-counting barrier; phase
	// is the number of barriers this block has completed.
	twoLevelBarrier := func(c *workload.Ctx, phase uint32) {
		lcount, lsense := lcounts[c.CU], lsenses[c.CU]
		arrived := c.AtomicAdd(lcount, 1, coherence.ScopeLocal) + 1
		if arrived == uint32(p.TBsPerCU) {
			c.AtomicStore(lcount, 0, coherence.ScopeLocal)
			// Representative joins the global barrier.
			g := c.AtomicAdd(gcount, 1, coherence.ScopeGlobal) + 1
			if g == uint32(workers) {
				c.AtomicStore(gcount, 0, coherence.ScopeGlobal)
				c.AtomicAdd(gsense, 1, coherence.ScopeGlobal)
			} else {
				s := newSpinWait(true)
				for c.AtomicLoad(gsense, coherence.ScopeGlobal) <= phase {
					s.wait(c)
				}
			}
			c.AtomicAdd(lsense, 1, coherence.ScopeLocal)
		} else {
			s := newSpinWait(true)
			for c.AtomicLoad(lsense, coherence.ScopeLocal) <= phase {
				s.wait(c)
			}
		}
	}

	kernel := func(c *workload.Ctx) {
		for it := 0; it < p.Iters; it++ {
			src, dst := bufs[it%2], bufs[1-it%2]
			remote := (c.TB + 1) % numTBs // lives on the next CU
			sibling := (c.TB/c.NumCUs+1)%p.TBsPerCU*c.NumCUs + c.CU
			for j := 0; j < p.Accesses; j++ {
				off := mem.Addr(4 * j * c.Threads)
				own := c.LoadStride(src[c.TB] + off)
				part := c.LoadStride(src[remote] + off)
				cf := c.LoadStride(coef + off)
				for i := range own {
					own[i] += part[i] * cf[i]
				}
				if p.LocalExchange {
					sib := c.LoadStride(src[sibling] + off)
					for i := range own {
						own[i] += sib[i]
					}
				}
				c.StoreStride(dst[c.TB]+off, own)
			}
			twoLevelBarrier(c, uint32(it))
		}
	}

	refInit := func(tb, i int) uint32 { return uint32(tb*1000 + i) }

	return workload.Workload{
		Name:     name,
		Input:    fmt.Sprintf("%d TBs/CU, %d iters/TB/kernel, %d Ld&St/thr/iter", p.TBsPerCU, p.Iters, p.Accesses),
		Category: devCategory(p.Devices, workload.LocalSync),
		Host: func(h workload.Host) {
			for tb := 0; tb < numTBs; tb++ {
				for i := 0; i < regionWords; i++ {
					h.Write(bufs[0][tb]+mem.Addr(4*i), refInit(tb, i))
				}
			}
			for i := 0; i < regionWords; i++ {
				h.Write(coef+mem.Addr(4*i), coefAt(i))
			}
			h.SetReadOnly(coef, coef+mem.Addr(4*regionWords))
			h.Launch(kernel, numTBs, p.Threads)
		},
		Verify: func(h workload.Host) error {
			cur := make([][]uint32, numTBs)
			for tb := range cur {
				cur[tb] = make([]uint32, regionWords)
				for i := range cur[tb] {
					cur[tb][i] = refInit(tb, i)
				}
			}
			for it := 0; it < p.Iters; it++ {
				next := make([][]uint32, numTBs)
				for tb := range next {
					remote := (tb + 1) % numTBs
					cu := tb % workers
					sibling := (tb/workers+1)%p.TBsPerCU*workers + cu
					next[tb] = make([]uint32, regionWords)
					for i := range next[tb] {
						v := cur[tb][i] + cur[remote][i]*coefAt(i)
						if p.LocalExchange {
							v += cur[sibling][i]
						}
						next[tb][i] = v
					}
				}
				cur = next
			}
			final := bufs[p.Iters%2]
			for tb := 0; tb < numTBs; tb++ {
				for i := 0; i < regionWords; i++ {
					if got := h.Read(final[tb] + mem.Addr(4*i)); got != cur[tb][i] {
						return fmt.Errorf("%s block %d word %d = %d, want %d", name, tb, i, got, cur[tb][i])
					}
				}
			}
			return nil
		},
	}
}

func init() {
	workload.Register(TreeBarrier(BarrierParams{LocalExchange: false}))
	workload.Register(TreeBarrier(BarrierParams{LocalExchange: true}))
}
