package syncbench

import (
	"fmt"

	"denovogpu/internal/coherence"
	"denovogpu/internal/mem"
	"denovogpu/internal/workload"
)

// SemParams configures the reader-writer spin semaphore benchmark
// (SS_L / SSBO_L). Each CU has one writer thread block and two reader
// thread blocks synchronizing through a locally scoped counting
// semaphore. Readers take one slot and read half the CU's data (10
// loads/thread/iter); the writer takes the entire semaphore and shifts
// the data right by one element (20 stores/thread/iter), leaving the
// first element untouched.
type SemParams struct {
	Backoff  bool
	Iters    int
	Threads  int
	NumCUs   int // CUs per device
	Devices  int // devices; one semaphore/region per CU on every device
	LoadsPer int // reader loads per thread per iteration
}

func (p SemParams) defaults() SemParams {
	if p.Iters == 0 {
		p.Iters = DefaultIters
	}
	if p.Threads == 0 {
		p.Threads = DefaultThreads
	}
	if p.NumCUs == 0 {
		p.NumCUs = 15
	}
	if p.LoadsPer == 0 {
		p.LoadsPer = DefaultAccesses
	}
	if p.Devices == 0 {
		p.Devices = 1
	}
	return p
}

// Semaphore builds SS_L or SSBO_L.
func Semaphore(p SemParams) workload.Workload {
	p = p.defaults()
	name := "SS_L"
	if p.Backoff {
		name = "SSBO_L"
	}
	name += devSuffix(p.Devices)
	workers := p.Devices * p.NumCUs
	const readers = 2
	halfWords := p.LoadsPer * p.Threads // each reader's half
	regionWords := readers * halfWords

	lay := newLayout()
	sems := make([]mem.Addr, workers)
	regions := make([]mem.Addr, workers)
	for i := range sems {
		sems[i] = lay.line()
		regions[i] = lay.words(regionWords + 1) // +1: shift writes region[1..regionWords]
	}
	scope := coherence.ScopeLocal

	// semTake acquires n slots of the CU's semaphore (capacity =
	// readers); the writer takes all of them.
	semTake := func(c *workload.Ctx, sem mem.Addr, n uint32) {
		s := newSpinWait(p.Backoff)
		for {
			v := c.AtomicLoad(sem, scope)
			if v >= n && c.AtomicCAS(sem, v, v-n, scope) == v {
				return
			}
			s.wait(c)
		}
	}
	semGive := func(c *workload.Ctx, sem mem.Addr, n uint32) {
		c.AtomicAdd(sem, n, scope)
	}

	kernel := func(c *workload.Ctx) {
		sem, region := sems[c.CU], regions[c.CU]
		rank := c.TB / c.NumCUs // 0 = writer, 1..2 = readers
		for it := 0; it < p.Iters; it++ {
			if rank == 0 {
				semTake(c, sem, readers)
				// Shift the region right by one word: 20 loads + 20
				// stores per thread, leaving word 0 unwritten. Chunks go
				// high to low so each chunk reads pre-shift values.
				per := regionWords / p.Threads // words per thread
				for j := per - 1; j >= 0; j-- {
					base := region + mem.Addr(4*j*c.Threads)
					v := c.LoadStride(base)
					c.StoreStride(base+mem.Addr(4), v)
				}
				semGive(c, sem, readers)
			} else {
				semTake(c, sem, 1)
				half := region + mem.Addr(4*(rank-1)*halfWords)
				for j := 0; j < p.LoadsPer; j++ {
					c.LoadStride(half + mem.Addr(4*j*c.Threads))
				}
				semGive(c, sem, 1)
			}
		}
	}

	return workload.Workload{
		Name:     name,
		Input:    fmt.Sprintf("3 TBs/CU, %d iters/TB/kernel, readers %d Ld/thr/iter, writers %d St/thr/iter", p.Iters, p.LoadsPer, 2*p.LoadsPer),
		Category: devCategory(p.Devices, workload.LocalSync),
		Host: func(h workload.Host) {
			for cu := 0; cu < workers; cu++ {
				for i := 0; i <= regionWords; i++ {
					h.Write(regions[cu]+mem.Addr(4*i), uint32(1000+i))
				}
				h.Write(sems[cu], readers)
			}
			h.Launch(kernel, 3*workers, p.Threads)
		},
		Verify: func(h workload.Host) error {
			// After I shifts, word j = init[max(0, j-I)]; init[j] = 1000+j.
			for cu := 0; cu < workers; cu++ {
				for j := 0; j <= regionWords; j++ {
					src := j - p.Iters
					if src < 0 {
						src = 0
					}
					want := uint32(1000 + src)
					if got := h.Read(regions[cu] + mem.Addr(4*j)); got != want {
						return fmt.Errorf("%s CU %d word %d = %d, want %d", name, cu, j, got, want)
					}
				}
				if got := h.Read(sems[cu]); got != readers {
					return fmt.Errorf("%s CU %d semaphore = %d, want %d", name, cu, got, readers)
				}
			}
			return nil
		},
	}
}

func init() {
	workload.Register(Semaphore(SemParams{Backoff: false}))
	workload.Register(Semaphore(SemParams{Backoff: true}))
}
