package syncbench

import (
	"testing"

	"denovogpu/internal/machine"
	"denovogpu/internal/workload"
)

// runScaled runs a scaled-down workload under every paper configuration
// and verifies functional correctness.
func runScaled(t *testing.T, w workload.Workload) {
	t.Helper()
	for _, cfg := range machine.AllConfigs() {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			m := machine.New(cfg)
			w.Host(m)
			if err := m.Err(); err != nil {
				t.Fatalf("%s under %s: %v", w.Name, cfg.Name(), err)
			}
			if err := w.Verify(m); err != nil {
				t.Fatalf("%s under %s: %v", w.Name, cfg.Name(), err)
			}
		})
	}
}

func TestMutexesScaledAllConfigs(t *testing.T) {
	for _, kind := range []MutexKind{FAMutex, SleepMutex, SpinMutex, SpinMutexBackoff} {
		for _, local := range []bool{false, true} {
			w := Mutex(MutexParams{Kind: kind, Local: local, Iters: 5, Accesses: 4})
			t.Run(w.Name, func(t *testing.T) { runScaled(t, w) })
		}
	}
}

func TestSemaphoreScaledAllConfigs(t *testing.T) {
	for _, backoff := range []bool{false, true} {
		w := Semaphore(SemParams{Backoff: backoff, Iters: 6, LoadsPer: 4})
		t.Run(w.Name, func(t *testing.T) { runScaled(t, w) })
	}
}

func TestTreeBarrierScaledAllConfigs(t *testing.T) {
	for _, lex := range []bool{false, true} {
		w := TreeBarrier(BarrierParams{LocalExchange: lex, Iters: 4, Accesses: 3})
		t.Run(w.Name, func(t *testing.T) { runScaled(t, w) })
	}
}

func TestUTSScaledAllConfigs(t *testing.T) {
	w := UTS(UTSParams{RootChildren: 48})
	runScaled(t, w)
}

func TestUTSTreeSizeNearTable4(t *testing.T) {
	total := utsCountNodes(768, 1_000_000)
	t.Logf("UTS default tree: %d nodes", total)
	if total < 8_000 || total > 32_000 {
		t.Fatalf("default UTS tree has %d nodes; Table 4 calls for ~16K", total)
	}
}

func TestUTSTreeDeterministic(t *testing.T) {
	if utsCountNodes(100, 1_000_000) != utsCountNodes(100, 1_000_000) {
		t.Fatal("tree generation not deterministic")
	}
}

func TestRegistryHasAllTable4SyncBenchmarks(t *testing.T) {
	want := []string{
		"FAM_G", "SLM_G", "SPM_G", "SPMBO_G",
		"FAM_L", "SLM_L", "SPM_L", "SPMBO_L",
		"SS_L", "SSBO_L", "TB_LG", "TBEX_LG", "UTS",
	}
	for _, name := range want {
		if _, err := workload.Get(name); err != nil {
			t.Errorf("missing benchmark: %v", err)
		}
	}
	if got := len(workload.ByCategory(workload.GlobalSync)); got != 4 {
		t.Errorf("global-sync benchmarks = %d, want 4", got)
	}
	if got := len(workload.ByCategory(workload.LocalSync)); got != 9 {
		t.Errorf("local-sync benchmarks = %d, want 9", got)
	}
}
