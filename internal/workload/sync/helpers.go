// Package syncbench implements the fine-grained synchronization
// microbenchmarks of the paper's Table 4: fetch-and-add, sleep, and
// spin mutexes (with and without backoff) in globally and locally
// scoped variants, reader-writer spin semaphores, two-level tree
// barriers, and the Unbalanced Tree Search benchmark.
//
// All follow the paper's parameters: 3 thread blocks per CU, 100
// iterations per thread block per kernel, 10 loads & stores per thread
// per iteration (readers 10 loads, writers 20 stores for the
// semaphores). Scope annotations ("_L" variants) matter only under the
// HRF configurations; under DRF they are ignored.
package syncbench

import (
	"fmt"

	"denovogpu/internal/coherence"
	"denovogpu/internal/mem"
	"denovogpu/internal/workload"
)

// Paper defaults (Table 4).
const (
	DefaultTBsPerCU = 3
	DefaultIters    = 100
	DefaultAccesses = 10
	DefaultThreads  = 32
)

// devSuffix names a multi-device variant ("x2"), mirroring
// machine.Config.Name: the empty suffix is the paper's single-device
// benchmark.
func devSuffix(devices int) string {
	if devices > 1 {
		return fmt.Sprintf("x%d", devices)
	}
	return ""
}

// devCategory demotes a multi-device variant out of its Table 4
// figure group: the paper's figures hold only single-device runs.
func devCategory(devices int, single workload.Category) workload.Category {
	if devices > 1 {
		return workload.MultiDev
	}
	return single
}

// Layout carves the address space for a benchmark. Regions are line
// aligned and spaced so unrelated variables never share a line.
type layout struct{ next mem.Addr }

func newLayout() *layout { return &layout{next: 0x10_0000} }

// line reserves one fresh cache line and returns its first word.
func (l *layout) line() mem.Addr {
	a := l.next
	l.next += mem.LineBytes
	return a
}

// words reserves n words, line aligned at the start.
func (l *layout) words(n int) mem.Addr {
	a := l.next
	bytes := mem.Addr((n*mem.WordBytes + mem.LineBytes - 1) / mem.LineBytes * mem.LineBytes)
	l.next += bytes
	return a
}

// spinWait models the in-loop instruction overhead of a spin retry
// (loop condition, branch), with optional exponential backoff.
type spinWait struct {
	backoff bool
	delay   int
}

func newSpinWait(backoff bool) *spinWait { return &spinWait{backoff: backoff, delay: 8} }

func (s *spinWait) wait(c *workload.Ctx) {
	// A couple of loop instructions, then idle until the retry.
	c.Compute(2)
	c.Wait(s.delay)
	if s.backoff {
		s.delay = min(s.delay*2, 512)
	}
}

func (s *spinWait) reset() { s.delay = 8 }

// spinLock acquires a test-and-set mutex with a CAS loop.
func spinLock(c *workload.Ctx, lock mem.Addr, scope coherence.Scope, backoff bool) {
	s := newSpinWait(backoff)
	for c.AtomicCAS(lock, 0, 1, scope) != 0 {
		s.wait(c)
	}
}

// spinUnlock releases a test-and-set mutex with a release store.
func spinUnlock(c *workload.Ctx, lock mem.Addr, scope coherence.Scope) {
	c.AtomicStore(lock, 0, scope)
}

// sleepLock is the sleep mutex: failed attempts sleep for a fixed
// quantum rather than re-trying hot.
func sleepLock(c *workload.Ctx, lock mem.Addr, scope coherence.Scope) {
	for c.AtomicCAS(lock, 0, 1, scope) != 0 {
		c.Wait(200) // sleep quantum
	}
}

// faLock acquires a ticket (fetch-and-add) mutex; faUnlock passes the
// turn.
func faLock(c *workload.Ctx, ticket, turn mem.Addr, scope coherence.Scope, backoff bool) {
	my := c.AtomicAdd(ticket, 1, scope)
	s := newSpinWait(backoff)
	for c.AtomicLoad(turn, scope) != my {
		s.wait(c)
	}
}

func faUnlock(c *workload.Ctx, turn mem.Addr, scope coherence.Scope) {
	c.AtomicAdd(turn, 1, scope)
}

// criticalSection performs the paper's per-iteration data accesses:
// `accesses` loads and stores per thread, coalesced (thread t touches
// data[j*threads + t]), incrementing each word so verification can
// count critical sections exactly.
func criticalSection(c *workload.Ctx, data mem.Addr, accesses int) {
	for j := 0; j < accesses; j++ {
		base := data + mem.Addr(4*j*c.Threads)
		v := c.LoadStride(base)
		for i := range v {
			v[i]++
		}
		c.StoreStride(base, v)
	}
}

// expectData verifies that every word of a criticalSection region was
// incremented exactly n times.
func expectData(h workload.Host, data mem.Addr, words int, n uint32, what string) error {
	for i := 0; i < words; i++ {
		if got := h.Read(data + mem.Addr(4*i)); got != n {
			return fmt.Errorf("%s word %d = %d, want %d", what, i, got, n)
		}
	}
	return nil
}
