package syncbench

import (
	"fmt"

	"denovogpu/internal/coherence"
	"denovogpu/internal/mem"
	"denovogpu/internal/workload"
)

// UTS is the Unbalanced Tree Search benchmark (the one fine-grained
// synchronization benchmark in the HRF paper): thread blocks traverse
// an implicit, highly unbalanced tree. Each CU keeps a work stack
// guarded by a locally scoped lock; when a CU's stack overflows or
// runs dry, blocks push to / pull from a global task queue guarded by
// a globally scoped lock — the dynamic sharing pattern that scoped
// protocols handle poorly (Table 2's "Dynamic Sharing" row).
//
// The tree is implicit and deterministic: a node's child count is a
// hash of its key, so the host computes the exact node total for
// verification and the device needs no tree storage.

// utsHash is a xorshift-style mixer (splitmix32 finalizer).
func utsHash(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

// utsChildCount returns the number of children of the node with the
// given key: slightly subcritical branching (E ≈ 0.95) so the tree is
// finite but deep and unbalanced.
func utsChildCount(key uint32) int {
	r := utsHash(key) % 100
	switch {
	case r < 10:
		return 4
	case r < 30:
		return 2
	case r < 45:
		return 1
	default:
		return 0
	}
}

// utsChildKey derives child i's key.
func utsChildKey(key uint32, i int) uint32 {
	return utsHash(key*2654435761 + uint32(i) + 0x9e3779b9)
}

// utsCountNodes walks the tree on the host, returning the total node
// count (and guarding against runaway trees).
func utsCountNodes(rootChildren int, limit int) int {
	stack := make([]uint32, 0, 1024)
	for i := 0; i < rootChildren; i++ {
		stack = append(stack, utsChildKey(1, i))
	}
	count := 1 // root
	for len(stack) > 0 {
		k := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		if count > limit {
			panic(fmt.Sprintf("syncbench: UTS tree exceeded %d nodes; retune branching", limit))
		}
		for i := 0; i < utsChildCount(k); i++ {
			stack = append(stack, utsChildKey(k, i))
		}
	}
	return count
}

// UTSParams configures the benchmark.
type UTSParams struct {
	RootChildren int // fan-out of the root; total ≈ 20x this
	NumCUs       int // CUs per device
	Devices      int // devices; the global queue is shared across all
	TBsPerCU     int
	Threads      int
	Batch        int // nodes claimed per stack visit
	NodeWork     int // compute cycles per node
	LocalCap     int // per-CU stack capacity (keys)
}

func (p UTSParams) defaults() UTSParams {
	if p.RootChildren == 0 {
		p.RootChildren = 768 // total ≈ 16K nodes (Table 4)
	}
	if p.NumCUs == 0 {
		p.NumCUs = 15
	}
	if p.Devices == 0 {
		p.Devices = 1
	}
	if p.TBsPerCU == 0 {
		p.TBsPerCU = DefaultTBsPerCU
	}
	if p.Threads == 0 {
		p.Threads = DefaultThreads
	}
	if p.Batch == 0 {
		p.Batch = 8
	}
	if p.NodeWork == 0 {
		p.NodeWork = 40
	}
	if p.LocalCap == 0 {
		// Small enough that deep subtrees overflow to the global queue,
		// redistributing work (the paper's load-imbalance mitigation).
		p.LocalCap = 96
	}
	return p
}

// UTS builds the benchmark.
func UTS(p UTSParams) workload.Workload {
	p = p.defaults()
	total := utsCountNodes(p.RootChildren, 1_000_000)
	workers := p.Devices * p.NumCUs
	name := "UTS" + devSuffix(p.Devices)

	lay := newLayout()
	pending := lay.line() // count of unprocessed nodes in the system
	glock := lay.line()
	gtop := lay.line()
	gstack := lay.words(256 * 1024)
	llocks := make([]mem.Addr, workers)
	ltops := make([]mem.Addr, workers)
	lstacks := make([]mem.Addr, workers)
	lprocessed := make([]mem.Addr, workers)
	for i := range llocks {
		llocks[i] = lay.line()
		ltops[i] = lay.line()
		lstacks[i] = lay.words(p.LocalCap)
		lprocessed[i] = lay.line()
	}

	kernel := func(c *workload.Ctx) {
		cu := c.CU
		llock, ltop, lstack := llocks[cu], ltops[cu], lstacks[cu]
		processed := 0
		delta := int32(0)
		flush := func() {
			if delta != 0 {
				c.AtomicAdd(pending, uint32(delta), coherence.ScopeGlobal)
				delta = 0
			}
		}
		// popLocal claims up to Batch keys from the CU stack.
		popLocal := func() []uint32 {
			spinLock(c, llock, coherence.ScopeLocal, true)
			top := int(c.Load(ltop))
			n := min(p.Batch, top)
			keys := make([]uint32, 0, n)
			for i := 0; i < n; i++ {
				keys = append(keys, c.Load(lstack+mem.Addr(4*(top-1-i))))
			}
			if n > 0 {
				c.Store(ltop, uint32(top-n))
			}
			spinUnlock(c, llock, coherence.ScopeLocal)
			return keys
		}
		// pushKeys places keys on the CU stack, spilling to the global
		// queue when the local stack is full.
		pushKeys := func(keys []uint32) {
			spinLock(c, llock, coherence.ScopeLocal, true)
			top := int(c.Load(ltop))
			fit := min(len(keys), p.LocalCap-top)
			for i := 0; i < fit; i++ {
				c.Store(lstack+mem.Addr(4*(top+i)), keys[i])
			}
			if fit > 0 {
				c.Store(ltop, uint32(top+fit))
			}
			spinUnlock(c, llock, coherence.ScopeLocal)
			if rest := keys[fit:]; len(rest) > 0 {
				spinLock(c, glock, coherence.ScopeGlobal, true)
				g := int(c.Load(gtop))
				for i, k := range rest {
					c.Store(gstack+mem.Addr(4*(g+i)), k)
				}
				c.Store(gtop, uint32(g+len(rest)))
				spinUnlock(c, glock, coherence.ScopeGlobal)
			}
		}
		popGlobal := func() []uint32 {
			spinLock(c, glock, coherence.ScopeGlobal, true)
			top := int(c.Load(gtop))
			n := min(p.Batch, top)
			keys := make([]uint32, 0, n)
			for i := 0; i < n; i++ {
				keys = append(keys, c.Load(gstack+mem.Addr(4*(top-1-i))))
			}
			if n > 0 {
				c.Store(gtop, uint32(top-n))
			}
			spinUnlock(c, glock, coherence.ScopeGlobal)
			return keys
		}

		for {
			keys := popLocal()
			if len(keys) == 0 {
				keys = popGlobal()
			}
			if len(keys) == 0 {
				flush()
				if c.AtomicLoad(pending, coherence.ScopeGlobal) == 0 {
					break
				}
				c.Wait(100)
				continue
			}
			var children []uint32
			for _, k := range keys {
				c.Compute(p.NodeWork)
				n := utsChildCount(k)
				for i := 0; i < n; i++ {
					children = append(children, utsChildKey(k, i))
				}
				delta += int32(n) - 1
				processed++
			}
			if len(children) > 0 {
				pushKeys(children)
			}
			flush()
		}
		// Record this block's work under the CU lock.
		spinLock(c, llock, coherence.ScopeLocal, true)
		c.Store(lprocessed[cu], c.Load(lprocessed[cu])+uint32(processed))
		spinUnlock(c, llock, coherence.ScopeLocal)
	}

	return workload.Workload{
		Name:     name,
		Input:    fmt.Sprintf("%d nodes", total),
		Category: devCategory(p.Devices, workload.LocalSync),
		Host: func(h workload.Host) {
			// Seed: the root's children go to the global queue; the root
			// itself counts as processed by the host.
			for i := 0; i < p.RootChildren; i++ {
				h.Write(gstack+mem.Addr(4*i), utsChildKey(1, i))
			}
			h.Write(gtop, uint32(p.RootChildren))
			h.Write(pending, uint32(p.RootChildren))
			h.Launch(kernel, p.TBsPerCU*workers, p.Threads)
		},
		Verify: func(h workload.Host) error {
			sum := 1 // root, processed by the host at seed time
			for cu := 0; cu < workers; cu++ {
				sum += int(h.Read(lprocessed[cu]))
			}
			if sum != total {
				return fmt.Errorf(name+" processed %d nodes, want %d", sum, total)
			}
			if got := h.Read(pending); got != 0 {
				return fmt.Errorf(name+" pending = %d at end, want 0", got)
			}
			if got := h.Read(gtop); got != 0 {
				return fmt.Errorf(name+" global queue has %d leftovers", got)
			}
			return nil
		},
	}
}

func init() {
	workload.Register(UTS(UTSParams{}))
}
