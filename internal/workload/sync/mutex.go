package syncbench

import (
	"fmt"

	"denovogpu/internal/coherence"
	"denovogpu/internal/mem"
	"denovogpu/internal/workload"
)

// MutexKind selects the mutex algorithm (Stuart & Owens).
type MutexKind int

const (
	// FAMutex is the fetch-and-add (ticket) mutex.
	FAMutex MutexKind = iota
	// SleepMutex sleeps a fixed quantum between attempts.
	SleepMutex
	// SpinMutex is a hot CAS test-and-set loop.
	SpinMutex
	// SpinMutexBackoff adds exponential backoff.
	SpinMutexBackoff
)

func (k MutexKind) prefix() string {
	switch k {
	case FAMutex:
		return "FAM"
	case SleepMutex:
		return "SLM"
	case SpinMutex:
		return "SPM"
	default:
		return "SPMBO"
	}
}

// MutexParams configures a mutex microbenchmark instance.
type MutexParams struct {
	Kind     MutexKind
	Local    bool // per-CU lock and data (locally scoped) vs one global lock and shared data
	TBsPerCU int
	Iters    int
	Accesses int // loads & stores per thread per iteration
	Threads  int
	NumCUs   int // CUs per device
	Devices  int // devices; the grid spans Devices*NumCUs workers
}

func (p MutexParams) defaults() MutexParams {
	if p.TBsPerCU == 0 {
		p.TBsPerCU = DefaultTBsPerCU
	}
	if p.Iters == 0 {
		p.Iters = DefaultIters
	}
	if p.Accesses == 0 {
		p.Accesses = DefaultAccesses
	}
	if p.Threads == 0 {
		p.Threads = DefaultThreads
	}
	if p.NumCUs == 0 {
		p.NumCUs = 15
	}
	if p.Devices == 0 {
		p.Devices = 1
	}
	return p
}

// Mutex builds a mutex microbenchmark workload. The global variant
// guards one shared data region with one lock; the local variant gives
// each CU its own lock and unique data and annotates the lock accesses
// with local scope. With Devices > 1 the grid spans every device's
// CUs: the global variants contend for one lock across the
// inter-device link, the local variants stay device-resident.
func Mutex(p MutexParams) workload.Workload {
	p = p.defaults()
	suffix := "_G"
	if p.Local {
		suffix = "_L"
	}
	name := p.Kind.prefix() + suffix + devSuffix(p.Devices)
	workers := p.Devices * p.NumCUs

	lay := newLayout()
	regionWords := p.Accesses * p.Threads
	nLocks := 1
	if p.Local {
		nLocks = workers
	}
	locks := make([]mem.Addr, nLocks)   // CAS lock or FAM ticket
	turns := make([]mem.Addr, nLocks)   // FAM turn counter
	regions := make([]mem.Addr, nLocks) // data guarded by each lock
	for i := range locks {
		locks[i] = lay.line()
		turns[i] = lay.line()
		regions[i] = lay.words(regionWords)
	}
	scope := coherence.ScopeGlobal
	if p.Local {
		scope = coherence.ScopeLocal
	}

	kernel := func(c *workload.Ctx) {
		idx := 0
		if p.Local {
			idx = c.CU
		}
		lock, turn, data := locks[idx], turns[idx], regions[idx]
		for it := 0; it < p.Iters; it++ {
			switch p.Kind {
			case FAMutex:
				faLock(c, lock, turn, scope, false)
			case SleepMutex:
				sleepLock(c, lock, scope)
			case SpinMutex:
				spinLock(c, lock, scope, false)
			case SpinMutexBackoff:
				spinLock(c, lock, scope, true)
			}
			criticalSection(c, data, p.Accesses)
			switch p.Kind {
			case FAMutex:
				faUnlock(c, turn, scope)
			default:
				spinUnlock(c, lock, scope)
			}
		}
	}

	numTBs := p.TBsPerCU * workers
	return workload.Workload{
		Name:  name,
		Input: fmt.Sprintf("%d TBs/CU, %d iters/TB/kernel, %d Ld&St/thr/iter", p.TBsPerCU, p.Iters, p.Accesses),
		Category: func() workload.Category {
			if p.Local {
				return devCategory(p.Devices, workload.LocalSync)
			}
			return devCategory(p.Devices, workload.GlobalSync)
		}(),
		Host: func(h workload.Host) {
			h.Launch(kernel, numTBs, p.Threads)
		},
		Verify: func(h workload.Host) error {
			if p.Local {
				per := uint32(p.TBsPerCU * p.Iters)
				for cu := 0; cu < workers; cu++ {
					if err := expectData(h, regions[cu], regionWords, per, fmt.Sprintf("%s CU %d", name, cu)); err != nil {
						return err
					}
				}
				return nil
			}
			total := uint32(numTBs * p.Iters)
			return expectData(h, regions[0], regionWords, total, name)
		},
	}
}

func init() {
	for _, kind := range []MutexKind{FAMutex, SleepMutex, SpinMutex, SpinMutexBackoff} {
		for _, local := range []bool{false, true} {
			workload.Register(Mutex(MutexParams{Kind: kind, Local: local}))
		}
	}
}
