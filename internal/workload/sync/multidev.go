package syncbench

import "denovogpu/internal/workload"

// The 2-device ports of the Stuart-Owens suite and UTS (category
// multi-device; run them on a 2-device machine, Config.Devices = 2).
// Each is the paper benchmark with the grid spanning both devices'
// CUs: the globally synchronizing variants (the "_G" mutexes, the tree
// barriers' global level, UTS's shared queue) push their
// synchronization across the inter-device link, while the locally
// scoped work stays device-resident — the contrast behind the
// device-local vs cross-device sync cost cliff in EXPERIMENTS.md.
func init() {
	for _, kind := range []MutexKind{FAMutex, SleepMutex, SpinMutex, SpinMutexBackoff} {
		for _, local := range []bool{false, true} {
			workload.Register(Mutex(MutexParams{Kind: kind, Local: local, Devices: 2}))
		}
	}
	workload.Register(Semaphore(SemParams{Backoff: false, Devices: 2}))
	workload.Register(Semaphore(SemParams{Backoff: true, Devices: 2}))
	workload.Register(TreeBarrier(BarrierParams{LocalExchange: false, Devices: 2}))
	workload.Register(TreeBarrier(BarrierParams{LocalExchange: true, Devices: 2}))
	workload.Register(UTS(UTSParams{Devices: 2}))
}
