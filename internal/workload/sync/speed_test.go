package syncbench

import (
	"testing"
	"time"

	"denovogpu/internal/machine"
	"denovogpu/internal/workload"
)

// TestFullSizeMutexSpeed runs one paper-size benchmark under the two
// extreme configs and logs wall time and simulated cycles, guarding
// against pathological slowdowns.
func TestFullSizeMutexSpeed(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size run")
	}
	for _, cfg := range []machine.Config{machine.GD(), machine.DD()} {
		w, err := workload.Get("SPM_G")
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		m := machine.New(cfg)
		w.Host(m)
		if err := m.Err(); err != nil {
			t.Fatalf("%s: %v", cfg.Name(), err)
		}
		if err := w.Verify(m); err != nil {
			t.Fatalf("%s: %v", cfg.Name(), err)
		}
		t.Logf("%s: %d cycles, %d flits, %.2fs wall, %d events",
			cfg.Name(), m.Stats().Cycles, m.Stats().TotalFlits(), time.Since(start).Seconds(), 0)
	}
}
