// Package cli holds the exit-code contract shared by the repository's
// commands (sweep, bench, sweepd): flag and usage errors exit 2 (the
// flag package's own convention), a simulation matrix cell failing
// exits 3 with one machine-readable JSON line on stderr, and anything
// else non-zero exits 1. CI and scripts branch on the distinction —
// "the tool was invoked wrong" (fix the invocation) vs "a simulation
// failed" (a correctness bug; parse the line) vs "environmental
// trouble".
package cli

import (
	"encoding/json"
	"fmt"
	"io"
)

const (
	// ExitFailure is the general-error exit code (I/O trouble,
	// unreachable servers, regressions).
	ExitFailure = 1
	// ExitUsage is the flag/usage-error exit code.
	ExitUsage = 2
	// ExitCellFailure is the matrix-cell-failure exit code: at least
	// one simulation cell errored. A CellFailure line precedes it on
	// stderr.
	ExitCellFailure = 3
)

// CellFailure is the machine-readable stderr record emitted before an
// ExitCellFailure exit. Error is the constant tag "matrix_cell_failure"
// so log scrapers can find the line without knowing which command
// produced it; Cell is the cell's matrix index when the caller has one,
// -1 otherwise.
type CellFailure struct {
	Error    string `json:"error"`
	Workload string `json:"workload,omitempty"`
	Config   string `json:"config,omitempty"`
	Cell     int    `json:"cell"`
	Message  string `json:"message"`
}

// EmitCellFailure writes the one-line JSON record for a failed cell to
// w and returns ExitCellFailure for the caller to exit with.
func EmitCellFailure(w io.Writer, workload, config string, cell int, message string) int {
	line, err := json.Marshal(CellFailure{
		Error:    "matrix_cell_failure",
		Workload: workload,
		Config:   config,
		Cell:     cell,
		Message:  message,
	})
	if err != nil {
		// A string field cannot fail to marshal; belt and braces.
		fmt.Fprintf(w, `{"error":"matrix_cell_failure","cell":%d}`+"\n", cell)
		return ExitCellFailure
	}
	fmt.Fprintf(w, "%s\n", line)
	return ExitCellFailure
}
