package litmus

import (
	"testing"

	"denovogpu/internal/coherence"
	"denovogpu/internal/machine"
	"denovogpu/internal/mem"
	"denovogpu/internal/workload"
)

// These stress shapes complement the oracle-checked catalog: they use
// spin loops and op counts far beyond what outcome enumeration can
// handle, so they assert a functional postcondition instead of
// consulting the oracle. (The bounded equivalents of these shapes —
// MP, ISA2 — are in the catalog.)

// TestHRFIndirectTransitivity checks the defining property of
// HRF-Indirect (the HRF variant the paper uses): synchronization
// composes transitively across scopes. Block A writes data and
// local-releases to sibling B (same CU); B global-releases to C
// (another CU); C must observe A's write even though A and C never
// synchronized directly. The catalog's ISA2 entry checks the same
// property at oracle scale; this version runs it with spin loops on a
// full 45-block grid.
func TestHRFIndirectTransitivity(t *testing.T) {
	var (
		data  = mem.Addr(0x1000)
		lflag = mem.Addr(0x2000) // local flag, one per CU (only CU 0 used)
		gflag = mem.Addr(0x3000) // global flag
		out   = mem.Addr(0x4000)
	)
	// Blocks 0 and 15 land on CU 0 (45-block grid, first launch); block
	// 1 lands on CU 1.
	kernel := func(c *workload.Ctx) {
		switch c.TB {
		case 0: // A, on CU 0
			c.Store(data, 77)
			c.AtomicStore(lflag, 1, coherence.ScopeLocal)
		case 15: // B, also on CU 0
			for c.AtomicLoad(lflag, coherence.ScopeLocal) == 0 {
				c.Compute(15)
			}
			c.AtomicStore(gflag, 1, coherence.ScopeGlobal)
		case 1: // C, on CU 1
			for c.AtomicLoad(gflag, coherence.ScopeGlobal) == 0 {
				c.Compute(15)
			}
			c.Store(out, c.Load(data))
		}
	}
	for _, cfg := range Configs() {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			m := machine.New(cfg)
			m.Launch(kernel, 45, 32)
			if err := m.Err(); err != nil {
				t.Fatal(err)
			}
			if got := m.Read(out); got != 77 {
				t.Fatalf("C read %d, want 77 — transitive synchronization broken", got)
			}
		})
	}
}

// TestReleaseOrdersAllPriorWrites: a release must publish *every*
// program-order-earlier write, including writes to many distinct lines
// that stress buffer drain, under contention from other blocks.
func TestReleaseOrdersAllPriorWrites(t *testing.T) {
	const words = 80
	var (
		data = mem.Addr(0x1000)
		flag = mem.Addr(0x8000)
		sink = mem.Addr(0x9000)
	)
	kernel := func(c *workload.Ctx) {
		if c.TB == 0 {
			for i := 0; i < words; i++ {
				// Strided across lines to defeat coalescing.
				c.Store(data+mem.Addr(4*i*mem.WordsPerLine), uint32(i+1))
			}
			c.AtomicStore(flag, 1, coherence.ScopeGlobal)
			return
		}
		for c.AtomicLoad(flag, coherence.ScopeGlobal) == 0 {
			c.Compute(11)
		}
		var sum uint32
		for i := 0; i < words; i++ {
			sum += c.Load(data + mem.Addr(4*i*mem.WordsPerLine))
		}
		c.Store(sink+mem.Addr(4*c.TB), sum)
	}
	want := uint32(words * (words + 1) / 2)
	for _, cfg := range Configs() {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			m := machine.New(cfg)
			m.Launch(kernel, 8, 32)
			if err := m.Err(); err != nil {
				t.Fatal(err)
			}
			for tb := 1; tb < 8; tb++ {
				if got := m.Read(sink + mem.Addr(4*tb)); got != want {
					t.Fatalf("TB %d sum %d, want %d — release published partial writes", tb, got, want)
				}
			}
		})
	}
}

// TestAcquireCascade: values handed through a chain of flags across
// every CU; each link is release-acquire, so the final reader must see
// the accumulated sum (a 15-hop message-passing chain).
func TestAcquireCascade(t *testing.T) {
	var (
		vals  = mem.Addr(0x1000)
		flags = mem.Addr(0x8000)
	)
	const n = 15
	kernel := func(c *workload.Ctx) {
		i := c.TB
		if i >= n {
			return
		}
		if i > 0 {
			for c.AtomicLoad(flags+mem.Addr(64*(i-1)), coherence.ScopeGlobal) == 0 {
				c.Compute(13)
			}
		}
		prev := uint32(0)
		if i > 0 {
			prev = c.Load(vals + mem.Addr(64*(i-1)))
		}
		c.Store(vals+mem.Addr(64*i), prev+uint32(i+1))
		c.AtomicStore(flags+mem.Addr(64*i), 1, coherence.ScopeGlobal)
	}
	for _, cfg := range Configs() {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			m := machine.New(cfg)
			m.Launch(kernel, n, 32)
			if err := m.Err(); err != nil {
				t.Fatal(err)
			}
			want := uint32(n * (n + 1) / 2)
			if got := m.Read(vals + mem.Addr(64*(n-1))); got != want {
				t.Fatalf("chain sum %d, want %d", got, want)
			}
		})
	}
}
