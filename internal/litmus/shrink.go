package litmus

import "denovogpu/internal/machine"

// Shrink reduces a violating (program, schedule) pair to a locally
// minimal counterexample: it greedily tries to delete operations,
// delete whole threads, drop unread variables, and zero schedule
// delays, keeping a candidate only if the reduced program still
// violates the oracle under the same configuration. The result is the
// smallest case the greedy loop converges to — every remaining
// operation is necessary (removing any single one makes the violation
// disappear), which is what makes shrunk counterexamples readable bug
// reports.
//
// stillViolates re-runs the machine, so shrinking a flaky (schedule-
// sensitive) violation can converge on a superset of the true minimum;
// the schedule that exposed the violation is preserved (minus delays
// proven unnecessary), keeping reproduction deterministic.
func Shrink(cfg machine.Config, p *Program, sched Schedule) (*Program, Schedule) {
	cur, cs := p.Clone(), sched.Clone()
	for {
		reduced := false

		// Try deleting each op (iterating backwards keeps indices valid
		// across deletions within a thread).
		for ti := len(cur.Threads) - 1; ti >= 0; ti-- {
			for oi := len(cur.Threads[ti].Ops) - 1; oi >= 0; oi-- {
				cand, cands := cur.Clone(), cs.Clone()
				cand.Threads[ti].Ops = append(cand.Threads[ti].Ops[:oi:oi], cand.Threads[ti].Ops[oi+1:]...)
				cands[ti] = append(cands[ti][:oi:oi], cands[ti][oi+1:]...)
				if cand, cands = dropEmpty(cand, cands); stillViolates(cfg, cand, cands) {
					cur, cs = cand, cands
					reduced = true
				}
			}
		}

		// Try deleting each whole thread.
		for ti := len(cur.Threads) - 1; ti >= 0 && len(cur.Threads) > 1; ti-- {
			cand, cands := cur.Clone(), cs.Clone()
			cand.Threads = append(cand.Threads[:ti:ti], cand.Threads[ti+1:]...)
			cands = append(cands[:ti:ti], cands[ti+1:]...)
			if stillViolates(cfg, cand, cands) {
				cur, cs = cand, cands
				reduced = true
			}
		}

		// Try zeroing each nonzero delay.
		for ti := range cs {
			for oi := range cs[ti] {
				if cs[ti][oi] == 0 {
					continue
				}
				cands := cs.Clone()
				cands[ti][oi] = 0
				if stillViolates(cfg, cur, cands) {
					cs = cands
					reduced = true
				}
			}
		}

		if !reduced {
			return cur, cs
		}
	}
}

// dropEmpty removes threads left with no ops (and their schedules).
func dropEmpty(p *Program, s Schedule) (*Program, Schedule) {
	var ts []Thread
	var ss Schedule
	for i, t := range p.Threads {
		if len(t.Ops) == 0 {
			continue
		}
		ts = append(ts, t)
		ss = append(ss, s[i])
	}
	if len(ts) == 0 {
		return p, s // keep at least the original; caller's check will fail it
	}
	p.Threads = ts
	return p, ss
}

// stillViolates reports whether the candidate still produces an outcome
// outside its model's oracle under cfg with the given schedule.
func stillViolates(cfg machine.Config, p *Program, sched Schedule) bool {
	if p.Validate() != nil || len(p.Threads) == 0 {
		return false
	}
	allowed, err := Oracle(p, cfg.Model, 0)
	if err != nil {
		return false
	}
	obs, err := Run(cfg, p, sched)
	if err != nil {
		return false
	}
	_, ok := allowed[obs.Key()]
	return !ok
}
