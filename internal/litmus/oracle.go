package litmus

import (
	"fmt"
	"sort"
	"strings"

	"denovogpu/internal/coherence"
	"denovogpu/internal/consistency"
)

// The oracle is an operational abstract machine that soundly
// over-approximates every configuration implementing a given
// consistency model. Its state is the global memory (the L2/registry
// view) plus one view per CU: a set of per-variable entries that are
// either dirty (a write buffered in the CU — store buffer, dirty L1
// word, or unregistered ownership — not yet globally visible) or clean
// (a cached copy that may be stale). Nondeterministic background
// transitions flush a dirty entry to memory or evict a clean one at any
// time, which covers writethroughs, eager DeNovo registration (a
// registered word is globally readable through the registry, which is
// the same as having been flushed), writebacks, and capacity evictions.
//
// Operation semantics (thread t on CU c, model m):
//
//   - plain load: return c's entry if present, else memory (and cache
//     it clean). A CU always sees its own buffered writes (store-buffer
//     forwarding), so an entry, once present, is what a load returns;
//     staleness arises from eviction and re-fetch, which the background
//     transitions provide.
//   - plain store: set a dirty entry (write coalescing in the buffer).
//   - global sync read (acquire): read memory directly; then drop all
//     of c's clean entries (self-invalidation). Dirty entries survive —
//     they are this CU's own writes.
//   - global sync write (release): enabled only when c has no dirty
//     entries (the release fence: all program-order-earlier writes must
//     be globally visible first); then RMW memory.
//   - global sync RMW: both of the above.
//   - local sync (HRF only): operates on c's view alone — read the
//     entry (or memory on a miss) and leave any written value dirty.
//     No fence, no invalidation: local synchronization orders only the
//     blocks sharing the L1, which is automatic in a shared view.
//
// Under DRF every scope is treated as global (consistency.Model's
// Effective), which is the entire difference between the two models —
// the paper's point, in executable form.
//
// The oracle explores every interleaving of thread steps and background
// transitions from this machine, accumulating the outcomes (recorded
// values + final memory after a terminal flush of all dirty entries,
// which models the kernel-boundary release). An implementation outcome
// outside this set is a consistency violation. The approximation is
// one-directional by design: the oracle may permit outcomes a
// particular configuration never exhibits (e.g. MESI, which is
// stronger), but must permit everything any conforming configuration
// can produce.

// viewEntry is one CU's copy of a variable.
type viewEntry struct {
	val   uint32
	dirty bool
}

// oracleState is one node of the exploration graph.
type oracleState struct {
	mem   []uint32
	views []map[int]viewEntry // indexed by CU slot (dense, per program)
	pcs   []int
	loads [][]uint32
}

func (s *oracleState) clone() *oracleState {
	c := &oracleState{
		mem:   append([]uint32(nil), s.mem...),
		views: make([]map[int]viewEntry, len(s.views)),
		pcs:   append([]int(nil), s.pcs...),
		loads: make([][]uint32, len(s.loads)),
	}
	for i, v := range s.views {
		nv := make(map[int]viewEntry, len(v))
		for k, e := range v {
			nv[k] = e
		}
		c.views[i] = nv
	}
	for i, l := range s.loads {
		c.loads[i] = append([]uint32(nil), l...)
	}
	return c
}

// key canonicalizes the state for memoization.
func (s *oracleState) key() string {
	var b strings.Builder
	for _, v := range s.mem {
		fmt.Fprintf(&b, "%d,", v)
	}
	b.WriteByte('#')
	for _, view := range s.views {
		vars := make([]int, 0, len(view))
		for k := range view {
			vars = append(vars, k)
		}
		sort.Ints(vars)
		for _, k := range vars {
			e := view[k]
			d := 0
			if e.dirty {
				d = 1
			}
			fmt.Fprintf(&b, "%d:%d:%d,", k, e.val, d)
		}
		b.WriteByte(';')
	}
	b.WriteByte('#')
	for _, p := range s.pcs {
		fmt.Fprintf(&b, "%d,", p)
	}
	b.WriteByte('#')
	for _, l := range s.loads {
		for _, v := range l {
			fmt.Fprintf(&b, "%d,", v)
		}
		b.WriteByte(';')
	}
	return b.String()
}

// DefaultOracleStateLimit bounds the oracle's exploration; programs
// exceeding it are rejected (the generator keeps programs far below it).
const DefaultOracleStateLimit = 400_000

// StateLimitError reports that the oracle's exploration hit its state
// limit before the permitted-outcome set was complete. It is a budget
// exhaustion, not a consistency violation: callers that hunt for
// violations (the fuzzer, the model checker) must detect it with
// errors.As and treat the program as unverifiable — an incomplete
// outcome set would otherwise turn every unexplored-but-legal outcome
// into a false alarm.
type StateLimitError struct {
	// Limit is the state budget that was exceeded.
	Limit int
	// Program names the program whose exploration blew up.
	Program string
}

func (e *StateLimitError) Error() string {
	return fmt.Sprintf("litmus: oracle state limit %d exceeded for %q", e.Limit, e.Program)
}

// Oracle enumerates the set of outcomes the given consistency model
// permits for the program, keyed by Outcome.Key. It errors if the
// program is invalid or exploration exceeds stateLimit states
// (stateLimit <= 0 uses DefaultOracleStateLimit).
func Oracle(p *Program, model consistency.Model, stateLimit int) (map[string]Outcome, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if stateLimit <= 0 {
		stateLimit = DefaultOracleStateLimit
	}
	// Dense CU indexing: map program CU ids to view slots.
	cuSlot := make(map[int]int)
	threadCU := make([]int, len(p.Threads))
	for i, t := range p.Threads {
		if _, ok := cuSlot[t.CU]; !ok {
			cuSlot[t.CU] = len(cuSlot)
		}
		threadCU[i] = cuSlot[t.CU]
	}

	init := &oracleState{
		mem:   make([]uint32, len(p.Vars)),
		views: make([]map[int]viewEntry, len(cuSlot)),
		pcs:   make([]int, len(p.Threads)),
		loads: make([][]uint32, len(p.Threads)),
	}
	for i := range init.views {
		init.views[i] = make(map[int]viewEntry)
	}

	outcomes := make(map[string]Outcome)
	visited := make(map[string]bool)
	stack := []*oracleState{init}
	visited[init.key()] = true

	push := func(s *oracleState) error {
		k := s.key()
		if visited[k] {
			return nil
		}
		if len(visited) >= stateLimit {
			return &StateLimitError{Limit: stateLimit, Program: p.Name}
		}
		visited[k] = true
		stack = append(stack, s)
		return nil
	}

	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		done := true
		for ti := range p.Threads {
			if s.pcs[ti] < len(p.Threads[ti].Ops) {
				done = false
			}
		}

		anyDirty := false
		// Background transitions: flush any dirty entry, evict any clean
		// one. (Eviction after all threads finish cannot change the
		// outcome, so it is skipped there.)
		for ci, view := range s.views {
			for vi, e := range view {
				if e.dirty {
					anyDirty = true
					n := s.clone()
					n.mem[vi] = e.val
					n.views[ci][vi] = viewEntry{val: e.val}
					if err := push(n); err != nil {
						return nil, err
					}
				} else if !done {
					n := s.clone()
					delete(n.views[ci], vi)
					if err := push(n); err != nil {
						return nil, err
					}
				}
			}
		}

		if done {
			if !anyDirty {
				o := Outcome{Loads: s.loads, Final: s.mem}
				outcomes[o.Key()] = o
			}
			continue
		}

		// Thread steps.
		for ti, t := range p.Threads {
			pc := s.pcs[ti]
			if pc >= len(t.Ops) {
				continue
			}
			op := t.Ops[pc]
			ci := threadCU[ti]
			scope := model.Effective(op.Scope)

			if op.Kind.IsSync() && scope == coherence.ScopeGlobal &&
				(op.Kind == OpSyncStore || op.Kind == OpSyncAdd) {
				// Release fence: every buffered write of this CU must be
				// globally visible before the sync write performs.
				blocked := false
				for _, e := range s.views[ci] {
					if e.dirty {
						blocked = true
						break
					}
				}
				if blocked {
					continue
				}
			}

			n := s.clone()
			n.pcs[ti]++
			view := n.views[ci]
			record := func(v uint32) { n.loads[ti] = append(n.loads[ti], v) }

			switch {
			case op.Kind == OpLoad:
				if e, ok := view[op.Var]; ok {
					record(e.val)
				} else {
					v := n.mem[op.Var]
					view[op.Var] = viewEntry{val: v}
					record(v)
				}
			case op.Kind == OpStore:
				view[op.Var] = viewEntry{val: op.Val, dirty: true}
			case scope == coherence.ScopeGlobal:
				// Global synchronization acts on memory directly.
				cur := n.mem[op.Var]
				switch op.Kind {
				case OpSyncLoad:
					record(cur)
				case OpSyncStore:
					n.mem[op.Var] = op.Val
				case OpSyncAdd:
					record(cur)
					n.mem[op.Var] = cur + op.Val
				}
				if op.Kind == OpSyncLoad || op.Kind == OpSyncAdd {
					// Acquire: self-invalidate clean entries.
					for vi, e := range view {
						if !e.dirty {
							delete(view, vi)
						}
					}
				}
			default:
				// Local synchronization (HRF): the CU's view only.
				cur, ok := view[op.Var]
				if !ok {
					cur = viewEntry{val: n.mem[op.Var]}
				}
				switch op.Kind {
				case OpSyncLoad:
					record(cur.val)
					if !ok {
						view[op.Var] = cur
					}
				case OpSyncStore:
					view[op.Var] = viewEntry{val: op.Val, dirty: true}
				case OpSyncAdd:
					record(cur.val)
					view[op.Var] = viewEntry{val: cur.val + op.Val, dirty: true}
				}
			}
			if err := push(n); err != nil {
				return nil, err
			}
		}
	}
	return outcomes, nil
}
