package litmus

import (
	"math/rand"
	"testing"

	"denovogpu/internal/coherence"
	"denovogpu/internal/machine"
	"denovogpu/internal/mem"
	"denovogpu/internal/workload"
)

// The tests in this file are the workload-scale complement of the
// litmus fuzzer: random but data-race-free programs whose exact result
// is computable sequentially, so every configuration must match the
// reference bit for bit. Where the fuzzer explores small racy programs
// against the consistency oracle, these explore large well-synchronized
// ones against a functional oracle.

// TestRandomRaceFreePrograms generates random data-race-free programs
// and checks that every configuration produces exactly the sequential
// reference result. Each thread block owns a private region (written
// only by itself), reads shared read-only input, and updates shared
// counters only inside a global lock. Any coherence bug — stale data,
// lost updates, misrouted ownership, broken store-buffer drains —
// shows up as a verification mismatch.
func TestRandomRaceFreePrograms(t *testing.T) {
	const (
		numTBs      = 30
		threads     = 32
		ownWords    = 96
		sharedWords = 8
		steps       = 12
	)
	var (
		ownBase    = mem.Addr(0x100000) // numTBs * ownWords words
		roBase     = mem.Addr(0x200000) // read-only input
		lock       = mem.Addr(0x300000)
		sharedBase = mem.Addr(0x300040)
	)
	ownAddr := func(tb, i int) mem.Addr { return ownBase + mem.Addr(4*(tb*ownWords+i)) }

	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		// Build per-TB operation scripts deterministically from the seed.
		type op struct {
			kind int // 0: own-region rmw, 1: RO-read + own write, 2: locked shared inc, 3: compute
			a, b int
		}
		scripts := make([][]op, numTBs)
		rng := rand.New(rand.NewSource(seed))
		for tb := range scripts {
			for s := 0; s < steps; s++ {
				scripts[tb] = append(scripts[tb], op{
					kind: rng.Intn(4),
					a:    rng.Intn(ownWords - threads),
					b:    rng.Intn(sharedWords),
				})
			}
		}

		// Sequential reference.
		refOwn := make([]uint32, numTBs*ownWords)
		refShared := make([]uint32, sharedWords)
		roVal := func(i int) uint32 { return uint32(i*3 + 1) }
		for tb := 0; tb < numTBs; tb++ {
			for _, o := range scripts[tb] {
				switch o.kind {
				case 0:
					for t := 0; t < threads; t++ {
						refOwn[tb*ownWords+o.a+t] += uint32(o.b + 1)
					}
				case 1:
					for t := 0; t < threads; t++ {
						refOwn[tb*ownWords+o.a+t] += roVal(o.a + t)
					}
				case 2:
					refShared[o.b]++
				}
			}
		}

		kernel := func(c *workload.Ctx) {
			for _, o := range scripts[c.TB] {
				switch o.kind {
				case 0:
					addrs := make([]mem.Addr, threads)
					for t := range addrs {
						addrs[t] = ownAddr(c.TB, o.a+t)
					}
					v := c.LoadV(addrs)
					for t := range v {
						v[t] += uint32(o.b + 1)
					}
					c.StoreV(addrs, v)
				case 1:
					ro := make([]mem.Addr, threads)
					own := make([]mem.Addr, threads)
					for t := range ro {
						ro[t] = roBase + mem.Addr(4*(o.a+t))
						own[t] = ownAddr(c.TB, o.a+t)
					}
					rv := c.LoadV(ro)
					ov := c.LoadV(own)
					for t := range ov {
						ov[t] += rv[t]
					}
					c.StoreV(own, ov)
				case 2:
					for c.AtomicCAS(lock, 0, 1, coherence.ScopeGlobal) != 0 {
						c.Compute(9)
					}
					sa := sharedBase + mem.Addr(4*o.b)
					c.Store(sa, c.Load(sa)+1)
					c.AtomicStore(lock, 0, coherence.ScopeGlobal)
				case 3:
					c.Compute(o.a%17 + 1)
				}
			}
		}

		for _, cfg := range Configs() {
			cfg := cfg
			t.Run(cfg.Name(), func(t *testing.T) {
				m := machine.New(cfg)
				for i := 0; i < ownWords; i++ {
					m.Write(roBase+mem.Addr(4*i), roVal(i))
				}
				m.SetReadOnly(roBase, roBase+mem.Addr(4*ownWords))
				m.Launch(kernel, numTBs, threads)
				if err := m.Err(); err != nil {
					t.Fatal(err)
				}
				for tb := 0; tb < numTBs; tb++ {
					for i := 0; i < ownWords; i++ {
						if got := m.Read(ownAddr(tb, i)); got != refOwn[tb*ownWords+i] {
							t.Fatalf("seed %d: own[%d][%d] = %d, want %d", seed, tb, i, got, refOwn[tb*ownWords+i])
						}
					}
				}
				for i := 0; i < sharedWords; i++ {
					if got := m.Read(sharedBase + mem.Addr(4*i)); got != refShared[i] {
						t.Fatalf("seed %d: shared[%d] = %d, want %d", seed, i, got, refShared[i])
					}
				}
			})
		}
	}
}

// TestRandomProgramsWithLocalScopes adds locally scoped locks guarding
// per-CU shared data, exercising the HRF paths of GH and DH while
// remaining correct under DRF (which ignores the annotation).
func TestRandomProgramsWithLocalScopes(t *testing.T) {
	const (
		threads = 32
		iters   = 6
	)
	lockBase := mem.Addr(0x400000)
	dataBase := mem.Addr(0x500000)

	kernel := func(c *workload.Ctx) {
		lock := lockBase + mem.Addr(64*c.CU)
		data := dataBase + mem.Addr(256*c.CU)
		for i := 0; i < iters; i++ {
			for c.AtomicCAS(lock, 0, 1, coherence.ScopeLocal) != 0 {
				c.Compute(7)
			}
			// Two dependent updates: torn visibility would corrupt them.
			a := c.Load(data)
			c.Store(data, a+1)
			c.Store(data+4, a+1)
			c.AtomicStore(lock, 0, coherence.ScopeLocal)
		}
	}
	for _, cfg := range Configs() {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			m := machine.New(cfg)
			m.Launch(kernel, 45, threads)
			if err := m.Err(); err != nil {
				t.Fatal(err)
			}
			for cu := 0; cu < 15; cu++ {
				data := dataBase + mem.Addr(256*cu)
				want := uint32(3 * iters)
				if got := m.Read(data); got != want {
					t.Fatalf("CU %d counter = %d, want %d", cu, got, want)
				}
				if got := m.Read(data + 4); got != want {
					t.Fatalf("CU %d shadow = %d, want %d (torn critical section)", cu, got, want)
				}
			}
		})
	}
}
