package litmus

import (
	"testing"

	"denovogpu/internal/coherence"
	"denovogpu/internal/machine"
)

// TestLazySyncRegistrationOverwrite pins the counterexample behind the
// model checker's lazy-reg-exclusive invariant, minimized to three
// operations. Under DH with lazy writes, a locally scoped atomic
// leaves a delayed (lazy) store-buffer slot for x. A second thread on
// the same CU then issues a globally scoped synchronization access to
// x, putting a sync registration with waiters in flight — which must
// absorb the delayed slot. If it does not, the first thread's global
// release batches the still-marked slot, overwrites the in-flight
// transaction (losing its waiters) and double-registers the word; the
// second acknowledgment then arrives with no transaction and the
// controller panics.
func TestLazySyncRegistrationOverwrite(t *testing.T) {
	p := &Program{
		Name: "lazy-sync-overwrite",
		Vars: []VarClass{Sync, Sync},
		Threads: []Thread{
			{CU: 0, Ops: []Op{
				{Kind: OpSyncAdd, Var: 0, Val: 1, Scope: coherence.ScopeLocal},
				{Kind: OpSyncStore, Var: 1, Val: 1, Scope: coherence.ScopeGlobal},
			}},
			{CU: 0, Ops: []Op{
				{Kind: OpSyncLoad, Var: 0, Scope: coherence.ScopeGlobal},
			}},
		},
	}
	cfg := machine.DH()
	cfg.LazyWrites = true
	// The overwrite window is the sync registration's round trip
	// (tens of cycles), so sweep fine-grained offsets between the
	// release and the competing sync access.
	var scheds []Schedule
	for e := 150; e <= 450; e += 10 {
		for d := 0; d <= 300; d += 10 {
			scheds = append(scheds, Schedule{{0, d}, {e}})
		}
	}
	v, err := Check([]machine.Config{cfg}, p, scheds)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatal(v)
	}
}
