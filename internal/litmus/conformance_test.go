package litmus

import (
	"flag"
	"testing"

	"denovogpu/internal/consistency"
	"denovogpu/internal/machine"
)

// fuzzBudget is the tier-1 differential fuzzing budget (programs per
// run); each program executes under all five paper configurations plus
// MESI with several schedules.
const (
	fuzzSeed   = 20260805
	fuzzBudget = 220
)

// -fuzzbudget overrides the budget explicitly (CI smoke jobs use a
// small value to keep the fuzzer exercised without paying for the full
// tier-1 budget). It wins over the -short default.
var fuzzBudgetFlag = flag.Int("fuzzbudget", 0, "override the differential fuzzing budget (0 = default)")

// TestCatalogOracleAnnotations cross-checks the catalog's allowed/
// forbidden annotations against the executable oracle: the oracle must
// permit each shape's weak outcome exactly under the models the catalog
// says permit it. This pins down both the catalog and the oracle.
func TestCatalogOracleAnnotations(t *testing.T) {
	for _, e := range Catalog() {
		e := e
		t.Run(e.Program.Name, func(t *testing.T) {
			for _, m := range []consistency.Model{consistency.DRF, consistency.HRF} {
				allowed, err := Oracle(e.Program, m, 0)
				if err != nil {
					t.Fatal(err)
				}
				if len(allowed) == 0 {
					t.Fatalf("%v oracle permits no outcomes", m)
				}
				weakSeen := false
				for _, o := range allowed {
					if e.Weak(o) {
						weakSeen = true
						break
					}
				}
				want := e.AllowedDRF
				if m == consistency.HRF {
					want = e.AllowedHRF
				}
				if weakSeen != want {
					t.Errorf("%v oracle: weak outcome permitted=%v, catalog says %v (%s)", m, weakSeen, want, e.Doc)
				}
			}
		})
	}
}

// TestCatalogConformance runs every catalog program under all five
// paper configurations plus MESI across the schedule set and checks
// that every observed outcome is permitted by the configuration's
// consistency model.
func TestCatalogConformance(t *testing.T) {
	for _, e := range Catalog() {
		e := e
		t.Run(e.Program.Name, func(t *testing.T) {
			t.Parallel()
			scheds := Schedules(e.Program, 7, fuzzSeed)
			v, err := Check(Configs(), e.Program, scheds)
			if err != nil {
				t.Fatal(err)
			}
			if v != nil {
				t.Fatal(v.Error())
			}
		})
	}
}

// TestFuzzConformance is the differential conformance fuzzer: seeded,
// splittable random programs, each executed under all six
// configurations and checked against the oracle. Any violation is
// shrunk to a minimal counterexample and reported as a replayable case.
func TestFuzzConformance(t *testing.T) {
	budget := fuzzBudget
	if testing.Short() {
		budget = 40
	}
	if *fuzzBudgetFlag > 0 {
		budget = *fuzzBudgetFlag
	}
	gp := DefaultGenParams()
	for i := 0; i < budget; i++ {
		p := Generate(fuzzSeed, uint64(i), gp)
		if err := p.Validate(); err != nil {
			t.Fatalf("generator produced invalid program %d: %v", i, err)
		}
		scheds := Schedules(p, 3, fuzzSeed^uint64(i))
		v, err := Check(Configs(), p, scheds)
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		if v != nil {
			sp, ss := Shrink(v.Config, v.Program, v.Schedule)
			c := &Case{Config: v.Config.Name(), Program: sp, Schedule: ss, Observed: &v.Observed}
			js, _ := c.MarshalIndent()
			t.Fatalf("program %d violates the %v oracle under %s:\n%s\nshrunk replayable case:\n%s",
				i, v.Config.Model, v.Config.Name(), v.Error(), js)
		}
	}
}

// TestBrokenAcquireDetectedAndShrunk proves the harness catches real
// consistency bugs: with the test-only fault knob disabling acquire
// invalidation, the catalog (and the fuzzer behind it) must observe an
// oracle violation, and the shrinker must reduce it to a minimal
// counterexample of at most 6 operations.
func TestBrokenAcquireDetectedAndShrunk(t *testing.T) {
	for _, base := range []machine.Config{machine.GD(), machine.DD()} {
		base := base
		t.Run(base.Name(), func(t *testing.T) {
			t.Parallel()
			cfg := base
			cfg.FaultDisableAcquireInval = true
			var found *Violation
			for _, e := range Catalog() {
				scheds := append(Schedules(e.Program, 7, fuzzSeed), staleWindow(e.Program))
				v, err := Check([]machine.Config{cfg}, e.Program, scheds)
				if err != nil {
					t.Fatal(err)
				}
				if v != nil {
					found = v
					break
				}
			}
			if found == nil {
				t.Fatalf("broken acquire invalidation not detected by the catalog under %s", base.Name())
			}
			sp, ss := Shrink(cfg, found.Program, found.Schedule)
			if n := sp.NumOps(); n > 6 {
				t.Fatalf("shrunk counterexample has %d ops, want <= 6:\n%s", n, sp)
			}
			if !stillViolates(cfg, sp, ss) {
				t.Fatalf("shrunk counterexample no longer violates:\n%s", sp)
			}
			// Minimality: removing any single remaining op must make the
			// violation disappear (that is what Shrink converged on).
			for ti := range sp.Threads {
				for oi := range sp.Threads[ti].Ops {
					cand, cands := sp.Clone(), ss.Clone()
					cand.Threads[ti].Ops = append(cand.Threads[ti].Ops[:oi:oi], cand.Threads[ti].Ops[oi+1:]...)
					cands[ti] = append(cands[ti][:oi:oi], cands[ti][oi+1:]...)
					cand, cands = dropEmpty(cand, cands)
					if stillViolates(cfg, cand, cands) {
						t.Fatalf("shrunk counterexample not minimal: removing T%d op %d still violates:\n%s", ti, oi, sp)
					}
				}
			}
			t.Logf("broken acquire shrunk to %d ops under %s:\n%s", sp.NumOps(), base.Name(), sp)
		})
	}
}

// staleWindow opens the classic stale-read window that acquire
// invalidation exists to close: the last thread issues its first op
// (the preload) immediately, the writer threads run shortly after, and
// the reader's remaining ops wait until the writers are long done. The
// generic schedule set usually finds this window on its own for GPU
// coherence (the store buffer hides writes until the release), but
// DeNovo registers writes eagerly, which shrinks the window enough to
// need this targeted shape.
func staleWindow(p *Program) Schedule {
	s := ZeroSchedule(p)
	last := len(s) - 1
	for ti := range s {
		for oi := range s[ti] {
			if ti != last {
				s[ti][oi] = 150
			} else if oi > 0 {
				s[ti][oi] = 900
			}
		}
	}
	return s
}

// TestReplayRoundTrip checks that a case serializes and replays to the
// same observed outcome (the contract behind cmd/litmus -replay).
func TestReplayRoundTrip(t *testing.T) {
	e := Catalog()[0]
	sched := Schedules(e.Program, 2, 1)[1]
	obs, err := Run(machine.DD(), e.Program, sched)
	if err != nil {
		t.Fatal(err)
	}
	c := &Case{Config: "DD", Program: e.Program, Schedule: sched, Observed: &obs}
	js, err := c.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	rc, err := ParseCase(js)
	if err != nil {
		t.Fatal(err)
	}
	obs2, err := Run(machine.DD(), rc.Program, rc.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if obs2.Key() != obs.Key() {
		t.Fatalf("replay diverged: %q vs %q (determinism broken)", obs2.Key(), obs.Key())
	}
}
