// Package litmus is the memory-consistency conformance layer: a small
// litmus-program representation, an executable oracle that enumerates
// the outcomes permitted under the machine's two consistency models
// (DRF-SC and HRF-Indirect), a deterministic randomized program
// generator, a differential runner that executes programs under the
// paper's five configurations (plus MESI) through internal/machine, and
// a shrinker that reduces any violating program to a minimal
// counterexample.
//
// A litmus program is a handful of straight-line threads of memory
// operations over a few variables. Each thread is pinned to a compute
// unit, so programs can exercise the difference between locally and
// globally scoped synchronization (threads on one CU share an L1).
// Variables are typed: a data variable is only ever accessed with plain
// loads and stores, a sync variable only with synchronization accesses
// — the same discipline the DRF and HRF models demand of real programs,
// and the one the paper's benchmarks follow.
package litmus

import (
	"encoding/json"
	"fmt"
	"strings"

	"denovogpu/internal/coherence"
)

// VarClass types a litmus variable.
type VarClass int

const (
	// Data variables are accessed only by plain loads and stores.
	Data VarClass = iota
	// Sync variables are accessed only by synchronization operations.
	Sync
)

func (c VarClass) String() string {
	if c == Sync {
		return "sync"
	}
	return "data"
}

// OpKind is one litmus operation.
type OpKind int

const (
	// OpLoad is a plain data load; it records the loaded value.
	OpLoad OpKind = iota
	// OpStore is a plain data store of Val.
	OpStore
	// OpSyncLoad is a synchronization read (acquire); it records the
	// loaded value.
	OpSyncLoad
	// OpSyncStore is a synchronization write (release) of Val.
	OpSyncStore
	// OpSyncAdd is a fetch-and-add of Val (acquire+release); it records
	// the old value.
	OpSyncAdd
)

func (k OpKind) String() string {
	switch k {
	case OpLoad:
		return "ld"
	case OpStore:
		return "st"
	case OpSyncLoad:
		return "sync.ld"
	case OpSyncStore:
		return "sync.st"
	case OpSyncAdd:
		return "sync.add"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// IsSync reports whether the operation is a synchronization access.
func (k OpKind) IsSync() bool { return k == OpSyncLoad || k == OpSyncStore || k == OpSyncAdd }

// Records reports whether the operation yields a value recorded in the
// program's outcome (a load result or an RMW's old value).
func (k OpKind) Records() bool { return k == OpLoad || k == OpSyncLoad || k == OpSyncAdd }

// Op is one operation of a litmus thread.
type Op struct {
	Kind OpKind
	// Var indexes Program.Vars.
	Var int
	// Val is the stored value (OpStore, OpSyncStore) or addend (OpSyncAdd).
	Val uint32 `json:",omitempty"`
	// Scope annotates synchronization operations. DRF configurations
	// ignore it (treat it as global); HRF configurations honor it.
	Scope coherence.Scope `json:",omitempty"`
}

func (o Op) String() string {
	v := fmt.Sprintf("v%d", o.Var)
	switch o.Kind {
	case OpLoad:
		return fmt.Sprintf("r = %s", v)
	case OpStore:
		return fmt.Sprintf("%s = %d", v, o.Val)
	case OpSyncLoad:
		return fmt.Sprintf("r = acq(%s, %s)", v, o.Scope)
	case OpSyncStore:
		return fmt.Sprintf("rel(%s, %d, %s)", v, o.Val, o.Scope)
	case OpSyncAdd:
		return fmt.Sprintf("r = add(%s, %d, %s)", v, o.Val, o.Scope)
	default:
		return fmt.Sprintf("?%d", int(o.Kind))
	}
}

// Thread is one straight-line litmus thread, pinned to a CU.
type Thread struct {
	// CU is the compute unit the thread runs on; threads with the same
	// CU share an L1 (and an HRF local scope).
	CU  int
	Ops []Op
}

// Program is a complete litmus test. The zero value of every variable
// is 0; stores should use distinct nonzero values so outcomes identify
// which write a read observed.
type Program struct {
	Name    string `json:",omitempty"`
	Vars    []VarClass
	Threads []Thread
}

// NumOps is the total operation count across threads.
func (p *Program) NumOps() int {
	n := 0
	for _, t := range p.Threads {
		n += len(t.Ops)
	}
	return n
}

// MaxSlotPerCU returns, per CU used, how many threads the program pins
// there (the machine must keep that many blocks resident).
func (p *Program) MaxSlotPerCU() map[int]int {
	slots := make(map[int]int)
	for _, t := range p.Threads {
		slots[t.CU]++
	}
	return slots
}

// Validate checks the program's internal consistency: variable indices
// in range, variable classes respected, CU indices non-negative.
func (p *Program) Validate() error {
	if len(p.Threads) == 0 {
		return fmt.Errorf("litmus: program %q has no threads", p.Name)
	}
	for ti, t := range p.Threads {
		if t.CU < 0 {
			return fmt.Errorf("litmus: thread %d has negative CU %d", ti, t.CU)
		}
		for oi, op := range t.Ops {
			if op.Var < 0 || op.Var >= len(p.Vars) {
				return fmt.Errorf("litmus: thread %d op %d: variable v%d out of range", ti, oi, op.Var)
			}
			class := p.Vars[op.Var]
			if op.Kind.IsSync() && class != Sync {
				return fmt.Errorf("litmus: thread %d op %d: %v on data variable v%d", ti, oi, op.Kind, op.Var)
			}
			if !op.Kind.IsSync() && class != Data {
				return fmt.Errorf("litmus: thread %d op %d: %v on sync variable v%d", ti, oi, op.Kind, op.Var)
			}
		}
	}
	return nil
}

func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (vars:", p.Name)
	for i, c := range p.Vars {
		fmt.Fprintf(&b, " v%d=%s", i, c)
	}
	b.WriteString(")\n")
	for ti, t := range p.Threads {
		fmt.Fprintf(&b, "  T%d@CU%d:", ti, t.CU)
		for _, op := range t.Ops {
			fmt.Fprintf(&b, " {%s}", op)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Clone deep-copies the program (shrinking mutates copies).
func (p *Program) Clone() *Program {
	q := &Program{Name: p.Name, Vars: append([]VarClass(nil), p.Vars...)}
	for _, t := range p.Threads {
		q.Threads = append(q.Threads, Thread{CU: t.CU, Ops: append([]Op(nil), t.Ops...)})
	}
	return q
}

// Outcome is one observable result of a program: the values recorded by
// each thread's value-returning operations (in program order) and the
// final value of every variable after the kernel completes.
type Outcome struct {
	Loads [][]uint32
	Final []uint32
}

// Key canonicalizes the outcome for set membership.
func (o Outcome) Key() string {
	var b strings.Builder
	for ti, ls := range o.Loads {
		if ti > 0 {
			b.WriteByte('/')
		}
		for i, v := range ls {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", v)
		}
	}
	b.WriteByte('|')
	for i, v := range o.Final {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}

// Schedule is a timing perturbation: Delay[thread][op] idle cycles are
// inserted before the thread issues that operation. Different schedules
// expose different interleavings of the same program.
type Schedule [][]int

// ZeroSchedule returns the no-delay schedule for p.
func ZeroSchedule(p *Program) Schedule {
	s := make(Schedule, len(p.Threads))
	for i, t := range p.Threads {
		s[i] = make([]int, len(t.Ops))
	}
	return s
}

// Clone deep-copies the schedule.
func (s Schedule) Clone() Schedule {
	c := make(Schedule, len(s))
	for i, d := range s {
		c[i] = append([]int(nil), d...)
	}
	return c
}

// Case is a replayable litmus run: a program, the schedule that
// exposed the behavior, the configuration it ran under, and whether the
// test-only acquire fault was injected. The litmus CLI serializes
// violating cases to JSON so they can be replayed with -replay.
type Case struct {
	Config   string
	Fault    bool `json:",omitempty"`
	Program  *Program
	Schedule Schedule
	// Observed is the outcome that violated the oracle (informational).
	Observed *Outcome `json:",omitempty"`
}

// MarshalIndent renders the case as replayable JSON.
func (c *Case) MarshalIndent() ([]byte, error) { return json.MarshalIndent(c, "", "  ") }

// ParseCase parses a JSON case.
func ParseCase(data []byte) (*Case, error) {
	var c Case
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("litmus: bad case: %w", err)
	}
	if c.Program == nil {
		return nil, fmt.Errorf("litmus: case has no program")
	}
	if err := c.Program.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}
