package litmus

import (
	"fmt"

	"denovogpu/internal/coherence"
)

// splitMix is a tiny deterministic, splittable PRNG (SplitMix64). The
// generator derives one independent stream per program index from a
// base seed, so fuzzing is reproducible and trivially parallelizable:
// program i is the same regardless of how many programs came before it.
type splitMix struct{ state uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{state: seed} }

func (s *splitMix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitMix) intn(n int) int { return int(s.next() % uint64(n)) }

// split derives an independent stream for index i.
func (s *splitMix) split(i uint64) *splitMix {
	d := newSplitMix(s.state ^ (i+1)*0x9e3779b97f4a7c15)
	d.next()
	return d
}

// GenParams bounds the random program generator.
type GenParams struct {
	MaxThreads   int // 2..MaxThreads threads
	MaxOps       int // 1..MaxOps ops per thread
	MaxTotalOps  int // whole-program cap (the oracle enumerates interleavings)
	MaxVars      int // 2..MaxVars variables
	NumCUs       int // CU placement range
	ThreadsPerCU int // resident limit per CU (Config.MaxResidentTBs)
}

// DefaultGenParams matches the paper machine and keeps programs well
// inside the oracle's exploration budget: classic litmus shapes are
// 4-8 operations, and the oracle's state space is exponential in the
// total op count.
func DefaultGenParams() GenParams {
	return GenParams{MaxThreads: 4, MaxOps: 4, MaxTotalOps: 8, MaxVars: 3, NumCUs: 15, ThreadsPerCU: 2}
}

// Generate builds litmus program i of the stream rooted at seed. The
// same (seed, i) always yields the same program. Generated programs mix
// data and sync variables, global and local scopes, and co-located vs
// remote threads — the axes along which the five configurations differ.
func Generate(seed uint64, i uint64, gp GenParams) *Program {
	rng := newSplitMix(seed).split(i)

	nVars := 2 + rng.intn(gp.MaxVars-1)
	p := &Program{Name: fmt.Sprintf("fuzz-%d-%d", seed, i), Vars: make([]VarClass, nVars)}
	// At least one sync variable and one data variable: the interesting
	// programs synchronize around data.
	p.Vars[0] = Data
	p.Vars[1] = Sync
	for v := 2; v < nVars; v++ {
		p.Vars[v] = VarClass(rng.intn(2))
	}

	nThreads := 2 + rng.intn(gp.MaxThreads-1)
	// Placement: half the time cluster threads on few CUs (local-scope
	// territory), otherwise spread them.
	cluster := rng.intn(2) == 0
	perCU := make(map[int]int)
	for t := 0; t < nThreads; t++ {
		var cu int
		for tries := 0; ; tries++ {
			if cluster {
				cu = rng.intn(2) // CUs 0 and 1
			} else {
				cu = rng.intn(gp.NumCUs)
			}
			if perCU[cu] < gp.ThreadsPerCU || tries > 8 {
				break
			}
		}
		perCU[cu]++
		p.Threads = append(p.Threads, Thread{CU: cu})
	}

	val := uint32(0)
	dataVars := varsOf(p, Data)
	syncVars := varsOf(p, Sync)
	// Distribute the whole-program op budget so every thread gets at
	// least one op regardless of how greedy earlier threads were.
	budget := gp.MaxTotalOps
	if budget < nThreads {
		budget = nThreads
	}
	for ti := range p.Threads {
		left := budget - p.NumOps() - (nThreads - ti - 1)
		if left < 1 {
			left = 1
		}
		nOps := 1 + rng.intn(gp.MaxOps)
		if nOps > left {
			nOps = left
		}
		for len(p.Threads[ti].Ops) < nOps {
			var op Op
			switch rng.intn(6) {
			case 0:
				op = Op{Kind: OpLoad, Var: dataVars[rng.intn(len(dataVars))]}
			case 1:
				val++
				op = Op{Kind: OpStore, Var: dataVars[rng.intn(len(dataVars))], Val: val}
			case 2:
				op = Op{Kind: OpSyncLoad, Var: syncVars[rng.intn(len(syncVars))], Scope: randScope(rng)}
			case 3:
				val++
				op = Op{Kind: OpSyncStore, Var: syncVars[rng.intn(len(syncVars))], Val: val, Scope: randScope(rng)}
			case 4:
				op = Op{Kind: OpSyncAdd, Var: syncVars[rng.intn(len(syncVars))], Val: 1, Scope: randScope(rng)}
			default:
				// Message-passing idiom, the bread and butter of litmus
				// testing: store data then release a flag (when the thread
				// has room for both ops).
				if len(p.Threads[ti].Ops)+2 <= nOps {
					val++
					p.Threads[ti].Ops = append(p.Threads[ti].Ops,
						Op{Kind: OpStore, Var: dataVars[rng.intn(len(dataVars))], Val: val})
				}
				val++
				op = Op{Kind: OpSyncStore, Var: syncVars[rng.intn(len(syncVars))], Val: val, Scope: randScope(rng)}
			}
			p.Threads[ti].Ops = append(p.Threads[ti].Ops, op)
		}
	}
	return p
}

func randScope(rng *splitMix) coherence.Scope {
	if rng.intn(3) == 0 {
		return coherence.ScopeLocal
	}
	return coherence.ScopeGlobal
}

func varsOf(p *Program, c VarClass) []int {
	var out []int
	for v, cl := range p.Vars {
		if cl == c {
			out = append(out, v)
		}
	}
	return out
}
