package litmus

import (
	"fmt"

	"denovogpu/internal/machine"
	"denovogpu/internal/mem"
	"denovogpu/internal/workload"
)

// Address layout: every litmus variable gets its own cache line (the
// oracle models variables, not lines, so two variables must never share
// a line's fill/invalidate granularity), and every thread gets a
// private line-aligned area to record its observed values in.
const (
	varBase  = mem.Addr(0x10_0000)
	outBase  = mem.Addr(0x20_0000)
	varSpace = 2 * mem.LineBytes // one line per var, one line of padding
	outSlots = 16                // recorded values per thread (line each)
)

// VarAddr is the simulated address of variable v.
func VarAddr(v int) mem.Addr { return varBase + mem.Addr(v)*varSpace }

func outAddr(thread, slot int) mem.Addr {
	return outBase + mem.Addr(thread*outSlots+slot)*mem.LineBytes
}

// threadsPerTB: litmus ops are scalar (thread-0) accesses; one warp.
const threadsPerTB = 32

// Run executes the program once on a fresh machine built from cfg,
// perturbed by the schedule, and returns the observed outcome. The
// returned outcome has the same shape as the oracle's: recorded values
// per thread plus the final value of every variable.
func Run(cfg machine.Config, p *Program, sched Schedule) (Outcome, error) {
	if err := p.Validate(); err != nil {
		return Outcome{}, err
	}
	cfg = cfg.Defaults()
	// Every litmus run doubles as a sanitizer run: the hot-path
	// assertions and quiesced-state checks observe without perturbing
	// timing, so outcomes are unchanged and protocol-structure bugs
	// surface even on conforming schedules.
	cfg.Invariants = true
	maxSlot := 0
	for _, n := range p.MaxSlotPerCU() {
		if n > maxSlot {
			maxSlot = n
		}
	}
	if maxSlot > cfg.MaxResidentTBs {
		return Outcome{}, fmt.Errorf("litmus: %q pins %d threads to one CU, but only %d blocks are resident",
			p.Name, maxSlot, cfg.MaxResidentTBs)
	}
	// CU pins address the contiguous worker-index space across all
	// devices: CU i lives on device i/NumCUs, so a 2-device machine
	// accepts pins in [0, 2*NumCUs) and pinning thread 0 to CU 0 and
	// thread 1 to CU NumCUs places them on different devices.
	totalCUs := cfg.Devices * cfg.NumCUs
	for ti, t := range p.Threads {
		if t.CU >= totalCUs {
			return Outcome{}, fmt.Errorf("litmus: %q thread %d pinned to CU %d of %d", p.Name, ti, t.CU, totalCUs)
		}
		if n := numRecords(t); n > outSlots {
			return Outcome{}, fmt.Errorf("litmus: %q thread %d records %d values (max %d)", p.Name, ti, n, outSlots)
		}
	}

	m := machine.New(cfg)

	// Pin each litmus thread to its CU via the launcher's round-robin
	// placement; all other blocks in the grid exit immediately.
	tbThread := make(map[int]int)
	slotUsed := make(map[int]int)
	for ti, t := range p.Threads {
		slot := slotUsed[t.CU]
		slotUsed[t.CU]++
		tb := m.PlaceTB(t.CU, slot)
		tbThread[tb] = ti
	}
	numTBs := totalCUs * maxSlot

	kernel := func(c *workload.Ctx) {
		ti, ok := tbThread[c.TB]
		if !ok {
			return
		}
		t := p.Threads[ti]
		rec := make([]uint32, 0, outSlots)
		for oi, op := range t.Ops {
			if len(sched) > ti && len(sched[ti]) > oi && sched[ti][oi] > 0 {
				c.Wait(sched[ti][oi])
			}
			a := VarAddr(op.Var)
			switch op.Kind {
			case OpLoad:
				rec = append(rec, c.Load(a))
			case OpStore:
				c.Store(a, op.Val)
			case OpSyncLoad:
				rec = append(rec, c.AtomicLoad(a, op.Scope))
			case OpSyncStore:
				c.AtomicStore(a, op.Val, op.Scope)
			case OpSyncAdd:
				rec = append(rec, c.AtomicAdd(a, op.Val, op.Scope))
			}
		}
		// Publish the recorded values through the thread's private out
		// area (flushed by the kernel-boundary release, race-free).
		for i, v := range rec {
			c.Store(outAddr(ti, i), v+1) // +1 distinguishes "recorded 0" from "never ran"
		}
	}

	m.Launch(kernel, numTBs, threadsPerTB)
	if err := m.Err(); err != nil {
		return Outcome{}, fmt.Errorf("litmus: %q under %s: %w", p.Name, cfg.Name(), err)
	}

	o := Outcome{Loads: make([][]uint32, len(p.Threads)), Final: make([]uint32, len(p.Vars))}
	for ti, t := range p.Threads {
		n := numRecords(t)
		o.Loads[ti] = make([]uint32, n)
		for i := 0; i < n; i++ {
			v := m.Read(outAddr(ti, i))
			if v == 0 {
				return Outcome{}, fmt.Errorf("litmus: %q under %s: thread %d record %d missing", p.Name, cfg.Name(), ti, i)
			}
			o.Loads[ti][i] = v - 1
		}
	}
	for vi := range p.Vars {
		o.Final[vi] = m.Read(VarAddr(vi))
	}
	return o, nil
}

func numRecords(t Thread) int {
	n := 0
	for _, op := range t.Ops {
		if op.Kind.Records() {
			n++
		}
	}
	return n
}

// Schedules builds the deterministic schedule set used by the
// differential runner: the unperturbed schedule, a family of "stagger"
// schedules that hold each thread back after its first operation (the
// shape that exposes stale-read windows: one thread races ahead and
// publishes while another sits on cached data), and extra seeded random
// schedules up to n total.
func Schedules(p *Program, n int, seed uint64) []Schedule {
	var out []Schedule
	out = append(out, ZeroSchedule(p))
	for _, unit := range []int{200, 600} {
		for dir := 0; dir < 2; dir++ {
			s := ZeroSchedule(p)
			for ti := range s {
				k := ti
				if dir == 1 {
					k = len(s) - 1 - ti
				}
				for oi := range s[ti] {
					if oi > 0 {
						s[ti][oi] = k * unit
					}
				}
			}
			out = append(out, s)
		}
	}
	rng := newSplitMix(seed)
	for len(out) < n {
		s := ZeroSchedule(p)
		for ti := range s {
			for oi := range s[ti] {
				s[ti][oi] = int(rng.next()%5) * 130
			}
		}
		out = append(out, s)
	}
	if len(out) > n && n > 0 {
		out = out[:n]
	}
	return out
}

// Configs returns the differential target set: the paper's five
// configurations plus MESI as a conventional-hardware reference.
func Configs() []machine.Config {
	return append(machine.AllConfigs(), machine.MESI())
}

// Violation describes one oracle violation found by the runner.
type Violation struct {
	Config   machine.Config
	Program  *Program
	Schedule Schedule
	Observed Outcome
	Allowed  map[string]Outcome
}

func (v *Violation) Error() string {
	return fmt.Sprintf("litmus: %s under %s observed outcome %q not permitted by the %v oracle (%d permitted outcomes)\n%s",
		v.Program.Name, v.Config.Name(), v.Observed.Key(), v.Config.Model, len(v.Allowed), v.Program)
}

// Check runs the program under every configuration in cfgs with every
// schedule, comparing each observed outcome with the oracle for the
// configuration's consistency model. It returns the first violation
// found (nil if all runs conform). Oracle enumeration is done once per
// model.
func Check(cfgs []machine.Config, p *Program, scheds []Schedule) (*Violation, error) {
	oracles := make(map[string]map[string]Outcome)
	for _, cfg := range cfgs {
		key := cfg.Model.String()
		if _, ok := oracles[key]; !ok {
			allowed, err := Oracle(p, cfg.Model, 0)
			if err != nil {
				return nil, err
			}
			oracles[key] = allowed
		}
		for _, sched := range scheds {
			obs, err := Run(cfg, p, sched)
			if err != nil {
				return nil, err
			}
			if _, ok := oracles[key][obs.Key()]; !ok {
				return &Violation{Config: cfg, Program: p, Schedule: sched, Observed: obs, Allowed: oracles[key]}, nil
			}
		}
	}
	return nil, nil
}
