package litmus

import (
	"testing"

	"denovogpu/internal/machine"
)

// TestShrinkIsOneMinimal is the shrinker's contract as a property: a
// shrunk counterexample still violates the oracle, and deleting any
// single remaining operation (with its schedule slot) makes the
// violation disappear — every op left in the report is there because
// it is needed. The violation comes from the acquire-invalidation
// fault, the same source the fuzz and check pipelines shrink.
func TestShrinkIsOneMinimal(t *testing.T) {
	cfg := machine.GD()
	cfg.FaultDisableAcquireInval = true
	var v *Violation
	for _, e := range Catalog() {
		var err error
		v, err = Check([]machine.Config{cfg}, e.Program, Schedules(e.Program, 7, 20260805))
		if err != nil {
			t.Fatal(err)
		}
		if v != nil {
			break
		}
	}
	if v == nil {
		t.Fatal("fault injection produced no violation to shrink")
	}

	sp, ss := Shrink(cfg, v.Program, v.Schedule)
	if !stillViolates(cfg, sp, ss) {
		t.Fatalf("shrunk case no longer violates:\n%s", sp)
	}
	if sp.NumOps() > v.Program.NumOps() {
		t.Fatalf("shrink grew the program: %d ops from %d", sp.NumOps(), v.Program.NumOps())
	}
	for ti := range sp.Threads {
		for oi := range sp.Threads[ti].Ops {
			cand, cands := sp.Clone(), ss.Clone()
			cand.Threads[ti].Ops = append(cand.Threads[ti].Ops[:oi:oi], cand.Threads[ti].Ops[oi+1:]...)
			cands[ti] = append(cands[ti][:oi:oi], cands[ti][oi+1:]...)
			cand, cands = dropEmpty(cand, cands)
			if stillViolates(cfg, cand, cands) {
				t.Errorf("thread %d op %d is deletable: the shrunk case is not 1-minimal\n%s", ti, oi, sp)
			}
		}
	}
}
