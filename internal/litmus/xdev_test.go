package litmus

import (
	"testing"

	"denovogpu/internal/consistency"
	"denovogpu/internal/machine"
)

// Cross-device litmus variants: the same consistency obligations must
// hold when the communicating threads live on different devices and
// every coherence action crosses the inter-device link. The oracle is
// model-level (it knows scopes and program order, not placement), so
// the permitted outcome sets are unchanged — only the hardware path
// differs, which is exactly what these tests pin: hierarchical
// registration and cross-device invalidation must not open windows the
// single-device protocol closes.
//
// CU pins address the contiguous cross-device worker-index space (see
// Run): with NumCUs workers per device, CU NumCUs+k is worker k of
// device 1.

// xdevConfigs is the 2-device differential target set: the paper's
// five configurations (MESI is single-device only, so the conventional
// reference drops out).
func xdevConfigs() []machine.Config {
	cfgs := machine.AllConfigs()
	for i := range cfgs {
		cfgs[i].Devices = 2
	}
	return cfgs
}

// xdevCatalog places the classic communication shapes across the
// device boundary.
func xdevCatalog() []Entry {
	d1 := machine.DD().Defaults().NumCUs // first CU of device 1
	return []Entry{
		{
			Program: &Program{
				Name: "MP+xdev",
				Vars: []VarClass{Data, Sync},
				Threads: []Thread{
					{CU: 0, Ops: []Op{st(0, 1), rl(1, 1, gl)}},
					{CU: d1, Ops: []Op{aq(1, gl), ld(0)}},
				},
			},
			Weak:       func(o Outcome) bool { return o.Loads[1][0] == 1 && o.Loads[1][1] == 0 },
			AllowedDRF: false, AllowedHRF: false,
			Doc: "message passing across the inter-device link: the remote acquire must pull the writer's data through the owner device's home bank",
		},
		{
			Program: &Program{
				Name: "MP+xdev-preload",
				Vars: []VarClass{Data, Sync},
				Threads: []Thread{
					{CU: 0, Ops: []Op{st(0, 1), rl(1, 1, gl)}},
					{CU: d1, Ops: []Op{ld(0), aq(1, gl), ld(0)}},
				},
			},
			Weak:       func(o Outcome) bool { return o.Loads[1][1] == 1 && o.Loads[1][2] == 0 },
			AllowedDRF: false, AllowedHRF: false,
			Doc: "cross-device MP with the remote reader pre-caching stale data: the acquire must invalidate a copy fetched over the link",
		},
		{
			Program: &Program{
				Name: "MP+xdev-scoped",
				Vars: []VarClass{Data, Sync},
				Threads: []Thread{
					{CU: 0, Ops: []Op{st(0, 1), rl(1, 1, lo)}},
					{CU: d1, Ops: []Op{aq(1, lo), ld(0)}},
				},
			},
			Weak:       func(o Outcome) bool { return o.Loads[1][0] == 1 && o.Loads[1][1] == 0 },
			AllowedDRF: false, AllowedHRF: true,
			Doc: "cross-device MP through a locally scoped flag: the ultimate HRF scope mismatch (different devices, not just different CUs); DRF upgrades and forbids the stale read",
		},
		{
			Program: &Program{
				Name: "IRIW+xdev",
				Vars: []VarClass{Sync, Sync},
				Threads: []Thread{
					{CU: 0, Ops: []Op{rl(0, 1, gl)}},
					{CU: d1, Ops: []Op{rl(1, 1, gl)}},
					{CU: 1, Ops: []Op{aq(0, gl), aq(1, gl)}},
					{CU: d1 + 1, Ops: []Op{aq(1, gl), aq(0, gl)}},
				},
			},
			Weak: func(o Outcome) bool {
				return o.Loads[2][0] == 1 && o.Loads[2][1] == 0 && o.Loads[3][0] == 1 && o.Loads[3][1] == 0
			},
			AllowedDRF: false, AllowedHRF: false,
			Doc: "IRIW with one writer and one observer per device: the observers sit on different devices yet must agree on the write order (write atomicity survives the link)",
		},
	}
}

// TestXDevOracleAnnotations cross-checks the cross-device catalog's
// annotations against the oracle, as TestCatalogOracleAnnotations does
// for the single-device catalog. Placement is invisible to the oracle,
// so these must match the corresponding same-device shapes.
func TestXDevOracleAnnotations(t *testing.T) {
	for _, e := range xdevCatalog() {
		e := e
		t.Run(e.Program.Name, func(t *testing.T) {
			for _, m := range []consistency.Model{consistency.DRF, consistency.HRF} {
				allowed, err := Oracle(e.Program, m, 0)
				if err != nil {
					t.Fatal(err)
				}
				weakSeen := false
				for _, o := range allowed {
					if e.Weak(o) {
						weakSeen = true
						break
					}
				}
				want := e.AllowedDRF
				if m == consistency.HRF {
					want = e.AllowedHRF
				}
				if weakSeen != want {
					t.Errorf("%v oracle: weak outcome permitted=%v, catalog says %v (%s)", m, weakSeen, want, e.Doc)
				}
			}
		})
	}
}

// TestXDevConformance runs every cross-device shape under the
// 2-device builds of all five paper configurations across the schedule
// set, checking every observed outcome against the DRF/HRF oracle.
func TestXDevConformance(t *testing.T) {
	for _, e := range xdevCatalog() {
		e := e
		t.Run(e.Program.Name, func(t *testing.T) {
			t.Parallel()
			scheds := Schedules(e.Program, 5, fuzzSeed)
			v, err := Check(xdevConfigs(), e.Program, scheds)
			if err != nil {
				t.Fatal(err)
			}
			if v != nil {
				t.Fatal(v.Error())
			}
		})
	}
}

// TestXDevPinValidation pins the CU-index bounds: a 1-device machine
// must reject a pin into device 1's index range, a 2-device machine
// must accept it.
func TestXDevPinValidation(t *testing.T) {
	p := xdevCatalog()[0].Program // pins CU NumCUs
	cfg := machine.DD()
	if _, err := Run(cfg, p, ZeroSchedule(p)); err == nil {
		t.Fatal("single-device machine accepted a device-1 CU pin")
	}
	cfg.Devices = 2
	if _, err := Run(cfg, p, ZeroSchedule(p)); err != nil {
		t.Fatalf("2-device machine rejected a device-1 CU pin: %v", err)
	}
}
