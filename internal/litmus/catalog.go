package litmus

import "denovogpu/internal/coherence"

// Entry is one catalog litmus test: a program, a predicate picking out
// the shape's "weak" (relaxed) outcome, and whether each consistency
// model permits that outcome. The conformance suite checks the
// annotations against the oracle (so the catalog documents the models
// and cross-checks the oracle at the same time) and then runs the
// program differentially under every configuration, verifying that no
// run strays outside its model's permitted set.
type Entry struct {
	Program *Program
	// Weak reports whether an outcome is the shape's relaxed outcome.
	Weak func(Outcome) bool
	// AllowedDRF / AllowedHRF state whether DRF-SC / HRF-Indirect
	// permit the weak outcome.
	AllowedDRF bool
	AllowedHRF bool
	// Doc explains the shape in one line.
	Doc string
}

// Terse op constructors for catalog programs.
func ld(v int) Op                    { return Op{Kind: OpLoad, Var: v} }
func st(v int, val uint32) Op        { return Op{Kind: OpStore, Var: v, Val: val} }
func aq(v int, s coherence.Scope) Op { return Op{Kind: OpSyncLoad, Var: v, Scope: s} }
func rl(v int, val uint32, s coherence.Scope) Op {
	return Op{Kind: OpSyncStore, Var: v, Val: val, Scope: s}
}

const (
	gl = coherence.ScopeGlobal
	lo = coherence.ScopeLocal
)

// Catalog returns the classic litmus shapes, including the scoped
// variants that separate HRF-Indirect from DRF-SC. Variable 0 is the
// data variable d, variable 1 the sync flag f unless noted.
func Catalog() []Entry {
	return []Entry{
		{
			Program: &Program{
				Name: "MP",
				Vars: []VarClass{Data, Sync},
				Threads: []Thread{
					{CU: 0, Ops: []Op{st(0, 1), rl(1, 1, gl)}},
					{CU: 1, Ops: []Op{aq(1, gl), ld(0)}},
				},
			},
			Weak:       func(o Outcome) bool { return o.Loads[1][0] == 1 && o.Loads[1][1] == 0 },
			AllowedDRF: false, AllowedHRF: false,
			Doc: "message passing with global release/acquire: observing the flag implies observing the data",
		},
		{
			Program: &Program{
				Name: "MP+preload",
				Vars: []VarClass{Data, Sync},
				Threads: []Thread{
					{CU: 0, Ops: []Op{st(0, 1), rl(1, 1, gl)}},
					{CU: 1, Ops: []Op{ld(0), aq(1, gl), ld(0)}},
				},
			},
			Weak:       func(o Outcome) bool { return o.Loads[1][1] == 1 && o.Loads[1][2] == 0 },
			AllowedDRF: false, AllowedHRF: false,
			Doc: "MP with the reader pre-caching stale data: the acquire must invalidate it (kills broken acquire invalidation)",
		},
		{
			Program: &Program{
				Name: "MP+scoped-remote",
				Vars: []VarClass{Data, Sync},
				Threads: []Thread{
					{CU: 0, Ops: []Op{st(0, 1), rl(1, 1, lo)}},
					{CU: 1, Ops: []Op{aq(1, lo), ld(0)}},
				},
			},
			Weak:       func(o Outcome) bool { return o.Loads[1][0] == 1 && o.Loads[1][1] == 0 },
			AllowedDRF: false, AllowedHRF: true,
			Doc: "MP through a locally scoped flag across CUs: an HRF scope mismatch (stale data allowed); DRF upgrades the scope and forbids it",
		},
		{
			Program: &Program{
				Name: "MP+local-samecu",
				Vars: []VarClass{Data, Sync},
				Threads: []Thread{
					{CU: 0, Ops: []Op{st(0, 1), rl(1, 1, lo)}},
					{CU: 0, Ops: []Op{aq(1, lo), ld(0)}},
				},
			},
			Weak:       func(o Outcome) bool { return o.Loads[1][0] == 1 && o.Loads[1][1] == 0 },
			AllowedDRF: false, AllowedHRF: false,
			Doc: "MP through a locally scoped flag within one CU: local scope suffices, both models forbid the stale read",
		},
		{
			Program: &Program{
				Name: "SB+sync",
				Vars: []VarClass{Sync, Sync},
				Threads: []Thread{
					{CU: 0, Ops: []Op{rl(0, 1, gl), aq(1, gl)}},
					{CU: 1, Ops: []Op{rl(1, 1, gl), aq(0, gl)}},
				},
			},
			Weak:       func(o Outcome) bool { return o.Loads[0][0] == 0 && o.Loads[1][0] == 0 },
			AllowedDRF: false, AllowedHRF: false,
			Doc: "store buffering with synchronization accesses: sync accesses are SC, both reads returning 0 is forbidden",
		},
		{
			Program: &Program{
				Name: "SB+data",
				Vars: []VarClass{Data, Data},
				Threads: []Thread{
					{CU: 0, Ops: []Op{st(0, 1), ld(1)}},
					{CU: 1, Ops: []Op{st(1, 1), ld(0)}},
				},
			},
			Weak:       func(o Outcome) bool { return o.Loads[0][0] == 0 && o.Loads[1][0] == 0 },
			AllowedDRF: true, AllowedHRF: true,
			Doc: "store buffering with racy plain accesses: buffered writes may pass loads, both models permit 0/0",
		},
		{
			Program: &Program{
				Name: "LB",
				Vars: []VarClass{Data, Data},
				Threads: []Thread{
					{CU: 0, Ops: []Op{ld(0), st(1, 1)}},
					{CU: 1, Ops: []Op{ld(1), st(0, 1)}},
				},
			},
			Weak:       func(o Outcome) bool { return o.Loads[0][0] == 1 && o.Loads[1][0] == 1 },
			AllowedDRF: false, AllowedHRF: false,
			Doc: "load buffering: loads complete before later ops issue, so both loads observing the other thread's later store is forbidden",
		},
		{
			Program: &Program{
				Name: "CoRR",
				Vars: []VarClass{Data},
				Threads: []Thread{
					{CU: 0, Ops: []Op{st(0, 1)}},
					{CU: 1, Ops: []Op{ld(0), ld(0)}},
				},
			},
			Weak:       func(o Outcome) bool { return o.Loads[1][0] == 1 && o.Loads[1][1] == 0 },
			AllowedDRF: false, AllowedHRF: false,
			Doc: "coherence of read-read: per-location values never go backwards, even for racy reads",
		},
		{
			Program: &Program{
				Name: "CoWW",
				Vars: []VarClass{Data},
				Threads: []Thread{
					{CU: 0, Ops: []Op{st(0, 1), st(0, 2)}},
				},
			},
			Weak:       func(o Outcome) bool { return o.Final[0] != 2 },
			AllowedDRF: false, AllowedHRF: false,
			Doc: "coherence of write-write: program order of same-location stores decides the final value",
		},
		{
			Program: &Program{
				Name: "IRIW+sync",
				Vars: []VarClass{Sync, Sync},
				Threads: []Thread{
					{CU: 0, Ops: []Op{rl(0, 1, gl)}},
					{CU: 1, Ops: []Op{rl(1, 1, gl)}},
					{CU: 2, Ops: []Op{aq(0, gl), aq(1, gl)}},
					{CU: 3, Ops: []Op{aq(1, gl), aq(0, gl)}},
				},
			},
			Weak: func(o Outcome) bool {
				return o.Loads[2][0] == 1 && o.Loads[2][1] == 0 && o.Loads[3][0] == 1 && o.Loads[3][1] == 0
			},
			AllowedDRF: false, AllowedHRF: false,
			Doc: "independent reads of independent writes, all sync: the two readers must agree on the write order",
		},
		{
			Program: &Program{
				Name: "IRIW+scoped",
				Vars: []VarClass{Sync, Sync},
				Threads: []Thread{
					{CU: 0, Ops: []Op{rl(0, 1, lo)}},
					{CU: 1, Ops: []Op{rl(1, 1, lo)}},
					{CU: 0, Ops: []Op{aq(0, lo), aq(1, gl)}},
					{CU: 1, Ops: []Op{aq(1, lo), aq(0, gl)}},
				},
			},
			Weak: func(o Outcome) bool {
				return o.Loads[2][0] == 1 && o.Loads[2][1] == 0 && o.Loads[3][0] == 1 && o.Loads[3][1] == 0
			},
			AllowedDRF: false, AllowedHRF: true,
			Doc: "IRIW where each reader shares a CU (and local scope) with one writer: HRF lets the readers disagree, DRF does not",
		},
		{
			Program: &Program{
				Name: "ISA2+transitive",
				Vars: []VarClass{Data, Sync, Sync},
				Threads: []Thread{
					{CU: 0, Ops: []Op{st(0, 77), rl(1, 1, lo)}},
					{CU: 0, Ops: []Op{aq(1, lo), rl(2, 1, gl)}},
					{CU: 1, Ops: []Op{aq(2, gl), ld(0)}},
				},
			},
			Weak: func(o Outcome) bool {
				return o.Loads[1][0] == 1 && o.Loads[2][0] == 1 && o.Loads[2][1] == 0
			},
			AllowedDRF: false, AllowedHRF: false,
			Doc: "HRF-Indirect transitivity: local release to a sibling, global release onward — the remote reader must see the data (HRF-direct would allow the stale read; the paper's HRF-Indirect forbids it)",
		},
	}
}
