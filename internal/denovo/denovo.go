// Package denovo implements the DeNovo hybrid coherence protocol at the
// L1, extended to GPUs as the paper proposes:
//
//   - Three word-granularity states (Invalid / Valid / Registered) with
//     no transient states: every mutation is synchronous; only
//     completions are delayed.
//   - Writes obtain ownership (registration) at the L2 registry; owned
//     words are never self-invalidated, so written data is reused
//     across synchronization boundaries.
//   - Synchronization reads and writes both register (DeNovoSync0), so
//     sync variables with temporal locality hit in the L1; racy
//     registrations are served in arrival order at the registry,
//     forwarding to the previous owner and forming a distributed queue.
//     Requests from thread blocks on the same CU coalesce in the MSHR
//     and are serviced before any queued remote request.
//   - Acquires self-invalidate only non-Registered words; the optional
//     read-only region optimization (DD+RO) also spares Valid words in
//     a software-identified read-only region.
//   - The HRF variant (DH) skips invalidation/flush for local scopes
//     and delays ownership for locally scoped synchronization and, when
//     lazy-write mode is on, for data writes.
package denovo

import (
	"fmt"

	"denovogpu/internal/cache"
	"denovogpu/internal/coherence"
	"denovogpu/internal/energy"
	"denovogpu/internal/mem"
	"denovogpu/internal/noc"
	"denovogpu/internal/obs"
	"denovogpu/internal/sim"
	"denovogpu/internal/stats"
	"denovogpu/internal/topology"
	"denovogpu/internal/wordmap"
)

// Interned counter keys: hot-path counting indexes an array
// instead of hashing the name per event (see stats.Intern).
var (
	kL1DirectReads           = stats.Intern("l1.direct_reads")
	kL1DirectReadsNacked     = stats.Intern("l1.direct_reads_nacked")
	kL1DirectReadsServed     = stats.Intern("l1.direct_reads_served")
	kL1FillsDroppedStale     = stats.Intern("l1.fills_dropped_stale")
	kL1FillsLate             = stats.Intern("l1.fills_late")
	kL1FlashInvalidations    = stats.Intern("l1.flash_invalidations")
	kL1FwdDeferred           = stats.Intern("l1.fwd_deferred")
	kL1InvalidatedWords      = stats.Intern("l1.invalidated_words")
	kL1OwnershipTransfers    = stats.Intern("l1.ownership_transfers")
	kL1OwnershipWords        = stats.Intern("l1.ownership_words")
	kL1ReadHits              = stats.Intern("l1.read_hits")
	kL1ReadMisses            = stats.Intern("l1.read_misses")
	kL1ReadsDeferred         = stats.Intern("l1.reads_deferred")
	kL1RegRequests           = stats.Intern("l1.reg_requests")
	kL1RemoteReadsServed     = stats.Intern("l1.remote_reads_served")
	kL1SyncBackoffs          = stats.Intern("l1.sync_backoffs")
	kL1SyncCoalesced         = stats.Intern("l1.sync_coalesced")
	kL1SyncHits              = stats.Intern("l1.sync_hits")
	kL1SyncLocal             = stats.Intern("l1.sync_local")
	kL1SyncMisses            = stats.Intern("l1.sync_misses")
	kL1SyncServicedOnArrival = stats.Intern("l1.sync_serviced_on_arrival")
	kL1WriteHits             = stats.Intern("l1.write_hits")
	kL1Writebacks            = stats.Intern("l1.writebacks")
	kSbCoalescedWrites       = stats.Intern("sb.coalesced_writes")
	kSbKickedRegs            = stats.Intern("sb.kicked_regs")
	kSbReleaseDrains         = stats.Intern("sb.release_drains")
	kSbWriteStalls           = stats.Intern("sb.write_stalls")
)

type syncOp struct {
	op       coherence.AtomicOp
	operand  uint32
	operand2 uint32
	cb       func(uint32)
}

// regTxn is an outstanding registration for one word.
type regTxn struct {
	dataWrite   bool // a store-buffer slot is waiting on this
	syncWaiters []syncOp
}

type readWaiter struct {
	need mem.WordMask
	vals [mem.WordsPerLine]uint32
	cb   func([mem.WordsPerLine]uint32)
}

type readTxn struct {
	line      mem.Line
	epoch     uint64
	requested mem.WordMask
	arrived   mem.WordMask
	waiters   []readWaiter
	// direct marks a transaction whose first request went to a
	// predicted owner; a ReadNack falls it back to the registry.
	direct bool
}

type victimWord struct {
	servicedFwd   bool // a forward was already served from the victim copy
	rejectedKnown bool // the registry rejected our writeback for this word
}

// Options configure protocol variants.
type Options struct {
	// ReadOnly, when non-nil, identifies the software-conveyed
	// read-only region: Valid words satisfying it survive acquires
	// (the paper's DD+RO).
	ReadOnly func(mem.Word) bool
	// LazyWrites delays data-write registration until a global release
	// (DH's "delay obtaining ownership for local writes").
	LazyWrites bool
	// NoMSHRCoalescing disables servicing same-CU sync waiters before a
	// queued remote request (ablation of DeNovoSync0's locality
	// optimization; see DESIGN.md).
	NoMSHRCoalescing bool
	// SyncBackoff enables DeNovoSync's refinement over DeNovoSync0:
	// synchronization *reads* back off before re-registering a word
	// whose ownership this CU lost very recently, reducing the
	// ownership ping-pong of read-read contention (spinning readers).
	// The paper evaluates DeNovoSync0 and leaves this off; it is
	// provided as the paper's referenced extension and exercised by an
	// ablation bench.
	SyncBackoff bool
	// DirectTransfer enables the direct cache-to-cache transfer
	// optimization the paper's conclusion lists as future work: a read
	// miss first tries the L1 that last supplied the line (2-hop)
	// before falling back to the registry (3-hop).
	DirectTransfer bool
}

// Backoff parameters for Options.SyncBackoff.
const (
	syncBackoffWindow = 64   // "recently lost" horizon, cycles
	syncBackoffMin    = 32   // first delay
	syncBackoffMax    = 1024 // cap
)

// Controller is one CU's (or the CPU's) DeNovo L1.
type Controller struct {
	node  noc.NodeID
	eng   *sim.Engine
	mesh  noc.Sender
	st    *stats.Stats
	meter *energy.Meter
	opts  Options
	// topo locates each line's home registry bank; in a multi-device
	// machine the home may be on another device, in which case the
	// fabric (this controller's Sender) carries the request over the
	// inter-device link — the protocol itself is topology-oblivious.
	topo topology.Desc

	cache  *cache.Cache
	sb     *cache.StoreBuffer // data writes awaiting registration (or delayed, when lazy)
	lazy   wordmap.Map[bool]  // sb slots whose registration is delayed
	victim *cache.VictimBuffer
	vstate wordmap.Map[victimWord]

	// The per-word/per-line transaction tables below are open-addressed
	// (wordmap) rather than builtin maps: they sit on the protocol's
	// hottest paths, and the dense tables reuse their backing storage
	// across the insert/delete churn of transaction lifecycles.
	regs        wordmap.Map[*regTxn]
	deferredFwd wordmap.Map[*coherence.Msg]
	// deferredReads holds forwarded reads that arrived while our own
	// registration was still in flight: the registry has already made
	// this node the owner, but the word's value has not arrived yet.
	deferredReads wordmap.Map[[]*coherence.Msg]
	pendingOwn    wordmap.Map[uint32] // owned words awaiting a cache frame

	reads   wordmap.Map[*readTxn]
	lineTxn wordmap.Map[uint64]

	pins wordmap.Map[int32]

	nextID       uint64
	epoch        uint64
	relWaiters   []*relWaiter
	spaceWaiters []func()

	// lostAt/backoffDelay drive Options.SyncBackoff.
	lostAt       wordmap.Map[sim.Time]
	backoffDelay wordmap.Map[sim.Time]
	// lastSupplier predicts owners for Options.DirectTransfer.
	lastSupplier wordmap.Map[noc.NodeID]

	// pool recycles coherence messages (see coherence.MsgPool); the
	// free lists below recycle event payloads and transaction structs so
	// the steady-state access path allocates nothing.
	pool          coherence.MsgPool
	readDoneFree  []*readDoneTask
	syncDoneFree  []*syncDoneTask
	retryFree     []*retryInstallTask
	regTxnFree    []*regTxn
	readTxnFree   []*readTxn
	relWaiterFree []*relWaiter
	sbFreedT      sbFreedTask

	// faultNoAcqInval makes global acquires no-ops (test-only fault
	// injection; see DisableAcquireInvalidation).
	faultNoAcqInval bool

	// invariants arms the sanitizer's hot-path assertions (see
	// EnableInvariantChecks). Off by default: the guarded checks cost a
	// branch each on the release and space-stall paths.
	invariants bool

	// Release-path scratch, reused across calls so the per-release walk
	// over the store buffer allocates nothing.
	sbScratch []cache.SBEntry
	regBatch  []lineMask

	// rec, when non-nil, receives L1/sync events on track c.node.
	rec *obs.Recorder
}

// lineMask accumulates one line's per-word mask while batching lazy
// registrations at a release.
type lineMask struct {
	line mem.Line
	mask mem.WordMask
}

// relWaiter is a release waiting for the store-buffer entries that
// existed when it was issued. Entries buffered afterwards belong to
// other thread blocks and must not block this release — they will be
// covered by their own block's release (waiting for them can deadlock
// if their block has already finished). Waiters are pooled; pending
// keeps its backing storage across reuse.
type relWaiter struct {
	pending wordmap.Map[bool]
	cb      func()
}

// readDoneTask is the pooled payload of a read-completion event.
type readDoneTask struct {
	c    *Controller
	vals [mem.WordsPerLine]uint32
	cb   func([mem.WordsPerLine]uint32)
}

func (t *readDoneTask) Run() {
	c, cb, vals := t.c, t.cb, t.vals
	t.cb = nil
	c.readDoneFree = append(c.readDoneFree, t)
	cb(vals)
}

func (c *Controller) scheduleReadDone(d sim.Time, vals [mem.WordsPerLine]uint32, cb func([mem.WordsPerLine]uint32)) {
	var t *readDoneTask
	if n := len(c.readDoneFree); n > 0 {
		t = c.readDoneFree[n-1]
		c.readDoneFree[n-1] = nil
		c.readDoneFree = c.readDoneFree[:n-1]
	} else {
		t = &readDoneTask{c: c}
	}
	t.vals, t.cb = vals, cb
	c.eng.ScheduleTask(d, t)
}

// syncDoneTask is the pooled payload of a synchronization-completion
// event.
type syncDoneTask struct {
	c   *Controller
	ret uint32
	cb  func(uint32)
}

func (t *syncDoneTask) Run() {
	c, cb, ret := t.c, t.cb, t.ret
	t.cb = nil
	c.syncDoneFree = append(c.syncDoneFree, t)
	cb(ret)
}

func (c *Controller) scheduleSyncDone(d sim.Time, ret uint32, cb func(uint32)) {
	var t *syncDoneTask
	if n := len(c.syncDoneFree); n > 0 {
		t = c.syncDoneFree[n-1]
		c.syncDoneFree[n-1] = nil
		c.syncDoneFree = c.syncDoneFree[:n-1]
	} else {
		t = &syncDoneTask{c: c}
	}
	t.ret, t.cb = ret, cb
	c.eng.ScheduleTask(d, t)
}

// retryInstallTask is the pooled payload of a frame-retry event.
type retryInstallTask struct {
	c *Controller
	w mem.Word
}

func (t *retryInstallTask) Run() {
	c, w := t.c, t.w
	c.retryFree = append(c.retryFree, t)
	c.retryInstall(w)
}

func (c *Controller) scheduleRetryInstall(d sim.Time, w mem.Word) {
	var t *retryInstallTask
	if n := len(c.retryFree); n > 0 {
		t = c.retryFree[n-1]
		c.retryFree[n-1] = nil
		c.retryFree = c.retryFree[:n-1]
	} else {
		t = &retryInstallTask{c: c}
	}
	t.w = w
	c.eng.ScheduleTask(d, t)
}

// sbFreedTask wakes stalled writers; one persistent instance per
// controller (Run only drains waiters, so concurrent schedulings of the
// same instance are harmless).
type sbFreedTask struct{ c *Controller }

func (t *sbFreedTask) Run() { t.c.sbFreed() }

// Transaction struct pools: regTxn/readTxn keep their waiter-slice
// capacity across reuse, so steady-state transactions allocate nothing.

func (c *Controller) newRegTxn() *regTxn {
	if n := len(c.regTxnFree); n > 0 {
		t := c.regTxnFree[n-1]
		c.regTxnFree[n-1] = nil
		c.regTxnFree = c.regTxnFree[:n-1]
		return t
	}
	return &regTxn{}
}

func (c *Controller) freeRegTxn(t *regTxn) {
	t.dataWrite = false
	t.syncWaiters = t.syncWaiters[:0]
	c.regTxnFree = append(c.regTxnFree, t)
}

func (c *Controller) newReadTxn() *readTxn {
	if n := len(c.readTxnFree); n > 0 {
		t := c.readTxnFree[n-1]
		c.readTxnFree[n-1] = nil
		c.readTxnFree = c.readTxnFree[:n-1]
		return t
	}
	return &readTxn{}
}

func (c *Controller) freeReadTxn(t *readTxn) {
	*t = readTxn{waiters: t.waiters[:0]}
	c.readTxnFree = append(c.readTxnFree, t)
}

// New returns a DeNovo L1 controller attached to the network at node,
// assuming the single-device geometry; multi-device machines follow up
// with SetTopology.
func New(node noc.NodeID, eng *sim.Engine, mesh noc.Network, st *stats.Stats, meter *energy.Meter, l1Bytes, l1Ways, sbEntries int, opts Options) *Controller {
	c := &Controller{
		node: node, eng: eng, mesh: mesh, st: st, meter: meter, opts: opts,
		topo:   topology.Single(),
		cache:  cache.New(l1Bytes, l1Ways),
		sb:     cache.NewStoreBuffer(sbEntries),
		victim: cache.NewVictimBuffer(),
	}
	c.sbFreedT.c = c
	mesh.Attach(node, noc.PortL1, c)
	return c
}

// SetTopology installs the machine geometry (call before simulation).
func (c *Controller) SetTopology(topo topology.Desc) { c.topo = topo }

// home returns the node whose L2 bank is the line's registry home.
func (c *Controller) home(l mem.Line) noc.NodeID { return c.topo.HomeNode(l) }

var _ coherence.L1 = (*Controller)(nil)

// SetRecorder installs an obs recorder (nil to disable) for this L1 and
// its store buffer; events land on track c.node in the CU domain.
func (c *Controller) SetRecorder(rec *obs.Recorder) {
	c.rec = rec
	c.sb.SetRecorder(rec, int32(c.node))
}

// MSHROccupancy returns the number of outstanding miss/registration
// transactions (the obs sampler's l1.mshr gauge).
func (c *Controller) MSHROccupancy() int { return c.reads.Len() + c.regs.Len() }

// OutstandingRegistrations returns the number of in-flight registration
// transactions (the obs sampler's l1.out_regs gauge).
func (c *Controller) OutstandingRegistrations() int { return c.regs.Len() }

// pin management: lines with outstanding transactions must not be
// evicted.

func (c *Controller) pin(l mem.Line) {
	(*c.pins.Upsert(uint64(l)))++
	if e := c.cache.Peek(l); e != nil {
		e.Pinned = true
	}
}

func (c *Controller) unpin(l mem.Line) {
	if p, ok := c.pins.Ptr(uint64(l)); ok {
		*p--
		if *p > 0 {
			return
		}
	}
	c.pins.Delete(uint64(l))
	if e := c.cache.Peek(l); e != nil {
		e.Pinned = false
	}
}

// frame returns a cache frame for line l, evicting (with writeback of
// registered words) if needed. Returns nil when every candidate is
// pinned; callers must cope (retry or deliver without installing).
func (c *Controller) frame(l mem.Line) *cache.Entry {
	e := c.cache.Victim(l)
	if e == nil {
		return nil
	}
	if e.Tag && e.Line == l {
		return e
	}
	if e.Tag {
		c.evict(e)
	}
	e.Reset(l)
	n, _ := c.pins.Get(uint64(l))
	e.Pinned = n > 0
	return e
}

// evict writes back the frame's registered words and moves them to the
// victim buffer until the registry acknowledges.
func (c *Controller) evict(e *cache.Entry) {
	reg := e.MaskOf(cache.Registered)
	if reg == 0 {
		return
	}
	c.st.IncKey(kL1Writebacks, 1)
	if c.rec != nil {
		c.rec.Emit(obs.L1Writeback, int32(c.node), uint64(e.Line))
	}
	for i := 0; i < mem.WordsPerLine; i++ {
		if reg.Has(i) {
			w := e.Line.Word(i)
			c.victim.Put(w, e.Data[i])
			c.vstate.Put(uint64(w), victimWord{})
		}
	}
	c.mesh.Send(c.pool.NewMsg(coherence.Msg{
		Kind: coherence.WriteBack, Src: c.node, Dst: c.home(e.Line), Port: noc.PortL2,
		Line: e.Line, Mask: reg, Data: e.Data,
	}))
}

// ReadLine implements coherence.L1.
func (c *Controller) ReadLine(l mem.Line, need mem.WordMask, cb func([mem.WordsPerLine]uint32)) {
	c.meter.L1Access(1)
	var vals [mem.WordsPerLine]uint32
	missing := mem.WordMask(0)
	entry := c.cache.Lookup(l)
	for i := 0; i < mem.WordsPerLine; i++ {
		if !need.Has(i) {
			continue
		}
		if v, ok := c.sb.Lookup(l.Word(i)); ok {
			vals[i] = v
			continue
		}
		if v, ok := c.pendingOwn.Get(uint64(l.Word(i))); ok {
			vals[i] = v
			continue
		}
		if entry != nil && entry.State[i] != cache.Invalid {
			vals[i] = entry.Data[i]
			continue
		}
		missing |= mem.Bit(i)
	}
	if missing == 0 {
		c.st.IncKey(kL1ReadHits, 1)
		if c.rec != nil {
			c.rec.Emit(obs.L1ReadHit, int32(c.node), uint64(l))
		}
		c.scheduleReadDone(coherence.L1HitCycles, vals, cb)
		return
	}
	c.st.IncKey(kL1ReadMisses, 1)
	if c.rec != nil {
		c.rec.Emit(obs.L1ReadMiss, int32(c.node), uint64(l))
	}
	c.meter.L1Tag(1)
	var txn *readTxn
	if id, ok := c.lineTxn.Get(uint64(l)); ok {
		// Join only current-epoch transactions that have not already
		// received any of our demanded words (an already-arrived word
		// would never be re-sent, and it may not have been installed).
		if t, _ := c.reads.Get(id); t != nil && t.epoch == c.epoch && missing&t.arrived == 0 {
			txn = t
			if extra := missing &^ t.requested; extra != 0 {
				// A joining reader demands words the original request did
				// not cover (they may be registered remotely and need a
				// forward); issue a supplementary request under the same
				// transaction.
				t.requested |= extra
				c.mesh.Send(c.pool.NewMsg(coherence.Msg{
					Kind: coherence.ReadReq, Src: c.node, Dst: c.home(l), Port: noc.PortL2,
					Line: l, Mask: extra, ID: id,
				}))
			}
		}
	}
	if txn == nil {
		c.nextID++
		txn = c.newReadTxn()
		txn.line, txn.epoch, txn.requested = l, c.epoch, missing
		c.reads.Put(c.nextID, txn)
		c.lineTxn.Put(uint64(l), c.nextID)
		c.pin(l)
		if pred, ok := c.lastSupplier.Get(uint64(l)); c.opts.DirectTransfer && ok && pred != c.node {
			// Direct cache-to-cache transfer: try the L1 that last
			// supplied this line (2 hops) before the registry (3 hops).
			txn.direct = true
			c.st.IncKey(kL1DirectReads, 1)
			c.mesh.Send(c.pool.NewMsg(coherence.Msg{
				Kind: coherence.DirectReadReq, Src: c.node, Dst: pred, Port: noc.PortL1,
				Line: l, Mask: missing, ID: c.nextID,
			}))
		} else {
			c.mesh.Send(c.pool.NewMsg(coherence.Msg{
				Kind: coherence.ReadReq, Src: c.node, Dst: c.home(l), Port: noc.PortL2,
				Line: l, Mask: missing, ID: c.nextID,
			}))
		}
	}
	txn.waiters = append(txn.waiters, readWaiter{need: missing, vals: vals, cb: cb})
}

// WriteLine implements coherence.L1. Writes to Registered words hit in
// place; others are buffered in the store buffer until their
// registration completes (eager) or until a global release (lazy, DH).
// A full buffer stalls the write until an acknowledgment frees a slot —
// cheaper than the GPU protocol's forced writethrough, as the paper
// notes for TB_LG.
func (c *Controller) WriteLine(l mem.Line, mask mem.WordMask, data [mem.WordsPerLine]uint32, cb func()) {
	c.meter.L1Access(1)
	c.writeRun(l, mask, data, 0, cb)
}

// writeRun is WriteLine's work loop starting at word index `from`. The
// common (no-stall) case runs to completion without creating any
// closure; only a full store buffer defers, capturing the resume point
// in a single closure.
func (c *Controller) writeRun(l mem.Line, mask mem.WordMask, data [mem.WordsPerLine]uint32, from int, cb func()) {
	entry := c.cache.Peek(l)
	var newReg mem.WordMask
	for i := from; i < mem.WordsPerLine; i++ {
		if !mask.Has(i) {
			continue
		}
		w := l.Word(i)
		if entry != nil && entry.State[i] == cache.Registered {
			entry.Data[i] = data[i]
			c.st.IncKey(kL1WriteHits, 1)
			if c.rec != nil {
				c.rec.Emit(obs.L1WriteHit, int32(c.node), uint64(w))
			}
			continue
		}
		if p, ok := c.pendingOwn.Ptr(uint64(w)); ok {
			*p = data[i]
			c.st.IncKey(kL1WriteHits, 1)
			if c.rec != nil {
				c.rec.Emit(obs.L1WriteHit, int32(c.node), uint64(w))
			}
			continue
		}
		if _, ok := c.sb.Lookup(w); ok {
			c.sb.Insert(w, data[i])
			c.st.IncKey(kSbCoalescedWrites, 1)
			continue
		}
		if txn, _ := c.regs.Get(uint64(w)); txn != nil {
			// A sync registration for this word is already in
			// flight; ride it rather than double-registering.
			if !c.sb.Full() {
				c.meter.StoreBuffer(1)
				c.sb.Insert(w, data[i])
				txn.dataWrite = true
				continue
			}
		}
		if c.sb.Full() {
			if newReg != 0 {
				c.sendRegReq(l, newReg, false, false)
			}
			resumeAt := i
			c.stallForSpace(func() { c.writeRun(l, mask, data, resumeAt, cb) })
			return
		}
		c.meter.StoreBuffer(1)
		c.sb.Insert(w, data[i])
		if c.opts.LazyWrites {
			c.lazy.Put(uint64(w), true)
		} else {
			txn := c.newRegTxn()
			txn.dataWrite = true
			c.regs.Put(uint64(w), txn)
			c.pin(l)
			newReg |= mem.Bit(i)
		}
	}
	if newReg != 0 {
		c.sendRegReq(l, newReg, false, false)
	}
	c.eng.Schedule(coherence.L1HitCycles, cb)
}

// stallForSpace queues fn until a store-buffer slot frees; in lazy mode
// it kicks off registration of the oldest delayed slot so space will
// eventually appear.
func (c *Controller) stallForSpace(fn func()) {
	c.st.IncKey(kSbWriteStalls, 1)
	c.kickOldestLazy()
	c.spaceWaiters = append(c.spaceWaiters, fn)
}

// kickOldestLazy starts registration of the oldest delayed slot so a
// stalled writer will eventually get space (lazy mode only; in eager
// mode every slot already has its registration in flight).
func (c *Controller) kickOldestLazy() {
	if !c.opts.LazyWrites {
		return
	}
	if oldest, ok := c.sb.PeekOldest(); ok && c.lazy.Has(uint64(oldest.Word)) {
		c.st.IncKey(kSbKickedRegs, 1)
		c.lazy.Delete(uint64(oldest.Word))
		if c.invariants && c.regs.Has(uint64(oldest.Word)) {
			panic(fmt.Sprintf("denovo: lazy-reg-exclusive: node %d kicked delayed %v over its in-flight registration", c.node, oldest.Word))
		}
		txn := c.newRegTxn()
		txn.dataWrite = true
		c.regs.Put(uint64(oldest.Word), txn)
		c.pin(oldest.Word.LineOf())
		c.sendRegReq(oldest.Word.LineOf(), mem.Bit(oldest.Word.Index()), false, false)
	}
}

func (c *Controller) sendRegReq(l mem.Line, mask mem.WordMask, sync, needsData bool) {
	c.st.IncKey(kL1RegRequests, 1)
	c.mesh.Send(c.pool.NewMsg(coherence.Msg{
		Kind: coherence.RegReq, Src: c.node, Dst: c.home(l), Port: noc.PortL2,
		Line: l, Mask: mask, Sync: sync, NeedsData: needsData,
	}))
}

// Atomic implements coherence.L1: DeNovoSync0 registers synchronization
// reads and writes; once a CU owns the sync variable, all thread blocks
// on that CU hit locally until ownership moves. Locally scoped
// synchronization (DH) executes at the L1 without eager ownership.
func (c *Controller) Atomic(op coherence.AtomicOp, w mem.Word, operand, operand2 uint32, scope coherence.Scope, cb func(uint32)) {
	if scope == coherence.ScopeLocal && c.opts.LazyWrites {
		// Fully lazy local synchronization (the delayed-ownership
		// variant): perform at the L1 on the cached/buffered value and
		// register at the next global release. Under frequent global
		// synchronization the deferred registrations land on the
		// release's critical path, so the default DH registers local
		// sync eagerly instead (below) — the CU-level scope handling
		// already skips the invalidate/flush, which is where DH's win
		// lives.
		c.localAtomic(op, w, operand, operand2, cb)
		return
	}
	l := w.LineOf()
	if e := c.cache.Lookup(l); e != nil && e.State[w.Index()] == cache.Registered && !c.regs.Has(uint64(w)) {
		// Synchronization hit: the variable is owned here.
		next, ret := op.Apply(e.Data[w.Index()], operand, operand2)
		e.Data[w.Index()] = next
		c.st.IncKey(kL1SyncHits, 1)
		if c.rec != nil {
			c.rec.Emit(obs.L1SyncHit, int32(c.node), uint64(w))
		}
		c.meter.L1Access(1)
		c.scheduleSyncDone(coherence.L1HitCycles, ret, cb)
		c.serviceDeferred(w)
		return
	}
	if p, ok := c.pendingOwn.Ptr(uint64(w)); ok && !c.regs.Has(uint64(w)) {
		next, ret := op.Apply(*p, operand, operand2)
		*p = next
		c.st.IncKey(kL1SyncHits, 1)
		if c.rec != nil {
			c.rec.Emit(obs.L1SyncHit, int32(c.node), uint64(w))
		}
		c.scheduleSyncDone(coherence.L1HitCycles, ret, cb)
		return
	}
	txn, _ := c.regs.Get(uint64(w))
	if txn == nil {
		txn = c.newRegTxn()
		if c.opts.LazyWrites && c.lazy.Has(uint64(w)) {
			// A delayed (lazy) slot for this word sits in the store
			// buffer; this registration absorbs it. Leaving the mark
			// would let a release batch (or a space kick) re-register
			// the word, overwriting this transaction — losing its sync
			// waiters and sending a second request whose acknowledgment
			// finds no transaction.
			c.lazy.Delete(uint64(w))
			txn.dataWrite = true
		}
		c.regs.Put(uint64(w), txn)
		c.pin(l)
		c.st.IncKey(kL1SyncMisses, 1)
		if c.rec != nil {
			c.rec.Emit(obs.L1SyncMiss, int32(c.node), uint64(w))
		}
		if c.opts.SyncBackoff && op == coherence.AtomicLoad {
			if lost, ok := c.lostAt.Get(uint64(w)); ok && c.eng.Now()-lost < syncBackoffWindow {
				// DeNovoSync: a reader that just lost this word backs
				// off before re-registering, breaking read-read
				// ownership ping-pong.
				d, _ := c.backoffDelay.Get(uint64(w))
				if d == 0 {
					d = syncBackoffMin
				} else {
					d = min(d*2, syncBackoffMax)
				}
				c.backoffDelay.Put(uint64(w), d)
				c.st.IncKey(kL1SyncBackoffs, 1)
				c.eng.Schedule(d, func() { c.sendRegReq(l, mem.Bit(w.Index()), true, true) })
			} else {
				c.backoffDelay.Delete(uint64(w))
				c.sendRegReq(l, mem.Bit(w.Index()), true, true)
			}
		} else {
			c.sendRegReq(l, mem.Bit(w.Index()), true, true)
		}
	} else {
		// Same-CU coalescing in the MSHR: another thread block on this
		// CU already has a registration in flight for this word.
		c.st.IncKey(kL1SyncCoalesced, 1)
	}
	txn.syncWaiters = append(txn.syncWaiters, syncOp{op, operand, operand2, cb})
}

// localAtomic (DH) performs a locally scoped synchronization at the L1
// without obtaining ownership: the result is buffered like a lazy write
// and registered at the next global release.
func (c *Controller) localAtomic(op coherence.AtomicOp, w mem.Word, operand, operand2 uint32, cb func(uint32)) {
	l := w.LineOf()
	finish := func(cur uint32) {
		next, ret := op.Apply(cur, operand, operand2)
		c.st.IncKey(kL1SyncLocal, 1)
		c.meter.L1Access(1)
		if e := c.cache.Peek(l); e != nil && e.State[w.Index()] == cache.Registered {
			e.Data[w.Index()] = next
			c.scheduleSyncDone(coherence.L1HitCycles, ret, cb)
			return
		}
		if !op.WritesBack(cur, next) {
			// A pure synchronization read must not become a lazy write:
			// registering the read value at the next release would clobber
			// a concurrent writer's update.
			c.scheduleSyncDone(coherence.L1HitCycles, ret, cb)
			return
		}
		if c.sb.Full() {
			if _, ok := c.sb.Lookup(w); !ok {
				c.stallForSpace(func() { c.localAtomic(op, w, operand, operand2, cb) })
				return
			}
		}
		c.sb.Insert(w, next)
		// Mark delayed only if no registration is already in flight for
		// this slot (a global release may have kicked it); re-marking
		// would double-register and corrupt the transaction state.
		if !c.regs.Has(uint64(w)) {
			c.lazy.Put(uint64(w), true)
		}
		if e := c.cache.Peek(l); e != nil && e.State[w.Index()] == cache.Valid {
			e.Data[w.Index()] = next
		}
		c.scheduleSyncDone(coherence.L1HitCycles, ret, cb)
	}
	if v, ok := c.sb.Lookup(w); ok {
		finish(v)
		return
	}
	if v, ok := c.pendingOwn.Get(uint64(w)); ok {
		finish(v)
		return
	}
	if e := c.cache.Lookup(l); e != nil && e.State[w.Index()] != cache.Invalid {
		finish(e.Data[w.Index()])
		return
	}
	// Miss: fetch the line, then retry from scratch — the retry re-reads
	// through the store buffer and cache so concurrent local atomics to
	// the same word cannot lose updates.
	c.ReadLine(l, mem.Bit(w.Index()), func([mem.WordsPerLine]uint32) {
		c.localAtomic(op, w, operand, operand2, cb)
	})
}

// Acquire implements coherence.L1: DeNovo's selective self-invalidation
// spares Registered (owned, up-to-date) words — the source of its data
// reuse across synchronization points — and, with the read-only
// optimization, Valid words in the read-only region.
func (c *Controller) Acquire(scope coherence.Scope) {
	if scope == coherence.ScopeLocal || c.faultNoAcqInval {
		return
	}
	ro := c.opts.ReadOnly
	n := c.cache.Invalidate(func(e *cache.Entry, i int) bool {
		if e.State[i] == cache.Registered {
			return true
		}
		return ro != nil && ro(e.Line.Word(i))
	})
	c.epoch++
	// Flash/selective invalidation is a bulk clear of state bits, not a
	// per-frame tag walk; charge a single tag-array access.
	c.meter.L1Tag(1)
	c.st.IncKey(kL1FlashInvalidations, 1)
	c.st.IncKey(kL1InvalidatedWords, uint64(n))
	if c.rec != nil {
		c.rec.Emit(obs.SyncAcquire, int32(c.node), uint64(n))
	}
}

// DisableAcquireInvalidation is test-only fault injection: it makes
// globally scoped acquires skip the selective self-invalidation, so
// stale Valid words survive synchronization. The litmus conformance
// harness uses it to verify that it detects consistency violations.
func (c *Controller) DisableAcquireInvalidation() { c.faultNoAcqInval = true }

// EnableInvariantChecks arms the protocol sanitizer
// (machine.Config.Invariants): hot-path assertions panic the moment a
// lazily delayed slot is re-registered over an in-flight transaction
// (the lazy-reg-exclusive invariant; see CheckInvariants for the
// quiesced-state suite). The assertions schedule no events and touch
// no counters, so an armed run stays cycle- and report-identical to an
// unarmed one.
func (c *Controller) EnableInvariantChecks() { c.invariants = true }

// Release implements coherence.L1: a global release completes when
// every buffered write has obtained ownership — no data moves, unlike
// the GPU protocol's writethrough flush. Lazy (DH) slots start their
// registration here. Local releases complete immediately.
func (c *Controller) Release(scope coherence.Scope, cb func()) {
	if scope == coherence.ScopeLocal {
		c.eng.Schedule(coherence.L1HitCycles, cb)
		return
	}
	if c.rec != nil {
		c.rec.Emit(obs.SyncRelease, int32(c.node), uint64(c.sb.Len()))
	}
	if c.lazy.Len() > 0 {
		// Batch delayed registrations by line. The line lookup is a
		// linear scan over the batch built so far — a release covers few
		// distinct lines, and the scan keeps this path allocation-free.
		c.regBatch = c.regBatch[:0]
		c.sbScratch = c.sb.AppendEntries(c.sbScratch[:0])
		for _, e := range c.sbScratch {
			if !c.lazy.Has(uint64(e.Word)) {
				continue
			}
			c.lazy.Delete(uint64(e.Word))
			l := e.Word.LineOf()
			gi := -1
			for i := range c.regBatch {
				if c.regBatch[i].line == l {
					gi = i
					break
				}
			}
			if gi < 0 {
				gi = len(c.regBatch)
				c.regBatch = append(c.regBatch, lineMask{line: l})
			}
			c.regBatch[gi].mask |= mem.Bit(e.Word.Index())
			if c.invariants && c.regs.Has(uint64(e.Word)) {
				panic(fmt.Sprintf("denovo: lazy-reg-exclusive: node %d release batched delayed %v over its in-flight registration", c.node, e.Word))
			}
			txn := c.newRegTxn()
			txn.dataWrite = true
			c.regs.Put(uint64(e.Word), txn)
			c.pin(l)
		}
		for _, lm := range c.regBatch {
			c.sendRegReq(lm.line, lm.mask, false, false)
		}
	}
	entries := c.sb.AppendEntries(c.sbScratch[:0])
	c.sbScratch = entries
	if len(entries) == 0 {
		c.eng.Schedule(coherence.L1HitCycles, cb)
		return
	}
	c.st.IncKey(kSbReleaseDrains, 1)
	var w *relWaiter
	if n := len(c.relWaiterFree); n > 0 {
		w = c.relWaiterFree[n-1]
		c.relWaiterFree[n-1] = nil
		c.relWaiterFree = c.relWaiterFree[:n-1]
	} else {
		w = &relWaiter{}
	}
	w.cb = cb
	for _, e := range entries {
		w.pending.Put(uint64(e.Word), true)
	}
	c.relWaiters = append(c.relWaiters, w)
}

// Drained implements coherence.L1.
func (c *Controller) Drained() bool {
	return c.sb.Len() == 0 && c.regs.Len() == 0 && c.reads.Len() == 0 &&
		c.pendingOwn.Len() == 0 && c.victim.Len() == 0
}

// CheckInvariants validates the sanitizer's quiesced-state suite for
// this controller (machine.CheckInvariants calls it after every kernel
// when Config.Invariants is set): the store buffer's structure
// (sb-fifo), every lazy mark backed by a live buffered write
// (lazy-orphan), no word both delayed and mid-registration
// (lazy-reg-exclusive), and the victim buffer's value/state tables in
// step (wb-lost). It only reads state, so armed runs stay
// report-identical to unarmed ones.
func (c *Controller) CheckInvariants() error {
	if err := c.sb.CheckInvariants(); err != nil {
		return fmt.Errorf("node %d: %w", c.node, err)
	}
	if c.lazy.Len() > 0 {
		buffered := make(map[mem.Word]bool, c.sb.Len())
		for _, e := range c.sb.Entries() {
			buffered[e.Word] = true
		}
		var err error
		c.lazy.ForEach(func(k uint64, _ bool) {
			w := mem.Word(k)
			if err != nil {
				return
			}
			if !buffered[w] {
				err = fmt.Errorf("denovo: lazy-orphan: node %d delays %v with no buffered write", c.node, w)
			} else if c.regs.Has(uint64(w)) {
				err = fmt.Errorf("denovo: lazy-reg-exclusive: node %d has %v both delayed and mid-registration", c.node, w)
			}
		})
		if err != nil {
			return err
		}
	}
	if c.victim.Len() != c.vstate.Len() {
		return fmt.Errorf("denovo: wb-lost: node %d victim buffer holds %d values but %d states", c.node, c.victim.Len(), c.vstate.Len())
	}
	return nil
}

// sbFreed services stalled writers after store-buffer slots free.
func (c *Controller) sbFreed() {
	for len(c.spaceWaiters) > 0 && !c.sb.Full() {
		fn := c.spaceWaiters[0]
		c.spaceWaiters = c.spaceWaiters[1:]
		fn()
	}
	// If waiters remain with a full buffer, keep the drain moving: a
	// woken writer that finished (instead of stalling again) must not
	// strand the rest.
	if len(c.spaceWaiters) > 0 && c.sb.Full() {
		c.kickOldestLazy()
	}
}

// notifyReleases tells waiting releases that word w has obtained
// ownership (left the store buffer); a release completes when every
// entry it was issued over is registered.
func (c *Controller) notifyReleases(w mem.Word) {
	remaining := c.relWaiters[:0]
	for _, rw := range c.relWaiters {
		rw.pending.Delete(uint64(w))
		if rw.pending.Len() == 0 {
			cb := rw.cb
			c.eng.Schedule(0, cb)
			rw.cb = nil
			rw.pending.Reset()
			c.relWaiterFree = append(c.relWaiterFree, rw)
		} else {
			remaining = append(remaining, rw)
		}
	}
	c.relWaiters = remaining
}

// Deliver implements noc.Handler.
func (c *Controller) Deliver(p noc.Packet) {
	msg, ok := p.(*coherence.Msg)
	if !ok {
		panic(fmt.Sprintf("denovo: non-coherence packet %T", p))
	}
	switch msg.Kind {
	case coherence.ReadResp:
		c.fill(msg)
	case coherence.ReadFwd:
		c.readFwd(msg)
	case coherence.RegAck:
		c.ownershipArrived(msg.Line, msg.Mask, msg.Data, msg.NeedsData)
	case coherence.RegXfer:
		c.ownershipArrived(msg.Line, msg.Mask, msg.Data, true)
	case coherence.RegFwd:
		c.regFwd(msg)
	case coherence.WriteBackAck:
		c.writeBackAck(msg)
	case coherence.DirectReadReq:
		c.directRead(msg)
	case coherence.ReadNack:
		c.readNack(msg)
	default:
		panic(fmt.Sprintf("denovo: unexpected message %v", msg.Kind))
	}
	// The message is fully processed (handlers copy anything they defer
	// into pooled messages of their own); recycle it.
	c.pool.Put(msg)
}

// fill handles read data arriving from the L2 bank or a forwarding
// owner L1.
func (c *Controller) fill(msg *coherence.Msg) {
	if c.opts.DirectTransfer {
		if c.home(msg.Line) == msg.Src {
			c.lastSupplier.Delete(uint64(msg.Line))
		} else {
			c.lastSupplier.Put(uint64(msg.Line), msg.Src)
		}
	}
	txn, _ := c.reads.Get(msg.ID)
	if txn == nil {
		// The transaction completed from an earlier response that
		// already covered these words (e.g. a supplementary request
		// raced a generous line response). Nothing to do.
		c.st.IncKey(kL1FillsLate, 1)
		return
	}
	newWords := msg.Mask &^ txn.arrived
	txn.arrived |= msg.Mask
	// Install in cache only while no acquire intervened.
	if txn.epoch == c.epoch && newWords != 0 {
		if e := c.frame(msg.Line); e != nil {
			for i := 0; i < mem.WordsPerLine; i++ {
				if newWords.Has(i) && e.State[i] == cache.Invalid {
					e.Data[i] = msg.Data[i]
					e.State[i] = cache.Valid
				}
			}
			c.cache.Touch(e)
			c.meter.L1Access(1)
		}
	} else if txn.epoch != c.epoch {
		c.st.IncKey(kL1FillsDroppedStale, 1)
	}
	// Complete waiters whose demanded words have all arrived.
	remaining := txn.waiters[:0]
	for _, w := range txn.waiters {
		for i := 0; i < mem.WordsPerLine; i++ {
			if w.need.Has(i) && msg.Mask.Has(i) {
				w.vals[i] = msg.Data[i]
				w.need &^= mem.Bit(i)
			}
		}
		if w.need == 0 {
			c.scheduleReadDone(coherence.L1HitCycles, w.vals, w.cb)
		} else {
			remaining = append(remaining, w)
		}
	}
	txn.waiters = remaining
	if txn.arrived&txn.requested == txn.requested {
		if len(txn.waiters) != 0 {
			panic("denovo: read transaction complete with unsatisfied waiters")
		}
		c.reads.Delete(msg.ID)
		if id, _ := c.lineTxn.Get(uint64(txn.line)); id == msg.ID {
			c.lineTxn.Delete(uint64(txn.line))
		}
		c.unpin(txn.line)
		c.freeReadTxn(txn)
	}
}

// readFwd serves a data read forwarded by the registry for words this
// L1 owns; the response goes directly to the requester (3-hop). A
// forwarded read can outrun the ownership data itself: the registry
// makes this node the owner as soon as it processes the registration
// request, so a read forwarded right after can arrive here before the
// RegAck/RegXfer carrying the value. Such words are deferred and served
// when ownership arrives.
func (c *Controller) readFwd(msg *coherence.Msg) {
	var data [mem.WordsPerLine]uint32
	var now mem.WordMask
	for i := 0; i < mem.WordsPerLine; i++ {
		if !msg.Mask.Has(i) {
			continue
		}
		w := msg.Line.Word(i)
		// Priority matters: a pendingOwn copy (current ownership,
		// awaiting a frame) is newer than any victim-buffer copy left
		// over from an earlier eviction of the same word.
		if e := c.cache.Peek(msg.Line); e != nil && e.State[i] == cache.Registered {
			data[i] = e.Data[i]
		} else if v, ok := c.pendingOwn.Get(uint64(w)); ok {
			data[i] = v
		} else if v, ok := c.victim.Get(w); ok {
			data[i] = v
		} else if c.regs.Has(uint64(w)) {
			m := c.pool.NewMsg(*msg)
			m.Mask = mem.Bit(i)
			q := c.deferredReads.Upsert(uint64(w))
			*q = append(*q, m)
			c.st.IncKey(kL1ReadsDeferred, 1)
			continue
		} else {
			panic(fmt.Sprintf("denovo: node %d forwarded read for %v it does not own", c.node, w))
		}
		now |= mem.Bit(i)
	}
	if now == 0 {
		return
	}
	c.st.IncKey(kL1RemoteReadsServed, 1)
	c.meter.L1Access(1)
	c.mesh.Send(c.pool.NewMsg(coherence.Msg{
		Kind: coherence.ReadResp, Src: c.node, Dst: msg.Requester, Port: noc.PortL1,
		Line: msg.Line, Mask: now, Data: data, ID: msg.ID,
	}))
}

// ownershipArrived handles RegAck (from the registry) and RegXfer (from
// the previous owner): words become Registered here, buffered writes
// drain into the cache, and queued sync operations are serviced — all
// same-CU waiters before any deferred remote request (DeNovoSync0's
// MSHR coalescing).
func (c *Controller) ownershipArrived(l mem.Line, mask mem.WordMask, data [mem.WordsPerLine]uint32, carriesData bool) {
	e := c.frame(l)
	for i := 0; i < mem.WordsPerLine; i++ {
		if !mask.Has(i) {
			continue
		}
		w := l.Word(i)
		// Establish the word's current value.
		var val uint32
		if v, ok := c.sb.Remove(w); ok {
			val = v // our buffered write supersedes any carried value
			// Wake stalled writers after this delivery finishes
			// (zero-delay event) to avoid reentrant state mutation.
			c.eng.ScheduleTask(0, &c.sbFreedT)
			c.notifyReleases(w)
		} else if carriesData {
			val = data[i]
		}
		txn, _ := c.regs.Get(uint64(w))
		if txn == nil {
			panic(fmt.Sprintf("denovo: node %d ownership for %v without transaction", c.node, w))
		}
		c.st.IncKey(kL1OwnershipWords, 1)
		waiters := txn.syncWaiters
		if c.opts.NoMSHRCoalescing && len(waiters) > 1 {
			// Ablation: service only the first waiter now; the rest
			// re-register one by one after the deferred remote (if any)
			// is serviced, modelling a protocol without same-CU
			// coalescing.
			head, rest := waiters[0], waiters[1:]
			waiters = []syncOp{head}
			txn.syncWaiters = nil
			defer func() {
				for _, op := range rest {
					op := op
					c.eng.Schedule(1, func() {
						c.Atomic(op.op, w, op.operand, op.operand2, coherence.ScopeGlobal, op.cb)
					})
				}
			}()
		}
		delay := sim.Time(coherence.L1HitCycles)
		for _, op := range waiters {
			next, ret := op.op.Apply(val, op.operand, op.operand2)
			val = next
			c.scheduleSyncDone(delay, ret, op.cb)
			delay++
			c.st.IncKey(kL1SyncServicedOnArrival, 1)
		}
		c.regs.Delete(uint64(w))
		c.unpin(l)
		if !c.opts.NoMSHRCoalescing || txn.syncWaiters == nil {
			c.freeRegTxn(txn)
		}
		// Install.
		if e != nil {
			e.Data[i] = val
			e.State[i] = cache.Registered
			c.cache.Touch(e)
		} else {
			c.pendingOwn.Put(uint64(w), val)
			c.scheduleRetryInstall(2, w)
		}
		c.meter.L1Access(1)
		// Reads forwarded while the registration was in flight are served
		// first (the registry ordered them before any later ownership
		// transfer), then the distributed queue passes ownership onward if
		// a remote request was queued behind our own accesses.
		c.serveDeferredReads(w)
		c.serviceDeferred(w)
	}
}

// retryInstall moves a frameless owned word into the cache once a frame
// frees up.
func (c *Controller) retryInstall(w mem.Word) {
	val, ok := c.pendingOwn.Get(uint64(w))
	if !ok {
		return // transferred away meanwhile
	}
	e := c.frame(w.LineOf())
	if e == nil {
		c.eng.Schedule(2, func() { c.retryInstall(w) })
		return
	}
	c.pendingOwn.Delete(uint64(w))
	e.Data[w.Index()] = val
	e.State[w.Index()] = cache.Registered
	c.cache.Touch(e)
	c.serviceDeferred(w)
}

// serveDeferredReads replays forwarded reads that were waiting for this
// word's ownership data to arrive.
func (c *Controller) serveDeferredReads(w mem.Word) {
	msgs, _ := c.deferredReads.Get(uint64(w))
	if len(msgs) == 0 {
		return
	}
	c.deferredReads.Delete(uint64(w))
	for _, m := range msgs {
		c.readFwd(m)
		c.pool.Put(m)
	}
}

// regFwd handles the registry telling us to pass ownership of words to
// a new owner. Words transferable immediately go out as one batched
// RegXfer (whole-line migrations cost one message, like a writethrough
// would); words with our own registration still in flight defer
// per-word into the distributed queue.
func (c *Controller) regFwd(msg *coherence.Msg) {
	var now mem.WordMask
	for i := 0; i < mem.WordsPerLine; i++ {
		if !msg.Mask.Has(i) {
			continue
		}
		w := msg.Line.Word(i)
		if vs, ok := c.vstate.Ptr(uint64(w)); ok && !vs.servicedFwd {
			// This forward targets the ownership we already evicted
			// (the registry had not yet processed our writeback when it
			// forwarded); serve it from the victim copy even if we have
			// a new registration of our own in flight — that new
			// request is ordered *after* this one at the registry.
			now |= mem.Bit(i)
			continue
		}
		if c.regs.Has(uint64(w)) {
			// Our own registration (and coalesced same-CU accesses) are
			// still in flight; the remote request waits its turn in the
			// distributed queue.
			if c.deferredFwd.Has(uint64(w)) {
				panic(fmt.Sprintf("denovo: node %d second deferred forward for %v", c.node, w))
			}
			m := c.pool.NewMsg(*msg)
			m.Mask = mem.Bit(i)
			c.deferredFwd.Put(uint64(w), m)
			c.st.IncKey(kL1FwdDeferred, 1)
			continue
		}
		now |= mem.Bit(i)
	}
	if now != 0 {
		c.transferMask(msg.Line, now, msg.Requester, msg.Sync, msg.ID)
	}
}

// transfer passes ownership and data of word w to the requester.
func (c *Controller) transfer(w mem.Word, to noc.NodeID, sync bool, id uint64) {
	c.transferMask(w.LineOf(), mem.Bit(w.Index()), to, sync, id)
}

// transferMask passes ownership and data of a set of words of one line
// to the requester in a single RegXfer.
func (c *Controller) transferMask(l mem.Line, mask mem.WordMask, to noc.NodeID, sync bool, id uint64) {
	var data [mem.WordsPerLine]uint32
	e := c.cache.Peek(l)
	for i := 0; i < mem.WordsPerLine; i++ {
		if !mask.Has(i) {
			continue
		}
		w := l.Word(i)
		// As in readFwd: pendingOwn (current ownership) outranks any
		// stale victim-buffer copy of the same word.
		if e != nil && e.State[i] == cache.Registered {
			data[i] = e.Data[i]
			e.State[i] = cache.Invalid
		} else if v, ok := c.pendingOwn.Get(uint64(w)); ok {
			data[i] = v
			c.pendingOwn.Delete(uint64(w))
		} else if v, ok := c.victim.Get(w); ok {
			data[i] = v
			vs, vok := c.vstate.Ptr(uint64(w))
			if vok && vs.rejectedKnown {
				c.victim.Drop(w)
				c.vstate.Delete(uint64(w))
			} else if vok {
				vs.servicedFwd = true
			}
		} else {
			panic(fmt.Sprintf("denovo: node %d cannot transfer %v it does not own", c.node, w))
		}
		c.st.IncKey(kL1OwnershipTransfers, 1)
		if c.opts.SyncBackoff {
			c.lostAt.Put(uint64(w), c.eng.Now())
		}
	}
	if e != nil && !e.HasAny(cache.Valid) && !e.HasAny(cache.Registered) && !e.Pinned {
		e.Tag = false
	}
	c.meter.L1Access(1)
	c.mesh.Send(c.pool.NewMsg(coherence.Msg{
		Kind: coherence.RegXfer, Src: c.node, Dst: to, Port: noc.PortL1,
		Line: l, Mask: mask, Data: data, Sync: sync, ID: id,
	}))
}

// serviceDeferred passes ownership to a queued remote requester once
// local accesses have been serviced.
func (c *Controller) serviceDeferred(w mem.Word) {
	msg, _ := c.deferredFwd.Get(uint64(w))
	if msg == nil || c.regs.Has(uint64(w)) {
		return
	}
	c.deferredFwd.Delete(uint64(w))
	c.transfer(w, msg.Requester, msg.Sync, msg.ID)
	c.pool.Put(msg)
}

// directRead serves a predicted-owner read: if every requested word is
// registered here, respond directly (a 2-hop hit); otherwise nack so
// the requester falls back to the registry.
func (c *Controller) directRead(msg *coherence.Msg) {
	e := c.cache.Peek(msg.Line)
	var have mem.WordMask
	var data [mem.WordsPerLine]uint32
	if e != nil {
		for i := 0; i < mem.WordsPerLine; i++ {
			if msg.Mask.Has(i) && e.State[i] == cache.Registered {
				have |= mem.Bit(i)
				data[i] = e.Data[i]
			}
		}
	}
	if have == msg.Mask {
		c.st.IncKey(kL1DirectReadsServed, 1)
		c.meter.L1Access(1)
		c.mesh.Send(c.pool.NewMsg(coherence.Msg{
			Kind: coherence.ReadResp, Src: c.node, Dst: msg.Src, Port: noc.PortL1,
			Line: msg.Line, Mask: have, Data: data, ID: msg.ID,
		}))
		return
	}
	c.st.IncKey(kL1DirectReadsNacked, 1)
	c.mesh.Send(c.pool.NewMsg(coherence.Msg{
		Kind: coherence.ReadNack, Src: c.node, Dst: msg.Src, Port: noc.PortL1,
		Line: msg.Line, Mask: msg.Mask, ID: msg.ID,
	}))
}

// readNack falls a missed direct read back to the registry.
func (c *Controller) readNack(msg *coherence.Msg) {
	txn, _ := c.reads.Get(msg.ID)
	if txn == nil || !txn.direct {
		return // transaction already satisfied some other way
	}
	txn.direct = false
	c.lastSupplier.Delete(uint64(msg.Line))
	c.mesh.Send(c.pool.NewMsg(coherence.Msg{
		Kind: coherence.ReadReq, Src: c.node, Dst: c.home(msg.Line), Port: noc.PortL2,
		Line: msg.Line, Mask: txn.requested &^ txn.arrived, ID: msg.ID,
	}))
}

// writeBackAck resolves victim-buffer entries. Accepted words are done;
// rejected words had their ownership reassigned before our writeback
// arrived, so a forward either already came (serviced from the victim
// copy) or is about to.
func (c *Controller) writeBackAck(msg *coherence.Msg) {
	for i := 0; i < mem.WordsPerLine; i++ {
		if !msg.Mask.Has(i) {
			continue
		}
		w := msg.Line.Word(i)
		vs, ok := c.vstate.Ptr(uint64(w))
		if !ok {
			continue // already fully resolved
		}
		if msg.WBAccepted.Has(i) || vs.servicedFwd {
			c.victim.Drop(w)
			c.vstate.Delete(uint64(w))
		} else {
			vs.rejectedKnown = true
		}
	}
}

// Test and host hooks.

// CacheWordState exposes a word's L1 state.
func (c *Controller) CacheWordState(w mem.Word) cache.WordState {
	if c.pendingOwn.Has(uint64(w)) {
		return cache.Registered
	}
	if e := c.cache.Peek(w.LineOf()); e != nil {
		return e.State[w.Index()]
	}
	return cache.Invalid
}

// PeekWord returns the L1-visible value of a word, for functional host
// reads.
func (c *Controller) PeekWord(w mem.Word) (uint32, bool) {
	if v, ok := c.sb.Lookup(w); ok {
		return v, true
	}
	if v, ok := c.pendingOwn.Get(uint64(w)); ok {
		return v, true
	}
	if e := c.cache.Peek(w.LineOf()); e != nil && e.State[w.Index()] != cache.Invalid {
		return e.Data[w.Index()], true
	}
	if v, ok := c.victim.Get(w); ok {
		return v, true
	}
	return 0, false
}

// DebugDump returns store-buffer slots with their lazy/pending state
// (diagnostic aid for tests).
func (c *Controller) DebugDump() string {
	out := ""
	for _, e := range c.sb.Entries() {
		out += fmt.Sprintf("word %v lazy=%v regs=%v\n", e.Word, c.lazy.Has(uint64(e.Word)), c.regs.Has(uint64(e.Word)))
	}
	out += fmt.Sprintf("spaceWaiters=%d relWaiters=%d\n", len(c.spaceWaiters), len(c.relWaiters))
	c.regs.ForEach(func(k uint64, txn *regTxn) {
		out += fmt.Sprintf("reg pending %v dataWrite=%v waiters=%d deferredHere=%v\n", mem.Word(k), txn.dataWrite, len(txn.syncWaiters), c.deferredFwd.Has(k))
	})
	c.deferredFwd.ForEach(func(k uint64, _ *coherence.Msg) {
		out += fmt.Sprintf("deferred fwd for %v (regs=%v)\n", mem.Word(k), c.regs.Has(k))
	})
	return out
}

// StoreBufferLen exposes store-buffer occupancy for tests.
func (c *Controller) StoreBufferLen() int { return c.sb.Len() }

// OwnsWord reports whether this L1 currently holds the word in
// Registered state (or in flight structures) — the L1 side of the
// registry's single-owner invariant.
func (c *Controller) OwnsWord(w mem.Word) bool {
	if e := c.cache.Peek(w.LineOf()); e != nil && e.State[w.Index()] == cache.Registered {
		return true
	}
	if c.pendingOwn.Has(uint64(w)) {
		return true
	}
	if _, ok := c.victim.Get(w); ok {
		return true
	}
	return false
}

// HostInvalidateLine implements coherence.L1.
func (c *Controller) HostInvalidateLine(l mem.Line, mask mem.WordMask) {
	e := c.cache.Peek(l)
	if e == nil {
		return
	}
	for i := 0; i < mem.WordsPerLine; i++ {
		if mask&mem.Bit(i) != 0 && e.State[i] == cache.Valid {
			e.State[i] = cache.Invalid
		}
	}
}

// HostSteal functionally removes this L1's ownership of a word and
// returns its value, for host writes between kernels (the machine
// recalls the word to the registry). It requires a quiesced controller.
func (c *Controller) HostSteal(w mem.Word) (uint32, bool) {
	e := c.cache.Peek(w.LineOf())
	if e == nil || e.State[w.Index()] != cache.Registered {
		return 0, false
	}
	v := e.Data[w.Index()]
	e.State[w.Index()] = cache.Invalid
	return v, true
}

// HostDropClean applies the controller's acquire semantics at a
// phase-transition drain: every word the protocol may not retain
// across a synchronization point becomes Invalid. With the read-only
// optimization, Valid words in the software-conveyed read-only region
// survive — by contract nothing writes them in any phase, so they
// cannot go stale while another protocol set runs. Ownership cannot
// survive (the registry is being emptied), so unlike Acquire the
// predicate never spares Registered words; it requires a quiesced
// controller whose registrations have already been recalled (HostSteal
// per registered word), and finding leftover ownership here means the
// registry and this L1 disagree, which the drain must not paper over.
// Returns the number of clean words dropped.
func (c *Controller) HostDropClean() (int, error) {
	if !c.Drained() {
		return 0, fmt.Errorf("denovo: phase-drain: node %d not drained (sb=%d regs=%d reads=%d own=%d victim=%d)",
			c.node, c.sb.Len(), c.regs.Len(), c.reads.Len(), c.pendingOwn.Len(), c.victim.Len())
	}
	if n := c.cache.CountWords(cache.Registered); n != 0 {
		return 0, fmt.Errorf("denovo: phase-drain: node %d still owns %d words after recall", c.node, n)
	}
	ro := c.opts.ReadOnly
	return c.cache.Invalidate(func(e *cache.Entry, i int) bool {
		return ro != nil && ro(e.Line.Word(i))
	}), nil
}
