package denovo

import (
	"strings"
	"testing"

	"denovogpu/internal/coherence"
	"denovogpu/internal/mem"
	"denovogpu/internal/testrig"
)

// The sanitizer tests below hand-corrupt controller state into the
// exact shapes the model checker's invariants forbid and verify that
// the armed controller refuses them. The release-path case is the
// mechanism of the lazy-sync registration overwrite bug (pinned in
// internal/litmus): before the fix, a release could batch a delayed
// slot whose word already had a sync registration in flight,
// overwriting the transaction and losing its waiters.

func lazyCtl(r *testrig.Rig) *Controller {
	c := newCtl(r, 0, Options{LazyWrites: true})
	c.EnableInvariantChecks()
	return c
}

func TestSanitizerKickOverRegistrationPanics(t *testing.T) {
	r := testrig.New()
	c := lazyCtl(r)
	w := mem.Addr(0x40).WordOf()
	c.sb.Insert(w, 1)
	c.lazy.Put(uint64(w), true)
	c.regs.Put(uint64(w), &regTxn{})
	defer func() {
		if rec := recover(); rec == nil {
			t.Fatal("kicking a delayed word with a registration in flight did not panic")
		} else if !strings.Contains(rec.(string), "lazy-reg-exclusive") {
			t.Fatalf("panic %q does not name the invariant", rec)
		}
	}()
	c.kickOldestLazy()
}

func TestSanitizerReleaseOverRegistrationPanics(t *testing.T) {
	r := testrig.New()
	c := lazyCtl(r)
	w := mem.Addr(0x40).WordOf()
	c.sb.Insert(w, 1)
	c.lazy.Put(uint64(w), true)
	c.regs.Put(uint64(w), &regTxn{})
	defer func() {
		if rec := recover(); rec == nil {
			t.Fatal("release batching a delayed word with a registration in flight did not panic")
		} else if !strings.Contains(rec.(string), "lazy-reg-exclusive") {
			t.Fatalf("panic %q does not name the invariant", rec)
		}
	}()
	c.Release(coherence.ScopeGlobal, func() {})
}

func TestSanitizerQuiesceChecks(t *testing.T) {
	r := testrig.New()
	c := lazyCtl(r)
	w := mem.Addr(0x40).WordOf()
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("fresh controller: %v", err)
	}

	// A lazy mark with no buffered write is an orphan.
	c.lazy.Put(uint64(w), true)
	if err := c.CheckInvariants(); err == nil || !strings.Contains(err.Error(), "lazy-orphan") {
		t.Fatalf("orphan lazy mark: got %v, want lazy-orphan", err)
	}
	c.sb.Insert(w, 7)
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("backed lazy mark: %v", err)
	}

	// A delayed word must not also be mid-registration.
	c.regs.Put(uint64(w), &regTxn{})
	if err := c.CheckInvariants(); err == nil || !strings.Contains(err.Error(), "lazy-reg-exclusive") {
		t.Fatalf("delayed+registering word: got %v, want lazy-reg-exclusive", err)
	}
	c.regs.Delete(uint64(w))

	// Victim values and states must stay paired.
	c.victim.Put(w, 3)
	if err := c.CheckInvariants(); err == nil || !strings.Contains(err.Error(), "wb-lost") {
		t.Fatalf("unpaired victim value: got %v, want wb-lost", err)
	}
}
