package denovo

import (
	"math/rand"
	"testing"

	"denovogpu/internal/coherence"
	"denovogpu/internal/mem"
	"denovogpu/internal/noc"
	"denovogpu/internal/testrig"
)

// TestTinyCacheEvictionStress hammers ownership migration and eviction
// with deliberately tiny caches: 8 controllers performing random writes
// and syncs over a working set far larger than their L1s, forcing
// constant writebacks, victim-buffer races, and registry churn. The
// final memory image must match a sequential model per word (each word
// is only ever written by its designated "owner" controller — race-free
// data — while all controllers contend on shared sync words).
func TestTinyCacheEvictionStress(t *testing.T) {
	const (
		nodes    = 8
		words    = 512 // 32 KB working set vs 1 KB caches
		opsEach  = 300
		syncVars = 4
	)
	for _, seed := range []int64{3, 9} {
		r := testrig.New()
		var ctls []*Controller
		for i := 0; i < nodes; i++ {
			// 1 KB, 2-way: 8 sets — constant eviction.
			ctls = append(ctls, New(noc.NodeID(i), r.Eng, r.Mesh, r.Stats, r.Meter, 1024, 2, 16, Options{}))
		}
		rng := rand.New(rand.NewSource(seed))
		ref := make([]uint32, words)
		syncDone := 0
		dataBase := mem.Addr(0x10000)
		syncBase := mem.Addr(0x90000)

		// Each controller runs a script of writes to ITS OWN words
		// (word w belongs to controller w % nodes) and atomic adds to
		// shared sync vars.
		type step struct {
			isSync bool
			idx    int
			val    uint32
		}
		scripts := make([][]step, nodes)
		for n := 0; n < nodes; n++ {
			for k := 0; k < opsEach; k++ {
				if rng.Intn(4) == 0 {
					scripts[n] = append(scripts[n], step{isSync: true, idx: rng.Intn(syncVars)})
				} else {
					w := rng.Intn(words/nodes)*nodes + n // owned word
					v := rng.Uint32()
					scripts[n] = append(scripts[n], step{idx: w, val: v})
					ref[w] = v // last write wins; single writer per word
				}
			}
		}
		totalSyncs := 0
		for n := range scripts {
			for _, s := range scripts[n] {
				if s.isSync {
					totalSyncs++
				}
			}
		}

		for n := 0; n < nodes; n++ {
			n := n
			c := ctls[n]
			var run func(i int)
			run = func(i int) {
				if i == len(scripts[n]) {
					c.Release(coherence.ScopeGlobal, func() {})
					return
				}
				s := scripts[n][i]
				if s.isSync {
					c.Atomic(coherence.AtomicAdd, (syncBase + mem.Addr(64*s.idx)).WordOf(), 1, 0,
						coherence.ScopeGlobal, func(uint32) {
							syncDone++
							run(i + 1)
						})
					return
				}
				var data [mem.WordsPerLine]uint32
				w := dataBase + mem.Addr(4*s.idx)
				data[w.WordIndex()] = s.val
				c.WriteLine(w.LineOf(), mem.Bit(w.WordIndex()), data, func() { run(i + 1) })
			}
			r.Eng.Schedule(0, func() { run(0) })
		}
		r.Run(t)

		if syncDone != totalSyncs {
			t.Fatalf("seed %d: %d syncs completed, want %d", seed, syncDone, totalSyncs)
		}
		// Sync counters: sum across vars == totalSyncs.
		var sum uint32
		for i := 0; i < syncVars; i++ {
			w := (syncBase + mem.Addr(64*i)).WordOf()
			owner := r.Owner(w)
			if owner == -1 {
				sum += r.L2Word(w)
			} else if v, ok := ctls[owner].PeekWord(w); ok {
				sum += v
			} else {
				t.Fatalf("seed %d: sync var %d lost (owner %d has no copy)", seed, i, owner)
			}
		}
		if sum != uint32(totalSyncs) {
			t.Fatalf("seed %d: sync sum %d, want %d — lost atomic updates under eviction stress", seed, sum, totalSyncs)
		}
		// Data words: read coherently (owner L1 or L2).
		for w := 0; w < words; w++ {
			addr := (dataBase + mem.Addr(4*w)).WordOf()
			var got uint32
			if owner := r.Owner(addr); owner != -1 {
				v, ok := ctls[owner].PeekWord(addr)
				if !ok {
					t.Fatalf("seed %d: word %d registered at %d but missing", seed, w, owner)
				}
				got = v
			} else {
				got = r.L2Word(addr)
			}
			if got != ref[w] {
				t.Fatalf("seed %d: word %d = %d, want %d (eviction/writeback corrupted data)", seed, w, got, ref[w])
			}
		}
	}
}
