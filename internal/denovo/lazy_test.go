package denovo

import (
	"testing"

	"denovogpu/internal/mem"
	"denovogpu/internal/testrig"
)

// TestLazyOverflowDrainsWithoutStranding is a regression test: with
// lazy writes (DH) and a tiny store buffer, interleaved writers whose
// wakeups complete (rather than stall again) must not strand the
// remaining stalled writers — sbFreed has to keep kicking registrations
// while waiters remain.
func TestLazyOverflowDrainsWithoutStranding(t *testing.T) {
	r := testrig.New()
	c := New(0, r.Eng, r.Mesh, r.Stats, r.Meter, 32*1024, 8, 8, Options{LazyWrites: true})
	done := 0
	r.Eng.Schedule(0, func() {
		for w := 0; w < 3; w++ {
			var data [mem.WordsPerLine]uint32
			for i := range data {
				data[i] = uint32(w*100 + i)
			}
			c.WriteLine(mem.Line(w), mem.AllWords, data, func() { done++ })
		}
	})
	if err := r.Eng.Run(); err != nil {
		t.Fatalf("hang: %v (done=%d, sb=%d)", err, done, c.StoreBufferLen())
	}
	if done != 3 {
		t.Fatalf("done=%d, want 3 (stalls=%d kicks=%d)", done,
			r.Stats.Get("sb.write_stalls"), r.Stats.Get("sb.kicked_regs"))
	}
	for w := 0; w < 3; w++ {
		for i := 0; i < mem.WordsPerLine; i++ {
			word := mem.Line(w).Word(i)
			if v, ok := c.PeekWord(word); !ok || v != uint32(w*100+i) {
				t.Fatalf("word %v = %d (ok=%v), want %d", word, v, ok, w*100+i)
			}
		}
	}
}
