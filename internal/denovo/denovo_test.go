package denovo

import (
	"testing"

	"denovogpu/internal/cache"
	"denovogpu/internal/coherence"
	"denovogpu/internal/mem"
	"denovogpu/internal/noc"
	"denovogpu/internal/testrig"
)

func newCtl(r *testrig.Rig, node noc.NodeID, opts Options) *Controller {
	return New(node, r.Eng, r.Mesh, r.Stats, r.Meter, 32*1024, 8, 256, opts)
}

func TestWriteObtainsOwnership(t *testing.T) {
	r := testrig.New()
	c := newCtl(r, 0, Options{})
	w := mem.Addr(0x40).WordOf()
	var data [mem.WordsPerLine]uint32
	data[w.Index()] = 55
	done := false
	r.Eng.Schedule(0, func() {
		c.WriteLine(w.LineOf(), mem.Bit(w.Index()), data, func() {
			c.Release(coherence.ScopeGlobal, func() { done = true })
		})
	})
	r.Run(t)
	if !done {
		t.Fatal("release did not complete")
	}
	if st := c.CacheWordState(w); st != cache.Registered {
		t.Fatalf("word state %v after write, want Registered", st)
	}
	if r.Owner(w) != 0 {
		t.Fatalf("registry owner %d, want 0", r.Owner(w))
	}
	if c.StoreBufferLen() != 0 {
		t.Fatal("store buffer should drain on registration")
	}
	// DeNovo release moves no data: the L2 copy is stale, ownership
	// makes the L1 copy authoritative.
	if r.Stats.Get("l2.writethroughs") != 0 {
		t.Fatal("DeNovo must not writethrough data")
	}
}

func TestRegisteredWriteHitsNoTraffic(t *testing.T) {
	r := testrig.New()
	c := newCtl(r, 0, Options{})
	w := mem.Addr(0x40).WordOf()
	var data [mem.WordsPerLine]uint32
	data[w.Index()] = 1
	r.Eng.Schedule(0, func() {
		c.WriteLine(w.LineOf(), mem.Bit(w.Index()), data, func() {
			c.Release(coherence.ScopeGlobal, func() {
				sent := r.Mesh.Sent()
				data[w.Index()] = 2
				c.WriteLine(w.LineOf(), mem.Bit(w.Index()), data, func() {
					if r.Mesh.Sent() != sent {
						t.Error("write to owned word generated traffic")
					}
				})
			})
		})
	})
	r.Run(t)
	if got := r.Stats.Get("l1.write_hits"); got != 1 {
		t.Fatalf("write hits = %d, want 1", got)
	}
	if v, _ := c.PeekWord(w); v != 2 {
		t.Fatalf("owned word value %d, want 2", v)
	}
}

func TestAcquireKeepsRegisteredWords(t *testing.T) {
	r := testrig.New()
	c := newCtl(r, 0, Options{})
	wr := mem.Addr(0x40).WordOf()  // we write (and own) this
	rd := mem.Addr(0x800).WordOf() // we only read this
	r.Backing.Write(rd, 9)
	var data [mem.WordsPerLine]uint32
	data[wr.Index()] = 3
	r.Eng.Schedule(0, func() {
		c.WriteLine(wr.LineOf(), mem.Bit(wr.Index()), data, func() {
			c.Release(coherence.ScopeGlobal, func() {
				c.ReadLine(rd.LineOf(), mem.Bit(rd.Index()), func([mem.WordsPerLine]uint32) {
					c.Acquire(coherence.ScopeGlobal)
					if c.CacheWordState(wr) != cache.Registered {
						t.Error("acquire invalidated a registered word")
					}
					if c.CacheWordState(rd) != cache.Invalid {
						t.Error("acquire must invalidate valid (non-owned) words")
					}
				})
			})
		})
	})
	r.Run(t)
}

func TestReadOnlyRegionSurvivesAcquire(t *testing.T) {
	r := testrig.New()
	ro := mem.Addr(0x800).WordOf()
	c := newCtl(r, 0, Options{ReadOnly: func(w mem.Word) bool { return w == ro }})
	other := mem.Addr(0x1000).WordOf()
	r.Backing.Write(ro, 1)
	r.Backing.Write(other, 2)
	r.Eng.Schedule(0, func() {
		c.ReadLine(ro.LineOf(), mem.Bit(ro.Index()), func([mem.WordsPerLine]uint32) {
			c.ReadLine(other.LineOf(), mem.Bit(other.Index()), func([mem.WordsPerLine]uint32) {
				c.Acquire(coherence.ScopeGlobal)
				if c.CacheWordState(ro) != cache.Valid {
					t.Error("read-only word must survive acquire (DD+RO)")
				}
				if c.CacheWordState(other) != cache.Invalid {
					t.Error("non-RO valid word must be invalidated")
				}
			})
		})
	})
	r.Run(t)
}

func TestSyncRegistersAndHits(t *testing.T) {
	r := testrig.New()
	c := newCtl(r, 0, Options{})
	w := mem.Addr(0x2000).WordOf()
	r.Backing.Write(w, 10)
	r.Eng.Schedule(0, func() {
		c.Atomic(coherence.AtomicAdd, w, 1, 0, coherence.ScopeGlobal, func(old uint32) {
			if old != 10 {
				t.Errorf("first sync old = %d, want 10", old)
			}
			sent := r.Mesh.Sent()
			c.Atomic(coherence.AtomicAdd, w, 1, 0, coherence.ScopeGlobal, func(old uint32) {
				if old != 11 {
					t.Errorf("second sync old = %d, want 11", old)
				}
				if r.Mesh.Sent() != sent {
					t.Error("sync hit on owned variable generated traffic")
				}
			})
		})
	})
	r.Run(t)
	if r.Stats.Get("l1.sync_misses") != 1 || r.Stats.Get("l1.sync_hits") != 1 {
		t.Fatalf("sync miss/hit = %d/%d, want 1/1",
			r.Stats.Get("l1.sync_misses"), r.Stats.Get("l1.sync_hits"))
	}
}

func TestSyncOwnershipMigratesBetweenCUs(t *testing.T) {
	r := testrig.New()
	c0 := newCtl(r, 0, Options{})
	c1 := newCtl(r, 1, Options{})
	w := mem.Addr(0x2000).WordOf()
	r.Eng.Schedule(0, func() {
		c0.Atomic(coherence.AtomicAdd, w, 1, 0, coherence.ScopeGlobal, func(uint32) {
			c1.Atomic(coherence.AtomicAdd, w, 1, 0, coherence.ScopeGlobal, func(old uint32) {
				if old != 1 {
					t.Errorf("migrated sync sees %d, want 1", old)
				}
			})
		})
	})
	r.Run(t)
	if r.Owner(w) != 1 {
		t.Fatalf("owner = %d, want 1 after migration", r.Owner(w))
	}
	if c0.CacheWordState(w) != cache.Invalid {
		t.Fatal("previous owner must invalidate on transfer")
	}
	if r.Stats.Get("l1.ownership_transfers") != 1 {
		t.Fatalf("transfers = %d, want 1", r.Stats.Get("l1.ownership_transfers"))
	}
}

func TestDistributedQueueUnderContention(t *testing.T) {
	r := testrig.New()
	var ctls []*Controller
	const n = 8
	for i := 0; i < n; i++ {
		ctls = append(ctls, newCtl(r, noc.NodeID(i), Options{}))
	}
	w := mem.Addr(0x2000).WordOf()
	done := 0
	r.Eng.Schedule(0, func() {
		for _, c := range ctls {
			c.Atomic(coherence.AtomicAdd, w, 1, 0, coherence.ScopeGlobal, func(uint32) { done++ })
		}
	})
	r.Run(t)
	if done != n {
		t.Fatalf("%d atomics completed, want %d", done, n)
	}
	if got := r.L2Word(w); got != 0 {
		// Value lives at the final owner, not L2.
		t.Logf("L2 copy stale as expected (%d)", got)
	}
	// Sum must be exactly n at the final owner.
	final := r.Owner(w)
	if v, ok := ctls[final].PeekWord(w); !ok || v != n {
		t.Fatalf("final value %d at owner %d, want %d — racy registrations lost updates", v, final, n)
	}
}

func TestSameCUCoalescingServicedBeforeRemote(t *testing.T) {
	r := testrig.New()
	c0 := newCtl(r, 0, Options{})
	c1 := newCtl(r, 1, Options{})
	w := mem.Addr(0x2000).WordOf()
	var order []string
	r.Eng.Schedule(0, func() {
		// Two sync ops from CU0 (will coalesce in the MSHR), one from CU1.
		c0.Atomic(coherence.AtomicAdd, w, 1, 0, coherence.ScopeGlobal, func(uint32) { order = append(order, "cu0a") })
		c0.Atomic(coherence.AtomicAdd, w, 1, 0, coherence.ScopeGlobal, func(uint32) { order = append(order, "cu0b") })
	})
	// CU1's request lands while CU0's is in flight, forming the queue.
	r.Eng.Schedule(5, func() {
		c1.Atomic(coherence.AtomicAdd, w, 1, 0, coherence.ScopeGlobal, func(uint32) { order = append(order, "cu1") })
	})
	r.Run(t)
	if len(order) != 3 {
		t.Fatalf("completions = %v", order)
	}
	if order[0] != "cu0a" || order[1] != "cu0b" || order[2] != "cu1" {
		t.Fatalf("same-CU waiters must be serviced before the queued remote: %v", order)
	}
	if r.Stats.Get("l1.sync_coalesced") != 1 {
		t.Fatalf("coalesced = %d, want 1", r.Stats.Get("l1.sync_coalesced"))
	}
	if v, ok := c1.PeekWord(w); !ok || v != 3 {
		t.Fatalf("final value %d, want 3", v)
	}
}

func TestReadMissForwardedToOwner(t *testing.T) {
	r := testrig.New()
	c0 := newCtl(r, 0, Options{})
	c1 := newCtl(r, 5, Options{})
	w := mem.Addr(0x40).WordOf()
	var data [mem.WordsPerLine]uint32
	data[w.Index()] = 77
	r.Eng.Schedule(0, func() {
		c0.WriteLine(w.LineOf(), mem.Bit(w.Index()), data, func() {
			c0.Release(coherence.ScopeGlobal, func() {
				c1.ReadLine(w.LineOf(), mem.Bit(w.Index()), func(v [mem.WordsPerLine]uint32) {
					if v[w.Index()] != 77 {
						t.Errorf("remote read %d, want 77 (must come from owner L1)", v[w.Index()])
					}
				})
			})
		})
	})
	r.Run(t)
	if r.Stats.Get("l2.read_forwards") != 1 {
		t.Fatalf("read forwards = %d, want 1", r.Stats.Get("l2.read_forwards"))
	}
	if r.Stats.Get("l1.remote_reads_served") != 1 {
		t.Fatalf("remote reads served = %d, want 1", r.Stats.Get("l1.remote_reads_served"))
	}
	// Owner keeps ownership on a read.
	if r.Owner(w) != 0 {
		t.Fatal("data read must not steal ownership")
	}
}

func TestEvictionWritesBackRegisteredWords(t *testing.T) {
	r := testrig.New()
	// Tiny direct-mapped-ish cache: 2 sets, 1 way → eviction on 3rd line.
	c := New(0, r.Eng, r.Mesh, r.Stats, r.Meter, 2*mem.LineBytes, 1, 256, Options{})
	l0 := mem.Line(0)
	l2same := mem.Line(2) // maps to set 0 as well (2 sets)
	w := l0.Word(1)
	var d0, d1 [mem.WordsPerLine]uint32
	d0[1] = 11
	d1[1] = 22
	r.Eng.Schedule(0, func() {
		c.WriteLine(l0, mem.Bit(1), d0, func() {
			c.Release(coherence.ScopeGlobal, func() {
				c.WriteLine(l2same, mem.Bit(1), d1, func() {
					c.Release(coherence.ScopeGlobal, nil_or(t))
				})
			})
		})
	})
	r.Run(t)
	if r.Stats.Get("l1.writebacks") == 0 {
		t.Fatal("eviction of registered word must write back")
	}
	if r.Owner(w) != -1 {
		t.Fatalf("owner after writeback = %d, want memory", r.Owner(w))
	}
	if r.L2Word(w) != 11 {
		t.Fatalf("L2 value after writeback = %d, want 11", r.L2Word(w))
	}
	if !c.Drained() {
		t.Fatal("victim buffer should be empty after acks")
	}
}

func nil_or(t *testing.T) func() { return func() {} }

func TestLazyWritesDelayRegistration(t *testing.T) {
	r := testrig.New()
	c := newCtl(r, 0, Options{LazyWrites: true})
	w := mem.Addr(0x40).WordOf()
	var data [mem.WordsPerLine]uint32
	data[w.Index()] = 5
	r.Eng.Schedule(0, func() {
		c.WriteLine(w.LineOf(), mem.Bit(w.Index()), data, func() {
			if r.Mesh.Sent() != 0 {
				t.Error("lazy write must not generate traffic before release")
			}
			c.Release(coherence.ScopeLocal, func() {
				if r.Mesh.Sent() != 0 {
					t.Error("local release must not register lazy writes (DH)")
				}
				c.Release(coherence.ScopeGlobal, func() {
					if c.CacheWordState(w) != cache.Registered {
						t.Error("global release must register lazy writes")
					}
				})
			})
		})
	})
	r.Run(t)
	if r.Owner(w) != 0 {
		t.Fatal("lazy write never registered")
	}
}

func TestLocalAtomicNoOwnership(t *testing.T) {
	r := testrig.New()
	c := newCtl(r, 0, Options{LazyWrites: true})
	w := mem.Addr(0x2000).WordOf()
	r.Backing.Write(w, 100)
	r.Eng.Schedule(0, func() {
		c.Atomic(coherence.AtomicAdd, w, 1, 0, coherence.ScopeLocal, func(old uint32) {
			if old != 100 {
				t.Errorf("local atomic old = %d, want 100", old)
			}
			if r.Owner(w) != -1 {
				t.Error("local atomic must not obtain ownership eagerly (DH)")
			}
			c.Atomic(coherence.AtomicAdd, w, 1, 0, coherence.ScopeLocal, func(old uint32) {
				if old != 101 {
					t.Errorf("second local atomic old = %d, want 101", old)
				}
			})
		})
	})
	r.Run(t)
	if r.Stats.Get("l1.sync_local") != 2 {
		t.Fatalf("local syncs = %d, want 2", r.Stats.Get("l1.sync_local"))
	}
}

func TestConcurrentLocalAtomicsDoNotLoseUpdates(t *testing.T) {
	r := testrig.New()
	c := newCtl(r, 0, Options{LazyWrites: true})
	w := mem.Addr(0x2000).WordOf()
	done := 0
	r.Eng.Schedule(0, func() {
		for i := 0; i < 3; i++ {
			c.Atomic(coherence.AtomicAdd, w, 1, 0, coherence.ScopeLocal, func(uint32) { done++ })
		}
	})
	r.Run(t)
	if done != 3 {
		t.Fatalf("completions = %d, want 3", done)
	}
	if v, ok := c.PeekWord(w); !ok || v != 3 {
		t.Fatalf("value %d, want 3 — concurrent local atomics lost updates", v)
	}
}

func TestWriteStallsWhenBufferFullThenCompletes(t *testing.T) {
	r := testrig.New()
	c := New(0, r.Eng, r.Mesh, r.Stats, r.Meter, 32*1024, 8, 2, Options{})
	done := 0
	r.Eng.Schedule(0, func() {
		for i := 0; i < 6; i++ {
			w := mem.Word(i * mem.WordsPerLine)
			var data [mem.WordsPerLine]uint32
			data[0] = uint32(i)
			c.WriteLine(w.LineOf(), mem.Bit(0), data, func() { done++ })
		}
	})
	r.Run(t)
	if done != 6 {
		t.Fatalf("%d writes completed, want 6", done)
	}
	if r.Stats.Get("sb.write_stalls") == 0 {
		t.Fatal("expected write stalls with a 2-entry buffer")
	}
	for i := 0; i < 6; i++ {
		w := mem.Word(i * mem.WordsPerLine)
		if v, ok := c.PeekWord(w); !ok || v != uint32(i) {
			t.Fatalf("word %d value %d (ok=%v), want %d", i, v, ok, i)
		}
	}
}

func TestBatchedRegistrationOneRequestPerLine(t *testing.T) {
	r := testrig.New()
	c := newCtl(r, 0, Options{})
	l := mem.Line(4)
	var data [mem.WordsPerLine]uint32
	for i := range data {
		data[i] = uint32(i)
	}
	r.Eng.Schedule(0, func() {
		c.WriteLine(l, mem.AllWords, data, func() {})
	})
	r.Run(t)
	if got := r.Stats.Get("l1.reg_requests"); got != 1 {
		t.Fatalf("reg requests = %d, want 1 (full-line write batches)", got)
	}
}

func TestNoMSHRCoalescingAblation(t *testing.T) {
	r := testrig.New()
	c0 := newCtl(r, 0, Options{NoMSHRCoalescing: true})
	w := mem.Addr(0x2000).WordOf()
	done := 0
	r.Eng.Schedule(0, func() {
		for i := 0; i < 3; i++ {
			c0.Atomic(coherence.AtomicAdd, w, 1, 0, coherence.ScopeGlobal, func(uint32) { done++ })
		}
	})
	r.Run(t)
	if done != 3 {
		t.Fatalf("completions = %d, want 3", done)
	}
	if v, ok := c0.PeekWord(w); !ok || v != 3 {
		t.Fatalf("value %d, want 3", v)
	}
	// Without coalescing, only the head waiter is serviced when
	// ownership arrives; the rest retry (and, with no remote contention,
	// hit the now-owned word).
	if got := r.Stats.Get("l1.sync_serviced_on_arrival"); got != 1 {
		t.Fatalf("serviced on arrival = %d, want 1 without coalescing", got)
	}
	if got := r.Stats.Get("l1.sync_hits"); got != 2 {
		t.Fatalf("sync hits = %d, want 2 (retried waiters)", got)
	}
}

func TestSyncBackoffThrottlesSpinners(t *testing.T) {
	run := func(backoff bool) (uint64, uint64) {
		r := testrig.New()
		var ctls []*Controller
		for i := 0; i < 8; i++ {
			ctls = append(ctls, newCtl(r, noc.NodeID(i), Options{SyncBackoff: backoff}))
		}
		w := mem.Addr(0x2000).WordOf()
		// Controller 0 "holds a lock": spinners (1..7) poll with sync
		// reads; after a while the holder stores the release value.
		for i := 1; i < 8; i++ {
			c := ctls[i]
			var spin func()
			spin = func() {
				c.Atomic(coherence.AtomicLoad, w, 0, 0, coherence.ScopeGlobal, func(v uint32) {
					if v == 0 {
						r.Eng.Schedule(5, spin)
					}
				})
			}
			r.Eng.Schedule(0, spin)
		}
		r.Eng.Schedule(2000, func() {
			ctls[0].Atomic(coherence.AtomicStore, w, 1, 0, coherence.ScopeGlobal, func(uint32) {})
		})
		if err := r.Eng.Run(); err != nil {
			t.Fatal(err)
		}
		return r.Stats.Get("l1.ownership_transfers"), r.Stats.Get("l1.sync_backoffs")
	}
	xfersNo, boNo := run(false)
	xfersYes, boYes := run(true)
	if boNo != 0 {
		t.Fatal("backoff counted while disabled")
	}
	if boYes == 0 {
		t.Fatal("backoff never engaged")
	}
	if xfersYes >= xfersNo {
		t.Fatalf("backoff should reduce ownership ping-pong: %d -> %d", xfersNo, xfersYes)
	}
}

func TestDirectTransferHitAndFallback(t *testing.T) {
	r := testrig.New()
	owner := newCtl(r, 2, Options{DirectTransfer: true})
	reader := newCtl(r, 0, Options{DirectTransfer: true})
	l := mem.Line(5)
	var data [mem.WordsPerLine]uint32
	data[3] = 71
	r.Eng.Schedule(0, func() {
		owner.WriteLine(l, mem.Bit(3), data, func() {
			owner.Release(coherence.ScopeGlobal, func() {
				// First read goes through the registry (no prediction yet)
				// and learns the supplier.
				reader.ReadLine(l, mem.Bit(3), func(v [mem.WordsPerLine]uint32) {
					if v[3] != 71 {
						t.Errorf("first read %d", v[3])
					}
					reader.Acquire(coherence.ScopeGlobal) // invalidate, force a new miss
					reader.ReadLine(l, mem.Bit(3), func(v [mem.WordsPerLine]uint32) {
						if v[3] != 71 {
							t.Errorf("direct read %d", v[3])
						}
					})
				})
			})
		})
	})
	r.Run(t)
	if r.Stats.Get("l1.direct_reads") != 1 || r.Stats.Get("l1.direct_reads_served") != 1 {
		t.Fatalf("direct reads = %d served = %d, want 1/1",
			r.Stats.Get("l1.direct_reads"), r.Stats.Get("l1.direct_reads_served"))
	}

	// Fallback: owner loses the word (writeback via eviction is complex
	// to force; use HostSteal + registry recall to simulate), then a
	// predicted read must nack and fall back to the registry.
	v, ok := owner.HostSteal(l.Word(3))
	if !ok {
		t.Fatal("steal failed")
	}
	r.Banks[int(mem.Line(5))%16].Recall(l.Word(3), v)
	r.Eng.Schedule(0, func() {
		reader.Acquire(coherence.ScopeGlobal)
		reader.ReadLine(l, mem.Bit(3), func(v [mem.WordsPerLine]uint32) {
			if v[3] != 71 {
				t.Errorf("fallback read %d, want 71", v[3])
			}
		})
	})
	r.Run(t)
	if r.Stats.Get("l1.direct_reads_nacked") != 1 {
		t.Fatalf("nacked = %d, want 1", r.Stats.Get("l1.direct_reads_nacked"))
	}
}
