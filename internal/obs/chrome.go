package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace_event export. The output is the JSON-object flavour of
// the format ({"traceEvents": [...]}), which chrome://tracing and
// Perfetto both open directly. Each observability domain renders as one
// process (CU, L2 bank, NoC link) and each track within it as one
// thread, so a run shows one lane per CU, per L2 bank and per mesh
// link. Timestamps are simulation cycles written into the "ts"
// microsecond field: 1 displayed microsecond = 1 GPU cycle.

// chromePID maps a domain to a stable trace process id (0 is reserved).
func chromePID(d Domain) int { return int(d) + 1 }

// WriteChromeTrace writes the recorder's held events to w in Chrome
// trace_event JSON format. Safe on a nil recorder (writes an empty but
// valid trace).
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	events := r.Events()

	// Metadata first: name every (domain, track) pair that appears.
	type key struct {
		d Domain
		t int32
	}
	seen := make(map[key]bool)
	for _, e := range events {
		seen[key{DomainOf(e.Kind), e.Track}] = true
	}
	keys := make([]key, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].d != keys[j].d {
			return keys[i].d < keys[j].d
		}
		return keys[i].t < keys[j].t
	})
	first := true
	emit := func(v any) error {
		data, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(data)
		return err
	}
	type meta struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	}
	for d := Domain(0); d < numDomains; d++ {
		if err := emit(meta{Name: "process_name", Ph: "M", PID: chromePID(d), Args: map[string]any{"name": d.String()}}); err != nil {
			return err
		}
	}
	for _, k := range keys {
		name := r.TrackName(k.d, k.t)
		if name == "" {
			name = fmt.Sprintf("%s %d", k.d, k.t)
		}
		if err := emit(meta{Name: "thread_name", Ph: "M", PID: chromePID(k.d), TID: int(k.t), Args: map[string]any{"name": name}}); err != nil {
			return err
		}
	}

	type traceEvent struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   uint64         `json:"ts"`
		Dur  *uint64        `json:"dur,omitempty"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		S    string         `json:"s,omitempty"`
		Args map[string]any `json:"args"`
	}
	for i := range events {
		e := &events[i]
		te := traceEvent{
			Name: e.Kind.String(),
			TS:   e.At,
			PID:  chromePID(DomainOf(e.Kind)),
			TID:  int(e.Track),
			Args: map[string]any{"arg": e.Arg},
		}
		if e.Dur > 0 || e.Kind == NoCFlitHop || e.Kind == StallMem || e.Kind == StallSync {
			dur := e.Dur
			te.Ph = "X"
			te.Dur = &dur
		} else {
			te.Ph = "i"
			te.S = "t" // thread-scoped instant
		}
		if err := emit(te); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString(fmt.Sprintf(`],"otherData":{"unit":"1us = 1 GPU cycle","total_events":%d,"dropped_events":%d}}`,
		r.Total(), r.Dropped())); err != nil {
		return err
	}
	if err := bw.WriteByte('\n'); err != nil {
		return err
	}
	return bw.Flush()
}

// ValidateChromeTrace checks that data is a well-formed Chrome
// trace_event JSON document: an object with a traceEvents array whose
// entries carry the fields the viewers require (name, ph, pid; ts for
// non-metadata events). It is the validator behind the CI observability
// smoke step and the obs package's own tests.
func ValidateChromeTrace(data []byte) error {
	var doc struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("obs: trace has no traceEvents array")
	}
	nonMeta := 0
	for i, ev := range doc.TraceEvents {
		var ph, name string
		if raw, ok := ev["ph"]; !ok {
			return fmt.Errorf("obs: traceEvents[%d] missing ph", i)
		} else if err := json.Unmarshal(raw, &ph); err != nil || ph == "" {
			return fmt.Errorf("obs: traceEvents[%d] has invalid ph", i)
		}
		if raw, ok := ev["name"]; !ok {
			return fmt.Errorf("obs: traceEvents[%d] missing name", i)
		} else if err := json.Unmarshal(raw, &name); err != nil || name == "" {
			return fmt.Errorf("obs: traceEvents[%d] has invalid name", i)
		}
		if _, ok := ev["pid"]; !ok {
			return fmt.Errorf("obs: traceEvents[%d] missing pid", i)
		}
		if ph == "M" {
			continue
		}
		nonMeta++
		var ts float64
		raw, ok := ev["ts"]
		if !ok {
			return fmt.Errorf("obs: traceEvents[%d] (%s) missing ts", i, name)
		}
		if err := json.Unmarshal(raw, &ts); err != nil || ts < 0 {
			return fmt.Errorf("obs: traceEvents[%d] (%s) has invalid ts", i, name)
		}
		if ph == "X" {
			if _, ok := ev["dur"]; !ok {
				return fmt.Errorf("obs: traceEvents[%d] (%s) is a complete event without dur", i, name)
			}
		}
	}
	if nonMeta == 0 {
		return fmt.Errorf("obs: trace contains no events (only metadata)")
	}
	return nil
}
