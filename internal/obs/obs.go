// Package obs is the simulator's observability layer: a ring-buffered
// recorder of typed protocol events (exported as Chrome trace_event
// JSON, so a run opens directly in chrome://tracing or Perfetto) and an
// epoch sampler capturing time-series metrics (MSHR occupancy,
// store-buffer depth, per-link NoC utilization, outstanding
// registrations) into a compact columnar series.
//
// The package is deliberately dependency-free: timestamps come from a
// caller-supplied clock closure and tracks are plain integers, so every
// layer of the simulator (cache, l2, noc, denovo, gpucoh, gpu) can emit
// events without import cycles.
//
// Cost contract: observability is zero-cost when disabled. Components
// hold a *Recorder that is nil by default and guard every emission site
// with a `rec != nil` branch, so a run without observability executes
// the exact event sequence — and allocates exactly as much — as a build
// without the hooks. With a recorder installed, Emit appends one fixed
// size Event to a preallocated ring (no per-event allocation); when the
// ring wraps, the oldest events are dropped and counted, keeping the
// memory bound independent of run length. DESIGN.md "Observability"
// documents the hook-point contract.
package obs

// Kind is the type of one recorded event.
type Kind uint8

// Event kinds. The Domain mapping below decides which Perfetto track
// group (process) each kind renders under.
const (
	KindNone Kind = iota

	// L1 controller events (track = CU/node id).
	L1ReadHit
	L1ReadMiss
	L1WriteHit
	L1SyncHit
	L1SyncMiss
	L1Writeback
	SyncAcquire
	SyncRelease

	// Store-buffer events (track = CU/node id).
	SBInsert
	SBCoalesce
	SBDrain
	SBEvict

	// Warp/TB stall spans (track = CU/node id).
	StallMem
	StallSync

	// L2 bank events (track = bank/node id).
	L2Read
	L2ReadForward
	L2WriteThrough
	L2Registration
	L2RegForward
	L2WriteBack
	L2Atomic

	// NoC events (track = link id, node*4+direction).
	NoCFlitHop

	numKinds
)

var kindNames = [numKinds]string{
	KindNone:       "none",
	L1ReadHit:      "l1.read_hit",
	L1ReadMiss:     "l1.read_miss",
	L1WriteHit:     "l1.write_hit",
	L1SyncHit:      "l1.sync_hit",
	L1SyncMiss:     "l1.sync_miss",
	L1Writeback:    "l1.writeback",
	SyncAcquire:    "sync.acquire",
	SyncRelease:    "sync.release",
	SBInsert:       "sb.insert",
	SBCoalesce:     "sb.coalesce",
	SBDrain:        "sb.drain",
	SBEvict:        "sb.evict",
	StallMem:       "stall.mem",
	StallSync:      "stall.sync",
	L2Read:         "l2.read",
	L2ReadForward:  "l2.read_forward",
	L2WriteThrough: "l2.writethrough",
	L2Registration: "l2.registration",
	L2RegForward:   "l2.reg_forward",
	L2WriteBack:    "l2.writeback",
	L2Atomic:       "l2.atomic",
	NoCFlitHop:     "noc.flit_hop",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "kind?"
}

// Domain groups tracks into Perfetto processes: one per hardware layer.
type Domain uint8

const (
	DomainCU  Domain = iota // private L1s, store buffers, warp stalls
	DomainL2                // shared L2 banks
	DomainNoC               // mesh links

	numDomains
)

func (d Domain) String() string {
	switch d {
	case DomainCU:
		return "CU"
	case DomainL2:
		return "L2 bank"
	case DomainNoC:
		return "NoC link"
	default:
		return "domain?"
	}
}

// DomainOf maps an event kind to its track domain.
func DomainOf(k Kind) Domain {
	switch {
	case k >= L2Read && k <= L2Atomic:
		return DomainL2
	case k == NoCFlitHop:
		return DomainNoC
	default:
		return DomainCU
	}
}

// Event is one recorded observation. Events are fixed-size values so the
// ring buffer never allocates after construction.
type Event struct {
	// At is the simulation cycle the event occurred (for spans, began).
	At uint64
	// Dur is the span length in cycles; 0 renders as an instant event.
	Dur uint64
	// Arg is kind-specific payload: a line address for cache events, a
	// word/entry count for bulk events, the flit count for NoC hops.
	Arg uint64
	// Track is the emitting unit within the kind's domain: CU node, L2
	// bank node, or link index.
	Track int32
	// Kind is the event type.
	Kind Kind
}

// Recorder is a bounded, allocation-free event recorder. The zero value
// is not usable; create recorders with NewRecorder. A nil *Recorder is
// the disabled state: components must guard emission with a nil check
// (the documented fast path), and the exported methods also tolerate a
// nil receiver so cold paths may call them unconditionally.
type Recorder struct {
	now   func() uint64
	buf   []Event
	next  int  // next slot to write
	wrap  bool // buf has wrapped at least once
	total uint64

	names map[trackKey]string
}

type trackKey struct {
	domain Domain
	track  int32
}

// DefaultCapacity is the ring size NewRecorder uses when given a
// non-positive capacity: 1M events ≈ 32 MB, enough to hold the full
// trace of every microbenchmark and the tail window of a long run.
const DefaultCapacity = 1 << 20

// NewRecorder returns a recorder reading timestamps from now (typically
// the simulation engine's clock) holding at most capacity events.
func NewRecorder(now func() uint64, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{
		now:   now,
		buf:   make([]Event, 0, capacity),
		names: make(map[trackKey]string),
	}
}

// Emit records an instant event at the current cycle.
func (r *Recorder) Emit(k Kind, track int32, arg uint64) {
	if r == nil {
		return
	}
	r.push(Event{At: r.now(), Kind: k, Track: track, Arg: arg})
}

// EmitSpan records a span that began at cycle start and ends now.
func (r *Recorder) EmitSpan(k Kind, track int32, arg, start uint64) {
	if r == nil {
		return
	}
	end := r.now()
	r.push(Event{At: start, Dur: end - start, Kind: k, Track: track, Arg: arg})
}

// EmitAt records an event with an explicit timestamp and duration, for
// emitters that know occupancy windows ahead of time (NoC link claims).
func (r *Recorder) EmitAt(k Kind, track int32, arg, at, dur uint64) {
	if r == nil {
		return
	}
	r.push(Event{At: at, Dur: dur, Kind: k, Track: track, Arg: arg})
}

func (r *Recorder) push(e Event) {
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.wrap = true
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
}

// NameTrack attaches a human-readable label to a (domain, track) pair,
// rendered as the Perfetto thread name. Safe on a nil recorder.
func (r *Recorder) NameTrack(d Domain, track int32, name string) {
	if r == nil {
		return
	}
	r.names[trackKey{d, track}] = name
}

// TrackName returns the label registered for a (domain, track) pair, or
// a generated fallback.
func (r *Recorder) TrackName(d Domain, track int32) string {
	if r != nil {
		if n, ok := r.names[trackKey{d, track}]; ok {
			return n
		}
	}
	return ""
}

// Len returns the number of events currently held (≤ capacity).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Total returns the number of events emitted over the recorder's life,
// including any that have been overwritten.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total
}

// Dropped returns how many events were overwritten by ring wrap-around.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.total - uint64(len(r.buf))
}

// Events returns the held events in emission order (oldest first). The
// returned slice is freshly allocated; mutating it does not affect the
// recorder.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.buf))
	if r.wrap && r.next < len(r.buf) {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
		return out
	}
	return append(out, r.buf...)
}
