package obs

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.Emit(L1ReadHit, 3, 42)
	r.EmitSpan(StallMem, 1, 0, 10)
	r.EmitAt(NoCFlitHop, 0, 1, 5, 4)
	r.NameTrack(DomainCU, 0, "cu-00")
	if r.Len() != 0 || r.Total() != 0 || r.Dropped() != 0 || r.Events() != nil {
		t.Fatal("nil recorder recorded something")
	}
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil recorder trace write: %v", err)
	}
}

func TestRecorderOrderAndWrap(t *testing.T) {
	clock := uint64(0)
	r := NewRecorder(func() uint64 { return clock }, 4)
	for i := 0; i < 6; i++ {
		clock = uint64(i)
		r.Emit(L1ReadHit, 0, uint64(i))
	}
	if r.Total() != 6 || r.Len() != 4 || r.Dropped() != 2 {
		t.Fatalf("total=%d len=%d dropped=%d, want 6/4/2", r.Total(), r.Len(), r.Dropped())
	}
	evs := r.Events()
	for i, e := range evs {
		if want := uint64(i + 2); e.Arg != want {
			t.Fatalf("event %d has arg %d, want %d (oldest-first after wrap)", i, e.Arg, want)
		}
	}
}

func TestDomainOf(t *testing.T) {
	cases := map[Kind]Domain{
		L1ReadHit:      DomainCU,
		SBEvict:        DomainCU,
		StallSync:      DomainCU,
		SyncRelease:    DomainCU,
		L2Read:         DomainL2,
		L2Atomic:       DomainL2,
		L2Registration: DomainL2,
		NoCFlitHop:     DomainNoC,
	}
	for k, want := range cases {
		if got := DomainOf(k); got != want {
			t.Errorf("DomainOf(%v) = %v, want %v", k, got, want)
		}
	}
	for k := KindNone + 1; k < numKinds; k++ {
		if k.String() == "kind?" {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	clock := uint64(0)
	r := NewRecorder(func() uint64 { return clock }, 64)
	r.NameTrack(DomainCU, 2, "cu-02")
	r.NameTrack(DomainNoC, 13, "n03-east")
	clock = 10
	r.Emit(L1ReadMiss, 2, 0x40)
	clock = 15
	r.Emit(L2Read, 5, 0x40)
	r.EmitAt(NoCFlitHop, 13, 4, 12, 4)
	clock = 30
	r.EmitSpan(StallMem, 2, 1, 10)

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("self-produced trace fails validation: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		`"name":"cu-02"`, `"name":"n03-east"`, // track names
		`"name":"l1.read_miss"`, `"name":"l2.read"`,
		`"ph":"X"`, `"dur":20`, // the stall span
		`"dropped_events":0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %s:\n%s", want, out)
		}
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not json":        `{]`,
		"no traceEvents":  `{"foo": 1}`,
		"missing ph":      `{"traceEvents":[{"name":"x","pid":1,"ts":0}]}`,
		"missing name":    `{"traceEvents":[{"ph":"i","pid":1,"ts":0}]}`,
		"missing ts":      `{"traceEvents":[{"name":"x","ph":"i","pid":1}]}`,
		"X without dur":   `{"traceEvents":[{"name":"x","ph":"X","pid":1,"tid":0,"ts":5}]}`,
		"only metadata":   `{"traceEvents":[{"name":"process_name","ph":"M","pid":1,"args":{}}]}`,
		"empty event set": `{"traceEvents":[]}`,
	}
	for name, data := range cases {
		if err := ValidateChromeTrace([]byte(data)); err == nil {
			t.Errorf("%s: validation unexpectedly passed", name)
		}
	}
}

func TestSamplerTick(t *testing.T) {
	s := NewSampler(100)
	v := uint64(7)
	s.AddGauge("g", func() uint64 { return v })
	s.Tick(0) // first advance samples the initial state
	v = 9
	s.Tick(50) // below next threshold: no sample
	s.Tick(120)
	v = 11
	s.Tick(130) // same window: no sample
	s.Tick(350) // skipped windows collapse into one sample
	ser := s.Series()
	if ser.Rows() != 3 {
		t.Fatalf("rows = %d, want 3", ser.Rows())
	}
	wantCycles := []uint64{0, 120, 350}
	wantVals := []uint64{7, 9, 11}
	for i := range wantCycles {
		if ser.Data[0][i] != wantCycles[i] || ser.Data[1][i] != wantVals[i] {
			t.Fatalf("row %d = (%d, %d), want (%d, %d)", i, ser.Data[0][i], ser.Data[1][i], wantCycles[i], wantVals[i])
		}
	}
}

func TestSeriesCSVAndJSON(t *testing.T) {
	s := NewSampler(10)
	n := uint64(0)
	s.AddGauge("a", func() uint64 { n++; return n })
	s.AddGauge("b", func() uint64 { return 5 })
	s.Sample(0)
	s.Sample(10)

	var csv bytes.Buffer
	if err := s.Series().WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	want := "cycle,a,b\n0,1,5\n10,2,5\n"
	if csv.String() != want {
		t.Fatalf("csv = %q, want %q", csv.String(), want)
	}
	if err := ValidateCSV(csv.Bytes()); err != nil {
		t.Fatalf("self-produced CSV fails validation: %v", err)
	}

	var js bytes.Buffer
	if err := s.Series().WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{`"cols":["cycle","a","b"]`, `"data":[[0,10],[1,2],[5,5]]`} {
		if !strings.Contains(js.String(), frag) {
			t.Fatalf("json missing %s: %s", frag, js.String())
		}
	}
}

func TestValidateCSVRejects(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"wrong header": "time,a\n1,2\n",
		"no rows":      "cycle,a\n",
		"ragged row":   "cycle,a\n1\n",
		"non-numeric":  "cycle,a\n1,x\n",
	}
	for name, data := range cases {
		if err := ValidateCSV([]byte(data)); err == nil {
			t.Errorf("%s: validation unexpectedly passed", name)
		}
	}
}

// TestValidateExternalArtifacts validates trace/metrics files produced
// outside the test (the CI observability smoke step runs denovosim with
// -trace/-metrics and then points these env vars at the outputs). It
// skips when the env vars are unset.
func TestValidateExternalArtifacts(t *testing.T) {
	tracePath := os.Getenv("OBS_TRACE_FILE")
	metricsPath := os.Getenv("OBS_METRICS_FILE")
	if tracePath == "" && metricsPath == "" {
		t.Skip("OBS_TRACE_FILE/OBS_METRICS_FILE not set")
	}
	if tracePath != "" {
		data, err := os.ReadFile(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateChromeTrace(data); err != nil {
			t.Errorf("%s: %v", tracePath, err)
		}
	}
	if metricsPath != "" {
		data, err := os.ReadFile(metricsPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateCSV(data); err != nil {
			t.Errorf("%s: %v", metricsPath, err)
		}
	}
}
