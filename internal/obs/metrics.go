package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Sampler captures time-series metrics: every Every cycles it reads all
// registered gauges and appends one row to a columnar Series. The
// simulation engine drives it through its advance hook (see
// machine.SetObservability), so sampling adds no events to the queue
// and leaves cycle counts, event counts and all reported measurements
// bit-identical to an unsampled run.
type Sampler struct {
	every  uint64
	next   uint64
	gauges []gauge
	series Series
}

type gauge struct {
	name string
	fn   func() uint64
}

// DefaultSampleEvery is the sampling interval used when NewSampler is
// given a non-positive one.
const DefaultSampleEvery = 1000

// NewSampler returns a sampler reading its gauges every `every` cycles.
func NewSampler(every uint64) *Sampler {
	if every == 0 {
		every = DefaultSampleEvery
	}
	s := &Sampler{every: every}
	s.series.Cols = []string{"cycle"}
	s.series.Data = [][]uint64{nil}
	return s
}

// Every returns the sampling interval in cycles.
func (s *Sampler) Every() uint64 { return s.every }

// AddGauge registers a named gauge. All gauges must be registered
// before the first Sample; the column order is registration order.
func (s *Sampler) AddGauge(name string, fn func() uint64) {
	if len(s.series.Data[0]) > 0 {
		panic("obs: AddGauge after sampling started")
	}
	s.gauges = append(s.gauges, gauge{name, fn})
	s.series.Cols = append(s.series.Cols, name)
	s.series.Data = append(s.series.Data, nil)
}

// Tick is the engine-advance hook: it samples whenever the clock moves
// at or past the next sampling point. now is the cycle being left (the
// cycle whose state the row describes).
func (s *Sampler) Tick(now uint64) {
	if now < s.next {
		return
	}
	s.Sample(now)
	s.next = (now/s.every + 1) * s.every
}

// Sample appends one row labelled with the given cycle.
func (s *Sampler) Sample(cycle uint64) {
	s.series.Data[0] = append(s.series.Data[0], cycle)
	for i, g := range s.gauges {
		s.series.Data[i+1] = append(s.series.Data[i+1], g.fn())
	}
}

// Series returns the captured time series (live; rows keep appending
// while the simulation runs).
func (s *Sampler) Series() *Series { return &s.series }

// Series is a columnar time series: Cols[0] is always "cycle", and
// Data[i] holds column i's samples, all columns the same length.
type Series struct {
	Cols []string   `json:"cols"`
	Data [][]uint64 `json:"data"`
}

// Rows returns the number of samples captured.
func (s *Series) Rows() int {
	if s == nil || len(s.Data) == 0 {
		return 0
	}
	return len(s.Data[0])
}

// WriteCSV writes the series as one header line plus one line per
// sample.
func (s *Series) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i, c := range s.Cols {
		if i > 0 {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString(c); err != nil {
			return err
		}
	}
	if err := bw.WriteByte('\n'); err != nil {
		return err
	}
	for row := 0; row < s.Rows(); row++ {
		for col := range s.Cols {
			if col > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatUint(s.Data[col][row], 10)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteJSON writes the series as a single JSON object ({"cols": [...],
// "data": [[...], ...]}).
func (s *Series) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(s)
}

// ValidateCSV checks that data looks like a series dump: a header line
// starting with "cycle" and rows with as many fields as the header.
// Used by the CI observability smoke step.
func ValidateCSV(data []byte) error {
	lines := splitLines(data)
	if len(lines) == 0 {
		return fmt.Errorf("obs: metrics CSV is empty")
	}
	header := splitFields(lines[0])
	if len(header) == 0 || header[0] != "cycle" {
		return fmt.Errorf("obs: metrics CSV header must start with \"cycle\", got %q", lines[0])
	}
	if len(lines) < 2 {
		return fmt.Errorf("obs: metrics CSV has no sample rows")
	}
	for i, line := range lines[1:] {
		fields := splitFields(line)
		if len(fields) != len(header) {
			return fmt.Errorf("obs: metrics CSV row %d has %d fields, header has %d", i+1, len(fields), len(header))
		}
		for _, f := range fields {
			if _, err := strconv.ParseUint(f, 10, 64); err != nil {
				return fmt.Errorf("obs: metrics CSV row %d has non-numeric field %q", i+1, f)
			}
		}
	}
	return nil
}

func splitLines(data []byte) []string {
	var lines []string
	start := 0
	for i, b := range data {
		if b == '\n' {
			if i > start {
				lines = append(lines, string(data[start:i]))
			}
			start = i + 1
		}
	}
	if start < len(data) {
		lines = append(lines, string(data[start:]))
	}
	return lines
}

func splitFields(line string) []string {
	var fields []string
	start := 0
	for i := 0; i < len(line); i++ {
		if line[i] == ',' {
			fields = append(fields, line[start:i])
			start = i + 1
		}
	}
	return append(fields, line[start:])
}
