package mesi_test

import (
	"testing"

	"denovogpu/internal/coherence"
	"denovogpu/internal/energy"
	"denovogpu/internal/machine"
	"denovogpu/internal/mem"
	"denovogpu/internal/mesi"
	"denovogpu/internal/noc"
	"denovogpu/internal/sim"
	"denovogpu/internal/stats"
	"denovogpu/internal/workload"
	syncbench "denovogpu/internal/workload/sync"
)

// rig builds engine + mesh + directories + n controllers.
type rig struct {
	eng  *sim.Engine
	mesh *noc.Mesh
	st   *stats.Stats
	back *mem.Backing
	dirs [noc.Nodes]*mesi.Directory
	ctls []*mesi.Controller
}

func newRig(n int) *rig {
	r := &rig{eng: sim.NewEngine(10_000_000), st: stats.New(), back: mem.NewBacking()}
	meter := energy.NewMeter(r.st)
	r.mesh = noc.New(r.eng, r.st, meter)
	for i := noc.NodeID(0); i < noc.Nodes; i++ {
		r.dirs[i] = mesi.NewDirectory(i, r.eng, r.mesh, r.back, r.st, meter)
		r.mesh.Attach(i, noc.PortL2, r.dirs[i])
	}
	for i := 0; i < n; i++ {
		r.ctls = append(r.ctls, mesi.New(noc.NodeID(i), r.eng, r.mesh, r.st, meter, 32*1024, 8))
	}
	return r
}

func (r *rig) run(t *testing.T) {
	t.Helper()
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMESIReadSharedWriteModified(t *testing.T) {
	r := newRig(2)
	l := mem.Line(3)
	r.back.Write(l.Word(0), 5)
	r.eng.Schedule(0, func() {
		// Both read (Shared), then node 0 writes (invalidates node 1).
		r.ctls[0].ReadLine(l, mem.Bit(0), func(v [mem.WordsPerLine]uint32) {
			if v[0] != 5 {
				t.Errorf("read %d", v[0])
			}
			r.ctls[1].ReadLine(l, mem.Bit(0), func([mem.WordsPerLine]uint32) {
				var d [mem.WordsPerLine]uint32
				d[0] = 9
				r.ctls[0].WriteLine(l, mem.Bit(0), d, func() {})
			})
		})
	})
	r.run(t)
	if r.st.Get("mesi.invalidations") != 1 {
		t.Fatalf("invalidations = %d, want 1 (writer-initiated)", r.st.Get("mesi.invalidations"))
	}
	if v, ok := r.ctls[0].PeekWord(l.Word(0)); !ok || v != 9 {
		t.Fatalf("writer value %d (ok=%v), want 9", v, ok)
	}
	if _, ok := r.ctls[1].PeekWord(l.Word(0)); ok {
		t.Fatal("sharer must be invalidated by the write")
	}
	if r.dirs[3].PeekOwner(l) != 0 {
		t.Fatalf("directory owner = %d, want 0", r.dirs[3].PeekOwner(l))
	}
}

func TestMESIOwnershipForwarding(t *testing.T) {
	r := newRig(3)
	l := mem.Line(4)
	done := false
	r.eng.Schedule(0, func() {
		var d [mem.WordsPerLine]uint32
		d[2] = 7
		r.ctls[0].WriteLine(l, mem.Bit(2), d, func() {
			// Node 1 writes: FwdGetM chain through node 0.
			d[2] = 8
			r.ctls[1].WriteLine(l, mem.Bit(2), d, func() {
				// Node 2 reads: FwdGetS from node 1, downgrade + copyback.
				r.ctls[2].ReadLine(l, mem.Bit(2), func(v [mem.WordsPerLine]uint32) {
					if v[2] != 8 {
						t.Errorf("forwarded read %d, want 8", v[2])
					}
					done = true
				})
			})
		})
	})
	r.run(t)
	if !done {
		t.Fatal("chain did not complete")
	}
	if r.st.Get("mesi.dir_fwd_getm") != 1 || r.st.Get("mesi.dir_fwd_gets") != 1 {
		t.Fatalf("forwards: getm=%d gets=%d, want 1/1",
			r.st.Get("mesi.dir_fwd_getm"), r.st.Get("mesi.dir_fwd_gets"))
	}
	// After the downgrade copyback, the directory's copy is current.
	if r.dirs[4].PeekData(l.Word(2)) != 8 {
		t.Fatalf("directory data %d, want 8 (copyback)", r.dirs[4].PeekData(l.Word(2)))
	}
}

func TestMESIAtomicsAtL1(t *testing.T) {
	r := newRig(2)
	w := mem.Line(5).Word(0)
	r.eng.Schedule(0, func() {
		r.ctls[0].Atomic(coherence.AtomicAdd, w, 1, 0, coherence.ScopeGlobal, func(old uint32) {
			if old != 0 {
				t.Errorf("first atomic old = %d", old)
			}
			// Second atomic hits in M state: no traffic.
			sent := r.mesh.Sent()
			r.ctls[0].Atomic(coherence.AtomicAdd, w, 1, 0, coherence.ScopeGlobal, func(old uint32) {
				if old != 1 {
					t.Errorf("second atomic old = %d", old)
				}
				if r.mesh.Sent() != sent {
					t.Error("atomic hit generated traffic")
				}
				// Migrate to node 1.
				r.ctls[1].Atomic(coherence.AtomicAdd, w, 1, 0, coherence.ScopeGlobal, func(old uint32) {
					if old != 2 {
						t.Errorf("migrated atomic old = %d", old)
					}
				})
			})
		})
	})
	r.run(t)
	if v, ok := r.ctls[1].PeekWord(w); !ok || v != 3 {
		t.Fatalf("final value %d (ok=%v), want 3", v, ok)
	}
}

func TestMESIAcquireIsFree(t *testing.T) {
	r := newRig(1)
	l := mem.Line(6)
	r.back.Write(l.Word(0), 4)
	r.eng.Schedule(0, func() {
		r.ctls[0].ReadLine(l, mem.Bit(0), func([mem.WordsPerLine]uint32) {
			r.ctls[0].Acquire(coherence.ScopeGlobal)
			// Unlike the self-invalidating protocols, the copy survives.
			r.ctls[0].ReadLine(l, mem.Bit(0), func([mem.WordsPerLine]uint32) {})
		})
	})
	r.run(t)
	if r.st.Get("l1.read_hits") != 1 {
		t.Fatal("MESI acquire must not invalidate (writer-initiated coherence)")
	}
}

// TestMESIMachineWorkloads runs real benchmarks under the MESI
// extension configuration and verifies functional correctness.
func TestMESIMachineWorkloads(t *testing.T) {
	for _, w := range []workload.Workload{
		syncbench.Mutex(syncbench.MutexParams{Kind: syncbench.SpinMutex, Iters: 5, Accesses: 4}),
		syncbench.TreeBarrier(syncbench.BarrierParams{Iters: 3, Accesses: 3}),
		syncbench.Semaphore(syncbench.SemParams{Iters: 5, LoadsPer: 4}),
	} {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			m := machine.New(machine.MESI())
			w.Host(m)
			if err := m.Err(); err != nil {
				t.Fatal(err)
			}
			if err := w.Verify(m); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMESIMessagePassing is the MP litmus under MESI.
func TestMESIMessagePassing(t *testing.T) {
	m := machine.New(machine.MESI())
	data, flag, out := mem.Addr(0x1000), mem.Addr(0x2000), mem.Addr(0x3000)
	kernel := func(c *workload.Ctx) {
		if c.TB == 0 {
			c.Store(data, 42)
			c.AtomicStore(flag, 1, coherence.ScopeGlobal)
			return
		}
		for c.AtomicLoad(flag, coherence.ScopeGlobal) == 0 {
			c.Wait(20)
		}
		c.Store(out+mem.Addr(4*c.TB), c.Load(data))
	}
	m.Launch(kernel, 8, 32)
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	for tb := 1; tb < 8; tb++ {
		if got := m.Read(out + mem.Addr(4*tb)); got != 42 {
			t.Fatalf("TB %d read %d, want 42", tb, got)
		}
	}
}

// TestMESICopybackRace: a GetM processed while a downgrade copyback is
// in flight must wait for the fresh data — granting the directory's
// stale copy would lose the previous owner's writes.
func TestMESICopybackRace(t *testing.T) {
	r := newRig(3)
	l := mem.Line(7)
	var got uint32
	r.eng.Schedule(0, func() {
		var d [mem.WordsPerLine]uint32
		d[0] = 111
		// Node 0 modifies the line.
		r.ctls[0].WriteLine(l, mem.Bit(0), d, func() {
			// Node 1 reads (FwdGetS: node 0 downgrades; copyback in
			// flight to the directory) and node 2 immediately writes.
			r.ctls[1].ReadLine(l, mem.Bit(0), func([mem.WordsPerLine]uint32) {})
			var d2 [mem.WordsPerLine]uint32
			d2[1] = 222
			r.ctls[2].WriteLine(l, mem.Bit(1), d2, func() {
				r.ctls[2].ReadLine(l, mem.Bit(0)|mem.Bit(1), func(v [mem.WordsPerLine]uint32) {
					got = v[0]
				})
			})
		})
	})
	r.run(t)
	if got != 111 {
		t.Fatalf("word 0 = %d after copyback race, want 111 (stale grant)", got)
	}
	if v, ok := r.ctls[2].PeekWord(l.Word(1)); !ok || v != 222 {
		t.Fatalf("word 1 = %d (ok=%v), want 222", v, ok)
	}
}

// TestMESIRandomMixedStress: random single-writer-per-word traffic plus
// shared atomics over tiny caches, verified word-for-word — the MESI
// analogue of the DeNovo eviction stress test.
func TestMESIRandomMixedStress(t *testing.T) {
	r := newRig(6)
	// Rebuild controllers with tiny caches to force evictions.
	r = func() *rig {
		rr := &rig{eng: sim.NewEngine(10_000_000), st: stats.New(), back: mem.NewBacking()}
		meter := energy.NewMeter(rr.st)
		rr.mesh = noc.New(rr.eng, rr.st, meter)
		for i := noc.NodeID(0); i < noc.Nodes; i++ {
			rr.dirs[i] = mesi.NewDirectory(i, rr.eng, rr.mesh, rr.back, rr.st, meter)
			rr.mesh.Attach(i, noc.PortL2, rr.dirs[i])
		}
		for i := 0; i < 6; i++ {
			rr.ctls = append(rr.ctls, mesi.New(noc.NodeID(i), rr.eng, rr.mesh, rr.st, meter, 1024, 2))
		}
		return rr
	}()
	const words, ops = 256, 200
	ref := make([]uint32, words)
	dataBase := mem.Addr(0x10000)
	syncW := mem.Addr(0x90000).WordOf()
	rng := newSplitMix(77)
	type step struct {
		isSync bool
		idx    int
		val    uint32
	}
	scripts := make([][]step, 6)
	totalSyncs := 0
	for n := 0; n < 6; n++ {
		for k := 0; k < ops; k++ {
			if rng()%5 == 0 {
				scripts[n] = append(scripts[n], step{isSync: true})
				totalSyncs++
			} else {
				w := int(rng())%(words/6)*6 + n
				v := rng()
				scripts[n] = append(scripts[n], step{idx: w, val: v})
				ref[w] = v
			}
		}
	}
	for n := 0; n < 6; n++ {
		n := n
		c := r.ctls[n]
		var run func(i int)
		run = func(i int) {
			if i == len(scripts[n]) {
				return
			}
			s := scripts[n][i]
			if s.isSync {
				c.Atomic(coherence.AtomicAdd, syncW, 1, 0, coherence.ScopeGlobal, func(uint32) { run(i + 1) })
				return
			}
			a := dataBase + mem.Addr(4*s.idx)
			var d [mem.WordsPerLine]uint32
			d[a.WordIndex()] = s.val
			c.WriteLine(a.LineOf(), mem.Bit(a.WordIndex()), d, func() { run(i + 1) })
		}
		r.eng.Schedule(0, func() { run(0) })
	}
	r.run(t)
	// Read every word coherently via the directory/owner.
	readWord := func(w mem.Word) uint32 {
		d := r.dirs[mesi.HomeNode(w.LineOf())]
		if owner := d.PeekOwner(w.LineOf()); owner != -1 && int(owner) < len(r.ctls) {
			if v, ok := r.ctls[owner].PeekWord(w); ok {
				return v
			}
		}
		return d.PeekData(w)
	}
	for w := 0; w < words; w++ {
		a := dataBase + mem.Addr(4*w)
		if got := readWord(a.WordOf()); got != ref[w] {
			t.Fatalf("word %d = %d, want %d", w, got, ref[w])
		}
	}
	if got := readWord(syncW); got != uint32(totalSyncs) {
		t.Fatalf("sync counter %d, want %d", got, totalSyncs)
	}
}

// newSplitMix is a tiny deterministic RNG for test scripts.
func newSplitMix(seed uint64) func() uint32 {
	s := seed
	return func() uint32 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return uint32(z ^ (z >> 31))
	}
}
