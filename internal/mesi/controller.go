package mesi

import (
	"fmt"

	"denovogpu/internal/cache"
	"denovogpu/internal/coherence"
	"denovogpu/internal/energy"
	"denovogpu/internal/mem"
	"denovogpu/internal/noc"
	"denovogpu/internal/sim"
	"denovogpu/internal/stats"
)

// Interned counter keys: hot-path counting indexes an array
// instead of hashing the name per event (see stats.Intern).
var (
	kL1InvalidatedLines = stats.Intern("l1.invalidated_lines")
	kL1ReadHits         = stats.Intern("l1.read_hits")
	kL1ReadMisses       = stats.Intern("l1.read_misses")
	kL1SyncHits         = stats.Intern("l1.sync_hits")
	kL1SyncMisses       = stats.Intern("l1.sync_misses")
	kL1WriteHits        = stats.Intern("l1.write_hits")
	kL1WriteMisses      = stats.Intern("l1.write_misses")
	kL1Writebacks       = stats.Intern("l1.writebacks")
	kMesiFwdsServed     = stats.Intern("mesi.fwds_served")
)

// Line states are stored uniformly across the entry's word states:
// Invalid, Valid (= Shared), Registered (= Modified). Exclusive is
// folded into Modified (silent E->M upgrade), a common simplification
// that does not change any traffic the paper's analysis cares about.

type waiterKind int

const (
	waitRead waiterKind = iota
	waitWrite
	waitAtomic
)

type waiter struct {
	kind waiterKind
	need mem.WordMask
	// write payload
	mask mem.WordMask
	data [mem.WordsPerLine]uint32
	// atomic payload
	op       coherence.AtomicOp
	word     int
	operand  uint32
	operand2 uint32

	readCB   func([mem.WordsPerLine]uint32)
	writeCB  func()
	atomicCB func(uint32)
}

type txn struct {
	line     mem.Line
	wantM    bool
	dataIn   bool
	data     [mem.WordsPerLine]uint32
	acksNeed int // -1 until DataM arrives
	acksGot  int
	waiters  []waiter
	deferred []*coherence.Msg // forwards awaiting our completion
}

// Controller is one CU's MESI L1.
type Controller struct {
	node  noc.NodeID
	eng   *sim.Engine
	mesh  *noc.Mesh
	st    *stats.Stats
	meter *energy.Meter

	cache  *cache.Cache
	mshr   map[mem.Line]*txn
	victim map[mem.Line]*victimLine

	relWaiters []func()
}

type victimLine struct {
	data      [mem.WordsPerLine]uint32
	servedFwd bool
}

// New returns a MESI L1 controller attached at node.
func New(node noc.NodeID, eng *sim.Engine, mesh *noc.Mesh, st *stats.Stats, meter *energy.Meter, l1Bytes, l1Ways int) *Controller {
	c := &Controller{
		node: node, eng: eng, mesh: mesh, st: st, meter: meter,
		cache:  cache.New(l1Bytes, l1Ways),
		mshr:   make(map[mem.Line]*txn),
		victim: make(map[mem.Line]*victimLine),
	}
	mesh.Attach(node, noc.PortL1, c)
	return c
}

var _ coherence.L1 = (*Controller)(nil)

func (c *Controller) send(m *coherence.Msg) { c.mesh.Send(mesiPacket{m}) }

func (c *Controller) lineState(l mem.Line) (st cache.WordState, e *cache.Entry) {
	e = c.cache.Lookup(l)
	if e == nil {
		return cache.Invalid, nil
	}
	return e.State[0], e
}

// ReadLine implements coherence.L1.
func (c *Controller) ReadLine(l mem.Line, need mem.WordMask, cb func([mem.WordsPerLine]uint32)) {
	c.meter.L1Access(1)
	if st, e := c.lineState(l); st != cache.Invalid {
		c.st.IncKey(kL1ReadHits, 1)
		vals := e.Data
		c.eng.Schedule(coherence.L1HitCycles, func() { cb(vals) })
		return
	}
	c.st.IncKey(kL1ReadMisses, 1)
	c.meter.L1Tag(1)
	t := c.ensureTxn(l, false)
	t.waiters = append(t.waiters, waiter{kind: waitRead, need: need, readCB: cb})
}

// WriteLine implements coherence.L1: writes need Modified state; a
// write to a Shared or Invalid line stalls on a GetM (plus its
// invalidation acks) — MESI's write-for-ownership cost, which the
// store-buffer-based GPU protocols avoid.
func (c *Controller) WriteLine(l mem.Line, mask mem.WordMask, data [mem.WordsPerLine]uint32, cb func()) {
	c.meter.L1Access(1)
	if st, e := c.lineState(l); st == cache.Registered {
		for i := 0; i < mem.WordsPerLine; i++ {
			if mask.Has(i) {
				e.Data[i] = data[i]
			}
		}
		c.st.IncKey(kL1WriteHits, 1)
		c.eng.Schedule(coherence.L1HitCycles, cb)
		return
	}
	c.st.IncKey(kL1WriteMisses, 1)
	t := c.ensureTxn(l, true)
	t.waiters = append(t.waiters, waiter{kind: waitWrite, mask: mask, data: data, writeCB: cb})
}

// Atomic implements coherence.L1: synchronization performs locally once
// the line is Modified (scopes are ignored — conventional protocols
// have not been explored with HRF, per the paper's Section 3).
func (c *Controller) Atomic(op coherence.AtomicOp, w mem.Word, operand, operand2 uint32, _ coherence.Scope, cb func(uint32)) {
	l := w.LineOf()
	c.meter.L1Access(1)
	if st, e := c.lineState(l); st == cache.Registered {
		next, ret := op.Apply(e.Data[w.Index()], operand, operand2)
		e.Data[w.Index()] = next
		c.st.IncKey(kL1SyncHits, 1)
		c.eng.Schedule(coherence.L1HitCycles, func() { cb(ret) })
		return
	}
	c.st.IncKey(kL1SyncMisses, 1)
	t := c.ensureTxn(l, true)
	t.waiters = append(t.waiters, waiter{kind: waitAtomic, op: op, word: w.Index(), operand: operand, operand2: operand2, atomicCB: cb})
}

func (c *Controller) ensureTxn(l mem.Line, wantM bool) *txn {
	t, ok := c.mshr[l]
	if !ok {
		t = &txn{line: l, acksNeed: -1}
		c.mshr[l] = t
		if e := c.cache.Peek(l); e != nil {
			e.Pinned = true
		}
		kind := GetS
		if wantM {
			kind = GetM
			t.wantM = true
		}
		c.send(msg(kind, c.node, HomeNode(l), noc.PortL2, l))
		return t
	}
	if wantM && !t.wantM {
		// Upgrade: a read transaction in flight cannot satisfy a write;
		// issue the GetM as well. The directory processes them in
		// order; the DataS and DataM both route here, and Modified
		// subsumes Shared.
		t.wantM = true
		c.send(msg(GetM, c.node, HomeNode(l), noc.PortL2, l))
	}
	return t
}

// Acquire implements coherence.L1: writer-initiated invalidations keep
// caches coherent, so an acquire invalidates nothing — the flip side of
// paying invalidation traffic on every write to shared data.
func (c *Controller) Acquire(coherence.Scope) {}

// Release implements coherence.L1: complete when no transactions are
// outstanding (every prior write holds Modified state).
func (c *Controller) Release(_ coherence.Scope, cb func()) {
	if len(c.mshr) == 0 {
		c.eng.Schedule(coherence.L1HitCycles, cb)
		return
	}
	c.relWaiters = append(c.relWaiters, cb)
}

// Drained implements coherence.L1.
func (c *Controller) Drained() bool {
	return len(c.mshr) == 0 && len(c.victim) == 0
}

// HoldsModified reports whether this L1 holds the line in Modified
// state — the L1 side of the directory's owner agreement, checked by
// the protocol sanitizer (machine.Config.Invariants).
func (c *Controller) HoldsModified(l mem.Line) bool {
	e := c.cache.Peek(l)
	return e != nil && e.State[0] == cache.Registered
}

// CheckInvariants validates the sanitizer's quiesced-state suite for
// this controller: with no transactions outstanding, no release may
// still be waiting (a stranded release waiter is a lost wakeup that
// surfaces as a kernel deadlock).
func (c *Controller) CheckInvariants() error {
	if len(c.mshr) == 0 && len(c.relWaiters) > 0 {
		return fmt.Errorf("mesi: node %d has %d release waiters with no transactions outstanding", c.node, len(c.relWaiters))
	}
	return nil
}

// Deliver implements noc.Handler.
func (c *Controller) Deliver(p noc.Packet) {
	var m *coherence.Msg
	switch pk := p.(type) {
	case mesiPacket:
		m = pk.Msg
	case *coherence.Msg:
		m = pk
	default:
		panic(fmt.Sprintf("mesi: unexpected packet %T", p))
	}
	switch m.Kind {
	case DataS:
		c.dataArrived(m, false)
	case DataM:
		t := c.mshr[m.Line]
		if t != nil {
			t.acksNeed = int(m.Operand)
		}
		c.dataArrived(m, true)
	case InvAck:
		t := c.mshr[m.Line]
		if t == nil {
			panic("mesi: stray InvAck")
		}
		t.acksGot++
		c.maybeComplete(t)
	case Inv:
		c.invalidate(m)
	case FwdGetS:
		c.fwdGetS(m)
	case FwdGetM:
		c.fwdGetM(m)
	case PutAck:
		if v, ok := c.victim[m.Line]; ok {
			_ = v
			delete(c.victim, m.Line)
		}
	default:
		panic(fmt.Sprintf("mesi: L1 got kind %d", int(m.Kind)))
	}
}

func (c *Controller) dataArrived(m *coherence.Msg, modified bool) {
	t := c.mshr[m.Line]
	if t == nil {
		return // e.g. DataS superseded by a completed upgrade
	}
	t.dataIn = true
	t.data = m.Data
	if !modified && !t.wantM {
		c.installShared(t)
		return
	}
	if !modified {
		// DataS for a transaction that was upgraded to GetM: hold the
		// data; the DataM (or forwarded DataM) completes it.
		return
	}
	c.maybeComplete(t)
}

func (c *Controller) maybeComplete(t *txn) {
	if !t.dataIn || t.acksNeed < 0 || t.acksGot < t.acksNeed {
		return
	}
	c.installModified(t)
}

func (c *Controller) frame(l mem.Line) *cache.Entry {
	e := c.cache.Victim(l)
	if e == nil {
		panic("mesi: no victim frame (set fully pinned)")
	}
	if e.Tag && e.Line != l {
		c.evict(e)
	}
	if !e.Tag || e.Line != l {
		e.Reset(l)
	}
	return e
}

func (c *Controller) evict(e *cache.Entry) {
	if e.State[0] == cache.Registered {
		c.st.IncKey(kL1Writebacks, 1)
		c.victim[e.Line] = &victimLine{data: e.Data}
		pm := msg(PutM, c.node, HomeNode(e.Line), noc.PortL2, e.Line)
		pm.Data = e.Data
		c.send(pm)
	}
}

func (c *Controller) installShared(t *txn) {
	e := c.frame(t.line)
	e.Data = t.data
	for i := range e.State {
		e.State[i] = cache.Valid
	}
	c.cache.Touch(e)
	c.meter.L1Access(1)
	c.retire(t, e)
}

func (c *Controller) installModified(t *txn) {
	e := c.frame(t.line)
	e.Data = t.data
	// Apply queued writes and atomics in arrival order.
	delay := sim.Time(coherence.L1HitCycles)
	for _, w := range t.waiters {
		switch w.kind {
		case waitWrite:
			for i := 0; i < mem.WordsPerLine; i++ {
				if w.mask.Has(i) {
					e.Data[i] = w.data[i]
				}
			}
			cb := w.writeCB
			c.eng.Schedule(delay, cb)
		case waitAtomic:
			next, ret := w.op.Apply(e.Data[w.word], w.operand, w.operand2)
			e.Data[w.word] = next
			cb := w.atomicCB
			c.eng.Schedule(delay, func() { cb(ret) })
		case waitRead:
			vals := e.Data
			cb := w.readCB
			c.eng.Schedule(delay, func() { cb(vals) })
		}
		delay++
	}
	t.waiters = nil
	for i := range e.State {
		e.State[i] = cache.Registered
	}
	c.cache.Touch(e)
	c.meter.L1Access(1)
	c.finishTxn(t, e)
}

// retire completes read waiters of a Shared install.
func (c *Controller) retire(t *txn, e *cache.Entry) {
	delay := sim.Time(coherence.L1HitCycles)
	for _, w := range t.waiters {
		if w.kind != waitRead {
			panic("mesi: non-read waiter on a Shared install")
		}
		vals := e.Data
		cb := w.readCB
		c.eng.Schedule(delay, func() { cb(vals) })
		delay++
	}
	t.waiters = nil
	c.finishTxn(t, e)
}

func (c *Controller) finishTxn(t *txn, e *cache.Entry) {
	delete(c.mshr, t.line)
	if e != nil {
		e.Pinned = false
	}
	// Service deferred forwards now that our access is done.
	for _, f := range t.deferred {
		c.serviceFwd(f)
	}
	t.deferred = nil
	if len(c.mshr) == 0 {
		ws := c.relWaiters
		c.relWaiters = nil
		for _, w := range ws {
			w()
		}
	}
}

func (c *Controller) invalidate(m *coherence.Msg) {
	if e := c.cache.Peek(m.Line); e != nil && e.State[0] == cache.Valid {
		for i := range e.State {
			e.State[i] = cache.Invalid
		}
		if !e.Pinned {
			e.Tag = false
		}
		c.st.IncKey(kL1InvalidatedLines, 1)
	}
	// Always ack, even for silently evicted (stale-sharer) lines.
	c.send(msg(InvAck, c.node, m.Requester, noc.PortL1, m.Line))
}

func (c *Controller) fwdGetS(m *coherence.Msg) {
	if t, ok := c.mshr[m.Line]; ok {
		t.deferred = append(t.deferred, m)
		return
	}
	c.serviceFwd(m)
}

func (c *Controller) fwdGetM(m *coherence.Msg) {
	if t, ok := c.mshr[m.Line]; ok {
		t.deferred = append(t.deferred, m)
		return
	}
	c.serviceFwd(m)
}

func (c *Controller) serviceFwd(m *coherence.Msg) {
	var data [mem.WordsPerLine]uint32
	e := c.cache.Peek(m.Line)
	switch {
	case e != nil && e.State[0] == cache.Registered:
		data = e.Data
		if m.Kind == FwdGetS {
			for i := range e.State {
				e.State[i] = cache.Valid // downgrade
			}
		} else {
			for i := range e.State {
				e.State[i] = cache.Invalid
			}
			if !e.Pinned {
				e.Tag = false
			}
		}
	default:
		v, ok := c.victim[m.Line]
		if !ok {
			panic(fmt.Sprintf("mesi: node %d forwarded for %v it does not hold", c.node, m.Line))
		}
		data = v.data
		v.servedFwd = true
	}
	c.meter.L1Access(1)
	c.st.IncKey(kMesiFwdsServed, 1)
	if m.Kind == FwdGetS {
		resp := msg(DataS, c.node, m.Requester, noc.PortL1, m.Line)
		resp.Data = data
		c.send(resp)
		// Copy back to the directory so its data is current.
		pm := msg(PutM, c.node, HomeNode(m.Line), noc.PortL2, m.Line)
		pm.Data = data
		c.send(pm)
		return
	}
	resp := msg(DataM, c.node, m.Requester, noc.PortL1, m.Line)
	resp.Data = data
	resp.Operand = 0 // ownership transfer carries no pending acks
	c.send(resp)
}

// PeekWord implements coherence.L1 (functional host access).
func (c *Controller) PeekWord(w mem.Word) (uint32, bool) {
	if e := c.cache.Peek(w.LineOf()); e != nil && e.State[w.Index()] != cache.Invalid {
		return e.Data[w.Index()], true
	}
	if v, ok := c.victim[w.LineOf()]; ok {
		return v.data[w.Index()], true
	}
	return 0, false
}

// HostInvalidateLine implements coherence.L1. MESI state is per line,
// so any selected word invalidates the whole line.
func (c *Controller) HostInvalidateLine(l mem.Line, _ mem.WordMask) {
	if e := c.cache.Peek(l); e != nil && e.State[0] == cache.Valid {
		for i := range e.State {
			e.State[i] = cache.Invalid
		}
	}
}

// HostSteal functionally removes a Modified line, returning its data.
func (c *Controller) HostSteal(l mem.Line) ([mem.WordsPerLine]uint32, bool) {
	if e := c.cache.Peek(l); e != nil && e.State[0] == cache.Registered {
		data := e.Data
		for i := range e.State {
			e.State[i] = cache.Invalid
		}
		e.Tag = false
		return data, true
	}
	return [mem.WordsPerLine]uint32{}, false
}
