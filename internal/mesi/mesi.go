// Package mesi implements a conventional hardware coherence protocol —
// writer-initiated invalidations, a directory, line-granularity MESI
// states — the first row of the paper's Table 1.
//
// The paper deliberately does not evaluate MESI ("prior research has
// observed that they incur significant complexity ... and are a poor
// fit for conventional GPU applications"), citing DeNovo's earlier CPU
// comparisons instead. This package exists to make that classification
// row executable: an extension configuration (machine.MESI) runs every
// benchmark under it, and BenchmarkExtensionMESI quantifies the poor
// fit — invalidation/ack traffic, line ping-pong, and write-for-
// ownership stalls on streaming kernels.
//
// Structure mirrors the other protocols: an L1 controller and a
// directory (one slice per L2 bank). As with DeNovo, every state
// mutation is synchronous at message-processing time and only
// completions are delayed; transient states are represented as MSHR
// entries rather than extra stable states.
package mesi

import (
	"fmt"

	"denovogpu/internal/coherence"
	"denovogpu/internal/energy"
	"denovogpu/internal/mem"
	"denovogpu/internal/noc"
	"denovogpu/internal/sim"
	"denovogpu/internal/stats"
)

// Interned counter keys: hot-path counting indexes an array
// instead of hashing the name per event (see stats.Intern).
var (
	kL2DramFetches     = stats.Intern("l2.dram_fetches")
	kMesiDirFwdGetm    = stats.Intern("mesi.dir_fwd_getm")
	kMesiDirFwdGets    = stats.Intern("mesi.dir_fwd_gets")
	kMesiInvalidations = stats.Intern("mesi.invalidations")
)

// Message kinds, carried in coherence.Msg.Op? No — MESI gets its own
// kind space on top of coherence.Msg via the Kind field values below.
// They continue the coherence.MsgKind enumeration.
const (
	// GetS requests a line for reading.
	GetS coherence.MsgKind = 100 + iota
	// GetM requests a line for writing (ownership + invalidations).
	GetM
	// DataS carries line data granting Shared state.
	DataS
	// DataM carries line data granting Modified state; Operand holds
	// the number of invalidation acks the requester must collect.
	DataM
	// Inv tells a sharer to invalidate; the ack goes to the requester.
	Inv
	// InvAck acknowledges an invalidation to the new owner.
	InvAck
	// FwdGetS asks the current owner to send data to a reader and
	// downgrade to Shared (with a writeback copy to the directory).
	FwdGetS
	// FwdGetM asks the current owner to send data to a new owner and
	// invalidate.
	FwdGetM
	// PutM writes a modified line back on eviction.
	PutM
	// PutAck acknowledges a writeback.
	PutAck
)

// classOf maps MESI kinds onto the paper's traffic classes: data
// movement counts as reads, ownership/invalidation control as
// registration-like traffic, writebacks as WB/WT.
func classOf(k coherence.MsgKind) stats.TrafficClass {
	switch k {
	case GetS, DataS, FwdGetS:
		return stats.TrafficRead
	case GetM, DataM, Inv, InvAck, FwdGetM:
		return stats.TrafficRegistration
	case PutM, PutAck:
		return stats.TrafficWBWT
	default:
		return stats.TrafficRead
	}
}

// msg builds a MESI message; payload sizing: Data* and PutM carry the
// full 64-byte line, everything else is control.
func msg(kind coherence.MsgKind, src, dst noc.NodeID, port noc.Port, l mem.Line) *coherence.Msg {
	return &coherence.Msg{Kind: kind, Src: src, Dst: dst, Port: port, Line: l}
}

// PayloadBytesFor reports the payload of a MESI message kind.
func PayloadBytesFor(k coherence.MsgKind) int {
	switch k {
	case DataS, DataM, PutM:
		return mem.LineBytes
	default:
		return 0
	}
}

// mesiPacket wraps coherence.Msg to override class and payload for the
// MESI kind space.
type mesiPacket struct{ *coherence.Msg }

func (p mesiPacket) NocRoute() noc.Route {
	return noc.Route{Src: p.Src, Dst: p.Dst, Port: p.Port, Class: classOf(p.Kind), PayloadBytes: PayloadBytesFor(p.Kind)}
}

// dirState is the directory's view of one line.
type dirState struct {
	data    [mem.WordsPerLine]uint32
	sharers map[noc.NodeID]bool
	owner   noc.NodeID // valid when modified
	mod     bool
	// copybackPending blocks the line while a downgrading owner's data
	// is in flight (a GetM processed meanwhile would otherwise grant
	// the directory's stale copy).
	copybackPending bool
	blocked         []*coherence.Msg
}

// Directory is one bank's slice of the MESI directory plus backing data.
type Directory struct {
	Node noc.NodeID

	eng     *sim.Engine
	mesh    *noc.Mesh
	backing *mem.Backing
	st      *stats.Stats
	meter   *energy.Meter

	lines    map[mem.Line]*dirState
	fetching map[mem.Line][]func()
	busy     sim.Time
	dramBusy sim.Time
}

// NewDirectory returns the directory slice for a node.
func NewDirectory(node noc.NodeID, eng *sim.Engine, mesh *noc.Mesh, backing *mem.Backing, st *stats.Stats, meter *energy.Meter) *Directory {
	return &Directory{
		Node: node, eng: eng, mesh: mesh, backing: backing, st: st, meter: meter,
		lines:    make(map[mem.Line]*dirState),
		fetching: make(map[mem.Line][]func()),
	}
}

// HomeNode returns the directory node for a line (same interleaving as
// the L2 banks).
func HomeNode(l mem.Line) noc.NodeID { return noc.NodeID(uint64(l) % noc.Nodes) }

func (d *Directory) send(m *coherence.Msg) { d.mesh.Send(mesiPacket{m}) }

// Deliver implements noc.Handler.
func (d *Directory) Deliver(p noc.Packet) {
	var m *coherence.Msg
	switch pk := p.(type) {
	case mesiPacket:
		m = pk.Msg
	case *coherence.Msg:
		m = pk
	default:
		panic(fmt.Sprintf("mesi: unexpected packet %T", p))
	}
	start := d.eng.Now()
	if d.busy > start {
		start = d.busy
	}
	d.busy = start + coherence.L2OccupancyCycles
	d.meter.L2Access(1)
	at := start + coherence.L2AccessCycles
	d.withLine(m.Line, at, func() { d.process(m) })
}

func (d *Directory) withLine(l mem.Line, at sim.Time, fn func()) {
	if _, ok := d.lines[l]; ok {
		d.eng.At(at, fn)
		return
	}
	if w, in := d.fetching[l]; in {
		d.fetching[l] = append(w, fn)
		return
	}
	d.fetching[l] = []func(){fn}
	d.st.IncKey(kL2DramFetches, 1)
	d.meter.DRAMAccess(1)
	start := at
	if d.dramBusy > start {
		start = d.dramBusy
	}
	d.dramBusy = start + coherence.DRAMOccupancyCycles
	d.eng.At(start+coherence.DRAMCycles, func() {
		d.lines[l] = &dirState{data: d.backing.ReadLine(l), sharers: make(map[noc.NodeID]bool)}
		ws := d.fetching[l]
		delete(d.fetching, l)
		for _, w := range ws {
			w()
		}
	})
}

func (d *Directory) process(m *coherence.Msg) {
	s := d.lines[m.Line]
	if s.copybackPending && m.Kind != PutM {
		s.blocked = append(s.blocked, m)
		return
	}
	switch m.Kind {
	case GetS:
		if s.mod {
			// Owner forwards data to the reader and back to us.
			d.st.IncKey(kMesiDirFwdGets, 1)
			f := msg(FwdGetS, d.Node, s.owner, noc.PortL1, m.Line)
			f.Requester = m.Src
			d.send(f)
			// The owner downgrades: directory now counts both as sharers;
			// the PutM-like copyback updates our data when it arrives.
			s.sharers[s.owner] = true
			s.sharers[m.Src] = true
			s.mod = false
			s.copybackPending = true
			return
		}
		s.sharers[m.Src] = true
		resp := msg(DataS, d.Node, m.Src, noc.PortL1, m.Line)
		resp.Data = s.data
		d.send(resp)
	case GetM:
		acks := 0
		if s.mod {
			d.st.IncKey(kMesiDirFwdGetm, 1)
			f := msg(FwdGetM, d.Node, s.owner, noc.PortL1, m.Line)
			f.Requester = m.Src
			d.send(f)
			s.owner = m.Src
			return
		}
		// Invalidate sharers (other than the requester).
		for sh := noc.NodeID(0); sh < noc.Nodes; sh++ {
			if !s.sharers[sh] || sh == m.Src {
				continue
			}
			acks++
			inv := msg(Inv, d.Node, sh, noc.PortL1, m.Line)
			inv.Requester = m.Src
			d.send(inv)
			d.st.IncKey(kMesiInvalidations, 1)
		}
		s.sharers = make(map[noc.NodeID]bool)
		s.mod = true
		s.owner = m.Src
		resp := msg(DataM, d.Node, m.Src, noc.PortL1, m.Line)
		resp.Data = s.data
		resp.Operand = uint32(acks)
		d.send(resp)
	case PutM:
		switch {
		case s.copybackPending && s.sharers[m.Src]:
			// Downgrade copyback from a FwdGetS: accept the data and
			// unblock the line.
			s.data = m.Data
			s.copybackPending = false
			blocked := s.blocked
			s.blocked = nil
			for _, bm := range blocked {
				d.process(bm)
			}
		case s.mod && s.owner == m.Src:
			s.data = m.Data
			s.mod = false
			s.sharers = make(map[noc.NodeID]bool)
		}
		// Stale PutM from a since-replaced owner is dropped silently.
		d.send(msg(PutAck, d.Node, m.Src, noc.PortL1, m.Line))
	default:
		panic(fmt.Sprintf("mesi: directory got %d", int(m.Kind)))
	}
}

// Host helpers (untimed), mirroring the l2.Bank API.

// PeekOwner returns the modified-line owner or -1.
func (d *Directory) PeekOwner(l mem.Line) noc.NodeID {
	if s, ok := d.lines[l]; ok && s.mod {
		return s.owner
	}
	return -1
}

// ForEachModified calls fn for every line the directory records as
// Modified, with its owner. Used by the protocol sanitizer
// (machine.CheckInvariants) to verify directory/L1 owner agreement at
// quiesce points; iteration order is unspecified.
func (d *Directory) ForEachModified(fn func(l mem.Line, owner noc.NodeID)) {
	for l, s := range d.lines {
		if s.mod {
			fn(l, s.owner)
		}
	}
}

// PeekData returns the directory's copy of a word.
func (d *Directory) PeekData(w mem.Word) uint32 {
	if s, ok := d.lines[w.LineOf()]; ok {
		return s.data[w.Index()]
	}
	return d.backing.Read(w)
}

// Recall functionally returns a line to the directory with up-to-date
// data (host access between kernels).
func (d *Directory) Recall(l mem.Line, data [mem.WordsPerLine]uint32) {
	s, ok := d.lines[l]
	if !ok {
		s = &dirState{sharers: make(map[noc.NodeID]bool)}
		d.lines[l] = s
	}
	s.data = data
	s.mod = false
	s.sharers = make(map[noc.NodeID]bool)
}

// PokeWord sets one word (host write); the line must not be modified.
func (d *Directory) PokeWord(w mem.Word, v uint32) {
	s, ok := d.lines[w.LineOf()]
	if !ok {
		d.backing.Write(w, v)
		return
	}
	if s.mod {
		panic("mesi: host write to modified line without recall")
	}
	s.data[w.Index()] = v
}

// Sharers lists current sharers (for host invalidation on writes).
func (d *Directory) Sharers(l mem.Line) []noc.NodeID {
	var out []noc.NodeID
	if s, ok := d.lines[l]; ok {
		for n := noc.NodeID(0); n < noc.Nodes; n++ {
			if s.sharers[n] {
				out = append(out, n)
			}
		}
	}
	return out
}
