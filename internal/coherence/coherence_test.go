package coherence

import (
	"testing"
	"testing/quick"

	"denovogpu/internal/mem"
	"denovogpu/internal/stats"
)

func TestOrderSemantics(t *testing.T) {
	cases := []struct {
		o        Order
		acq, rel bool
	}{
		{OrderAcquire, true, false},
		{OrderRelease, false, true},
		{OrderAcqRel, true, true},
	}
	for _, c := range cases {
		if c.o.Acquires() != c.acq || c.o.Releases() != c.rel {
			t.Errorf("%v: Acquires=%v Releases=%v, want %v/%v", c.o, c.o.Acquires(), c.o.Releases(), c.acq, c.rel)
		}
	}
}

func TestAtomicOpApply(t *testing.T) {
	cases := []struct {
		op                AtomicOp
		cur, op1, op2     uint32
		wantNext, wantRet uint32
	}{
		{AtomicLoad, 7, 0, 0, 7, 7},
		{AtomicStore, 7, 9, 0, 9, 7},
		{AtomicAdd, 7, 3, 0, 10, 7},
		{AtomicExch, 7, 9, 0, 9, 7},
		{AtomicCAS, 7, 9, 7, 9, 7}, // success
		{AtomicCAS, 7, 9, 5, 7, 7}, // failure
		{AtomicMin, 7, 3, 0, 3, 7},
		{AtomicMin, 7, 9, 0, 7, 7},
		{AtomicMax, 7, 9, 0, 9, 7},
		{AtomicMax, 7, 3, 0, 7, 7},
	}
	for _, c := range cases {
		next, ret := c.op.Apply(c.cur, c.op1, c.op2)
		if next != c.wantNext || ret != c.wantRet {
			t.Errorf("%v.Apply(%d,%d,%d) = (%d,%d), want (%d,%d)",
				c.op, c.cur, c.op1, c.op2, next, ret, c.wantNext, c.wantRet)
		}
	}
}

// Property: Apply always returns the pre-image as ret (except Load which
// returns current — same thing), and AtomicAdd composes like addition.
func TestAtomicApplyProperty(t *testing.T) {
	f := func(cur, a, b uint32) bool {
		n1, r1 := AtomicAdd.Apply(cur, a, 0)
		n2, r2 := AtomicAdd.Apply(n1, b, 0)
		return r1 == cur && r2 == n1 && n2 == cur+a+b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: CAS succeeds iff the comparand matches.
func TestCASProperty(t *testing.T) {
	f := func(cur, newV, cmp uint32) bool {
		next, ret := AtomicCAS.Apply(cur, newV, cmp)
		if cur == cmp {
			return next == newV && ret == cur
		}
		return next == cur && ret == cur
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMsgTrafficClass(t *testing.T) {
	cases := []struct {
		kind MsgKind
		want stats.TrafficClass
	}{
		{ReadReq, stats.TrafficRead},
		{ReadResp, stats.TrafficRead},
		{ReadFwd, stats.TrafficRead},
		{RegReq, stats.TrafficRegistration},
		{RegAck, stats.TrafficRegistration},
		{RegFwd, stats.TrafficRegistration},
		{RegXfer, stats.TrafficRegistration},
		{WriteThrough, stats.TrafficWBWT},
		{WriteThroughAck, stats.TrafficWBWT},
		{WriteBack, stats.TrafficWBWT},
		{WriteBackAck, stats.TrafficWBWT},
		{AtomicReq, stats.TrafficAtomic},
		{AtomicResp, stats.TrafficAtomic},
	}
	for _, c := range cases {
		m := &Msg{Kind: c.kind}
		if got := m.NocClass(); got != c.want {
			t.Errorf("%v classified as %v, want %v", c.kind, got, c.want)
		}
	}
}

func TestMsgPayloadBytes(t *testing.T) {
	m := &Msg{Kind: ReadResp, Mask: mem.AllWords}
	if m.PayloadBytes() != 64 {
		t.Fatalf("full-line ReadResp payload = %d, want 64", m.PayloadBytes())
	}
	m = &Msg{Kind: ReadResp, Mask: mem.Bit(0) | mem.Bit(1)}
	if m.PayloadBytes() != 8 {
		t.Fatalf("two-word ReadResp payload = %d, want 8 (decoupled granularity)", m.PayloadBytes())
	}
	m = &Msg{Kind: ReadReq, Mask: mem.AllWords}
	if m.PayloadBytes() != 0 {
		t.Fatalf("ReadReq should be a control message, got %d bytes", m.PayloadBytes())
	}
	m = &Msg{Kind: AtomicReq}
	if m.PayloadBytes() != 8 {
		t.Fatalf("AtomicReq payload = %d, want 8", m.PayloadBytes())
	}
}

func TestScopeAndKindStrings(t *testing.T) {
	if ScopeLocal.String() != "local" || ScopeGlobal.String() != "global" {
		t.Fatal("scope strings wrong")
	}
	if ReadReq.String() != "ReadReq" || AtomicResp.String() != "AtomicResp" {
		t.Fatal("kind strings wrong")
	}
	if AtomicCAS.String() != "cas" {
		t.Fatal("op string wrong")
	}
}
