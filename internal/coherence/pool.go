package coherence

// MsgPool is a free list of Msg structs, eliminating the per-message
// heap allocation that dominated the mesh traffic cost (~136 bytes per
// Send before pooling).
//
// Ownership discipline: a message belongs to its sender until Send,
// then to the receiving handler. The receiver returns it with Put once
// processing is complete — including any processing deferred behind a
// DRAM fetch — and must copy out anything it keeps longer (the
// controllers already copy messages they defer). Each component keeps
// its own private pool; free messages migrate between pools as traffic
// flows (an L1's request is freed into the bank's pool, the bank's
// response into the L1's), which needs no sharing or synchronization
// because every pool belongs to one single-threaded machine.
//
// Not safe for concurrent use, exactly like the components that embed
// it.
type MsgPool struct {
	free []*Msg
}

// Get returns a zeroed message from the pool, allocating if empty.
func (p *MsgPool) Get() *Msg {
	if n := len(p.free); n > 0 {
		m := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return m
	}
	return &Msg{}
}

// NewMsg returns a pooled message initialized to v — a drop-in for
// &Msg{...} literals at send sites.
func (p *MsgPool) NewMsg(v Msg) *Msg {
	m := p.Get()
	*m = v
	return m
}

// Put returns a message to the pool. The caller must not touch m
// afterwards.
func (p *MsgPool) Put(m *Msg) {
	p.free = append(p.free, m)
}
