// Package coherence defines the vocabulary shared by both coherence
// protocols: synchronization scopes and orders, atomic operations, and
// the message types exchanged between L1 controllers and L2 banks over
// the mesh.
//
// The two protocol implementations (internal/gpucoh, internal/denovo)
// speak overlapping subsets of this vocabulary; the L2 bank
// (internal/l2) implements the bank-side behaviour for both.
package coherence

import (
	"fmt"

	"denovogpu/internal/mem"
	"denovogpu/internal/noc"
	"denovogpu/internal/stats"
)

// Scope is an HRF synchronization scope. In our two-level hierarchy
// there are exactly two scopes, matching the paper: a CU's L1 (shared by
// the thread blocks on that CU) and the global L2 (shared by everyone).
// Under the DRF configurations every synchronization is treated as
// ScopeGlobal regardless of the annotation.
type Scope int

const (
	// ScopeGlobal synchronizes all CUs and the CPU through the L2.
	ScopeGlobal Scope = iota
	// ScopeLocal synchronizes only the thread blocks of one CU through
	// its L1.
	ScopeLocal
)

func (s Scope) String() string {
	if s == ScopeLocal {
		return "local"
	}
	return "global"
}

// Order is the memory-order attribute of a synchronization access under
// DRF/HRF: a synchronization read is an acquire, a synchronization
// write is a release, and a read-modify-write is both. The paper does
// not allow relaxed atomics (Section 5.3); OrderRelaxed is the
// extension from the follow-up work (Salvador et al.) for graph
// analytics: the atomic is still a single indivisible RMW, but it
// orders nothing around it — no flash/self-invalidation on the way in,
// no store-buffer flush on the way out.
type Order int

const (
	OrderAcquire Order = iota
	OrderRelease
	OrderAcqRel
	OrderRelaxed
)

// Acquires reports whether the order includes acquire semantics.
func (o Order) Acquires() bool { return o == OrderAcquire || o == OrderAcqRel }

// Releases reports whether the order includes release semantics.
func (o Order) Releases() bool { return o == OrderRelease || o == OrderAcqRel }

func (o Order) String() string {
	switch o {
	case OrderAcquire:
		return "acquire"
	case OrderRelease:
		return "release"
	case OrderRelaxed:
		return "relaxed"
	default:
		return "acq_rel"
	}
}

// AtomicOp is the RMW (or sync read/write) operation performed by a
// synchronization access.
type AtomicOp int

const (
	// AtomicLoad is a synchronization read (returns the value).
	AtomicLoad AtomicOp = iota
	// AtomicStore is a synchronization write (stores Operand).
	AtomicStore
	// AtomicAdd adds Operand, returns the old value.
	AtomicAdd
	// AtomicExch stores Operand, returns the old value.
	AtomicExch
	// AtomicCAS stores Operand if current == Operand2, returns the old value.
	AtomicCAS
	// AtomicMin stores min(current, Operand), returns the old value.
	AtomicMin
	// AtomicMax stores max(current, Operand), returns the old value.
	AtomicMax
)

func (op AtomicOp) String() string {
	switch op {
	case AtomicLoad:
		return "load"
	case AtomicStore:
		return "store"
	case AtomicAdd:
		return "add"
	case AtomicExch:
		return "exch"
	case AtomicCAS:
		return "cas"
	case AtomicMin:
		return "min"
	case AtomicMax:
		return "max"
	default:
		return fmt.Sprintf("AtomicOp(%d)", int(op))
	}
}

// Apply executes the operation against a current value, returning the
// new value to store and the value returned to the program (the old
// value, or for AtomicLoad the current value).
func (op AtomicOp) Apply(cur, operand, operand2 uint32) (next, ret uint32) {
	switch op {
	case AtomicLoad:
		return cur, cur
	case AtomicStore:
		return operand, cur
	case AtomicAdd:
		return cur + operand, cur
	case AtomicExch:
		return operand, cur
	case AtomicCAS:
		if cur == operand2 {
			return operand, cur
		}
		return cur, cur
	case AtomicMin:
		if operand < cur {
			return operand, cur
		}
		return cur, cur
	case AtomicMax:
		if operand > cur {
			return operand, cur
		}
		return cur, cur
	default:
		panic(fmt.Sprintf("coherence: unknown atomic op %d", int(op)))
	}
}

// WritesBack reports whether applying the operation performed a memory
// write: a synchronization load never writes (treating its read value
// as a store would let it clobber a concurrent writer's update), and a
// conditional RMW (CAS, min, max) writes only when it changed the
// value.
func (op AtomicOp) WritesBack(cur, next uint32) bool {
	switch op {
	case AtomicLoad:
		return false
	case AtomicStore, AtomicExch, AtomicAdd:
		return true
	default:
		return next != cur
	}
}

// MsgKind enumerates the protocol messages.
type MsgKind int

const (
	// ReadReq asks the L2 bank for the words of a line (GPU: whole
	// line; DeNovo: the bank returns the words it has and forwards for
	// registered ones).
	ReadReq MsgKind = iota
	// ReadResp returns line data to the requester.
	ReadResp
	// ReadFwd forwards a read to the L1 currently registered for some
	// of the requested words (DeNovo only).
	ReadFwd
	// WriteThrough carries dirty words to the L2 (GPU protocol).
	WriteThrough
	// WriteThroughAck acknowledges a writethrough.
	WriteThroughAck
	// RegReq asks the registry for ownership of words (DeNovo).
	RegReq
	// RegAck grants ownership, with current data values for the words.
	RegAck
	// RegFwd tells the previous owner to pass ownership (and data)
	// directly to the new requester (DeNovo).
	RegFwd
	// RegXfer carries ownership and data from the previous owner to the
	// new owner (DeNovo).
	RegXfer
	// WriteBack returns owned dirty words to the L2 on eviction (DeNovo).
	WriteBack
	// WriteBackAck acknowledges a writeback.
	WriteBackAck
	// AtomicReq performs a remote atomic at the L2 bank (GPU protocol).
	AtomicReq
	// AtomicResp returns the atomic's result.
	AtomicResp
	// DirectReadReq asks a *predicted* owner L1 directly for registered
	// words (the direct cache-to-cache transfer optimization; DeNovo
	// with Options.DirectTransfer).
	DirectReadReq
	// ReadNack tells a direct requester the prediction missed; it falls
	// back to the registry.
	ReadNack
)

func (k MsgKind) String() string {
	names := [...]string{"ReadReq", "ReadResp", "ReadFwd", "WriteThrough", "WriteThroughAck",
		"RegReq", "RegAck", "RegFwd", "RegXfer", "WriteBack", "WriteBackAck", "AtomicReq", "AtomicResp",
		"DirectReadReq", "ReadNack"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("MsgKind(%d)", int(k))
}

// Msg is a coherence message. One struct covers all kinds; unused
// fields are zero. Msgs are routed by the mesh via the Packet interface.
type Msg struct {
	Kind MsgKind
	Src  noc.NodeID
	Dst  noc.NodeID
	Port noc.Port

	Line mem.Line
	Mask mem.WordMask // words requested / carried / granted
	Data [mem.WordsPerLine]uint32

	// Requester is the node on whose behalf a forward travels; the
	// response goes directly there (3-hop transactions).
	Requester noc.NodeID

	// Atomic payload (AtomicReq/AtomicResp, and sync registrations).
	Op       AtomicOp
	WordIdx  int // which word of Line the atomic targets
	Operand  uint32
	Operand2 uint32
	Result   uint32

	// Sync marks registration messages that implement synchronization
	// accesses (DeNovoSync0 registers sync reads and writes); they are
	// classified as atomic traffic, like the paper's figures do.
	Sync bool

	// NeedsData marks registrations that must return the word's current
	// value (sync RMWs). Data-write registrations overwrite the whole
	// word, so their acks are pure control messages — part of DeNovo's
	// traffic advantage.
	NeedsData bool

	// WBAccepted is the subset of a WriteBack's words the registry
	// accepted (it rejects words whose ownership had already moved on;
	// the evicting L1 then keeps its victim copy until the in-flight
	// forward arrives).
	WBAccepted mem.WordMask

	// ID matches responses to outstanding requests.
	ID uint64
}

// NocRoute implements noc.Packet in a single dynamic dispatch.
func (m *Msg) NocRoute() noc.Route {
	return noc.Route{Src: m.Src, Dst: m.Dst, Port: m.Port, Class: m.NocClass(), PayloadBytes: m.PayloadBytes()}
}

// NocClass classifies traffic the way the paper's figures do.
func (m *Msg) NocClass() stats.TrafficClass {
	switch m.Kind {
	case ReadReq, ReadResp, ReadFwd, DirectReadReq, ReadNack:
		return stats.TrafficRead
	case RegReq, RegAck, RegFwd, RegXfer:
		if m.Sync {
			return stats.TrafficAtomic
		}
		return stats.TrafficRegistration
	case WriteThrough, WriteThroughAck, WriteBack, WriteBackAck:
		return stats.TrafficWBWT
	case AtomicReq, AtomicResp:
		return stats.TrafficAtomic
	default:
		return stats.TrafficRead
	}
}

// PayloadBytes reports the message's data payload. Control messages
// carry nothing beyond the header; data-bearing messages carry 4 bytes
// per word moved.
// This is where DeNovo's decoupled transfer granularity pays off on the
// wire: a response carries only the words it actually moves.
func (m *Msg) PayloadBytes() int {
	switch m.Kind {
	case ReadResp, RegXfer, WriteThrough, WriteBack:
		return m.Mask.Count() * mem.WordBytes
	case RegAck:
		// Ownership grant carries current values for the granted words
		// only when the requester needs them (sync RMW); data writes
		// overwrite whole words so their grants are control messages.
		if m.NeedsData {
			return m.Mask.Count() * mem.WordBytes
		}
		return 0
	case AtomicReq:
		return 8 // operands
	case AtomicResp:
		return 4 // result
	default:
		return 0
	}
}
