package coherence

import "denovogpu/internal/mem"

// Timing parameters (cycles), chosen with the mesh parameters in
// internal/noc so achieved latencies land in the paper's Table 3
// ranges: L1 hit 1, L2 hit 29-61, remote L1 hit 35-83, memory 197-261.
const (
	// L1HitCycles is the L1 hit latency.
	L1HitCycles = 1
	// L2AccessCycles is the L2 bank access latency.
	L2AccessCycles = 21
	// L2OccupancyCycles is how long one request occupies the (pipelined)
	// bank.
	L2OccupancyCycles = 4
	// L2AtomicOccupancyCycles is the bank occupancy of a remote atomic:
	// read-modify-write serializes at the bank, which is part of why
	// globally scoped synchronization is expensive under GPU coherence.
	L2AtomicOccupancyCycles = 8
	// DRAMCycles is the additional latency of a DRAM line fetch.
	DRAMCycles = 168
	// DRAMOccupancyCycles is per-fetch memory-port occupancy.
	DRAMOccupancyCycles = 8
)

// L1 is the interface both protocol controllers present to their CU.
// All completion is callback based: the controller invokes the callback
// at the simulated time the access completes. State mutations inside
// the controllers are synchronous (they happen when a message or
// request is processed); only completions are delayed, which keeps the
// protocol state machine free of transient states, as DeNovo's design
// intends.
type L1 interface {
	// ReadLine reads the words of line l selected by need, invoking cb
	// with the line's values once all needed words are present.
	ReadLine(l mem.Line, need mem.WordMask, cb func(vals [mem.WordsPerLine]uint32))
	// WriteLine writes the words of line l selected by mask. The write
	// is posted: cb fires when the write is accepted (store buffer),
	// not when it is globally visible; Release provides the fence.
	WriteLine(l mem.Line, mask mem.WordMask, data [mem.WordsPerLine]uint32, cb func())
	// Atomic performs a synchronization access on word w with the given
	// scope, invoking cb with the operation's return value. Consistency
	// actions (acquire/release) are orchestrated by the caller around
	// this call.
	Atomic(op AtomicOp, w mem.Word, operand, operand2 uint32, scope Scope, cb func(old uint32))
	// Acquire applies the protocol's acquire action (invalidations) for
	// the given scope. It is immediate.
	Acquire(scope Scope)
	// Release applies the protocol's release action for the given scope,
	// invoking cb when all prior writes are complete per the protocol's
	// definition of completion (writethroughs acked at L2, or ownership
	// registered).
	Release(scope Scope, cb func())
	// Drained reports whether the controller has no buffered writes or
	// outstanding transactions (test and invariant hook).
	Drained() bool
	// PeekWord returns the L1-visible value of a word without timing
	// (functional host access between kernels); ok is false if the word
	// is not present in the L1 or its store buffer.
	PeekWord(w mem.Word) (uint32, bool)
	// HostInvalidateLine functionally drops any clean cached copy of
	// the words of l selected by mask (host writes between kernels must
	// not leave stale Valid copies that a read-only-region declaration
	// could preserve past the next acquire). Line granularity lets the
	// host amortize one cache lookup per line per L1 when seeding large
	// inputs, instead of one per word.
	HostInvalidateLine(l mem.Line, mask mem.WordMask)
}
