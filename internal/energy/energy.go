// Package energy defines the dynamic-energy model.
//
// The paper uses GPUWattch for the GPU CUs and McPAT v1.1 for the NoC
// and caches, and reports *normalized* dynamic energy stacked into five
// components (GPU core+, scratchpad, L1 D$, L2 $, network). We reproduce
// that accounting with per-event energy constants in the GPUWattch/McPAT
// ballpark for a 40-45 nm class design (GTX 480 era, matching the
// paper's simulated GPU). Absolute joules are not claimed by the paper
// or by this reproduction — only the component breakdown and the
// relative comparison between configurations, which depend on event
// counts, not on the precise constants.
package energy

import "denovogpu/internal/stats"

// Per-event dynamic energy constants, in picojoules.
//
// Sources of magnitude (not precision): GPUWattch reports roughly
// 20-30 pJ per 32 KB L1 access and 50-80 pJ per L2 bank access at 40 nm;
// McPAT mesh routers cost a few pJ per flit per hop; scratchpad accesses
// are about half an L1 access (no tag match).
const (
	// L1AccessPJ is one L1 data-array access (read or write of up to a line).
	L1AccessPJ = 28.0
	// L1TagPJ is a tag-only probe (e.g. a miss detection or invalidation scan).
	L1TagPJ = 4.0
	// L2AccessPJ is one L2 bank access.
	L2AccessPJ = 65.0
	// ScratchAccessPJ is one scratchpad access.
	ScratchAccessPJ = 14.0
	// FlitHopPJ is one flit crossing one link (router + channel).
	FlitHopPJ = 5.5
	// XDevFlitPJ is one flit crossing the inter-device link. Off-chip
	// SerDes energy is an order of magnitude above an on-chip mesh hop
	// (NVLink/PCIe-class links run ~5-10 pJ/bit against ~0.1 pJ/bit
	// on-chip), so a 16-byte flit lands near 700 pJ.
	XDevFlitPJ = 700.0
	// CoreInstrPJ is issuing one warp instruction (fetch, decode,
	// register file, execution units) — the "GPU core+" component.
	CoreInstrPJ = 120.0
	// CoreActiveCyclePJ is per-cycle pipeline overhead while a CU has
	// resident work (schedulers, clocking of the active pipeline).
	CoreActiveCyclePJ = 18.0
	// StoreBufferPJ is one store-buffer insertion or drain.
	StoreBufferPJ = 3.0
	// DRAMAccessPJ is one DRAM line access (counted under L2 in the
	// paper's five-way split, since memory controller energy is not
	// separated out there).
	DRAMAccessPJ = 250.0
)

// Meter routes energy events into a Stats sink. A nil Meter is valid and
// drops all events, which keeps hot paths free of nil checks at call
// sites that may run before wiring.
type Meter struct {
	s *stats.Stats
}

// NewMeter returns a meter accumulating into s.
func NewMeter(s *stats.Stats) *Meter { return &Meter{s: s} }

func (m *Meter) add(c stats.Component, pj float64) {
	if m == nil || m.s == nil {
		return
	}
	m.s.AddEnergy(c, pj)
}

// L1Access records n L1 data accesses.
func (m *Meter) L1Access(n int) { m.add(stats.CompL1D, L1AccessPJ*float64(n)) }

// L1Tag records n L1 tag-only probes.
func (m *Meter) L1Tag(n int) { m.add(stats.CompL1D, L1TagPJ*float64(n)) }

// L2Access records n L2 bank accesses.
func (m *Meter) L2Access(n int) { m.add(stats.CompL2, L2AccessPJ*float64(n)) }

// DRAMAccess records n DRAM line accesses (booked under L2).
func (m *Meter) DRAMAccess(n int) { m.add(stats.CompL2, DRAMAccessPJ*float64(n)) }

// Scratch records n scratchpad accesses.
func (m *Meter) Scratch(n int) { m.add(stats.CompScratch, ScratchAccessPJ*float64(n)) }

// FlitHops records n flit-link crossings.
func (m *Meter) FlitHops(n uint64) { m.add(stats.CompNoC, FlitHopPJ*float64(n)) }

// XDevFlits records n flits crossing the inter-device link (booked
// under the network component, like the paper's NoC energy).
func (m *Meter) XDevFlits(n uint64) { m.add(stats.CompNoC, XDevFlitPJ*float64(n)) }

// Instr records n issued warp instructions.
func (m *Meter) Instr(n int) { m.add(stats.CompGPUCore, CoreInstrPJ*float64(n)) }

// ActiveCycles records n CU-active cycles.
func (m *Meter) ActiveCycles(n uint64) { m.add(stats.CompGPUCore, CoreActiveCyclePJ*float64(n)) }

// StoreBuffer records n store-buffer operations (booked under L1, where
// the buffer sits).
func (m *Meter) StoreBuffer(n int) { m.add(stats.CompL1D, StoreBufferPJ*float64(n)) }
