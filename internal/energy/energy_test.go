package energy

import (
	"testing"

	"denovogpu/internal/stats"
)

func TestMeterRouting(t *testing.T) {
	s := stats.New()
	m := NewMeter(s)
	m.L1Access(2)
	m.L1Tag(1)
	m.StoreBuffer(3)
	m.L2Access(1)
	m.DRAMAccess(1)
	m.Scratch(4)
	m.FlitHops(10)
	m.Instr(5)
	m.ActiveCycles(100)

	wantL1 := 2*L1AccessPJ + L1TagPJ + 3*StoreBufferPJ
	if got := s.EnergyPJ[stats.CompL1D]; got != wantL1 {
		t.Errorf("L1 energy %f, want %f", got, wantL1)
	}
	wantL2 := L2AccessPJ + DRAMAccessPJ
	if got := s.EnergyPJ[stats.CompL2]; got != wantL2 {
		t.Errorf("L2 energy %f, want %f", got, wantL2)
	}
	if got := s.EnergyPJ[stats.CompScratch]; got != 4*ScratchAccessPJ {
		t.Errorf("scratch energy %f", got)
	}
	if got := s.EnergyPJ[stats.CompNoC]; got != 10*FlitHopPJ {
		t.Errorf("NoC energy %f", got)
	}
	wantCore := 5*CoreInstrPJ + 100*CoreActiveCyclePJ
	if got := s.EnergyPJ[stats.CompGPUCore]; got != wantCore {
		t.Errorf("core energy %f, want %f", got, wantCore)
	}
}

func TestNilMeterIsSafe(t *testing.T) {
	var m *Meter
	m.L1Access(1) // must not panic
	m.FlitHops(5)
	m2 := NewMeter(nil)
	m2.Instr(1)
}

func TestConstantsPlausible(t *testing.T) {
	// Sanity ordering: DRAM > L2 > L1 > scratch > flit-hop; an
	// instruction costs more than a cache access (register file, FUs).
	if !(DRAMAccessPJ > L2AccessPJ && L2AccessPJ > L1AccessPJ &&
		L1AccessPJ > ScratchAccessPJ && ScratchAccessPJ > FlitHopPJ) {
		t.Fatal("energy constants ordering implausible")
	}
	if CoreInstrPJ < L1AccessPJ {
		t.Fatal("instruction energy should exceed an L1 access")
	}
}
