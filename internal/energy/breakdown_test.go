package energy

import (
	"math"
	"testing"
	"testing/quick"

	"denovogpu/internal/stats"
)

// Property: for any sequence of meter events, every component of the
// breakdown equals the hand-computed constants-times-counts sum, and
// the components sum back to the total — i.e. the per-event constants
// fully account for the five-way split the figures stack.
func TestBreakdownSumsFromConstants(t *testing.T) {
	f := func(ops []uint8) bool {
		s := stats.New()
		m := NewMeter(s)
		var want [stats.NumComponents]float64
		for _, op := range ops {
			n := int(op%7) + 1
			switch op % 9 {
			case 0:
				m.L1Access(n)
				want[stats.CompL1D] += L1AccessPJ * float64(n)
			case 1:
				m.L1Tag(n)
				want[stats.CompL1D] += L1TagPJ * float64(n)
			case 2:
				m.L2Access(n)
				want[stats.CompL2] += L2AccessPJ * float64(n)
			case 3:
				m.DRAMAccess(n)
				want[stats.CompL2] += DRAMAccessPJ * float64(n)
			case 4:
				m.Scratch(n)
				want[stats.CompScratch] += ScratchAccessPJ * float64(n)
			case 5:
				m.FlitHops(uint64(n))
				want[stats.CompNoC] += FlitHopPJ * float64(n)
			case 6:
				m.Instr(n)
				want[stats.CompGPUCore] += CoreInstrPJ * float64(n)
			case 7:
				m.ActiveCycles(uint64(n))
				want[stats.CompGPUCore] += CoreActiveCyclePJ * float64(n)
			case 8:
				m.StoreBuffer(n)
				want[stats.CompL1D] += StoreBufferPJ * float64(n)
			}
		}
		var total float64
		for c := stats.Component(0); c < stats.NumComponents; c++ {
			if math.Abs(s.EnergyPJ[c]-want[c]) > 1e-9 {
				return false
			}
			total += s.EnergyPJ[c]
		}
		return math.Abs(s.TotalEnergyPJ()-total) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
