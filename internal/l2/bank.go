// Package l2 implements the shared L2 cache banks. Each of the 16 mesh
// nodes hosts one bank; lines are interleaved across banks by line
// address (NUCA, paper Table 3).
//
// The bank plays two roles, depending on which protocol is driving it:
//
//   - For GPU coherence it is the backing shared cache: it serves full
//     line reads, absorbs writethroughs, and executes remote atomics.
//   - For DeNovo it is additionally the *registry*: per word it either
//     holds the up-to-date data or records which L1 owns (has
//     registered) the word. There is no directory and no sharer list.
//
// One implementation covers both because the GPU protocol simply never
// registers anything: with an empty registry, every read returns the
// full line and no forwards ever happen.
//
// Capacity: the bank models DRAM cold-fetch latency and energy for the
// first touch of every line but does not model L2 capacity evictions —
// the paper's 4 MB L2 comfortably holds every workload's footprint, and
// modelling eviction of registered words would add recall machinery the
// paper never exercises. DESIGN.md records this simplification.
package l2

import (
	"fmt"

	"denovogpu/internal/coherence"
	"denovogpu/internal/energy"
	"denovogpu/internal/mem"
	"denovogpu/internal/noc"
	"denovogpu/internal/obs"
	"denovogpu/internal/sim"
	"denovogpu/internal/stats"
	"denovogpu/internal/topology"
	"denovogpu/internal/wordmap"
)

// Interned counter keys: hot-path counting indexes an array
// instead of hashing the name per event (see stats.Intern).
var (
	kL2Atomics         = stats.Intern("l2.atomics")
	kL2DramFetches     = stats.Intern("l2.dram_fetches")
	kL2ReadForwards    = stats.Intern("l2.read_forwards")
	kL2RegForwards     = stats.Intern("l2.reg_forwards")
	kL2StaleWritebacks = stats.Intern("l2.stale_writebacks")
	kL2Writethroughs   = stats.Intern("l2.writethroughs")
)

// MemoryOwner marks a word as owned by the bank (not registered).
const MemoryOwner noc.NodeID = -1

// Bank is one L2 bank plus its slice of the registry.
//
// Per-line state is struct-of-arrays: a dense id per resident line
// (first-touch order, assigned when the DRAM fetch completes) indexes
// flat data and owner tables, so the per-request map lookup of the
// earlier design collapses to one hash probe for the id translation
// plus array arithmetic.
type Bank struct {
	Node noc.NodeID

	eng     *sim.Engine
	mesh    noc.Sender
	backing *mem.Backing
	st      *stats.Stats
	meter   *energy.Meter

	// topo is the machine geometry (who homes which line, how many
	// nodes exist); defaults to the single-device geometry.
	topo topology.Desc
	// fwd is the reusable per-owner forward-mask scratch, one entry per
	// global node; cleared at the start of each use. Owners are global
	// NodeIDs, so in a multi-device machine the registry naturally
	// records cross-device owners and forwards route over the
	// interconnect without any bank-level special case.
	fwd []mem.WordMask

	// ids assigns dense ids to resident lines; data/owner hold one row
	// of mem.WordsPerLine values per id.
	ids   wordmap.IDTable
	data  *wordmap.WordTable[uint32]
	owner *wordmap.WordTable[noc.NodeID]

	// fetching maps lines with an in-flight DRAM fetch to the pooled
	// fetch record carrying the work queued behind the fetch.
	fetching  wordmap.Map[*fetchTask]
	fetchFree []*fetchTask

	busy     sim.Time // bank pipeline occupancy
	dramBusy sim.Time // memory port occupancy

	// pool recycles coherence messages (see coherence.MsgPool for the
	// ownership discipline); taskFree recycles process-task payloads.
	pool     coherence.MsgPool
	taskFree []*procTask

	// rec, when non-nil, receives L2* events on track b.Node.
	rec *obs.Recorder
}

// procTask is the pooled payload of a deferred bank access: process msg
// once the line is resident and the bank pipeline slot arrives.
type procTask struct {
	b   *Bank
	msg *coherence.Msg
}

// Run processes the message, frees the message into the bank's pool,
// and returns itself to the task free list.
func (t *procTask) Run() {
	b, msg := t.b, t.msg
	t.msg = nil
	b.taskFree = append(b.taskFree, t)
	b.process(msg)
	b.pool.Put(msg)
}

func (b *Bank) newTask(msg *coherence.Msg) *procTask {
	if n := len(b.taskFree); n > 0 {
		t := b.taskFree[n-1]
		b.taskFree[n-1] = nil
		b.taskFree = b.taskFree[:n-1]
		t.msg = msg
		return t
	}
	return &procTask{b: b, msg: msg}
}

// New returns a bank for the given node, assuming the single-device
// geometry; multi-device machines follow up with SetTopology.
func New(node noc.NodeID, eng *sim.Engine, mesh noc.Sender, backing *mem.Backing, st *stats.Stats, meter *energy.Meter) *Bank {
	topo := topology.Single()
	return &Bank{
		Node:    node,
		eng:     eng,
		mesh:    mesh,
		backing: backing,
		st:      st,
		meter:   meter,
		topo:    topo,
		fwd:     make([]mem.WordMask, topo.TotalNodes()),
		data:    wordmap.NewWordTable[uint32](mem.WordsPerLine),
		owner:   wordmap.NewWordTable[noc.NodeID](mem.WordsPerLine),
	}
}

// SetTopology installs the machine geometry (call before simulation).
func (b *Bank) SetTopology(topo topology.Desc) {
	b.topo = topo
	b.fwd = make([]mem.WordMask, topo.TotalNodes())
}

// fetchTask is the pooled payload of a DRAM fetch completion: install
// the line, then run the accesses queued behind the fetch.
type fetchTask struct {
	b       *Bank
	l       mem.Line
	waiters []*procTask
}

func (t *fetchTask) Run() {
	b, l := t.b, t.l
	b.install(l)
	b.fetching.Delete(uint64(l))
	for i, w := range t.waiters {
		t.waiters[i] = nil
		w.Run()
	}
	t.waiters = t.waiters[:0]
	b.fetchFree = append(b.fetchFree, t)
}

func (b *Bank) newFetch(l mem.Line) *fetchTask {
	if n := len(b.fetchFree); n > 0 {
		t := b.fetchFree[n-1]
		b.fetchFree[n-1] = nil
		b.fetchFree = b.fetchFree[:n-1]
		t.l = l
		return t
	}
	return &fetchTask{b: b, l: l}
}

// SetRecorder installs an obs recorder (nil to disable) and names this
// bank's track.
func (b *Bank) SetRecorder(rec *obs.Recorder) {
	b.rec = rec
	rec.NameTrack(obs.DomainL2, int32(b.Node), fmt.Sprintf("bank-%02d", int(b.Node)))
}

// HomeNode returns the node whose bank homes the given line in the
// single-device geometry. Topology-aware callers (anything that can
// run with Devices > 1) must use topology.Desc.HomeNode instead, which
// this equals for one device.
func HomeNode(l mem.Line) noc.NodeID { return topology.Single().HomeNode(l) }

// Deliver implements noc.Handler.
func (b *Bank) Deliver(p noc.Packet) {
	msg, ok := p.(*coherence.Msg)
	if !ok {
		panic(fmt.Sprintf("l2: non-coherence packet %T", p))
	}
	if b.topo.HomeNode(msg.Line) != b.Node {
		panic(fmt.Sprintf("l2: %v for %v delivered to wrong bank %d", msg.Kind, msg.Line, b.Node))
	}
	occ := sim.Time(coherence.L2OccupancyCycles)
	if msg.Kind == coherence.AtomicReq {
		occ = coherence.L2AtomicOccupancyCycles
	}
	start := b.eng.Now()
	if b.busy > start {
		start = b.busy
	}
	b.busy = start + occ
	b.meter.L2Access(1)
	serviceAt := start + coherence.L2AccessCycles
	b.withLine(msg.Line, serviceAt, b.newTask(msg))
}

// withLine runs task at time at (or later) with the line resident,
// inserting a DRAM fetch for cold lines and coalescing concurrent
// fetches for the same line.
func (b *Bank) withLine(l mem.Line, at sim.Time, task *procTask) {
	if _, ok := b.ids.Lookup(uint64(l)); ok {
		b.eng.AtTask(at, task)
		return
	}
	if ft, inFlight := b.fetching.Get(uint64(l)); inFlight {
		ft.waiters = append(ft.waiters, task)
		return
	}
	ft := b.newFetch(l)
	ft.waiters = append(ft.waiters, task)
	b.fetching.Put(uint64(l), ft)
	b.st.IncKey(kL2DramFetches, 1)
	b.meter.DRAMAccess(1)
	start := at
	if b.dramBusy > start {
		start = b.dramBusy
	}
	b.dramBusy = start + coherence.DRAMOccupancyCycles
	b.eng.AtTask(start+coherence.DRAMCycles, ft)
}

// install materializes the line's SoA rows with DRAM data, assigning
// its dense id.
func (b *Bank) install(l mem.Line) {
	id := b.ids.ID(uint64(l))
	data := b.data.Row(id)
	vals := b.backing.ReadLine(l)
	copy(data, vals[:])
	owner := b.owner.Row(id)
	for i := range owner {
		owner[i] = MemoryOwner
	}
}

// rows returns the data and owner rows of a resident line.
func (b *Bank) rows(l mem.Line) ([]uint32, []noc.NodeID) {
	id, ok := b.ids.Lookup(uint64(l))
	if !ok {
		panic(fmt.Sprintf("l2: line %v processed before fetch", l))
	}
	return b.data.Peek(id), b.owner.Peek(id)
}

func (b *Bank) process(msg *coherence.Msg) {
	switch msg.Kind {
	case coherence.ReadReq:
		b.read(msg)
	case coherence.WriteThrough:
		b.writeThrough(msg)
	case coherence.RegReq:
		b.register(msg)
	case coherence.WriteBack:
		b.writeBack(msg)
	case coherence.AtomicReq:
		b.atomic(msg)
	default:
		panic(fmt.Sprintf("l2: unexpected message kind %v", msg.Kind))
	}
}

// read serves the words the bank owns and forwards demanded words that
// are registered to an L1 (DeNovo's remote L1 hit path; never taken by
// the GPU protocol, whose registry is always empty).
func (b *Bank) read(msg *coherence.Msg) {
	if b.rec != nil {
		b.rec.Emit(obs.L2Read, int32(b.Node), uint64(msg.Line))
	}
	data, owner := b.rows(msg.Line)
	var have mem.WordMask
	for i := 0; i < mem.WordsPerLine; i++ {
		if owner[i] == MemoryOwner {
			have |= mem.Bit(i)
		}
	}
	// Forward only demanded words; respond with every word we hold
	// (line-granularity transfer of the useful words). Owners are mesh
	// nodes, so a per-node mask scratch replaces a per-request map.
	fwd := b.fwd
	for i := range fwd {
		fwd[i] = 0
	}
	for i := 0; i < mem.WordsPerLine; i++ {
		if msg.Mask.Has(i) && owner[i] != MemoryOwner {
			fwd[owner[i]] |= mem.Bit(i)
		}
	}
	if have != 0 {
		b.mesh.Send(b.pool.NewMsg(coherence.Msg{
			Kind: coherence.ReadResp, Src: b.Node, Dst: msg.Src, Port: noc.PortL1,
			Line: msg.Line, Mask: have, Data: [mem.WordsPerLine]uint32(data), ID: msg.ID,
		}))
	}
	// Deterministic iteration: owners in global node order.
	for dst := noc.NodeID(0); int(dst) < len(fwd); dst++ {
		m := fwd[dst]
		if m == 0 {
			continue
		}
		b.st.IncKey(kL2ReadForwards, 1)
		if b.rec != nil {
			b.rec.Emit(obs.L2ReadForward, int32(b.Node), uint64(msg.Line))
		}
		b.mesh.Send(b.pool.NewMsg(coherence.Msg{
			Kind: coherence.ReadFwd, Src: b.Node, Dst: dst, Port: noc.PortL1,
			Line: msg.Line, Mask: m, Requester: msg.Src, ID: msg.ID,
		}))
	}
}

func (b *Bank) writeThrough(msg *coherence.Msg) {
	if b.rec != nil {
		b.rec.Emit(obs.L2WriteThrough, int32(b.Node), uint64(msg.Line))
	}
	data, _ := b.rows(msg.Line)
	for i := 0; i < mem.WordsPerLine; i++ {
		if msg.Mask.Has(i) {
			data[i] = msg.Data[i]
		}
	}
	b.st.IncKey(kL2Writethroughs, 1)
	b.mesh.Send(b.pool.NewMsg(coherence.Msg{
		Kind: coherence.WriteThroughAck, Src: b.Node, Dst: msg.Src, Port: noc.PortL1,
		Line: msg.Line, Mask: msg.Mask, ID: msg.ID,
	}))
}

// register implements the DeNovo registry: every requested word's
// ownership moves to the requester immediately, in arrival order
// (DeNovoSync0). Words the bank owned are granted with their data;
// words registered elsewhere produce a forward to the previous owner,
// which will pass data directly to the requester — under contention
// this chains into the distributed queue.
func (b *Bank) register(msg *coherence.Msg) {
	if b.rec != nil {
		b.rec.Emit(obs.L2Registration, int32(b.Node), uint64(msg.Line))
	}
	data, owner := b.rows(msg.Line)
	var grant mem.WordMask
	fwd := b.fwd
	for i := range fwd {
		fwd[i] = 0
	}
	for i := 0; i < mem.WordsPerLine; i++ {
		if !msg.Mask.Has(i) {
			continue
		}
		prev := owner[i]
		switch prev {
		case MemoryOwner, msg.Src:
			grant |= mem.Bit(i)
		default:
			fwd[prev] |= mem.Bit(i)
		}
		owner[i] = msg.Src
	}
	if grant != 0 {
		b.mesh.Send(b.pool.NewMsg(coherence.Msg{
			Kind: coherence.RegAck, Src: b.Node, Dst: msg.Src, Port: noc.PortL1,
			Line: msg.Line, Mask: grant, Data: [mem.WordsPerLine]uint32(data), Sync: msg.Sync, NeedsData: msg.NeedsData, ID: msg.ID,
		}))
	}
	for dst := noc.NodeID(0); int(dst) < len(fwd); dst++ {
		m := fwd[dst]
		if m == 0 {
			continue
		}
		b.st.IncKey(kL2RegForwards, 1)
		if b.rec != nil {
			b.rec.Emit(obs.L2RegForward, int32(b.Node), uint64(msg.Line))
		}
		b.mesh.Send(b.pool.NewMsg(coherence.Msg{
			Kind: coherence.RegFwd, Src: b.Node, Dst: dst, Port: noc.PortL1,
			Line: msg.Line, Mask: m, Requester: msg.Src, Sync: msg.Sync, NeedsData: msg.NeedsData, ID: msg.ID,
		}))
	}
}

// writeBack accepts evicted registered words if the evictor still owns
// them; words whose ownership has already moved on are rejected, and
// the WBAccepted mask tells the evictor which is which.
func (b *Bank) writeBack(msg *coherence.Msg) {
	if b.rec != nil {
		b.rec.Emit(obs.L2WriteBack, int32(b.Node), uint64(msg.Line))
	}
	data, owner := b.rows(msg.Line)
	var accepted mem.WordMask
	for i := 0; i < mem.WordsPerLine; i++ {
		if !msg.Mask.Has(i) {
			continue
		}
		if owner[i] == msg.Src {
			owner[i] = MemoryOwner
			data[i] = msg.Data[i]
			accepted |= mem.Bit(i)
		} else {
			b.st.IncKey(kL2StaleWritebacks, 1)
		}
	}
	b.mesh.Send(b.pool.NewMsg(coherence.Msg{
		Kind: coherence.WriteBackAck, Src: b.Node, Dst: msg.Src, Port: noc.PortL1,
		Line: msg.Line, Mask: msg.Mask, WBAccepted: accepted, ID: msg.ID,
	}))
}

func (b *Bank) atomic(msg *coherence.Msg) {
	if b.rec != nil {
		b.rec.Emit(obs.L2Atomic, int32(b.Node), uint64(msg.Line))
	}
	data, owner := b.rows(msg.Line)
	i := msg.WordIdx
	if owner[i] != MemoryOwner {
		panic(fmt.Sprintf("l2: remote atomic on registered word %v[%d] (protocol mixing bug)", msg.Line, i))
	}
	next, ret := msg.Op.Apply(data[i], msg.Operand, msg.Operand2)
	data[i] = next
	b.st.IncKey(kL2Atomics, 1)
	b.mesh.Send(b.pool.NewMsg(coherence.Msg{
		Kind: coherence.AtomicResp, Src: b.Node, Dst: msg.Src, Port: noc.PortL1,
		Line: msg.Line, WordIdx: i, Result: ret, ID: msg.ID,
	}))
}

// Functional access helpers used by the host (CPU) between kernels and
// by verification. They are not timed.

// PeekOwner returns the registered owner of a word, or MemoryOwner.
func (b *Bank) PeekOwner(w mem.Word) noc.NodeID {
	if id, ok := b.ids.Lookup(uint64(w.LineOf())); ok {
		return b.owner.Peek(id)[w.Index()]
	}
	return MemoryOwner
}

// PeekData returns the bank's copy of a word (DRAM value if cold).
func (b *Bank) PeekData(w mem.Word) uint32 {
	if id, ok := b.ids.Lookup(uint64(w.LineOf())); ok {
		return b.data.Peek(id)[w.Index()]
	}
	return b.backing.Read(w)
}

// PokeData sets the bank's copy of a word (host writes between kernels).
// It panics if the word is registered to an L1 — the host must recall it
// first (machine.HostWrite handles that).
func (b *Bank) PokeData(w mem.Word, v uint32) {
	id, ok := b.ids.Lookup(uint64(w.LineOf()))
	if !ok {
		b.backing.Write(w, v)
		return
	}
	if b.owner.Peek(id)[w.Index()] != MemoryOwner {
		panic(fmt.Sprintf("l2: host write to registered %v", w))
	}
	b.data.Peek(id)[w.Index()] = v
}

// Recall functionally returns ownership of one word to memory with the
// given up-to-date value (host access between kernels). Not timed.
func (b *Bank) Recall(w mem.Word, val uint32) {
	id, ok := b.ids.Lookup(uint64(w.LineOf()))
	if !ok {
		b.backing.Write(w, val)
		return
	}
	b.owner.Peek(id)[w.Index()] = MemoryOwner
	b.data.Peek(id)[w.Index()] = val
}

// ForEachRegistered visits every word currently registered to an L1
// (invariant checking). Iteration order is unspecified; callers must
// not depend on it.
func (b *Bank) ForEachRegistered(fn func(w mem.Word, owner noc.NodeID)) {
	for id := int32(0); id < int32(b.ids.Len()); id++ {
		l := mem.Line(b.ids.Key(id))
		owner := b.owner.Peek(id)
		for i := 0; i < mem.WordsPerLine; i++ {
			if owner[i] != MemoryOwner {
				fn(l.Word(i), owner[i])
			}
		}
	}
}

// RecallAll functionally returns ownership of all words registered to
// the given node back to memory with the supplied data reader (used at
// teardown and by host access between kernels). It is not timed.
func (b *Bank) RecallAll(node noc.NodeID, read func(w mem.Word) uint32) int {
	n := 0
	for id := int32(0); id < int32(b.ids.Len()); id++ {
		l := mem.Line(b.ids.Key(id))
		data, owner := b.data.Peek(id), b.owner.Peek(id)
		for i := 0; i < mem.WordsPerLine; i++ {
			if owner[i] == node {
				data[i] = read(l.Word(i))
				owner[i] = MemoryOwner
				n++
			}
		}
	}
	return n
}
