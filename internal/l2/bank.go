// Package l2 implements the shared L2 cache banks. Each of the 16 mesh
// nodes hosts one bank; lines are interleaved across banks by line
// address (NUCA, paper Table 3).
//
// The bank plays two roles, depending on which protocol is driving it:
//
//   - For GPU coherence it is the backing shared cache: it serves full
//     line reads, absorbs writethroughs, and executes remote atomics.
//   - For DeNovo it is additionally the *registry*: per word it either
//     holds the up-to-date data or records which L1 owns (has
//     registered) the word. There is no directory and no sharer list.
//
// One implementation covers both because the GPU protocol simply never
// registers anything: with an empty registry, every read returns the
// full line and no forwards ever happen.
//
// Capacity: the bank models DRAM cold-fetch latency and energy for the
// first touch of every line but does not model L2 capacity evictions —
// the paper's 4 MB L2 comfortably holds every workload's footprint, and
// modelling eviction of registered words would add recall machinery the
// paper never exercises. DESIGN.md records this simplification.
package l2

import (
	"fmt"

	"denovogpu/internal/coherence"
	"denovogpu/internal/energy"
	"denovogpu/internal/mem"
	"denovogpu/internal/noc"
	"denovogpu/internal/obs"
	"denovogpu/internal/sim"
	"denovogpu/internal/stats"
)

// Interned counter keys: hot-path counting indexes an array
// instead of hashing the name per event (see stats.Intern).
var (
	kL2Atomics         = stats.Intern("l2.atomics")
	kL2DramFetches     = stats.Intern("l2.dram_fetches")
	kL2ReadForwards    = stats.Intern("l2.read_forwards")
	kL2RegForwards     = stats.Intern("l2.reg_forwards")
	kL2StaleWritebacks = stats.Intern("l2.stale_writebacks")
	kL2Writethroughs   = stats.Intern("l2.writethroughs")
)

// MemoryOwner marks a word as owned by the bank (not registered).
const MemoryOwner noc.NodeID = -1

type bankLine struct {
	data  [mem.WordsPerLine]uint32
	owner [mem.WordsPerLine]noc.NodeID
}

// Bank is one L2 bank plus its slice of the registry.
type Bank struct {
	Node noc.NodeID

	eng     *sim.Engine
	mesh    *noc.Mesh
	backing *mem.Backing
	st      *stats.Stats
	meter   *energy.Meter

	lines map[mem.Line]*bankLine
	// fetching maps lines with an in-flight DRAM fetch to the work
	// queued behind the fetch.
	fetching map[mem.Line][]func()

	busy     sim.Time // bank pipeline occupancy
	dramBusy sim.Time // memory port occupancy

	// rec, when non-nil, receives L2* events on track b.Node.
	rec *obs.Recorder
}

// New returns a bank for the given node.
func New(node noc.NodeID, eng *sim.Engine, mesh *noc.Mesh, backing *mem.Backing, st *stats.Stats, meter *energy.Meter) *Bank {
	return &Bank{
		Node:     node,
		eng:      eng,
		mesh:     mesh,
		backing:  backing,
		st:       st,
		meter:    meter,
		lines:    make(map[mem.Line]*bankLine),
		fetching: make(map[mem.Line][]func()),
	}
}

// SetRecorder installs an obs recorder (nil to disable) and names this
// bank's track.
func (b *Bank) SetRecorder(rec *obs.Recorder) {
	b.rec = rec
	rec.NameTrack(obs.DomainL2, int32(b.Node), fmt.Sprintf("bank-%02d", int(b.Node)))
}

// HomeNode returns the node whose bank homes the given line.
func HomeNode(l mem.Line) noc.NodeID { return noc.NodeID(uint64(l) % noc.Nodes) }

// Deliver implements noc.Handler.
func (b *Bank) Deliver(p noc.Packet) {
	msg, ok := p.(*coherence.Msg)
	if !ok {
		panic(fmt.Sprintf("l2: non-coherence packet %T", p))
	}
	if HomeNode(msg.Line) != b.Node {
		panic(fmt.Sprintf("l2: %v for %v delivered to wrong bank %d", msg.Kind, msg.Line, b.Node))
	}
	occ := sim.Time(coherence.L2OccupancyCycles)
	if msg.Kind == coherence.AtomicReq {
		occ = coherence.L2AtomicOccupancyCycles
	}
	start := b.eng.Now()
	if b.busy > start {
		start = b.busy
	}
	b.busy = start + occ
	b.meter.L2Access(1)
	serviceAt := start + coherence.L2AccessCycles
	b.withLine(msg.Line, serviceAt, func() { b.process(msg) })
}

// withLine runs fn at time at (or later) with the line resident,
// inserting a DRAM fetch for cold lines and coalescing concurrent
// fetches for the same line.
func (b *Bank) withLine(l mem.Line, at sim.Time, fn func()) {
	if _, ok := b.lines[l]; ok {
		b.eng.At(at, fn)
		return
	}
	if waiters, inFlight := b.fetching[l]; inFlight {
		b.fetching[l] = append(waiters, fn)
		return
	}
	b.fetching[l] = []func(){fn}
	b.st.IncKey(kL2DramFetches, 1)
	b.meter.DRAMAccess(1)
	start := at
	if b.dramBusy > start {
		start = b.dramBusy
	}
	b.dramBusy = start + coherence.DRAMOccupancyCycles
	b.eng.At(start+coherence.DRAMCycles, func() {
		bl := &bankLine{data: b.backing.ReadLine(l)}
		for i := range bl.owner {
			bl.owner[i] = MemoryOwner
		}
		b.lines[l] = bl
		waiters := b.fetching[l]
		delete(b.fetching, l)
		for _, w := range waiters {
			w()
		}
	})
}

func (b *Bank) line(l mem.Line) *bankLine {
	bl, ok := b.lines[l]
	if !ok {
		panic(fmt.Sprintf("l2: line %v processed before fetch", l))
	}
	return bl
}

func (b *Bank) process(msg *coherence.Msg) {
	switch msg.Kind {
	case coherence.ReadReq:
		b.read(msg)
	case coherence.WriteThrough:
		b.writeThrough(msg)
	case coherence.RegReq:
		b.register(msg)
	case coherence.WriteBack:
		b.writeBack(msg)
	case coherence.AtomicReq:
		b.atomic(msg)
	default:
		panic(fmt.Sprintf("l2: unexpected message kind %v", msg.Kind))
	}
}

// read serves the words the bank owns and forwards demanded words that
// are registered to an L1 (DeNovo's remote L1 hit path; never taken by
// the GPU protocol, whose registry is always empty).
func (b *Bank) read(msg *coherence.Msg) {
	if b.rec != nil {
		b.rec.Emit(obs.L2Read, int32(b.Node), uint64(msg.Line))
	}
	bl := b.line(msg.Line)
	var have mem.WordMask
	for i := 0; i < mem.WordsPerLine; i++ {
		if bl.owner[i] == MemoryOwner {
			have |= mem.Bit(i)
		}
	}
	// Forward only demanded words; respond with every word we hold
	// (line-granularity transfer of the useful words). Owners are mesh
	// nodes, so a fixed per-node mask array replaces a per-request map.
	var fwd [noc.Nodes]mem.WordMask
	for i := 0; i < mem.WordsPerLine; i++ {
		if msg.Mask.Has(i) && bl.owner[i] != MemoryOwner {
			fwd[bl.owner[i]] |= mem.Bit(i)
		}
	}
	if have != 0 {
		b.mesh.Send(&coherence.Msg{
			Kind: coherence.ReadResp, Src: b.Node, Dst: msg.Src, Port: noc.PortL1,
			Line: msg.Line, Mask: have, Data: bl.data, ID: msg.ID,
		})
	}
	// Deterministic iteration: owners in node order.
	for owner := noc.NodeID(0); owner < noc.Nodes; owner++ {
		m := fwd[owner]
		if m == 0 {
			continue
		}
		b.st.IncKey(kL2ReadForwards, 1)
		if b.rec != nil {
			b.rec.Emit(obs.L2ReadForward, int32(b.Node), uint64(msg.Line))
		}
		b.mesh.Send(&coherence.Msg{
			Kind: coherence.ReadFwd, Src: b.Node, Dst: owner, Port: noc.PortL1,
			Line: msg.Line, Mask: m, Requester: msg.Src, ID: msg.ID,
		})
	}
}

func (b *Bank) writeThrough(msg *coherence.Msg) {
	if b.rec != nil {
		b.rec.Emit(obs.L2WriteThrough, int32(b.Node), uint64(msg.Line))
	}
	bl := b.line(msg.Line)
	for i := 0; i < mem.WordsPerLine; i++ {
		if msg.Mask.Has(i) {
			bl.data[i] = msg.Data[i]
		}
	}
	b.st.IncKey(kL2Writethroughs, 1)
	b.mesh.Send(&coherence.Msg{
		Kind: coherence.WriteThroughAck, Src: b.Node, Dst: msg.Src, Port: noc.PortL1,
		Line: msg.Line, Mask: msg.Mask, ID: msg.ID,
	})
}

// register implements the DeNovo registry: every requested word's
// ownership moves to the requester immediately, in arrival order
// (DeNovoSync0). Words the bank owned are granted with their data;
// words registered elsewhere produce a forward to the previous owner,
// which will pass data directly to the requester — under contention
// this chains into the distributed queue.
func (b *Bank) register(msg *coherence.Msg) {
	if b.rec != nil {
		b.rec.Emit(obs.L2Registration, int32(b.Node), uint64(msg.Line))
	}
	bl := b.line(msg.Line)
	var grant mem.WordMask
	var fwd [noc.Nodes]mem.WordMask
	for i := 0; i < mem.WordsPerLine; i++ {
		if !msg.Mask.Has(i) {
			continue
		}
		prev := bl.owner[i]
		switch prev {
		case MemoryOwner, msg.Src:
			grant |= mem.Bit(i)
		default:
			fwd[prev] |= mem.Bit(i)
		}
		bl.owner[i] = msg.Src
	}
	if grant != 0 {
		b.mesh.Send(&coherence.Msg{
			Kind: coherence.RegAck, Src: b.Node, Dst: msg.Src, Port: noc.PortL1,
			Line: msg.Line, Mask: grant, Data: bl.data, Sync: msg.Sync, NeedsData: msg.NeedsData, ID: msg.ID,
		})
	}
	for owner := noc.NodeID(0); owner < noc.Nodes; owner++ {
		m := fwd[owner]
		if m == 0 {
			continue
		}
		b.st.IncKey(kL2RegForwards, 1)
		if b.rec != nil {
			b.rec.Emit(obs.L2RegForward, int32(b.Node), uint64(msg.Line))
		}
		b.mesh.Send(&coherence.Msg{
			Kind: coherence.RegFwd, Src: b.Node, Dst: owner, Port: noc.PortL1,
			Line: msg.Line, Mask: m, Requester: msg.Src, Sync: msg.Sync, NeedsData: msg.NeedsData, ID: msg.ID,
		})
	}
}

// writeBack accepts evicted registered words if the evictor still owns
// them; words whose ownership has already moved on are rejected, and
// the WBAccepted mask tells the evictor which is which.
func (b *Bank) writeBack(msg *coherence.Msg) {
	if b.rec != nil {
		b.rec.Emit(obs.L2WriteBack, int32(b.Node), uint64(msg.Line))
	}
	bl := b.line(msg.Line)
	var accepted mem.WordMask
	for i := 0; i < mem.WordsPerLine; i++ {
		if !msg.Mask.Has(i) {
			continue
		}
		if bl.owner[i] == msg.Src {
			bl.owner[i] = MemoryOwner
			bl.data[i] = msg.Data[i]
			accepted |= mem.Bit(i)
		} else {
			b.st.IncKey(kL2StaleWritebacks, 1)
		}
	}
	b.mesh.Send(&coherence.Msg{
		Kind: coherence.WriteBackAck, Src: b.Node, Dst: msg.Src, Port: noc.PortL1,
		Line: msg.Line, Mask: msg.Mask, WBAccepted: accepted, ID: msg.ID,
	})
}

func (b *Bank) atomic(msg *coherence.Msg) {
	if b.rec != nil {
		b.rec.Emit(obs.L2Atomic, int32(b.Node), uint64(msg.Line))
	}
	bl := b.line(msg.Line)
	i := msg.WordIdx
	if bl.owner[i] != MemoryOwner {
		panic(fmt.Sprintf("l2: remote atomic on registered word %v[%d] (protocol mixing bug)", msg.Line, i))
	}
	next, ret := msg.Op.Apply(bl.data[i], msg.Operand, msg.Operand2)
	bl.data[i] = next
	b.st.IncKey(kL2Atomics, 1)
	b.mesh.Send(&coherence.Msg{
		Kind: coherence.AtomicResp, Src: b.Node, Dst: msg.Src, Port: noc.PortL1,
		Line: msg.Line, WordIdx: i, Result: ret, ID: msg.ID,
	})
}

// Functional access helpers used by the host (CPU) between kernels and
// by verification. They are not timed.

// PeekOwner returns the registered owner of a word, or MemoryOwner.
func (b *Bank) PeekOwner(w mem.Word) noc.NodeID {
	if bl, ok := b.lines[w.LineOf()]; ok {
		return bl.owner[w.Index()]
	}
	return MemoryOwner
}

// PeekData returns the bank's copy of a word (DRAM value if cold).
func (b *Bank) PeekData(w mem.Word) uint32 {
	if bl, ok := b.lines[w.LineOf()]; ok {
		return bl.data[w.Index()]
	}
	return b.backing.Read(w)
}

// PokeData sets the bank's copy of a word (host writes between kernels).
// It panics if the word is registered to an L1 — the host must recall it
// first (machine.HostWrite handles that).
func (b *Bank) PokeData(w mem.Word, v uint32) {
	bl, ok := b.lines[w.LineOf()]
	if !ok {
		b.backing.Write(w, v)
		return
	}
	if bl.owner[w.Index()] != MemoryOwner {
		panic(fmt.Sprintf("l2: host write to registered %v", w))
	}
	bl.data[w.Index()] = v
}

// Recall functionally returns ownership of one word to memory with the
// given up-to-date value (host access between kernels). Not timed.
func (b *Bank) Recall(w mem.Word, val uint32) {
	bl, ok := b.lines[w.LineOf()]
	if !ok {
		b.backing.Write(w, val)
		return
	}
	bl.owner[w.Index()] = MemoryOwner
	bl.data[w.Index()] = val
}

// ForEachRegistered visits every word currently registered to an L1
// (invariant checking). Iteration order is unspecified; callers must
// not depend on it.
func (b *Bank) ForEachRegistered(fn func(w mem.Word, owner noc.NodeID)) {
	for l, bl := range b.lines {
		for i := 0; i < mem.WordsPerLine; i++ {
			if bl.owner[i] != MemoryOwner {
				fn(l.Word(i), bl.owner[i])
			}
		}
	}
}

// RecallAll functionally returns ownership of all words registered to
// the given node back to memory with the supplied data reader (used at
// teardown and by host access between kernels). It is not timed.
func (b *Bank) RecallAll(node noc.NodeID, read func(w mem.Word) uint32) int {
	n := 0
	for l, bl := range b.lines {
		for i := 0; i < mem.WordsPerLine; i++ {
			if bl.owner[i] == node {
				bl.data[i] = read(l.Word(i))
				bl.owner[i] = MemoryOwner
				n++
			}
		}
	}
	return n
}
