package l2_test

import (
	"testing"

	"denovogpu/internal/coherence"
	"denovogpu/internal/energy"
	"denovogpu/internal/l2"
	"denovogpu/internal/mem"
	"denovogpu/internal/noc"
	"denovogpu/internal/sim"
	"denovogpu/internal/stats"
)

// harness attaches a message collector as the L1 of every node.
type collector struct {
	got []*coherence.Msg
}

func (c *collector) Deliver(p noc.Packet) { c.got = append(c.got, p.(*coherence.Msg)) }

type rig struct {
	eng     *sim.Engine
	mesh    *noc.Mesh
	backing *mem.Backing
	banks   [noc.Nodes]*l2.Bank
	l1s     [noc.Nodes]*collector
	st      *stats.Stats
}

func newRig() *rig {
	r := &rig{eng: sim.NewEngine(1_000_000), backing: mem.NewBacking(), st: stats.New()}
	meter := energy.NewMeter(r.st)
	r.mesh = noc.New(r.eng, r.st, meter)
	for n := noc.NodeID(0); n < noc.Nodes; n++ {
		r.banks[n] = l2.New(n, r.eng, r.mesh, r.backing, r.st, meter)
		r.mesh.Attach(n, noc.PortL2, r.banks[n])
		r.l1s[n] = &collector{}
		r.mesh.Attach(n, noc.PortL1, r.l1s[n])
	}
	return r
}

func (r *rig) send(m *coherence.Msg) { r.mesh.Send(m) }

func (r *rig) run(t *testing.T) {
	t.Helper()
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHomeNodeInterleaving(t *testing.T) {
	if l2.HomeNode(mem.Line(0)) != 0 || l2.HomeNode(mem.Line(17)) != 1 || l2.HomeNode(mem.Line(31)) != 15 {
		t.Fatal("line interleaving wrong")
	}
}

func TestReadReqReturnsDRAMData(t *testing.T) {
	r := newRig()
	l := mem.Line(3) // homed at node 3
	r.backing.Write(l.Word(5), 99)
	r.eng.Schedule(0, func() {
		r.send(&coherence.Msg{Kind: coherence.ReadReq, Src: 0, Dst: 3, Port: noc.PortL2, Line: l, Mask: mem.AllWords, ID: 7})
	})
	r.run(t)
	got := r.l1s[0].got
	if len(got) != 1 || got[0].Kind != coherence.ReadResp {
		t.Fatalf("got %v", got)
	}
	if got[0].Data[5] != 99 || got[0].Mask != mem.AllWords || got[0].ID != 7 {
		t.Fatalf("bad response %+v", got[0])
	}
	if r.st.Get("l2.dram_fetches") != 1 {
		t.Fatal("cold line must fetch from DRAM")
	}
}

func TestConcurrentFetchesCoalesce(t *testing.T) {
	r := newRig()
	l := mem.Line(3)
	r.eng.Schedule(0, func() {
		r.send(&coherence.Msg{Kind: coherence.ReadReq, Src: 0, Dst: 3, Port: noc.PortL2, Line: l, Mask: mem.AllWords})
		r.send(&coherence.Msg{Kind: coherence.ReadReq, Src: 1, Dst: 3, Port: noc.PortL2, Line: l, Mask: mem.AllWords})
	})
	r.run(t)
	if r.st.Get("l2.dram_fetches") != 1 {
		t.Fatalf("fetches = %d, want 1 (coalesced)", r.st.Get("l2.dram_fetches"))
	}
	if len(r.l1s[0].got) != 1 || len(r.l1s[1].got) != 1 {
		t.Fatal("both requesters must be answered")
	}
}

func TestWriteThroughUpdatesAndAcks(t *testing.T) {
	r := newRig()
	l := mem.Line(4)
	var data [mem.WordsPerLine]uint32
	data[2] = 42
	r.eng.Schedule(0, func() {
		r.send(&coherence.Msg{Kind: coherence.WriteThrough, Src: 5, Dst: 4, Port: noc.PortL2, Line: l, Mask: mem.Bit(2), Data: data})
	})
	r.run(t)
	if r.banks[4].PeekData(l.Word(2)) != 42 {
		t.Fatal("writethrough not applied")
	}
	if len(r.l1s[5].got) != 1 || r.l1s[5].got[0].Kind != coherence.WriteThroughAck {
		t.Fatal("no ack")
	}
}

func TestRegistrationGrantAndForward(t *testing.T) {
	r := newRig()
	l := mem.Line(6)
	r.backing.Write(l.Word(0), 5)
	r.eng.Schedule(0, func() {
		r.send(&coherence.Msg{Kind: coherence.RegReq, Src: 2, Dst: 6, Port: noc.PortL2, Line: l, Mask: mem.Bit(0), NeedsData: true, Sync: true})
	})
	r.run(t)
	if r.banks[6].PeekOwner(l.Word(0)) != 2 {
		t.Fatal("ownership not granted")
	}
	ack := r.l1s[2].got[0]
	if ack.Kind != coherence.RegAck || ack.Data[0] != 5 || !ack.Sync {
		t.Fatalf("bad ack %+v", ack)
	}
	// Second requester: forward to node 2, ownership moves to node 9.
	r.eng.Schedule(0, func() {
		r.send(&coherence.Msg{Kind: coherence.RegReq, Src: 9, Dst: 6, Port: noc.PortL2, Line: l, Mask: mem.Bit(0), Sync: true})
	})
	r.run(t)
	if r.banks[6].PeekOwner(l.Word(0)) != 9 {
		t.Fatal("registry must reassign owner immediately (DeNovoSync0 arrival order)")
	}
	fwd := r.l1s[2].got[1]
	if fwd.Kind != coherence.RegFwd || fwd.Requester != 9 {
		t.Fatalf("bad forward %+v", fwd)
	}
	if len(r.l1s[9].got) != 0 {
		t.Fatal("second requester must wait for the previous owner, not the bank")
	}
}

func TestWriteBackAcceptAndReject(t *testing.T) {
	r := newRig()
	l := mem.Line(6)
	// Node 2 registers word 0.
	r.eng.Schedule(0, func() {
		r.send(&coherence.Msg{Kind: coherence.RegReq, Src: 2, Dst: 6, Port: noc.PortL2, Line: l, Mask: mem.Bit(0)})
	})
	r.run(t)
	// Accepted writeback: owner matches.
	var data [mem.WordsPerLine]uint32
	data[0] = 77
	r.eng.Schedule(0, func() {
		r.send(&coherence.Msg{Kind: coherence.WriteBack, Src: 2, Dst: 6, Port: noc.PortL2, Line: l, Mask: mem.Bit(0), Data: data})
	})
	r.run(t)
	ack := r.l1s[2].got[len(r.l1s[2].got)-1]
	if ack.Kind != coherence.WriteBackAck || !ack.WBAccepted.Has(0) {
		t.Fatalf("accepted writeback got %+v", ack)
	}
	if r.banks[6].PeekOwner(l.Word(0)) != l2.MemoryOwner || r.banks[6].PeekData(l.Word(0)) != 77 {
		t.Fatal("writeback should return ownership and data to the bank")
	}
	// Stale writeback: node 2 no longer owns (node 3 does).
	r.eng.Schedule(0, func() {
		r.send(&coherence.Msg{Kind: coherence.RegReq, Src: 3, Dst: 6, Port: noc.PortL2, Line: l, Mask: mem.Bit(0)})
	})
	r.run(t)
	data[0] = 1234
	r.eng.Schedule(0, func() {
		r.send(&coherence.Msg{Kind: coherence.WriteBack, Src: 2, Dst: 6, Port: noc.PortL2, Line: l, Mask: mem.Bit(0), Data: data})
	})
	r.run(t)
	ack = r.l1s[2].got[len(r.l1s[2].got)-1]
	if ack.Kind != coherence.WriteBackAck || ack.WBAccepted.Has(0) {
		t.Fatalf("stale writeback must be rejected, got %+v", ack)
	}
	if r.banks[6].PeekData(l.Word(0)) == 1234 {
		t.Fatal("stale writeback data must be dropped")
	}
	if r.st.Get("l2.stale_writebacks") != 1 {
		t.Fatal("stale writeback not counted")
	}
}

func TestAtomicRMWAtBank(t *testing.T) {
	r := newRig()
	l := mem.Line(8)
	r.backing.Write(l.Word(1), 10)
	r.eng.Schedule(0, func() {
		r.send(&coherence.Msg{Kind: coherence.AtomicReq, Src: 0, Dst: 8, Port: noc.PortL2,
			Line: l, WordIdx: 1, Op: coherence.AtomicAdd, Operand: 5, ID: 3})
	})
	r.run(t)
	resp := r.l1s[0].got[0]
	if resp.Kind != coherence.AtomicResp || resp.Result != 10 || resp.ID != 3 {
		t.Fatalf("bad atomic response %+v", resp)
	}
	if r.banks[8].PeekData(l.Word(1)) != 15 {
		t.Fatal("atomic not applied at bank")
	}
}

func TestBankSerializesAtomics(t *testing.T) {
	r := newRig()
	l := mem.Line(8)
	r.eng.Schedule(0, func() {
		for i := 0; i < 4; i++ {
			r.send(&coherence.Msg{Kind: coherence.AtomicReq, Src: 0, Dst: 8, Port: noc.PortL2,
				Line: l, WordIdx: 0, Op: coherence.AtomicAdd, Operand: 1, ID: uint64(i)})
		}
	})
	r.run(t)
	if r.banks[8].PeekData(l.Word(0)) != 4 {
		t.Fatalf("value %d, want 4 (atomicity at the bank)", r.banks[8].PeekData(l.Word(0)))
	}
	// Responses spread in time due to bank occupancy.
	if len(r.l1s[0].got) != 4 {
		t.Fatal("all atomics must respond")
	}
}

func TestReadForwardForRegisteredWords(t *testing.T) {
	r := newRig()
	l := mem.Line(6)
	r.eng.Schedule(0, func() {
		r.send(&coherence.Msg{Kind: coherence.RegReq, Src: 4, Dst: 6, Port: noc.PortL2, Line: l, Mask: mem.Bit(3)})
	})
	r.run(t)
	r.eng.Schedule(0, func() {
		r.send(&coherence.Msg{Kind: coherence.ReadReq, Src: 7, Dst: 6, Port: noc.PortL2, Line: l, Mask: mem.Bit(3) | mem.Bit(4), ID: 11})
	})
	r.run(t)
	// Node 7 gets the bank's words (all but word 3); node 4 gets a
	// forward for word 3 only.
	var gotResp, gotFwd bool
	for _, m := range r.l1s[7].got {
		if m.Kind == coherence.ReadResp && !m.Mask.Has(3) && m.Mask.Has(4) {
			gotResp = true
		}
	}
	for _, m := range r.l1s[4].got {
		if m.Kind == coherence.ReadFwd && m.Mask == mem.Bit(3) && m.Requester == 7 && m.ID == 11 {
			gotFwd = true
		}
	}
	if !gotResp || !gotFwd {
		t.Fatalf("resp=%v fwd=%v", gotResp, gotFwd)
	}
}

func TestRecallHelpers(t *testing.T) {
	r := newRig()
	l := mem.Line(6)
	r.eng.Schedule(0, func() {
		r.send(&coherence.Msg{Kind: coherence.RegReq, Src: 4, Dst: 6, Port: noc.PortL2, Line: l, Mask: mem.Bit(0)})
	})
	r.run(t)
	r.banks[6].Recall(l.Word(0), 55)
	if r.banks[6].PeekOwner(l.Word(0)) != l2.MemoryOwner || r.banks[6].PeekData(l.Word(0)) != 55 {
		t.Fatal("recall failed")
	}
	// RecallAll on a fresh registration.
	r.eng.Schedule(0, func() {
		r.send(&coherence.Msg{Kind: coherence.RegReq, Src: 4, Dst: 6, Port: noc.PortL2, Line: l, Mask: mem.Bit(1)})
	})
	r.run(t)
	n := r.banks[6].RecallAll(4, func(mem.Word) uint32 { return 9 })
	if n != 1 || r.banks[6].PeekData(l.Word(1)) != 9 {
		t.Fatalf("recallAll n=%d", n)
	}
}
