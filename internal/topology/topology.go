// Package topology describes the machine's device geometry: how many
// devices the system has, which mesh node a global NodeID lives on,
// which device a node belongs to, and where a memory line's home L2
// bank is.
//
// Before this package existed the geometry was implicit: one device,
// sixteen nodes, the CPU pinned at node 15, and `uint64(line) %
// noc.Nodes` sprinkled wherever a home bank was needed. Every one of
// those literals silently assumed a single device, so an N-device
// build could address the wrong home bank without any type-level
// complaint. All geometry questions now route through a Desc.
//
// Node numbering: device d owns the global node range
// [d*noc.Nodes, (d+1)*noc.Nodes). Within a device the local layout is
// unchanged from the single-device machine: local nodes 0..NumCUs-1
// host CUs, and the device's last local node (GatewayLocal) hosts the
// CPU/IO agent — on device 0 that is the CPU core, on every device it
// is also where the inter-device gateway sits.
package topology

import (
	"fmt"

	"denovogpu/internal/mem"
	"denovogpu/internal/noc"
)

// GatewayLocal is the local node index hosting the CPU/IO agent and
// the inter-device gateway on every device (the "node 15" of the
// single-device machine, now spelled once).
const GatewayLocal = noc.Nodes - 1

// Desc describes one machine's device geometry. The zero value is NOT
// valid; use Single() or New(). Desc is a small value type — copy it
// freely and call its methods on the copy (they are pure arithmetic,
// designed to inline on hot paths).
type Desc struct {
	// Devices is the number of GPU devices (>= 1). Each device has its
	// own noc.Nodes-node mesh domain, L1s, and L2 bank slice.
	Devices int
}

// Single is the one-device geometry every pre-multi-device caller
// implicitly assumed; its HomeNode reproduces the historical
// `line % noc.Nodes` interleaving exactly.
func Single() Desc { return Desc{Devices: 1} }

// New returns the geometry for n devices (n < 1 is treated as 1).
func New(n int) Desc {
	if n < 1 {
		n = 1
	}
	return Desc{Devices: n}
}

// TotalNodes is the number of global mesh nodes across all devices.
func (d Desc) TotalNodes() int { return d.Devices * noc.Nodes }

// DeviceOf returns the device owning a global node.
func (d Desc) DeviceOf(n noc.NodeID) int { return int(n) / noc.Nodes }

// LocalNode returns a global node's index within its device mesh.
func (d Desc) LocalNode(n noc.NodeID) int { return int(n) % noc.Nodes }

// Node returns the global node for (device, local).
func (d Desc) Node(dev, local int) noc.NodeID {
	return noc.NodeID(dev*noc.Nodes + local)
}

// GatewayNode returns the global node hosting device dev's
// inter-device gateway (and, on device 0, the CPU core).
func (d Desc) GatewayNode(dev int) noc.NodeID { return d.Node(dev, GatewayLocal) }

// HomeDevice returns the device whose L2 slice is a line's home.
// Lines interleave across devices at noc.Nodes-line granularity, so
// within a device the bank interleaving is the same `line % noc.Nodes`
// the single-device machine used; with one device every line is homed
// on device 0 and the function is the historical formula.
func (d Desc) HomeDevice(l mem.Line) int {
	if d.Devices <= 1 {
		return 0
	}
	return int((uint64(l) / noc.Nodes) % uint64(d.Devices))
}

// HomeNode returns the global node whose L2 bank homes (is the
// registry slice for) the given line.
func (d Desc) HomeNode(l mem.Line) noc.NodeID {
	return noc.NodeID(d.HomeDevice(l)*noc.Nodes + int(uint64(l)%noc.Nodes))
}

// SameDevice reports whether two global nodes share a device (their
// traffic stays on one mesh and never crosses the interconnect).
func (d Desc) SameDevice(a, b noc.NodeID) bool {
	return d.DeviceOf(a) == d.DeviceOf(b)
}

// Validate rejects descriptors no machine can be built from.
func (d Desc) Validate() error {
	if d.Devices < 1 {
		return fmt.Errorf("topology: %d devices (want >= 1)", d.Devices)
	}
	return nil
}
