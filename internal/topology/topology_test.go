package topology

import (
	"testing"

	"denovogpu/internal/mem"
	"denovogpu/internal/noc"
)

// TestSingleDeviceIsHistoricalGeometry: the one-device descriptor must
// reproduce the exact formulas the pre-topology code hardcoded —
// line % noc.Nodes home banks, CPU at node 15, identity node mapping.
// The 44 golden reports rest on this.
func TestSingleDeviceIsHistoricalGeometry(t *testing.T) {
	d := Single()
	if d.TotalNodes() != noc.Nodes {
		t.Fatalf("TotalNodes = %d, want %d", d.TotalNodes(), noc.Nodes)
	}
	if gw := d.GatewayNode(0); gw != noc.NodeID(noc.Nodes-1) {
		t.Errorf("gateway at %d, want %d (the historical CPU node)", gw, noc.Nodes-1)
	}
	for _, l := range []mem.Line{0, 1, 15, 16, 17, 31, 1000, 1 << 30} {
		if got, want := d.HomeNode(l), noc.NodeID(uint64(l)%noc.Nodes); got != want {
			t.Errorf("HomeNode(%d) = %d, want historical %d", l, got, want)
		}
		if dev := d.HomeDevice(l); dev != 0 {
			t.Errorf("HomeDevice(%d) = %d on a single device", l, dev)
		}
	}
	for n := noc.NodeID(0); n < noc.NodeID(noc.Nodes); n++ {
		if d.DeviceOf(n) != 0 || d.LocalNode(n) != int(n) || d.Node(0, int(n)) != n {
			t.Errorf("node %d does not map to itself on device 0", n)
		}
	}
}

// TestMultiDeviceNodeRanges: device d owns the contiguous global range
// [d*Nodes, (d+1)*Nodes), and the (device, local) <-> global mappings
// are inverse bijections.
func TestMultiDeviceNodeRanges(t *testing.T) {
	d := New(3)
	if d.TotalNodes() != 3*noc.Nodes {
		t.Fatalf("TotalNodes = %d", d.TotalNodes())
	}
	for dev := 0; dev < 3; dev++ {
		for local := 0; local < noc.Nodes; local++ {
			n := d.Node(dev, local)
			if want := noc.NodeID(dev*noc.Nodes + local); n != want {
				t.Fatalf("Node(%d,%d) = %d, want %d", dev, local, n, want)
			}
			if d.DeviceOf(n) != dev || d.LocalNode(n) != local {
				t.Fatalf("node %d round-trips to (%d,%d), want (%d,%d)",
					n, d.DeviceOf(n), d.LocalNode(n), dev, local)
			}
		}
		if gw := d.GatewayNode(dev); gw != d.Node(dev, GatewayLocal) {
			t.Errorf("gateway of device %d at %d", dev, gw)
		}
	}
	if d.SameDevice(0, noc.NodeID(noc.Nodes-1)) != true {
		t.Error("nodes 0 and 15 are both on device 0")
	}
	if d.SameDevice(0, noc.NodeID(noc.Nodes)) {
		t.Error("nodes 0 and 16 are on different devices")
	}
}

// TestHomeInterleaving: lines interleave across devices at
// noc.Nodes-line granularity, and within a device by the historical
// line % noc.Nodes — so every device's bank slice receives an equal
// share and the local bank index never depends on the device count.
func TestHomeInterleaving(t *testing.T) {
	d := New(2)
	perDevice := [2]int{}
	for l := mem.Line(0); l < 4*noc.Nodes; l++ {
		dev := d.HomeDevice(l)
		if want := int((uint64(l) / noc.Nodes) % 2); dev != want {
			t.Fatalf("HomeDevice(%d) = %d, want %d", l, dev, want)
		}
		perDevice[dev]++
		home := d.HomeNode(l)
		if d.DeviceOf(home) != dev {
			t.Fatalf("HomeNode(%d) = %d not on home device %d", l, home, dev)
		}
		if got, want := d.LocalNode(home), int(uint64(l)%noc.Nodes); got != want {
			t.Fatalf("line %d homes at local bank %d, want %d", l, got, want)
		}
	}
	if perDevice[0] != perDevice[1] {
		t.Errorf("uneven home split: %v", perDevice)
	}
}

func TestValidate(t *testing.T) {
	if err := New(2).Validate(); err != nil {
		t.Errorf("2-device descriptor rejected: %v", err)
	}
	if err := (Desc{}).Validate(); err == nil {
		t.Error("zero-value descriptor accepted")
	}
	if New(0).Devices != 1 || New(-3).Devices != 1 {
		t.Error("New must clamp device counts below 1 to 1")
	}
}
