package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAccumulation(t *testing.T) {
	s := New()
	s.AddFlits(TrafficRead, 10)
	s.AddFlits(TrafficRead, 5)
	s.AddFlits(TrafficAtomic, 3)
	if s.Flits[TrafficRead] != 15 || s.TotalFlits() != 18 {
		t.Fatalf("flits: %v total %d", s.Flits, s.TotalFlits())
	}
	s.AddEnergy(CompL1D, 2.5)
	s.AddEnergy(CompNoC, 1.5)
	if s.TotalEnergyPJ() != 4 {
		t.Fatalf("energy total %f", s.TotalEnergyPJ())
	}
}

func TestNamedCounters(t *testing.T) {
	s := New()
	s.Inc("a.b", 2)
	s.Inc("a.b", 3)
	s.Inc("z", 1)
	if s.Get("a.b") != 5 || s.Get("missing") != 0 {
		t.Fatal("counter arithmetic wrong")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a.b" || names[1] != "z" {
		t.Fatalf("names %v", names)
	}
}

func TestStringsAndLabels(t *testing.T) {
	// The labels must match the paper's figure legends.
	wantTraffic := []string{"Read", "Regist.", "WB/WT", "Atomics", "XDev"}
	for c := TrafficClass(0); c < NumTrafficClasses; c++ {
		if c.String() != wantTraffic[c] {
			t.Errorf("traffic class %d = %q, want %q", c, c.String(), wantTraffic[c])
		}
	}
	wantComp := []string{"GPU Core+", "Scratch", "L1 D$", "L2 $", "N/W"}
	for c := Component(0); c < NumComponents; c++ {
		if c.String() != wantComp[c] {
			t.Errorf("component %d = %q, want %q", c, c.String(), wantComp[c])
		}
	}
	s := New()
	s.Cycles = 7
	out := s.String()
	if !strings.Contains(out, "cycles=7") {
		t.Fatalf("report: %s", out)
	}
}

// Property: totals always equal the sum of parts.
func TestTotalsProperty(t *testing.T) {
	f := func(adds []uint16) bool {
		s := New()
		var want uint64
		for i, a := range adds {
			s.AddFlits(TrafficClass(i%int(NumTrafficClasses)), uint64(a))
			want += uint64(a)
		}
		return s.TotalFlits() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestDeviceView: a view prefixes counter names with its device index
// but shares flits/energy with the root — two devices incrementing the
// "same" counter stay apart while the machine-global dimensions sum.
func TestDeviceView(t *testing.T) {
	root := New()
	d0, d1 := root.DeviceView(0), root.DeviceView(1)
	d0.Inc("l2.hits", 3)
	d0.Inc("l2.hits", 2) // second hit exercises the memoized remap
	d1.Inc("l2.hits", 7)
	if got := root.Get(DevPrefix(0) + "l2.hits"); got != 5 {
		t.Errorf("d0.l2.hits = %d, want 5", got)
	}
	if got := root.Get(DevPrefix(1) + "l2.hits"); got != 7 {
		t.Errorf("d1.l2.hits = %d, want 7", got)
	}
	if got := root.Get("l2.hits"); got != 0 {
		t.Errorf("unprefixed l2.hits = %d; views must never write the bare name", got)
	}

	d0.AddFlits(TrafficRead, 4)
	d1.AddFlits(TrafficRead, 6)
	d0.AddEnergy(CompL2, 1.5)
	if root.Flits[TrafficRead] != 10 {
		t.Errorf("root read flits = %d, want 10 (machine-global, unprefixed)", root.Flits[TrafficRead])
	}
	if root.EnergyPJ[CompL2] != 1.5 {
		t.Errorf("root L2 energy = %v", root.EnergyPJ[CompL2])
	}

	if d0.Root() != root || root.Root() != root {
		t.Error("Root must return the shared sink")
	}
	// Views don't nest: a view of a view re-roots on the shared sink.
	d0.DeviceView(1).Inc("nested", 1)
	if got := root.Get(DevPrefix(1) + "nested"); got != 1 {
		t.Errorf("re-rooted view wrote %d to %q, want 1", got, DevPrefix(1)+"nested")
	}
	if got := root.Get(DevPrefix(0) + DevPrefix(1) + "nested"); got != 0 {
		t.Error("nested view double-prefixed its counter")
	}
}
