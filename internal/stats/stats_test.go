package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAccumulation(t *testing.T) {
	s := New()
	s.AddFlits(TrafficRead, 10)
	s.AddFlits(TrafficRead, 5)
	s.AddFlits(TrafficAtomic, 3)
	if s.Flits[TrafficRead] != 15 || s.TotalFlits() != 18 {
		t.Fatalf("flits: %v total %d", s.Flits, s.TotalFlits())
	}
	s.AddEnergy(CompL1D, 2.5)
	s.AddEnergy(CompNoC, 1.5)
	if s.TotalEnergyPJ() != 4 {
		t.Fatalf("energy total %f", s.TotalEnergyPJ())
	}
}

func TestNamedCounters(t *testing.T) {
	s := New()
	s.Inc("a.b", 2)
	s.Inc("a.b", 3)
	s.Inc("z", 1)
	if s.Get("a.b") != 5 || s.Get("missing") != 0 {
		t.Fatal("counter arithmetic wrong")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a.b" || names[1] != "z" {
		t.Fatalf("names %v", names)
	}
}

func TestStringsAndLabels(t *testing.T) {
	// The labels must match the paper's figure legends.
	wantTraffic := []string{"Read", "Regist.", "WB/WT", "Atomics"}
	for c := TrafficClass(0); c < NumTrafficClasses; c++ {
		if c.String() != wantTraffic[c] {
			t.Errorf("traffic class %d = %q, want %q", c, c.String(), wantTraffic[c])
		}
	}
	wantComp := []string{"GPU Core+", "Scratch", "L1 D$", "L2 $", "N/W"}
	for c := Component(0); c < NumComponents; c++ {
		if c.String() != wantComp[c] {
			t.Errorf("component %d = %q, want %q", c, c.String(), wantComp[c])
		}
	}
	s := New()
	s.Cycles = 7
	out := s.String()
	if !strings.Contains(out, "cycles=7") {
		t.Fatalf("report: %s", out)
	}
}

// Property: totals always equal the sum of parts.
func TestTotalsProperty(t *testing.T) {
	f := func(adds []uint16) bool {
		s := New()
		var want uint64
		for i, a := range adds {
			s.AddFlits(TrafficClass(i%int(NumTrafficClasses)), uint64(a))
			want += uint64(a)
		}
		return s.TotalFlits() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
