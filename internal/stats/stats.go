// Package stats collects the measurements the paper reports: execution
// time in cycles, network traffic in flit crossings split by message
// class, and dynamic energy split by hardware component, plus named
// diagnostic counters used by tests and the ablation benches.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// TrafficClass labels network traffic the way the paper's Figures 2c,
// 3c and 4c do.
type TrafficClass int

const (
	// TrafficRead is data read requests and their data responses.
	TrafficRead TrafficClass = iota
	// TrafficRegistration is DeNovo ownership (registration) requests,
	// forwards and acknowledgments; the paper labels this "Regist."
	// and it also covers data-write traffic.
	TrafficRegistration
	// TrafficWBWT is writebacks and writethroughs of dirty data.
	TrafficWBWT
	// TrafficAtomic is synchronization (atomic) requests and responses.
	TrafficAtomic

	NumTrafficClasses
)

func (c TrafficClass) String() string {
	switch c {
	case TrafficRead:
		return "Read"
	case TrafficRegistration:
		return "Regist."
	case TrafficWBWT:
		return "WB/WT"
	case TrafficAtomic:
		return "Atomics"
	default:
		return fmt.Sprintf("TrafficClass(%d)", int(c))
	}
}

// Component labels dynamic energy the way the paper's Figures 2b, 3b
// and 4b do.
type Component int

const (
	// CompGPUCore is "GPU core+": instruction cache, register file,
	// FPU/SFU, scheduler and core pipeline energy.
	CompGPUCore Component = iota
	// CompScratch is the per-CU scratchpad.
	CompScratch
	// CompL1D is the private L1 data caches.
	CompL1D
	// CompL2 is the shared L2 cache banks.
	CompL2
	// CompNoC is the interconnection network.
	CompNoC

	NumComponents
)

func (c Component) String() string {
	switch c {
	case CompGPUCore:
		return "GPU Core+"
	case CompScratch:
		return "Scratch"
	case CompL1D:
		return "L1 D$"
	case CompL2:
		return "L2 $"
	case CompNoC:
		return "N/W"
	default:
		return fmt.Sprintf("Component(%d)", int(c))
	}
}

// Stats accumulates measurements for one simulation run.
// The zero value of counters is usable but Stats should be created with
// New so the named-counter map exists.
type Stats struct {
	// Cycles is total execution time (set by the machine at the end).
	Cycles uint64
	// Flits[c] counts flit crossings (flits × links traversed).
	Flits [NumTrafficClasses]uint64
	// EnergyPJ[c] is dynamic energy per component, in picojoules.
	EnergyPJ [NumComponents]float64

	named map[string]uint64
}

// New returns an empty Stats.
func New() *Stats { return &Stats{named: make(map[string]uint64)} }

// AddFlits records n flit crossings of the given class.
func (s *Stats) AddFlits(c TrafficClass, n uint64) { s.Flits[c] += n }

// AddEnergy records pj picojoules against the given component.
func (s *Stats) AddEnergy(c Component, pj float64) { s.EnergyPJ[c] += pj }

// Inc adds n to a named diagnostic counter.
func (s *Stats) Inc(name string, n uint64) { s.named[name] += n }

// Get returns a named diagnostic counter.
func (s *Stats) Get(name string) uint64 { return s.named[name] }

// TotalFlits returns all flit crossings.
func (s *Stats) TotalFlits() uint64 {
	var t uint64
	for _, f := range s.Flits {
		t += f
	}
	return t
}

// TotalEnergyPJ returns total dynamic energy.
func (s *Stats) TotalEnergyPJ() float64 {
	var t float64
	for _, e := range s.EnergyPJ {
		t += e
	}
	return t
}

// Names returns the sorted names of all diagnostic counters.
func (s *Stats) Names() []string {
	names := make([]string, 0, len(s.named))
	for n := range s.named {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// String renders a compact human-readable report.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d flits=%d energy=%.1fnJ\n", s.Cycles, s.TotalFlits(), s.TotalEnergyPJ()/1000)
	for c := TrafficClass(0); c < NumTrafficClasses; c++ {
		fmt.Fprintf(&b, "  flits[%s]=%d\n", c, s.Flits[c])
	}
	for c := Component(0); c < NumComponents; c++ {
		fmt.Fprintf(&b, "  energy[%s]=%.1fnJ\n", c, s.EnergyPJ[c]/1000)
	}
	return b.String()
}
