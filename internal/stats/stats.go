// Package stats collects the measurements the paper reports: execution
// time in cycles, network traffic in flit crossings split by message
// class, and dynamic energy split by hardware component, plus named
// diagnostic counters used by tests and the ablation benches.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// TrafficClass labels network traffic the way the paper's Figures 2c,
// 3c and 4c do.
type TrafficClass int

const (
	// TrafficRead is data read requests and their data responses.
	TrafficRead TrafficClass = iota
	// TrafficRegistration is DeNovo ownership (registration) requests,
	// forwards and acknowledgments; the paper labels this "Regist."
	// and it also covers data-write traffic.
	TrafficRegistration
	// TrafficWBWT is writebacks and writethroughs of dirty data.
	TrafficWBWT
	// TrafficAtomic is synchronization (atomic) requests and responses.
	TrafficAtomic
	// TrafficXDev is cross-device traffic: every flit crossing the
	// inter-device interconnect plus the mesh legs that carry it to and
	// from the device gateways (internal/interconnect). Single-device
	// machines never produce it, and the canonical report encoding
	// omits it when zero, so pre-multi-device golden reports are
	// byte-identical.
	TrafficXDev

	NumTrafficClasses
)

// NumLegacyTrafficClasses is the number of traffic classes that
// existed when the golden-report encoding was pinned; classes at or
// beyond this index are omitted from canonical reports when zero (see
// MarshalReport in the api package).
const NumLegacyTrafficClasses = TrafficXDev

func (c TrafficClass) String() string {
	switch c {
	case TrafficRead:
		return "Read"
	case TrafficRegistration:
		return "Regist."
	case TrafficWBWT:
		return "WB/WT"
	case TrafficAtomic:
		return "Atomics"
	case TrafficXDev:
		return "XDev"
	default:
		return fmt.Sprintf("TrafficClass(%d)", int(c))
	}
}

// Component labels dynamic energy the way the paper's Figures 2b, 3b
// and 4b do.
type Component int

const (
	// CompGPUCore is "GPU core+": instruction cache, register file,
	// FPU/SFU, scheduler and core pipeline energy.
	CompGPUCore Component = iota
	// CompScratch is the per-CU scratchpad.
	CompScratch
	// CompL1D is the private L1 data caches.
	CompL1D
	// CompL2 is the shared L2 cache banks.
	CompL2
	// CompNoC is the interconnection network.
	CompNoC

	NumComponents
)

func (c Component) String() string {
	switch c {
	case CompGPUCore:
		return "GPU Core+"
	case CompScratch:
		return "Scratch"
	case CompL1D:
		return "L1 D$"
	case CompL2:
		return "L2 $"
	case CompNoC:
		return "N/W"
	default:
		return fmt.Sprintf("Component(%d)", int(c))
	}
}

// Key is an interned counter name. Hot-path code interns its counter
// names once (package-level vars) and counts through IncKey, so
// per-event counting is an array index instead of a string hash.
type Key int32

// The intern registry is global and append-only: a name keeps its Key
// for the life of the process, so Keys are shareable across the
// independent Stats instances of concurrent simulation runs.
var (
	internMu    sync.RWMutex
	internIdx   = map[string]Key{}
	internNames []string
)

// Intern returns the stable Key for a counter name, registering it on
// first use. Safe for concurrent use.
func Intern(name string) Key {
	internMu.RLock()
	k, ok := internIdx[name]
	internMu.RUnlock()
	if ok {
		return k
	}
	internMu.Lock()
	defer internMu.Unlock()
	if k, ok := internIdx[name]; ok {
		return k
	}
	k = Key(len(internNames))
	internIdx[name] = k
	internNames = append(internNames, name)
	return k
}

// lookup resolves a name without registering it.
func lookup(name string) (Key, bool) {
	internMu.RLock()
	k, ok := internIdx[name]
	internMu.RUnlock()
	return k, ok
}

// Name returns the counter name an interned key stands for. It panics
// on a key no Intern call produced (a corrupted key, not a runtime
// condition).
func Name(k Key) string {
	internMu.RLock()
	defer internMu.RUnlock()
	return internNames[k]
}

// DevPrefix returns the canonical per-device counter prefix ("d0.",
// "d1.", ...) a DeviceView prepends. Exported so report consumers can
// strip or group by it.
func DevPrefix(dev int) string { return fmt.Sprintf("d%d.", dev) }

// Stats accumulates measurements for one simulation run.
// The zero value of counters is usable but Stats should be created with
// New. Stats is not safe for concurrent use; distinct instances are
// independent (the shared intern registry is internally synchronized).
type Stats struct {
	// Cycles is total execution time (set by the machine at the end).
	Cycles uint64
	// Flits[c] counts flit crossings (flits × links traversed).
	Flits [NumTrafficClasses]uint64
	// EnergyPJ[c] is dynamic energy per component, in picojoules.
	EnergyPJ [NumComponents]float64

	// counters is indexed by Key; touched marks keys this run has
	// counted (including Inc of 0, which creates the counter — Names
	// and golden reports rely on that).
	counters []uint64
	touched  []bool

	// parent/dev/remap implement per-device counter views (DeviceView):
	// a view shares its parent's accumulators but remaps every counter
	// key onto a device-prefixed name, so two devices incrementing the
	// "same" counter land on distinct keys instead of silently summing.
	// parent == nil means this IS the root Stats (the common case; the
	// single branch it costs on the counting path is noise next to the
	// array write).
	parent *Stats
	dev    int
	remap  []Key
}

// New returns an empty Stats.
func New() *Stats { return &Stats{} }

// DeviceView returns a handle that records into s with every counter
// name prefixed by DevPrefix(dev) ("d0.", "d1.", ...). Traffic-class
// flits and component energy are machine-global dimensions and pass
// through unprefixed. Multi-device machines hand each device's
// components a view so merged reports keep per-device counters apart;
// single-device machines never create one, so their counter names (and
// golden reports) are unchanged.
func (s *Stats) DeviceView(dev int) *Stats {
	if s.parent != nil {
		s = s.parent // views don't nest; re-root on the shared sink
	}
	return &Stats{parent: s, dev: dev}
}

// Root returns the shared sink a view records into (s itself when s is
// not a view).
func (s *Stats) Root() *Stats {
	if s.parent != nil {
		return s.parent
	}
	return s
}

// AddFlits records n flit crossings of the given class.
func (s *Stats) AddFlits(c TrafficClass, n uint64) { s.Root().Flits[c] += n }

// AddEnergy records pj picojoules against the given component.
func (s *Stats) AddEnergy(c Component, pj float64) { s.Root().EnergyPJ[c] += pj }

// IncKey adds n to the counter for an interned key, creating it at
// zero if this run has not counted it yet.
func (s *Stats) IncKey(k Key, n uint64) {
	if s.parent != nil {
		s.parent.IncKey(s.mapKey(k), n)
		return
	}
	if int(k) >= len(s.counters) {
		s.growTo(int(k) + 1)
	}
	s.counters[k] += n
	s.touched[k] = true
}

// mapKey translates a base key onto this view's device-prefixed key,
// memoizing the translation so steady-state counting stays one array
// index away from the root path.
func (s *Stats) mapKey(k Key) Key {
	for int(k) >= len(s.remap) {
		s.remap = append(s.remap, -1)
	}
	if m := s.remap[k]; m >= 0 {
		return m
	}
	m := Intern(DevPrefix(s.dev) + Name(k))
	s.remap[k] = m
	return m
}

func (s *Stats) growTo(n int) {
	c := make([]uint64, n)
	copy(c, s.counters)
	t := make([]bool, n)
	copy(t, s.touched)
	s.counters, s.touched = c, t
}

// Inc adds n to a named diagnostic counter.
func (s *Stats) Inc(name string, n uint64) { s.IncKey(Intern(name), n) }

// Get returns a named diagnostic counter (0 if never counted).
func (s *Stats) Get(name string) uint64 {
	k, ok := lookup(name)
	if !ok || int(k) >= len(s.counters) {
		return 0
	}
	return s.counters[k]
}

// TotalFlits returns all flit crossings.
func (s *Stats) TotalFlits() uint64 {
	var t uint64
	for _, f := range s.Flits {
		t += f
	}
	return t
}

// TotalEnergyPJ returns total dynamic energy.
func (s *Stats) TotalEnergyPJ() float64 {
	var t float64
	for _, e := range s.EnergyPJ {
		t += e
	}
	return t
}

// Names returns the sorted names of all diagnostic counters this run
// has counted (including counters incremented by zero).
func (s *Stats) Names() []string {
	internMu.RLock()
	names := make([]string, 0, len(s.counters))
	for k, t := range s.touched {
		if t {
			names = append(names, internNames[k])
		}
	}
	internMu.RUnlock()
	sort.Strings(names)
	return names
}

// String renders a compact human-readable report.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d flits=%d energy=%.1fnJ\n", s.Cycles, s.TotalFlits(), s.TotalEnergyPJ()/1000)
	for c := TrafficClass(0); c < NumTrafficClasses; c++ {
		fmt.Fprintf(&b, "  flits[%s]=%d\n", c, s.Flits[c])
	}
	for c := Component(0); c < NumComponents; c++ {
		fmt.Fprintf(&b, "  energy[%s]=%.1fnJ\n", c, s.EnergyPJ[c]/1000)
	}
	return b.String()
}
