package cache

import (
	"testing"
	"testing/quick"

	"denovogpu/internal/mem"
)

func TestNewGeometry(t *testing.T) {
	c := New(32*1024, 8) // the paper's L1
	if c.Sets() != 64 || c.Ways() != 8 {
		t.Fatalf("32KB 8-way: sets=%d ways=%d, want 64/8", c.Sets(), c.Ways())
	}
}

func TestNewBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two sets should panic")
		}
	}()
	New(3*1024, 8)
}

func TestLookupMissThenFill(t *testing.T) {
	c := New(8*1024, 4)
	l := mem.Line(42)
	if c.Lookup(l) != nil {
		t.Fatal("empty cache should miss")
	}
	e := c.Victim(l)
	if e == nil {
		t.Fatal("empty cache must offer a victim")
	}
	e.Reset(l)
	e.State[3] = Valid
	e.Data[3] = 99
	got := c.Lookup(l)
	if got == nil || got.Data[3] != 99 || got.State[3] != Valid {
		t.Fatal("fill not visible")
	}
}

func TestVictimPrefersExistingThenFreeThenLRU(t *testing.T) {
	c := New(4*mem.LineBytes*2, 2) // 4 sets, 2 ways
	// Two lines mapping to the same set (stride = sets).
	stride := mem.Line(c.Sets())
	a, b, d := mem.Line(0), stride, 2*stride
	ea := c.Victim(a)
	ea.Reset(a)
	c.Touch(ea)
	eb := c.Victim(b)
	if eb == ea {
		t.Fatal("victim should prefer a free frame over evicting")
	}
	eb.Reset(b)
	c.Touch(eb)
	// Same line again: must return its own frame.
	if c.Victim(a) != ea {
		t.Fatal("victim for resident line must be its own frame")
	}
	// Set full: LRU is a (touched first).
	c.Lookup(b) // make b more recent
	if v := c.Victim(d); v != ea {
		t.Fatal("victim should pick LRU frame")
	}
}

func TestVictimSkipsPinned(t *testing.T) {
	c := New(2*mem.LineBytes*2, 2) // 2 sets, 2 ways
	stride := mem.Line(c.Sets())
	e0 := c.Victim(0)
	e0.Reset(0)
	e0.Pinned = true
	e1 := c.Victim(stride)
	e1.Reset(stride)
	e1.Pinned = true
	if c.Victim(2*stride) != nil {
		t.Fatal("all-pinned set must yield no victim")
	}
	e1.Pinned = false
	if c.Victim(2*stride) != e1 {
		t.Fatal("unpinned frame should become the victim")
	}
}

func TestInvalidateFlash(t *testing.T) {
	c := New(8*1024, 4)
	for i := 0; i < 10; i++ {
		e := c.Victim(mem.Line(i))
		e.Reset(mem.Line(i))
		e.State[0] = Valid
		e.State[1] = Registered
	}
	n := c.Invalidate(func(*Entry, int) bool { return false })
	if n != 20 {
		t.Fatalf("flash invalidated %d words, want 20", n)
	}
	if c.CountWords(Valid)+c.CountWords(Registered) != 0 {
		t.Fatal("flash left live words")
	}
	if c.Lookup(mem.Line(3)) != nil {
		t.Fatal("fully invalid frames should be untagged")
	}
}

func TestInvalidateKeepsRegistered(t *testing.T) {
	c := New(8*1024, 4)
	e := c.Victim(mem.Line(5))
	e.Reset(mem.Line(5))
	e.State[0] = Valid
	e.State[1] = Registered
	e.Data[1] = 7
	n := c.Invalidate(func(e *Entry, w int) bool { return e.State[w] == Registered })
	if n != 1 {
		t.Fatalf("invalidated %d, want 1 (only the Valid word)", n)
	}
	got := c.Lookup(mem.Line(5))
	if got == nil || got.State[1] != Registered || got.Data[1] != 7 {
		t.Fatal("DeNovo acquire must keep registered (owned) words")
	}
	if got.State[0] != Invalid {
		t.Fatal("valid word should have been invalidated")
	}
}

func TestEntryMaskOf(t *testing.T) {
	var e Entry
	e.Reset(mem.Line(1))
	e.State[2] = Valid
	e.State[7] = Registered
	e.State[8] = Registered
	if e.MaskOf(Registered) != mem.Bit(7)|mem.Bit(8) {
		t.Fatal("MaskOf(Registered) wrong")
	}
	if e.MaskOf(Valid) != mem.Bit(2) {
		t.Fatal("MaskOf(Valid) wrong")
	}
	if !e.HasAny(Valid) || e.HasAny(WordState(9)) {
		t.Fatal("HasAny wrong")
	}
}

// Property: after filling k distinct lines into an empty large cache,
// all are resident (no premature evictions while capacity remains).
func TestNoSpuriousEvictionProperty(t *testing.T) {
	f := func(seeds []uint16) bool {
		c := New(32*1024, 8)
		seen := map[mem.Line]bool{}
		for _, s := range seeds {
			l := mem.Line(s % 256) // 256 distinct lines fit easily in 512 frames
			if seen[l] {
				continue
			}
			seen[l] = true
			e := c.Victim(l)
			if e == nil {
				return false
			}
			if e.Tag && e.Line != l && len(seen) <= c.Sets() {
				// Should never evict while whole cache has room per set;
				// with uniform small lines per set this won't trigger.
				return false
			}
			e.Reset(l)
			e.State[0] = Valid
			c.Touch(e)
		}
		for l := range seen {
			if c.Peek(l) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
