package cache

import (
	"testing"
	"testing/quick"

	"denovogpu/internal/mem"
)

func TestStoreBufferCoalesce(t *testing.T) {
	b := NewStoreBuffer(4)
	co, ev := b.Insert(mem.Word(1), 10)
	if co || ev != nil {
		t.Fatal("first insert should not coalesce or evict")
	}
	co, ev = b.Insert(mem.Word(1), 20)
	if !co || ev != nil {
		t.Fatal("second write to same word must coalesce")
	}
	if v, _ := b.Lookup(mem.Word(1)); v != 20 {
		t.Fatalf("coalesced value = %d, want 20", v)
	}
	if b.Len() != 1 {
		t.Fatalf("len = %d, want 1", b.Len())
	}
}

func TestStoreBufferOverflowEvictsOldestLineGroup(t *testing.T) {
	b := NewStoreBuffer(2)
	// Words 1 and 2 share line 0; overflow drains them together.
	b.Insert(mem.Word(1), 10)
	b.Insert(mem.Word(2), 20)
	co, ev := b.Insert(mem.Word(100), 30)
	if co {
		t.Fatal("distinct word should not coalesce")
	}
	if ev == nil || ev.Line != mem.Line(0) || ev.Mask != mem.Bit(1)|mem.Bit(2) {
		t.Fatalf("overflow should evict the oldest line group, got %+v", ev)
	}
	if ev.Data[1] != 10 || ev.Data[2] != 20 {
		t.Fatalf("evicted data wrong: %+v", ev)
	}
	// Word 1 can no longer coalesce: this is the LavaMD effect.
	co, _ = b.Insert(mem.Word(1), 11)
	if co {
		t.Fatal("evicted word must not coalesce with its old slot")
	}
}

func TestStoreBufferOverflowCrossLine(t *testing.T) {
	b := NewStoreBuffer(3)
	b.Insert(mem.Word(0), 1)  // line 0
	b.Insert(mem.Word(20), 2) // line 1
	b.Insert(mem.Word(1), 3)  // line 0 again
	_, ev := b.Insert(mem.Word(40), 4)
	if ev == nil || ev.Line != mem.Line(0) || ev.Mask.Count() != 2 {
		t.Fatalf("should evict both line-0 words, got %+v", ev)
	}
	if v, ok := b.Lookup(mem.Word(20)); !ok || v != 2 {
		t.Fatal("line-1 word must survive the line-0 eviction")
	}
}

func TestStoreBufferDrainOrder(t *testing.T) {
	b := NewStoreBuffer(8)
	words := []mem.Word{5, 3, 9, 3, 7}
	for i, w := range words {
		b.Insert(w, uint32(i))
	}
	got := b.DrainAll()
	want := []SBEntry{{5, 0}, {3, 3}, {9, 2}, {7, 4}}
	if len(got) != len(want) {
		t.Fatalf("drained %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	if b.Len() != 0 {
		t.Fatal("drain must empty the buffer")
	}
}

func TestStoreBufferRemove(t *testing.T) {
	b := NewStoreBuffer(4)
	b.Insert(mem.Word(1), 10)
	v, ok := b.Remove(mem.Word(1))
	if !ok || v != 10 {
		t.Fatal("remove failed")
	}
	if _, ok := b.Remove(mem.Word(1)); ok {
		t.Fatal("double remove should miss")
	}
	// fifo should not break after removes interleaved with inserts.
	b.Insert(mem.Word(2), 20)
	b.Insert(mem.Word(3), 30)
	b.Remove(mem.Word(2))
	b.Insert(mem.Word(4), 40)
	got := b.DrainAll()
	if len(got) != 2 || got[0].Word != 3 || got[1].Word != 4 {
		t.Fatalf("drain after removes = %+v", got)
	}
}

// Property: the buffer never exceeds capacity, and total inserts =
// coalesced + evicted + remaining.
func TestStoreBufferAccountingProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		b := NewStoreBuffer(16)
		coalesced, evictedWords := 0, 0
		for i, op := range ops {
			co, ev := b.Insert(mem.Word(op%40), uint32(i))
			if co {
				coalesced++
			}
			if ev != nil {
				evictedWords += ev.Mask.Count()
			}
			if b.Len() > b.Cap() {
				return false
			}
		}
		return len(ops) == coalesced+evictedWords+b.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: latest value wins — for any op sequence, Lookup returns the
// value of the most recent insert of that word (if still buffered).
func TestStoreBufferLatestValueProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		b := NewStoreBuffer(64) // big enough to avoid eviction for ≤ 64 distinct
		latest := map[mem.Word]uint32{}
		for i, op := range ops {
			w := mem.Word(op % 50)
			b.Insert(w, uint32(i))
			latest[w] = uint32(i)
		}
		for w, want := range latest {
			if got, ok := b.Lookup(w); !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupByLine(t *testing.T) {
	entries := []SBEntry{
		{Word: mem.Word(0), Val: 1},  // line 0, idx 0
		{Word: mem.Word(17), Val: 2}, // line 1, idx 1
		{Word: mem.Word(3), Val: 3},  // line 0, idx 3
	}
	groups := GroupByLine(entries)
	if len(groups) != 2 {
		t.Fatalf("%d groups, want 2", len(groups))
	}
	if groups[0].Line != 0 || groups[0].Mask != mem.Bit(0)|mem.Bit(3) {
		t.Fatalf("group 0 wrong: %+v", groups[0])
	}
	if groups[0].Data[0] != 1 || groups[0].Data[3] != 3 {
		t.Fatal("group 0 data wrong")
	}
	if groups[1].Line != 1 || groups[1].Mask != mem.Bit(1) || groups[1].Data[1] != 2 {
		t.Fatalf("group 1 wrong: %+v", groups[1])
	}
}

// Property: grouping preserves every entry exactly once.
func TestGroupByLineCompleteProperty(t *testing.T) {
	f := func(words []uint16) bool {
		seen := map[mem.Word]bool{}
		var entries []SBEntry
		for i, w := range words {
			word := mem.Word(w)
			if seen[word] {
				continue // GroupByLine input comes from a coalescing buffer: distinct words
			}
			seen[word] = true
			entries = append(entries, SBEntry{Word: word, Val: uint32(i)})
		}
		groups := GroupByLine(entries)
		total := 0
		for _, g := range groups {
			total += g.Mask.Count()
		}
		if total != len(entries) {
			return false
		}
		for _, e := range entries {
			found := false
			for _, g := range groups {
				if g.Line == e.Word.LineOf() && g.Mask.Has(e.Word.Index()) && g.Data[e.Word.Index()] == e.Val {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestVictimBuffer(t *testing.T) {
	v := NewVictimBuffer()
	v.Put(mem.Word(9), 77)
	if got, ok := v.Get(mem.Word(9)); !ok || got != 77 {
		t.Fatal("victim buffer get failed")
	}
	v.Drop(mem.Word(9))
	if _, ok := v.Get(mem.Word(9)); ok {
		t.Fatal("dropped word still present")
	}
	if v.Len() != 0 {
		t.Fatal("len after drop should be 0")
	}
}
