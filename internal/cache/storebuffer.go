package cache

import (
	"fmt"

	"denovogpu/internal/mem"
	"denovogpu/internal/obs"
	"denovogpu/internal/wordmap"
)

// SBEntry is one store-buffer slot: a pending word write.
type SBEntry struct {
	Word mem.Word
	Val  uint32
}

// nilSlot terminates the intrusive slot list.
const nilSlot = int32(-1)

// sbSlot is one pooled buffer slot, linked in insertion order.
type sbSlot struct {
	word       mem.Word
	val        uint32
	prev, next int32
}

// StoreBuffer is the 256-entry coalescing store buffer that sits next
// to each L1 (paper Table 3). Writes to a word already buffered
// coalesce into the existing slot; when the buffer is full the oldest
// slot is evicted to make room — that forced, one-at-a-time draining is
// exactly the effect the paper blames for LavaMD's and TB_LG's
// writethrough traffic under GPU coherence.
//
// Slots live in a fixed pool threaded by an intrusive doubly-linked
// list in insertion order, with a free list for recycling, so every
// operation — including Remove, which protocols call once per
// completed registration — is O(1) (plus the line walk on overflow)
// and iteration is O(live entries). An earlier slice-based FIFO left
// dead entries behind on Remove, making iteration O(total insert
// history); on registration-heavy workloads that was the simulator's
// single largest cost.
type StoreBuffer struct {
	cap        int
	index      wordmap.Map[int32] // word -> pool slot of its live entry
	pool       []sbSlot
	free       []int32 // recycled pool slots
	head, tail int32   // live entries, insertion order

	// rec, when non-nil, receives SBInsert/SBCoalesce/SBDrain/SBEvict
	// events on the given track (the owning CU's node id).
	rec   *obs.Recorder
	track int32
}

// NewStoreBuffer returns a buffer with the given capacity in word slots.
func NewStoreBuffer(capacity int) *StoreBuffer {
	return &StoreBuffer{
		cap:  capacity,
		pool: make([]sbSlot, 0, capacity),
		head: nilSlot,
		tail: nilSlot,
	}
}

// SetRecorder installs an obs recorder (nil to disable) emitting this
// buffer's events on the given track.
func (b *StoreBuffer) SetRecorder(rec *obs.Recorder, track int32) {
	b.rec = rec
	b.track = track
}

// Cap returns the capacity.
func (b *StoreBuffer) Cap() int { return b.cap }

// Len returns the number of live slots.
func (b *StoreBuffer) Len() int { return b.index.Len() }

// Full reports whether the buffer has no free slots.
func (b *StoreBuffer) Full() bool { return b.index.Len() >= b.cap }

// Lookup returns the buffered value for w, for store-to-load forwarding.
func (b *StoreBuffer) Lookup(w mem.Word) (uint32, bool) {
	i, ok := b.index.Get(uint64(w))
	if !ok {
		return 0, false
	}
	return b.pool[i].val, true
}

func (b *StoreBuffer) alloc() int32 {
	if n := len(b.free); n > 0 {
		i := b.free[n-1]
		b.free = b.free[:n-1]
		return i
	}
	b.pool = append(b.pool, sbSlot{})
	return int32(len(b.pool) - 1)
}

func (b *StoreBuffer) linkTail(i int32) {
	b.pool[i].prev, b.pool[i].next = b.tail, nilSlot
	if b.tail != nilSlot {
		b.pool[b.tail].next = i
	} else {
		b.head = i
	}
	b.tail = i
}

func (b *StoreBuffer) unlink(i int32) {
	s := &b.pool[i]
	if s.prev != nilSlot {
		b.pool[s.prev].next = s.next
	} else {
		b.head = s.next
	}
	if s.next != nilSlot {
		b.pool[s.next].prev = s.prev
	} else {
		b.tail = s.prev
	}
	b.free = append(b.free, i)
}

// Insert buffers a write of v to w. If w is already buffered the write
// coalesces (coalesced=true) into the existing slot, keeping its
// original position, and nothing is evicted. If the buffer is full, the
// oldest slot's entire line group is evicted and returned for the
// caller to drain as one coalesced writethrough — the hardware drains
// at line granularity, so streaming writes keep their coalescing; what
// overflow destroys is the ability of *future* writes to the evicted
// words to coalesce (the paper's LavaMD effect).
func (b *StoreBuffer) Insert(w mem.Word, v uint32) (coalesced bool, evicted *LineGroup) {
	if i, ok := b.index.Get(uint64(w)); ok {
		b.pool[i].val = v
		if b.rec != nil {
			b.rec.Emit(obs.SBCoalesce, b.track, uint64(w))
		}
		return true, nil
	}
	if b.Full() {
		evicted = b.popOldestLine()
	}
	i := b.alloc()
	b.pool[i] = sbSlot{word: w, val: v}
	b.linkTail(i)
	b.index.Put(uint64(w), i)
	if b.rec != nil {
		b.rec.Emit(obs.SBInsert, b.track, uint64(w))
	}
	return false, evicted
}

// popOldestLine removes the oldest slot and every other buffered slot
// of its line, returning them as one group.
func (b *StoreBuffer) popOldestLine() *LineGroup {
	if b.head == nilSlot {
		panic("cache: popOldestLine on empty store buffer")
	}
	g := &LineGroup{Line: b.pool[b.head].word.LineOf()}
	words := uint64(0)
	for i := 0; i < mem.WordsPerLine; i++ {
		word := g.Line.Word(i)
		if si, ok := b.index.Get(uint64(word)); ok {
			g.Mask |= mem.Bit(i)
			g.Data[i] = b.pool[si].val
			b.index.Delete(uint64(word))
			b.unlink(si)
			words++
		}
	}
	if b.rec != nil {
		b.rec.Emit(obs.SBEvict, b.track, words)
	}
	return g
}

// Remove deletes the slot for w (e.g. when its registration completes)
// and returns its value.
func (b *StoreBuffer) Remove(w mem.Word) (uint32, bool) {
	i, ok := b.index.Get(uint64(w))
	if !ok {
		return 0, false
	}
	v := b.pool[i].val
	b.index.Delete(uint64(w))
	b.unlink(i)
	if b.rec != nil {
		b.rec.Emit(obs.SBDrain, b.track, 1)
	}
	return v, true
}

// PeekOldest returns the oldest live slot without removing it.
func (b *StoreBuffer) PeekOldest() (SBEntry, bool) {
	if b.head == nilSlot {
		return SBEntry{}, false
	}
	s := &b.pool[b.head]
	return SBEntry{Word: s.word, Val: s.val}, true
}

// AppendEntries appends all live slots in insertion order to dst and
// returns the extended slice; hot callers pass a recycled scratch
// buffer to keep the per-release path allocation-free.
func (b *StoreBuffer) AppendEntries(dst []SBEntry) []SBEntry {
	for i := b.head; i != nilSlot; i = b.pool[i].next {
		dst = append(dst, SBEntry{Word: b.pool[i].word, Val: b.pool[i].val})
	}
	return dst
}

// Entries returns all live slots in insertion order without removing
// them.
func (b *StoreBuffer) Entries() []SBEntry {
	return b.AppendEntries(make([]SBEntry, 0, b.index.Len()))
}

// AppendDrain empties the buffer, appending all slots in insertion
// order to dst (the allocation-free variant of DrainAll).
func (b *StoreBuffer) AppendDrain(dst []SBEntry) []SBEntry {
	dst = b.AppendEntries(dst)
	if b.rec != nil && b.index.Len() > 0 {
		b.rec.Emit(obs.SBDrain, b.track, uint64(b.index.Len()))
	}
	b.index.Reset()
	b.pool = b.pool[:0]
	b.free = b.free[:0]
	b.head, b.tail = nilSlot, nilSlot
	return dst
}

// DrainAll empties the buffer, returning all slots in insertion order.
func (b *StoreBuffer) DrainAll() []SBEntry {
	return b.AppendDrain(make([]SBEntry, 0, b.index.Len()))
}

// CheckInvariants validates the buffer's internal structure (the
// model checker's sb-fifo invariant, structurally): the intrusive
// list and the word index must describe the same live slots — every
// linked slot indexed back to itself, back-pointers symmetric, no
// word appearing twice — and every pool slot must be either live or
// on the free list. Protocol sanitizers (machine.Config.Invariants)
// call it at quiesce points; it walks the whole buffer and is not for
// hot paths.
func (b *StoreBuffer) CheckInvariants() error {
	live := 0
	prev := nilSlot
	for i := b.head; i != nilSlot; i = b.pool[i].next {
		s := &b.pool[i]
		if s.prev != prev {
			return fmt.Errorf("cache: store buffer slot %d has prev %d, want %d", i, s.prev, prev)
		}
		j, ok := b.index.Get(uint64(s.word))
		if !ok {
			return fmt.Errorf("cache: store buffer slot %d holds %v, which the index does not know", i, s.word)
		}
		if j != i {
			return fmt.Errorf("cache: store buffer holds %v at slot %d but the index points to slot %d (duplicate word or stale index)", s.word, i, j)
		}
		live++
		if live > b.index.Len() {
			return fmt.Errorf("cache: store buffer list is longer than its %d-entry index (cycle or leaked slot)", b.index.Len())
		}
		prev = i
	}
	if b.tail != prev {
		return fmt.Errorf("cache: store buffer tail is slot %d, but the list ends at slot %d", b.tail, prev)
	}
	if live != b.index.Len() {
		return fmt.Errorf("cache: store buffer list has %d slots but the index has %d entries", live, b.index.Len())
	}
	if live+len(b.free) != len(b.pool) {
		return fmt.Errorf("cache: store buffer pool leak: %d live + %d free != %d pooled", live, len(b.free), len(b.pool))
	}
	return nil
}

// LineGroup is a set of buffered words of one line, for coalesced
// writethrough messages.
type LineGroup struct {
	Line mem.Line
	Mask mem.WordMask
	Data [mem.WordsPerLine]uint32
}

// AppendGroupByLine coalesces drained entries into per-line groups,
// preserving the order of first occurrence, appending to dst. The line
// lookup is a linear scan over the groups built so far: a drain covers
// at most a few tens of lines, where the scan beats a freshly
// allocated map.
func AppendGroupByLine(dst []LineGroup, entries []SBEntry) []LineGroup {
	base := len(dst)
	for _, e := range entries {
		l := e.Word.LineOf()
		gi := -1
		for i := base; i < len(dst); i++ {
			if dst[i].Line == l {
				gi = i
				break
			}
		}
		if gi < 0 {
			gi = len(dst)
			dst = append(dst, LineGroup{Line: l})
		}
		dst[gi].Mask |= mem.Bit(e.Word.Index())
		dst[gi].Data[e.Word.Index()] = e.Val
	}
	return dst
}

// GroupByLine coalesces drained entries into per-line groups, preserving
// the order of first occurrence. A release drains the whole buffer and
// sends one writethrough per line — the coalescing benefit the buffer
// exists for.
func GroupByLine(entries []SBEntry) []LineGroup {
	return AppendGroupByLine(nil, entries)
}

// VictimBuffer holds words whose ownership is in flight away from this
// cache: evicted Registered words awaiting WriteBackAck, and words
// transferred by RegXfer that may still receive stale forwards. It is a
// correctness structure for protocol races, not a performance one.
type VictimBuffer struct {
	vals wordmap.Map[uint32]
}

// NewVictimBuffer returns an empty victim buffer.
func NewVictimBuffer() *VictimBuffer {
	return &VictimBuffer{}
}

// Put stores a word value.
func (v *VictimBuffer) Put(w mem.Word, val uint32) { v.vals.Put(uint64(w), val) }

// Get returns a word value if present.
func (v *VictimBuffer) Get(w mem.Word) (uint32, bool) {
	return v.vals.Get(uint64(w))
}

// Drop removes a word.
func (v *VictimBuffer) Drop(w mem.Word) { v.vals.Delete(uint64(w)) }

// Len returns the number of held words.
func (v *VictimBuffer) Len() int { return v.vals.Len() }
