package cache

import (
	"denovogpu/internal/mem"
)

// SBEntry is one store-buffer slot: a pending word write.
type SBEntry struct {
	Word mem.Word
	Val  uint32
}

// StoreBuffer is the 256-entry coalescing store buffer that sits next
// to each L1 (paper Table 3). Writes to a word already buffered
// coalesce into the existing slot; when the buffer is full the oldest
// slot is evicted to make room — that forced, one-at-a-time draining is
// exactly the effect the paper blames for LavaMD's and TB_LG's
// writethrough traffic under GPU coherence.
type StoreBuffer struct {
	cap   int
	slots map[mem.Word]uint32
	fifo  []mem.Word // insertion order of live words
}

// NewStoreBuffer returns a buffer with the given capacity in word slots.
func NewStoreBuffer(capacity int) *StoreBuffer {
	return &StoreBuffer{cap: capacity, slots: make(map[mem.Word]uint32, capacity)}
}

// Cap returns the capacity.
func (b *StoreBuffer) Cap() int { return b.cap }

// Len returns the number of live slots.
func (b *StoreBuffer) Len() int { return len(b.slots) }

// Full reports whether the buffer has no free slots.
func (b *StoreBuffer) Full() bool { return len(b.slots) >= b.cap }

// Lookup returns the buffered value for w, for store-to-load forwarding.
func (b *StoreBuffer) Lookup(w mem.Word) (uint32, bool) {
	v, ok := b.slots[w]
	return v, ok
}

// Insert buffers a write of v to w. If w is already buffered the write
// coalesces (coalesced=true) and nothing is evicted. If the buffer is
// full, the oldest slot's entire line group is evicted and returned for
// the caller to drain as one coalesced writethrough — the hardware
// drains at line granularity, so streaming writes keep their
// coalescing; what overflow destroys is the ability of *future* writes
// to the evicted words to coalesce (the paper's LavaMD effect).
func (b *StoreBuffer) Insert(w mem.Word, v uint32) (coalesced bool, evicted *LineGroup) {
	if _, ok := b.slots[w]; ok {
		b.slots[w] = v
		return true, nil
	}
	if b.Full() {
		evicted = b.popOldestLine()
	}
	b.slots[w] = v
	b.fifo = append(b.fifo, w)
	return false, evicted
}

// popOldestLine removes the oldest slot and every other buffered slot
// of its line, returning them as one group.
func (b *StoreBuffer) popOldestLine() *LineGroup {
	for len(b.fifo) > 0 {
		w := b.fifo[0]
		if _, ok := b.slots[w]; !ok {
			b.fifo = b.fifo[1:] // dead fifo head
			continue
		}
		g := &LineGroup{Line: w.LineOf()}
		for i := 0; i < mem.WordsPerLine; i++ {
			word := g.Line.Word(i)
			if v, ok := b.slots[word]; ok {
				g.Mask |= mem.Bit(i)
				g.Data[i] = v
				delete(b.slots, word)
			}
		}
		return g
	}
	panic("cache: popOldestLine on empty store buffer")
}

// Remove deletes the slot for w (e.g. when its registration completes)
// and returns its value.
func (b *StoreBuffer) Remove(w mem.Word) (uint32, bool) {
	v, ok := b.slots[w]
	if ok {
		delete(b.slots, w)
	}
	return v, ok
}

// PeekOldest returns the oldest live slot without removing it.
func (b *StoreBuffer) PeekOldest() (SBEntry, bool) {
	for len(b.fifo) > 0 {
		w := b.fifo[0]
		if v, ok := b.slots[w]; ok {
			return SBEntry{Word: w, Val: v}, true
		}
		b.fifo = b.fifo[1:] // drop dead fifo heads lazily
	}
	return SBEntry{}, false
}

// Entries returns all live slots in insertion order without removing
// them.
func (b *StoreBuffer) Entries() []SBEntry {
	out := make([]SBEntry, 0, len(b.slots))
	for _, w := range b.fifo {
		if v, ok := b.slots[w]; ok {
			out = append(out, SBEntry{Word: w, Val: v})
		}
	}
	return out
}

// DrainAll empties the buffer, returning all slots in insertion order.
func (b *StoreBuffer) DrainAll() []SBEntry {
	out := make([]SBEntry, 0, len(b.slots))
	for _, w := range b.fifo {
		if v, ok := b.slots[w]; ok {
			out = append(out, SBEntry{Word: w, Val: v})
			delete(b.slots, w)
		}
	}
	b.fifo = b.fifo[:0]
	return out
}

// LineGroup is a set of buffered words of one line, for coalesced
// writethrough messages.
type LineGroup struct {
	Line mem.Line
	Mask mem.WordMask
	Data [mem.WordsPerLine]uint32
}

// GroupByLine coalesces drained entries into per-line groups, preserving
// the order of first occurrence. A release drains the whole buffer and
// sends one writethrough per line — the coalescing benefit the buffer
// exists for.
func GroupByLine(entries []SBEntry) []LineGroup {
	index := make(map[mem.Line]int)
	var groups []LineGroup
	for _, e := range entries {
		l := e.Word.LineOf()
		i, ok := index[l]
		if !ok {
			i = len(groups)
			index[l] = i
			groups = append(groups, LineGroup{Line: l})
		}
		groups[i].Mask |= mem.Bit(e.Word.Index())
		groups[i].Data[e.Word.Index()] = e.Val
	}
	return groups
}

// VictimBuffer holds words whose ownership is in flight away from this
// cache: evicted Registered words awaiting WriteBackAck, and words
// transferred by RegXfer that may still receive stale forwards. It is a
// correctness structure for protocol races, not a performance one.
type VictimBuffer struct {
	vals map[mem.Word]uint32
}

// NewVictimBuffer returns an empty victim buffer.
func NewVictimBuffer() *VictimBuffer {
	return &VictimBuffer{vals: make(map[mem.Word]uint32)}
}

// Put stores a word value.
func (v *VictimBuffer) Put(w mem.Word, val uint32) { v.vals[w] = val }

// Get returns a word value if present.
func (v *VictimBuffer) Get(w mem.Word) (uint32, bool) {
	val, ok := v.vals[w]
	return val, ok
}

// Drop removes a word.
func (v *VictimBuffer) Drop(w mem.Word) { delete(v.vals, w) }

// Len returns the number of held words.
func (v *VictimBuffer) Len() int { return len(v.vals) }
