// Package cache provides the storage structures shared by both L1
// protocol controllers: a set-associative sector cache with per-word
// coherence state, a write-combining coalescing store buffer, and a
// victim buffer for in-flight evictions.
//
// The sector organization follows the paper: tags and data transfer at
// 64-byte line granularity, coherence state at 4-byte word granularity
// (two bits per word suffice for DeNovo's three states; the GPU
// protocol uses only the valid bit of each word, all-or-nothing per
// line for GPU-D and per-word for GPU-H's partial blocks).
package cache

import (
	"fmt"
	"math/bits"

	"denovogpu/internal/mem"
)

// WordState is the per-word coherence state.
type WordState uint8

const (
	// Invalid: the word holds no usable data.
	Invalid WordState = iota
	// Valid: the word holds clean, readable data.
	Valid
	// Registered: this cache owns the word (DeNovo only); the copy is
	// up to date and writable, and the registry points here.
	Registered
)

// Dirty is the GPU-H partial-block state: the word was written locally
// and not yet flushed to the L2. It shares an encoding with Registered
// (both mean "this L1 holds the authoritative copy"), which is also how
// the paper's DD+RO reuses the spare state encoding.
const Dirty = Registered

func (s WordState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Valid:
		return "V"
	case Registered:
		return "R"
	default:
		return fmt.Sprintf("WordState(%d)", uint8(s))
	}
}

// Entry is one cache frame.
type Entry struct {
	Line  mem.Line
	Tag   bool // frame holds a line (any word state)
	State [mem.WordsPerLine]WordState
	Data  [mem.WordsPerLine]uint32
	// Pinned frames are ineligible for eviction (outstanding MSHR).
	Pinned bool
	lru    uint64
}

// HasAny reports whether any word is in state s.
func (e *Entry) HasAny(s WordState) bool {
	for _, w := range e.State {
		if w == s {
			return true
		}
	}
	return false
}

// MaskOf returns the mask of words in state s.
func (e *Entry) MaskOf(s WordState) mem.WordMask {
	var m mem.WordMask
	for i, w := range e.State {
		if w == s {
			m |= mem.Bit(i)
		}
	}
	return m
}

// Reset clears the frame and retags it for line l.
func (e *Entry) Reset(l mem.Line) {
	e.Line = l
	e.Tag = true
	e.Pinned = false
	for i := range e.State {
		e.State[i] = Invalid
		e.Data[i] = 0
	}
}

// Cache is a set-associative sector cache.
type Cache struct {
	sets int
	ways int
	// frames[set*ways+way]
	frames []Entry
	// occ is a conservative occupancy bitmap: one bit per frame, set
	// whenever a frame pointer is handed out (Lookup/Peek/Victim) and
	// cleared only by Invalidate when it observes the frame untagged.
	// Every tagged frame has its bit set (frames are only tagged via
	// Reset on a just-handed-out pointer); a set bit over an untagged
	// frame is harmless. This lets Invalidate skip empty regions — on
	// the GPU protocol it runs once per global acquire, usually over a
	// mostly-empty cache.
	occ  []uint64
	tick uint64
}

// New returns a cache of the given total size and associativity with
// 64-byte lines. Size must yield a power-of-two set count.
func New(sizeBytes, ways int) *Cache {
	lines := sizeBytes / mem.LineBytes
	sets := lines / ways
	if sets == 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: %d sets (size %d, ways %d) is not a power of two", sets, sizeBytes, ways))
	}
	return &Cache{sets: sets, ways: ways, frames: make([]Entry, sets*ways), occ: make([]uint64, (sets*ways+63)/64)}
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) set(l mem.Line) (base int, set []Entry) {
	s := int(uint64(l) % uint64(c.sets))
	return s * c.ways, c.frames[s*c.ways : (s+1)*c.ways]
}

// mark records frame index idx in the occupancy bitmap.
func (c *Cache) mark(idx int) { c.occ[idx>>6] |= 1 << (idx & 63) }

// Lookup returns the frame holding l and bumps its recency, or nil.
func (c *Cache) Lookup(l mem.Line) *Entry {
	base, set := c.set(l)
	for i := range set {
		if set[i].Tag && set[i].Line == l {
			c.tick++
			set[i].lru = c.tick
			c.mark(base + i)
			return &set[i]
		}
	}
	return nil
}

// Peek returns the frame holding l without touching recency, or nil.
func (c *Cache) Peek(l mem.Line) *Entry {
	base, set := c.set(l)
	for i := range set {
		if set[i].Tag && set[i].Line == l {
			c.mark(base + i)
			return &set[i]
		}
	}
	return nil
}

// Victim returns the frame to use for line l: an existing frame for l,
// else an untagged frame, else the least recently used unpinned frame.
// It returns nil if every candidate is pinned (the caller must retry
// later). The returned frame is NOT reset; the caller must inspect its
// state (e.g. write back Registered words) before calling Reset.
func (c *Cache) Victim(l mem.Line) *Entry {
	base, set := c.set(l)
	var free, lru *Entry
	freeIdx, lruIdx := -1, -1
	for i := range set {
		e := &set[i]
		if e.Tag && e.Line == l {
			c.mark(base + i)
			return e
		}
		if e.Pinned {
			continue
		}
		if !e.Tag {
			if free == nil {
				free, freeIdx = e, base+i
			}
			continue
		}
		if lru == nil || e.lru < lru.lru {
			lru, lruIdx = e, base+i
		}
	}
	if free != nil {
		c.mark(freeIdx)
		return free
	}
	if lru != nil {
		c.mark(lruIdx)
	}
	return lru
}

// Touch bumps recency of a frame (used after fills).
func (c *Cache) Touch(e *Entry) {
	c.tick++
	e.lru = c.tick
}

// ForEach visits every tagged frame in deterministic (set, way) order.
func (c *Cache) ForEach(fn func(e *Entry)) {
	for i := range c.frames {
		if c.frames[i].Tag {
			fn(&c.frames[i])
		}
	}
}

// Invalidate applies a per-word invalidation filter to the whole cache:
// words for which keep returns false become Invalid; frames left with
// no Valid or Registered words are untagged (unless pinned). It returns
// the number of words invalidated. This implements both the GPU
// protocol's flash invalidation (keep nothing) and DeNovo's selective
// invalidation (keep Registered words, and optionally a read-only
// region).
func (c *Cache) Invalidate(keep func(e *Entry, word int) bool) int {
	n := 0
	for wi, occw := range c.occ {
		if occw == 0 {
			continue
		}
		rem := occw
		for rem != 0 {
			i := wi<<6 + bits.TrailingZeros64(rem)
			rem &= rem - 1
			e := &c.frames[i]
			if !e.Tag {
				c.occ[wi] &^= 1 << (i & 63)
				continue
			}
			live := false
			for w := 0; w < mem.WordsPerLine; w++ {
				if e.State[w] == Invalid {
					continue
				}
				if keep(e, w) {
					live = true
					continue
				}
				e.State[w] = Invalid
				n++
			}
			if !live && !e.Pinned {
				e.Tag = false
				c.occ[wi] &^= 1 << (i & 63)
			}
		}
	}
	return n
}

// Stats-ish helpers used by tests.

// CountWords returns the number of words currently in state s.
func (c *Cache) CountWords(s WordState) int {
	n := 0
	for i := range c.frames {
		if !c.frames[i].Tag {
			continue
		}
		for _, st := range c.frames[i].State {
			if st == s {
				n++
			}
		}
	}
	return n
}
