package cache

import (
	"math/rand"
	"reflect"
	"testing"

	"denovogpu/internal/mem"
)

// refStoreBuffer is an obviously-correct reference model of the store
// buffer's contract: live entries in insertion order, where a word's
// position is that of its most recent insertion (a coalescing write
// keeps the original position; a remove-then-reinsert moves the word to
// the tail). The pooled intrusive-list implementation must match it
// operation for operation.
type refStoreBuffer struct {
	cap     int
	entries []SBEntry
}

func (r *refStoreBuffer) find(w mem.Word) int {
	for i, e := range r.entries {
		if e.Word == w {
			return i
		}
	}
	return -1
}

func (r *refStoreBuffer) Lookup(w mem.Word) (uint32, bool) {
	if i := r.find(w); i >= 0 {
		return r.entries[i].Val, true
	}
	return 0, false
}

func (r *refStoreBuffer) Insert(w mem.Word, v uint32) (coalesced bool, evicted *LineGroup) {
	if i := r.find(w); i >= 0 {
		r.entries[i].Val = v
		return true, nil
	}
	if len(r.entries) >= r.cap {
		evicted = r.popOldestLine()
	}
	r.entries = append(r.entries, SBEntry{Word: w, Val: v})
	return false, evicted
}

func (r *refStoreBuffer) popOldestLine() *LineGroup {
	g := &LineGroup{Line: r.entries[0].Word.LineOf()}
	kept := r.entries[:0]
	for _, e := range r.entries {
		if e.Word.LineOf() == g.Line {
			g.Mask |= mem.Bit(e.Word.Index())
			g.Data[e.Word.Index()] = e.Val
			continue
		}
		kept = append(kept, e)
	}
	r.entries = kept
	return g
}

func (r *refStoreBuffer) Remove(w mem.Word) (uint32, bool) {
	i := r.find(w)
	if i < 0 {
		return 0, false
	}
	v := r.entries[i].Val
	r.entries = append(r.entries[:i], r.entries[i+1:]...)
	return v, true
}

func (r *refStoreBuffer) PeekOldest() (SBEntry, bool) {
	if len(r.entries) == 0 {
		return SBEntry{}, false
	}
	return r.entries[0], true
}

func (r *refStoreBuffer) Entries() []SBEntry {
	return append([]SBEntry(nil), r.entries...)
}

func (r *refStoreBuffer) DrainAll() []SBEntry {
	out := append([]SBEntry(nil), r.entries...)
	r.entries = r.entries[:0]
	return out
}

// TestStoreBufferMatchesReference drives the pooled implementation and
// the reference model through long random operation sequences and
// requires every observable output to agree. Small capacities and a
// narrow word range force constant coalescing, overflow eviction, and
// remove-then-reinsert traffic.
func TestStoreBufferMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	for trial := 0; trial < 50; trial++ {
		capacity := 1 + rng.Intn(24)
		b := NewStoreBuffer(capacity)
		ref := &refStoreBuffer{cap: capacity}
		words := 4 + rng.Intn(60) // word space; small => heavy coalescing
		for op := 0; op < 400; op++ {
			w := mem.Word(rng.Intn(words))
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4: // insert
				v := rng.Uint32()
				gc, ge := b.Insert(w, v)
				wc, we := ref.Insert(w, v)
				if gc != wc || !reflect.DeepEqual(ge, we) {
					t.Fatalf("trial %d op %d: Insert(%v)=(%v,%+v) want (%v,%+v)", trial, op, w, gc, ge, wc, we)
				}
			case 5, 6: // remove
				gv, gok := b.Remove(w)
				wv, wok := ref.Remove(w)
				if gv != wv || gok != wok {
					t.Fatalf("trial %d op %d: Remove(%v)=(%v,%v) want (%v,%v)", trial, op, w, gv, gok, wv, wok)
				}
			case 7: // lookup
				gv, gok := b.Lookup(w)
				wv, wok := ref.Lookup(w)
				if gv != wv || gok != wok {
					t.Fatalf("trial %d op %d: Lookup(%v)=(%v,%v) want (%v,%v)", trial, op, w, gv, gok, wv, wok)
				}
			case 8: // peek
				ge, gok := b.PeekOldest()
				we, wok := ref.PeekOldest()
				if ge != we || gok != wok {
					t.Fatalf("trial %d op %d: PeekOldest()=(%+v,%v) want (%+v,%v)", trial, op, ge, gok, we, wok)
				}
			case 9: // occasionally drain everything (a release)
				if rng.Intn(4) == 0 {
					got, want := b.DrainAll(), ref.DrainAll()
					if !sbEntriesEqual(got, want) {
						t.Fatalf("trial %d op %d: DrainAll()=%v want %v", trial, op, got, want)
					}
				}
			}
			if b.Len() != len(ref.entries) {
				t.Fatalf("trial %d op %d: Len()=%d want %d", trial, op, b.Len(), len(ref.entries))
			}
			if got, want := b.Entries(), ref.Entries(); !sbEntriesEqual(got, want) {
				t.Fatalf("trial %d op %d: Entries()=%v want %v", trial, op, got, want)
			}
		}
	}
}

func sbEntriesEqual(a, b []SBEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestStoreBufferRemoveReinsert pins the corrected remove-then-reinsert
// semantics. The original slice-backed FIFO never scrubbed a removed
// word's position marker, so reinserting the word made Entries and
// DrainAll emit it twice — once at the stale position, once at the tail
// — double-counting store-buffer drain energy and perturbing drain
// order. A reinserted word must appear exactly once, at the tail.
func TestStoreBufferRemoveReinsert(t *testing.T) {
	b := NewStoreBuffer(8)
	w0, w1 := mem.Word(0), mem.Word(100)
	b.Insert(w0, 1)
	b.Insert(w1, 2)
	if _, ok := b.Remove(w0); !ok {
		t.Fatal("Remove(w0) missed")
	}
	b.Insert(w0, 3)
	want := []SBEntry{{Word: w1, Val: 2}, {Word: w0, Val: 3}}
	if got := b.Entries(); !sbEntriesEqual(got, want) {
		t.Fatalf("Entries()=%v want %v (reinserted word once, at tail)", got, want)
	}
	if e, _ := b.PeekOldest(); e.Word != w1 {
		t.Fatalf("PeekOldest()=%v want %v", e.Word, w1)
	}
	if got := b.DrainAll(); !sbEntriesEqual(got, want) {
		t.Fatalf("DrainAll()=%v want %v", got, want)
	}
	if b.Len() != 0 {
		t.Fatalf("Len()=%d after drain", b.Len())
	}
}
