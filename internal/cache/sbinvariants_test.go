package cache

import (
	"math/rand"
	"strings"
	"testing"

	"denovogpu/internal/mem"
)

// TestStoreBufferCheckInvariantsProperty drives a small buffer through
// a random insert/coalesce/remove/overflow/drain workload, validating
// the structural invariants after every operation.
func TestStoreBufferCheckInvariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	b := NewStoreBuffer(6)
	words := make([]mem.Word, 24)
	for i := range words {
		words[i] = mem.Addr(i * 4).WordOf()
	}
	for step := 0; step < 2000; step++ {
		w := words[rng.Intn(len(words))]
		switch rng.Intn(10) {
		case 0:
			b.Remove(w)
		case 1:
			b.AppendDrain(nil)
		case 2:
			b.PeekOldest()
		default:
			b.Insert(w, uint32(step))
		}
		if err := b.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

// TestStoreBufferCheckInvariantsDetectsCorruption hand-breaks each
// structural invariant and checks the detector names it.
func TestStoreBufferCheckInvariantsDetectsCorruption(t *testing.T) {
	w0 := mem.Addr(0x00).WordOf()
	w1 := mem.Addr(0x40).WordOf()

	fresh := func() *StoreBuffer {
		b := NewStoreBuffer(4)
		b.Insert(w0, 1)
		b.Insert(w1, 2)
		return b
	}

	slot := func(b *StoreBuffer, w mem.Word) int32 {
		i, ok := b.index.Get(uint64(w))
		if !ok {
			t.Fatalf("word %v not indexed", w)
		}
		return i
	}

	b := fresh()
	b.index.Put(uint64(w0), slot(b, w1))
	if err := b.CheckInvariants(); err == nil || !strings.Contains(err.Error(), "index points to") {
		t.Fatalf("cross-linked index: got %v", err)
	}

	b = fresh()
	b.index.Delete(uint64(w1))
	if err := b.CheckInvariants(); err == nil || !strings.Contains(err.Error(), "does not know") {
		t.Fatalf("missing index entry: got %v", err)
	}

	b = fresh()
	b.pool[slot(b, w1)].prev = nilSlot
	if err := b.CheckInvariants(); err == nil || !strings.Contains(err.Error(), "has prev") {
		t.Fatalf("broken back-pointer: got %v", err)
	}

	b = fresh()
	b.tail = b.head
	if err := b.CheckInvariants(); err == nil || !strings.Contains(err.Error(), "tail") {
		t.Fatalf("stale tail: got %v", err)
	}

	b = fresh()
	b.free = append(b.free, slot(b, w0))
	if err := b.CheckInvariants(); err == nil || !strings.Contains(err.Error(), "pool leak") {
		t.Fatalf("slot both live and free: got %v", err)
	}
}
