// Dense-id table allocator: the struct-of-arrays backbone of the
// devirtualized hot path.
//
// The protocol controllers and the L2 banks used to key their per-line
// and per-word state by full 64-bit addresses in hash tables (or, worse,
// builtin maps). An IDTable instead assigns each distinct line a small
// dense id in first-touch order — deterministic, because the simulator
// is single-threaded per machine and event order is pinned — and the
// state that used to live behind a hash probe becomes a flat slice
// indexed by id (one value per line: Dense) or by id*width+word (one
// value per word: WordTable). Lookups on the access path collapse to
// one hash probe to translate the address, then plain array arithmetic;
// tables sharing one IDTable (an L2 bank's data, owner and touched
// arrays; a controller's mask and value arrays) stay index-compatible
// for free.
//
// Ids are never recycled: lines that go cold keep their slot. The
// simulator touches a bounded working set per run (the workloads' data
// footprints), so the tables stay small, and stable ids are what makes
// the first-touch order — and therefore every downstream iteration that
// sorts by address anyway — reproducible run to run.
package wordmap

// NoID is returned by Lookup for keys that have not been assigned.
const NoID int32 = -1

// IDTable assigns dense int32 ids to uint64 keys in first-touch order.
// The zero value is ready for use.
type IDTable struct {
	// ids stores id+1 so the map's zero value means "absent" and id 0
	// needs no sentinel.
	ids  Map[int32]
	keys []uint64 // id → key, for reverse lookups and iteration
}

// Len returns the number of assigned ids.
func (t *IDTable) Len() int { return len(t.keys) }

// ID returns the id for k, assigning the next dense id if k is new.
func (t *IDTable) ID(k uint64) int32 {
	p := t.ids.Upsert(k)
	if *p == 0 {
		t.keys = append(t.keys, k)
		*p = int32(len(t.keys))
	}
	return *p - 1
}

// Lookup returns the id for k, or NoID if k has never been assigned.
func (t *IDTable) Lookup(k uint64) (int32, bool) {
	biased, ok := t.ids.Get(k)
	if !ok {
		return NoID, false
	}
	return biased - 1, true
}

// Key returns the key assigned id (the inverse of ID).
func (t *IDTable) Key(id int32) uint64 { return t.keys[id] }

// Dense is a flat per-id table: one V per id of the owning IDTable.
// Rows materialize on first access; ids beyond the high-water mark read
// as the zero value. The zero value of Dense is ready for use.
type Dense[V any] struct {
	vals []V
}

// Ptr returns a pointer to the value for id, growing the table as
// needed. The pointer is valid until the next Ptr call with a larger id.
func (d *Dense[V]) Ptr(id int32) *V {
	for int(id) >= len(d.vals) {
		d.vals = append(d.vals, *new(V))
	}
	return &d.vals[id]
}

// Get returns the value for id, or the zero value if the row has never
// been touched.
func (d *Dense[V]) Get(id int32) V {
	if int(id) >= len(d.vals) {
		return *new(V)
	}
	return d.vals[id]
}

// WordTable is a flat per-word table: width consecutive V values per id
// (one row per line, one slot per word). The zero value is unusable;
// create with NewWordTable.
type WordTable[V any] struct {
	width int
	vals  []V
}

// NewWordTable returns a table with the given row width (the machine's
// words-per-line).
func NewWordTable[V any](width int) *WordTable[V] {
	return &WordTable[V]{width: width}
}

// Row returns the width-element row for id, growing the table as
// needed. The slice aliases the backing array and is valid until the
// next Row call with a larger id.
func (t *WordTable[V]) Row(id int32) []V {
	need := (int(id) + 1) * t.width
	for len(t.vals) < need {
		t.vals = append(t.vals, *new(V))
	}
	off := int(id) * t.width
	return t.vals[off : off+t.width : off+t.width]
}

// Peek returns the row for id without growing, or nil if the row has
// never been materialized.
func (t *WordTable[V]) Peek(id int32) []V {
	off := int(id) * t.width
	if off+t.width > len(t.vals) {
		return nil
	}
	return t.vals[off : off+t.width : off+t.width]
}
