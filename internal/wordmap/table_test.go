package wordmap

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestUpsertExistingKeyDoesNotGrow pins the fix for an Upsert defect:
// the load-factor check used to run before the existence probe, so
// upserting a key that was ALREADY PRESENT in a table sitting exactly
// at the load threshold grew (rehashed) the table anyway. Growth
// invalidates every value pointer previously handed out by Upsert/Ptr,
// so the protocol controllers — which hold such pointers across
// "update this word's state" sequences — would have read freed rows.
// The contract (documented on Upsert) is: updating an existing key
// never grows the table.
func TestUpsertExistingKeyDoesNotGrow(t *testing.T) {
	var m Map[int]
	// Fill to the exact load threshold: the NEXT true insertion must
	// grow, but an update of an existing key must not.
	m.Put(0, 0)
	for (m.n+1)*maxLoadDen <= len(m.keys)*maxLoadNum {
		m.Put(uint64(m.n), m.n)
	}
	capBefore := len(m.keys)
	ptrBefore, ok := m.Ptr(0)
	if !ok {
		t.Fatal("key 0 missing")
	}
	for i := 0; i < 4; i++ {
		p := m.Upsert(0)
		if p != ptrBefore {
			t.Fatalf("Upsert(existing) moved the value: got %p want %p (table grew from %d to %d buckets)",
				p, ptrBefore, capBefore, len(m.keys))
		}
	}
	if len(m.keys) != capBefore {
		t.Fatalf("Upsert(existing) grew the table: %d -> %d buckets", capBefore, len(m.keys))
	}
	// Sanity: a genuinely new key at the threshold does grow.
	m.Upsert(1 << 40)
	if len(m.keys) == capBefore {
		t.Fatalf("insertion at load threshold did not grow the table")
	}
}

// ---------------------------------------------------------------------
// Property test: the SoA word-state tables (IDTable + WordTable + Dense)
// against a plain-map reference model.
//
// The model mirrors how the protocol controllers use the tables: lines
// are keyed by a 64-bit address, each line has a row of per-word states
// and data, plus a per-line owner. Four operations drive both
// representations through the state-machine shapes the protocols
// produce:
//
//	set        — write one word's state+data (the fill/write path)
//	lookup     — read back a word, a whole row, and the owner
//	steal      — registration transfer: the line's owner changes and
//	             its Registered words demote to Valid (DeNovo's
//	             write-registration steal)
//	drop-clean — global selective invalidation: every Valid word on
//	             every line becomes Invalid, Registered words survive
//	             (DeNovo's acquire-time self-invalidation)
//
// After every op the full observable state is compared. On divergence
// the failing op sequence is shrunk to a (locally) minimal reproducer
// before reporting, so the failure output is actionable.

const tblWords = 8

const (
	wsInvalid uint8 = iota
	wsValid
	wsRegistered
)

type tblOp struct {
	kind byte // 's'et, 'l'ookup, 't'steal, 'd'rop-clean
	line uint64
	word int
	st   uint8
	val  uint32
}

func (o tblOp) String() string {
	return fmt.Sprintf("{%c line=%#x word=%d st=%d val=%d}", o.kind, o.line, o.word, o.st, o.val)
}

type refLineState struct {
	st    [tblWords]uint8
	data  [tblWords]uint32
	owner int32
}

type soaLines struct {
	ids   IDTable
	st    *WordTable[uint8]
	data  *WordTable[uint32]
	owner Dense[int32]
}

func newSoaLines() *soaLines {
	return &soaLines{st: NewWordTable[uint8](tblWords), data: NewWordTable[uint32](tblWords)}
}

// applyTblOps drives both models through ops and returns an error
// describing the first divergence, or nil if they stay equivalent.
func applyTblOps(ops []tblOp) error {
	s := newSoaLines()
	ref := map[uint64]*refLineState{}

	check := func(step int) error {
		if s.ids.Len() != len(ref) {
			return fmt.Errorf("op %d: %d ids assigned, reference has %d lines", step, s.ids.Len(), len(ref))
		}
		for k, r := range ref {
			id, ok := s.ids.Lookup(k)
			if !ok {
				return fmt.Errorf("op %d: line %#x missing from IDTable", step, k)
			}
			if got := s.ids.Key(id); got != k {
				return fmt.Errorf("op %d: Key(ID(%#x)) = %#x", step, k, got)
			}
			row := s.st.Peek(id)
			drow := s.data.Peek(id)
			for w := 0; w < tblWords; w++ {
				gotSt, gotData := wsInvalid, uint32(0)
				if row != nil {
					gotSt, gotData = row[w], drow[w]
				}
				if gotSt != r.st[w] || gotData != r.data[w] {
					return fmt.Errorf("op %d: line %#x word %d: got st=%d data=%d, want st=%d data=%d",
						step, k, w, gotSt, gotData, r.st[w], r.data[w])
				}
			}
			if got := s.owner.Get(id); got != r.owner {
				return fmt.Errorf("op %d: line %#x owner: got %d want %d", step, k, got, r.owner)
			}
		}
		return nil
	}

	for i, op := range ops {
		switch op.kind {
		case 's':
			id := s.ids.ID(op.line)
			row := s.st.Row(id)
			row[op.word] = op.st
			s.data.Row(id)[op.word] = op.val
			r := ref[op.line]
			if r == nil {
				r = &refLineState{}
				ref[op.line] = r
			}
			r.st[op.word] = op.st
			r.data[op.word] = op.val
		case 'l':
			id, ok := s.ids.Lookup(op.line)
			r, refOk := ref[op.line]
			if ok != refOk {
				return fmt.Errorf("op %d: Lookup(%#x) present=%v, reference %v", i, op.line, ok, refOk)
			}
			if ok {
				row := s.st.Peek(id)
				gotSt := wsInvalid
				if row != nil {
					gotSt = row[op.word]
				}
				if gotSt != r.st[op.word] {
					return fmt.Errorf("op %d: lookup line %#x word %d: got st=%d want %d", i, op.line, op.word, gotSt, r.st[op.word])
				}
			}
		case 't':
			// Steal only affects lines that exist.
			id, ok := s.ids.Lookup(op.line)
			if ok {
				*s.owner.Ptr(id) = int32(op.val % 16)
				row := s.st.Row(id)
				for w := range row {
					if row[w] == wsRegistered {
						row[w] = wsValid
					}
				}
				r := ref[op.line]
				r.owner = int32(op.val % 16)
				for w := range r.st {
					if r.st[w] == wsRegistered {
						r.st[w] = wsValid
					}
				}
			}
		case 'd':
			for id := int32(0); id < int32(s.ids.Len()); id++ {
				row := s.st.Peek(id)
				if row == nil {
					continue
				}
				for w := range row {
					if row[w] == wsValid {
						row[w] = wsInvalid
					}
				}
			}
			for _, r := range ref {
				for w := range r.st {
					if r.st[w] == wsValid {
						r.st[w] = wsInvalid
					}
				}
			}
		}
		if err := check(i); err != nil {
			return err
		}
	}
	return nil
}

// shrinkTblOps greedily removes ops while the sequence still fails,
// yielding a locally minimal reproducer.
func shrinkTblOps(ops []tblOp) []tblOp {
	for removed := true; removed; {
		removed = false
		for i := 0; i < len(ops); i++ {
			trial := make([]tblOp, 0, len(ops)-1)
			trial = append(trial, ops[:i]...)
			trial = append(trial, ops[i+1:]...)
			if applyTblOps(trial) != nil {
				ops = trial
				removed = true
				i--
			}
		}
	}
	return ops
}

func TestWordTablePropertyVsMapReference(t *testing.T) {
	lines := []uint64{0, 0x40, 0x80, 1 << 20, 1<<20 + 0x40, 1 << 44, 0xdeadbeefc0} // includes line 0
	for _, seed := range []int64{1, 7, 42, 1234} {
		rng := rand.New(rand.NewSource(seed))
		n := 5000
		if testing.Short() {
			n = 800
		}
		ops := make([]tblOp, 0, n)
		for i := 0; i < n; i++ {
			op := tblOp{line: lines[rng.Intn(len(lines))], word: rng.Intn(tblWords)}
			switch rng.Intn(10) {
			case 0, 1, 2, 3:
				op.kind, op.st, op.val = 's', uint8(rng.Intn(3)), rng.Uint32()
			case 4, 5, 6:
				op.kind = 'l'
			case 7, 8:
				op.kind, op.val = 't', rng.Uint32()
			default:
				op.kind = 'd'
			}
			ops = append(ops, op)
			if err := applyTblOps(ops); err != nil {
				min := shrinkTblOps(ops)
				t.Fatalf("seed %d diverged: %v\nminimal reproducer (%d ops): %v", seed, err, len(min), min)
			}
			// Re-running the whole prefix each op is quadratic; cap the
			// incremental phase and then run the remainder in one shot.
			if i > 400 {
				rest := n - i - 1
				for j := 0; j < rest; j++ {
					op := tblOp{line: lines[rng.Intn(len(lines))], word: rng.Intn(tblWords)}
					switch rng.Intn(10) {
					case 0, 1, 2, 3:
						op.kind, op.st, op.val = 's', uint8(rng.Intn(3)), rng.Uint32()
					case 4, 5, 6:
						op.kind = 'l'
					case 7, 8:
						op.kind, op.val = 't', rng.Uint32()
					default:
						op.kind = 'd'
					}
					ops = append(ops, op)
				}
				if err := applyTblOps(ops); err != nil {
					min := shrinkTblOps(ops)
					t.Fatalf("seed %d diverged: %v\nminimal reproducer (%d ops): %v", seed, err, len(min), min)
				}
				break
			}
		}
	}
}

// FuzzMapVsBuiltin drives Map[uint32] and a builtin map with an op
// stream decoded from fuzz input. `go test` runs the seed corpus; `go
// test -fuzz=FuzzMapVsBuiltin` explores further.
func FuzzMapVsBuiltin(f *testing.F) {
	f.Add([]byte{0x00, 0x11, 0x42, 0x01, 0x11, 0x02, 0x11})
	f.Add([]byte{0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x01, 0x00})
	f.Add([]byte{0x03, 0x07, 0x03, 0x07, 0x02, 0x07, 0x03, 0x07})
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Map[uint32]
		ref := map[uint64]uint32{}
		for i := 0; i+1 < len(data); i += 2 {
			op, kb := data[i]&3, data[i+1]
			// Two key shapes: small dense and line-aligned sparse.
			k := uint64(kb)
			if kb&1 == 1 {
				k = uint64(kb) << 6
			}
			switch op {
			case 0: // put
				m.Put(k, uint32(kb)+1)
				ref[k] = uint32(kb) + 1
			case 1: // delete
				got := m.Delete(k)
				_, want := ref[k]
				if got != want {
					t.Fatalf("Delete(%#x) = %v, want %v", k, got, want)
				}
				delete(ref, k)
			case 2: // upsert increment
				*m.Upsert(k)++
				ref[k]++
			case 3: // get
				got, ok := m.Get(k)
				want, wantOk := ref[k]
				if ok != wantOk || got != want {
					t.Fatalf("Get(%#x) = %d,%v want %d,%v", k, got, ok, want, wantOk)
				}
			}
		}
		if m.Len() != len(ref) {
			t.Fatalf("Len = %d, want %d", m.Len(), len(ref))
		}
		for k, v := range ref {
			if got, ok := m.Get(k); !ok || got != v {
				t.Fatalf("final Get(%#x) = %d,%v want %d,true", k, got, ok, v)
			}
		}
	})
}
