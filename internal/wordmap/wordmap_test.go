package wordmap

import (
	"math/rand"
	"testing"
)

// TestDifferential drives a Map[int] and a builtin map[uint64]int with
// the same randomized op stream and requires identical observable
// state after every op. Keys are drawn from a small range so that
// insert/overwrite/delete collisions are frequent, and include 0
// (a valid word address).
func TestDifferential(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 99} {
		rng := rand.New(rand.NewSource(seed))
		var m Map[int]
		ref := map[uint64]int{}
		keyOf := func() uint64 {
			// Mix tiny keys, line-aligned keys, and huge keys.
			switch rng.Intn(3) {
			case 0:
				return uint64(rng.Intn(64))
			case 1:
				return uint64(rng.Intn(64)) << 4
			default:
				return rng.Uint64()>>1 | 1<<62
			}
		}
		keys := make([]uint64, 0, 256)
		for i := 0; i < 20000; i++ {
			k := keyOf()
			if len(keys) > 0 && rng.Intn(2) == 0 {
				k = keys[rng.Intn(len(keys))]
			}
			switch rng.Intn(4) {
			case 0, 1: // put
				v := rng.Int()
				m.Put(k, v)
				ref[k] = v
				keys = append(keys, k)
			case 2: // delete
				got := m.Delete(k)
				_, want := ref[k]
				if got != want {
					t.Fatalf("seed %d op %d: Delete(%#x) = %v, want %v", seed, i, k, got, want)
				}
				delete(ref, k)
			case 3: // upsert +1
				*m.Upsert(k)++
				ref[k]++
				keys = append(keys, k)
			}
			if m.Len() != len(ref) {
				t.Fatalf("seed %d op %d: Len = %d, want %d", seed, i, m.Len(), len(ref))
			}
			// Spot-check a few keys every op, all keys occasionally.
			if i%512 == 0 {
				for rk, rv := range ref {
					if got, ok := m.Get(rk); !ok || got != rv {
						t.Fatalf("seed %d op %d: Get(%#x) = %d,%v want %d,true", seed, i, rk, got, ok, rv)
					}
				}
				seen := map[uint64]int{}
				m.ForEach(func(k uint64, v int) { seen[k] = v })
				if len(seen) != len(ref) {
					t.Fatalf("seed %d op %d: ForEach visited %d entries, want %d", seed, i, len(seen), len(ref))
				}
			} else {
				if got, ok := m.Get(k); ok != func() bool { _, o := ref[k]; return o }() || (ok && got != ref[k]) {
					t.Fatalf("seed %d op %d: Get(%#x) mismatch", seed, i, k)
				}
			}
		}
	}
}

func TestZeroKeyAndZeroValue(t *testing.T) {
	var m Map[int]
	if _, ok := m.Get(0); ok {
		t.Fatal("empty map reported key 0 present")
	}
	m.Put(0, 0)
	if v, ok := m.Get(0); !ok || v != 0 {
		t.Fatalf("Get(0) = %d,%v want 0,true", v, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
	if !m.Delete(0) {
		t.Fatal("Delete(0) = false, want true")
	}
	if m.Len() != 0 || m.Has(0) {
		t.Fatal("key 0 still present after delete")
	}
}

// TestChurn exercises backward-shift deletion under a fill/drain cycle
// that forces long probe chains (sequential line numbers collide after
// masking).
func TestChurn(t *testing.T) {
	var m Map[uint64]
	for round := 0; round < 50; round++ {
		base := uint64(round * 1000)
		for k := base; k < base+300; k++ {
			m.Put(k, k*2)
		}
		for k := base; k < base+300; k += 2 {
			if !m.Delete(k) {
				t.Fatalf("round %d: Delete(%d) missing", round, k)
			}
		}
		for k := base + 1; k < base+300; k += 2 {
			if v, ok := m.Get(k); !ok || v != k*2 {
				t.Fatalf("round %d: Get(%d) = %d,%v", round, k, v, ok)
			}
		}
		for k := base + 1; k < base+300; k += 2 {
			m.Delete(k)
		}
		if m.Len() != 0 {
			t.Fatalf("round %d: Len = %d after drain", round, m.Len())
		}
	}
}

func BenchmarkPutGetDelete(b *testing.B) {
	var m Map[uint64]
	for i := 0; i < b.N; i++ {
		k := uint64(i) & 1023
		m.Put(k, uint64(i))
		m.Get(k ^ 511)
		if i&7 == 7 {
			m.Delete(k)
		}
	}
}

func BenchmarkBuiltinPutGetDelete(b *testing.B) {
	m := map[uint64]uint64{}
	for i := 0; i < b.N; i++ {
		k := uint64(i) & 1023
		m[k] = uint64(i)
		_ = m[k^511]
		if i&7 == 7 {
			delete(m, k)
		}
	}
}
