// Package wordmap provides a compact open-addressed hash table keyed
// by uint64 — mem.Word, mem.Line, or transaction ids. It exists for
// the protocol hot paths (denovo, gpucoh), where the Go builtin
// map[mem.Word]T showed up as the dominant lookup and allocation cost:
// an open-addressed table with linear probing keeps the key/value
// arrays dense, reuses its backing storage across insert/delete
// churn, and never allocates per entry.
//
// The table is NOT safe for concurrent use, exactly like the builtin
// map. Iteration order (ForEach) is the probe order of the backing
// array — deterministic for a fixed insertion history but otherwise
// unspecified, so behavioral code must not depend on it (the same
// contract the simulator already imposed on builtin-map iteration).
package wordmap

// minCap is the initial bucket count of a table that has seen at
// least one insert. Must be a power of two.
const minCap = 16

// maxLoadNum/maxLoadDen: grow when n exceeds 3/4 of capacity.
const (
	maxLoadNum = 3
	maxLoadDen = 4
)

// Map is an open-addressed hash table from uint64 to V with linear
// probing and backward-shift deletion. The zero value is an empty map
// ready for use.
type Map[V any] struct {
	keys []uint64
	vals []V
	live []bool
	n    int
}

// mix is the splitmix64 finalizer: a full-avalanche bijection so that
// low-entropy keys (word addresses share low bits; line numbers are
// sequential) spread over the table.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Len returns the number of entries.
func (m *Map[V]) Len() int { return m.n }

// Get returns the value stored for k.
func (m *Map[V]) Get(k uint64) (V, bool) {
	if m.n != 0 {
		mask := uint64(len(m.keys) - 1)
		for i := mix(k) & mask; m.live[i]; i = (i + 1) & mask {
			if m.keys[i] == k {
				return m.vals[i], true
			}
		}
	}
	var zero V
	return zero, false
}

// Has reports whether k is present.
func (m *Map[V]) Has(k uint64) bool {
	_, ok := m.Get(k)
	return ok
}

// Ptr returns a pointer to the value stored for k, or false if k is
// absent. The pointer is valid only until the next Put/Upsert/Delete.
func (m *Map[V]) Ptr(k uint64) (*V, bool) {
	if m.n != 0 {
		mask := uint64(len(m.keys) - 1)
		for i := mix(k) & mask; m.live[i]; i = (i + 1) & mask {
			if m.keys[i] == k {
				return &m.vals[i], true
			}
		}
	}
	return nil, false
}

// Put stores v under k, replacing any previous value.
func (m *Map[V]) Put(k uint64, v V) { *m.Upsert(k) = v }

// Upsert returns a pointer to the value stored for k, inserting the
// zero value first if k is absent. The pointer is valid only until
// the next Put/Upsert/Delete on the map.
//
// The existence probe runs before the load check: updating a key that
// is already present never grows the table, so value pointers handed
// out by earlier Upserts of other keys are only invalidated by true
// insertions.
func (m *Map[V]) Upsert(k uint64) *V {
	if len(m.keys) != 0 {
		mask := uint64(len(m.keys) - 1)
		i := mix(k) & mask
		for m.live[i] {
			if m.keys[i] == k {
				return &m.vals[i]
			}
			i = (i + 1) & mask
		}
		if (m.n+1)*maxLoadDen <= len(m.keys)*maxLoadNum {
			m.live[i] = true
			m.keys[i] = k
			var zero V
			m.vals[i] = zero
			m.n++
			return &m.vals[i]
		}
	}
	m.grow()
	mask := uint64(len(m.keys) - 1)
	i := mix(k) & mask
	for m.live[i] {
		i = (i + 1) & mask
	}
	m.live[i] = true
	m.keys[i] = k
	m.n++
	return &m.vals[i]
}

// Reset empties the map while keeping its backing storage, so a table
// reused across rounds (the coalescer's per-instruction index) reaches
// steady state with zero allocations.
func (m *Map[V]) Reset() {
	if m.n == 0 {
		return
	}
	var zero V
	for i := range m.live {
		m.live[i] = false
		m.vals[i] = zero
	}
	m.n = 0
}

// Delete removes k, reporting whether it was present. Deletion uses
// backward shift, so the table never accumulates tombstones and probe
// chains stay short under churn.
func (m *Map[V]) Delete(k uint64) bool {
	if m.n == 0 {
		return false
	}
	mask := uint64(len(m.keys) - 1)
	for i := mix(k) & mask; m.live[i]; i = (i + 1) & mask {
		if m.keys[i] == k {
			m.removeAt(i, mask)
			return true
		}
	}
	return false
}

// removeAt vacates slot i, then shifts any displaced successors back
// so every remaining entry stays reachable from its home slot.
func (m *Map[V]) removeAt(i, mask uint64) {
	m.n--
	var zero V
	for {
		m.live[i] = false
		m.vals[i] = zero
		j := i
		for {
			j = (j + 1) & mask
			if !m.live[j] {
				return
			}
			h := mix(m.keys[j]) & mask
			// The entry at j may fill slot i iff i lies on j's probe
			// path, i.e. dist(h→j) >= dist(i→j) cyclically.
			if (j-h)&mask >= (j-i)&mask {
				m.keys[i] = m.keys[j]
				m.vals[i] = m.vals[j]
				m.live[i] = true
				i = j
				break
			}
		}
	}
}

// ForEach calls fn for every entry, in backing-array order. The map
// must not be mutated during iteration.
func (m *Map[V]) ForEach(fn func(k uint64, v V)) {
	for i, ok := range m.live {
		if ok {
			fn(m.keys[i], m.vals[i])
		}
	}
}

// Keys appends every key to dst and returns it (unsorted).
func (m *Map[V]) Keys(dst []uint64) []uint64 {
	for i, ok := range m.live {
		if ok {
			dst = append(dst, m.keys[i])
		}
	}
	return dst
}

func (m *Map[V]) grow() {
	newCap := minCap
	if len(m.keys) > 0 {
		newCap = len(m.keys) * 2
	}
	oldKeys, oldVals, oldLive := m.keys, m.vals, m.live
	m.keys = make([]uint64, newCap)
	m.vals = make([]V, newCap)
	m.live = make([]bool, newCap)
	mask := uint64(newCap - 1)
	for i, ok := range oldLive {
		if !ok {
			continue
		}
		j := mix(oldKeys[i]) & mask
		for m.live[j] {
			j = (j + 1) & mask
		}
		m.live[j] = true
		m.keys[j] = oldKeys[i]
		m.vals[j] = oldVals[i]
	}
}
