package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine(0)
	var got []Time
	for _, d := range []Time{5, 3, 9, 3, 1, 0, 7} {
		d := d
		e.Schedule(d, func() { got = append(got, e.Now()) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events fired out of order: %v", got)
	}
	if len(got) != 7 {
		t.Fatalf("fired %d events, want 7", len(got))
	}
}

func TestEngineSameCycleFIFO(t *testing.T) {
	e := NewEngine(0)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(4, func() { order = append(order, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events reordered: %v", order)
		}
	}
}

func TestEngineZeroDelayRunsAfterCurrentEvent(t *testing.T) {
	e := NewEngine(0)
	var order []string
	e.Schedule(1, func() {
		order = append(order, "outer")
		e.Schedule(0, func() { order = append(order, "inner") })
	})
	e.Schedule(1, func() { order = append(order, "sibling") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"outer", "sibling", "inner"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("got order %v, want %v", order, want)
		}
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine(0)
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineHalt(t *testing.T) {
	e := NewEngine(0)
	n := 0
	e.Schedule(1, func() { n++; e.Halt() })
	e.Schedule(2, func() { n++ })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("halt did not stop the loop: %d events fired", n)
	}
	if !e.Pending() {
		t.Fatal("halted engine should keep later events queued")
	}
}

func TestEngineHorizonDetectsRunaway(t *testing.T) {
	e := NewEngine(100)
	var tick func()
	tick = func() { e.Schedule(10, tick) }
	e.Schedule(0, tick)
	if err := e.Run(); err == nil {
		t.Fatal("expected horizon error for unbounded self-rescheduling")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(0)
	var fired []Time
	for _, d := range []Time{2, 4, 6, 8} {
		e.Schedule(d, func() { fired = append(fired, e.Now()) })
	}
	e.RunUntil(5)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(5) fired %d events, want 2", len(fired))
	}
	if e.Now() != 5 {
		t.Fatalf("RunUntil should advance clock to 5, got %d", e.Now())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 4 {
		t.Fatalf("total %d events, want 4", len(fired))
	}
}

// Property: for any batch of random delays, events fire in nondecreasing
// time order and every event fires exactly once.
func TestEngineOrderProperty(t *testing.T) {
	f := func(delays []uint16, seed int64) bool {
		if len(delays) > 512 {
			delays = delays[:512]
		}
		e := NewEngine(0)
		rng := rand.New(rand.NewSource(seed))
		fired := 0
		last := Time(0)
		ok := true
		var schedule func(depth int, d Time)
		schedule = func(depth int, d Time) {
			e.Schedule(d, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
				fired++
				// Occasionally schedule a follow-up to exercise
				// scheduling from inside events.
				if depth < 2 && rng.Intn(4) == 0 {
					schedule(depth+1, Time(rng.Intn(50)))
					fired-- // will be counted when it fires
					fired++ // net: count scheduled follow-ups separately below
				}
			})
		}
		want := len(delays)
		for _, d := range delays {
			schedule(0, Time(d))
		}
		if err := e.Run(); err != nil {
			return false
		}
		return ok && fired >= want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: two runs with identical schedules execute identical event
// sequences (determinism).
func TestEngineDeterminismProperty(t *testing.T) {
	run := func(delays []uint16) []Time {
		e := NewEngine(0)
		var times []Time
		for _, d := range delays {
			e.Schedule(Time(d), func() { times = append(times, e.Now()) })
		}
		e.Run()
		return times
	}
	f := func(delays []uint16) bool {
		a, b := run(delays), run(delays)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine(0)
		for j := 0; j < 1000; j++ {
			e.Schedule(Time(j%97), func() {})
		}
		e.Run()
	}
}
