package sim

import "testing"

// TestAdvanceHook checks the hook fires once per clock movement with the
// cycle being left, after all of that cycle's events have run, and that
// installing it perturbs neither the event schedule nor the final state.
func TestAdvanceHook(t *testing.T) {
	e := NewEngine(0)
	var fired []Time
	var leftAt []Time
	e.SetAdvanceHook(func(leaving Time) { leftAt = append(leftAt, leaving) })
	e.At(0, func() { fired = append(fired, e.Now()) })
	e.At(0, func() { fired = append(fired, e.Now()) })
	e.At(5, func() { fired = append(fired, e.Now()) })
	e.At(5, func() {
		fired = append(fired, e.Now())
		e.Schedule(7, func() { fired = append(fired, e.Now()) })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	wantFired := []Time{0, 0, 5, 5, 12}
	if len(fired) != len(wantFired) {
		t.Fatalf("fired %v, want %v", fired, wantFired)
	}
	for i := range wantFired {
		if fired[i] != wantFired[i] {
			t.Fatalf("fired %v, want %v", fired, wantFired)
		}
	}
	// The clock moved 0→5 and 5→12: one callback each, with the cycle
	// being left (by then fully executed).
	wantLeft := []Time{0, 5}
	if len(leftAt) != len(wantLeft) {
		t.Fatalf("hook saw %v, want %v", leftAt, wantLeft)
	}
	for i := range wantLeft {
		if leftAt[i] != wantLeft[i] {
			t.Fatalf("hook saw %v, want %v", leftAt, wantLeft)
		}
	}
	if e.Fired() != 5 || e.Now() != 12 {
		t.Fatalf("fired=%d now=%d, want 5/12", e.Fired(), e.Now())
	}
}

// TestAdvanceHookRunUntil checks the idle-advance path in RunUntil also
// reports the departure from the last event cycle.
func TestAdvanceHookRunUntil(t *testing.T) {
	e := NewEngine(0)
	var leftAt []Time
	e.SetAdvanceHook(func(leaving Time) { leftAt = append(leftAt, leaving) })
	e.At(3, func() {})
	e.RunUntil(10)
	wantLeft := []Time{0, 3}
	if len(leftAt) != len(wantLeft) || leftAt[0] != wantLeft[0] || leftAt[1] != wantLeft[1] {
		t.Fatalf("hook saw %v, want %v", leftAt, wantLeft)
	}
	if e.Now() != 10 {
		t.Fatalf("now = %d, want 10", e.Now())
	}
}
