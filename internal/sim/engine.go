// Package sim provides a deterministic discrete-event simulation engine.
//
// Every timed component in the simulator (caches, network links, compute
// units, DRAM) advances by scheduling events on a single Engine. Events
// fire in (time, insertion-sequence) order, so two events scheduled for
// the same cycle fire in the order they were scheduled. This total order,
// combined with the single-threaded event loop, makes every simulation
// bit-for-bit reproducible.
//
// The queue is a calendar/heap hybrid tuned for the simulator's traffic:
// almost every event is scheduled a few to a few hundred cycles out
// (pipeline latencies, NoC hops, DRAM), so events inside a ring of
// per-cycle buckets covering the next ringSize cycles are stored by
// value in recycled slices — no allocation on the steady-state path and
// O(1) insert/remove. The rare far-future event goes to a small binary
// heap and migrates into the ring when the time window slides. See
// DESIGN.md "Simulation model notes" for why this preserves the exact
// (time, sequence) firing order of the original single-heap design.
package sim

import (
	"fmt"
	"math"
)

// Time is simulation time in cycles. The whole machine runs on the GPU
// clock domain (700 MHz in the paper's Table 3); the CPU core only
// launches kernels, so a single domain is sufficient.
type Time uint64

// Forever is a time later than any reachable simulation time.
const Forever Time = math.MaxUint64

// The bucket ring covers cycles [now, now+ringSize). 1024 cycles spans
// every fixed latency in the model (the largest, DRAM, is ~200), so in
// practice the far heap only sees deliberately distant events such as
// test timeouts.
const (
	ringSize = 1024
	ringMask = ringSize - 1
)

// Task is a pooled event payload: Run is invoked when the event fires.
// Components on the steady-state path keep free lists of their payload
// structs and schedule them with ScheduleTask/AtTask — storing a
// pointer in the Task interface allocates nothing, unlike a closure,
// which heap-allocates its captured variables on every Schedule. A
// task returns itself to its free list from inside Run once it has
// extracted what it needs.
type Task interface{ Run() }

// event is a scheduled callback, stored by value. Exactly one of fn
// and task is set.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	task Task
}

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// bucket holds the events of one cycle in insertion order. head indexes
// the next event to fire; once drained the slice resets to length zero,
// keeping its capacity as a free list for later cycles that map to the
// same slot.
type bucket struct {
	ev   []event
	head int
}

// Engine is the discrete-event simulation kernel.
//
// The zero value is not usable; create engines with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	fired  uint64
	limit  Time // horizon: exceeding it means a hang; Run returns an error
	halted bool

	// ring[t&ringMask] holds the events for cycle t, for t in
	// [now, now+ringSize) only — one cycle per slot, never mixed.
	ring      []bucket
	ringCount int
	// cursor is the first cycle that may hold ring events; cycles in
	// [now, cursor) are known empty, so the bucket scan never revisits
	// them.
	cursor Time
	// far is a binary min-heap on (at, seq) of events at or beyond
	// now+ringSize. advanceTo drains it into the ring as now moves.
	far []event

	// hook, when set, observes every clock advance (see SetAdvanceHook).
	hook func(leaving Time)
}

// NewEngine returns an engine at time 0 with the given horizon. A zero
// horizon means no limit.
func NewEngine(horizon Time) *Engine {
	if horizon == 0 {
		horizon = Forever
	}
	return &Engine{limit: horizon, ring: make([]bucket, ringSize)}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far (a useful progress
// and determinism diagnostic).
func (e *Engine) Fired() uint64 { return e.fired }

// Schedule runs fn at the given delay from now. A zero delay fires later
// in the current cycle, after all previously scheduled events for this
// cycle.
func (e *Engine) Schedule(delay Time, fn func()) {
	e.At(e.now+delay, fn)
}

// At runs fn at absolute time t. Scheduling in the past panics: it is
// always a model bug.
func (e *Engine) At(t Time, fn func()) {
	e.insert(event{at: t, fn: fn})
}

// ScheduleTask runs task at the given delay from now, sharing the
// (time, seq) order with Schedule/At exactly — tasks and closures
// scheduled for the same cycle interleave in scheduling order.
func (e *Engine) ScheduleTask(delay Time, task Task) {
	e.insert(event{at: e.now + delay, task: task})
}

// AtTask runs task at absolute time t.
func (e *Engine) AtTask(t Time, task Task) {
	e.insert(event{at: t, task: task})
}

func (e *Engine) insert(ev event) {
	t := ev.at
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d in the past (now %d)", t, e.now))
	}
	e.seq++
	ev.seq = e.seq
	if t-e.now < ringSize {
		b := &e.ring[t&ringMask]
		b.ev = append(b.ev, ev)
		e.ringCount++
		if t < e.cursor {
			e.cursor = t
		}
	} else {
		e.pushFar(ev)
	}
}

// SetAdvanceHook installs an observer called whenever the clock moves,
// with the cycle being left — at that instant every event of that cycle
// has fired, so the hook sees the cycle's final state. The hook must
// not schedule events or otherwise touch the engine: it is an
// observation point (the obs epoch sampler), not a component, and runs
// outside the (time, seq) event order that determinism rests on.
// Scheduling from the hook would also keep the queue non-empty, so Run
// would never return. A nil hook (the default) disables the callback.
func (e *Engine) SetAdvanceHook(fn func(leaving Time)) { e.hook = fn }

// Pending reports whether any events remain.
func (e *Engine) Pending() bool { return e.ringCount > 0 || len(e.far) > 0 }

// Halt stops the event loop after the current event returns. Remaining
// events stay queued; Run returns nil.
func (e *Engine) Halt() { e.halted = true }

// nextTime returns the time of the earliest pending event without
// advancing the clock, so Run can enforce the horizon before firing.
// Ring events are always earlier than far events (the far heap only
// holds times at or beyond now+ringSize), so the ring is scanned first;
// cursor makes the scan amortized O(1) because it never moves backwards
// past an emptied cycle.
func (e *Engine) nextTime() (Time, bool) {
	if e.ringCount > 0 {
		for {
			b := &e.ring[e.cursor&ringMask]
			if b.head < len(b.ev) {
				return e.cursor, true
			}
			e.cursor++
		}
	}
	if len(e.far) > 0 {
		return e.far[0].at, true
	}
	return 0, false
}

// advanceTo moves the clock to t (the next event time) and slides the
// ring window: any far event now within [t, t+ringSize) migrates into
// its bucket. Migration happens before any event at time t runs, so a
// far event for cycle T always enters T's bucket before any direct
// append for T can occur (direct appends for T are only possible once
// now is within ringSize of T) — heap order delivers migrants in (at,
// seq) order, so per-bucket insertion order remains global seq order
// and the original FIFO semantics are preserved exactly.
func (e *Engine) advanceTo(t Time) {
	if e.hook != nil && t != e.now {
		e.hook(e.now)
	}
	e.now = t
	if e.cursor < t {
		e.cursor = t
	}
	for len(e.far) > 0 && e.far[0].at-t < ringSize {
		ev := e.popFar()
		b := &e.ring[ev.at&ringMask]
		b.ev = append(b.ev, ev)
		e.ringCount++
		if ev.at < e.cursor {
			e.cursor = ev.at
		}
	}
}

// fireNext fires the earliest event of cycle t, which the caller found
// via nextTime.
func (e *Engine) fireNext(t Time) {
	e.advanceTo(t)
	b := &e.ring[t&ringMask]
	ev := &b.ev[b.head]
	fn, task := ev.fn, ev.task
	ev.fn, ev.task = nil, nil // release the closure for GC
	b.head++
	if b.head == len(b.ev) {
		b.ev = b.ev[:0]
		b.head = 0
	}
	e.ringCount--
	e.fired++
	if task != nil {
		task.Run()
	} else {
		fn()
	}
}

// Step fires the single next event and returns true, or returns false if
// the queue is empty.
func (e *Engine) Step() bool {
	t, ok := e.nextTime()
	if !ok {
		return false
	}
	e.fireNext(t)
	return true
}

// Run fires events until the queue drains, Halt is called, or the time
// horizon is exceeded (returned as an error, since it indicates a hang
// such as a deadlocked synchronization benchmark).
func (e *Engine) Run() error {
	e.halted = false
	for !e.halted {
		t, ok := e.nextTime()
		if !ok {
			return nil
		}
		if t > e.limit {
			return fmt.Errorf("sim: horizon %d cycles exceeded at %d events; simulation is likely deadlocked", e.limit, e.fired)
		}
		e.fireNext(t)
	}
	return nil
}

// RunUntil fires events up to and including time t, leaving later events
// queued.
func (e *Engine) RunUntil(t Time) {
	for {
		next, ok := e.nextTime()
		if !ok || next > t {
			break
		}
		e.fireNext(next)
	}
	// Idle-advance through advanceTo so the ring cursor tracks the new
	// now and far events whose time entered [t, t+ringSize) migrate into
	// their buckets — a bare `e.now = t` would leave the cursor behind
	// (later At() calls could then fire at the wrong cycle) and would let
	// a direct append for cycle T land before T's unmigrated far event,
	// inverting same-cycle FIFO order.
	if e.now < t {
		e.advanceTo(t)
	}
}

// pushFar inserts into the far heap (binary sift-up; events by value,
// no interface boxing).
func (e *Engine) pushFar(ev event) {
	e.far = append(e.far, ev)
	i := len(e.far) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(&e.far[i], &e.far[p]) {
			break
		}
		e.far[i], e.far[p] = e.far[p], e.far[i]
		i = p
	}
}

// popFar removes the heap minimum (binary sift-down).
func (e *Engine) popFar() event {
	min := e.far[0]
	n := len(e.far) - 1
	e.far[0] = e.far[n]
	e.far[n] = event{}
	e.far = e.far[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && eventLess(&e.far[l], &e.far[s]) {
			s = l
		}
		if r < n && eventLess(&e.far[r], &e.far[s]) {
			s = r
		}
		if s == i {
			break
		}
		e.far[i], e.far[s] = e.far[s], e.far[i]
		i = s
	}
	return min
}
