// Package sim provides a deterministic discrete-event simulation engine.
//
// Every timed component in the simulator (caches, network links, compute
// units, DRAM) advances by scheduling events on a single Engine. Events
// fire in (time, insertion-sequence) order, so two events scheduled for
// the same cycle fire in the order they were scheduled. This total order,
// combined with the single-threaded event loop, makes every simulation
// bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is simulation time in cycles. The whole machine runs on the GPU
// clock domain (700 MHz in the paper's Table 3); the CPU core only
// launches kernels, so a single domain is sufficient.
type Time uint64

// Forever is a time later than any reachable simulation time.
const Forever Time = math.MaxUint64

// Event is a scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is the discrete-event simulation kernel.
//
// The zero value is not usable; create engines with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	queue  eventQueue
	fired  uint64
	limit  Time // horizon: exceeding it means a hang; Run returns an error
	halted bool
}

// NewEngine returns an engine at time 0 with the given horizon. A zero
// horizon means no limit.
func NewEngine(horizon Time) *Engine {
	if horizon == 0 {
		horizon = Forever
	}
	return &Engine{limit: horizon}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far (a useful progress
// and determinism diagnostic).
func (e *Engine) Fired() uint64 { return e.fired }

// Schedule runs fn at the given delay from now. A zero delay fires later
// in the current cycle, after all previously scheduled events for this
// cycle.
func (e *Engine) Schedule(delay Time, fn func()) {
	e.At(e.now+delay, fn)
}

// At runs fn at absolute time t. Scheduling in the past panics: it is
// always a model bug.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d in the past (now %d)", t, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &event{at: t, seq: e.seq, fn: fn})
}

// Pending reports whether any events remain.
func (e *Engine) Pending() bool { return len(e.queue) > 0 }

// Halt stops the event loop after the current event returns. Remaining
// events stay queued; Run returns nil.
func (e *Engine) Halt() { e.halted = true }

// Step fires the single next event and returns true, or returns false if
// the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.at
	e.fired++
	ev.fn()
	return true
}

// Run fires events until the queue drains, Halt is called, or the time
// horizon is exceeded (returned as an error, since it indicates a hang
// such as a deadlocked synchronization benchmark).
func (e *Engine) Run() error {
	e.halted = false
	for len(e.queue) > 0 && !e.halted {
		if e.queue[0].at > e.limit {
			return fmt.Errorf("sim: horizon %d cycles exceeded at %d events; simulation is likely deadlocked", e.limit, e.fired)
		}
		e.Step()
	}
	return nil
}

// RunUntil fires events up to and including time t, leaving later events
// queued.
func (e *Engine) RunUntil(t Time) {
	for len(e.queue) > 0 && e.queue[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}
