package sim

import (
	"strings"
	"testing"
)

// The horizon is inclusive: an event at exactly the limit is still a
// legal simulation instant; only events strictly beyond it indicate a
// hang.
func TestAtExactHorizonFires(t *testing.T) {
	e := NewEngine(100)
	fired := false
	e.At(100, func() { fired = true })
	if err := e.Run(); err != nil {
		t.Fatalf("event at the horizon must fire, got %v", err)
	}
	if !fired || e.Now() != 100 || e.Fired() != 1 {
		t.Fatalf("fired=%v now=%d count=%d", fired, e.Now(), e.Fired())
	}
}

func TestBeyondHorizonErrors(t *testing.T) {
	e := NewEngine(100)
	fired := false
	e.At(101, func() { fired = true })
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "horizon") {
		t.Fatalf("want horizon error, got %v", err)
	}
	if fired {
		t.Fatal("event beyond the horizon must not fire")
	}
	// The engine must not advance past the horizon, and the offending
	// event stays queued so the state can be inspected post-mortem.
	if e.Now() > 100 {
		t.Fatalf("now advanced to %d, beyond the horizon", e.Now())
	}
	if !e.Pending() {
		t.Fatal("offending event should remain queued")
	}
	// A second Run reports the same hang rather than silently firing.
	if err2 := e.Run(); err2 == nil {
		t.Fatal("rerun after horizon error must error again")
	}
}

func TestHorizonChecksNextEventNotNow(t *testing.T) {
	// An event at the horizon that schedules beyond it: the first fires,
	// then Run errors without firing the second.
	e := NewEngine(50)
	var order []int
	e.At(50, func() {
		order = append(order, 1)
		e.Schedule(1, func() { order = append(order, 2) })
	})
	if err := e.Run(); err == nil {
		t.Fatal("want horizon error for the follow-up event")
	}
	if len(order) != 1 || order[0] != 1 {
		t.Fatalf("order = %v, want [1]", order)
	}
}

func TestZeroHorizonMeansNoLimit(t *testing.T) {
	e := NewEngine(0)
	fired := false
	e.At(1<<40, func() { fired = true })
	if err := e.Run(); err != nil || !fired {
		t.Fatalf("no-limit engine errored: %v (fired=%v)", err, fired)
	}
}

// Halt stops the loop after the current event; the queue is preserved
// and a later Run resumes exactly where it left off.
func TestHaltPreservesQueueAndRunResumes(t *testing.T) {
	e := NewEngine(0)
	var order []int
	e.At(1, func() {
		order = append(order, 1)
		e.Halt()
	})
	e.At(2, func() { order = append(order, 2) })
	e.At(3, func() { order = append(order, 3) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 1 || e.Now() != 1 || !e.Pending() {
		t.Fatalf("after halt: order=%v now=%d pending=%v", order, e.Now(), e.Pending())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("resume order = %v", order)
	}
}

// Scheduling from a halting event is legal: the new event waits for the
// next Run. The machine's kernel-launch loop depends on this (the CPU
// host halts the engine between kernels and resumes it).
func TestScheduleAfterHaltFiresOnResume(t *testing.T) {
	e := NewEngine(0)
	var order []int
	e.At(5, func() {
		e.Halt()
		e.Schedule(0, func() { order = append(order, 2) })
		order = append(order, 1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 1 {
		t.Fatalf("halting event's follow-up fired early: %v", order)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[1] != 2 {
		t.Fatalf("resume order = %v", order)
	}
	if e.Now() != 5 {
		t.Fatalf("zero-delay follow-up moved time to %d", e.Now())
	}
}

// Run clears a stale halt request: Halt called outside the loop (with
// no event in flight) does not wedge the next Run.
func TestHaltBeforeRunDoesNotWedge(t *testing.T) {
	e := NewEngine(0)
	fired := false
	e.Halt()
	e.At(1, func() { fired = true })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("stale halt suppressed the whole run")
	}
}

// Step is the raw single-event primitive: it ignores the horizon (Run
// is the guard) and reports emptiness.
func TestStepSemantics(t *testing.T) {
	e := NewEngine(10)
	fired := false
	e.At(99, func() { fired = true })
	if !e.Step() {
		t.Fatal("Step with a queued event must fire it")
	}
	if !fired || e.Now() != 99 {
		t.Fatalf("fired=%v now=%d", fired, e.Now())
	}
	if e.Step() {
		t.Fatal("Step on an empty queue must return false")
	}
}

// RunUntil is inclusive and advances time to t even when idle.
func TestRunUntilInclusiveAndAdvances(t *testing.T) {
	e := NewEngine(0)
	var order []int
	e.At(3, func() { order = append(order, 3) })
	e.At(5, func() { order = append(order, 5) })
	e.At(6, func() { order = append(order, 6) })
	e.RunUntil(5)
	if len(order) != 2 || order[1] != 5 {
		t.Fatalf("RunUntil(5) fired %v", order)
	}
	if e.Now() != 5 {
		t.Fatalf("now = %d, want 5", e.Now())
	}
	e.RunUntil(10)
	if len(order) != 3 {
		t.Fatalf("remaining event not fired: %v", order)
	}
	if e.Now() != 10 {
		t.Fatalf("idle RunUntil must advance time: now = %d", e.Now())
	}
	// RunUntil into the past is a no-op on time.
	e.RunUntil(4)
	if e.Now() != 10 {
		t.Fatalf("RunUntil backwards moved time to %d", e.Now())
	}
}

// An idle RunUntil must leave the queue invariants intact: an At() after
// the advance lands in a ring bucket the cursor has already passed, so a
// stale cursor would rediscover it at the wrong cycle (bucket index
// t&ringMask) and move the clock backwards.
func TestRunUntilIdleThenAt(t *testing.T) {
	e := NewEngine(0)
	e.RunUntil(1500)
	var at Time
	e.At(2000, func() { at = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 2000 {
		t.Fatalf("event scheduled for 2000 fired at %d", at)
	}
	if e.Now() != 2000 {
		t.Fatalf("now = %d, want 2000", e.Now())
	}
}

// An idle RunUntil that slides the window over a far event's cycle must
// migrate it into the ring before any later direct append for the same
// cycle, preserving same-cycle FIFO (seq) order.
func TestRunUntilIdleMigratesFarEvents(t *testing.T) {
	e := NewEngine(0)
	var order []string
	e.At(2000, func() { order = append(order, "far") }) // beyond ringSize: far heap
	e.RunUntil(1500)                                    // idle advance: 2000 is now in-window
	e.At(2000, func() { order = append(order, "direct") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "far,direct"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("same-cycle order %s, want %s", got, want)
	}
	if e.Now() != 2000 {
		t.Fatalf("now = %d, want 2000", e.Now())
	}
}

// Zero-delay self-rescheduling within one cycle keeps strict FIFO with
// other same-cycle events, even across many generations.
func TestZeroDelayGenerations(t *testing.T) {
	e := NewEngine(0)
	var order []string
	var gen func(n int)
	gen = func(n int) {
		order = append(order, "g")
		if n > 0 {
			e.Schedule(0, func() { gen(n - 1) })
		}
	}
	e.At(1, func() { gen(2) })
	e.At(1, func() { order = append(order, "x") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "g,x,g,g"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("order %s, want %s", got, want)
	}
}
