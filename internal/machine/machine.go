// Package machine assembles the full simulated system — engine, mesh,
// L2 banks, per-CU L1 controllers under the configured protocol, and
// the CUs — and runs workloads on it, producing the measurements the
// paper reports.
package machine

import (
	"fmt"
	"sort"

	"denovogpu/internal/coherence"
	"denovogpu/internal/consistency"
	"denovogpu/internal/denovo"
	"denovogpu/internal/energy"
	"denovogpu/internal/gpu"
	"denovogpu/internal/gpucoh"
	"denovogpu/internal/interconnect"
	"denovogpu/internal/l2"
	"denovogpu/internal/mem"
	"denovogpu/internal/mesi"
	"denovogpu/internal/noc"
	"denovogpu/internal/obs"
	"denovogpu/internal/sim"
	"denovogpu/internal/stats"
	"denovogpu/internal/topology"
	"denovogpu/internal/workload"
)

// Protocol selects the coherence protocol.
type Protocol int

const (
	// ProtoGPU is conventional GPU (writethrough) coherence.
	ProtoGPU Protocol = iota
	// ProtoDeNovo is the DeNovo hybrid protocol.
	ProtoDeNovo
	// ProtoMESI is a conventional hardware directory protocol
	// (writer-initiated invalidations) — Table 1's first row, provided
	// as an extension; the paper does not evaluate it.
	ProtoMESI
)

func (p Protocol) String() string {
	switch p {
	case ProtoDeNovo:
		return "DeNovo"
	case ProtoMESI:
		return "MESI"
	default:
		return "GPU"
	}
}

// Config describes one simulated system (paper Table 3 defaults).
type Config struct {
	Protocol Protocol
	Model    consistency.Model
	// Devices is the number of GPU devices (default 1, the paper's
	// machine). Each device gets its own NumCUs CUs, L1 set, L2 bank
	// slice, and mesh domain; the devices are joined by the
	// inter-device link modeled in internal/interconnect, and memory
	// lines interleave their home registry banks across devices (see
	// topology.Desc.HomeNode). MESI is single-device only.
	Devices int
	// ReadOnlyOpt enables DeNovo's read-only region optimization (DD+RO).
	ReadOnlyOpt bool
	// LazyWrites delays DeNovo data-write registration to the next
	// global release (part of DH).
	LazyWrites bool
	// NoMSHRCoalescing disables DeNovoSync0's same-CU MSHR coalescing
	// (ablation).
	NoMSHRCoalescing bool
	// SyncBackoff enables the DeNovoSync read-backoff extension.
	SyncBackoff bool
	// DirectTransfer enables direct cache-to-cache transfers (the
	// paper's future-work optimization).
	DirectTransfer bool
	// Invariants arms the protocol invariant sanitizer: controllers gain
	// hot-path assertions (DeNovo's lazy-reg-exclusive, GPU coherence's
	// wt-balance) and CheckInvariants extends its always-on registry
	// walk with per-controller quiesced-state suites after every kernel.
	// The checks observe state without scheduling events or touching
	// counters, so an armed run produces byte-identical reports; they
	// cost nothing when off. The litmus harness and `litmus check`
	// counterexample replay arm it unconditionally; denovosim exposes it
	// as -invariants.
	Invariants bool
	// FaultDisableAcquireInval is a test-only fault-injection knob: it
	// makes globally scoped acquires skip their self-invalidation in the
	// GPU and DeNovo protocols, deliberately breaking the consistency
	// contract. The litmus conformance harness (internal/litmus) uses it
	// to prove it can detect and shrink real consistency bugs. Never set
	// it outside tests.
	FaultDisableAcquireInval bool

	// Phases maps kernel-phase labels (workload.PhasePush/PhasePull) to
	// the protocol and consistency model that phase's kernels run under
	// (beyond the paper; Salvador et al.'s per-phase specialization).
	// Kernels launched through LaunchPhase with an unlisted or empty
	// label run under the base Protocol/Model. Between two kernels whose
	// selections differ, the machine performs a phase-transition drain:
	// it quiesces the outgoing L1 set, retires every DeNovo registration
	// back to the registry, invalidates the outgoing caches, and only
	// then moves the CUs onto the incoming set (see DESIGN.md). MESI has
	// no drain story and cannot appear in Phases or be phased.
	Phases map[string]PhaseProto
	// PhaseDrainCycles is the simulated cost of one phase-transition
	// drain (store-buffer quiesce, registry walk, flash invalidation).
	PhaseDrainCycles int

	// GenericL1 forces the CUs onto the generic coherence.L1 interface
	// dispatch — the reference implementation — instead of the default
	// monomorphic fast path that calls the concrete DeNovo/GPU
	// controllers directly. The two paths are behaviorally identical;
	// the differential suite diffs their reports cell by cell.
	GenericL1 bool

	NumCUs         int
	MaxResidentTBs int
	L1Bytes        int
	L1Ways         int
	SBEntries      int
	// LaunchOverheadCycles models kernel-dispatch cost.
	LaunchOverheadCycles int
	// HorizonCycles aborts hung simulations.
	HorizonCycles uint64
}

// Defaults fills zero fields with the paper's parameters.
func (c Config) Defaults() Config {
	if c.Devices == 0 {
		c.Devices = 1
	}
	if c.NumCUs == 0 {
		c.NumCUs = 15
	}
	if c.MaxResidentTBs == 0 {
		c.MaxResidentTBs = 3
	}
	if c.L1Bytes == 0 {
		c.L1Bytes = 32 * 1024
	}
	if c.L1Ways == 0 {
		c.L1Ways = 8
	}
	if c.SBEntries == 0 {
		c.SBEntries = 256
	}
	if c.LaunchOverheadCycles == 0 {
		c.LaunchOverheadCycles = 300
	}
	if c.PhaseDrainCycles == 0 {
		// Half a kernel dispatch: the previous kernel's boundary release
		// already emptied every store buffer and MSHR (Launch asserts it),
		// so the drain is the command processor walking the registry and
		// reprogramming the L1 set, not waiting out in-flight traffic.
		c.PhaseDrainCycles = 150
	}
	if c.HorizonCycles == 0 {
		c.HorizonCycles = 5_000_000_000
	}
	return c
}

// PhaseProto selects the coherence protocol and consistency model one
// named kernel phase runs under (Config.Phases).
type PhaseProto struct {
	Protocol Protocol
	Model    consistency.Model
}

// Name returns the paper's abbreviation for the configuration (GD, GH,
// DD, DD+RO, DH) when it matches one, "SPEC" for the canonical
// per-phase specialized configuration, or a descriptive string. A
// multi-device configuration appends "xN" (e.g. "DDx2").
func (c Config) Name() string {
	name := c.singleName()
	if c.Devices > 1 {
		name += fmt.Sprintf("x%d", c.Devices)
	}
	return name
}

// singleName is Name without the device-count suffix.
func (c Config) singleName() string {
	base := c.baseName()
	if len(c.Phases) == 0 {
		return base
	}
	if c.isSpecialized() {
		return "SPEC"
	}
	labels := make([]string, 0, len(c.Phases))
	for p := range c.Phases {
		labels = append(labels, p)
	}
	sort.Strings(labels)
	s := base + "+phased["
	for i, p := range labels {
		if i > 0 {
			s += " "
		}
		pp := c.Phases[p]
		s += fmt.Sprintf("%s:%s", p, Config{Protocol: pp.Protocol, Model: pp.Model}.baseName())
	}
	return s + "]"
}

// isSpecialized reports whether the configuration is exactly the
// canonical Specialized() shape.
func (c Config) isSpecialized() bool {
	if c.Protocol != ProtoDeNovo || c.Model != consistency.DRF || !c.ReadOnlyOpt || c.LazyWrites {
		return false
	}
	if len(c.Phases) != 2 {
		return false
	}
	return c.Phases[workload.PhasePush] == PhaseProto{Protocol: ProtoGPU, Model: consistency.DRF} &&
		c.Phases[workload.PhasePull] == PhaseProto{Protocol: ProtoDeNovo, Model: consistency.DRF}
}

func (c Config) baseName() string {
	switch {
	case c.Protocol == ProtoGPU && c.Model == consistency.DRF:
		return "GD"
	case c.Protocol == ProtoGPU && c.Model == consistency.HRF:
		return "GH"
	case c.Protocol == ProtoDeNovo && c.Model == consistency.DRF && c.ReadOnlyOpt:
		return "DD+RO"
	case c.Protocol == ProtoDeNovo && c.Model == consistency.DRF:
		return "DD"
	case c.Protocol == ProtoDeNovo && c.Model == consistency.HRF && c.LazyWrites:
		return "DH+lazy"
	case c.Protocol == ProtoDeNovo && c.Model == consistency.HRF:
		return "DH"
	case c.Protocol == ProtoMESI:
		return "MESI"
	default:
		return fmt.Sprintf("%v+%v", c.Protocol, c.Model)
	}
}

// The five configurations evaluated by the paper (Section 5.3).

// GD is GPU coherence with the DRF model.
func GD() Config { return Config{Protocol: ProtoGPU, Model: consistency.DRF}.Defaults() }

// GH is GPU coherence with the HRF model (scoped synchronization).
func GH() Config { return Config{Protocol: ProtoGPU, Model: consistency.HRF}.Defaults() }

// DD is DeNovo coherence with the DRF model.
func DD() Config { return Config{Protocol: ProtoDeNovo, Model: consistency.DRF}.Defaults() }

// DDRO is DD plus the read-only region optimization.
func DDRO() Config {
	return Config{Protocol: ProtoDeNovo, Model: consistency.DRF, ReadOnlyOpt: true}.Defaults()
}

// DH is DeNovo coherence with the HRF model: local scopes skip
// invalidations and flushes, and locally scoped synchronization delays
// ownership. Data writes register eagerly as in DD — delaying them too
// (Config.LazyWrites) parks whole working sets in the finite store
// buffer and loses to DD on write-heavy kernels, so it is left as an
// ablation knob rather than part of the paper configuration.
func DH() Config {
	return Config{Protocol: ProtoDeNovo, Model: consistency.HRF}.Defaults()
}

// MESI is the extension configuration: conventional directory-based
// hardware coherence under DRF. Not part of the paper's evaluation.
func MESI() Config {
	return Config{Protocol: ProtoMESI, Model: consistency.DRF}.Defaults()
}

// Specialized is the per-phase specialized configuration (beyond the
// paper; Salvador et al., arXiv 2002.10245): DeNovo ownership with the
// read-only region optimization for pull phases and unphased kernels,
// writethrough GPU coherence (with relaxed atomics executing at the L2
// bank) for push phases, DRF throughout. A phase-transition drain runs
// between kernels whose phases differ.
func Specialized() Config {
	c := DDRO()
	c.Phases = map[string]PhaseProto{
		workload.PhasePush: {Protocol: ProtoGPU, Model: consistency.DRF},
		workload.PhasePull: {Protocol: ProtoDeNovo, Model: consistency.DRF},
	}
	return c
}

// AllConfigs returns the paper's five configurations in figure order.
func AllConfigs() []Config { return []Config{GD(), GH(), DD(), DDRO(), DH()} }

// addrRange is a half-open [Lo, Hi) byte range.
type addrRange struct{ lo, hi mem.Addr }

// Machine is one assembled system.
type Machine struct {
	cfg  Config
	topo topology.Desc
	eng  *sim.Engine
	// meshes[d] is device d's mesh, based at d*noc.Nodes; fabric is
	// the inter-device interconnect joining them (nil when Devices is
	// 1). net is what controllers are built against: the single mesh
	// itself on one device — keeping the pre-multi-device monomorphic
	// send path and byte-identical goldens — or the fabric otherwise.
	meshes  []*noc.Mesh
	fabric  *interconnect.Fabric
	net     noc.Network
	backing *mem.Backing
	banks   []*l2.Bank        // indexed by global node, nil for MESI
	dirs    []*mesi.Directory // MESI only (single-device)
	l1s     []coherence.L1    // the active set (== sets[active])
	cus     []*gpu.CU
	st      *stats.Stats
	// devSt[d] is the stats sink device d's components record through:
	// st itself on a single-device machine (counter names unchanged),
	// st.DeviceView(d) otherwise, so per-device counters keep distinct
	// "dN."-prefixed keys instead of silently summing across devices.
	devSt []*stats.Stats
	meter *energy.Meter

	// Per-phase protocol specialization: one full L1 controller set per
	// distinct PhaseProto the configuration uses. Exactly one set is
	// attached to the mesh and the CUs at a time; the others are empty
	// (the phase-transition drain empties the outgoing set before every
	// switch). denovoL1s aliases the DeNovo set when one exists — the
	// only set the registry's owner pointers can refer to.
	sets      map[PhaseProto][]coherence.L1
	setOrder  []PhaseProto
	denovoL1s []coherence.L1
	base      PhaseProto
	active    PhaseProto
	// ranInPhase records whether any kernel has executed since the
	// machine entered the active phase; a switch away from an idle
	// phase skips the quiesce delay (nothing is in flight).
	ranInPhase bool
	// drainOverlap is how much of the just-completed phase drain the
	// next kernel dispatch can hide: a switch only happens on the way
	// into a launch, so the command processor walks the registry while
	// it is already issuing that kernel. Only drain time beyond the
	// dispatch overhead adds latency.
	drainOverlap int

	ro  []addrRange
	err error
}

// New builds a machine for the configuration.
func New(cfg Config) *Machine {
	cfg = cfg.Defaults()
	m := &Machine{
		cfg:     cfg,
		topo:    topology.New(cfg.Devices),
		eng:     sim.NewEngine(sim.Time(cfg.HorizonCycles)),
		backing: mem.NewBacking(),
		st:      stats.New(),
	}
	if cfg.Devices > 1 && cfg.Protocol == ProtoMESI {
		panic("machine: MESI is single-device only (no inter-device directory story)")
	}
	m.meter = energy.NewMeter(m.st)
	for d := 0; d < cfg.Devices; d++ {
		m.meshes = append(m.meshes, noc.NewAt(m.eng, m.st, m.meter, noc.NodeID(d*noc.Nodes)))
	}
	if cfg.Devices > 1 {
		m.fabric = interconnect.New(m.eng, m.st, m.meter, m.topo, m.meshes)
		m.net = m.fabric
		for d := 0; d < cfg.Devices; d++ {
			m.devSt = append(m.devSt, m.st.DeviceView(d))
		}
	} else {
		// Single device: controllers talk to the concrete mesh and the
		// root stats directly — the exact pre-multi-device machine, so
		// golden reports stay byte-identical.
		m.net = m.meshes[0]
		m.devSt = []*stats.Stats{m.st}
	}
	if cfg.Protocol == ProtoMESI {
		m.dirs = make([]*mesi.Directory, noc.Nodes)
		for n := noc.NodeID(0); n < noc.Nodes; n++ {
			m.dirs[n] = mesi.NewDirectory(n, m.eng, m.meshes[0], m.backing, m.st, m.meter)
			m.meshes[0].Attach(n, noc.PortL2, m.dirs[n])
		}
	} else {
		m.banks = make([]*l2.Bank, m.topo.TotalNodes())
		for n := noc.NodeID(0); int(n) < m.topo.TotalNodes(); n++ {
			d := m.topo.DeviceOf(n)
			m.banks[n] = l2.New(n, m.eng, m.net, m.backing, m.devSt[d], m.meter)
			if cfg.Devices > 1 {
				m.banks[n].SetTopology(m.topo)
			}
			m.meshes[d].Attach(n, noc.PortL2, m.banks[n])
		}
	}
	// One L1 controller set per distinct PhaseProto, base first. The
	// constructors attach themselves to the mesh, so after building every
	// set the base set is re-attached explicitly below.
	m.base = PhaseProto{Protocol: cfg.Protocol, Model: cfg.Model}
	m.setOrder = []PhaseProto{m.base}
	if len(cfg.Phases) > 0 {
		if cfg.Protocol == ProtoMESI {
			panic("machine: MESI cannot be phase-specialized (no drain story)")
		}
		labels := make([]string, 0, len(cfg.Phases))
		for p := range cfg.Phases {
			labels = append(labels, p)
		}
		sort.Strings(labels)
		for _, p := range labels {
			pp := cfg.Phases[p]
			if pp.Protocol == ProtoMESI {
				panic(fmt.Sprintf("machine: phase %q selects MESI, which cannot be phased", p))
			}
			dup := false
			for _, have := range m.setOrder {
				if have == pp {
					dup = true
					break
				}
			}
			if !dup {
				m.setOrder = append(m.setOrder, pp)
			}
		}
	}
	m.sets = make(map[PhaseProto][]coherence.L1, len(m.setOrder))
	for _, pp := range m.setOrder {
		set := m.buildL1Set(pp)
		m.sets[pp] = set
		if pp.Protocol == ProtoDeNovo && m.denovoL1s == nil {
			m.denovoL1s = set
		}
	}
	m.active = m.base
	m.l1s = m.sets[m.base]
	m.attachSet(m.l1s)
	for i := 0; i < m.totalCUs(); i++ {
		cu := gpu.New(m.cuNode(i), m.eng, m.l1s[i], cfg.Model, m.devSt[i/cfg.NumCUs], m.meter, cfg.MaxResidentTBs)
		cu.Index = i
		if cfg.GenericL1 {
			cu.UseGenericL1()
		}
		m.cus = append(m.cus, cu)
	}
	return m
}

// totalCUs is the number of CUs across all devices — what workloads
// see as NumCUs and the length of every L1 set.
func (m *Machine) totalCUs() int { return m.cfg.Devices * m.cfg.NumCUs }

// cuNode maps a contiguous CU index (0..totalCUs-1) to its global mesh
// node: device idx/NumCUs, local node idx%NumCUs. The identity map on
// a single-device machine.
func (m *Machine) cuNode(idx int) noc.NodeID {
	return m.topo.Node(idx/m.cfg.NumCUs, idx%m.cfg.NumCUs)
}

// l1IndexOK maps a CU's global mesh node back to its index in the L1
// sets (the inverse of cuNode; registry owner pointers are global
// nodes). ok is false for a node hosting no CU — such a node can
// never legitimately own a word.
func (m *Machine) l1IndexOK(node noc.NodeID) (int, bool) {
	d, local := m.topo.DeviceOf(node), m.topo.LocalNode(node)
	if node < 0 || d >= m.cfg.Devices || local >= m.cfg.NumCUs {
		return 0, false
	}
	return d*m.cfg.NumCUs + local, true
}

// l1Index is l1IndexOK for callers where a CU-less owner is a wiring
// bug, not a checkable condition.
func (m *Machine) l1Index(node noc.NodeID) int {
	i, ok := m.l1IndexOK(node)
	if !ok {
		panic(fmt.Sprintf("machine: node %d hosts no CU", node))
	}
	return i
}

// buildL1Set constructs one per-CU L1 controller set for a PhaseProto,
// indexed by contiguous CU index across all devices.
func (m *Machine) buildL1Set(pp PhaseProto) []coherence.L1 {
	cfg := m.cfg
	set := make([]coherence.L1, 0, m.totalCUs())
	for i := 0; i < m.totalCUs(); i++ {
		node := m.cuNode(i)
		st := m.devSt[i/cfg.NumCUs]
		var l1 coherence.L1
		switch pp.Protocol {
		case ProtoGPU:
			// HRF (GPU-H) adds per-word dirty bits for partial blocks.
			gc := gpucoh.New(node, m.eng, m.net, st, m.meter, cfg.L1Bytes, cfg.L1Ways, cfg.SBEntries,
				pp.Model == consistency.HRF)
			if cfg.Devices > 1 {
				gc.SetTopology(m.topo)
			}
			l1 = gc
		case ProtoDeNovo:
			opts := denovo.Options{
				LazyWrites:       cfg.LazyWrites,
				NoMSHRCoalescing: cfg.NoMSHRCoalescing,
				SyncBackoff:      cfg.SyncBackoff,
				DirectTransfer:   cfg.DirectTransfer,
			}
			if cfg.ReadOnlyOpt {
				opts.ReadOnly = m.inReadOnly
			}
			dn := denovo.New(node, m.eng, m.net, st, m.meter, cfg.L1Bytes, cfg.L1Ways, cfg.SBEntries, opts)
			if cfg.Devices > 1 {
				dn.SetTopology(m.topo)
			}
			l1 = dn
		case ProtoMESI:
			l1 = mesi.New(node, m.eng, m.meshes[0], m.st, m.meter, cfg.L1Bytes, cfg.L1Ways)
		default:
			panic(fmt.Sprintf("machine: unknown protocol %d", pp.Protocol))
		}
		if cfg.FaultDisableAcquireInval {
			if f, ok := l1.(interface{ DisableAcquireInvalidation() }); ok {
				f.DisableAcquireInvalidation()
			}
		}
		if cfg.Invariants {
			if f, ok := l1.(interface{ EnableInvariantChecks() }); ok {
				f.EnableInvariantChecks()
			}
		}
		set = append(set, l1)
	}
	return set
}

// attachSet points each mesh's per-node L1 ports at the given set.
func (m *Machine) attachSet(set []coherence.L1) {
	for i, l1 := range set {
		m.net.Attach(m.cuNode(i), noc.PortL1, l1.(noc.Handler))
	}
}

// eachL1 visits every L1 controller of every set in deterministic
// order (set construction order, then CU order).
func (m *Machine) eachL1(fn func(l1 coherence.L1)) {
	for _, pp := range m.setOrder {
		for _, l1 := range m.sets[pp] {
			fn(l1)
		}
	}
}

func (m *Machine) inReadOnly(w mem.Word) bool {
	a := w.Addr()
	for _, r := range m.ro {
		if a >= r.lo && a < r.hi {
			return true
		}
	}
	return false
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Mesh exposes device 0's mesh (for installing trace taps).
func (m *Machine) Mesh() *noc.Mesh { return m.meshes[0] }

// Meshes exposes every device's mesh.
func (m *Machine) Meshes() []*noc.Mesh { return m.meshes }

// Fabric exposes the inter-device interconnect (nil when Devices is 1).
func (m *Machine) Fabric() *interconnect.Fabric { return m.fabric }

// Topology returns the machine's device geometry.
func (m *Machine) Topology() topology.Desc { return m.topo }

// Engine exposes the simulation engine (for trace timestamps).
func (m *Machine) Engine() *sim.Engine { return m.eng }

// Stats returns the accumulated measurements.
func (m *Machine) Stats() *stats.Stats { return m.st }

// NewRecorder returns an obs recorder clocked by this machine's engine,
// ready to pass to SetObservability. capacity <= 0 selects
// obs.DefaultCapacity.
func (m *Machine) NewRecorder(capacity int) *obs.Recorder {
	return obs.NewRecorder(func() uint64 { return uint64(m.eng.Now()) }, capacity)
}

// SetObservability wires an event recorder and/or an epoch sampler into
// every layer of the machine. Either argument may be nil. The recorder
// reaches the mesh (NoC flit hops), the L2 banks, every L1 controller
// that supports it (DeNovo and GPU coherence; MESI has no hooks), the
// store buffers, and the CUs (warp-stall spans). The sampler is driven
// by the engine's advance hook — it adds no events to the queue, so
// cycle counts and fired-event totals stay bit-identical to an
// unobserved run — and captures MSHR occupancy, store-buffer depth,
// outstanding registrations, and cumulative per-link NoC busy
// flit-cycles.
func (m *Machine) SetObservability(rec *obs.Recorder, sampler *obs.Sampler) {
	if rec != nil {
		for _, mesh := range m.meshes {
			mesh.SetRecorder(rec)
		}
		for _, bank := range m.banks {
			if bank != nil {
				bank.SetRecorder(rec)
			}
		}
		m.eachL1(func(l1 coherence.L1) {
			if s, ok := l1.(interface{ SetRecorder(*obs.Recorder) }); ok {
				s.SetRecorder(rec)
			}
		})
		for _, cu := range m.cus {
			cu.SetRecorder(rec)
			rec.NameTrack(obs.DomainCU, int32(cu.Node), fmt.Sprintf("cu-%02d", int(cu.Node)))
		}
	}
	if sampler == nil {
		return
	}
	type mshrProbe interface{ MSHROccupancy() int }
	type regProbe interface{ OutstandingRegistrations() int }
	type sbProbe interface{ StoreBufferLen() int }
	sampler.AddGauge("l1.mshr.sum", func() uint64 {
		var sum uint64
		m.eachL1(func(l1 coherence.L1) {
			if p, ok := l1.(mshrProbe); ok {
				sum += uint64(p.MSHROccupancy())
			}
		})
		return sum
	})
	sampler.AddGauge("l1.mshr.max", func() uint64 {
		var max uint64
		m.eachL1(func(l1 coherence.L1) {
			if p, ok := l1.(mshrProbe); ok {
				if v := uint64(p.MSHROccupancy()); v > max {
					max = v
				}
			}
		})
		return max
	})
	sampler.AddGauge("sb.depth.sum", func() uint64 {
		var sum uint64
		m.eachL1(func(l1 coherence.L1) {
			if p, ok := l1.(sbProbe); ok {
				sum += uint64(p.StoreBufferLen())
			}
		})
		return sum
	})
	sampler.AddGauge("sb.depth.max", func() uint64 {
		var max uint64
		m.eachL1(func(l1 coherence.L1) {
			if p, ok := l1.(sbProbe); ok {
				if v := uint64(p.StoreBufferLen()); v > max {
					max = v
				}
			}
		})
		return max
	})
	sampler.AddGauge("l1.out_regs.sum", func() uint64 {
		var sum uint64
		m.eachL1(func(l1 coherence.L1) {
			if p, ok := l1.(regProbe); ok {
				sum += uint64(p.OutstandingRegistrations())
			}
		})
		return sum
	})
	for _, mesh := range m.meshes {
		mesh := mesh
		for local := noc.NodeID(0); local < noc.Nodes; local++ {
			for dir := 0; dir < 4; dir++ {
				n, dir := mesh.Base()+local, dir
				sampler.AddGauge("noc.busy."+noc.LinkName(n, dir), func() uint64 {
					return mesh.LinkBusy(n, dir)
				})
			}
		}
	}
	if m.fabric != nil {
		for s := 0; s < m.cfg.Devices; s++ {
			for d := 0; d < m.cfg.Devices; d++ {
				if s == d {
					continue
				}
				s, d := s, d
				sampler.AddGauge(fmt.Sprintf("xdev.busy.d%d-d%d", s, d), func() uint64 {
					return m.fabric.LinkBusy(s, d)
				})
			}
		}
	}
	m.eng.SetAdvanceHook(func(leaving sim.Time) { sampler.Tick(uint64(leaving)) })
}

// Err returns the first simulation error (hang/horizon), if any.
func (m *Machine) Err() error { return m.err }

var _ workload.Host = (*Machine)(nil)

// NumCUs implements workload.Host: the total CU count across all
// devices — workloads partition work over the whole machine.
func (m *Machine) NumCUs() int { return m.totalCUs() }

// Launch implements workload.Host: it dispatches the kernel's thread
// blocks round-robin across CUs, performs the kernel-boundary global
// acquire on every participating CU, runs the simulation until every
// block finishes and every CU's kernel-end global release completes,
// and advances simulated time accordingly.
func (m *Machine) Launch(k workload.Kernel, numTBs, threadsPerTB int) {
	if m.err != nil {
		return
	}
	if numTBs <= 0 || threadsPerTB <= 0 {
		m.err = fmt.Errorf("machine: invalid grid %d x %d", numTBs, threadsPerTB)
		return
	}
	// Thread blocks are distributed round-robin with a per-launch
	// rotation: real GPU block schedulers give no cross-kernel
	// CU affinity, so block i of kernel n+1 must not be assumed to land
	// on the CU that ran block i of kernel n.
	rot := m.launchRot()
	total := m.totalCUs()
	assign := make([][]int, total)
	for tb := 0; tb < numTBs; tb++ {
		cu := (tb + rot) % total
		assign[cu] = append(assign[cu], tb)
	}
	overhead := m.cfg.LaunchOverheadCycles - m.drainOverlap
	if overhead < 0 {
		overhead = 0
	}
	m.drainOverlap = 0
	complete := false
	remaining := total
	m.eng.Schedule(sim.Time(overhead), func() {
		for i, cu := range m.cus {
			cu.L1().Acquire(coherence.ScopeGlobal)
			cu := cu
			cu.StartKernel(k, assign[i], threadsPerTB, numTBs, total, func() {
				cu.L1().Release(coherence.ScopeGlobal, func() {
					remaining--
					if remaining == 0 {
						complete = true
					}
				})
			})
		}
	})
	if err := m.eng.Run(); err != nil {
		m.err = fmt.Errorf("machine: kernel launch: %w", err)
		return
	}
	if !complete {
		m.err = fmt.Errorf("machine: kernel deadlocked (event queue drained with %d CUs unfinished)", remaining)
		return
	}
	for i, l1 := range m.l1s {
		if !l1.Drained() {
			m.err = fmt.Errorf("machine: CU %d not drained after kernel", i)
			return
		}
	}
	if err := m.CheckInvariants(); err != nil {
		m.err = fmt.Errorf("machine: after kernel: %w", err)
		return
	}
	m.st.Cycles = uint64(m.eng.Now())
	m.st.Inc("kernels_launched", 1)
	m.ranInPhase = true
}

var _ workload.PhasedHost = (*Machine)(nil)

// LaunchPhase implements workload.PhasedHost: it runs the kernel under
// the protocol/model Config.Phases selects for the phase label (the
// base configuration for unlisted labels), performing a
// phase-transition drain first when the selection differs from the
// currently active one.
func (m *Machine) LaunchPhase(phase string, k workload.Kernel, numTBs, threadsPerTB int) {
	if m.err != nil {
		return
	}
	target := m.base
	if pp, ok := m.cfg.Phases[phase]; ok {
		target = pp
	}
	if target != m.active {
		if err := m.switchPhase(target); err != nil {
			m.err = fmt.Errorf("machine: phase switch to %q: %w", phase, err)
			return
		}
	}
	m.Launch(k, numTBs, threadsPerTB)
}

// switchPhase performs the phase-transition drain and moves the CUs
// onto the target PhaseProto's L1 set. The drain contract (DESIGN.md):
//
//  1. Quiesce: PhaseDrainCycles of simulated time pass while the
//     outgoing set's store buffers and MSHRs empty. The previous
//     kernel's boundary release already forced this, so finding a
//     non-drained controller afterwards is a protocol bug, not a
//     workload property.
//  2. Retire registrations: every word the registry records as owned
//     by an outgoing DeNovo L1 is recalled — the L1 surrenders the
//     word's value, the home bank becomes the owner again. The
//     incoming protocol thus finds a registry with no dangling owner
//     pointers (the GPU protocol's bank-side atomics treat a
//     registered word as a protocol-mixing bug).
//  3. Drop: the outgoing caches flash-invalidate whatever clean state
//     remains, so no stale copy can resurface if the machine later
//     switches back.
//  4. Verify (the phase-drain invariant, always armed here): the
//     registry holds no registered words, and every outgoing
//     controller is drained. With Config.Invariants set, the outgoing
//     controllers' quiesced-state suites run as well.
func (m *Machine) switchPhase(target PhaseProto) error {
	// Simulated cost of the drain: the command processor quiesces the
	// pipeline before reprogramming the L1s. A switch before any kernel
	// has run in the active phase is free — there is nothing to
	// quiesce, and programming the initial L1 mode rides along with the
	// first kernel's dispatch.
	if m.ranInPhase {
		fired := false
		m.eng.Schedule(sim.Time(m.cfg.PhaseDrainCycles), func() { fired = true })
		if err := m.eng.Run(); err != nil {
			return fmt.Errorf("phase-drain: %w", err)
		}
		if !fired {
			return fmt.Errorf("phase-drain: drain event did not fire")
		}
		m.st.Cycles = uint64(m.eng.Now())
		// The switch is on the way into a launch, so the drain runs
		// concurrently with that kernel's dispatch; credit the overlap
		// back against the launch overhead.
		m.drainOverlap = m.cfg.PhaseDrainCycles
	}

	out := m.l1s
	for i, l1 := range out {
		if !l1.Drained() {
			return fmt.Errorf("phase-drain: CU %d not drained at phase switch", i)
		}
	}
	if m.active.Protocol == ProtoDeNovo {
		if err := m.retireRegistrations(out); err != nil {
			return err
		}
	}
	for i, l1 := range out {
		if d, ok := l1.(interface{ HostDropClean() (int, error) }); ok {
			if _, err := d.HostDropClean(); err != nil {
				return fmt.Errorf("phase-drain: CU %d: %w", i, err)
			}
		}
	}
	if err := m.checkPhaseDrain(out); err != nil {
		return err
	}
	if m.cfg.Invariants {
		for i, l1 := range out {
			if ck, ok := l1.(interface{ CheckInvariants() error }); ok {
				if err := ck.CheckInvariants(); err != nil {
					return fmt.Errorf("phase-drain: CU %d: %w", i, err)
				}
			}
		}
	}

	in := m.sets[target]
	m.attachSet(in)
	for i, cu := range m.cus {
		cu.SetL1(in[i])
		cu.SetModel(target.Model)
	}
	m.l1s = in
	m.active = target
	m.ranInPhase = false
	m.st.Inc("phase_switches", 1)
	return nil
}

// retireRegistrations recalls every registered word from the outgoing
// DeNovo set to its home bank (step 2 of the drain contract). Words
// are recalled in address order so the walk is deterministic
// regardless of registry iteration order.
func (m *Machine) retireRegistrations(out []coherence.L1) error {
	for _, bank := range m.banks {
		type regWord struct {
			w     mem.Word
			owner noc.NodeID
		}
		var regs []regWord
		bank.ForEachRegistered(func(w mem.Word, owner noc.NodeID) {
			regs = append(regs, regWord{w, owner})
		})
		sort.Slice(regs, func(i, j int) bool { return regs[i].w < regs[j].w })
		for _, r := range regs {
			idx, ok := m.l1IndexOK(r.owner)
			if !ok || idx >= len(out) {
				return fmt.Errorf("phase-drain: word %v registered to nonexistent node %d", r.w, r.owner)
			}
			dn, ok := out[idx].(*denovo.Controller)
			if !ok {
				return fmt.Errorf("phase-drain: word %v registered to non-DeNovo node %d", r.w, r.owner)
			}
			v, ok := dn.HostSteal(r.w)
			if !ok {
				return fmt.Errorf("phase-drain: word %v registered to node %d, which does not own it", r.w, r.owner)
			}
			bank.Recall(r.w, v)
		}
	}
	return nil
}

// checkPhaseDrain is the always-on phase-drain invariant: after the
// drain, the registry must hold no registered words and every outgoing
// controller must be quiescent. The mcheck suite lists it alongside
// the protocol invariants (mcheck.Invariants, name "phase-drain").
func (m *Machine) checkPhaseDrain(out []coherence.L1) error {
	for _, bank := range m.banks {
		var err error
		bank.ForEachRegistered(func(w mem.Word, owner noc.NodeID) {
			if err == nil {
				err = fmt.Errorf("phase-drain: word %v still registered to node %d after drain", w, owner)
			}
		})
		if err != nil {
			return err
		}
	}
	for i, l1 := range out {
		if !l1.Drained() {
			return fmt.Errorf("phase-drain: CU %d not drained after drop", i)
		}
	}
	return nil
}

// launchRot is the per-launch placement rotation: real GPU block
// schedulers give no cross-kernel CU affinity, so each launch rotates
// the round-robin start.
func (m *Machine) launchRot() int {
	return int(m.st.Get("kernels_launched")) * 7
}

// PlaceTB returns the thread-block index that the *next* Launch on this
// machine will run on the given CU, for the slot-th block assigned to
// that CU (slot 0, 1, ... up to Config.MaxResidentTBs-1 run
// concurrently). It exposes the launcher's round-robin placement so
// correctness harnesses (internal/litmus) can pin litmus threads to
// chosen CUs; the grid must span at least NumCUs*(slot+1) blocks for
// the returned index to be dispatched.
func (m *Machine) PlaceTB(cu, slot int) int {
	n := m.totalCUs()
	base := ((cu-m.launchRot())%n + n) % n
	return base + slot*n
}

// CheckInvariants validates the protocol's global ownership agreement
// at a quiesced point. Always on for DeNovo: every word the registry
// records as registered must be present (and only be writable) at
// exactly that L1 (the l2-agreement invariant). With Config.Invariants
// armed it also validates the MESI directory's Modified-owner
// agreement and runs every controller's quiesced-state suite
// (store-buffer structure, lazy/registration exclusivity, writethrough
// balance — see each protocol's CheckInvariants). It runs
// automatically after every kernel, so every benchmark in the suite
// doubles as a protocol invariant check.
func (m *Machine) CheckInvariants() error {
	switch {
	case m.denovoL1s != nil:
		for _, bank := range m.banks {
			var err error
			bank.ForEachRegistered(func(w mem.Word, owner noc.NodeID) {
				if err != nil {
					return
				}
				idx, ok := m.l1IndexOK(owner)
				if !ok || idx >= len(m.denovoL1s) {
					err = fmt.Errorf("word %v registered to nonexistent node %d", w, owner)
					return
				}
				dn := m.denovoL1s[idx].(*denovo.Controller)
				if !dn.OwnsWord(w) {
					err = fmt.Errorf("word %v registered to node %d, which does not own it", w, owner)
				}
			})
			if err != nil {
				return err
			}
		}
	case m.cfg.Protocol == ProtoMESI:
		if !m.cfg.Invariants {
			break
		}
		for n := noc.NodeID(0); n < noc.Nodes; n++ {
			var err error
			m.dirs[n].ForEachModified(func(l mem.Line, owner noc.NodeID) {
				if err != nil {
					return
				}
				if int(owner) >= len(m.l1s) {
					err = fmt.Errorf("line %v modified at nonexistent node %d", l, owner)
					return
				}
				mc := m.l1s[owner].(*mesi.Controller)
				if !mc.HoldsModified(l) {
					err = fmt.Errorf("directory says node %d holds %v modified, but its L1 does not", owner, l)
				}
			})
			if err != nil {
				return err
			}
		}
	}
	if !m.cfg.Invariants {
		return nil
	}
	for _, pp := range m.setOrder {
		for i, l1 := range m.sets[pp] {
			if ck, ok := l1.(interface{ CheckInvariants() error }); ok {
				if err := ck.CheckInvariants(); err != nil {
					return fmt.Errorf("CU %d (%v set): %w", i, pp.Protocol, err)
				}
			}
		}
	}
	return nil
}

// Read implements workload.Host: a functional, coherent read that
// honors DeNovo ownership (registered words live in L1s between
// kernels).
func (m *Machine) Read(a mem.Addr) uint32 {
	w := a.WordOf()
	if m.cfg.Protocol == ProtoMESI {
		return m.mesiRead(w)
	}
	bank := m.banks[m.topo.HomeNode(w.LineOf())]
	// Only the DeNovo set can hold registry-owned words, regardless of
	// which set is currently active.
	if owner := bank.PeekOwner(w); owner != l2.MemoryOwner {
		if v, ok := m.denovoL1s[m.l1Index(owner)].PeekWord(w); ok {
			return v
		}
		panic(fmt.Sprintf("machine: registry says node %d owns %v but its L1 has no copy", owner, w))
	}
	return bank.PeekData(w)
}

// Write implements workload.Host: a functional, coherent write; if an
// L1 owns the word it is recalled first.
func (m *Machine) Write(a mem.Addr, v uint32) {
	vals := [1]uint32{v}
	m.WriteWords(a, vals[:])
}

// WriteWords implements workload.BulkWriter: a functional, coherent
// write of len(vals) contiguous words starting at base (word aligned).
// Semantically identical to calling Write once per word, but the
// stale-copy invalidation visits each L1 once per cache line instead
// of once per word — host-side input seeding is a dominant cost for
// short-running cells and this is its fast path.
func (m *Machine) WriteWords(base mem.Addr, vals []uint32) {
	w0 := base.WordOf()
	for off := 0; off < len(vals); {
		w := w0 + mem.Word(off)
		l := w.LineOf()
		first := w.Index()
		n := mem.WordsPerLine - first
		if rest := len(vals) - off; n > rest {
			n = rest
		}
		var mask mem.WordMask
		for i := 0; i < n; i++ {
			mask |= mem.Bit(first + i)
		}
		if m.cfg.Protocol == ProtoMESI {
			m.mesiWriteRun(l, first, vals[off:off+n])
		} else {
			m.hostWriteRun(l, first, vals[off:off+n])
		}
		// Stale clean copies in any L1 must not survive (a
		// read-only-region declaration could otherwise carry them past
		// the next acquire). Inactive phase sets are empty post-drain,
		// but visiting them keeps the property unconditional.
		m.eachL1(func(l1 coherence.L1) {
			l1.HostInvalidateLine(l, mask)
		})
		off += n
	}
}

// hostWriteRun updates the registry's copy of words [first, first+len)
// of line l, recalling any word registered to an L1 first.
func (m *Machine) hostWriteRun(l mem.Line, first int, vals []uint32) {
	bank := m.banks[m.topo.HomeNode(l)]
	for i, v := range vals {
		w := l.Word(first + i)
		if owner := bank.PeekOwner(w); owner != l2.MemoryOwner {
			dn, ok := m.denovoL1s[m.l1Index(owner)].(*denovo.Controller)
			if !ok {
				panic("machine: non-DeNovo L1 owns a word")
			}
			if _, ok := dn.HostSteal(w); !ok {
				panic(fmt.Sprintf("machine: cannot steal %v from node %d", w, owner))
			}
			bank.Recall(w, v)
		} else {
			bank.PokeData(w, v)
		}
	}
}

// mesiRead is the MESI host read path: modified lines live in an L1.
func (m *Machine) mesiRead(w mem.Word) uint32 {
	d := m.dirs[mesi.HomeNode(w.LineOf())]
	if owner := d.PeekOwner(w.LineOf()); owner != -1 && int(owner) < len(m.l1s) {
		if v, ok := m.l1s[owner].PeekWord(w); ok {
			return v
		}
	}
	return d.PeekData(w)
}

// mesiWriteRun is the MESI host write path for one line: recall any
// modified copy, then update the directory's data for words
// [first, first+len); the caller shoots down shared copies.
func (m *Machine) mesiWriteRun(l mem.Line, first int, vals []uint32) {
	d := m.dirs[mesi.HomeNode(l)]
	if owner := d.PeekOwner(l); owner != -1 && int(owner) < len(m.l1s) {
		mc := m.l1s[owner].(*mesi.Controller)
		if data, ok := mc.HostSteal(l); ok {
			d.Recall(l, data)
		}
	}
	for i, v := range vals {
		d.PokeWord(l.Word(first+i), v)
	}
}

// SetReadOnly implements workload.Host: marks [lo, hi) as a read-only
// region for DD+RO's selective invalidation.
func (m *Machine) SetReadOnly(lo, hi mem.Addr) {
	m.ro = append(m.ro, addrRange{lo: lo, hi: hi})
}

// ClearReadOnly implements workload.Host. It must be called before the
// host mutates a previously read-only range.
func (m *Machine) ClearReadOnly() {
	m.ro = nil
}

// DumpL1s returns a diagnostic dump of every L1 controller's pending
// state (DeNovo only), for debugging hangs.
func (m *Machine) DumpL1s() string {
	out := ""
	for _, pp := range m.setOrder {
		for i, l1 := range m.sets[pp] {
			if dn, ok := l1.(*denovo.Controller); ok {
				out += fmt.Sprintf("== CU %d (drained=%v)\n%s", i, dn.Drained(), dn.DebugDump())
			}
		}
	}
	return out
}
