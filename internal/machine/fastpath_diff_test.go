// Differential wall between the monomorphic fast path and the generic
// reference path.
//
// The CUs dispatch coherence calls either through direct calls to the
// concrete protocol controllers (the default fast path, which the
// compiler can devirtualize and inline) or through the coherence.L1
// interface (the reference path, Config.GenericL1). The two are
// required to be behaviorally identical: this suite runs every pinned
// golden cell plus the graph-analytics differential seeds through BOTH
// paths and compares the full reports byte for byte. Any divergence —
// one event, one counter, one picojoule — fails here, so the
// devirtualized code is proven equivalent, not assumed.
package machine_test

import (
	"bytes"
	"fmt"
	"testing"

	"denovogpu"
	"denovogpu/internal/workload/graph"
)

// diffCell names one (workload, config) combination to diff.
type diffCell struct {
	name     string
	config   string
	workload denovogpu.Workload
}

func diffCells(t *testing.T) []diffCell {
	var cells []diffCell
	for _, p := range goldenPairs() {
		w, err := denovogpu.WorkloadByName(p.workload)
		if err != nil {
			t.Fatal(err)
		}
		cells = append(cells, diffCell{
			name:     p.workload + "/" + p.config,
			config:   p.config,
			workload: w,
		})
	}
	// Graph-analytics differential seeds (the graphdiff harness inputs):
	// randomized graphs exercise the per-phase protocol switches and the
	// relaxed-atomic L2 path under both dispatch modes.
	params := []graph.Params{{N: 320, AvgDeg: 6, Seed: 7}}
	if !testing.Short() {
		params = append(params, graph.Params{N: 640, AvgDeg: 8, Seed: 42})
	}
	families := []struct {
		name string
		mk   func(graph.Params) denovogpu.Workload
	}{
		{"BFS", graph.BFS},
		{"PR", graph.PageRank},
		{"SSSP", graph.SSSP},
	}
	for _, fam := range families {
		for _, p := range params {
			for _, cfg := range []string{"GD", "DD", "SPEC"} {
				cells = append(cells, diffCell{
					name:     fmt.Sprintf("%s-n%d-seed%d/%s", fam.name, p.N, p.Seed, cfg),
					config:   cfg,
					workload: fam.mk(p),
				})
			}
		}
	}
	return cells
}

// TestFastPathDifferential runs every cell through the specialized
// fast path and the generic interface path and requires byte-identical
// serialized reports.
func TestFastPathDifferential(t *testing.T) {
	cells := diffCells(t)
	if testing.Short() {
		cells = cells[:8]
	}
	mk := func(generic bool) []denovogpu.MatrixCell {
		out := make([]denovogpu.MatrixCell, len(cells))
		for i, c := range cells {
			cfg, err := denovogpu.ConfigByName(c.config)
			if err != nil {
				t.Fatal(err)
			}
			cfg.GenericL1 = generic
			out[i] = denovogpu.MatrixCell{Config: cfg, Workload: c.workload}
		}
		return out
	}
	fast, err := denovogpu.RunMatrix(mk(false), denovogpu.MatrixOptions{KeepGoing: true})
	if err != nil {
		t.Fatal(err)
	}
	generic, err := denovogpu.RunMatrix(mk(true), denovogpu.MatrixOptions{KeepGoing: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cells {
		i, c := i, c
		t.Run(c.name, func(t *testing.T) {
			if fast[i].Err != nil {
				t.Fatalf("fast path: %v", fast[i].Err)
			}
			if generic[i].Err != nil {
				t.Fatalf("generic path: %v", generic[i].Err)
			}
			got := mustCanonical(t, fast[i].Report)
			want := mustCanonical(t, generic[i].Report)
			if !bytes.Equal(got, want) {
				t.Errorf("fast path deviates from generic reference for %s:\nfast:\n%s\ngeneric:\n%s",
					c.name, got, want)
			}
		})
	}
}
