package machine

import (
	"fmt"
	"testing"

	"denovogpu/internal/coherence"
	"denovogpu/internal/mem"
	"denovogpu/internal/workload"
)

// forEachConfig runs a subtest per paper configuration.
func forEachConfig(t *testing.T, fn func(t *testing.T, m *Machine)) {
	t.Helper()
	for _, cfg := range AllConfigs() {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			fn(t, New(cfg))
		})
	}
}

func TestConfigNames(t *testing.T) {
	want := []string{"GD", "GH", "DD", "DD+RO", "DH"}
	for i, cfg := range AllConfigs() {
		if cfg.Name() != want[i] {
			t.Errorf("config %d name %q, want %q", i, cfg.Name(), want[i])
		}
	}
}

func TestVectorAddAllConfigs(t *testing.T) {
	const n = 1024
	a, b, c := mem.Addr(0x10000), mem.Addr(0x20000), mem.Addr(0x30000)
	forEachConfig(t, func(t *testing.T, m *Machine) {
		for i := 0; i < n; i++ {
			m.Write(a+mem.Addr(4*i), uint32(i))
			m.Write(b+mem.Addr(4*i), uint32(2*i))
		}
		const threads = 128
		kernel := func(ctx *workload.Ctx) {
			base := ctx.TB * threads
			if base >= n {
				return
			}
			av := ctx.LoadStride(a + mem.Addr(4*base))
			bv := ctx.LoadStride(b + mem.Addr(4*base))
			out := make([]uint32, threads)
			for i := range out {
				out[i] = av[i] + bv[i]
			}
			ctx.StoreStride(c+mem.Addr(4*base), out)
		}
		m.Launch(kernel, n/threads, threads)
		if err := m.Err(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if got := m.Read(c + mem.Addr(4*i)); got != uint32(3*i) {
				t.Fatalf("c[%d] = %d, want %d", i, got, 3*i)
			}
		}
		if m.Stats().Cycles == 0 {
			t.Fatal("no cycles recorded")
		}
		if m.Stats().TotalFlits() == 0 {
			t.Fatal("no network traffic recorded")
		}
	})
}

// TestMessagePassingLitmus is the canonical SC-for-DRF litmus: a
// producer block writes data then release-stores a flag; consumer
// blocks acquire-load the flag and, once set, must see the data. Under
// every configuration (and with the flag contended across all CUs) no
// stale data may be visible.
func TestMessagePassingLitmus(t *testing.T) {
	data, flag, out := mem.Addr(0x1000), mem.Addr(0x2000), mem.Addr(0x3000)
	forEachConfig(t, func(t *testing.T, m *Machine) {
		kernel := func(ctx *workload.Ctx) {
			if ctx.TB == 0 {
				ctx.Store(data, 42)
				ctx.AtomicStore(flag, 1, coherence.ScopeGlobal)
				return
			}
			for ctx.AtomicLoad(flag, coherence.ScopeGlobal) == 0 {
				ctx.Compute(20)
			}
			v := ctx.Load(data)
			ctx.Store(out+mem.Addr(4*ctx.TB), v)
		}
		m.Launch(kernel, 16, 32)
		if err := m.Err(); err != nil {
			t.Fatal(err)
		}
		for tb := 1; tb < 16; tb++ {
			if got := m.Read(out + mem.Addr(4*tb)); got != 42 {
				t.Fatalf("TB %d read stale data %d, want 42", tb, got)
			}
		}
	})
}

// TestSpinMutexCounter: every thread block increments a shared counter
// many times under a global CAS spin lock; the total must be exact
// under every configuration.
func TestSpinMutexCounter(t *testing.T) {
	lock, counter := mem.Addr(0x1000), mem.Addr(0x1100)
	const tbs, iters = 30, 5
	forEachConfig(t, func(t *testing.T, m *Machine) {
		kernel := func(ctx *workload.Ctx) {
			for it := 0; it < iters; it++ {
				for ctx.AtomicCAS(lock, 0, 1, coherence.ScopeGlobal) != 0 {
					ctx.Compute(10)
				}
				v := ctx.Load(counter)
				ctx.Store(counter, v+1)
				ctx.AtomicExch(lock, 0, coherence.ScopeGlobal)
			}
		}
		m.Launch(kernel, tbs, 32)
		if err := m.Err(); err != nil {
			t.Fatal(err)
		}
		if got := m.Read(counter); got != tbs*iters {
			t.Fatalf("counter = %d, want %d (lost updates)", got, tbs*iters)
		}
	})
}

// TestLocalScopeMutex: per-CU locks and per-CU counters, locally scoped
// under HRF configurations. All five configs must still be correct —
// under DRF the scope annotation is simply ignored (treated global).
func TestLocalScopeMutex(t *testing.T) {
	lockBase, ctrBase := mem.Addr(0x4000), mem.Addr(0x8000)
	const iters = 4
	forEachConfig(t, func(t *testing.T, m *Machine) {
		kernel := func(ctx *workload.Ctx) {
			lock := lockBase + mem.Addr(64*ctx.CU) // one lock per CU, distinct lines
			ctr := ctrBase + mem.Addr(64*ctx.CU)
			for it := 0; it < iters; it++ {
				for ctx.AtomicCAS(lock, 0, 1, coherence.ScopeLocal) != 0 {
					ctx.Compute(10)
				}
				v := ctx.Load(ctr)
				ctx.Store(ctr, v+1)
				ctx.AtomicExch(lock, 0, coherence.ScopeLocal)
			}
		}
		m.Launch(kernel, 45, 32) // 3 TBs per CU
		if err := m.Err(); err != nil {
			t.Fatal(err)
		}
		for cu := 0; cu < m.NumCUs(); cu++ {
			if got := m.Read(ctrBase + mem.Addr(64*cu)); got != 3*iters {
				t.Fatalf("CU %d counter = %d, want %d", cu, got, 3*iters)
			}
		}
	})
}

// TestCrossKernelVisibility: kernel 1's writes must be visible to
// kernel 2 and to the host, under every protocol (DeNovo leaves
// registered words in L1s; host reads must still be coherent).
func TestCrossKernelVisibility(t *testing.T) {
	buf := mem.Addr(0x10000)
	forEachConfig(t, func(t *testing.T, m *Machine) {
		k1 := func(ctx *workload.Ctx) {
			ctx.StoreStride(buf+mem.Addr(4*32*ctx.TB), fill(32, func(i int) uint32 { return uint32(ctx.TB*100 + i) }))
		}
		k2 := func(ctx *workload.Ctx) {
			v := ctx.LoadStride(buf + mem.Addr(4*32*ctx.TB))
			out := make([]uint32, 32)
			for i := range out {
				out[i] = v[i] + 1
			}
			ctx.StoreStride(buf+mem.Addr(4*32*ctx.TB), out)
		}
		m.Launch(k1, 20, 32)
		// Shift reads to a different CU mapping in kernel 2 by reversing
		// block roles: block tb reads block (19-tb)'s data.
		m.Launch(k2, 20, 32)
		if err := m.Err(); err != nil {
			t.Fatal(err)
		}
		for tb := 0; tb < 20; tb++ {
			for i := 0; i < 32; i++ {
				want := uint32(tb*100 + i + 1)
				if got := m.Read(buf + mem.Addr(4*(32*tb+i))); got != want {
					t.Fatalf("buf[%d][%d] = %d, want %d", tb, i, got, want)
				}
			}
		}
	})
}

func fill(n int, f func(i int) uint32) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = f(i)
	}
	return out
}

// TestHostWriteRecallsOwnership: after a kernel leaves a word
// registered in an L1 (DeNovo), a host write must recall it and a
// following kernel must read the host's value.
func TestHostWriteRecallsOwnership(t *testing.T) {
	w := mem.Addr(0x5000)
	m := New(DD())
	k1 := func(ctx *workload.Ctx) {
		if ctx.TB == 0 {
			ctx.Store(w, 7)
		}
	}
	m.Launch(k1, 1, 32)
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	if got := m.Read(w); got != 7 {
		t.Fatalf("host read %d, want 7 (owned word)", got)
	}
	m.Write(w, 9)
	var seen uint32
	k2 := func(ctx *workload.Ctx) {
		if ctx.TB == 0 {
			seen = ctx.Load(w)
		}
	}
	m.Launch(k2, 1, 32)
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	if seen != 9 {
		t.Fatalf("kernel read %d after host write, want 9", seen)
	}
}

// TestDeterminism: two identical runs produce identical cycle counts,
// traffic, and event counts.
func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		m := New(DD())
		lock, counter := mem.Addr(0x1000), mem.Addr(0x1100)
		kernel := func(ctx *workload.Ctx) {
			for it := 0; it < 3; it++ {
				for ctx.AtomicCAS(lock, 0, 1, coherence.ScopeGlobal) != 0 {
					ctx.Compute(7)
				}
				v := ctx.Load(counter)
				ctx.Store(counter, v+1)
				ctx.AtomicExch(lock, 0, coherence.ScopeGlobal)
			}
		}
		m.Launch(kernel, 15, 32)
		if err := m.Err(); err != nil {
			t.Fatal(err)
		}
		return m.Stats().Cycles, m.Stats().TotalFlits()
	}
	c1, f1 := run()
	c2, f2 := run()
	if c1 != c2 || f1 != f2 {
		t.Fatalf("nondeterministic: run1 (%d cycles, %d flits) vs run2 (%d, %d)", c1, f1, c2, f2)
	}
}

// TestReadOnlyRegionCorrectness: DD+RO must not return stale data when
// the host rewrites a previously read-only region after clearing it.
func TestReadOnlyRegionCorrectness(t *testing.T) {
	in, out := mem.Addr(0x1000), mem.Addr(0x9000)
	m := New(DDRO())
	m.Write(in, 5)
	m.SetReadOnly(in, in+64)
	k := func(ctx *workload.Ctx) {
		if ctx.TB == 0 {
			ctx.Store(out, ctx.Load(in))
		}
	}
	m.Launch(k, 1, 32)
	m.ClearReadOnly()
	m.Write(in, 50)
	m.SetReadOnly(in, in+64)
	m.Launch(k, 1, 32)
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	if got := m.Read(out); got != 50 {
		t.Fatalf("second kernel read %d, want 50 — stale RO data", got)
	}
}

// TestGPUFasterWithLocalScope sanity-checks the first-order performance
// relationship the paper reports: under GPU coherence, locally scoped
// locking (GH) must beat globally scoped locking (GD).
func TestGPUFasterWithLocalScope(t *testing.T) {
	run := func(cfg Config) uint64 {
		m := New(cfg)
		lockBase, ctrBase := mem.Addr(0x4000), mem.Addr(0x8000)
		kernel := func(ctx *workload.Ctx) {
			lock := lockBase + mem.Addr(64*ctx.CU)
			ctr := ctrBase + mem.Addr(64*ctx.CU)
			for it := 0; it < 10; it++ {
				for ctx.AtomicCAS(lock, 0, 1, coherence.ScopeLocal) != 0 {
					ctx.Compute(5)
				}
				v := ctx.Load(ctr)
				ctx.Store(ctr, v+1)
				ctx.AtomicExch(lock, 0, coherence.ScopeLocal)
			}
		}
		m.Launch(kernel, 45, 32)
		if err := m.Err(); err != nil {
			t.Fatal(err)
		}
		return m.Stats().Cycles
	}
	gd, gh := run(GD()), run(GH())
	if gh >= gd {
		t.Fatalf("GH (%d cycles) should beat GD (%d cycles) on local-scope locking", gh, gd)
	}
}

// TestDeNovoSyncReuseBeatsGPUGlobal sanity-checks the paper's Figure 3
// relationship: on globally scoped locking, DD must beat GD.
func TestDeNovoSyncReuseBeatsGPUGlobal(t *testing.T) {
	run := func(cfg Config) uint64 {
		m := New(cfg)
		lock, ctrBase := mem.Addr(0x1000), mem.Addr(0x8000)
		kernel := func(ctx *workload.Ctx) {
			for it := 0; it < 5; it++ {
				for ctx.AtomicCAS(lock, 0, 1, coherence.ScopeGlobal) != 0 {
					ctx.Compute(5)
				}
				v := ctx.Load(ctrBase)
				ctx.Store(ctrBase, v+1)
				ctx.AtomicExch(lock, 0, coherence.ScopeGlobal)
			}
		}
		m.Launch(kernel, 45, 32)
		if err := m.Err(); err != nil {
			t.Fatal(err)
		}
		return m.Stats().Cycles
	}
	gd, dd := run(GD()), run(DD())
	if dd >= gd {
		t.Fatalf("DD (%d cycles) should beat GD (%d cycles) on global locking", dd, gd)
	}
}

func TestLaunchErrorPropagates(t *testing.T) {
	m := New(GD())
	m.Launch(func(*workload.Ctx) {}, 0, 32)
	if m.Err() == nil {
		t.Fatal("invalid grid should error")
	}
	// Subsequent launches are no-ops after an error.
	m.Launch(func(*workload.Ctx) {}, 1, 32)
	if m.Err() == nil {
		t.Fatal("error must stick")
	}
}

func TestStatsString(t *testing.T) {
	m := New(GD())
	m.Launch(func(ctx *workload.Ctx) { ctx.Store(0x100, 1) }, 1, 32)
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	s := m.Stats().String()
	if s == "" {
		t.Fatal("empty stats report")
	}
	_ = fmt.Sprintf("%v", m.Config())
}

func TestDefaultsPreserveCustomValues(t *testing.T) {
	cfg := Config{Protocol: ProtoDeNovo, NumCUs: 4, SBEntries: 16, L1Bytes: 8192, L1Ways: 4}
	d := cfg.Defaults()
	if d.NumCUs != 4 || d.SBEntries != 16 || d.L1Bytes != 8192 || d.L1Ways != 4 {
		t.Fatalf("Defaults clobbered custom values: %+v", d)
	}
	if d.MaxResidentTBs != 3 || d.LaunchOverheadCycles == 0 || d.HorizonCycles == 0 {
		t.Fatalf("Defaults missing: %+v", d)
	}
}

func TestCustomGeometryRuns(t *testing.T) {
	cfg := DD()
	cfg.NumCUs = 4
	cfg.L1Bytes = 8 * 1024
	cfg.SBEntries = 32
	m := New(cfg)
	lock, ctr := mem.Addr(0x1000), mem.Addr(0x1100)
	kernel := func(c *workload.Ctx) {
		for i := 0; i < 3; i++ {
			for c.AtomicCAS(lock, 0, 1, coherence.ScopeGlobal) != 0 {
				c.Wait(7)
			}
			c.Store(ctr, c.Load(ctr)+1)
			c.AtomicStore(lock, 0, coherence.ScopeGlobal)
		}
	}
	m.Launch(kernel, 8, 32)
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	if got := m.Read(ctr); got != 24 {
		t.Fatalf("counter %d, want 24", got)
	}
}

func TestMESIConfigName(t *testing.T) {
	if MESI().Name() != "MESI" {
		t.Fatalf("MESI config name %q", MESI().Name())
	}
	if MESI().Protocol.String() != "MESI" {
		t.Fatalf("protocol string %q", MESI().Protocol.String())
	}
}

func TestInvariantCheckerCleanAfterRun(t *testing.T) {
	m := New(DD())
	kernel := func(c *workload.Ctx) {
		c.StoreStride(0x4000+mem.Addr(4*32*c.TB), make([]uint32, 32))
	}
	m.Launch(kernel, 30, 32)
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariant violated on a clean run: %v", err)
	}
}
