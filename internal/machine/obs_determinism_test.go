// Observability determinism tests: the trace recorder and epoch
// sampler ride the same single-threaded engine as the simulation, so
// the exported artifacts — the Chrome trace JSON and the metrics CSV —
// must be byte-identical across reruns and independent of GOMAXPROCS.
// Any divergence means a hook observed nondeterministic state (map
// iteration, goroutine interleaving) and would poison CI artifact
// comparisons.
package machine_test

import (
	"bytes"
	"runtime"
	"testing"

	"denovogpu"
)

// obsPairs covers both coherence protocols and both consistency
// models with short workloads so tier-1 stays fast.
var obsPairs = []goldenPair{
	{"SPM_G", "DD"},
	{"SPM_L", "GH"},
}

// obsSnapshot runs one observed simulation and concatenates its two
// artifacts; byte equality is the definition of "identical stream".
func obsSnapshot(t *testing.T, p goldenPair) []byte {
	t.Helper()
	cfg, err := denovogpu.ConfigByName(p.config)
	if err != nil {
		t.Fatal(err)
	}
	w, err := denovogpu.WorkloadByName(p.workload)
	if err != nil {
		t.Fatal(err)
	}
	var rec *denovogpu.Recorder
	sampler := denovogpu.NewSampler(500)
	if _, err := denovogpu.RunObserved(cfg, w, func(clock func() uint64) *denovogpu.Recorder {
		rec = denovogpu.NewRecorder(clock, 0)
		return rec
	}, sampler); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := sampler.Series().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestTraceDeterminismSameProcess(t *testing.T) {
	for _, p := range obsPairs {
		p := p
		t.Run(p.workload+"/"+p.config, func(t *testing.T) {
			t.Parallel()
			first := obsSnapshot(t, p)
			second := obsSnapshot(t, p)
			if !bytes.Equal(first, second) {
				t.Errorf("two in-process observed runs diverged (%d vs %d bytes)", len(first), len(second))
			}
		})
	}
}

func TestTraceDeterminismAcrossGOMAXPROCS(t *testing.T) {
	// GOMAXPROCS is process-global, so this test cannot run in
	// parallel with anything else.
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)

	p := goldenPair{"SPM_L", "DD"}
	var want []byte
	for _, procs := range []int{1, 2, orig} {
		runtime.GOMAXPROCS(procs)
		got := obsSnapshot(t, p)
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("GOMAXPROCS=%d trace diverged from GOMAXPROCS=1 (%d vs %d bytes)", procs, len(got), len(want))
		}
	}
}
