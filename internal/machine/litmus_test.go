package machine

import (
	"fmt"
	"testing"

	"denovogpu/internal/coherence"
	"denovogpu/internal/mem"
	"denovogpu/internal/workload"

	syncbench "denovogpu/internal/workload/sync"
)

// TestHRFIndirectTransitivity checks the defining property of
// HRF-Indirect (the HRF variant the paper uses): synchronization
// composes transitively across scopes. Block A writes data and
// local-releases to sibling B (same CU); B global-releases to C
// (another CU); C must observe A's write even though A and C never
// synchronized directly.
func TestHRFIndirectTransitivity(t *testing.T) {
	var (
		data  = mem.Addr(0x1000)
		lflag = mem.Addr(0x2000) // local flag, one per CU (only CU 0 used)
		gflag = mem.Addr(0x3000) // global flag
		out   = mem.Addr(0x4000)
	)
	// Blocks 0 and 15 land on CU 0 (45-block grid, first launch); block
	// 1 lands on CU 1.
	kernel := func(c *workload.Ctx) {
		switch c.TB {
		case 0: // A, on CU 0
			c.Store(data, 77)
			c.AtomicStore(lflag, 1, coherence.ScopeLocal)
		case 15: // B, also on CU 0
			for c.AtomicLoad(lflag, coherence.ScopeLocal) == 0 {
				c.Compute(15)
			}
			c.AtomicStore(gflag, 1, coherence.ScopeGlobal)
		case 1: // C, on CU 1
			for c.AtomicLoad(gflag, coherence.ScopeGlobal) == 0 {
				c.Compute(15)
			}
			c.Store(out, c.Load(data))
		}
	}
	for _, cfg := range AllConfigs() {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			m := New(cfg)
			m.Launch(kernel, 45, 32)
			if err := m.Err(); err != nil {
				t.Fatal(err)
			}
			if got := m.Read(out); got != 77 {
				t.Fatalf("C read %d, want 77 — transitive synchronization broken", got)
			}
		})
	}
}

// TestReleaseOrdersAllPriorWrites: a release must publish *every*
// program-order-earlier write, including writes to many distinct lines
// that stress buffer drain, under contention from other blocks.
func TestReleaseOrdersAllPriorWrites(t *testing.T) {
	const words = 80
	var (
		data = mem.Addr(0x1000)
		flag = mem.Addr(0x8000)
		sink = mem.Addr(0x9000)
	)
	kernel := func(c *workload.Ctx) {
		if c.TB == 0 {
			for i := 0; i < words; i++ {
				// Strided across lines to defeat coalescing.
				c.Store(data+mem.Addr(4*i*mem.WordsPerLine), uint32(i+1))
			}
			c.AtomicStore(flag, 1, coherence.ScopeGlobal)
			return
		}
		for c.AtomicLoad(flag, coherence.ScopeGlobal) == 0 {
			c.Compute(11)
		}
		var sum uint32
		for i := 0; i < words; i++ {
			sum += c.Load(data + mem.Addr(4*i*mem.WordsPerLine))
		}
		c.Store(sink+mem.Addr(4*c.TB), sum)
	}
	want := uint32(words * (words + 1) / 2)
	for _, cfg := range AllConfigs() {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			m := New(cfg)
			m.Launch(kernel, 8, 32)
			if err := m.Err(); err != nil {
				t.Fatal(err)
			}
			for tb := 1; tb < 8; tb++ {
				if got := m.Read(sink + mem.Addr(4*tb)); got != want {
					t.Fatalf("TB %d sum %d, want %d — release published partial writes", tb, got, want)
				}
			}
		})
	}
}

// TestAcquireCascade: values handed through a chain of flags across
// every CU; each link is release-acquire, so the final reader must see
// the accumulated sum (a 15-hop message-passing chain).
func TestAcquireCascade(t *testing.T) {
	var (
		vals  = mem.Addr(0x1000)
		flags = mem.Addr(0x8000)
	)
	const n = 15
	kernel := func(c *workload.Ctx) {
		i := c.TB
		if i >= n {
			return
		}
		if i > 0 {
			for c.AtomicLoad(flags+mem.Addr(64*(i-1)), coherence.ScopeGlobal) == 0 {
				c.Compute(13)
			}
		}
		prev := uint32(0)
		if i > 0 {
			prev = c.Load(vals + mem.Addr(64*(i-1)))
		}
		c.Store(vals+mem.Addr(64*i), prev+uint32(i+1))
		c.AtomicStore(flags+mem.Addr(64*i), 1, coherence.ScopeGlobal)
	}
	for _, cfg := range AllConfigs() {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			m := New(cfg)
			m.Launch(kernel, n, 32)
			if err := m.Err(); err != nil {
				t.Fatal(err)
			}
			want := uint32(n * (n + 1) / 2)
			if got := m.Read(vals + mem.Addr(64*(n-1))); got != want {
				t.Fatalf("chain sum %d, want %d", got, want)
			}
		})
	}
}

// TestDirectTransferConfigEndToEnd runs a whole benchmark with the
// direct cache-to-cache optimization enabled and verifies functional
// correctness plus that the predictor actually fired.
func TestDirectTransferConfigEndToEnd(t *testing.T) {
	cfg := DD()
	cfg.DirectTransfer = true
	m := New(cfg)
	w := syncbench.TreeBarrier(syncbench.BarrierParams{Iters: 10, Accesses: 4})
	w.Host(m)
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(m); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Get("l1.direct_reads_served") == 0 {
		t.Fatal("direct transfers never served on a remote-exchange benchmark")
	}
}

// TestSyncBackoffConfigEndToEnd runs a contended benchmark with
// DeNovoSync backoff and verifies correctness plus reduced transfers.
func TestSyncBackoffConfigEndToEnd(t *testing.T) {
	run := func(backoff bool) (uint64, error) {
		cfg := DD()
		cfg.SyncBackoff = backoff
		m := New(cfg)
		w := syncbench.Mutex(syncbench.MutexParams{Kind: syncbench.FAMutex, Iters: 25})
		w.Host(m)
		if err := m.Err(); err != nil {
			return 0, err
		}
		if err := w.Verify(m); err != nil {
			return 0, err
		}
		return m.Stats().Get("l1.ownership_transfers"), nil
	}
	base, err := run(false)
	if err != nil {
		t.Fatal(err)
	}
	bo, err := run(true)
	if err != nil {
		t.Fatal(err)
	}
	if bo >= base {
		t.Fatalf("backoff should cut ownership transfers: %d -> %d", base, bo)
	}
}

// TestSmallL1BarrierCorrectness is a regression test for a same-node
// FIFO bug: under heavy L1 pressure, a DeNovo eviction's WriteBack to a
// co-located bank was overtaken by the immediately following
// re-registration (shorter message, empty route), so the registry
// accepted the writeback after re-granting ownership and stranded the
// fresh value. An 8 KB L1 reproduces the eviction/re-register cadence.
func TestSmallL1BarrierCorrectness(t *testing.T) {
	for _, kb := range []int{4, 8} {
		kb := kb
		t.Run(fmt.Sprintf("l1=%dKB", kb), func(t *testing.T) {
			w := syncbench.TreeBarrier(syncbench.BarrierParams{Iters: 30, Accesses: 10})
			cfg := DD()
			cfg.L1Bytes = kb * 1024
			m := New(cfg)
			w.Host(m)
			if err := m.Err(); err != nil {
				t.Fatal(err)
			}
			if err := w.Verify(m); err != nil {
				t.Fatal(err)
			}
		})
	}
}
