// Determinism-under-optimization tests: the hot-path work (value-typed
// event queue, scratch-buffer forwarding, store-buffer slot pool) is
// only admissible if two runs of the same (workload, config) produce
// identical Reports — including the fired-event count, which exposes
// ordering changes that happen to cancel out in the end state — and if
// the result is independent of GOMAXPROCS, since the figure sweeps run
// many machines in parallel.
package machine_test

import (
	"bytes"
	"runtime"
	"testing"

	"denovogpu"
)

// determinismPairs exercises both coherence protocols, both
// consistency models, and the heaviest concurrency patterns (UTS work
// stealing, local-scope sync) without slowing tier-1 down.
var determinismPairs = []goldenPair{
	{"UTS", "DD"},
	{"UTS", "GH"},
	{"SPM_L", "DH"},
	{"LAVA", "GD"},
}

// snapshot renders the full Report in canonical form; byte equality
// here is the definition of "identical Report".
func snapshot(t *testing.T, p goldenPair) []byte {
	t.Helper()
	cfg, err := denovogpu.ConfigByName(p.config)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := denovogpu.RunByName(cfg, p.workload)
	if err != nil {
		t.Fatal(err)
	}
	return mustCanonical(t, rep)
}

func TestDeterminismSameProcess(t *testing.T) {
	for _, p := range determinismPairs {
		p := p
		t.Run(p.workload+"/"+p.config, func(t *testing.T) {
			t.Parallel()
			first := snapshot(t, p)
			second := snapshot(t, p)
			if !bytes.Equal(first, second) {
				t.Errorf("two in-process runs diverged:\nfirst:\n%s\nsecond:\n%s", first, second)
			}
		})
	}
}

func TestDeterminismAcrossGOMAXPROCS(t *testing.T) {
	// GOMAXPROCS is process-global, so this test cannot run in
	// parallel with anything else.
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)

	p := goldenPair{"UTS", "DD"}
	var want []byte
	for _, procs := range []int{1, 2, orig} {
		runtime.GOMAXPROCS(procs)
		got := snapshot(t, p)
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("GOMAXPROCS=%d diverged from GOMAXPROCS=1:\ngot:\n%s\nwant:\n%s", procs, got, want)
		}
	}
}
