package machine

import (
	"fmt"
	"testing"

	syncbench "denovogpu/internal/workload/sync"
)

// Machine-specific end-to-end tests for optional protocol extensions.
// The consistency-facing litmus and random-program tests live in
// internal/litmus, which runs them under every configuration against
// the litmus oracle and sequential references.

// TestDirectTransferConfigEndToEnd runs a whole benchmark with the
// direct cache-to-cache optimization enabled and verifies functional
// correctness plus that the predictor actually fired.
func TestDirectTransferConfigEndToEnd(t *testing.T) {
	cfg := DD()
	cfg.DirectTransfer = true
	m := New(cfg)
	w := syncbench.TreeBarrier(syncbench.BarrierParams{Iters: 10, Accesses: 4})
	w.Host(m)
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(m); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Get("l1.direct_reads_served") == 0 {
		t.Fatal("direct transfers never served on a remote-exchange benchmark")
	}
}

// TestSyncBackoffConfigEndToEnd runs a contended benchmark with
// DeNovoSync backoff and verifies correctness plus reduced transfers.
func TestSyncBackoffConfigEndToEnd(t *testing.T) {
	run := func(backoff bool) (uint64, error) {
		cfg := DD()
		cfg.SyncBackoff = backoff
		m := New(cfg)
		w := syncbench.Mutex(syncbench.MutexParams{Kind: syncbench.FAMutex, Iters: 25})
		w.Host(m)
		if err := m.Err(); err != nil {
			return 0, err
		}
		if err := w.Verify(m); err != nil {
			return 0, err
		}
		return m.Stats().Get("l1.ownership_transfers"), nil
	}
	base, err := run(false)
	if err != nil {
		t.Fatal(err)
	}
	bo, err := run(true)
	if err != nil {
		t.Fatal(err)
	}
	if bo >= base {
		t.Fatalf("backoff should cut ownership transfers: %d -> %d", base, bo)
	}
}

// TestSmallL1BarrierCorrectness is a regression test for a same-node
// FIFO bug: under heavy L1 pressure, a DeNovo eviction's WriteBack to a
// co-located bank was overtaken by the immediately following
// re-registration (shorter message, empty route), so the registry
// accepted the writeback after re-granting ownership and stranded the
// fresh value. An 8 KB L1 reproduces the eviction/re-register cadence.
func TestSmallL1BarrierCorrectness(t *testing.T) {
	for _, kb := range []int{4, 8} {
		kb := kb
		t.Run(fmt.Sprintf("l1=%dKB", kb), func(t *testing.T) {
			w := syncbench.TreeBarrier(syncbench.BarrierParams{Iters: 30, Accesses: 10})
			cfg := DD()
			cfg.L1Bytes = kb * 1024
			m := New(cfg)
			w.Host(m)
			if err := m.Err(); err != nil {
				t.Fatal(err)
			}
			if err := w.Verify(m); err != nil {
				t.Fatal(err)
			}
		})
	}
}
