// Golden-report regression harness.
//
// Every (workload, config) pair in a fast subset of the paper's matrix
// has its full Report — cycles, fired events, energy by component,
// flit crossings by class, and every diagnostic counter — pinned as a
// JSON file under testdata/golden/. The simulation is bit-for-bit
// deterministic, so the comparison is byte-identical: any change to
// protocol behaviour, timing, event ordering, or accounting shows up
// as a golden diff. Performance work on the hot paths (the event
// engine, the L2 banks, the NoC, the store buffers) must leave every
// golden byte untouched.
//
// Regenerate after an intentional model change with:
//
//	go test ./internal/machine -run TestGoldenReports -update
//
// and review the diff like any other code change.
package machine_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"denovogpu"
	"denovogpu/internal/stats"
)

var update = flag.Bool("update", false, "rewrite testdata/golden files with current simulation output")

// goldenReport is the serialized form of a Report. Maps are used for
// the named dimensions because encoding/json emits map keys in sorted
// order, making the output canonical.
type goldenReport struct {
	Config   string             `json:"config"`
	Workload string             `json:"workload"`
	Cycles   uint64             `json:"cycles"`
	Events   uint64             `json:"events"`
	EnergyPJ map[string]float64 `json:"energy_pj"`
	Flits    map[string]uint64  `json:"flits"`
	Counters map[string]uint64  `json:"counters"`
}

func toGolden(r denovogpu.Report) goldenReport {
	g := goldenReport{
		Config:   r.Config,
		Workload: r.Workload,
		Cycles:   r.Cycles,
		Events:   r.Events,
		EnergyPJ: make(map[string]float64),
		Flits:    make(map[string]uint64),
		Counters: make(map[string]uint64),
	}
	for c := stats.Component(0); c < stats.NumComponents; c++ {
		g.EnergyPJ[c.String()] = r.EnergyPJ[c]
	}
	for c := stats.TrafficClass(0); c < stats.NumTrafficClasses; c++ {
		g.Flits[c.String()] = r.Flits[c]
	}
	for _, n := range r.Stats.Names() {
		g.Counters[n] = r.Stats.Get(n)
	}
	return g
}

// goldenPair is one pinned (workload, config) combination.
type goldenPair struct {
	workload string
	config   string
}

// goldenPairs is the pinned fast subset: every paper category is
// represented (no-sync applications, globally scoped sync, locally
// scoped/hybrid sync including UTS), and the cheap workloads run under
// all five configurations. The globally scoped microbenchmarks are
// orders of magnitude slower under the DeNovo configs, so SPMBO_G is
// pinned under the two GPU-coherence configs only.
func goldenPairs() []goldenPair {
	var pairs []goldenPair
	allCfg := []string{"GD", "GH", "DD", "DD+RO", "DH"}
	for _, w := range []string{"LAVA", "ST", "NN", "BP", "UTS", "SPM_L"} {
		for _, c := range allCfg {
			pairs = append(pairs, goldenPair{w, c})
		}
	}
	for _, c := range []string{"GD", "GH"} {
		pairs = append(pairs, goldenPair{"SPMBO_G", c})
	}
	// The graph-analytics family runs under the two fixed paper
	// endpoints it compares (GPU writethrough and DeNovo), the best
	// fixed DeNovo variant, and the per-phase specialized extension
	// whose phase-transition drains these goldens pin.
	for _, w := range []string{"BFS", "PR", "SSSP"} {
		for _, c := range []string{"GD", "DD", "DD+RO", "SPEC"} {
			pairs = append(pairs, goldenPair{w, c})
		}
	}
	return pairs
}

func goldenFile(p goldenPair) string {
	cfg := strings.ReplaceAll(p.config, "+", "-")
	return filepath.Join("testdata", "golden", fmt.Sprintf("%s_%s.json", p.workload, cfg))
}

func marshalGolden(g goldenReport) []byte {
	out, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(out, '\n')
}

// TestGoldenReports runs the whole pinned matrix through the parallel
// orchestrator (api.RunMatrix at the default worker count) and compares
// every cell byte-for-byte against its golden file. The goldens were
// recorded from serial runs, so a pass here also proves the runner's
// determinism contract: parallel execution leaves every report
// byte-identical.
func TestGoldenReports(t *testing.T) {
	pairs := goldenPairs()
	cells := make([]denovogpu.MatrixCell, len(pairs))
	for i, p := range pairs {
		cfg, err := denovogpu.ConfigByName(p.config)
		if err != nil {
			t.Fatal(err)
		}
		w, err := denovogpu.WorkloadByName(p.workload)
		if err != nil {
			t.Fatal(err)
		}
		cells[i] = denovogpu.MatrixCell{Config: cfg, Workload: w}
	}
	results, err := denovogpu.RunMatrix(cells, denovogpu.MatrixOptions{KeepGoing: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		p, res := p, results[i]
		t.Run(p.workload+"/"+p.config, func(t *testing.T) {
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			got := marshalGolden(toGolden(res.Report))
			path := goldenFile(p)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("report for %s under %s deviates from golden %s;\nrerun with -update and review the diff if the change is intentional.\ngot:\n%s\nwant:\n%s",
					p.workload, p.config, path, got, want)
			}
		})
	}
}

// TestGoldenNoStrays fails when testdata/golden contains files no
// current (workload, config) pair produces — stale goldens silently
// stop guarding anything.
func TestGoldenNoStrays(t *testing.T) {
	expected := make(map[string]bool)
	for _, p := range goldenPairs() {
		expected[filepath.Base(goldenFile(p))] = true
	}
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Skipf("no golden directory yet: %v", err)
	}
	for _, e := range entries {
		if !expected[e.Name()] {
			t.Errorf("stray golden file %s (not produced by any pinned pair)", e.Name())
		}
	}
}
