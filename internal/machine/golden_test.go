// Golden-report regression harness.
//
// Every (workload, config) pair in a fast subset of the paper's matrix
// has its full Report — cycles, fired events, energy by component,
// flit crossings by class, and every diagnostic counter — pinned as a
// JSON file under testdata/golden/. The simulation is bit-for-bit
// deterministic, so the comparison is byte-identical: any change to
// protocol behaviour, timing, event ordering, or accounting shows up
// as a golden diff. Performance work on the hot paths (the event
// engine, the L2 banks, the NoC, the store buffers) must leave every
// golden byte untouched.
//
// The pinned cell list and the canonical serialization are exported
// from the api package (denovogpu.PinnedCells, denovogpu.MarshalReport)
// because the sweep service reuses both: a distributed or cached sweep
// of the pinned matrix must reproduce these exact files (the sweepd-e2e
// CI job and internal/sweepd's golden test diff against them).
//
// Regenerate after an intentional model change with:
//
//	go test ./internal/machine -run TestGoldenReports -update
//
// and review the diff like any other code change.
package machine_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"denovogpu"
)

var update = flag.Bool("update", false, "rewrite testdata/golden files with current simulation output")

func goldenPath(workload, config string) string {
	return filepath.Join("testdata", "golden", denovogpu.ReportFileName(workload, config))
}

// goldenPair is the package-local (workload, config) shorthand the
// determinism, sanitizer-identity and fast-path suites share.
type goldenPair struct {
	workload string
	config   string
}

// goldenPairs mirrors the exported pinned-cell list as pairs.
func goldenPairs() []goldenPair {
	specs := denovogpu.PinnedCells()
	out := make([]goldenPair, len(specs))
	for i, s := range specs {
		out[i] = goldenPair{s.Workload, s.Config.Name}
	}
	return out
}

// mustCanonical serializes a report with the canonical encoder; byte
// equality of two canonical serializations is the package's definition
// of "identical Report".
func mustCanonical(t *testing.T, rep denovogpu.Report) []byte {
	t.Helper()
	b, err := denovogpu.MarshalReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestGoldenReports runs the whole pinned matrix through the parallel
// orchestrator (api.RunMatrix at the default worker count) and compares
// every cell byte-for-byte against its golden file. The goldens were
// recorded from serial runs, so a pass here also proves the runner's
// determinism contract: parallel execution leaves every report
// byte-identical.
func TestGoldenReports(t *testing.T) {
	specs := denovogpu.PinnedCells()
	cells := make([]denovogpu.MatrixCell, len(specs))
	for i, s := range specs {
		cell, err := s.Cell()
		if err != nil {
			t.Fatal(err)
		}
		cells[i] = cell
	}
	results, err := denovogpu.RunMatrix(cells, denovogpu.MatrixOptions{KeepGoing: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range specs {
		s, res := s, results[i]
		t.Run(s.Workload+"/"+s.Config.Name, func(t *testing.T) {
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			got := mustCanonical(t, res.Report)
			path := goldenPath(s.Workload, s.Config.Name)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("report for %s under %s deviates from golden %s;\nrerun with -update and review the diff if the change is intentional.\ngot:\n%s\nwant:\n%s",
					s.Workload, s.Config.Name, path, got, want)
			}
		})
	}
}

// TestGoldenNoStrays fails when testdata/golden contains files no
// current (workload, config) pair produces — stale goldens silently
// stop guarding anything.
func TestGoldenNoStrays(t *testing.T) {
	expected := make(map[string]bool)
	for _, s := range denovogpu.PinnedCells() {
		expected[denovogpu.ReportFileName(s.Workload, s.Config.Name)] = true
	}
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Skipf("no golden directory yet: %v", err)
	}
	for _, e := range entries {
		if !expected[e.Name()] {
			t.Errorf("stray golden file %s (not produced by any pinned pair)", e.Name())
		}
	}
}

// TestMarshalReportRoundTrip pins the canonical encoding's
// invertibility on a real report: UnmarshalReport(MarshalReport(r))
// re-serializes to the identical bytes. The sweep service's remote
// mode depends on this — a report that survives the wire and parses
// back must still diff clean against its golden.
func TestMarshalReportRoundTrip(t *testing.T) {
	rep, err := denovogpu.RunByName(denovogpu.DD(), "SPM_L")
	if err != nil {
		t.Fatal(err)
	}
	b, err := denovogpu.MarshalReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	back, err := denovogpu.UnmarshalReport(b)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := denovogpu.MarshalReport(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Errorf("round trip changed the canonical bytes:\nfirst:\n%s\nsecond:\n%s", b, b2)
	}
	if back.Cycles != rep.Cycles || back.Events != rep.Events || back.TotalFlits() != rep.TotalFlits() {
		t.Errorf("round trip changed measurements: %+v vs %+v", back, rep)
	}
}
