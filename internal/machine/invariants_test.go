// Sanitizer identity tests: arming Config.Invariants must not change a
// single byte of any report. The sanitizer's hot-path assertions and
// quiesced-state checks only observe — they schedule no events and
// touch no counters — so an armed run of a pinned (workload, config)
// pair must reproduce its committed golden exactly. A timing or
// accounting side effect in any check shows up here as a golden diff.
package machine_test

import (
	"bytes"
	"os"
	"testing"

	"denovogpu"
)

// invariantsPairs covers both protocols, both models, the lazy
// ablation's home config, and a per-phase specialized graph cell
// (whose phase-transition drains run the quiesced-state suites at
// every protocol switch) without slowing tier-1 down.
var invariantsPairs = []goldenPair{
	{"UTS", "DH"},
	{"SPM_L", "DD"},
	{"LAVA", "GD"},
	{"ST", "GH"},
	{"BFS", "SPEC"},
}

func TestInvariantsGoldenIdentical(t *testing.T) {
	for _, p := range invariantsPairs {
		p := p
		t.Run(p.workload+"/"+p.config, func(t *testing.T) {
			t.Parallel()
			cfg, err := denovogpu.ConfigByName(p.config)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Invariants = true
			rep, err := denovogpu.RunByName(cfg, p.workload)
			if err != nil {
				t.Fatal(err)
			}
			got := mustCanonical(t, rep)
			want, err := os.ReadFile(goldenPath(p.workload, p.config))
			if err != nil {
				t.Fatalf("missing golden: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("armed sanitizer changed the report for %s under %s:\ngot:\n%s\nwant:\n%s",
					p.workload, p.config, got, want)
			}
		})
	}
}
