package machine

import (
	"testing"

	"denovogpu/internal/mem"
	"denovogpu/internal/noc"
	"denovogpu/internal/workload"
)

// countRegistered sums the words the L2 registry records as owned by
// some L1 across all banks.
func countRegistered(m *Machine) int {
	n := 0
	for node := noc.NodeID(0); node < noc.Nodes; node++ {
		m.banks[node].ForEachRegistered(func(mem.Word, noc.NodeID) { n++ })
	}
	return n
}

// TestPhaseDrainLitmus is the litmus slice for the phase-transition
// drain contract: a pull kernel under the specialized configuration's
// DeNovo phase registers a spread of words (plain stores register
// their targets), then the next push launch forces a DeNovo ->
// writethrough switch. The drain must retire every registration back
// to the home banks before the GPU protocol attaches — a registered
// word surviving the switch is exactly the protocol-mixing hazard the
// phase-drain invariant (mcheck suite) exists to rule out. The test
// pins all four steps of the contract: values land (retire preserves
// data), the registry empties (verify), and the follow-on push kernel
// reads the drained values through the new protocol.
func TestPhaseDrainLitmus(t *testing.T) {
	cfg := Specialized()
	cfg.Invariants = true // arm the quiesced-state suites at every switch
	m := New(cfg)

	const n = 256
	src, dst := mem.Addr(0x10000), mem.Addr(0x20000)
	const threads = 32
	// Pull phase (DeNovo): every thread block stores to its own slice,
	// registering those words to its CU's L1.
	m.LaunchPhase(workload.PhasePull, func(c *workload.Ctx) {
		base := c.TB * threads
		out := make([]uint32, threads)
		for i := range out {
			out[i] = uint32(base + i + 1)
		}
		c.StoreStride(src+mem.Addr(4*base), out)
	}, n/threads, threads)
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	reg := countRegistered(m)
	if reg == 0 {
		t.Fatal("pull kernel registered no words; the litmus is vacuous")
	}
	t.Logf("%d words registered before the switch", reg)

	// Push phase (GPU writethrough): forces the drain, then reads the
	// drained values under the new protocol and writes them through.
	m.LaunchPhase(workload.PhasePush, func(c *workload.Ctx) {
		base := c.TB * threads
		vals := c.LoadStride(src + mem.Addr(4*base))
		c.StoreStride(dst+mem.Addr(4*base), vals)
	}, n/threads, threads)
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}

	if got := countRegistered(m); got != 0 {
		t.Fatalf("%d words still registered after the DeNovo -> writethrough drain", got)
	}
	// The specialized base phase is already DeNovo/DRF, so entering the
	// pull phase is not a switch; only pull -> push is.
	if got := m.Stats().Get("phase_switches"); got != 1 {
		t.Fatalf("phase_switches = %d, want 1 (pull -> push)", got)
	}
	for i := 0; i < n; i++ {
		if got := m.Read(dst + mem.Addr(4*i)); got != uint32(i+1) {
			t.Fatalf("dst[%d] = %d, want %d: a drained value was lost or stale", i, got, i+1)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPhaseDrainRoundTrip switches DeNovo -> GPU -> DeNovo and back
// again, writing in every phase, to check that repeated drains neither
// lose data nor let stale clean copies resurface after a protocol
// returns (step 3 of the contract: non-read-only valid words are
// dropped on the way out).
func TestPhaseDrainRoundTrip(t *testing.T) {
	m := New(Specialized())
	const threads = 32
	addr := mem.Addr(0x30000)
	phases := []string{workload.PhasePull, workload.PhasePush, workload.PhasePull, workload.PhasePush}
	for round, ph := range phases {
		want := uint32(round)
		m.LaunchPhase(ph, func(c *workload.Ctx) {
			if c.TB != 0 {
				return
			}
			vals := make([]uint32, threads)
			for i := range vals {
				vals[i] = want + uint32(i)
			}
			c.StoreStride(addr, vals)
		}, 2, threads)
		if err := m.Err(); err != nil {
			t.Fatalf("round %d (%s): %v", round, ph, err)
		}
		for i := 0; i < threads; i++ {
			if got := m.Read(addr + mem.Addr(4*i)); got != want+uint32(i) {
				t.Fatalf("round %d (%s): word %d = %d, want %d", round, ph, i, got, want+uint32(i))
			}
		}
	}
	if got := m.Stats().Get("phase_switches"); got != 3 {
		t.Fatalf("phase_switches = %d, want 3 (the first pull launch matches the base phase)", got)
	}
	if got := countRegistered(m); got != 0 {
		t.Fatalf("%d words registered while the GPU protocol is active", got)
	}
}

// TestPhaseDrainFirstSwitchFree pins the drain's timing model: a
// switch before any kernel has run in the active phase costs no
// simulated time (nothing is in flight to quiesce), and a real switch
// after a kernel overlaps its PhaseDrainCycles with the next launch's
// dispatch overhead, so at the default budgets a drain adds zero
// end-to-end latency but still executes and is still verified.
func TestPhaseDrainFirstSwitchFree(t *testing.T) {
	kernel := func(c *workload.Ctx) {
		c.Store(0x40000+mem.Addr(4*c.TB), uint32(c.TB))
	}
	run := func(t *testing.T, cfg Config, phases []string) uint64 {
		m := New(cfg)
		for _, ph := range phases {
			m.LaunchPhase(ph, kernel, 4, 32)
		}
		if err := m.Err(); err != nil {
			t.Fatal(err)
		}
		if got := m.Stats().Get("phase_switches"); got != uint64(len(phases)) {
			t.Fatalf("phase_switches = %d, want %d", got, len(phases))
		}
		return m.Stats().Cycles
	}

	free := Specialized()
	free.PhaseDrainCycles = 0
	def := Specialized()
	if def.PhaseDrainCycles > def.LaunchOverheadCycles {
		t.Fatalf("default PhaseDrainCycles %d exceeds LaunchOverheadCycles %d; the overlap model assumes it fits",
			def.PhaseDrainCycles, def.LaunchOverheadCycles)
	}
	slow := Specialized()
	slow.PhaseDrainCycles = slow.LaunchOverheadCycles + 1000

	// A switch before any kernel has run quiesces nothing: even an
	// oversized drain budget must cost zero simulated time.
	push := []string{workload.PhasePush}
	if got, want := run(t, slow, push), run(t, free, push); got != want {
		t.Fatalf("first switch cost %d cycles over the zero-budget baseline of %d; it should be free", got-want, want)
	}

	// A real switch (after the push kernel) runs its drain concurrently
	// with the next launch's dispatch: at the default budgets it adds
	// zero end-to-end latency.
	pushPull := []string{workload.PhasePush, workload.PhasePull}
	defCycles, freeCycles := run(t, def, pushPull), run(t, free, pushPull)
	if defCycles != freeCycles {
		t.Fatalf("default drain added %d cycles; it should hide under the dispatch overhead", defCycles-freeCycles)
	}

	// The overlap credit is capped at the dispatch overhead: a budget
	// above it must surface as real latency.
	if slowCycles := run(t, slow, pushPull); slowCycles <= defCycles {
		t.Fatalf("oversized drain budget (%d cycles) did not add latency: %d vs %d cycles",
			slow.PhaseDrainCycles, slowCycles, defCycles)
	}
}
