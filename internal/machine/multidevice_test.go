// Multi-device regression suite: the Devices > 1 machine (per-device
// mesh domains joined by internal/interconnect, hierarchical DeNovo
// registration, per-device counter namespaces) must verify real
// workloads, simulate deterministically, and — the load-bearing
// property — leave every single-device byte untouched.
package machine_test

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"denovogpu"
	"denovogpu/internal/figures"
	"denovogpu/internal/machine"
	"denovogpu/internal/stats"
)

// xdevConfig resolves a paper config at a device count through the
// wire-spec path, as a remote or cached cell would.
func xdevConfig(t *testing.T, name string, devices int) denovogpu.Config {
	t.Helper()
	cfg, err := (denovogpu.ConfigSpec{Name: name, Devices: devices}).Resolve()
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestExplicitSingleDeviceGoldenIdentity pins the tentpole's
// compatibility contract from the explicit side: a config that spells
// Devices: 1 out loud (rather than defaulting) reproduces the
// committed golden bytes. Combined with TestGoldenReports (implicit
// default), single-device behavior is provably unchanged.
func TestExplicitSingleDeviceGoldenIdentity(t *testing.T) {
	for _, pair := range []goldenPair{{"UTS", "DD"}, {"ST", "GD"}, {"SPM_L", "DH"}} {
		pair := pair
		t.Run(pair.workload+"/"+pair.config, func(t *testing.T) {
			t.Parallel()
			rep, err := denovogpu.RunByName(xdevConfig(t, pair.config, 1), pair.workload)
			if err != nil {
				t.Fatal(err)
			}
			got := mustCanonical(t, rep)
			want, err := os.ReadFile(goldenPath(pair.workload, pair.config))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("explicit Devices:1 run of %s under %s deviates from the committed golden", pair.workload, pair.config)
			}
		})
	}
}

// TestTwoDeviceDeterminism: a 2-device simulation is bit-for-bit
// repeatable — same cycles, events, energy, flits, and every counter —
// whether cells run serially or through the parallel orchestrator.
func TestTwoDeviceDeterminism(t *testing.T) {
	cfg := xdevConfig(t, "DD", 2)
	w, err := denovogpu.WorkloadByName("UTSx2")
	if err != nil {
		t.Fatal(err)
	}
	serial, err := denovogpu.Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	results, err := denovogpu.RunMatrix([]denovogpu.MatrixCell{
		{Config: cfg, Workload: w}, {Config: cfg, Workload: w},
	}, denovogpu.MatrixOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ref := mustCanonical(t, serial)
	for i, res := range results {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if !bytes.Equal(ref, mustCanonical(t, res.Report)) {
			t.Errorf("parallel 2-device run %d diverged from the serial run", i)
		}
	}
	if serial.Flits[stats.TrafficXDev] == 0 {
		t.Error("2-device UTS crossed zero inter-device flits; the link is not being exercised")
	}
}

// TestTwoDeviceSuiteVerifies runs a spread of the 2-device sync suite
// under 2-device DeNovo and GPU-coherence machines. Every workload
// computes real results and self-verifies, so a pass means the
// hierarchical registration and cross-device invalidation paths
// produce correct memory semantics under load, not just under litmus
// microscopes.
func TestTwoDeviceSuiteVerifies(t *testing.T) {
	if testing.Short() {
		t.Skip("24-cell 2-device matrix in -short mode")
	}
	benches := []string{"SPM_Gx2", "FAM_Gx2", "SPM_Lx2", "SS_Lx2", "TB_LGx2", "UTSx2"}
	configs := []denovogpu.Config{
		xdevConfig(t, "DD", 2), xdevConfig(t, "GD", 2),
		xdevConfig(t, "DH", 2), xdevConfig(t, "GH", 2),
	}
	var cells []denovogpu.MatrixCell
	for _, b := range benches {
		w, err := denovogpu.WorkloadByName(b)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range configs {
			cells = append(cells, denovogpu.MatrixCell{Config: c, Workload: w})
		}
	}
	results, err := denovogpu.RunMatrix(cells, denovogpu.MatrixOptions{KeepGoing: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		cell := cells[i]
		if res.Err != nil {
			t.Errorf("%s under %s: %v", cell.Workload.Name, cell.Config.Name(), res.Err)
			continue
		}
		if res.Report.Flits[stats.TrafficXDev] == 0 {
			// Line homes interleave across both devices' L2 banks, so
			// even device-local suites touch the link.
			t.Errorf("%s under %s: zero XDev flits", cell.Workload.Name, cell.Config.Name())
		}
	}
}

// TestDeviceCounterNamespaces: per-device stats views prefix counter
// keys with the device index, so the two devices' controllers never
// collide in the machine-wide counter map.
func TestDeviceCounterNamespaces(t *testing.T) {
	rep, err := denovogpu.RunByName(xdevConfig(t, "DD", 2), "SPM_Gx2")
	if err != nil {
		t.Fatal(err)
	}
	var d0, d1 bool
	for _, n := range rep.Stats.Names() {
		switch {
		case len(n) > 3 && n[:3] == stats.DevPrefix(0):
			d0 = true
		case len(n) > 3 && n[:3] == stats.DevPrefix(1):
			d1 = true
		}
	}
	if !d0 || !d1 {
		t.Errorf("device-prefixed counters missing (d0 %v, d1 %v); names: %v", d0, d1, rep.Stats.Names())
	}
}

// TestMultiDeviceConfigNames: device count suffixes the configuration
// name, so reports and cache artifacts are self-describing.
func TestMultiDeviceConfigNames(t *testing.T) {
	cfg := denovogpu.DD()
	if cfg.Name() != "DD" {
		t.Fatalf("base name %q", cfg.Name())
	}
	cfg.Devices = 2
	if cfg.Name() != "DDx2" {
		t.Fatalf("2-device name %q, want DDx2", cfg.Name())
	}
}

// TestMESIRejectsMultiDevice: the MESI extension is single-device
// only; a multi-device MESI machine must refuse to build rather than
// silently simulate a broken directory.
func TestMESIRejectsMultiDevice(t *testing.T) {
	cfg := machine.MESI()
	cfg.Devices = 2
	defer func() {
		if recover() == nil {
			t.Error("machine.New accepted a 2-device MESI config")
		}
	}()
	machine.New(cfg)
}

// TestCrossDeviceSyncCliff: the headline number of the PR — on the
// same 2-device machine, synchronization between CUs on one device is
// strictly cheaper than between CUs on different devices. EXPERIMENTS.md
// records the pinned measurement; this guards the direction, and that
// the device-local pair's traffic genuinely stays off the link while
// the cross-device pair genuinely uses it.
func TestCrossDeviceSyncCliff(t *testing.T) {
	cliff, err := figures.XDevCliff("DD", 2, 25)
	if err != nil {
		t.Fatal(err)
	}
	if cliff.Cross.Cycles <= cliff.Local.Cycles {
		t.Errorf("cross-device ping-pong (%d cycles) not more expensive than device-local (%d cycles)",
			cliff.Cross.Cycles, cliff.Local.Cycles)
	}
	if cliff.Local.XDevFlits != 0 {
		t.Errorf("device-local pair crossed the inter-device link (%d flits); flag address should home on device 0", cliff.Local.XDevFlits)
	}
	if cliff.Cross.XDevFlits == 0 {
		t.Error("cross-device pair crossed zero inter-device flits")
	}
	if got := figures.FormatXDevCliff(cliff); !strings.Contains(got, "cycle ratio:") {
		t.Errorf("cliff rendering missing the ratio line:\n%s", got)
	}
	t.Logf("sync cliff: device-local %d cycles, cross-device %d cycles (%.2fx)",
		cliff.Local.Cycles, cliff.Cross.Cycles, cliff.Ratio())
}
