package resultcache_test

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"denovogpu"
	"denovogpu/internal/resultcache"
)

func key(t *testing.T, version string, s denovogpu.CellSpec) string {
	t.Helper()
	k, err := denovogpu.CellKey(version, s)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func gdCell(w string) denovogpu.CellSpec {
	return denovogpu.CellSpec{Config: denovogpu.ConfigSpec{Name: "GD"}, Workload: w}
}

// TestKeyCanonicalization is the cache-key contract: keys are blind to
// how a configuration is *spelled* and sensitive to everything that
// changes what a run would *measure*.
func TestKeyCanonicalization(t *testing.T) {
	base := key(t, "v1", gdCell("LAVA"))
	if !strings.HasPrefix(base, "") || len(base) != 64 {
		t.Fatalf("key %q is not hex sha256", base)
	}

	// JSON field order of a raw config is irrelevant.
	var a, b denovogpu.CellSpec
	if err := json.Unmarshal([]byte(`{"workload":"LAVA","config":{"config":{"Protocol":0,"Model":0,"NumCUs":15}}}`), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(`{"config":{"config":{"NumCUs":15,"Model":0,"Protocol":0}},"workload":"LAVA"}`), &b); err != nil {
		t.Fatal(err)
	}
	if key(t, "v1", a) != key(t, "v1", b) {
		t.Error("field order changed the key")
	}

	// Defaulted fields and explicitly spelled default values coincide,
	// and a by-name spec matches the raw struct it resolves to.
	cfg := denovogpu.GD()
	explicit := key(t, "v1", denovogpu.CellSpec{Config: denovogpu.ConfigSpec{Raw: &cfg}, Workload: "LAVA"})
	zero := denovogpu.Config{} // all machine parameters defaulted
	zeroKey := key(t, "v1", denovogpu.CellSpec{Config: denovogpu.ConfigSpec{Raw: &zero}, Workload: "LAVA"})
	if base != explicit || base != zeroKey {
		t.Errorf("spellings of GD diverge: name=%s explicit=%s zero=%s", base, explicit, zeroKey)
	}

	// Each input dimension changes the key.
	if key(t, "v2", gdCell("LAVA")) == base {
		t.Error("code version not in the key")
	}
	if key(t, "v1", denovogpu.CellSpec{Config: denovogpu.ConfigSpec{Name: "DD"}, Workload: "LAVA"}) == base {
		t.Error("config not in the key")
	}
	if key(t, "v1", gdCell("ST")) == base {
		t.Error("workload not in the key")
	}
	bfs0 := key(t, "v1", denovogpu.CellSpec{Config: denovogpu.ConfigSpec{Name: "GD"}, Workload: "BFS"})
	bfs7 := key(t, "v1", denovogpu.CellSpec{Config: denovogpu.ConfigSpec{Name: "GD"}, Workload: "BFS", Seed: 7})
	if bfs0 == bfs7 {
		t.Error("seed not in the key")
	}
	// And a single behavioral config field flips it.
	tweaked := denovogpu.GD()
	tweaked.SBEntries = 128
	if key(t, "v1", denovogpu.CellSpec{Config: denovogpu.ConfigSpec{Raw: &tweaked}, Workload: "LAVA"}) == base {
		t.Error("config field change not in the key")
	}
	// Unresolvable specs error instead of hashing garbage.
	if _, err := denovogpu.CellKey("v1", denovogpu.CellSpec{Workload: "LAVA"}); err == nil {
		t.Error("empty config spec produced a key")
	}
}

func mustOpen(t *testing.T, dir string, max int64) *resultcache.Cache {
	t.Helper()
	c, err := resultcache.Open(dir, max)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func fakeKey(seed byte) string {
	sum := sha256.Sum256([]byte{seed})
	return hex.EncodeToString(sum[:])
}

func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, 0)
	k := fakeKey(1)
	payload := []byte("{\n  \"cycles\": 42\n}\n")
	if _, ok, err := c.Get(k); ok || err != nil {
		t.Fatalf("empty cache Get = %v, %v", ok, err)
	}
	if err := c.Put(k, payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Get(k)
	if err != nil || !ok || string(got) != string(payload) {
		t.Fatalf("Get = %q, %v, %v", got, ok, err)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}

	// Entries survive reopen.
	c2 := mustOpen(t, dir, 0)
	got, ok, err = c2.Get(k)
	if err != nil || !ok || string(got) != string(payload) {
		t.Fatalf("after reopen Get = %q, %v, %v", got, ok, err)
	}

	// Invalid keys are rejected outright.
	if err := c.Put("../escape", payload); err == nil {
		t.Error("invalid key accepted by Put")
	}
	if _, _, err := c.Get("nope"); err == nil {
		t.Error("invalid key accepted by Get")
	}
}

// TestCorruptEntryRejected is the verify-on-read wall: flipped payload
// bytes, truncation, and a gutted envelope must all be detected,
// reported, and converted into a miss with the entry removed.
func TestCorruptEntryRejected(t *testing.T) {
	for _, tc := range []struct {
		name    string
		corrupt func(path string, t *testing.T)
	}{
		{"bit-flip", func(path string, t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-2] ^= 0x40
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated", func(path string, t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"no-header", func(path string, t *testing.T) {
			if err := os.WriteFile(path, []byte("garbage without newline"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			c := mustOpen(t, dir, 0)
			k := fakeKey(9)
			if err := c.Put(k, []byte("precious deterministic bytes\n")); err != nil {
				t.Fatal(err)
			}
			tc.corrupt(filepath.Join(dir, k[:2], k), t)

			_, ok, err := c.Get(k)
			if ok {
				t.Fatal("corrupt entry served as a hit")
			}
			var ce *resultcache.CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("Get error = %v, want CorruptError", err)
			}
			// The entry is gone: next Get is a clean miss, and the file
			// was deleted.
			if _, ok, err := c.Get(k); ok || err != nil {
				t.Fatalf("after rejection Get = %v, %v, want clean miss", ok, err)
			}
			if _, err := os.Stat(filepath.Join(dir, k[:2], k)); !os.IsNotExist(err) {
				t.Errorf("corrupt file still on disk: %v", err)
			}
			if st := c.Stats(); st.VerifyFailures != 1 {
				t.Errorf("verify failures = %d, want 1", st.VerifyFailures)
			}
		})
	}
}

// TestLRUEviction bounds the store: total bytes stay under the cap,
// eviction order is least-recently-*used* (a Get refreshes recency,
// not just a Put), and the newest entry always survives.
func TestLRUEviction(t *testing.T) {
	dir := t.TempDir()
	payload := make([]byte, 1000)
	// Envelope adds ~90 bytes; cap fits 3 entries but not 4.
	c := mustOpen(t, dir, 3500)
	for i := byte(0); i < 3; i++ {
		if err := c.Put(fakeKey(i), payload); err != nil {
			t.Fatal(err)
		}
	}
	// Touch entry 0 so entry 1 is now the least recently used.
	if _, ok, _ := c.Get(fakeKey(0)); !ok {
		t.Fatal("entry 0 missing before eviction")
	}
	if err := c.Put(fakeKey(3), payload); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Bytes > 3500 {
		t.Errorf("cache holds %d bytes, cap is 3500", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Error("no evictions recorded")
	}
	if _, ok, _ := c.Get(fakeKey(1)); ok {
		t.Error("LRU entry 1 survived; expected it evicted")
	}
	for _, i := range []byte{0, 2, 3} {
		if _, ok, _ := c.Get(fakeKey(i)); !ok {
			t.Errorf("entry %d evicted; expected it kept", i)
		}
	}

	// A cap smaller than one entry still keeps the newest entry (no
	// thrash-to-empty), but nothing else.
	tiny := mustOpen(t, t.TempDir(), 10)
	if err := tiny.Put(fakeKey(10), payload); err != nil {
		t.Fatal(err)
	}
	if err := tiny.Put(fakeKey(11), payload); err != nil {
		t.Fatal(err)
	}
	if n := tiny.Len(); n != 1 {
		t.Errorf("tiny cache has %d entries, want exactly the newest", n)
	}
	if _, ok, _ := tiny.Get(fakeKey(11)); !ok {
		t.Error("newest entry evicted from tiny cache")
	}

	// Reopen enforces the cap against what is on disk and preserves
	// mtime-based recency.
	re := mustOpen(t, dir, 2300) // fits 2 of the 3 surviving entries
	if re.Len() != 2 {
		t.Errorf("reopen kept %d entries, want 2", re.Len())
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := mustOpen(t, t.TempDir(), 50_000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := fakeKey(byte(i % 16))
				if i%3 == 0 {
					if err := c.Put(k, []byte(fmt.Sprintf("payload %d", i%16))); err != nil {
						t.Error(err)
						return
					}
				} else if data, ok, err := c.Get(k); err != nil {
					t.Error(err)
					return
				} else if ok && string(data) != fmt.Sprintf("payload %d", i%16) {
					t.Errorf("goroutine %d read wrong payload %q", g, data)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
