// Package resultcache is the sweep service's content-addressed result
// store: simulation reports keyed by the canonical cell key
// (api.CellKey — SHA-256 over code version, canonicalized config,
// workload and seed), held on disk with an LRU size cap.
//
// The store is deliberately paranoid in both directions:
//
//   - Keys address *inputs*: two sweeps that spell the same simulation
//     differently share an entry, and any input that changes simulated
//     behavior — including the code version — selects a different one.
//   - Payloads are verified on read: every entry carries the SHA-256 of
//     its payload, recomputed on Get. A corrupted entry is rejected,
//     deleted, and reported as a miss, so a bit-rotted cache can cost a
//     re-simulation but can never serve wrong bytes. The simulator's
//     determinism makes the end-to-end wall cheap: a hit must be
//     byte-identical to what a fresh run would produce, which the
//     golden harness asserts.
//
// A Cache is safe for concurrent use by one process. Multi-process
// sharing of a directory is not supported (the coordinator owns the
// cache; workers stay stateless).
package resultcache

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// header prefixes every entry file: format tag, payload digest,
// payload length. The digest is what Get verifies.
const headerFormat = "denovogpu-cas/v1 %s %d\n"

// CorruptError reports an entry whose payload no longer matches its
// recorded digest (or whose envelope is unreadable). The entry has
// been removed; callers should treat the Get as a miss.
type CorruptError struct {
	Key    string
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("resultcache: entry %s corrupt: %s", e.Key, e.Reason)
}

// Stats is a snapshot of cache effectiveness counters.
type Stats struct {
	Hits           uint64 `json:"hits"`
	Misses         uint64 `json:"misses"`
	Puts           uint64 `json:"puts"`
	Evictions      uint64 `json:"evictions"`
	VerifyFailures uint64 `json:"verify_failures"`
	Entries        int    `json:"entries"`
	Bytes          int64  `json:"bytes"`
	MaxBytes       int64  `json:"max_bytes"`
}

type entry struct {
	key  string
	size int64 // payload + header bytes on disk
	elem *list.Element
}

// Cache is a disk-backed content-addressed store with LRU eviction.
type Cache struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	entries map[string]*entry
	lru     *list.List // front = most recently used; values are *entry
	bytes   int64
	stats   Stats
}

// Open loads (or creates) a cache rooted at dir. maxBytes bounds the
// total on-disk size; <= 0 means unbounded. Existing entries are
// indexed by file modification time (most recent = most recently
// used); payloads are not verified here — verification happens on
// every read.
func Open(dir string, maxBytes int64) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	c := &Cache{
		dir:      dir,
		maxBytes: maxBytes,
		entries:  make(map[string]*entry),
		lru:      list.New(),
	}
	type found struct {
		key   string
		size  int64
		mtime time.Time
	}
	var existing []found
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		key := filepath.Base(path)
		if !validKey(key) {
			return nil // foreign file; leave it alone
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		existing = append(existing, found{key, info.Size(), info.ModTime()})
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Oldest first, so the LRU front ends up the most recently used.
	sort.Slice(existing, func(i, j int) bool {
		if !existing[i].mtime.Equal(existing[j].mtime) {
			return existing[i].mtime.Before(existing[j].mtime)
		}
		return existing[i].key < existing[j].key
	})
	for _, f := range existing {
		e := &entry{key: f.key, size: f.size}
		e.elem = c.lru.PushFront(e)
		c.entries[f.key] = e
		c.bytes += f.size
	}
	c.evictLocked()
	return c, nil
}

// validKey reports whether key is a hex SHA-256 — everything else is
// rejected up front (and ignored on disk), which also keeps arbitrary
// path segments out of file operations.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for _, r := range key {
		if !strings.ContainsRune("0123456789abcdef", r) {
			return false
		}
	}
	return true
}

func (c *Cache) path(key string) string {
	// Two-level fan-out keeps directories small at production entry
	// counts.
	return filepath.Join(c.dir, key[:2], key)
}

// Get returns the payload stored under key and whether it was present.
// A present-but-corrupt entry is deleted and returned as a miss with a
// *CorruptError describing why.
func (c *Cache) Get(key string) ([]byte, bool, error) {
	if !validKey(key) {
		return nil, false, fmt.Errorf("resultcache: invalid key %q", key)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil, false, nil
	}
	data, err := os.ReadFile(c.path(key))
	payload, verr := verify(key, data, err)
	if verr != nil {
		c.removeLocked(e)
		c.stats.Misses++
		c.stats.VerifyFailures++
		return nil, false, verr
	}
	c.lru.MoveToFront(e.elem)
	now := time.Now()
	_ = os.Chtimes(c.path(key), now, now) // recency survives reopen; best-effort
	c.stats.Hits++
	return payload, true, nil
}

// verify parses an entry file and checks its digest.
func verify(key string, data []byte, readErr error) ([]byte, error) {
	if readErr != nil {
		return nil, &CorruptError{Key: key, Reason: readErr.Error()}
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, &CorruptError{Key: key, Reason: "missing envelope header"}
	}
	var digest string
	var size int64
	if _, err := fmt.Sscanf(string(data[:nl+1]), headerFormat, &digest, &size); err != nil {
		return nil, &CorruptError{Key: key, Reason: "malformed envelope header"}
	}
	payload := data[nl+1:]
	if int64(len(payload)) != size {
		return nil, &CorruptError{Key: key, Reason: fmt.Sprintf("payload is %d bytes, envelope says %d", len(payload), size)}
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != digest {
		return nil, &CorruptError{Key: key, Reason: "payload digest mismatch"}
	}
	return payload, nil
}

// Put stores payload under key (overwriting any previous entry) and
// evicts least-recently-used entries until the size cap holds. The
// write is atomic (temp file + rename): a crash can lose the entry but
// never leave a torn one a later Get could half-trust.
func (c *Cache) Put(key string, payload []byte) error {
	if !validKey(key) {
		return fmt.Errorf("resultcache: invalid key %q", key)
	}
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf(headerFormat, hex.EncodeToString(sum[:]), len(payload))
	data := append([]byte(header), payload...)

	c.mu.Lock()
	defer c.mu.Unlock()
	path := c.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".put-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}

	if old, ok := c.entries[key]; ok {
		c.bytes -= old.size
		old.size = int64(len(data))
		c.bytes += old.size
		c.lru.MoveToFront(old.elem)
	} else {
		e := &entry{key: key, size: int64(len(data))}
		e.elem = c.lru.PushFront(e)
		c.entries[key] = e
		c.bytes += e.size
	}
	c.stats.Puts++
	c.evictLocked()
	return nil
}

// evictLocked drops least-recently-used entries until the cap holds.
// The most recent entry always survives, even alone over the cap: a
// cache that cannot hold the result it was just asked to keep would
// thrash on every sweep.
func (c *Cache) evictLocked() {
	if c.maxBytes <= 0 {
		return
	}
	for c.bytes > c.maxBytes && c.lru.Len() > 1 {
		oldest := c.lru.Back().Value.(*entry)
		c.removeLocked(oldest)
		c.stats.Evictions++
	}
}

func (c *Cache) removeLocked(e *entry) {
	c.lru.Remove(e.elem)
	delete(c.entries, e.key)
	c.bytes -= e.size
	_ = os.Remove(c.path(e.key))
}

// Len returns the number of entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of the effectiveness counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	s.Bytes = c.bytes
	s.MaxBytes = c.maxBytes
	return s
}
