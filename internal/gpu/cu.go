// Package gpu models a GPU compute unit (CU): resident thread blocks
// sharing the CU's L1, SIMT lockstep execution with per-warp memory
// coalescing, a scratchpad, and the consistency-model orchestration
// around synchronization accesses.
//
// Thread blocks execute as coroutines: each runs its kernel body under
// an iter.Pull coroutine whose yields hand requests to the CU, so
// exactly one control flow is ever runnable and the simulation stays
// deterministic. The CU resumes a block by writing the response to the
// block's last memory operation into its response buffer and switching
// back in; the switch returns the block's next request (kernel code
// between operations is pure computation). The direct coroutine switch
// replaces an earlier unbuffered-channel handshake — same rendezvous
// points, but without waking the goroutine scheduler, which measures
// roughly 4x cheaper per handoff.
package gpu

import (
	"iter"

	"denovogpu/internal/coherence"
	"denovogpu/internal/consistency"
	"denovogpu/internal/denovo"
	"denovogpu/internal/energy"
	"denovogpu/internal/gpucoh"
	"denovogpu/internal/mem"
	"denovogpu/internal/noc"
	"denovogpu/internal/obs"
	"denovogpu/internal/sim"
	"denovogpu/internal/stats"
	"denovogpu/internal/wordmap"
	"denovogpu/internal/workload"
)

// Interned counter keys: hot-path counting indexes an array
// instead of hashing the name per event (see stats.Intern).
var (
	kCuComputeCycles   = stats.Intern("cu.compute_cycles")
	kCuLineAccesses    = stats.Intern("cu.line_accesses")
	kCuMemInstrs       = stats.Intern("cu.mem_instrs")
	kCuScratchAccesses = stats.Intern("cu.scratch_accesses")
	kCuSyncInstrs      = stats.Intern("cu.sync_instrs")
	kCuTbsFinished     = stats.Intern("cu.tbs_finished")
	kCuTbsStarted      = stats.Intern("cu.tbs_started")
	kCuWaitCycles      = stats.Intern("cu.wait_cycles")
)

// WarpSize is the SIMT width.
const WarpSize = 32

type reqKind int

const (
	reqVec reqKind = iota
	reqAtomic
	reqCompute
	reqWait
	reqScratch
	reqDone
)

// Pending (deferred) timing-only operations. Compute/Wait/Scratch need
// no data from the CU, so the block does not rendezvous for them: it
// banks ONE such op locally and piggybacks it on the next request,
// halving the goroutine handoffs of compute/sync-alternating kernels.
// The CU charges the banked op at the time its request arrives and
// defers handling by its cycles — the same instants, event schedule
// and sequence numbers the eager rendezvous produced. Only one op may
// bank (a second timing op flushes through the old rendezvous path):
// collapsing a chain into one deferral would merge engine events and
// reshuffle sequence numbers, which the golden reports would see.
const (
	pendNone uint8 = iota
	pendCompute
	pendWait
	pendScratch
)

type request struct {
	kind reqKind

	loads     []mem.Addr
	stores    []mem.Addr
	storeVals []uint32

	op       coherence.AtomicOp
	addr     mem.Addr
	operand  uint32
	operand2 uint32
	order    coherence.Order
	scope    coherence.Scope

	cycles int

	// Piggybacked timing op (see pendNone); consumed by CU.handle
	// before the request proper.
	preKind   uint8
	preCycles int
}

type response struct {
	loadVals  []uint32
	atomicOld uint32
}

// tbState is one resident thread block. reqBuf/respBuf are the
// reusable request/response records exchanged across the coroutine
// boundary: the handshake is fully synchronous (the block never issues
// a new request before receiving the response to its last one), so one
// buffer of each per block suffices and the per-operation allocations
// disappear. States (with their embedded kernel context) are pooled per
// CU and recycled across thread blocks and kernels; the iter.Pull
// coroutine is the only per-launch cost that remains.
type tbState struct {
	index   int
	threads int
	reqBuf  request
	respBuf response
	ctx     workload.Ctx
	kernel  workload.Kernel
	// Coroutine plumbing: yield is the block-side handoff installed by
	// seq; next/stop are the CU-side handles from iter.Pull, created per
	// kernel launch and released in finishTB (stop lets seq return so
	// the coroutine exits instead of leaking suspended).
	yield func(*request) bool
	next  func() (*request, bool)
	stop  func()
	// seqFn is the bound method value for seq, created once per pooled
	// state so each launch's iter.Pull doesn't allocate a fresh closure.
	seqFn func(func(*request) bool)
	// Banked timing-only op, flushed with the next send (see pendNone).
	pendKind   uint8
	pendCycles int
	// started flips on the block's first send. The first timing op is
	// never banked: a block becomes resident at its first timed
	// operation, and banking it would let the kernel prologue run
	// before the block counts as resident.
	started bool
}

// seq is the coroutine body: it executes the kernel and yields requests
// to the CU via send. Nothing runs until the CU's first next() call.
func (tb *tbState) seq(yield func(*request) bool) {
	tb.yield = yield
	tb.kernel(&tb.ctx)
	tb.reqBuf = request{kind: reqDone}
	tb.send()
}

// send transfers reqBuf — already filled by the caller except for the
// piggybacked timing op, which it flushes — to the CU. When it
// returns, the CU has switched back in and any response is in respBuf.
// Callers fill reqBuf in place rather than passing a request by value:
// the struct is large enough that the extra copy showed up as duffcopy
// in the access-path profile.
func (tb *tbState) send() {
	tb.reqBuf.preKind, tb.reqBuf.preCycles = tb.pendKind, tb.pendCycles
	tb.pendKind, tb.pendCycles = pendNone, 0
	tb.started = true
	tb.yield(&tb.reqBuf)
}

// tbExec implements workload.Executor from inside the block's goroutine.
type tbExec struct{ tb *tbState }

func (e tbExec) Vec(loads []mem.Addr, stores []mem.Addr, storeVals []uint32) []uint32 {
	rq := &e.tb.reqBuf
	rq.kind = reqVec
	rq.loads, rq.stores, rq.storeVals = loads, stores, storeVals
	e.tb.send()
	return e.tb.respBuf.loadVals
}

func (e tbExec) Atomic(op coherence.AtomicOp, a mem.Addr, o1, o2 uint32, order coherence.Order, scope coherence.Scope) uint32 {
	rq := &e.tb.reqBuf
	rq.kind = reqAtomic
	rq.op, rq.addr, rq.operand, rq.operand2, rq.order, rq.scope = op, a, o1, o2, order, scope
	e.tb.send()
	return e.tb.respBuf.atomicOld
}

func (e tbExec) Compute(n int) {
	if n <= 0 {
		return
	}
	if e.tb.started && e.tb.pendKind == pendNone {
		e.tb.pendKind, e.tb.pendCycles = pendCompute, n
		return
	}
	e.tb.reqBuf.kind, e.tb.reqBuf.cycles = reqCompute, n
	e.tb.send()
}

func (e tbExec) Wait(n int) {
	if n <= 0 {
		return
	}
	if e.tb.started && e.tb.pendKind == pendNone {
		e.tb.pendKind, e.tb.pendCycles = pendWait, n
		return
	}
	e.tb.reqBuf.kind, e.tb.reqBuf.cycles = reqWait, n
	e.tb.send()
}

func (e tbExec) Scratch(n int) {
	if n <= 0 {
		return
	}
	if e.tb.started && e.tb.pendKind == pendNone {
		e.tb.pendKind, e.tb.pendCycles = pendScratch, n
		return
	}
	e.tb.reqBuf.kind, e.tb.reqBuf.cycles = reqScratch, n
	e.tb.send()
}

// CU is one compute unit.
type CU struct {
	Node noc.NodeID
	// Index is the CU's contiguous worker index 0..totalCUs-1 across
	// the whole machine — what workload kernels see as ctx.CU. It
	// equals int(Node) on a single-device machine, but diverges with
	// multiple devices because global node numbering skips each
	// device's gateway node (device d's CUs are nodes d*16..d*16+14 but
	// indices d*15..d*15+14).
	Index int

	eng   *sim.Engine
	l1    coherence.L1
	model consistency.Model
	st    *stats.Stats
	meter *energy.Meter

	// Monomorphic L1 dispatch: when the attached controller is one of
	// the two concrete protocol types the paper's five configurations
	// use, the corresponding pointer is set and the access loop calls
	// it directly — the call devirtualizes and can inline, where the
	// interface call through l1 cannot. Exactly one of l1dn/l1gp is
	// non-nil on the fast path; both nil falls back to the generic
	// interface path (MESI, test doubles, or Config.GenericL1). The two
	// paths are behaviorally identical; the differential suite in
	// internal/machine diffs them cell by cell.
	l1dn      *denovo.Controller
	l1gp      *gpucoh.Controller
	genericL1 bool

	maxResident int
	resident    int
	queue       []*tbState

	nextIssue   sim.Time // L1 port: one line access issued per cycle
	activeStart sim.Time
	onAllDone   func() // fires when the CU's queue drains and resident = 0

	kernelTBsLeft int

	// Free lists for the per-operation state that used to dominate the
	// simulator's allocation profile: vector-op records, per-access
	// issue tasks, atomic-op records, plain resume events, and thread
	// block states. All are recycled within this (single-threaded) CU.
	vecFree    []*vecOp
	accessFree []*accessTask
	atomFree   []*atomicOp
	resumeFree []*resumeTask
	deferFree  []*deferTask
	tbFree     []*tbState

	// rec, when non-nil, receives StallMem/StallSync spans on track Node:
	// one span per vector memory instruction / synchronization access,
	// from issue to completion.
	rec *obs.Recorder
}

// New returns a CU at the given node using the given L1. The worker
// index defaults to the node number (the single-device identity);
// multi-device machines set Index explicitly after construction.
func New(node noc.NodeID, eng *sim.Engine, l1 coherence.L1, model consistency.Model, st *stats.Stats, meter *energy.Meter, maxResident int) *CU {
	cu := &CU{Node: node, Index: int(node), eng: eng, model: model, st: st, meter: meter, maxResident: maxResident}
	cu.SetL1(l1)
	return cu
}

// L1 exposes the CU's L1 controller.
func (cu *CU) L1() coherence.L1 { return cu.l1 }

// SetL1 swaps the CU onto a different L1 controller. Only legal while
// the CU is quiescent (no resident blocks, no in-flight accesses) —
// the machine calls it at a phase-transition drain between kernels.
// It re-resolves the monomorphic dispatch for the new controller.
func (cu *CU) SetL1(l1 coherence.L1) {
	cu.l1 = l1
	cu.l1dn, cu.l1gp = nil, nil
	if cu.genericL1 {
		return
	}
	switch c := l1.(type) {
	case *denovo.Controller:
		cu.l1dn = c
	case *gpucoh.Controller:
		cu.l1gp = c
	}
}

// UseGenericL1 pins the CU to the generic interface dispatch — the
// reference implementation the monomorphic fast path is diffed
// against (machine Config.GenericL1).
func (cu *CU) UseGenericL1() {
	cu.genericL1 = true
	cu.l1dn, cu.l1gp = nil, nil
}

// The l1* helpers are the CU-side ends of the coherence.L1 methods on
// the access hot path. Each is a two-way type dispatch to a direct
// (devirtualized, inlinable) call, with the interface as fallback.

func (cu *CU) l1ReadLine(l mem.Line, need mem.WordMask, cb func(vals [mem.WordsPerLine]uint32)) {
	if cu.l1dn != nil {
		cu.l1dn.ReadLine(l, need, cb)
	} else if cu.l1gp != nil {
		cu.l1gp.ReadLine(l, need, cb)
	} else {
		cu.l1.ReadLine(l, need, cb)
	}
}

func (cu *CU) l1WriteLine(l mem.Line, mask mem.WordMask, data [mem.WordsPerLine]uint32, cb func()) {
	if cu.l1dn != nil {
		cu.l1dn.WriteLine(l, mask, data, cb)
	} else if cu.l1gp != nil {
		cu.l1gp.WriteLine(l, mask, data, cb)
	} else {
		cu.l1.WriteLine(l, mask, data, cb)
	}
}

func (cu *CU) l1Atomic(op coherence.AtomicOp, w mem.Word, operand, operand2 uint32, scope coherence.Scope, cb func(old uint32)) {
	if cu.l1dn != nil {
		cu.l1dn.Atomic(op, w, operand, operand2, scope, cb)
	} else if cu.l1gp != nil {
		cu.l1gp.Atomic(op, w, operand, operand2, scope, cb)
	} else {
		cu.l1.Atomic(op, w, operand, operand2, scope, cb)
	}
}

func (cu *CU) l1Acquire(scope coherence.Scope) {
	if cu.l1dn != nil {
		cu.l1dn.Acquire(scope)
	} else if cu.l1gp != nil {
		cu.l1gp.Acquire(scope)
	} else {
		cu.l1.Acquire(scope)
	}
}

func (cu *CU) l1Release(scope coherence.Scope, cb func()) {
	if cu.l1dn != nil {
		cu.l1dn.Release(scope, cb)
	} else if cu.l1gp != nil {
		cu.l1gp.Release(scope, cb)
	} else {
		cu.l1.Release(scope, cb)
	}
}

// SetModel swaps the CU's consistency model alongside SetL1, under the
// same quiescence requirement.
func (cu *CU) SetModel(model consistency.Model) { cu.model = model }

// SetRecorder installs an obs recorder (nil to disable).
func (cu *CU) SetRecorder(rec *obs.Recorder) { cu.rec = rec }

// StartKernel enqueues the CU's share of a kernel's thread blocks and
// begins executing them (up to maxResident concurrently). onAllDone
// fires when every enqueued block has finished. The caller is
// responsible for the kernel-boundary acquire/release.
func (cu *CU) StartKernel(k workload.Kernel, tbIndices []int, threadsPerTB, numTBs, numCUs int, onAllDone func()) {
	cu.onAllDone = onAllDone
	cu.kernelTBsLeft = len(tbIndices)
	if len(tbIndices) == 0 {
		done := cu.onAllDone
		cu.onAllDone = nil
		cu.eng.Schedule(0, done)
		return
	}
	if cu.resident == 0 {
		cu.activeStart = cu.eng.Now()
	}
	for _, idx := range tbIndices {
		tb := cu.newTB()
		tb.index, tb.threads, tb.kernel = idx, threadsPerTB, k
		tb.ctx.TB, tb.ctx.NumTBs, tb.ctx.Threads = idx, numTBs, threadsPerTB
		tb.ctx.CU, tb.ctx.NumCUs = cu.Index, numCUs
		cu.queue = append(cu.queue, tb)
		// The coroutine is lazy: nothing runs until fillResident's first
		// next() call, so launching here costs only the Pull setup.
		tb.next, tb.stop = iter.Pull(tb.seqFn)
	}
	cu.eng.Schedule(0, cu.fillResident)
}

// newTB returns a recycled (or fresh) thread block state. Recycling is
// safe because a block's goroutine touches nothing after sending
// reqDone, so once finishTB has received it the state is free.
func (cu *CU) newTB() *tbState {
	if n := len(cu.tbFree); n > 0 {
		tb := cu.tbFree[n-1]
		cu.tbFree[n-1] = nil
		cu.tbFree = cu.tbFree[:n-1]
		return tb
	}
	tb := &tbState{}
	tb.ctx.Ex = tbExec{tb: tb}
	tb.seqFn = tb.seq
	return tb
}

func (cu *CU) fillResident() {
	for cu.resident < cu.maxResident && len(cu.queue) > 0 {
		tb := cu.queue[0]
		cu.queue = cu.queue[1:]
		cu.resident++
		cu.st.IncKey(kCuTbsStarted, 1)
		// First switch into the coroutine: runs the kernel body up to
		// its first request.
		cu.receive(tb)
	}
}

// receive switches into the thread block's coroutine until it yields
// its next request, then handles it. The block always either yields a
// request or reqDone, so this never hangs.
func (cu *CU) receive(tb *tbState) {
	rq, ok := tb.next()
	if !ok {
		return
	}
	cu.handle(tb, rq)
}

// resume delivers a response to the block and receives its next
// request. The response travels through the block's reusable buffer:
// the coroutine switch in receive returns control to the block, which
// reads the buffer before yielding anything further, so the buffer is
// free again by the time the next resume runs.
func (cu *CU) resume(tb *tbState, r response) {
	tb.respBuf = r
	cu.receive(tb)
}

func (cu *CU) handle(tb *tbState, rq *request) {
	if rq.preKind != pendNone {
		// Charge the piggybacked timing op now (the instant its eager
		// rendezvous would have been received) and handle the request
		// proper once its cycles have elapsed — the instant the eager
		// resume would have delivered it.
		d := sim.Time(rq.preCycles)
		switch rq.preKind {
		case pendCompute:
			cu.meter.Instr(rq.preCycles * cu.warps(tb))
			cu.st.IncKey(kCuComputeCycles, uint64(rq.preCycles))
		case pendWait:
			cu.st.IncKey(kCuWaitCycles, uint64(rq.preCycles))
		case pendScratch:
			cu.meter.Scratch(rq.preCycles * tb.threads)
			cu.st.IncKey(kCuScratchAccesses, uint64(rq.preCycles*tb.threads))
		}
		rq.preKind, rq.preCycles = pendNone, 0
		cu.scheduleDefer(d, tb, rq)
		return
	}
	switch rq.kind {
	case reqDone:
		cu.finishTB(tb)
	case reqCompute:
		cu.meter.Instr(rq.cycles * cu.warps(tb))
		cu.st.IncKey(kCuComputeCycles, uint64(rq.cycles))
		cu.scheduleResume(sim.Time(rq.cycles), tb)
	case reqWait:
		// Idle wait: the warp is descheduled; time passes without
		// instruction energy.
		cu.st.IncKey(kCuWaitCycles, uint64(rq.cycles))
		cu.scheduleResume(sim.Time(rq.cycles), tb)
	case reqScratch:
		cu.meter.Scratch(rq.cycles * tb.threads)
		cu.st.IncKey(kCuScratchAccesses, uint64(rq.cycles*tb.threads))
		cu.scheduleResume(sim.Time(rq.cycles), tb)
	case reqVec:
		cu.vec(tb, rq)
	case reqAtomic:
		cu.atomic(tb, rq)
	}
}

func (cu *CU) warps(tb *tbState) int { return (tb.threads + WarpSize - 1) / WarpSize }

func (cu *CU) finishTB(tb *tbState) {
	// The coroutine is suspended in its final yield (reqDone); stop
	// makes that yield return false, letting seq return and the
	// coroutine exit before the state is pooled.
	tb.stop()
	tb.next, tb.stop, tb.yield = nil, nil, nil
	tb.kernel = nil
	tb.started = false
	cu.tbFree = append(cu.tbFree, tb)
	cu.resident--
	cu.kernelTBsLeft--
	cu.st.IncKey(kCuTbsFinished, 1)
	if cu.resident == 0 && len(cu.queue) == 0 {
		cu.meter.ActiveCycles(uint64(cu.eng.Now() - cu.activeStart))
		if cu.kernelTBsLeft == 0 && cu.onAllDone != nil {
			done := cu.onAllDone
			cu.onAllDone = nil
			done()
		}
		return
	}
	cu.fillResident()
}

// laneRef records that a load lane receives word `word` of its line.
type laneRef struct {
	word int32
	lane int32
}

// lineAccess is one coalesced L1 access.
type lineAccess struct {
	line  mem.Line
	key   uint64       // warp<<48 ^ line: coalescing identity
	need  mem.WordMask // loads
	wmask mem.WordMask // stores
	data  [mem.WordsPerLine]uint32
	lanes []laneRef // load lanes and the word each receives
}

// scanThreshold is the access count beyond which coalescing switches
// from a linear key scan to an indexed lookup. Well-coalesced warps
// (the common case) stay under it and never touch a hash table.
const scanThreshold = 16

// vecOp is the pooled state of one in-flight vector memory
// instruction: its coalesced accesses, the completion countdown, and
// the load-value buffer handed back to the block. finishFn is bound
// once when the record is first allocated, so completing an access
// never allocates a closure. loadVals is the one allocation that must
// stay per-instruction: the slice is returned to kernel code, which
// may legitimately hold several results at once (stencil rows, say).
type vecOp struct {
	cu        *CU
	tb        *tbState
	accesses  []lineAccess
	idx       wordmap.Map[int32]
	indexed   bool
	loadVals  []uint32
	remaining int
	start     uint64
	finishFn  func()
}

func (cu *CU) newVecOp(tb *tbState) *vecOp {
	var op *vecOp
	if n := len(cu.vecFree); n > 0 {
		op = cu.vecFree[n-1]
		cu.vecFree[n-1] = nil
		cu.vecFree = cu.vecFree[:n-1]
	} else {
		op = &vecOp{cu: cu}
		op.finishFn = op.finish
	}
	op.tb = tb
	return op
}

func (cu *CU) freeVecOp(op *vecOp) {
	op.tb, op.loadVals = nil, nil
	cu.vecFree = append(cu.vecFree, op)
}

// coalesce groups the operation's lane addresses into per-warp line
// accesses, exactly one access per distinct line per warp, in
// first-touch order, reusing the record's access and lane storage
// (this path used to be the simulator's largest allocation site).
func (op *vecOp) coalesce(rq *request) {
	op.accesses = op.accesses[:0]
	op.indexed = false
	for lane, a := range rq.loads {
		la := op.access(lane/WarpSize, a.LineOf())
		la.need |= mem.Bit(a.WordIndex())
		la.lanes = append(la.lanes, laneRef{word: int32(a.WordIndex()), lane: int32(lane)})
	}
	for lane, a := range rq.stores {
		la := op.access(lane/WarpSize, a.LineOf())
		la.wmask |= mem.Bit(a.WordIndex())
		la.data[a.WordIndex()] = rq.storeVals[lane]
	}
}

// access returns the coalescing group for (warp, line), creating it if
// new. The returned pointer is valid only until the next access call.
func (op *vecOp) access(warp int, l mem.Line) *lineAccess {
	key := uint64(warp)<<48 ^ uint64(l)
	if op.indexed {
		if i, ok := op.idx.Get(key); ok {
			return &op.accesses[i]
		}
	} else {
		for i := range op.accesses {
			if op.accesses[i].key == key {
				return &op.accesses[i]
			}
		}
		if len(op.accesses) >= scanThreshold {
			op.idx.Reset()
			for i := range op.accesses {
				op.idx.Put(op.accesses[i].key, int32(i))
			}
			op.indexed = true
		}
	}
	i := len(op.accesses)
	if i < cap(op.accesses) {
		// Recycle the slot in place, keeping its lane buffer.
		op.accesses = op.accesses[:i+1]
		la := &op.accesses[i]
		la.line, la.key, la.need, la.wmask = l, key, 0, 0
		la.lanes = la.lanes[:0]
		la.data = [mem.WordsPerLine]uint32{}
	} else {
		op.accesses = append(op.accesses, lineAccess{line: l, key: key})
	}
	if op.indexed {
		op.idx.Put(key, int32(i))
	}
	return &op.accesses[i]
}

// finish retires one access; the last one resumes the block.
func (op *vecOp) finish() {
	op.remaining--
	if op.remaining != 0 {
		return
	}
	cu, tb, loadVals := op.cu, op.tb, op.loadVals
	if cu.rec != nil {
		cu.rec.EmitSpan(obs.StallMem, int32(cu.Node), uint64(len(op.accesses)), op.start)
	}
	cu.freeVecOp(op)
	cu.resume(tb, response{loadVals: loadVals})
}

// coalesce is the standalone form the unit tests exercise.
func coalesce(rq *request) []lineAccess {
	var op vecOp
	op.coalesce(rq)
	return op.accesses
}

// accessTask is the pooled payload of one scheduled line access.
// readCb is bound once at allocation so issuing a load allocates no
// callback closure; the task stays out of the free list while its
// read callback is outstanding.
type accessTask struct {
	cu     *CU
	op     *vecOp
	idx    int32
	readCb func([mem.WordsPerLine]uint32)
}

func (cu *CU) scheduleAccess(at sim.Time, op *vecOp, idx int32) {
	var t *accessTask
	if n := len(cu.accessFree); n > 0 {
		t = cu.accessFree[n-1]
		cu.accessFree[n-1] = nil
		cu.accessFree = cu.accessFree[:n-1]
	} else {
		t = &accessTask{cu: cu}
		t.readCb = t.onRead
	}
	t.op, t.idx = op, idx
	cu.eng.AtTask(at, t)
}

func (t *accessTask) release() {
	t.op = nil
	t.cu.accessFree = append(t.cu.accessFree, t)
}

// Run issues the access. Loads (and lane-mixed accesses, which issue
// the store after the load returns) keep the task alive until onRead;
// pure stores complete through the op's finish callback directly.
func (t *accessTask) Run() {
	la := &t.op.accesses[t.idx]
	if la.need != 0 {
		t.cu.l1ReadLine(la.line, la.need, t.readCb)
		return
	}
	cu, op := t.cu, t.op
	line, wmask, data := la.line, la.wmask, la.data
	t.release()
	cu.l1WriteLine(line, wmask, data, op.finishFn)
}

func (t *accessTask) onRead(vals [mem.WordsPerLine]uint32) {
	cu, op := t.cu, t.op
	la := &op.accesses[t.idx]
	la.scatter(vals, op.loadVals)
	line, wmask, data := la.line, la.wmask, la.data
	t.release()
	if wmask != 0 {
		// A lane-mixed access (loads and stores to one line in one
		// instruction) issues the store after the load.
		cu.l1WriteLine(line, wmask, data, op.finishFn)
		return
	}
	op.finishFn()
}

// resumeTask is the pooled payload of a plain delayed resume
// (compute/wait/scratch timing, zero-access vector ops).
type resumeTask struct {
	cu *CU
	tb *tbState
}

func (t *resumeTask) Run() {
	cu, tb := t.cu, t.tb
	t.tb = nil
	cu.resumeFree = append(cu.resumeFree, t)
	cu.resume(tb, response{})
}

func (cu *CU) scheduleResume(d sim.Time, tb *tbState) {
	var t *resumeTask
	if n := len(cu.resumeFree); n > 0 {
		t = cu.resumeFree[n-1]
		cu.resumeFree[n-1] = nil
		cu.resumeFree = cu.resumeFree[:n-1]
	} else {
		t = &resumeTask{cu: cu}
	}
	t.tb = tb
	cu.eng.ScheduleTask(d, t)
}

// deferTask is the pooled payload of a deferred request: the handling
// of a request that rode in behind a banked timing op (see pendNone).
type deferTask struct {
	cu *CU
	tb *tbState
	rq *request
}

func (t *deferTask) Run() {
	cu, tb, rq := t.cu, t.tb, t.rq
	t.tb, t.rq = nil, nil
	cu.deferFree = append(cu.deferFree, t)
	cu.handle(tb, rq)
}

func (cu *CU) scheduleDefer(d sim.Time, tb *tbState, rq *request) {
	var t *deferTask
	if n := len(cu.deferFree); n > 0 {
		t = cu.deferFree[n-1]
		cu.deferFree[n-1] = nil
		cu.deferFree = cu.deferFree[:n-1]
	} else {
		t = &deferTask{cu: cu}
	}
	t.tb, t.rq = tb, rq
	cu.eng.ScheduleTask(d, t)
}

// vec issues the coalesced accesses of one vector memory instruction,
// one per cycle through the L1 port, and resumes the block when all
// complete.
func (cu *CU) vec(tb *tbState, rq *request) {
	op := cu.newVecOp(tb)
	op.coalesce(rq)
	nWarps := 0
	if len(rq.loads) > 0 {
		nWarps += (len(rq.loads) + WarpSize - 1) / WarpSize
	}
	if len(rq.stores) > 0 {
		nWarps += (len(rq.stores) + WarpSize - 1) / WarpSize
	}
	if nWarps == 0 {
		nWarps = 1
	}
	cu.meter.Instr(nWarps)
	cu.st.IncKey(kCuMemInstrs, 1)
	cu.st.IncKey(kCuLineAccesses, uint64(len(op.accesses)))
	if len(op.accesses) == 0 {
		cu.freeVecOp(op)
		cu.scheduleResume(1, tb)
		return
	}
	if len(rq.loads) > 0 {
		op.loadVals = make([]uint32, len(rq.loads))
	}
	op.remaining = len(op.accesses)
	op.start = uint64(cu.eng.Now())
	for i := range op.accesses {
		at := cu.eng.Now()
		if cu.nextIssue > at {
			at = cu.nextIssue
		}
		cu.nextIssue = at + 1
		cu.scheduleAccess(at, op, int32(i))
	}
}

func (la *lineAccess) scatter(vals [mem.WordsPerLine]uint32, loadVals []uint32) {
	for _, r := range la.lanes {
		loadVals[r.lane] = vals[r.word]
	}
}

// atomicOp is the pooled state of one in-flight synchronization
// access. performFn/doneFn are bound once at allocation. Holding the
// request pointer is safe: it is the block's reusable request buffer,
// which stays untouched until the response resumes the block.
type atomicOp struct {
	cu        *CU
	tb        *tbState
	rq        *request
	scope     coherence.Scope
	start     uint64
	performFn func()
	doneFn    func(uint32)
}

func (op *atomicOp) perform() {
	rq := op.rq
	op.cu.l1Atomic(rq.op, rq.addr.WordOf(), rq.operand, rq.operand2, op.scope, op.doneFn)
}

func (op *atomicOp) done(old uint32) {
	cu, tb, rq := op.cu, op.tb, op.rq
	if rq.order.Acquires() {
		cu.l1Acquire(op.scope)
	}
	if cu.rec != nil {
		cu.rec.EmitSpan(obs.StallSync, int32(cu.Node), uint64(rq.addr.WordOf()), op.start)
	}
	op.tb, op.rq = nil, nil
	cu.atomFree = append(cu.atomFree, op)
	cu.resume(tb, response{atomicOld: old})
}

// atomic wraps a synchronization access in the consistency model's
// program-order requirement: prior writes complete before a release;
// the acquire's invalidation happens before subsequent accesses issue.
func (cu *CU) atomic(tb *tbState, rq *request) {
	scope := cu.model.Effective(rq.scope)
	cu.meter.Instr(1)
	cu.st.IncKey(kCuSyncInstrs, 1)
	var op *atomicOp
	if n := len(cu.atomFree); n > 0 {
		op = cu.atomFree[n-1]
		cu.atomFree[n-1] = nil
		cu.atomFree = cu.atomFree[:n-1]
	} else {
		op = &atomicOp{cu: cu}
		op.performFn = op.perform
		op.doneFn = op.done
	}
	op.tb, op.rq, op.scope, op.start = tb, rq, scope, uint64(cu.eng.Now())
	if rq.order.Releases() {
		cu.l1Release(scope, op.performFn)
	} else {
		op.perform()
	}
}
