// Package gpu models a GPU compute unit (CU): resident thread blocks
// sharing the CU's L1, SIMT lockstep execution with per-warp memory
// coalescing, a scratchpad, and the consistency-model orchestration
// around synchronization accesses.
//
// Thread blocks execute as coroutines: each runs its kernel body in a
// goroutine that communicates with the CU through an unbuffered
// channel handshake, so exactly one goroutine is ever runnable and the
// simulation stays deterministic. The CU resumes a block by delivering
// the response to its last memory operation and then synchronously
// waits for the block's next request (kernel code between operations is
// pure computation).
package gpu

import (
	"denovogpu/internal/coherence"
	"denovogpu/internal/consistency"
	"denovogpu/internal/energy"
	"denovogpu/internal/mem"
	"denovogpu/internal/noc"
	"denovogpu/internal/obs"
	"denovogpu/internal/sim"
	"denovogpu/internal/stats"
	"denovogpu/internal/wordmap"
	"denovogpu/internal/workload"
)

// Interned counter keys: hot-path counting indexes an array
// instead of hashing the name per event (see stats.Intern).
var (
	kCuComputeCycles   = stats.Intern("cu.compute_cycles")
	kCuLineAccesses    = stats.Intern("cu.line_accesses")
	kCuMemInstrs       = stats.Intern("cu.mem_instrs")
	kCuScratchAccesses = stats.Intern("cu.scratch_accesses")
	kCuSyncInstrs      = stats.Intern("cu.sync_instrs")
	kCuTbsFinished     = stats.Intern("cu.tbs_finished")
	kCuTbsStarted      = stats.Intern("cu.tbs_started")
	kCuWaitCycles      = stats.Intern("cu.wait_cycles")
)

// WarpSize is the SIMT width.
const WarpSize = 32

type reqKind int

const (
	reqVec reqKind = iota
	reqAtomic
	reqCompute
	reqWait
	reqScratch
	reqDone
)

type request struct {
	kind reqKind

	loads     []mem.Addr
	stores    []mem.Addr
	storeVals []uint32

	op       coherence.AtomicOp
	addr     mem.Addr
	operand  uint32
	operand2 uint32
	order    coherence.Order
	scope    coherence.Scope

	cycles int
}

type response struct {
	loadVals  []uint32
	atomicOld uint32
}

// tbState is one resident thread block. reqBuf/respBuf are the
// reusable request/response records exchanged over the channels: the
// handshake is fully synchronous (the block never issues a new request
// before receiving the response to its last one), so one buffer of
// each per block suffices and the per-operation allocations disappear.
type tbState struct {
	index   int
	threads int
	req     chan *request
	resp    chan *response
	reqBuf  request
	respBuf response
}

// send transfers a request to the CU through the reusable buffer.
func (tb *tbState) send(rq request) {
	tb.reqBuf = rq
	tb.req <- &tb.reqBuf
}

// tbExec implements workload.Executor from inside the block's goroutine.
type tbExec struct{ tb *tbState }

func (e tbExec) Vec(loads []mem.Addr, stores []mem.Addr, storeVals []uint32) []uint32 {
	e.tb.send(request{kind: reqVec, loads: loads, stores: stores, storeVals: storeVals})
	return (<-e.tb.resp).loadVals
}

func (e tbExec) Atomic(op coherence.AtomicOp, a mem.Addr, o1, o2 uint32, order coherence.Order, scope coherence.Scope) uint32 {
	e.tb.send(request{kind: reqAtomic, op: op, addr: a, operand: o1, operand2: o2, order: order, scope: scope})
	return (<-e.tb.resp).atomicOld
}

func (e tbExec) Compute(n int) {
	if n <= 0 {
		return
	}
	e.tb.send(request{kind: reqCompute, cycles: n})
	<-e.tb.resp
}

func (e tbExec) Wait(n int) {
	if n <= 0 {
		return
	}
	e.tb.send(request{kind: reqWait, cycles: n})
	<-e.tb.resp
}

func (e tbExec) Scratch(n int) {
	if n <= 0 {
		return
	}
	e.tb.send(request{kind: reqScratch, cycles: n})
	<-e.tb.resp
}

// CU is one compute unit.
type CU struct {
	Node noc.NodeID

	eng   *sim.Engine
	l1    coherence.L1
	model consistency.Model
	st    *stats.Stats
	meter *energy.Meter

	maxResident int
	resident    int
	queue       []*tbState

	nextIssue   sim.Time // L1 port: one line access issued per cycle
	activeStart sim.Time
	onAllDone   func() // fires when the CU's queue drains and resident = 0

	kernelTBsLeft int

	// rec, when non-nil, receives StallMem/StallSync spans on track Node:
	// one span per vector memory instruction / synchronization access,
	// from issue to completion.
	rec *obs.Recorder
}

// New returns a CU at the given node using the given L1.
func New(node noc.NodeID, eng *sim.Engine, l1 coherence.L1, model consistency.Model, st *stats.Stats, meter *energy.Meter, maxResident int) *CU {
	return &CU{Node: node, eng: eng, l1: l1, model: model, st: st, meter: meter, maxResident: maxResident}
}

// L1 exposes the CU's L1 controller.
func (cu *CU) L1() coherence.L1 { return cu.l1 }

// SetL1 swaps the CU onto a different L1 controller. Only legal while
// the CU is quiescent (no resident blocks, no in-flight accesses) —
// the machine calls it at a phase-transition drain between kernels.
func (cu *CU) SetL1(l1 coherence.L1) { cu.l1 = l1 }

// SetModel swaps the CU's consistency model alongside SetL1, under the
// same quiescence requirement.
func (cu *CU) SetModel(model consistency.Model) { cu.model = model }

// SetRecorder installs an obs recorder (nil to disable).
func (cu *CU) SetRecorder(rec *obs.Recorder) { cu.rec = rec }

// StartKernel enqueues the CU's share of a kernel's thread blocks and
// begins executing them (up to maxResident concurrently). onAllDone
// fires when every enqueued block has finished. The caller is
// responsible for the kernel-boundary acquire/release.
func (cu *CU) StartKernel(k workload.Kernel, tbIndices []int, threadsPerTB, numTBs, numCUs int, onAllDone func()) {
	cu.onAllDone = onAllDone
	cu.kernelTBsLeft = len(tbIndices)
	if len(tbIndices) == 0 {
		done := cu.onAllDone
		cu.onAllDone = nil
		cu.eng.Schedule(0, done)
		return
	}
	if cu.resident == 0 {
		cu.activeStart = cu.eng.Now()
	}
	for _, idx := range tbIndices {
		tb := &tbState{index: idx, threads: threadsPerTB, req: make(chan *request), resp: make(chan *response)}
		cu.queue = append(cu.queue, tb)
		idx := idx
		go func() {
			ctx := &workload.Ctx{
				TB: idx, NumTBs: numTBs, Threads: threadsPerTB,
				CU: int(cu.Node), NumCUs: numCUs,
				Ex: tbExec{tb: tb},
			}
			k(ctx)
			tb.send(request{kind: reqDone})
		}()
	}
	cu.eng.Schedule(0, cu.fillResident)
}

func (cu *CU) fillResident() {
	for cu.resident < cu.maxResident && len(cu.queue) > 0 {
		tb := cu.queue[0]
		cu.queue = cu.queue[1:]
		cu.resident++
		cu.st.IncKey(kCuTbsStarted, 1)
		// The goroutine is already running its kernel body; receive its
		// first request.
		cu.receive(tb)
	}
}

// receive blocks (the engine goroutine) until the thread block issues
// its next request, then handles it. The block always either sends a
// request or reqDone, so this never hangs.
func (cu *CU) receive(tb *tbState) {
	cu.handle(tb, <-tb.req)
}

// resume delivers a response to the block and receives its next
// request. The response travels through the block's reusable buffer;
// the block reads it before issuing anything further, so the buffer is
// free again by the time the next resume runs.
func (cu *CU) resume(tb *tbState, r response) {
	tb.respBuf = r
	tb.resp <- &tb.respBuf
	cu.receive(tb)
}

func (cu *CU) handle(tb *tbState, rq *request) {
	switch rq.kind {
	case reqDone:
		cu.finishTB()
	case reqCompute:
		cu.meter.Instr(rq.cycles * cu.warps(tb))
		cu.st.IncKey(kCuComputeCycles, uint64(rq.cycles))
		cu.eng.Schedule(sim.Time(rq.cycles), func() { cu.resume(tb, response{}) })
	case reqWait:
		// Idle wait: the warp is descheduled; time passes without
		// instruction energy.
		cu.st.IncKey(kCuWaitCycles, uint64(rq.cycles))
		cu.eng.Schedule(sim.Time(rq.cycles), func() { cu.resume(tb, response{}) })
	case reqScratch:
		cu.meter.Scratch(rq.cycles * tb.threads)
		cu.st.IncKey(kCuScratchAccesses, uint64(rq.cycles*tb.threads))
		cu.eng.Schedule(sim.Time(rq.cycles), func() { cu.resume(tb, response{}) })
	case reqVec:
		cu.vec(tb, rq)
	case reqAtomic:
		cu.atomic(tb, rq)
	}
}

func (cu *CU) warps(tb *tbState) int { return (tb.threads + WarpSize - 1) / WarpSize }

func (cu *CU) finishTB() {
	cu.resident--
	cu.kernelTBsLeft--
	cu.st.IncKey(kCuTbsFinished, 1)
	if cu.resident == 0 && len(cu.queue) == 0 {
		cu.meter.ActiveCycles(uint64(cu.eng.Now() - cu.activeStart))
		if cu.kernelTBsLeft == 0 && cu.onAllDone != nil {
			done := cu.onAllDone
			cu.onAllDone = nil
			done()
		}
		return
	}
	cu.fillResident()
}

// laneRef records that a load lane receives word `word` of its line.
type laneRef struct {
	word int32
	lane int32
}

// lineAccess is one coalesced L1 access.
type lineAccess struct {
	line  mem.Line
	key   uint64       // warp<<48 ^ line: coalescing identity
	need  mem.WordMask // loads
	wmask mem.WordMask // stores
	data  [mem.WordsPerLine]uint32
	lanes []laneRef // load lanes and the word each receives
}

// scanThreshold is the access count beyond which coalesce switches
// from a linear key scan to an indexed lookup. Well-coalesced warps
// (the common case) stay under it and never touch a hash table.
const scanThreshold = 16

// coalesce groups a vector operation's lane addresses into per-warp
// line accesses, exactly one access per distinct line per warp, in
// first-touch order. The result is a dense value slice: no per-access
// heap objects and no per-word lane maps (this function used to be
// the simulator's largest allocation site).
func coalesce(rq *request) []lineAccess {
	var accesses []lineAccess
	var idx wordmap.Map[int32]
	indexed := false
	get := func(warp int, l mem.Line) int {
		key := uint64(warp)<<48 ^ uint64(l)
		if indexed {
			if i, ok := idx.Get(key); ok {
				return int(i)
			}
		} else {
			for i := range accesses {
				if accesses[i].key == key {
					return i
				}
			}
			if len(accesses) >= scanThreshold {
				for i := range accesses {
					idx.Put(accesses[i].key, int32(i))
				}
				indexed = true
			}
		}
		i := len(accesses)
		accesses = append(accesses, lineAccess{line: l, key: key})
		if indexed {
			idx.Put(key, int32(i))
		}
		return i
	}
	for lane, a := range rq.loads {
		la := &accesses[get(lane/WarpSize, a.LineOf())]
		la.need |= mem.Bit(a.WordIndex())
		la.lanes = append(la.lanes, laneRef{word: int32(a.WordIndex()), lane: int32(lane)})
	}
	for lane, a := range rq.stores {
		la := &accesses[get(lane/WarpSize, a.LineOf())]
		la.wmask |= mem.Bit(a.WordIndex())
		la.data[a.WordIndex()] = rq.storeVals[lane]
	}
	return accesses
}

// vec issues the coalesced accesses of one vector memory instruction,
// one per cycle through the L1 port, and resumes the block when all
// complete.
func (cu *CU) vec(tb *tbState, rq *request) {
	accesses := coalesce(rq)
	nWarps := 0
	if len(rq.loads) > 0 {
		nWarps += (len(rq.loads) + WarpSize - 1) / WarpSize
	}
	if len(rq.stores) > 0 {
		nWarps += (len(rq.stores) + WarpSize - 1) / WarpSize
	}
	if nWarps == 0 {
		nWarps = 1
	}
	cu.meter.Instr(nWarps)
	cu.st.IncKey(kCuMemInstrs, 1)
	cu.st.IncKey(kCuLineAccesses, uint64(len(accesses)))
	if len(accesses) == 0 {
		cu.eng.Schedule(1, func() { cu.resume(tb, response{}) })
		return
	}
	loadVals := make([]uint32, len(rq.loads))
	remaining := len(accesses)
	start := uint64(cu.eng.Now())
	finish := func() {
		remaining--
		if remaining == 0 {
			if cu.rec != nil {
				cu.rec.EmitSpan(obs.StallMem, int32(cu.Node), uint64(len(accesses)), start)
			}
			cu.resume(tb, response{loadVals: loadVals})
		}
	}
	for i := range accesses {
		la := &accesses[i]
		at := cu.eng.Now()
		if cu.nextIssue > at {
			at = cu.nextIssue
		}
		cu.nextIssue = at + 1
		cu.eng.At(at, func() {
			switch {
			case la.need != 0 && la.wmask != 0:
				// A lane-mixed access (loads and stores to one line in
				// one instruction) issues the store after the load.
				cu.l1.ReadLine(la.line, la.need, func(vals [mem.WordsPerLine]uint32) {
					la.scatter(vals, loadVals)
					cu.l1.WriteLine(la.line, la.wmask, la.data, finish)
				})
			case la.need != 0:
				cu.l1.ReadLine(la.line, la.need, func(vals [mem.WordsPerLine]uint32) {
					la.scatter(vals, loadVals)
					finish()
				})
			default:
				cu.l1.WriteLine(la.line, la.wmask, la.data, finish)
			}
		})
	}
}

func (la *lineAccess) scatter(vals [mem.WordsPerLine]uint32, loadVals []uint32) {
	for _, r := range la.lanes {
		loadVals[r.lane] = vals[r.word]
	}
}

// atomic wraps a synchronization access in the consistency model's
// program-order requirement: prior writes complete before a release;
// the acquire's invalidation happens before subsequent accesses issue.
func (cu *CU) atomic(tb *tbState, rq *request) {
	scope := cu.model.Effective(rq.scope)
	cu.meter.Instr(1)
	cu.st.IncKey(kCuSyncInstrs, 1)
	start := uint64(cu.eng.Now())
	perform := func() {
		cu.l1.Atomic(rq.op, rq.addr.WordOf(), rq.operand, rq.operand2, scope, func(old uint32) {
			if rq.order.Acquires() {
				cu.l1.Acquire(scope)
			}
			if cu.rec != nil {
				cu.rec.EmitSpan(obs.StallSync, int32(cu.Node), uint64(rq.addr.WordOf()), start)
			}
			cu.resume(tb, response{atomicOld: old})
		})
	}
	if rq.order.Releases() {
		cu.l1.Release(scope, perform)
	} else {
		perform()
	}
}
