package gpu

import (
	"testing"
	"testing/quick"

	"denovogpu/internal/coherence"
	"denovogpu/internal/consistency"
	"denovogpu/internal/energy"
	"denovogpu/internal/mem"
	"denovogpu/internal/sim"
	"denovogpu/internal/stats"
	"denovogpu/internal/workload"
)

func TestCoalesceGroupsByWarpAndLine(t *testing.T) {
	// 64 lanes (2 warps) all loading consecutive words: 2 lines per
	// warp (32 lanes x 4 B = 128 B), no cross-warp merging.
	rq := &request{kind: reqVec}
	for lane := 0; lane < 64; lane++ {
		rq.loads = append(rq.loads, mem.Addr(4*lane))
	}
	groups := coalesce(rq)
	if len(groups) != 4 {
		t.Fatalf("%d accesses, want 4 (2 lines x 2 warps)", len(groups))
	}
	for _, g := range groups {
		if g.need.Count() != 16 {
			t.Fatalf("group needs %d words, want full line", g.need.Count())
		}
	}
}

func TestCoalesceBroadcast(t *testing.T) {
	// All lanes load the same word: one access, one word.
	rq := &request{kind: reqVec}
	for lane := 0; lane < 32; lane++ {
		rq.loads = append(rq.loads, mem.Addr(0x40))
	}
	groups := coalesce(rq)
	if len(groups) != 1 || groups[0].need != mem.Bit(0) {
		t.Fatalf("broadcast should coalesce to one word: %+v", groups)
	}
	if len(groups[0].lanes) != 32 {
		t.Fatal("all lanes must receive the broadcast value")
	}
}

func TestCoalesceStridedWorstCase(t *testing.T) {
	// Stride of one line per lane: 32 distinct lines.
	rq := &request{kind: reqVec}
	for lane := 0; lane < 32; lane++ {
		rq.loads = append(rq.loads, mem.Addr(lane*mem.LineBytes))
	}
	if groups := coalesce(rq); len(groups) != 32 {
		t.Fatalf("%d accesses, want 32 (fully uncoalesced)", len(groups))
	}
}

func TestCoalesceStores(t *testing.T) {
	rq := &request{kind: reqVec}
	for lane := 0; lane < 16; lane++ {
		rq.stores = append(rq.stores, mem.Addr(4*lane))
		rq.storeVals = append(rq.storeVals, uint32(lane*10))
	}
	groups := coalesce(rq)
	if len(groups) != 1 || groups[0].wmask != mem.AllWords {
		t.Fatalf("store coalescing wrong: %+v", groups)
	}
	if groups[0].data[3] != 30 {
		t.Fatal("store data misplaced")
	}
}

// Property: the union of all groups' needs covers exactly the loaded
// words, and every lane appears exactly once.
func TestCoalesceCoverageProperty(t *testing.T) {
	f := func(rawAddrs []uint16) bool {
		if len(rawAddrs) == 0 || len(rawAddrs) > 96 {
			return true
		}
		rq := &request{kind: reqVec}
		for _, a := range rawAddrs {
			rq.loads = append(rq.loads, mem.Addr(a)&^3)
		}
		groups := coalesce(rq)
		lanesSeen := make(map[int]int)
		for _, g := range groups {
			for _, r := range g.lanes {
				if !g.need.Has(int(r.word)) {
					return false
				}
				lanesSeen[int(r.lane)]++
				if rq.loads[r.lane].LineOf() != g.line || rq.loads[r.lane].WordIndex() != int(r.word) {
					return false
				}
			}
		}
		if len(lanesSeen) != len(rq.loads) {
			return false
		}
		for _, n := range lanesSeen {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// fakeL1 is an immediate-completion L1 backed by a flat map, for
// testing CU scheduling in isolation.
type fakeL1 struct {
	eng      *sim.Engine
	mem      map[mem.Word]uint32
	acquires map[coherence.Scope]int
	releases map[coherence.Scope]int
	atomics  int
}

func newFakeL1(eng *sim.Engine) *fakeL1 {
	return &fakeL1{eng: eng, mem: map[mem.Word]uint32{},
		acquires: map[coherence.Scope]int{}, releases: map[coherence.Scope]int{}}
}

func (f *fakeL1) ReadLine(l mem.Line, need mem.WordMask, cb func([mem.WordsPerLine]uint32)) {
	var vals [mem.WordsPerLine]uint32
	for i := 0; i < mem.WordsPerLine; i++ {
		if need.Has(i) {
			vals[i] = f.mem[l.Word(i)]
		}
	}
	f.eng.Schedule(1, func() { cb(vals) })
}

func (f *fakeL1) WriteLine(l mem.Line, mask mem.WordMask, data [mem.WordsPerLine]uint32, cb func()) {
	for i := 0; i < mem.WordsPerLine; i++ {
		if mask.Has(i) {
			f.mem[l.Word(i)] = data[i]
		}
	}
	f.eng.Schedule(1, cb)
}

func (f *fakeL1) Atomic(op coherence.AtomicOp, w mem.Word, o1, o2 uint32, scope coherence.Scope, cb func(uint32)) {
	f.atomics++
	next, ret := op.Apply(f.mem[w], o1, o2)
	f.mem[w] = next
	f.eng.Schedule(1, func() { cb(ret) })
}

func (f *fakeL1) Acquire(scope coherence.Scope) { f.acquires[scope]++ }
func (f *fakeL1) Release(scope coherence.Scope, cb func()) {
	f.releases[scope]++
	f.eng.Schedule(1, cb)
}
func (f *fakeL1) Drained() bool                             { return true }
func (f *fakeL1) PeekWord(w mem.Word) (uint32, bool)        { v, ok := f.mem[w]; return v, ok }
func (f *fakeL1) HostInvalidateLine(mem.Line, mem.WordMask) {}

func runCU(t *testing.T, model consistency.Model, k workload.Kernel, tbs, threads int) (*fakeL1, *stats.Stats) {
	t.Helper()
	eng := sim.NewEngine(10_000_000)
	st := stats.New()
	l1 := newFakeL1(eng)
	cu := New(0, eng, l1, model, st, energy.NewMeter(st), 3)
	indices := make([]int, tbs)
	for i := range indices {
		indices[i] = i
	}
	done := false
	eng.Schedule(0, func() {
		cu.StartKernel(k, indices, threads, tbs, 1, func() { done = true })
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("kernel did not complete")
	}
	return l1, st
}

func TestCUExecutesKernelLockstep(t *testing.T) {
	k := func(c *workload.Ctx) {
		vals := c.LoadStride(0)
		out := make([]uint32, c.Threads)
		for i := range out {
			out[i] = vals[i] + uint32(c.TB*100+i)
		}
		c.StoreStride(0x1000*mem.Addr(c.TB+1), out)
	}
	l1, st := runCU(t, consistency.DRF, k, 5, 32)
	for tb := 0; tb < 5; tb++ {
		for i := 0; i < 32; i++ {
			w := (mem.Addr(0x1000*(tb+1)) + mem.Addr(4*i)).WordOf()
			if v := l1.mem[w]; v != uint32(tb*100+i) {
				t.Fatalf("tb %d lane %d = %d", tb, i, v)
			}
		}
	}
	if st.Get("cu.tbs_finished") != 5 {
		t.Fatal("TB accounting wrong")
	}
}

func TestCUResidencyLimit(t *testing.T) {
	// 7 TBs, residency 3: all run to completion, scheduled in waves.
	// A block counts as resident between its first and last timed
	// operation (kernel prologues before the first operation execute
	// untimed when the goroutine launches).
	running, maxRunning := 0, 0
	k := func(c *workload.Ctx) {
		c.Compute(1) // first timed op: block is now resident
		running++
		if running > maxRunning {
			maxRunning = running
		}
		c.Compute(50)
		running--
		c.Compute(1)
	}
	_, st := runCU(t, consistency.DRF, k, 7, 32)
	if st.Get("cu.tbs_finished") != 7 {
		t.Fatal("not all TBs finished")
	}
	if maxRunning > 3 {
		t.Fatalf("residency %d exceeded limit 3", maxRunning)
	}
}

func TestCUConsistencyOrchestration(t *testing.T) {
	k := func(c *workload.Ctx) {
		c.AtomicAdd(0x40, 1, coherence.ScopeLocal)   // acq+rel
		c.AtomicLoad(0x80, coherence.ScopeLocal)     // acquire only
		c.AtomicStore(0xc0, 1, coherence.ScopeLocal) // release only
	}
	// Under DRF, local annotations become global.
	l1, _ := runCU(t, consistency.DRF, k, 1, 32)
	if l1.acquires[coherence.ScopeGlobal] != 2 || l1.acquires[coherence.ScopeLocal] != 0 {
		t.Fatalf("DRF acquires: %v", l1.acquires)
	}
	if l1.releases[coherence.ScopeGlobal] != 2 {
		t.Fatalf("DRF releases: %v", l1.releases)
	}
	// Under HRF, scopes are honored.
	l1, _ = runCU(t, consistency.HRF, k, 1, 32)
	if l1.acquires[coherence.ScopeLocal] != 2 || l1.acquires[coherence.ScopeGlobal] != 0 {
		t.Fatalf("HRF acquires: %v", l1.acquires)
	}
	if l1.releases[coherence.ScopeLocal] != 2 {
		t.Fatalf("HRF releases: %v", l1.releases)
	}
}

func TestCUScratchAndComputeTiming(t *testing.T) {
	var span sim.Time
	eng := sim.NewEngine(0)
	st := stats.New()
	l1 := newFakeL1(eng)
	cu := New(0, eng, l1, consistency.DRF, st, energy.NewMeter(st), 3)
	k := func(c *workload.Ctx) {
		c.Compute(100)
		c.Scratch(20)
	}
	eng.Schedule(0, func() {
		start := eng.Now()
		cu.StartKernel(k, []int{0}, 32, 1, 1, func() { span = eng.Now() - start })
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if span < 120 {
		t.Fatalf("compute+scratch took %d cycles, want >= 120", span)
	}
	if st.Get("cu.scratch_accesses") != 20*32 {
		t.Fatalf("scratch accesses %d", st.Get("cu.scratch_accesses"))
	}
}

func TestCUEmptyKernelCompletes(t *testing.T) {
	_, st := runCU(t, consistency.DRF, func(*workload.Ctx) {}, 3, 32)
	if st.Get("cu.tbs_finished") != 3 {
		t.Fatal("empty kernels must still complete")
	}
}

func TestCUZeroTBShare(t *testing.T) {
	eng := sim.NewEngine(0)
	st := stats.New()
	cu := New(0, eng, newFakeL1(eng), consistency.DRF, st, energy.NewMeter(st), 3)
	done := false
	eng.Schedule(0, func() {
		cu.StartKernel(func(*workload.Ctx) {}, nil, 32, 0, 1, func() { done = true })
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("a CU with no blocks must report completion")
	}
}
