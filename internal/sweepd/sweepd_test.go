package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"denovogpu"
	"denovogpu/internal/resultcache"
)

// fakeClock is an injectable, advanceable time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(d)
}

func newTestServer(t *testing.T, opts Options) (*Coordinator, *httptest.Server, *Client) {
	t.Helper()
	if opts.Version == "" {
		opts.Version = "test-v1"
	}
	coord := New(opts)
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(srv.Close)
	return coord, srv, &Client{Base: srv.URL}
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func smallSpec(workloads ...string) denovogpu.MatrixSpec {
	var cells []denovogpu.CellSpec
	for _, w := range workloads {
		cells = append(cells, denovogpu.CellSpec{Config: denovogpu.ConfigSpec{Name: "GD"}, Workload: w})
	}
	return denovogpu.MatrixSpec{Cells: cells}
}

// TestGoldenSweepDistributed is the end-to-end differential wall in
// miniature: the full 44-cell pinned matrix submitted to an HTTP
// coordinator, executed by two concurrent pull workers, must reproduce
// every committed golden file byte-for-byte; an identical re-submit
// must then complete entirely from the result cache.
func TestGoldenSweepDistributed(t *testing.T) {
	if testing.Short() {
		t.Skip("full pinned matrix in -short mode")
	}
	cache, err := resultcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	coord, srv, client := newTestServer(t, Options{Cache: cache})
	_ = coord

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &Worker{Server: srv.URL, Name: fmt.Sprintf("w%d", i), IdlePoll: 5 * time.Millisecond}
			_ = w.Run(ctx)
		}(i)
	}
	defer wg.Wait()
	defer cancel()

	cells := denovogpu.PinnedCells()
	sr, err := client.Submit(ctx, denovogpu.MatrixSpec{Cells: cells})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Deduped {
		t.Fatal("fresh submit reported deduped")
	}
	status, err := client.Wait(ctx, sr.Status.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if status.State != "done" || status.Done != len(cells) || status.Failed != 0 {
		t.Fatalf("cold job finished %+v", status)
	}
	if status.CacheHits != 0 {
		t.Errorf("cold run had %d cache hits; cache should have been empty", status.CacheHits)
	}

	for i, cs := range cells {
		got, err := client.CellReport(ctx, status.ID, i)
		if err != nil {
			t.Fatalf("cell %d report: %v", i, err)
		}
		path := filepath.Join("..", "machine", "testdata", "golden",
			denovogpu.ReportFileName(cs.Workload, cs.Config.Name))
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("cell %d golden: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("cell %d (%s under %s) diverges from %s", i, cs.Workload, cs.Config.Name, path)
		}
	}

	// Warm re-submit: same spec, fresh job, zero simulations.
	sr2, err := client.Submit(ctx, denovogpu.MatrixSpec{Cells: cells})
	if err != nil {
		t.Fatal(err)
	}
	if sr2.Deduped || sr2.Status.ID == status.ID {
		t.Fatalf("finished job deduped a re-submit: %+v", sr2)
	}
	if sr2.Status.State != "done" || sr2.Status.CacheHits != len(cells) {
		t.Fatalf("warm run not 100%% cache hits: %+v", sr2.Status)
	}
	st, err := client.CacheStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != len(cells) || st.Hits < uint64(len(cells)) {
		t.Errorf("cache stats after warm run: %+v", st)
	}
	// The cached bytes still match the goldens.
	for i, cs := range cells[:3] {
		got, err := client.CellReport(ctx, sr2.Status.ID, i)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := os.ReadFile(filepath.Join("..", "machine", "testdata", "golden",
			denovogpu.ReportFileName(cs.Workload, cs.Config.Name)))
		if !bytes.Equal(got, want) {
			t.Errorf("warm cell %d served non-golden bytes", i)
		}
	}
}

// TestWorkerDeathRequeue kills a worker mid-cell (by letting its lease
// expire on a fake clock) and checks the cell is re-leased to another
// worker, the dead worker's late completion is rejected as stale, and
// the attempt counter eventually abandons a poisonous cell.
func TestWorkerDeathRequeue(t *testing.T) {
	clock := newFakeClock()
	_, srv, client := newTestServer(t, Options{LeaseTTL: time.Minute, Now: clock.Now})
	ctx := context.Background()

	sr, err := client.Submit(ctx, smallSpec("LAVA"))
	if err != nil {
		t.Fatal(err)
	}

	// Worker 1 leases the cell, then dies.
	resp := postJSON(t, srv.URL+"/api/v1/lease", leaseRequest{Worker: "doomed"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lease status %d", resp.StatusCode)
	}
	l1 := decode[LeaseInfo](t, resp)
	if l1.Cell != 0 || l1.Spec.Workload != "LAVA" {
		t.Fatalf("leased %+v", l1)
	}

	// Before the TTL passes, nobody else can steal the cell.
	resp = postJSON(t, srv.URL+"/api/v1/lease", leaseRequest{Worker: "w2"})
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("cell double-leased: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// TTL expires; the cell requeues and worker 2 picks it up.
	clock.Advance(2 * time.Minute)
	resp = postJSON(t, srv.URL+"/api/v1/lease", leaseRequest{Worker: "w2"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("expired cell not re-leased: status %d", resp.StatusCode)
	}
	l2 := decode[LeaseInfo](t, resp)
	if l2.Cell != 0 || l2.Lease == l1.Lease {
		t.Fatalf("re-lease %+v (old %+v)", l2, l1)
	}

	// The dead worker's completion and heartbeat are rejected as stale.
	resp = postJSON(t, srv.URL+"/api/v1/complete", CompleteRequest{Lease: l1.Lease, Report: []byte("{}\n")})
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("stale completion accepted: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postJSON(t, srv.URL+"/api/v1/heartbeat", heartbeatRequest{Lease: l1.Lease})
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("stale heartbeat accepted: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// A heartbeat keeps worker 2's lease alive across a TTL.
	clock.Advance(45 * time.Second)
	resp = postJSON(t, srv.URL+"/api/v1/heartbeat", heartbeatRequest{Lease: l2.Lease})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live heartbeat rejected: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	clock.Advance(45 * time.Second) // 90s since lease, 45s since heartbeat
	resp = postJSON(t, srv.URL+"/api/v1/lease", leaseRequest{Worker: "w3"})
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("heartbeated cell stolen: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Let the remaining attempts burn out: the cell fails rather than
	// wedging the job forever.
	for attempt := 2; attempt <= maxAttempts; attempt++ {
		clock.Advance(2 * time.Minute)
		resp = postJSON(t, srv.URL+"/api/v1/lease", leaseRequest{Worker: "w4"})
		if attempt < maxAttempts {
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("attempt %d: status %d", attempt, resp.StatusCode)
			}
			decode[LeaseInfo](t, resp)
		} else {
			// After the final expiry the reaper abandons the cell; the
			// lease call sees no work.
			if resp.StatusCode != http.StatusNoContent {
				t.Fatalf("abandoned cell still leased: status %d", resp.StatusCode)
			}
			resp.Body.Close()
		}
	}
	status, err := client.Job(ctx, sr.Status.ID)
	if err != nil {
		t.Fatal(err)
	}
	if status.State != "failed" || status.Failed != 1 || status.ErrorCell != 0 {
		t.Fatalf("poison cell end state %+v", status)
	}
	if !strings.Contains(status.Error, "worker death") {
		t.Errorf("error %q does not name worker death", status.Error)
	}
}

// TestDuplicateSubmitDedupe: an identical spec submitted while the
// first job is still running joins it; after completion a re-submit is
// a fresh job.
func TestDuplicateSubmitDedupe(t *testing.T) {
	cache, err := resultcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, srv, client := newTestServer(t, Options{Cache: cache})
	ctx := context.Background()

	sr1, err := client.Submit(ctx, smallSpec("LAVA"))
	if err != nil {
		t.Fatal(err)
	}
	if sr1.Deduped {
		t.Fatal("first submit deduped")
	}

	// Identical spec → the active job, HTTP 200 not 201.
	resp := postJSON(t, srv.URL+"/api/v1/jobs", smallSpec("LAVA"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("duplicate submit status %d, want 200", resp.StatusCode)
	}
	dup := decode[SubmitResponse](t, resp)
	if !dup.Deduped || dup.Status.ID != sr1.Status.ID {
		t.Fatalf("duplicate submit %+v, want dedupe onto %s", dup, sr1.Status.ID)
	}

	// A *different* spec is its own job.
	sr2, err := client.Submit(ctx, smallSpec("ST"))
	if err != nil {
		t.Fatal(err)
	}
	if sr2.Deduped || sr2.Status.ID == sr1.Status.ID {
		t.Fatalf("distinct spec deduped: %+v", sr2)
	}

	// Run both jobs to completion with one worker.
	ctx2, cancel := context.WithCancel(ctx)
	w := &Worker{Server: srv.URL, Name: "w1", IdlePoll: 5 * time.Millisecond}
	done := make(chan struct{})
	go func() { defer close(done); _ = w.Run(ctx2) }()
	if _, err := client.Wait(ctx, sr1.Status.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Wait(ctx, sr2.Status.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	cancel()
	<-done

	// Finished jobs never dedupe: the re-submit is a new job, completed
	// instantly from the cache.
	sr3, err := client.Submit(ctx, smallSpec("LAVA"))
	if err != nil {
		t.Fatal(err)
	}
	if sr3.Deduped || sr3.Status.ID == sr1.Status.ID {
		t.Fatalf("finished job deduped: %+v", sr3)
	}
	if sr3.Status.State != "done" || sr3.Status.CacheHits != 1 {
		t.Fatalf("warm re-submit %+v, want immediate cache completion", sr3.Status)
	}
}

// TestFailFastAndEventStream drives a 3-cell fail-fast job whose middle
// cell fails: the trailing cell is skipped, the job error is the
// lowest-index failure, and the NDJSON stream carries the full
// lifecycle in order.
func TestFailFastAndEventStream(t *testing.T) {
	origRun := runCell
	runCell = func(mc denovogpu.MatrixCell) (denovogpu.Report, error) {
		if mc.Workload.Name == "ST" {
			return denovogpu.Report{}, errors.New("injected fault")
		}
		return origRun(mc)
	}
	t.Cleanup(func() { runCell = origRun })

	_, srv, client := newTestServer(t, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &Worker{Server: srv.URL, Name: "w1", IdlePoll: 5 * time.Millisecond}
	go func() { _ = w.Run(ctx) }()

	sr, err := client.Submit(ctx, smallSpec("LAVA", "ST", "NN"))
	if err != nil {
		t.Fatal(err)
	}
	status, err := client.Wait(ctx, sr.Status.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if status.State != "failed" || status.Done != 1 || status.Failed != 1 || status.Skipped != 1 {
		t.Fatalf("fail-fast end state %+v", status)
	}
	if status.ErrorCell != 1 || !strings.Contains(status.Error, "injected fault") {
		t.Fatalf("job error = cell %d %q, want cell 1's injected fault", status.ErrorCell, status.Error)
	}

	// The event stream replays the whole job and terminates (the job is
	// finalized, so follow mode must not hang).
	var events []Event
	streamCtx, streamCancel := context.WithTimeout(ctx, 10*time.Second)
	defer streamCancel()
	if err := client.StreamEvents(streamCtx, status.ID, func(ev Event) error {
		events = append(events, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	final := map[int]CellState{}
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if ev.State.Terminal() {
			final[ev.Cell] = ev.State
		}
	}
	want := map[int]CellState{0: StateDone, 1: StateFailed, 2: StateSkipped}
	for cell, state := range want {
		if final[cell] != state {
			t.Errorf("cell %d final state %q, want %q (events: %+v)", cell, final[cell], state, events)
		}
	}
	// A failed job's report endpoints refuse non-done cells.
	if _, err := client.CellReport(ctx, status.ID, 1); err == nil {
		t.Error("failed cell served a report")
	}

	// keep_going: the same spec with KeepGoing runs every cell.
	spec := smallSpec("LAVA", "ST", "NN")
	spec.KeepGoing = true
	sr2, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	status2, err := client.Wait(ctx, sr2.Status.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if status2.Done != 2 || status2.Failed != 1 || status2.Skipped != 0 {
		t.Fatalf("keep-going end state %+v", status2)
	}
}

// TestSubmitValidation: bad specs are rejected whole, before any cell
// could run.
func TestSubmitValidation(t *testing.T) {
	_, srv, client := newTestServer(t, Options{})
	ctx := context.Background()

	if _, err := client.Submit(ctx, denovogpu.MatrixSpec{}); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := client.Submit(ctx, smallSpec("NOPE")); err == nil {
		t.Error("unknown workload accepted")
	}
	spec := smallSpec("LAVA")
	spec.Cells[0].Seed = 7 // LAVA is not seedable
	if _, err := client.Submit(ctx, spec); err == nil {
		t.Error("seeded fixed-input workload accepted")
	}
	// Unknown JSON fields are rejected (catches client/coordinator skew).
	resp, err := http.Post(srv.URL+"/api/v1/jobs", "application/json",
		strings.NewReader(`{"cells":[],"bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field accepted: status %d", resp.StatusCode)
	}
	// Unknown job/cell lookups 404.
	if _, err := client.Job(ctx, "j999"); err == nil {
		t.Error("unknown job found")
	}
	if _, err := client.CellReport(ctx, "j999", 0); err == nil {
		t.Error("unknown job's report served")
	}
}

// TestClientRunMatrix exercises the remote RunMatrix adapter end to
// end against an in-process coordinator + worker: results come back in
// cell order with api.RunMatrix's error convention, and observer cells
// are rejected before submission.
func TestClientRunMatrix(t *testing.T) {
	_, srv, client := newTestServer(t, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &Worker{Server: srv.URL, Name: "w1", IdlePoll: 5 * time.Millisecond}
	go func() { _ = w.Run(ctx) }()

	lava, err := denovogpu.WorkloadByName("LAVA")
	if err != nil {
		t.Fatal(err)
	}
	st, err := denovogpu.WorkloadByName("ST")
	if err != nil {
		t.Fatal(err)
	}
	cells := []denovogpu.MatrixCell{
		{Config: denovogpu.GD(), Workload: lava},
		{Config: denovogpu.DD(), Workload: st},
	}
	var mu sync.Mutex
	var progressed []int
	results, err := client.RunMatrix(ctx, cells, denovogpu.MatrixOptions{
		KeepGoing: true,
		Progress: func(i int, err error) {
			mu.Lock()
			progressed = append(progressed, i)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	mu.Lock()
	np := len(progressed)
	mu.Unlock()
	if np != 2 {
		t.Errorf("progress called %d times, want 2", np)
	}
	// Remote reports match local simulation exactly.
	for i, cell := range cells {
		local, err := denovogpu.Run(cell.Config, cell.Workload)
		if err != nil {
			t.Fatal(err)
		}
		lb, _ := denovogpu.MarshalReport(local)
		rb, _ := denovogpu.MarshalReport(results[i].Report)
		if !bytes.Equal(lb, rb) {
			t.Errorf("cell %d: remote report diverges from local run", i)
		}
	}

	// Observer cells cannot travel.
	obs := []denovogpu.MatrixCell{{Config: denovogpu.GD(), Workload: lava, Sampler: &denovogpu.Sampler{}}}
	if _, err := client.RunMatrix(ctx, obs, denovogpu.MatrixOptions{}); err == nil {
		t.Error("observer cell accepted for remote execution")
	}
}
