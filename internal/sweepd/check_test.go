package sweepd

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"denovogpu"
	"denovogpu/internal/resultcache"
)

// TestCheckCellsDistributed is the sharded-checker differential wall
// in miniature: a check cell split into prefix units, executed by two
// concurrent pull workers through the coordinator, must merge to the
// byte-identical verdict of a serial in-process run — and a warm
// re-submit must complete entirely from the result cache.
func TestCheckCellsDistributed(t *testing.T) {
	cache, err := resultcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, srv, client := newTestServer(t, Options{Cache: cache})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &Worker{Server: srv.URL, Name: fmt.Sprintf("w%d", i), IdlePoll: 5 * time.Millisecond}
			_ = w.Run(ctx)
		}(i)
	}
	defer wg.Wait()
	defer cancel()

	// Serial reference verdict.
	spec := denovogpu.CheckCellSpec{Config: denovogpu.ConfigSpec{Name: "DD"}, Program: "SB+sync"}
	serialBytes, _, err := denovogpu.RunCheckCell(spec)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := denovogpu.UnmarshalCheckReport(serialBytes)
	if err != nil {
		t.Fatal(err)
	}
	wantVerdict, err := denovogpu.MergeCheckVerdict([]denovogpu.CheckReport{serial})
	if err != nil {
		t.Fatal(err)
	}
	want, err := denovogpu.MarshalCheckVerdict(wantVerdict)
	if err != nil {
		t.Fatal(err)
	}

	// Distributed: split client-side, submit the units as one job.
	units, base, err := denovogpu.SplitCheckCell(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) < 4 {
		t.Fatalf("split produced only %d units", len(units))
	}
	var cells []denovogpu.CellSpec
	for _, u := range units {
		u := u
		cells = append(cells, denovogpu.CellSpec{Check: &u})
	}
	sr, err := client.Submit(ctx, denovogpu.MatrixSpec{Cells: cells})
	if err != nil {
		t.Fatal(err)
	}
	status, err := client.Wait(ctx, sr.Status.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if status.State != "done" || status.Done != len(cells) || status.CacheHits != 0 {
		t.Fatalf("cold check job finished %+v", status)
	}

	reports := []denovogpu.CheckReport{base}
	for i := range cells {
		data, err := client.CellReport(ctx, status.ID, i)
		if err != nil {
			t.Fatalf("unit %d report: %v", i, err)
		}
		r, err := denovogpu.UnmarshalCheckReport(data)
		if err != nil {
			t.Fatalf("unit %d: %v", i, err)
		}
		if r.Shard == nil || r.Shard.Index != i {
			t.Fatalf("unit %d report carries shard %+v", i, r.Shard)
		}
		reports = append(reports, r)
	}
	gotVerdict, err := denovogpu.MergeCheckVerdict(reports)
	if err != nil {
		t.Fatal(err)
	}
	got, err := denovogpu.MarshalCheckVerdict(gotVerdict)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("distributed verdict diverges from serial:\n--- serial ---\n%s\n--- distributed ---\n%s", want, got)
	}

	// Warm re-submit: identical unit specs, fresh job, zero exploration.
	sr2, err := client.Submit(ctx, denovogpu.MatrixSpec{Cells: cells})
	if err != nil {
		t.Fatal(err)
	}
	if sr2.Deduped {
		t.Fatal("finished job deduped a re-submit")
	}
	if sr2.Status.State != "done" || sr2.Status.CacheHits != len(cells) {
		t.Fatalf("warm check run not 100%% cache hits: %+v", sr2.Status)
	}
}

// TestSubmitCheckValidation: malformed check cells are rejected whole
// at submit, before any worker sees them.
func TestSubmitCheckValidation(t *testing.T) {
	_, _, client := newTestServer(t, Options{})
	ctx := context.Background()

	for name, cell := range map[string]denovogpu.CellSpec{
		"unknown program": {Check: &denovogpu.CheckCellSpec{
			Config: denovogpu.ConfigSpec{Name: "DD"}, Program: "NOPE"}},
		"unknown config": {Check: &denovogpu.CheckCellSpec{
			Config: denovogpu.ConfigSpec{Name: "NOPE"}, Program: "MP"}},
		"simulation fields too": {Workload: "LAVA", Check: &denovogpu.CheckCellSpec{
			Config: denovogpu.ConfigSpec{Name: "DD"}, Program: "MP"}},
	} {
		if _, err := client.Submit(ctx, denovogpu.MatrixSpec{Cells: []denovogpu.CellSpec{cell}}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestCheckCellEvents: a check cell's progress events carry its
// display name and the explored-states count in the Events field.
func TestCheckCellEvents(t *testing.T) {
	coord, srv, client := newTestServer(t, Options{})
	_ = coord
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := &Worker{Server: srv.URL, Name: "w0", IdlePoll: 5 * time.Millisecond}
		_ = w.Run(ctx)
	}()
	defer wg.Wait()
	defer cancel()

	cell := denovogpu.CellSpec{Check: &denovogpu.CheckCellSpec{
		Config: denovogpu.ConfigSpec{Name: "DD"}, Program: "MP"}}
	sr, err := client.Submit(ctx, denovogpu.MatrixSpec{Cells: []denovogpu.CellSpec{cell}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Wait(ctx, sr.Status.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	evs, done, err := coord.Events(sr.Status.ID, 0)
	if err != nil || !done {
		t.Fatalf("events: %v done=%v", err, done)
	}
	sawDone := false
	for _, ev := range evs {
		if ev.Workload != "check:MP" || ev.Config != "DD" {
			t.Errorf("event names %q under %q", ev.Workload, ev.Config)
		}
		if ev.State == StateDone {
			sawDone = true
			if ev.Events == 0 {
				t.Error("done event has zero explored states")
			}
		}
	}
	if !sawDone {
		t.Error("no done event")
	}
}
