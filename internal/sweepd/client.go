package sweepd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"denovogpu"
	"denovogpu/internal/resultcache"
)

// Client talks to a coordinator's HTTP API. The zero value with Base
// set is usable.
type Client struct {
	// Base is the coordinator's base URL, e.g. "http://localhost:8080".
	Base string
	// HTTP is the client to use; nil selects http.DefaultClient.
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Submit posts a matrix spec and returns the (possibly deduped) job.
func (c *Client) Submit(ctx context.Context, spec denovogpu.MatrixSpec) (SubmitResponse, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return SubmitResponse{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/api/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return SubmitResponse{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return SubmitResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		return SubmitResponse{}, httpError(resp)
	}
	var sr SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return SubmitResponse{}, fmt.Errorf("parsing submit response: %w", err)
	}
	return sr, nil
}

// Job fetches one job's summary.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var status JobStatus
	err := c.getJSON(ctx, "/api/v1/jobs/"+id, &status)
	return status, err
}

// CacheStats fetches the coordinator's result-cache counters.
func (c *Client) CacheStats(ctx context.Context) (resultcache.Stats, error) {
	var st resultcache.Stats
	err := c.getJSON(ctx, "/api/v1/cache/stats", &st)
	return st, err
}

func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// StreamEvents follows a job's NDJSON event stream from the beginning,
// calling fn for every event until the stream completes (job
// finalized), fn returns an error, or ctx ends.
func (c *Client) StreamEvents(ctx context.Context, jobID string, fn func(Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/api/v1/jobs/"+jobID+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("parsing event stream: %w", err)
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
	return sc.Err()
}

// Wait polls until the job finalizes and returns its final summary.
func (c *Client) Wait(ctx context.Context, jobID string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	for {
		status, err := c.Job(ctx, jobID)
		if err != nil {
			return JobStatus{}, err
		}
		if status.State != "running" {
			return status, nil
		}
		select {
		case <-ctx.Done():
			return status, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// CellReport fetches one done cell's canonical report bytes, verbatim.
func (c *Client) CellReport(ctx context.Context, jobID string, index int) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/api/v1/jobs/%s/cells/%d/report", c.Base, jobID, index), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(resp)
	}
	return io.ReadAll(resp.Body)
}

// RunMatrix executes a cell list remotely with api.RunMatrix semantics:
// results in cell order, the returned error the lowest-index cell
// error, skipped cells marked ErrCellSkipped. It is the drop-in runner
// behind `sweep -remote` (figures.SetRunner).
//
// Only plain cells travel: a cell carrying a Recorder factory or
// Sampler is rejected up front (observers watch a machine's event
// stream in-process; there is no wire form for one), as is a workload
// that is not a registered built-in — the remote workers rebuild each
// workload by name, so an anonymous locally-constructed workload would
// silently simulate something else.
func (c *Client) RunMatrix(ctx context.Context, cells []denovogpu.MatrixCell, opts denovogpu.MatrixOptions) ([]denovogpu.MatrixResult, error) {
	specs := make([]denovogpu.CellSpec, len(cells))
	for i, cell := range cells {
		if cell.MkRec != nil || cell.Sampler != nil {
			return nil, fmt.Errorf("sweepd: cell %d attaches an observer; observers cannot run remotely", i)
		}
		if _, err := denovogpu.WorkloadByName(cell.Workload.Name); err != nil {
			return nil, fmt.Errorf("sweepd: cell %d workload %q is not a built-in; cannot run remotely: %w", i, cell.Workload.Name, err)
		}
		cfg := cell.Config
		specs[i] = denovogpu.CellSpec{
			Config:   denovogpu.ConfigSpec{Raw: &cfg},
			Workload: cell.Workload.Name,
		}
	}
	sr, err := c.Submit(ctx, denovogpu.MatrixSpec{Cells: specs, KeepGoing: opts.KeepGoing})
	if err != nil {
		return nil, err
	}
	jobID := sr.Status.ID

	results := make([]denovogpu.MatrixResult, len(cells))
	cellErr := make([]string, len(cells))
	done := make([]bool, len(cells))
	err = c.StreamEvents(ctx, jobID, func(ev Event) error {
		if ev.Cell < 0 || ev.Cell >= len(cells) || !CellState(ev.State).Terminal() || done[ev.Cell] {
			return nil
		}
		done[ev.Cell] = true
		results[ev.Cell].Wall = time.Duration(ev.WallMS * float64(time.Millisecond))
		switch ev.State {
		case StateFailed:
			cellErr[ev.Cell] = ev.Err
		case StateSkipped:
			results[ev.Cell].Err = denovogpu.ErrCellSkipped
		case StateDone:
			data, err := c.CellReport(ctx, jobID, ev.Cell)
			if err != nil {
				return fmt.Errorf("fetching cell %d report: %w", ev.Cell, err)
			}
			rep, err := denovogpu.UnmarshalReport(data)
			if err != nil {
				return fmt.Errorf("cell %d: %w", ev.Cell, err)
			}
			results[ev.Cell].Report = rep
			if opts.Progress != nil {
				opts.Progress(ev.Cell, nil)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Deterministic error: lowest failed index, like api.RunMatrix.
	var firstErr error
	for i := range results {
		if cellErr[i] != "" {
			results[i].Err = fmt.Errorf("sweepd: remote cell failed: %s", cellErr[i])
			if opts.Progress != nil {
				opts.Progress(i, results[i].Err)
			}
		} else if results[i].Err != nil && opts.Progress != nil {
			opts.Progress(i, results[i].Err)
		}
		if firstErr == nil && results[i].Err != nil && results[i].Err != denovogpu.ErrCellSkipped {
			firstErr = fmt.Errorf("cell %d (%s under %s): %w", i, cells[i].Workload.Name, cells[i].Config.Name(), results[i].Err)
		}
	}
	return results, firstErr
}
