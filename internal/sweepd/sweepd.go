// Package sweepd is the simulation-sweep service behind cmd/sweepd: a
// coordinator that accepts matrix specs (api.MatrixSpec), shards their
// cells across pull-based workers, streams per-cell progress as NDJSON
// events, and dedupes work through a content-addressed result cache
// (internal/resultcache keyed by api.CellKey).
//
// Determinism is the service's contract, inherited from the simulator:
// a cell's canonical report (api.MarshalReport) depends only on its
// (code version, config, workload, seed), never on which worker ran it
// or in what order cells completed. That makes distribution and
// caching *verifiable* — a cached or remotely-computed cell is correct
// iff its bytes match the serial golden — and it makes the job-level
// error deterministic: a finished job's error is the lowest-index
// failed cell's error, exactly like api.RunMatrix.
//
// Scheduling is index-ordered: the queue hands out the lowest-index
// queued cell of the oldest job. Workers hold time-limited leases; a
// lease that expires (worker death mid-cell) requeues its cell, and a
// completion arriving on an expired lease is rejected as stale, so a
// cell never has two live owners.
package sweepd

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"denovogpu"
	"denovogpu/internal/resultcache"
)

// CellState is the lifecycle of one cell.
type CellState string

const (
	StateQueued  CellState = "queued"
	StateRunning CellState = "running"
	StateDone    CellState = "done"
	StateFailed  CellState = "failed"
	StateSkipped CellState = "skipped"
)

// Terminal reports whether a cell in this state is finished.
func (s CellState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateSkipped
}

// Event is one NDJSON progress record on a job's event stream. Every
// cell transition emits one; Seq orders them within a job.
type Event struct {
	Seq      int       `json:"seq"`
	Job      string    `json:"job"`
	Cell     int       `json:"cell"`
	Workload string    `json:"workload"`
	Config   string    `json:"config"`
	Seed     uint64    `json:"seed,omitempty"`
	State    CellState `json:"state"`
	Attempt  int       `json:"attempt,omitempty"`
	Worker   string    `json:"worker,omitempty"`
	CacheHit bool      `json:"cache_hit,omitempty"`
	WallMS   float64   `json:"wall_ms,omitempty"`
	Events   uint64    `json:"events,omitempty"`
	Allocs   uint64    `json:"allocs,omitempty"`
	Err      string    `json:"error,omitempty"`
}

// JobStatus is the summary the status endpoint returns.
type JobStatus struct {
	ID        string `json:"id"`
	State     string `json:"state"` // running | done | failed
	Cells     int    `json:"cells"`
	Queued    int    `json:"queued"`
	Running   int    `json:"running"`
	Done      int    `json:"done"`
	Failed    int    `json:"failed"`
	Skipped   int    `json:"skipped"`
	CacheHits int    `json:"cache_hits"`
	// Error is the lowest-index failed cell's error (api.RunMatrix's
	// deterministic convention); ErrorCell is its index, -1 when none.
	Error     string  `json:"error,omitempty"`
	ErrorCell int     `json:"error_cell"`
	WallMS    float64 `json:"wall_ms"`
	KeepGoing bool    `json:"keep_going,omitempty"`
}

// maxAttempts bounds how often a cell is re-leased after lease
// expiries before the coordinator declares it poisonous and fails it
// (a cell that kills every worker that touches it must not wedge the
// job forever).
const maxAttempts = 3

type cell struct {
	index    int
	spec     denovogpu.CellSpec
	mc       denovogpu.MatrixCell
	workload string
	config   string
	key      string

	state    CellState
	attempts int
	worker   string
	leaseID  string
	cacheHit bool
	wallMS   float64
	events   uint64
	allocs   uint64
	errMsg   string
	report   []byte
}

type job struct {
	id        string
	specHash  string
	keepGoing bool
	created   time.Time
	cells     []*cell
	events    []Event
	cond      *sync.Cond // signaled on every event append and at finalize
	finalized bool
	state     string // running | done | failed
	wallMS    float64
}

type lease struct {
	id       string
	jobID    string
	cellIdx  int
	worker   string
	deadline time.Time
}

// Options configure a Coordinator.
type Options struct {
	// Cache dedupes cell results; nil disables caching.
	Cache *resultcache.Cache
	// LeaseTTL is how long a worker may hold a cell without
	// heartbeating before it is presumed dead and the cell requeued.
	// 0 selects 60s.
	LeaseTTL time.Duration
	// Version is the code version folded into cache keys; ""
	// selects api.CodeVersion().
	Version string
	// Now is the clock (tests inject a fake one); nil selects time.Now.
	Now func() time.Time
}

// Coordinator owns the job store, the lease table and the cache.
type Coordinator struct {
	cache    *resultcache.Cache
	leaseTTL time.Duration
	version  string
	now      func() time.Time

	mu        sync.Mutex
	jobs      map[string]*job
	jobOrder  []string
	active    map[string]string // specHash -> unfinalized job id (duplicate-submit dedupe)
	leases    map[string]*lease
	nextJob   int
	nextLease int
}

// New returns a Coordinator.
func New(opts Options) *Coordinator {
	c := &Coordinator{
		cache:    opts.Cache,
		leaseTTL: opts.LeaseTTL,
		version:  opts.Version,
		now:      opts.Now,
		jobs:     make(map[string]*job),
		active:   make(map[string]string),
		leases:   make(map[string]*lease),
	}
	if c.leaseTTL <= 0 {
		c.leaseTTL = 60 * time.Second
	}
	if c.version == "" {
		c.version = denovogpu.CodeVersion()
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Version returns the code version cache keys are computed against.
func (c *Coordinator) Version() string { return c.version }

// CacheStats returns the result cache's counters (zero Stats when the
// coordinator runs cacheless).
func (c *Coordinator) CacheStats() resultcache.Stats {
	if c.cache == nil {
		return resultcache.Stats{}
	}
	return c.cache.Stats()
}

// Submit resolves and enqueues a matrix spec. Every cell is resolved
// and keyed up front — an unresolvable spec is rejected whole, so a
// job never discovers a bad cell halfway through. Cells whose key is
// already in the result cache complete immediately as cache hits.
//
// An identical spec already running (same canonical cell-key list and
// keep_going flag) is not enqueued twice: Submit returns the active
// job with deduped=true. Finished jobs never dedupe — a re-submit
// after completion is a fresh job whose cells all hit the cache.
func (c *Coordinator) Submit(spec denovogpu.MatrixSpec) (JobStatus, bool, error) {
	specs := spec.CellSpecs()
	if len(specs) == 0 {
		return JobStatus{}, false, errors.New("sweepd: empty matrix spec")
	}
	cells := make([]*cell, len(specs))
	hash := sha256.New()
	fmt.Fprintf(hash, "keep_going=%t\n", spec.KeepGoing)
	for i, s := range specs {
		cl := &cell{index: i, spec: s, state: StateQueued}
		if s.Check != nil {
			// A check cell: validated and keyed through the check spec
			// (which carries its own config); the simulation fields must
			// be empty so one cell cannot mean two different runs.
			if s.Workload != "" || s.Seed != 0 || s.Config.Name != "" || s.Config.Raw != nil {
				return JobStatus{}, false, fmt.Errorf("sweepd: cell %d: check cell also sets simulation fields", i)
			}
			cfg, err := s.Check.Config.Resolve()
			if err != nil {
				return JobStatus{}, false, fmt.Errorf("sweepd: cell %d: %w", i, err)
			}
			if err := s.Check.Validate(); err != nil {
				return JobStatus{}, false, fmt.Errorf("sweepd: cell %d: %w", i, err)
			}
			key, err := denovogpu.CheckKey(c.version, *s.Check)
			if err != nil {
				return JobStatus{}, false, fmt.Errorf("sweepd: cell %d: %w", i, err)
			}
			cl.workload = s.Check.DisplayName()
			cl.config = cfg.Name()
			cl.key = key
		} else {
			mc, err := s.Cell()
			if err != nil {
				return JobStatus{}, false, fmt.Errorf("sweepd: cell %d: %w", i, err)
			}
			key, err := denovogpu.CellKey(c.version, s)
			if err != nil {
				return JobStatus{}, false, fmt.Errorf("sweepd: cell %d: %w", i, err)
			}
			cl.mc = mc
			cl.workload = mc.Workload.Name
			cl.config = mc.Config.Name()
			cl.key = key
		}
		fmt.Fprintf(hash, "%s\n", cl.key)
		cells[i] = cl
	}
	specHash := hex.EncodeToString(hash.Sum(nil))

	c.mu.Lock()
	defer c.mu.Unlock()
	if id, ok := c.active[specHash]; ok {
		return c.statusLocked(c.jobs[id]), true, nil
	}
	c.nextJob++
	j := &job{
		id:        fmt.Sprintf("j%d", c.nextJob),
		specHash:  specHash,
		keepGoing: spec.KeepGoing,
		created:   c.now(),
		cells:     cells,
		state:     "running",
	}
	j.cond = sync.NewCond(&c.mu)
	c.jobs[j.id] = j
	c.jobOrder = append(c.jobOrder, j.id)
	c.active[specHash] = j.id

	for _, cl := range cells {
		c.emitLocked(j, cl, StateQueued)
		if report, hit := c.cacheGet(cl.key); hit {
			cl.state = StateDone
			cl.cacheHit = true
			cl.report = report
			c.emitLocked(j, cl, StateDone)
		}
	}
	c.maybeFinalizeLocked(j)
	return c.statusLocked(j), false, nil
}

// cacheGet is a miss-on-error cache read: a corrupt entry has already
// been deleted by the cache, and the cell simply re-simulates.
func (c *Coordinator) cacheGet(key string) ([]byte, bool) {
	if c.cache == nil {
		return nil, false
	}
	data, ok, _ := c.cache.Get(key)
	return data, ok
}

// emitLocked appends a progress event reflecting cl's current state.
func (c *Coordinator) emitLocked(j *job, cl *cell, state CellState) {
	j.events = append(j.events, Event{
		Seq:      len(j.events),
		Job:      j.id,
		Cell:     cl.index,
		Workload: cl.workload,
		Config:   cl.config,
		Seed:     cl.spec.Seed,
		State:    state,
		Attempt:  cl.attempts,
		Worker:   cl.worker,
		CacheHit: cl.cacheHit,
		WallMS:   cl.wallMS,
		Events:   cl.events,
		Allocs:   cl.allocs,
		Err:      cl.errMsg,
	})
	j.cond.Broadcast()
}

// Lease hands the named worker the lowest-index queued cell of the
// oldest unfinished job, expiring dead workers' leases first. ok is
// false when no work is available.
func (c *Coordinator) Lease(worker string) (LeaseInfo, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked()
	for _, id := range c.jobOrder {
		j := c.jobs[id]
		if j.finalized {
			continue
		}
		for _, cl := range j.cells {
			if cl.state != StateQueued {
				continue
			}
			c.nextLease++
			l := &lease{
				id:       fmt.Sprintf("l%d", c.nextLease),
				jobID:    j.id,
				cellIdx:  cl.index,
				worker:   worker,
				deadline: c.now().Add(c.leaseTTL),
			}
			c.leases[l.id] = l
			cl.state = StateRunning
			cl.attempts++
			cl.worker = worker
			cl.leaseID = l.id
			c.emitLocked(j, cl, StateRunning)
			return LeaseInfo{
				Lease: l.id,
				Job:   j.id,
				Cell:  cl.index,
				Spec:  cl.spec,
				Key:   cl.key,
				TTLMS: c.leaseTTL.Milliseconds(),
			}, true
		}
	}
	return LeaseInfo{}, false
}

// LeaseInfo describes one leased cell, as returned to a worker.
type LeaseInfo struct {
	Lease string             `json:"lease"`
	Job   string             `json:"job"`
	Cell  int                `json:"cell"`
	Spec  denovogpu.CellSpec `json:"spec"`
	Key   string             `json:"key"`
	TTLMS int64              `json:"ttl_ms"`
}

// reapLocked requeues cells whose lease expired (the worker died or
// lost connectivity mid-cell). A cell that has burned maxAttempts
// leases is declared failed instead of requeued, so a crash-inducing
// cell cannot wedge its job forever.
func (c *Coordinator) reapLocked() {
	now := c.now()
	for id, l := range c.leases {
		if !now.After(l.deadline) {
			continue
		}
		delete(c.leases, id)
		j := c.jobs[l.jobID]
		cl := j.cells[l.cellIdx]
		if cl.state != StateRunning || cl.leaseID != l.id {
			continue // already completed or re-owned
		}
		cl.leaseID = ""
		cl.worker = ""
		if cl.attempts >= maxAttempts {
			cl.state = StateFailed
			cl.errMsg = fmt.Sprintf("sweepd: lease expired %d times (worker death?); cell abandoned", cl.attempts)
			c.emitLocked(j, cl, StateFailed)
			c.failFastLocked(j)
			c.maybeFinalizeLocked(j)
			continue
		}
		cl.state = StateQueued
		c.emitLocked(j, cl, StateQueued)
	}
}

// RequeueExpired runs one reap pass (the HTTP layer calls this from a
// ticker so jobs finish even when every worker is gone).
func (c *Coordinator) RequeueExpired() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked()
}

// Heartbeat extends a live lease; ok is false if the lease has already
// expired or completed (the worker should abandon the cell — its
// result would be rejected as stale anyway).
func (c *Coordinator) Heartbeat(leaseID string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked()
	l, ok := c.leases[leaseID]
	if !ok {
		return false
	}
	l.deadline = c.now().Add(c.leaseTTL)
	return true
}

// CompleteRequest is a worker's end-of-cell report. Report carries the
// canonical report bytes (api.MarshalReport) — transported base64 so
// no JSON round-trip can reformat them — and must be empty iff Err is
// set.
type CompleteRequest struct {
	Lease  string  `json:"lease"`
	Report []byte  `json:"report_b64,omitempty"` // []byte marshals as base64
	WallMS float64 `json:"wall_ms"`
	Events uint64  `json:"events,omitempty"`
	Allocs uint64  `json:"allocs,omitempty"`
	Err    string  `json:"error,omitempty"`
}

// ErrStaleLease rejects a completion whose lease expired and was
// requeued (or never existed): the cell has moved on, possibly to
// another worker, and late bytes are dropped. Determinism makes this
// harmless — were the cell re-run, the replacement bytes are
// identical.
var ErrStaleLease = errors.New("sweepd: stale lease")

// Complete finishes a leased cell.
func (c *Coordinator) Complete(req CompleteRequest) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked()
	l, ok := c.leases[req.Lease]
	if !ok {
		return ErrStaleLease
	}
	delete(c.leases, req.Lease)
	j := c.jobs[l.jobID]
	cl := j.cells[l.cellIdx]
	if cl.state != StateRunning || cl.leaseID != l.id {
		return ErrStaleLease
	}
	cl.leaseID = ""
	cl.wallMS = req.WallMS
	cl.events = req.Events
	cl.allocs = req.Allocs
	if req.Err != "" {
		cl.state = StateFailed
		cl.errMsg = req.Err
		c.emitLocked(j, cl, StateFailed)
		c.failFastLocked(j)
	} else {
		if len(req.Report) == 0 {
			cl.state = StateFailed
			cl.errMsg = "sweepd: worker completed without a report"
			c.emitLocked(j, cl, StateFailed)
			c.failFastLocked(j)
		} else {
			cl.state = StateDone
			cl.report = req.Report
			if c.cache != nil {
				// A Put failure only costs future cache hits.
				_ = c.cache.Put(cl.key, req.Report)
			}
			c.emitLocked(j, cl, StateDone)
		}
	}
	c.maybeFinalizeLocked(j)
	return nil
}

// failFastLocked skips every still-queued cell of a fail-fast job
// after a failure (api.RunMatrix semantics: in-flight cells finish,
// unstarted cells are skipped).
func (c *Coordinator) failFastLocked(j *job) {
	if j.keepGoing {
		return
	}
	for _, cl := range j.cells {
		if cl.state == StateQueued {
			cl.state = StateSkipped
			cl.errMsg = "sweepd: cell skipped after earlier failure"
			c.emitLocked(j, cl, StateSkipped)
		}
	}
}

// maybeFinalizeLocked closes the job once every cell is terminal.
func (c *Coordinator) maybeFinalizeLocked(j *job) {
	if j.finalized {
		return
	}
	for _, cl := range j.cells {
		if !cl.state.Terminal() {
			return
		}
	}
	j.finalized = true
	j.state = "done"
	for _, cl := range j.cells {
		if cl.state == StateFailed || cl.state == StateSkipped {
			j.state = "failed"
			break
		}
	}
	j.wallMS = float64(c.now().Sub(j.created).Nanoseconds()) / 1e6
	delete(c.active, j.specHash)
	j.cond.Broadcast()
}

// statusLocked snapshots a job summary.
func (c *Coordinator) statusLocked(j *job) JobStatus {
	s := JobStatus{
		ID:        j.id,
		State:     j.state,
		Cells:     len(j.cells),
		ErrorCell: -1,
		KeepGoing: j.keepGoing,
		WallMS:    j.wallMS,
	}
	if !j.finalized {
		s.WallMS = float64(c.now().Sub(j.created).Nanoseconds()) / 1e6
	}
	for _, cl := range j.cells {
		switch cl.state {
		case StateQueued:
			s.Queued++
		case StateRunning:
			s.Running++
		case StateDone:
			s.Done++
		case StateFailed:
			s.Failed++
		case StateSkipped:
			s.Skipped++
		}
		if cl.cacheHit {
			s.CacheHits++
		}
		if s.ErrorCell < 0 && cl.state == StateFailed {
			s.Error = fmt.Sprintf("%s under %s: %s", cl.workload, cl.config, cl.errMsg)
			s.ErrorCell = cl.index
		}
	}
	return s
}

// Job returns a job's summary.
func (c *Coordinator) Job(id string) (JobStatus, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return c.statusLocked(j), true
}

// Jobs returns every job's summary in submission order.
func (c *Coordinator) Jobs() []JobStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]JobStatus, 0, len(c.jobOrder))
	for _, id := range c.jobOrder {
		out = append(out, c.statusLocked(c.jobs[id]))
	}
	return out
}

// CellReport returns the canonical report bytes of one done cell.
func (c *Coordinator) CellReport(jobID string, index int) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[jobID]
	if !ok {
		return nil, fmt.Errorf("sweepd: unknown job %q", jobID)
	}
	if index < 0 || index >= len(j.cells) {
		return nil, fmt.Errorf("sweepd: job %s has no cell %d", jobID, index)
	}
	cl := j.cells[index]
	if cl.state != StateDone {
		return nil, fmt.Errorf("sweepd: job %s cell %d is %s, not done", jobID, index, cl.state)
	}
	return cl.report, nil
}

// Events copies a job's event history from seq onward, and reports
// whether the job is finalized. It does not block.
func (c *Coordinator) Events(jobID string, from int) ([]Event, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[jobID]
	if !ok {
		return nil, false, fmt.Errorf("sweepd: unknown job %q", jobID)
	}
	return append([]Event(nil), j.events[min(from, len(j.events)):]...), j.finalized, nil
}

// WaitEvents blocks until the job has events past seq or is finalized
// with none pending, then returns them as Events does. The returned
// bool is true when the stream is complete (job finalized and all
// events delivered). cancel, if non-nil, aborts the wait when closed.
func (c *Coordinator) WaitEvents(jobID string, from int, cancel <-chan struct{}) ([]Event, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[jobID]
	if !ok {
		return nil, false, fmt.Errorf("sweepd: unknown job %q", jobID)
	}
	if cancel != nil {
		// A canceled waiter needs a broadcast to observe the
		// cancellation; watch the channel from the side.
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-cancel:
				c.mu.Lock()
				j.cond.Broadcast()
				c.mu.Unlock()
			case <-stop:
			}
		}()
	}
	for from >= len(j.events) && !j.finalized {
		if cancel != nil {
			select {
			case <-cancel:
				return nil, false, errors.New("sweepd: wait canceled")
			default:
			}
		}
		j.cond.Wait()
	}
	evs := append([]Event(nil), j.events[min(from, len(j.events)):]...)
	return evs, j.finalized && from+len(evs) == len(j.events), nil
}
