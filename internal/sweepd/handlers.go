package sweepd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"denovogpu"
)

// Handler returns the coordinator's HTTP API:
//
//	POST /api/v1/jobs                       submit a MatrixSpec; 200 {job,...} (deduped) or 201
//	GET  /api/v1/jobs                       all job summaries
//	GET  /api/v1/jobs/{id}                  one job summary
//	GET  /api/v1/jobs/{id}/events           NDJSON event stream (replays, then follows until the job ends; ?follow=0 to dump and close)
//	GET  /api/v1/jobs/{id}/cells/{i}/report one cell's canonical report, verbatim
//	POST /api/v1/lease                      worker pulls a cell; 204 when idle
//	POST /api/v1/complete                   worker finishes a cell; 410 on a stale lease
//	POST /api/v1/heartbeat                  worker extends a lease; 410 when expired
//	GET  /api/v1/cache/stats                result-cache counters
//	GET  /healthz                           liveness
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", c.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", c.handleJobs)
	mux.HandleFunc("GET /api/v1/jobs/{id}", c.handleJob)
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", c.handleEvents)
	mux.HandleFunc("GET /api/v1/jobs/{id}/cells/{index}/report", c.handleCellReport)
	mux.HandleFunc("POST /api/v1/lease", c.handleLease)
	mux.HandleFunc("POST /api/v1/complete", c.handleComplete)
	mux.HandleFunc("POST /api/v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("GET /api/v1/cache/stats", c.handleCacheStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// SubmitResponse answers a job submission.
type SubmitResponse struct {
	// Deduped marks that an identical spec was already running and no
	// new job was created.
	Deduped bool      `json:"deduped,omitempty"`
	Status  JobStatus `json:"status"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec denovogpu.MatrixSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing matrix spec: %w", err))
		return
	}
	status, deduped, err := c.Submit(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	code := http.StatusCreated
	if deduped {
		code = http.StatusOK
	}
	writeJSON(w, code, SubmitResponse{Deduped: deduped, Status: status})
}

func (c *Coordinator) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Jobs())
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	status, ok := c.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, status)
}

func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	follow := r.URL.Query().Get("follow") != "0"
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	from := 0
	for {
		var evs []Event
		var complete bool
		var err error
		if follow {
			evs, complete, err = c.WaitEvents(id, from, r.Context().Done())
		} else {
			evs, complete, err = c.Events(id, from)
		}
		if err != nil {
			if from == 0 {
				writeError(w, http.StatusNotFound, err)
			}
			return
		}
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return // client gone
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		from += len(evs)
		if complete || !follow {
			return
		}
	}
}

func (c *Coordinator) handleCellReport(w http.ResponseWriter, r *http.Request) {
	index, err := strconv.Atoi(r.PathValue("index"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad cell index %q", r.PathValue("index")))
		return
	}
	report, err := c.CellReport(r.PathValue("id"), index)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	// Verbatim canonical bytes: this body diffs clean against a golden
	// file.
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(report)
}

type leaseRequest struct {
	Worker string `json:"worker"`
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing lease request: %w", err))
		return
	}
	if req.Worker == "" {
		req.Worker = "anonymous"
	}
	info, ok := c.Lease(req.Worker)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing completion: %w", err))
		return
	}
	if err := c.Complete(req); err != nil {
		if errors.Is(err, ErrStaleLease) {
			writeError(w, http.StatusGone, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

type heartbeatRequest struct {
	Lease string `json:"lease"`
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing heartbeat: %w", err))
		return
	}
	if !c.Heartbeat(req.Lease) {
		writeError(w, http.StatusGone, ErrStaleLease)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (c *Coordinator) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.CacheStats())
}

// StartReaper requeues expired leases every interval until stop is
// closed, so jobs make progress (or fail deterministically) even when
// no live worker is polling for leases.
func (c *Coordinator) StartReaper(interval time.Duration, stop <-chan struct{}) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				c.RequeueExpired()
			case <-stop:
				return
			}
		}
	}()
}
