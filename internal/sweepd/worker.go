package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"time"

	"denovogpu"
)

// runCell executes one resolved cell; a seam so worker tests can
// substitute failures without building a broken workload.
var runCell = func(mc denovogpu.MatrixCell) (denovogpu.Report, error) {
	return denovogpu.Run(mc.Config, mc.Workload)
}

// runCheckCell executes one model-checking cell; the same kind of seam.
var runCheckCell = func(s denovogpu.CheckCellSpec) ([]byte, int, error) {
	return denovogpu.RunCheckCell(s)
}

// Worker is a pull-based executor: it leases cells from a coordinator
// over HTTP, simulates them through the api package, and posts back
// canonical report bytes. Workers are stateless — all bookkeeping
// (cache, leases, job store) lives in the coordinator — so a worker
// can be killed at any moment and the lease TTL returns its cell to
// the queue.
type Worker struct {
	// Server is the coordinator's base URL, e.g. "http://coordinator:8080".
	Server string
	// Name identifies the worker in progress events.
	Name string
	// Client is the HTTP client; nil selects a default with sane
	// timeouts for everything but the (long-polling-free) lease calls.
	Client *http.Client
	// IdlePoll is the sleep between lease attempts when the queue is
	// empty; 0 selects 200ms.
	IdlePoll time.Duration
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return http.DefaultClient
}

func (w *Worker) idlePoll() time.Duration {
	if w.IdlePoll > 0 {
		return w.IdlePoll
	}
	return 200 * time.Millisecond
}

// Run pulls and executes cells until ctx is canceled (its only
// non-error exit) or the coordinator becomes unreachable for longer
// than its lease TTL would tolerate anyway.
func (w *Worker) Run(ctx context.Context) error {
	consecutiveErrs := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil
		}
		worked, err := w.RunOne(ctx)
		if err != nil {
			consecutiveErrs++
			if consecutiveErrs >= 30 {
				return fmt.Errorf("sweepd worker %s: coordinator unreachable: %w", w.Name, err)
			}
			if !sleep(ctx, w.idlePoll()) {
				return nil
			}
			continue
		}
		consecutiveErrs = 0
		if !worked {
			if !sleep(ctx, w.idlePoll()) {
				return nil
			}
		}
	}
}

func sleep(ctx context.Context, d time.Duration) bool {
	select {
	case <-time.After(d):
		return true
	case <-ctx.Done():
		return false
	}
}

// RunOne leases and executes at most one cell. worked is false when
// the queue was empty; err reports transport-level trouble (an
// executing cell's own failure is reported to the coordinator, not
// returned here).
func (w *Worker) RunOne(ctx context.Context) (worked bool, err error) {
	info, ok, err := w.lease(ctx)
	if err != nil || !ok {
		return false, err
	}

	// Heartbeat at a third of the TTL while the (possibly minutes-long)
	// simulation runs, so only real worker death requeues the cell.
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	if info.TTLMS > 0 {
		go w.heartbeatLoop(hbCtx, info.Lease, time.Duration(info.TTLMS)*time.Millisecond/3)
	}

	req := CompleteRequest{Lease: info.Lease}
	if info.Spec.Check != nil {
		// A model-checking cell: same lease/heartbeat/complete flow, the
		// execution runs through RunCheckCell and Events counts explored
		// states instead of simulator events.
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		report, states, runErr := runCheckCell(*info.Spec.Check)
		wall := time.Since(t0)
		runtime.ReadMemStats(&after)
		req.WallMS = float64(wall.Nanoseconds()) / 1e6
		req.Allocs = after.Mallocs - before.Mallocs
		if runErr != nil {
			req.Err = runErr.Error()
		} else {
			req.Report = report
			req.Events = uint64(states)
		}
		stopHB()
		return true, w.complete(ctx, req)
	}
	mc, err := info.Spec.Cell()
	if err != nil {
		// The coordinator resolved this spec at submit; failure here
		// means version skew between worker and coordinator binaries.
		req.Err = fmt.Sprintf("worker %s cannot resolve cell: %v", w.Name, err)
	} else {
		// Allocation accounting is exact when this process runs one
		// cell at a time (cmd/sweepd work default) and approximate
		// under in-process concurrency — same contract as cmd/bench -j.
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		rep, runErr := runCell(mc)
		wall := time.Since(t0)
		runtime.ReadMemStats(&after)
		req.WallMS = float64(wall.Nanoseconds()) / 1e6
		req.Allocs = after.Mallocs - before.Mallocs
		if runErr != nil {
			req.Err = runErr.Error()
		} else {
			report, mErr := denovogpu.MarshalReport(rep)
			if mErr != nil {
				req.Err = fmt.Sprintf("serializing report: %v", mErr)
			} else {
				req.Report = report
				req.Events = rep.Events
			}
		}
	}
	stopHB()
	return true, w.complete(ctx, req)
}

func (w *Worker) heartbeatLoop(ctx context.Context, leaseID string, every time.Duration) {
	if every <= 0 {
		return
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			body, _ := json.Marshal(heartbeatRequest{Lease: leaseID})
			resp, err := w.post(ctx, "/api/v1/heartbeat", body)
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusGone {
					return // lease lost; completion will be rejected
				}
			}
		}
	}
}

func (w *Worker) lease(ctx context.Context) (LeaseInfo, bool, error) {
	body, _ := json.Marshal(leaseRequest{Worker: w.Name})
	resp, err := w.post(ctx, "/api/v1/lease", body)
	if err != nil {
		return LeaseInfo{}, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		return LeaseInfo{}, false, nil
	case http.StatusOK:
		var info LeaseInfo
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			return LeaseInfo{}, false, fmt.Errorf("parsing lease: %w", err)
		}
		return info, true, nil
	default:
		return LeaseInfo{}, false, httpError(resp)
	}
}

func (w *Worker) complete(ctx context.Context, req CompleteRequest) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := w.post(ctx, "/api/v1/complete", body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusGone {
		// Lease expired mid-run and the cell was requeued; by
		// determinism whoever re-runs it produces the same bytes, so
		// dropping this result is safe.
		return nil
	}
	if resp.StatusCode != http.StatusOK {
		return httpError(resp)
	}
	return nil
}

func (w *Worker) post(ctx context.Context, path string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Server+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return w.client().Do(req)
}

func httpError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(data))
}
