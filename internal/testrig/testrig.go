// Package testrig assembles a minimal but real memory system — engine,
// mesh, one L2 bank per node, backing store — for protocol unit tests.
// Controllers under test attach to L1 ports; everything else is live.
package testrig

import (
	"testing"

	"denovogpu/internal/energy"
	"denovogpu/internal/l2"
	"denovogpu/internal/mem"
	"denovogpu/internal/noc"
	"denovogpu/internal/sim"
	"denovogpu/internal/stats"
)

// Rig is the assembled memory system.
type Rig struct {
	Eng     *sim.Engine
	Mesh    *noc.Mesh
	Backing *mem.Backing
	Banks   [noc.Nodes]*l2.Bank
	Stats   *stats.Stats
	Meter   *energy.Meter
}

// New builds a rig with banks on every node and an event horizon that
// fails fast on hangs.
func New() *Rig {
	r := &Rig{
		Eng:     sim.NewEngine(50_000_000),
		Backing: mem.NewBacking(),
		Stats:   stats.New(),
	}
	r.Meter = energy.NewMeter(r.Stats)
	r.Mesh = noc.New(r.Eng, r.Stats, r.Meter)
	for n := noc.NodeID(0); n < noc.Nodes; n++ {
		r.Banks[n] = l2.New(n, r.Eng, r.Mesh, r.Backing, r.Stats, r.Meter)
		r.Mesh.Attach(n, noc.PortL2, r.Banks[n])
	}
	return r
}

// Run drains the event queue, failing the test on a horizon hang.
func (r *Rig) Run(t *testing.T) {
	t.Helper()
	if err := r.Eng.Run(); err != nil {
		t.Fatalf("simulation hang: %v", err)
	}
}

// L2Word reads a word's value as the L2/registry sees it.
func (r *Rig) L2Word(w mem.Word) uint32 {
	return r.Banks[l2.HomeNode(w.LineOf())].PeekData(w)
}

// Owner returns the registered owner of a word, or l2.MemoryOwner.
func (r *Rig) Owner(w mem.Word) noc.NodeID {
	return r.Banks[l2.HomeNode(w.LineOf())].PeekOwner(w)
}
