// Package trace provides an optional event trace of protocol activity:
// every mesh message, tagged with time, endpoints, kind, line and mask.
// It exists for debugging protocol behaviour and for teaching — piping
// a small benchmark's trace through sort/uniq shows exactly how the two
// protocols differ on the wire.
//
// Tracing wraps the mesh's packet delivery path via the Tap interface;
// when no tracer is installed the hot path pays a single nil check.
package trace

import (
	"fmt"
	"io"
	"sync"

	"denovogpu/internal/coherence"
	"denovogpu/internal/noc"
	"denovogpu/internal/sim"
)

// Tracer writes one line per mesh message to an io.Writer.
type Tracer struct {
	mu  sync.Mutex
	w   io.Writer
	eng *sim.Engine
	n   uint64
	max uint64
}

// New returns a tracer writing to w, recording at most max events
// (0 = unlimited). The limit guards against filling a disk with a
// full-size benchmark's multi-million-message trace.
func New(w io.Writer, eng *sim.Engine, max uint64) *Tracer {
	return &Tracer{w: w, eng: eng, max: max}
}

// Packet records a mesh message send. It implements the mesh's tap
// hook.
func (t *Tracer) Packet(p noc.Packet) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.max > 0 && t.n >= t.max {
		return
	}
	t.n++
	if m, ok := p.(*coherence.Msg); ok {
		fmt.Fprintf(t.w, "%10d %2d->%-2d %-15s %s mask=%04x sync=%v\n",
			t.eng.Now(), m.Src, m.Dst, m.Kind, m.Line, uint16(m.Mask), m.Sync)
		return
	}
	r := p.NocRoute()
	fmt.Fprintf(t.w, "%10d %2d->%-2d %T\n", t.eng.Now(), r.Src, r.Dst, p)
}

// Count returns the number of events recorded.
func (t *Tracer) Count() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}
