package trace

import (
	"strings"
	"testing"

	"denovogpu/internal/coherence"
	"denovogpu/internal/mem"
	"denovogpu/internal/sim"
)

func TestTracerFormatsCoherenceMessages(t *testing.T) {
	var b strings.Builder
	eng := sim.NewEngine(0)
	tr := New(&b, eng, 0)
	tr.Packet(&coherence.Msg{
		Kind: coherence.RegReq, Src: 3, Dst: 7, Line: mem.Line(0x40), Mask: mem.Bit(2), Sync: true,
	})
	out := b.String()
	for _, want := range []string{"RegReq", "3->7", "sync=true", "line 0x40"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace %q missing %q", out, want)
		}
	}
	if tr.Count() != 1 {
		t.Fatalf("count = %d", tr.Count())
	}
}

func TestTracerLimit(t *testing.T) {
	var b strings.Builder
	eng := sim.NewEngine(0)
	tr := New(&b, eng, 2)
	for i := 0; i < 5; i++ {
		tr.Packet(&coherence.Msg{Kind: coherence.ReadReq, Src: 0, Dst: 1})
	}
	if tr.Count() != 2 {
		t.Fatalf("count = %d, want 2 (limit)", tr.Count())
	}
	if strings.Count(b.String(), "\n") != 2 {
		t.Fatalf("trace lines = %d, want 2", strings.Count(b.String(), "\n"))
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Packet(&coherence.Msg{}) // nil receiver is a no-op
}
