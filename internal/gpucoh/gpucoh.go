// Package gpucoh implements conventional GPU (software-driven,
// writethrough) coherence at the L1: reader-initiated flash
// invalidation on acquires, buffered coalesced writethroughs drained at
// releases, and synchronization performed remotely at the L2 bank.
//
// The same controller serves both consistency models. Under DRF the
// machine maps every synchronization to global scope and the controller
// behaves exactly like the paper's GPU-D. Under HRF, locally scoped
// synchronizations reach the controller with ScopeLocal: they execute
// at the L1, and local acquires/releases skip the invalidate/flush —
// the paper's GPU-H. The only added hardware GPU-H needs is a bit per
// word to track partially written blocks; in this model that role is
// played by the word-granular store buffer plus per-word valid bits.
package gpucoh

import (
	"fmt"

	"denovogpu/internal/cache"
	"denovogpu/internal/coherence"
	"denovogpu/internal/energy"
	"denovogpu/internal/mem"
	"denovogpu/internal/noc"
	"denovogpu/internal/obs"
	"denovogpu/internal/sim"
	"denovogpu/internal/stats"
	"denovogpu/internal/topology"
	"denovogpu/internal/wordmap"
)

// Interned counter keys: hot-path counting indexes an array
// instead of hashing the name per event (see stats.Intern).
var (
	kL1AtomicsLocal          = stats.Intern("l1.atomics_local")
	kL1AtomicsRemote         = stats.Intern("l1.atomics_remote")
	kL1DirtyEvictions        = stats.Intern("l1.dirty_evictions")
	kL1FillsDroppedStale     = stats.Intern("l1.fills_dropped_stale")
	kL1FlashInvalidations    = stats.Intern("l1.flash_invalidations")
	kL1InvalidatedWords      = stats.Intern("l1.invalidated_words")
	kL1ReadHits              = stats.Intern("l1.read_hits")
	kL1ReadMisses            = stats.Intern("l1.read_misses")
	kL1Writethroughs         = stats.Intern("l1.writethroughs")
	kSbCoalescedWrites       = stats.Intern("sb.coalesced_writes")
	kSbOverflowWritethroughs = stats.Intern("sb.overflow_writethroughs")
	kSbReleaseDrains         = stats.Intern("sb.release_drains")
)

type readWaiter struct {
	need mem.WordMask // words still to come from the fill
	vals [mem.WordsPerLine]uint32
	cb   func([mem.WordsPerLine]uint32)
}

type readTxn struct {
	epoch   uint64
	waiters []readWaiter
}

type pendingLocalAtomic struct {
	op       coherence.AtomicOp
	operand  uint32
	operand2 uint32
	scope    coherence.Scope
	cb       func(uint32)
}

// remoteAtomic is an in-flight L2-executed atomic: the word identifies
// which per-word serialization slot to release when the response
// arrives. Stored by value so issuing a remote atomic allocates no
// completion closure.
type remoteAtomic struct {
	w  mem.Word
	cb func(uint32)
}

// Controller is one CU's (or the CPU's) GPU-coherence L1.
type Controller struct {
	node  noc.NodeID
	eng   *sim.Engine
	mesh  noc.Sender
	st    *stats.Stats
	meter *energy.Meter
	// topo locates each line's home L2 bank (single-device by default;
	// see SetTopology).
	topo topology.Desc

	// partialBlocks enables GPU-H's per-word dirty tracking: writes
	// allocate into the L1 as Dirty words (no fetch needed — the dirty
	// bits identify the written subset of the block) and are flushed to
	// the L2 only at global releases or evictions. Without it (GPU-D),
	// writes live in the store buffer until they write through.
	partialBlocks bool

	cache *cache.Cache
	sb    *cache.StoreBuffer

	// Read transactions are keyed by request ID; lineTxn points at the
	// joinable (current-epoch) transaction for a line, if any. A
	// post-acquire miss must not join a pre-acquire fill, so joining
	// checks the transaction's epoch. These tables (and wtPending
	// below) are open-addressed (wordmap) rather than builtin maps:
	// they sit on the protocol's hottest paths and the dense tables
	// reuse their storage across transaction churn.
	reads         wordmap.Map[*readTxn]
	lineTxn       wordmap.Map[uint64]
	atomics       wordmap.Map[remoteAtomic]
	localAtomicQ  wordmap.Map[[]pendingLocalAtomic]
	localAtomicIn wordmap.Map[bool] // head of queue being processed

	// pool and the free lists below keep steady-state operation
	// allocation-free: messages and event payloads cycle through
	// per-controller free lists instead of the heap (see
	// coherence.MsgPool for the message ownership discipline).
	pool         coherence.MsgPool
	readDoneFree []*readDoneTask
	atomDoneFree []*atomicDoneTask
	readTxnFree  []*readTxn

	nextID        uint64
	outstandingWT int
	relWaiters    []func()
	epoch         uint64

	// Release-path scratch, reused across calls so draining the store
	// buffer and regrouping it by line allocates nothing.
	sbScratch    []cache.SBEntry
	groupScratch []cache.LineGroup

	// wtPending holds the latest value and in-flight count of every
	// word with an outstanding writethrough. A fill arriving while a
	// writethrough is in flight must not resurrect the pre-write value:
	// reads and fill merges consult this table after the store buffer.
	wtPending wordmap.Map[wtWord]

	// faultNoAcqInval makes global acquires no-ops (test-only fault
	// injection; see DisableAcquireInvalidation).
	faultNoAcqInval bool

	// invariants arms the sanitizer's hot-path assertions (see
	// EnableInvariantChecks).
	invariants bool

	// rec, when non-nil, receives L1/sync events on track c.node.
	rec *obs.Recorder
}

type wtWord struct {
	val   uint32
	count int
}

// New returns a controller with the given L1 geometry and store buffer
// capacity, attached to the network at node (single-device geometry;
// multi-device machines follow up with SetTopology).
func New(node noc.NodeID, eng *sim.Engine, mesh noc.Network, st *stats.Stats, meter *energy.Meter, l1Bytes, l1Ways, sbEntries int, partialBlocks bool) *Controller {
	c := &Controller{
		node: node, eng: eng, mesh: mesh, st: st, meter: meter,
		topo:          topology.Single(),
		partialBlocks: partialBlocks,
		cache:         cache.New(l1Bytes, l1Ways),
		sb:            cache.NewStoreBuffer(sbEntries),
	}
	mesh.Attach(node, noc.PortL1, c)
	return c
}

// SetTopology installs the machine geometry (call before simulation).
func (c *Controller) SetTopology(topo topology.Desc) { c.topo = topo }

// home returns the node whose L2 bank homes the line.
func (c *Controller) home(l mem.Line) noc.NodeID { return c.topo.HomeNode(l) }

var _ coherence.L1 = (*Controller)(nil)

// readDoneTask is the pooled payload of a read-completion event. It
// frees itself before invoking the callback so a read issued from
// inside the callback can reuse it.
type readDoneTask struct {
	c    *Controller
	vals [mem.WordsPerLine]uint32
	cb   func([mem.WordsPerLine]uint32)
}

func (t *readDoneTask) Run() {
	c, cb, vals := t.c, t.cb, t.vals
	t.cb = nil
	c.readDoneFree = append(c.readDoneFree, t)
	cb(vals)
}

func (c *Controller) scheduleReadDone(d sim.Time, vals [mem.WordsPerLine]uint32, cb func([mem.WordsPerLine]uint32)) {
	var t *readDoneTask
	if n := len(c.readDoneFree); n > 0 {
		t = c.readDoneFree[n-1]
		c.readDoneFree[n-1] = nil
		c.readDoneFree = c.readDoneFree[:n-1]
	} else {
		t = &readDoneTask{c: c}
	}
	t.vals, t.cb = vals, cb
	c.eng.ScheduleTask(d, t)
}

// atomicDoneTask completes one locally applied atomic: it invokes the
// callback, releases the per-word serialization slot, and pumps the
// next queued same-word atomic.
type atomicDoneTask struct {
	c   *Controller
	w   mem.Word
	ret uint32
	cb  func(uint32)
}

func (t *atomicDoneTask) Run() {
	c, w, ret, cb := t.c, t.w, t.ret, t.cb
	t.cb = nil
	c.atomDoneFree = append(c.atomDoneFree, t)
	cb(ret)
	c.localAtomicIn.Delete(uint64(w))
	c.pumpLocalAtomics(w)
}

func (c *Controller) scheduleAtomicDone(d sim.Time, w mem.Word, ret uint32, cb func(uint32)) {
	var t *atomicDoneTask
	if n := len(c.atomDoneFree); n > 0 {
		t = c.atomDoneFree[n-1]
		c.atomDoneFree[n-1] = nil
		c.atomDoneFree = c.atomDoneFree[:n-1]
	} else {
		t = &atomicDoneTask{c: c}
	}
	t.w, t.ret, t.cb = w, ret, cb
	c.eng.ScheduleTask(d, t)
}

func (c *Controller) newReadTxn() *readTxn {
	if n := len(c.readTxnFree); n > 0 {
		t := c.readTxnFree[n-1]
		c.readTxnFree[n-1] = nil
		c.readTxnFree = c.readTxnFree[:n-1]
		return t
	}
	return &readTxn{}
}

func (c *Controller) freeReadTxn(t *readTxn) {
	*t = readTxn{waiters: t.waiters[:0]}
	c.readTxnFree = append(c.readTxnFree, t)
}

// SetRecorder installs an obs recorder (nil to disable) for this L1 and
// its store buffer; events land on track c.node in the CU domain.
func (c *Controller) SetRecorder(rec *obs.Recorder) {
	c.rec = rec
	c.sb.SetRecorder(rec, int32(c.node))
}

// MSHROccupancy returns the number of outstanding transactions: read
// misses, remote atomics, and unacked writethroughs (the obs sampler's
// l1.mshr gauge).
func (c *Controller) MSHROccupancy() int {
	return c.reads.Len() + c.atomics.Len() + c.outstandingWT
}

// OutstandingRegistrations is zero for GPU coherence (no registry), kept
// so the obs sampler wires both protocols uniformly.
func (c *Controller) OutstandingRegistrations() int { return 0 }

// ReadLine implements coherence.L1.
func (c *Controller) ReadLine(l mem.Line, need mem.WordMask, cb func([mem.WordsPerLine]uint32)) {
	c.meter.L1Access(1)
	var vals [mem.WordsPerLine]uint32
	missing := mem.WordMask(0)
	entry := c.cache.Lookup(l)
	for i := 0; i < mem.WordsPerLine; i++ {
		if !need.Has(i) {
			continue
		}
		// A dirty word in the L1 (GPU-H) is the newest copy — newer
		// than any in-flight writethrough of a previously flushed value.
		if c.partialBlocks && entry != nil && entry.State[i] == cache.Dirty {
			vals[i] = entry.Data[i]
			continue
		}
		if v, ok := c.sb.Lookup(l.Word(i)); ok {
			vals[i] = v
			continue
		}
		if p, ok := c.wtPending.Get(uint64(l.Word(i))); ok {
			vals[i] = p.val
			continue
		}
		if entry != nil && entry.State[i] != cache.Invalid {
			vals[i] = entry.Data[i]
			continue
		}
		missing |= mem.Bit(i)
	}
	if missing == 0 {
		c.st.IncKey(kL1ReadHits, 1)
		if c.rec != nil {
			c.rec.Emit(obs.L1ReadHit, int32(c.node), uint64(l))
		}
		c.scheduleReadDone(coherence.L1HitCycles, vals, cb)
		return
	}
	c.st.IncKey(kL1ReadMisses, 1)
	if c.rec != nil {
		c.rec.Emit(obs.L1ReadMiss, int32(c.node), uint64(l))
	}
	c.meter.L1Tag(1)
	var txn *readTxn
	if id, ok := c.lineTxn.Get(uint64(l)); ok {
		if t, _ := c.reads.Get(id); t != nil && t.epoch == c.epoch {
			txn = t
		}
	}
	if txn == nil {
		txn = c.newReadTxn()
		txn.epoch = c.epoch
		c.nextID++
		c.reads.Put(c.nextID, txn)
		c.lineTxn.Put(uint64(l), c.nextID)
		c.mesh.Send(c.pool.NewMsg(coherence.Msg{
			Kind: coherence.ReadReq, Src: c.node, Dst: c.home(l), Port: noc.PortL2,
			Line: l, Mask: mem.AllWords, ID: c.nextID,
		}))
	}
	txn.waiters = append(txn.waiters, readWaiter{need: missing, vals: vals, cb: cb})
}

// WriteLine implements coherence.L1: writes are buffered in the
// coalescing store buffer; overflow drains the oldest line group early,
// so future writes to those words cannot coalesce and each rewrite
// goes through separately (the LavaMD effect).
func (c *Controller) WriteLine(l mem.Line, mask mem.WordMask, data [mem.WordsPerLine]uint32, cb func()) {
	c.meter.L1Access(1)
	if c.partialBlocks {
		c.writeDirty(l, mask, data)
		c.eng.Schedule(coherence.L1HitCycles, cb)
		return
	}
	entry := c.cache.Lookup(l)
	for i := 0; i < mem.WordsPerLine; i++ {
		if !mask.Has(i) {
			continue
		}
		w := l.Word(i)
		c.meter.StoreBuffer(1)
		coalesced, evicted := c.sb.Insert(w, data[i])
		if coalesced {
			c.st.IncKey(kSbCoalescedWrites, 1)
		}
		if evicted != nil {
			c.st.IncKey(kSbOverflowWritethroughs, 1)
			c.sendWT(evicted.Line, evicted.Mask, evicted.Data)
		}
		if entry != nil {
			entry.Data[i] = data[i]
			entry.State[i] = cache.Valid
		}
	}
	c.eng.Schedule(coherence.L1HitCycles, cb)
}

func (c *Controller) sendWT(l mem.Line, mask mem.WordMask, data [mem.WordsPerLine]uint32) {
	c.outstandingWT++
	c.st.IncKey(kL1Writethroughs, 1)
	for i := 0; i < mem.WordsPerLine; i++ {
		if !mask.Has(i) {
			continue
		}
		w := l.Word(i)
		if p, ok := c.wtPending.Ptr(uint64(w)); ok {
			p.val = data[i]
			p.count++
		} else {
			c.wtPending.Put(uint64(w), wtWord{val: data[i], count: 1})
		}
	}
	c.mesh.Send(c.pool.NewMsg(coherence.Msg{
		Kind: coherence.WriteThrough, Src: c.node, Dst: c.home(l), Port: noc.PortL2,
		Line: l, Mask: mask, Data: data,
	}))
}

// writeDirty installs written words into the L1 as Dirty (GPU-H's
// partial-block writes): no fetch, no store-buffer slot; the words are
// flushed at a global release or on eviction.
func (c *Controller) writeDirty(l mem.Line, mask mem.WordMask, data [mem.WordsPerLine]uint32) {
	e := c.cache.Victim(l)
	if e == nil {
		panic("gpucoh: no victim available (GPU L1 frames are never pinned)")
	}
	if !e.Tag || e.Line != l {
		if e.Tag {
			c.evictDirty(e)
		}
		e.Reset(l)
	}
	for i := 0; i < mem.WordsPerLine; i++ {
		if mask.Has(i) {
			e.Data[i] = data[i]
			e.State[i] = cache.Dirty
		}
	}
	c.cache.Touch(e)
}

// evictDirty writes back a victim frame's dirty words before reuse.
func (c *Controller) evictDirty(e *cache.Entry) {
	dirty := e.MaskOf(cache.Dirty)
	if dirty == 0 {
		return
	}
	c.st.IncKey(kL1DirtyEvictions, 1)
	if c.rec != nil {
		c.rec.Emit(obs.L1Writeback, int32(c.node), uint64(e.Line))
	}
	c.sendWT(e.Line, dirty, e.Data)
}

// Atomic implements coherence.L1. Global-scope synchronizations execute
// remotely at the L2 bank (no L1 caching of synchronization variables —
// the central inefficiency the paper attributes to GPU coherence).
// Local-scope synchronizations execute at the L1.
func (c *Controller) Atomic(op coherence.AtomicOp, w mem.Word, operand, operand2 uint32, scope coherence.Scope, cb func(uint32)) {
	if scope == coherence.ScopeLocal {
		c.st.IncKey(kL1AtomicsLocal, 1)
		if c.rec != nil {
			c.rec.Emit(obs.L1SyncHit, int32(c.node), uint64(w))
		}
	} else {
		c.st.IncKey(kL1AtomicsRemote, 1)
		if c.rec != nil {
			c.rec.Emit(obs.L1SyncMiss, int32(c.node), uint64(w))
		}
	}
	// All synchronization to one word funnels through a single per-word
	// pipeline at this L1, whatever its scope: same-CU synchronizations
	// are properly scoped with respect to each other even when one is
	// local and one global (both scopes include both threads under
	// HRF-indirect), so they must serialize — a global atomic overlapping
	// a local RMW's read-to-write window would lose an update.
	q := c.localAtomicQ.Upsert(uint64(w))
	*q = append(*q, pendingLocalAtomic{op, operand, operand2, scope, cb})
	c.pumpLocalAtomics(w)
}

// pumpLocalAtomics serializes same-word synchronization. A local-scope
// atomic reads the current value (store buffer, then cache, then a line
// fetch), applies the RMW, and — if the operation actually wrote —
// buffers the result as a dirty word. A global-scope atomic executes at
// the L2: local copies of the word are flushed ahead of it (the mesh
// keeps per-pair FIFO order) and invalidated so the L2 serializes every
// access.
func (c *Controller) pumpLocalAtomics(w mem.Word) {
	qp, qok := c.localAtomicQ.Ptr(uint64(w))
	if c.localAtomicIn.Has(uint64(w)) || !qok || len(*qp) == 0 {
		return
	}
	c.localAtomicIn.Put(uint64(w), true)
	// Pop by shifting down rather than re-slicing forward, so the queue
	// keeps its backing capacity and the append/pop churn of a busy sync
	// word never reallocates.
	p := (*qp)[0]
	copy(*qp, (*qp)[1:])
	(*qp)[len(*qp)-1] = pendingLocalAtomic{} // release the callback for GC
	*qp = (*qp)[:len(*qp)-1]

	if p.scope != coherence.ScopeLocal {
		if v, ok := c.sb.Remove(w); ok {
			var data [mem.WordsPerLine]uint32
			data[w.Index()] = v
			c.sendWT(w.LineOf(), mem.Bit(w.Index()), data)
		}
		if e := c.cache.Peek(w.LineOf()); e != nil && e.State[w.Index()] != cache.Invalid {
			if e.State[w.Index()] == cache.Dirty {
				c.sendWT(w.LineOf(), mem.Bit(w.Index()), e.Data)
			}
			e.State[w.Index()] = cache.Invalid
		}
		c.nextID++
		id := c.nextID
		c.atomics.Put(id, remoteAtomic{w: w, cb: p.cb})
		c.mesh.Send(c.pool.NewMsg(coherence.Msg{
			Kind: coherence.AtomicReq, Src: c.node, Dst: c.home(w.LineOf()), Port: noc.PortL2,
			Line: w.LineOf(), WordIdx: w.Index(), Op: p.op, Operand: p.operand, Operand2: p.operand2, ID: id,
		}))
		return
	}

	if e := c.cache.Lookup(w.LineOf()); c.partialBlocks && e != nil && e.State[w.Index()] == cache.Dirty {
		c.finishLocalAtomic(w, p, e.Data[w.Index()])
		return
	}
	if v, ok := c.sb.Lookup(w); ok {
		c.finishLocalAtomic(w, p, v)
		return
	}
	if pw, ok := c.wtPending.Get(uint64(w)); ok {
		c.finishLocalAtomic(w, p, pw.val)
		return
	}
	if e := c.cache.Lookup(w.LineOf()); e != nil && e.State[w.Index()] != cache.Invalid {
		c.finishLocalAtomic(w, p, e.Data[w.Index()])
		return
	}
	// Miss: fetch the line, then RMW.
	c.ReadLine(w.LineOf(), mem.Bit(w.Index()), func(vals [mem.WordsPerLine]uint32) {
		c.finishLocalAtomic(w, p, vals[w.Index()])
	})
}

// finishLocalAtomic applies a local-scope RMW to the current value cur
// and schedules its completion.
func (c *Controller) finishLocalAtomic(w mem.Word, p pendingLocalAtomic, cur uint32) {
	next, ret := p.op.Apply(cur, p.operand, p.operand2)
	c.meter.L1Access(1)
	if !p.op.WritesBack(cur, next) {
		// A pure synchronization read must not dirty the word: marking
		// the read value dirty would flush it at the next global
		// release and clobber a concurrent writer's update.
		c.scheduleAtomicDone(coherence.L1HitCycles, w, ret, p.cb)
		return
	}
	if c.partialBlocks {
		var data [mem.WordsPerLine]uint32
		data[w.Index()] = next
		c.writeDirty(w.LineOf(), mem.Bit(w.Index()), data)
	} else {
		c.meter.StoreBuffer(1)
		_, evicted := c.sb.Insert(w, next)
		if evicted != nil {
			c.st.IncKey(kSbOverflowWritethroughs, 1)
			c.sendWT(evicted.Line, evicted.Mask, evicted.Data)
		}
		if e := c.cache.Peek(w.LineOf()); e != nil {
			e.Data[w.Index()] = next
			e.State[w.Index()] = cache.Valid
		}
	}
	c.scheduleAtomicDone(coherence.L1HitCycles, w, ret, p.cb)
}

// Acquire implements coherence.L1: a global acquire flash-invalidates
// the whole L1 so no stale data can be read; a local acquire (HRF) does
// nothing.
func (c *Controller) Acquire(scope coherence.Scope) {
	if scope == coherence.ScopeLocal || c.faultNoAcqInval {
		return
	}
	n := c.cache.Invalidate(func(e *cache.Entry, i int) bool {
		// GPU-H keeps its own unflushed (dirty) words: they are this
		// CU's writes, not potentially-stale remote data.
		return c.partialBlocks && e.State[i] == cache.Dirty
	})
	c.epoch++
	// Flash/selective invalidation is a bulk clear of state bits, not a
	// per-frame tag walk; charge a single tag-array access.
	c.meter.L1Tag(1)
	c.st.IncKey(kL1FlashInvalidations, 1)
	c.st.IncKey(kL1InvalidatedWords, uint64(n))
	if c.rec != nil {
		c.rec.Emit(obs.SyncAcquire, int32(c.node), uint64(n))
	}
}

// DisableAcquireInvalidation is test-only fault injection: it makes
// globally scoped acquires skip the flash invalidation, so stale cached
// data survives synchronization. The litmus conformance harness uses it
// to verify that it detects consistency violations.
func (c *Controller) DisableAcquireInvalidation() { c.faultNoAcqInval = true }

// EnableInvariantChecks arms the protocol sanitizer
// (machine.Config.Invariants): the writethrough-ack path panics on an
// ack that finds no pending entry (the wt-balance invariant), and
// CheckInvariants validates the quiesced-state suite. The assertions
// schedule no events and touch no counters, so an armed run stays
// cycle- and report-identical to an unarmed one.
func (c *Controller) EnableInvariantChecks() { c.invariants = true }

// CheckInvariants validates the sanitizer's quiesced-state suite for
// this controller: the store buffer's structure (sb-fifo), the
// outstanding-writethrough count in step with the per-word pending
// table (wt-balance), and — once drained — no stranded local-atomic
// serialization state (a queued atomic with no one processing it is a
// lost wakeup).
func (c *Controller) CheckInvariants() error {
	if err := c.sb.CheckInvariants(); err != nil {
		return fmt.Errorf("node %d: %w", c.node, err)
	}
	if (c.outstandingWT == 0) != (c.wtPending.Len() == 0) {
		return fmt.Errorf("gpucoh: wt-balance: node %d has %d writethroughs outstanding but %d words pending",
			c.node, c.outstandingWT, c.wtPending.Len())
	}
	if c.Drained() {
		// Emptied per-word queues keep their map entry (capacity reuse),
		// so count pending operations, not words.
		queued := 0
		c.localAtomicQ.ForEach(func(_ uint64, q []pendingLocalAtomic) { queued += len(q) })
		if queued > 0 || c.localAtomicIn.Len() > 0 {
			return fmt.Errorf("gpucoh: node %d drained with %d queued and %d in-progress local atomics",
				c.node, queued, c.localAtomicIn.Len())
		}
	}
	return nil
}

// Release implements coherence.L1: a global release drains the store
// buffer as per-line coalesced writethroughs and completes when every
// writethrough (including earlier overflow drains) has been acked by
// the L2; a local release (HRF) completes immediately.
func (c *Controller) Release(scope coherence.Scope, cb func()) {
	if scope == coherence.ScopeLocal {
		c.eng.Schedule(coherence.L1HitCycles, cb)
		return
	}
	if c.rec != nil {
		c.rec.Emit(obs.SyncRelease, int32(c.node), uint64(c.sb.Len()))
	}
	c.sbScratch = c.sb.AppendDrain(c.sbScratch[:0])
	if entries := c.sbScratch; len(entries) > 0 {
		c.meter.StoreBuffer(len(entries))
		c.groupScratch = cache.AppendGroupByLine(c.groupScratch[:0], entries)
		c.st.IncKey(kSbReleaseDrains, 1)
		for _, g := range c.groupScratch {
			c.sendWT(g.Line, g.Mask, g.Data)
		}
	}
	if c.partialBlocks {
		// Flush and downgrade every dirty word (the paper's "on a
		// globally scoped release, GPU-H must flush and downgrade all
		// dirty data to the L2").
		c.cache.ForEach(func(e *cache.Entry) {
			dirty := e.MaskOf(cache.Dirty)
			if dirty == 0 {
				return
			}
			c.sendWT(e.Line, dirty, e.Data)
			for i := 0; i < mem.WordsPerLine; i++ {
				if dirty.Has(i) {
					e.State[i] = cache.Valid
				}
			}
		})
	}
	if c.outstandingWT == 0 {
		c.eng.Schedule(coherence.L1HitCycles, cb)
		return
	}
	c.relWaiters = append(c.relWaiters, cb)
}

// Drained implements coherence.L1.
func (c *Controller) Drained() bool {
	return c.sb.Len() == 0 && c.outstandingWT == 0 && c.reads.Len() == 0 &&
		c.atomics.Len() == 0 && c.wtPending.Len() == 0
}

// Deliver implements noc.Handler.
func (c *Controller) Deliver(p noc.Packet) {
	msg, ok := p.(*coherence.Msg)
	if !ok {
		panic(fmt.Sprintf("gpucoh: non-coherence packet %T", p))
	}
	switch msg.Kind {
	case coherence.ReadResp:
		c.fill(msg)
	case coherence.WriteThroughAck:
		c.outstandingWT--
		if c.outstandingWT < 0 {
			panic("gpucoh: more writethrough acks than writethroughs")
		}
		for i := 0; i < mem.WordsPerLine; i++ {
			if !msg.Mask.Has(i) {
				continue
			}
			w := msg.Line.Word(i)
			if p, ok := c.wtPending.Ptr(uint64(w)); ok {
				p.count--
				if p.count == 0 {
					c.wtPending.Delete(uint64(w))
				}
			} else if c.invariants {
				panic(fmt.Sprintf("gpucoh: wt-balance: node %d acked a writethrough of %v with no pending entry", c.node, w))
			}
		}
		if c.outstandingWT == 0 {
			waiters := c.relWaiters
			c.relWaiters = nil
			for _, w := range waiters {
				w()
			}
		}
	case coherence.AtomicResp:
		ra, ok := c.atomics.Get(msg.ID)
		if !ok {
			panic(fmt.Sprintf("gpucoh: atomic response with unknown id %d", msg.ID))
		}
		c.atomics.Delete(msg.ID)
		ra.cb(msg.Result)
		c.localAtomicIn.Delete(uint64(ra.w))
		c.pumpLocalAtomics(ra.w)
	default:
		panic(fmt.Sprintf("gpucoh: unexpected message %v", msg.Kind))
	}
	// Every handler above is done with the message once it returns (fill
	// copies what its waiters need), so it recycles here.
	c.pool.Put(msg)
}

func (c *Controller) fill(msg *coherence.Msg) {
	txn, _ := c.reads.Get(msg.ID)
	if txn == nil {
		panic(fmt.Sprintf("gpucoh: fill for %v without transaction", msg.Line))
	}
	c.reads.Delete(msg.ID)
	if id, _ := c.lineTxn.Get(uint64(msg.Line)); id == msg.ID {
		c.lineTxn.Delete(uint64(msg.Line))
	}
	// Install only if no acquire invalidated the cache since the
	// request: a post-acquire read must not be satisfied by a
	// pre-acquire fill lingering in the cache.
	if txn.epoch == c.epoch {
		if e := c.cache.Victim(msg.Line); e != nil {
			if e.Line != msg.Line || !e.Tag {
				if e.Tag && c.partialBlocks {
					c.evictDirty(e)
				}
				e.Reset(msg.Line)
			}
			for i := 0; i < mem.WordsPerLine; i++ {
				if msg.Mask.Has(i) {
					if c.partialBlocks && e.State[i] == cache.Dirty {
						continue // own unflushed write is newer
					}
					// Own buffered or in-flight writes are newer than
					// the fill.
					if v, ok := c.sb.Lookup(msg.Line.Word(i)); ok {
						e.Data[i] = v
					} else if p, ok := c.wtPending.Get(uint64(msg.Line.Word(i))); ok {
						e.Data[i] = p.val
					} else {
						e.Data[i] = msg.Data[i]
					}
					e.State[i] = cache.Valid
				}
			}
			c.cache.Touch(e)
			c.meter.L1Access(1)
		}
	} else {
		c.st.IncKey(kL1FillsDroppedStale, 1)
	}
	for _, w := range txn.waiters {
		vals := w.vals
		for i := 0; i < mem.WordsPerLine; i++ {
			if w.need.Has(i) {
				vals[i] = msg.Data[i]
			}
		}
		c.scheduleReadDone(coherence.L1HitCycles, vals, w.cb)
	}
	c.freeReadTxn(txn)
}

// CacheWordState exposes a word's L1 state for tests.
func (c *Controller) CacheWordState(w mem.Word) cache.WordState {
	if e := c.cache.Peek(w.LineOf()); e != nil {
		return e.State[w.Index()]
	}
	return cache.Invalid
}

// PeekWord returns the L1-visible value of a word (store buffer first),
// for functional host reads; ok is false if the word is not present.
func (c *Controller) PeekWord(w mem.Word) (uint32, bool) {
	if e := c.cache.Peek(w.LineOf()); c.partialBlocks && e != nil && e.State[w.Index()] == cache.Dirty {
		return e.Data[w.Index()], true
	}
	if v, ok := c.sb.Lookup(w); ok {
		return v, true
	}
	if p, ok := c.wtPending.Get(uint64(w)); ok {
		return p.val, true
	}
	if e := c.cache.Peek(w.LineOf()); e != nil && e.State[w.Index()] != cache.Invalid {
		return e.Data[w.Index()], true
	}
	return 0, false
}

// StoreBufferLen exposes store-buffer occupancy for tests.
func (c *Controller) StoreBufferLen() int { return c.sb.Len() }

// HostInvalidateLine implements coherence.L1.
func (c *Controller) HostInvalidateLine(l mem.Line, mask mem.WordMask) {
	e := c.cache.Peek(l)
	if e == nil {
		return
	}
	for i := 0; i < mem.WordsPerLine; i++ {
		if mask&mem.Bit(i) != 0 && e.State[i] == cache.Valid {
			e.State[i] = cache.Invalid
		}
	}
}

// HostDropClean empties the cache at a phase-transition drain: every
// remaining word becomes Invalid and frames are untagged. It requires
// a quiesced controller; a leftover Dirty word (GPU-H partial blocks)
// would be a lost write, since the kernel-boundary release must have
// flushed them all. Returns the number of clean words dropped.
func (c *Controller) HostDropClean() (int, error) {
	if !c.Drained() {
		return 0, fmt.Errorf("gpucoh: phase-drain: node %d not drained (sb=%d wt=%d reads=%d atomics=%d)",
			c.node, c.sb.Len(), c.outstandingWT, c.reads.Len(), c.atomics.Len())
	}
	if c.partialBlocks {
		if n := c.cache.CountWords(cache.Dirty); n != 0 {
			return 0, fmt.Errorf("gpucoh: phase-drain: node %d holds %d unflushed dirty words", c.node, n)
		}
	}
	return c.cache.Invalidate(func(*cache.Entry, int) bool { return false }), nil
}
