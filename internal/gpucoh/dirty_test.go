package gpucoh

import (
	"testing"

	"denovogpu/internal/cache"
	"denovogpu/internal/coherence"
	"denovogpu/internal/mem"
	"denovogpu/internal/testrig"
)

// Tests for GPU-H's per-word dirty (partial block) support.

func TestDirtyWriteAllocatesWithoutFetch(t *testing.T) {
	r := testrig.New()
	c := newCtlH(r, 0)
	w := mem.Addr(0x40).WordOf()
	var data [mem.WordsPerLine]uint32
	data[w.Index()] = 5
	r.Eng.Schedule(0, func() {
		c.WriteLine(w.LineOf(), mem.Bit(w.Index()), data, func() {})
	})
	r.Run(t)
	if c.CacheWordState(w) != cache.Dirty {
		t.Fatal("write should install a dirty word")
	}
	// No fetch, no writethrough: writes allocate with the dirty mask.
	if r.Mesh.Sent() != 0 {
		t.Fatalf("partial-block write sent %d messages, want 0", r.Mesh.Sent())
	}
	if r.Stats.Get("l2.dram_fetches") != 0 {
		t.Fatal("partial-block write must not fetch the line")
	}
}

func TestGlobalReleaseFlushesAndDowngrades(t *testing.T) {
	r := testrig.New()
	c := newCtlH(r, 0)
	l := mem.Line(4)
	var data [mem.WordsPerLine]uint32
	data[3] = 33
	data[7] = 77
	done := false
	r.Eng.Schedule(0, func() {
		c.WriteLine(l, mem.Bit(3)|mem.Bit(7), data, func() {
			c.Release(coherence.ScopeGlobal, func() { done = true })
		})
	})
	r.Run(t)
	if !done {
		t.Fatal("release incomplete")
	}
	if r.L2Word(l.Word(3)) != 33 || r.L2Word(l.Word(7)) != 77 {
		t.Fatal("dirty words not flushed to L2")
	}
	if c.CacheWordState(l.Word(3)) != cache.Valid {
		t.Fatal("flushed word should downgrade to Valid, not invalidate")
	}
	// One coalesced writethrough for the line's dirty words.
	if got := r.Stats.Get("l1.writethroughs"); got != 1 {
		t.Fatalf("writethroughs = %d, want 1", got)
	}
}

func TestGlobalAcquireKeepsDirtyWords(t *testing.T) {
	r := testrig.New()
	c := newCtlH(r, 0)
	dirty := mem.Addr(0x40).WordOf()
	clean := mem.Addr(0x2000).WordOf()
	r.Backing.Write(clean, 9)
	var data [mem.WordsPerLine]uint32
	data[dirty.Index()] = 1
	r.Eng.Schedule(0, func() {
		c.WriteLine(dirty.LineOf(), mem.Bit(dirty.Index()), data, func() {
			c.ReadLine(clean.LineOf(), mem.Bit(clean.Index()), func([mem.WordsPerLine]uint32) {
				c.Acquire(coherence.ScopeGlobal)
				if c.CacheWordState(dirty) != cache.Dirty {
					t.Error("global acquire must keep own dirty words")
				}
				if c.CacheWordState(clean) != cache.Invalid {
					t.Error("global acquire must invalidate clean words")
				}
			})
		})
	})
	r.Run(t)
}

func TestDirtyEvictionWritesThrough(t *testing.T) {
	r := testrig.New()
	// 2 sets x 1 way: the third line mapping to set 0 evicts the first.
	c := New(0, r.Eng, r.Mesh, r.Stats, r.Meter, 2*mem.LineBytes, 1, 256, true)
	l0, l2x := mem.Line(0), mem.Line(2)
	var d [mem.WordsPerLine]uint32
	d[1] = 11
	r.Eng.Schedule(0, func() {
		c.WriteLine(l0, mem.Bit(1), d, func() {
			d[1] = 22
			c.WriteLine(l2x, mem.Bit(1), d, func() {})
		})
	})
	r.Run(t)
	if r.Stats.Get("l1.dirty_evictions") != 1 {
		t.Fatalf("dirty evictions = %d, want 1", r.Stats.Get("l1.dirty_evictions"))
	}
	if r.L2Word(l0.Word(1)) != 11 {
		t.Fatal("evicted dirty word lost")
	}
	// The evicted word remains readable (in-flight writethrough).
	r.Eng.Schedule(0, func() {
		c.ReadLine(l0, mem.Bit(1), func(v [mem.WordsPerLine]uint32) {
			if v[1] != 11 {
				t.Errorf("read after dirty eviction = %d, want 11", v[1])
			}
		})
	})
	r.Run(t)
}

func TestDirtyWordNewerThanFill(t *testing.T) {
	r := testrig.New()
	c := newCtlH(r, 0)
	w := mem.Addr(0x40).WordOf()
	r.Backing.Write(w, 1) // stale
	r.Eng.Schedule(0, func() {
		// Fill in flight, then dirty write lands before the fill.
		c.ReadLine(w.LineOf(), mem.Bit(w.Index()), func([mem.WordsPerLine]uint32) {})
		var d [mem.WordsPerLine]uint32
		d[w.Index()] = 2
		c.WriteLine(w.LineOf(), mem.Bit(w.Index()), d, func() {})
	})
	r.Run(t)
	// The fill must not clobber the dirty word.
	r.Eng.Schedule(0, func() {
		c.ReadLine(w.LineOf(), mem.Bit(w.Index()), func(v [mem.WordsPerLine]uint32) {
			if v[w.Index()] != 2 {
				t.Errorf("read %d, want 2 — fill clobbered a dirty word", v[w.Index()])
			}
		})
	})
	r.Run(t)
	if v, ok := c.PeekWord(w); !ok || v != 2 {
		t.Fatalf("peek %d (ok=%v), want 2", v, ok)
	}
}

func TestLocalAtomicChainsOnDirtyWord(t *testing.T) {
	r := testrig.New()
	c := newCtlH(r, 0)
	w := mem.Addr(0x40).WordOf()
	sum := uint32(0)
	r.Eng.Schedule(0, func() {
		var d [mem.WordsPerLine]uint32
		d[w.Index()] = 100
		c.WriteLine(w.LineOf(), mem.Bit(w.Index()), d, func() {
			c.Atomic(coherence.AtomicAdd, w, 1, 0, coherence.ScopeLocal, func(old uint32) { sum = old })
		})
	})
	r.Run(t)
	if sum != 100 {
		t.Fatalf("local atomic on dirty word read %d, want 100", sum)
	}
	if v, _ := c.PeekWord(w); v != 101 {
		t.Fatalf("value %d, want 101", v)
	}
}
