package gpucoh

import (
	"testing"

	"denovogpu/internal/cache"
	"denovogpu/internal/coherence"
	"denovogpu/internal/mem"
	"denovogpu/internal/noc"
	"denovogpu/internal/sim"
	"denovogpu/internal/testrig"
)

func newCtl(r *testrig.Rig, node noc.NodeID) *Controller {
	return New(node, r.Eng, r.Mesh, r.Stats, r.Meter, 32*1024, 8, 256, false)
}

// newCtlH builds a GPU-H controller (per-word dirty partial blocks).
func newCtlH(r *testrig.Rig, node noc.NodeID) *Controller {
	return New(node, r.Eng, r.Mesh, r.Stats, r.Meter, 32*1024, 8, 256, true)
}

func TestReadMissFetchesFromL2(t *testing.T) {
	r := testrig.New()
	c := newCtl(r, 0)
	w := mem.Addr(0x1000).WordOf()
	r.Backing.Write(w, 1234)
	var got uint32
	var at sim.Time
	r.Eng.Schedule(0, func() {
		c.ReadLine(w.LineOf(), mem.Bit(w.Index()), func(v [mem.WordsPerLine]uint32) {
			got = v[w.Index()]
			at = r.Eng.Now()
		})
	})
	r.Run(t)
	if got != 1234 {
		t.Fatalf("read %d, want 1234", got)
	}
	// Cold miss: must include DRAM latency.
	if at < coherence.DRAMCycles {
		t.Fatalf("cold miss completed at %d, faster than DRAM", at)
	}
	if r.Stats.Get("l1.read_misses") != 1 || r.Stats.Get("l2.dram_fetches") != 1 {
		t.Fatalf("miss accounting wrong: %v misses, %v fetches",
			r.Stats.Get("l1.read_misses"), r.Stats.Get("l2.dram_fetches"))
	}
}

func TestReadHitAfterFill(t *testing.T) {
	r := testrig.New()
	c := newCtl(r, 0)
	w := mem.Addr(0x1000).WordOf()
	r.Backing.Write(w, 7)
	r.Eng.Schedule(0, func() {
		c.ReadLine(w.LineOf(), mem.Bit(w.Index()), func([mem.WordsPerLine]uint32) {
			start := r.Eng.Now()
			c.ReadLine(w.LineOf(), mem.Bit(w.Index()), func(v [mem.WordsPerLine]uint32) {
				if v[w.Index()] != 7 {
					t.Errorf("hit value %d, want 7", v[w.Index()])
				}
				if r.Eng.Now()-start != coherence.L1HitCycles {
					t.Errorf("hit latency %d, want %d", r.Eng.Now()-start, coherence.L1HitCycles)
				}
			})
		})
	})
	r.Run(t)
	if r.Stats.Get("l1.read_hits") != 1 {
		t.Fatalf("hits = %d, want 1", r.Stats.Get("l1.read_hits"))
	}
}

func TestWriteBuffersAndForwards(t *testing.T) {
	r := testrig.New()
	c := newCtl(r, 0)
	w := mem.Addr(0x40).WordOf()
	var data [mem.WordsPerLine]uint32
	data[w.Index()] = 55
	r.Eng.Schedule(0, func() {
		c.WriteLine(w.LineOf(), mem.Bit(w.Index()), data, func() {
			// Store-to-load forwarding: read sees the buffered write.
			c.ReadLine(w.LineOf(), mem.Bit(w.Index()), func(v [mem.WordsPerLine]uint32) {
				if v[w.Index()] != 55 {
					t.Errorf("forwarded read %d, want 55", v[w.Index()])
				}
			})
		})
	})
	r.Run(t)
	if c.StoreBufferLen() != 1 {
		t.Fatalf("store buffer len %d, want 1 (write stays buffered until release)", c.StoreBufferLen())
	}
	// No writethrough yet: L2 still has the old value.
	if r.L2Word(w) != 0 {
		t.Fatal("write leaked to L2 before release")
	}
}

func TestReleaseDrainsCoalescedWritethroughs(t *testing.T) {
	r := testrig.New()
	c := newCtl(r, 0)
	l := mem.Line(4)
	var data [mem.WordsPerLine]uint32
	for i := range data {
		data[i] = uint32(i + 100)
	}
	done := false
	r.Eng.Schedule(0, func() {
		c.WriteLine(l, mem.AllWords, data, func() {
			c.Release(coherence.ScopeGlobal, func() { done = true })
		})
	})
	r.Run(t)
	if !done {
		t.Fatal("release did not complete")
	}
	for i := 0; i < mem.WordsPerLine; i++ {
		if got := r.L2Word(l.Word(i)); got != uint32(i+100) {
			t.Fatalf("L2 word %d = %d after release, want %d", i, got, i+100)
		}
	}
	// 16 words to one line must coalesce into a single writethrough.
	if got := r.Stats.Get("l1.writethroughs"); got != 1 {
		t.Fatalf("writethroughs = %d, want 1 (coalescing)", got)
	}
	if !c.Drained() {
		t.Fatal("controller not drained after release")
	}
}

func TestStoreBufferOverflowForcesWordWritethroughs(t *testing.T) {
	r := testrig.New()
	// Tiny 4-entry buffer.
	c := New(0, r.Eng, r.Mesh, r.Stats, r.Meter, 32*1024, 8, 4, false)
	r.Eng.Schedule(0, func() {
		var issue func(i int)
		issue = func(i int) {
			if i == 8 {
				return
			}
			var data [mem.WordsPerLine]uint32
			w := mem.Word(i * mem.WordsPerLine) // distinct lines
			data[0] = uint32(i)
			c.WriteLine(w.LineOf(), mem.Bit(0), data, func() { issue(i + 1) })
		}
		issue(0)
	})
	r.Run(t)
	if got := r.Stats.Get("sb.overflow_writethroughs"); got != 4 {
		t.Fatalf("overflow writethroughs = %d, want 4", got)
	}
}

func TestGlobalAtomicExecutesAtL2(t *testing.T) {
	r := testrig.New()
	c0 := newCtl(r, 0)
	c1 := newCtl(r, 1)
	w := mem.Addr(0x2000).WordOf()
	var r0, r1 uint32
	r.Eng.Schedule(0, func() {
		c0.Atomic(coherence.AtomicAdd, w, 1, 0, coherence.ScopeGlobal, func(old uint32) { r0 = old })
		c1.Atomic(coherence.AtomicAdd, w, 1, 0, coherence.ScopeGlobal, func(old uint32) { r1 = old })
	})
	r.Run(t)
	if r.L2Word(w) != 2 {
		t.Fatalf("L2 value %d after two atomicAdds, want 2", r.L2Word(w))
	}
	if !((r0 == 0 && r1 == 1) || (r0 == 1 && r1 == 0)) {
		t.Fatalf("atomic returns %d,%d: not a serialization of 0,1", r0, r1)
	}
	if r.Stats.Get("l2.atomics") != 2 {
		t.Fatalf("l2.atomics = %d, want 2", r.Stats.Get("l2.atomics"))
	}
}

func TestAcquireFlashInvalidates(t *testing.T) {
	r := testrig.New()
	c := newCtl(r, 0)
	w := mem.Addr(0x3000).WordOf()
	r.Backing.Write(w, 5)
	r.Eng.Schedule(0, func() {
		c.ReadLine(w.LineOf(), mem.Bit(w.Index()), func([mem.WordsPerLine]uint32) {
			if c.CacheWordState(w) != cache.Valid {
				t.Error("word not cached after fill")
			}
			c.Acquire(coherence.ScopeGlobal)
			if c.CacheWordState(w) != cache.Invalid {
				t.Error("global acquire must flash-invalidate the L1")
			}
		})
	})
	r.Run(t)
	if r.Stats.Get("l1.flash_invalidations") != 1 {
		t.Fatal("flash invalidation not counted")
	}
}

func TestLocalAcquireReleaseAreNoOps(t *testing.T) {
	r := testrig.New()
	c := newCtlH(r, 0)
	w := mem.Addr(0x3000).WordOf()
	r.Backing.Write(w, 5)
	r.Eng.Schedule(0, func() {
		c.ReadLine(w.LineOf(), mem.Bit(w.Index()), func([mem.WordsPerLine]uint32) {
			c.Acquire(coherence.ScopeLocal)
			if c.CacheWordState(w) != cache.Valid {
				t.Error("local acquire must not invalidate (GPU-H)")
			}
			var data [mem.WordsPerLine]uint32
			data[w.Index()] = 9
			c.WriteLine(w.LineOf(), mem.Bit(w.Index()), data, func() {
				c.Release(coherence.ScopeLocal, func() {
					if c.CacheWordState(w) != cache.Dirty {
						t.Error("local release must leave the word dirty in L1 (GPU-H)")
					}
				})
			})
		})
	})
	r.Run(t)
	if r.L2Word(w) == 9 {
		t.Fatal("locally released write must not reach L2")
	}
}

func TestLocalAtomicAtL1NoTraffic(t *testing.T) {
	r := testrig.New()
	c := newCtlH(r, 0)
	w := mem.Addr(0x4000).WordOf()
	r.Backing.Write(w, 10)
	var first uint32
	r.Eng.Schedule(0, func() {
		// First local atomic misses and fetches the line; after that,
		// further local atomics generate no network traffic.
		c.Atomic(coherence.AtomicAdd, w, 1, 0, coherence.ScopeLocal, func(old uint32) {
			first = old
			sent := r.Mesh.Sent()
			c.Atomic(coherence.AtomicAdd, w, 1, 0, coherence.ScopeLocal, func(old uint32) {
				if old != 11 {
					t.Errorf("second local atomic old = %d, want 11", old)
				}
				if r.Mesh.Sent() != sent {
					t.Error("local atomic hit generated network traffic")
				}
			})
		})
	})
	r.Run(t)
	if first != 10 {
		t.Fatalf("first local atomic old = %d, want 10", first)
	}
	if r.Stats.Get("l1.atomics_local") != 2 {
		t.Fatalf("local atomics = %d, want 2", r.Stats.Get("l1.atomics_local"))
	}
}

func TestLocalAtomicsSameWordSerialize(t *testing.T) {
	r := testrig.New()
	c := newCtlH(r, 0)
	w := mem.Addr(0x5000).WordOf()
	sum := 0
	r.Eng.Schedule(0, func() {
		// Two concurrent local atomics racing through the miss path must
		// not lose an update.
		for i := 0; i < 2; i++ {
			c.Atomic(coherence.AtomicAdd, w, 1, 0, coherence.ScopeLocal, func(uint32) { sum++ })
		}
	})
	r.Run(t)
	if sum != 2 {
		t.Fatalf("%d callbacks, want 2", sum)
	}
	if v, ok := c.PeekWord(w); !ok || v != 2 {
		t.Fatalf("word value %d (ok=%v), want 2 — lost update", v, ok)
	}
}

func TestPostAcquireReadDoesNotJoinStaleFill(t *testing.T) {
	r := testrig.New()
	c := newCtl(r, 0)
	w := mem.Addr(0x6000).WordOf()
	r.Backing.Write(w, 1)
	r.Eng.Schedule(0, func() {
		// Start a read, then immediately acquire (invalidate), then read
		// again: the second read must get its own fill, and the stale
		// fill must not install.
		c.ReadLine(w.LineOf(), mem.Bit(w.Index()), func([mem.WordsPerLine]uint32) {})
		c.Acquire(coherence.ScopeGlobal)
		c.ReadLine(w.LineOf(), mem.Bit(w.Index()), func(v [mem.WordsPerLine]uint32) {
			if v[w.Index()] != 1 {
				t.Errorf("post-acquire read %d, want 1", v[w.Index()])
			}
		})
	})
	r.Run(t)
	if got := r.Stats.Get("l1.fills_dropped_stale"); got != 1 {
		t.Fatalf("stale fills dropped = %d, want 1", got)
	}
	if got := r.Stats.Get("l2.dram_fetches"); got != 1 {
		t.Fatalf("dram fetches = %d, want 1 (same line)", got)
	}
}

func TestReleaseWithEmptyBufferCompletesFast(t *testing.T) {
	r := testrig.New()
	c := newCtl(r, 0)
	var at sim.Time
	r.Eng.Schedule(0, func() {
		c.Release(coherence.ScopeGlobal, func() { at = r.Eng.Now() })
	})
	r.Run(t)
	if at != coherence.L1HitCycles {
		t.Fatalf("empty release at %d, want %d", at, coherence.L1HitCycles)
	}
}

// TestInFlightWritethroughNotStale is a regression test: a fill that
// was requested before a write, arriving after the write's overflow
// writethrough left the store buffer, must not resurrect the pre-write
// value while the writethrough is still in flight.
func TestInFlightWritethroughNotStale(t *testing.T) {
	r := testrig.New()
	c := New(0, r.Eng, r.Mesh, r.Stats, r.Meter, 32*1024, 8, 1, false) // 1-entry buffer
	w := mem.Addr(0x40).WordOf()
	r.Backing.Write(w, 1) // old value
	r.Eng.Schedule(0, func() {
		// Read in flight (will return the old value and try to install it)...
		c.ReadLine(w.LineOf(), mem.Bit(w.Index()), func([mem.WordsPerLine]uint32) {})
		// ...write the word, then overflow the 1-entry buffer so the
		// write leaves as an in-flight writethrough...
		var d [mem.WordsPerLine]uint32
		d[w.Index()] = 2
		c.WriteLine(w.LineOf(), mem.Bit(w.Index()), d, func() {
			var d2 [mem.WordsPerLine]uint32
			d2[0] = 9
			c.WriteLine(mem.Line(99), mem.Bit(0), d2, func() {
				// ...and read it back after the stale fill has installed.
				r.Eng.Schedule(60, func() {
					c.ReadLine(w.LineOf(), mem.Bit(w.Index()), func(v [mem.WordsPerLine]uint32) {
						if v[w.Index()] != 2 {
							t.Errorf("read %d, want 2 — stale fill overtook in-flight writethrough", v[w.Index()])
						}
						c.Release(coherence.ScopeGlobal, func() {})
					})
				})
			})
		})
	})
	r.Run(t)
	if !c.Drained() {
		t.Fatal("controller should drain")
	}
}
