package interconnect

import (
	"testing"

	"denovogpu/internal/energy"
	"denovogpu/internal/noc"
	"denovogpu/internal/sim"
	"denovogpu/internal/stats"
	"denovogpu/internal/topology"
)

// testPacket is a minimal routable packet with a delivery thunk so
// tests can observe where and when the fabric lands it.
type testPacket struct {
	route noc.Route
}

func (p *testPacket) NocRoute() noc.Route { return p.route }

// sink records deliveries at one (node, port).
type sink struct {
	eng      *sim.Engine
	got      []noc.Packet
	arrivals []sim.Time
}

func (s *sink) Deliver(p noc.Packet) {
	s.got = append(s.got, p)
	s.arrivals = append(s.arrivals, s.eng.Now())
}

// rig builds a d-device fabric with fresh meshes and a sink attached
// at PortL2 of every node.
func rig(t *testing.T, devices int) (*sim.Engine, *stats.Stats, *Fabric, *sink) {
	t.Helper()
	eng := sim.NewEngine(0)
	st := stats.New()
	meter := energy.NewMeter(st)
	topo := topology.New(devices)
	meshes := make([]*noc.Mesh, devices)
	for d := range meshes {
		meshes[d] = noc.NewAt(eng, st, meter, noc.NodeID(d*noc.Nodes))
	}
	f := New(eng, st, meter, topo, meshes)
	s := &sink{eng: eng}
	for d := 0; d < devices; d++ {
		for local := 0; local < noc.Nodes; local++ {
			f.Attach(topo.Node(d, local), noc.PortL2, s)
		}
	}
	return eng, st, f, s
}

// TestLocalSendStaysOffLink: a packet between two nodes of one device
// routes over that device's mesh only — no XDev flits, no link
// occupancy, no cross-device accounting.
func TestLocalSendStaysOffLink(t *testing.T) {
	eng, st, f, s := rig(t, 2)
	p := &testPacket{route: noc.Route{Src: 0, Dst: 5, Port: noc.PortL2, Class: stats.TrafficRead, PayloadBytes: 32}}
	f.Send(p)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.got) != 1 || s.got[0] != p {
		t.Fatalf("delivered %v, want the original packet once", s.got)
	}
	if st.Flits[stats.TrafficXDev] != 0 {
		t.Errorf("device-local send crossed %d XDev flits", st.Flits[stats.TrafficXDev])
	}
	if f.Sent() != 0 {
		t.Errorf("fabric counted %d cross-device packets", f.Sent())
	}
	if got, want := s.arrivals[0], noc.MinLatency(0, 5, 32); got != want {
		t.Errorf("local delivery at %d, want unloaded mesh latency %d", got, want)
	}
}

// TestCrossSendDeliversOriginal: a cross-device packet arrives at the
// destination handler unwrapped — the handler sees the exact packet the
// sender injected, at exactly the fabric's advertised MinLatency, with
// all three stages' flits accounted as XDev.
func TestCrossSendDeliversOriginal(t *testing.T) {
	eng, st, f, s := rig(t, 2)
	src, dst := noc.NodeID(0), noc.NodeID(noc.Nodes+5)
	const payload = 32
	p := &testPacket{route: noc.Route{Src: src, Dst: dst, Port: noc.PortL2, Class: stats.TrafficRead, PayloadBytes: payload}}
	f.Send(p)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.got) != 1 || s.got[0] != p {
		t.Fatalf("delivered %v, want the original packet once", s.got)
	}
	if got, want := s.arrivals[0], f.MinLatency(src, dst, payload); got != want {
		t.Errorf("unloaded crossing arrived at %d, want MinLatency %d", got, want)
	}
	// Mesh flit accounting counts crossings (flits x links traversed);
	// the link itself counts each flit once.
	flits := uint64(noc.Flits(payload))
	gwA, gwB := noc.NodeID(noc.Nodes-1), noc.NodeID(2*noc.Nodes-1)
	wantFlits := flits * uint64(noc.Hops(src, gwA)+1+noc.Hops(gwB, dst))
	if got := st.Flits[stats.TrafficXDev]; got != wantFlits {
		t.Errorf("XDev flits = %d, want %d (source leg + link + destination leg)", got, wantFlits)
	}
	if f.Sent() != 1 {
		t.Errorf("Sent = %d", f.Sent())
	}
	if busy := f.LinkBusy(0, 1); busy != flits*LinkFlitCycles {
		t.Errorf("link 0->1 busy %d flit-cycles, want %d", busy, flits*LinkFlitCycles)
	}
	if busy := f.LinkBusy(1, 0); busy != 0 {
		t.Errorf("reverse link busy %d, want 0 (links are per ordered pair)", busy)
	}
}

// TestMinLatencyDominatesMesh: the link's head latency makes any
// crossing far more expensive than any on-device route — the cliff's
// first-principles cause.
func TestMinLatencyDominatesMesh(t *testing.T) {
	_, _, f, _ := rig(t, 2)
	cross := f.MinLatency(0, noc.NodeID(noc.Nodes), 4)
	worstLocal := noc.MinLatency(0, noc.NodeID(noc.Nodes-1), 4)
	if cross <= worstLocal+LinkLatencyCycles {
		t.Errorf("crossing costs %d, want > worst mesh route %d + link latency %d",
			cross, worstLocal, LinkLatencyCycles)
	}
}

// TestLinkSerialization: back-to-back crossings of one ordered device
// pair serialize — each claims the link for its flit occupancy, so the
// k-th packet arrives LinkFlitCycles*flits later than the (k-1)-th,
// and FIFO order is preserved end to end.
func TestLinkSerialization(t *testing.T) {
	eng, _, f, s := rig(t, 2)
	const n, payload = 4, 32
	packets := make([]*testPacket, n)
	for i := range packets {
		packets[i] = &testPacket{route: noc.Route{
			Src: 0, Dst: noc.NodeID(noc.Nodes + 5), Port: noc.PortL2,
			Class: stats.TrafficRead, PayloadBytes: payload,
		}}
		f.Send(packets[i])
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.got) != n {
		t.Fatalf("delivered %d packets, want %d", len(s.got), n)
	}
	for i, p := range s.got {
		if p != packets[i] {
			t.Fatalf("delivery %d out of order", i)
		}
	}
	occupancy := sim.Time(noc.Flits(payload)) * LinkFlitCycles
	for i := 1; i < n; i++ {
		if gap := s.arrivals[i] - s.arrivals[i-1]; gap != occupancy {
			t.Errorf("arrival gap %d->%d is %d cycles, want serialization occupancy %d",
				i-1, i, gap, occupancy)
		}
	}
	if busy := f.LinkBusy(0, 1); busy != uint64(occupancy)*n {
		t.Errorf("link busy %d, want %d", busy, uint64(occupancy)*n)
	}
}

// TestOppositeDirectionsDontSerialize: the two directions of a device
// pair are independent links (full duplex): simultaneous opposite
// crossings arrive at the same cycle, neither delayed by the other.
func TestOppositeDirectionsDontSerialize(t *testing.T) {
	eng, _, f, s := rig(t, 2)
	const payload = 32
	f.Send(&testPacket{route: noc.Route{Src: 0, Dst: noc.NodeID(noc.Nodes), Port: noc.PortL2, Class: stats.TrafficRead, PayloadBytes: payload}})
	f.Send(&testPacket{route: noc.Route{Src: noc.NodeID(noc.Nodes), Dst: 0, Port: noc.PortL2, Class: stats.TrafficRead, PayloadBytes: payload}})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.got) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(s.got))
	}
	if s.arrivals[0] != s.arrivals[1] {
		t.Errorf("opposite-direction crossings arrived at %d and %d; full-duplex links must not serialize them",
			s.arrivals[0], s.arrivals[1])
	}
}

// TestLegPacketPooling: steady-state crossings recycle leg wrappers
// instead of allocating.
func TestLegPacketPooling(t *testing.T) {
	eng, _, f, _ := rig(t, 2)
	route := noc.Route{Src: 0, Dst: noc.NodeID(noc.Nodes + 3), Port: noc.PortL2, Class: stats.TrafficRead, PayloadBytes: 16}
	f.Send(&testPacket{route: route})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(f.free) != 1 {
		t.Fatalf("free list holds %d legs after a completed crossing, want 1", len(f.free))
	}
	recycled := f.free[0]
	f.Send(&testPacket{route: route})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(f.free) != 1 || f.free[0] != recycled {
		t.Error("second crossing did not reuse the pooled leg wrapper")
	}
}

// TestMismatchedMeshesPanic: construction fail-closes on wiring bugs —
// wrong mesh count or a mesh based at the wrong global offset.
func TestMismatchedMeshesPanic(t *testing.T) {
	eng := sim.NewEngine(0)
	st := stats.New()
	meter := energy.NewMeter(st)
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("mesh count mismatch", func() {
		New(eng, st, meter, topology.New(2), []*noc.Mesh{noc.New(eng, st, meter)})
	})
	expectPanic("mesh base mismatch", func() {
		New(eng, st, meter, topology.New(2), []*noc.Mesh{
			noc.New(eng, st, meter),
			noc.NewAt(eng, st, meter, noc.NodeID(5)),
		})
	})
}
