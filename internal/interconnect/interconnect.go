// Package interconnect models the inter-device link joining the
// per-device mesh domains of a multi-device machine, in the style of
// internal/noc links: a bandwidth-limited, serialized channel with a
// fixed head latency, plus the mesh "legs" that carry a crossing
// packet to and from each device's gateway node.
//
// A cross-device packet's journey has three stages:
//
//  1. source leg: ride the source device's mesh from the sender to the
//     device gateway (topology.GatewayLocal), as an ordinary mesh
//     packet addressed to noc.PortGW;
//  2. link: serialize over the inter-device link for the ordered
//     device pair (one link per direction, like a full-duplex cable),
//     paying LinkLatencyCycles of head latency plus LinkFlitCycles per
//     flit of occupancy;
//  3. destination leg: ride the destination device's mesh from its
//     gateway to the final node, where the fabric unwraps the leg and
//     delivers the original packet to the same handler a device-local
//     send would have hit.
//
// Every flit of all three stages is accounted under
// stats.TrafficXDev, so the traffic split directly exposes how much of
// a workload's communication left its device — the quantity behind the
// device-local vs cross-device sync cost cliff in EXPERIMENTS.md.
package interconnect

import (
	"fmt"

	"denovogpu/internal/energy"
	"denovogpu/internal/noc"
	"denovogpu/internal/sim"
	"denovogpu/internal/stats"
	"denovogpu/internal/topology"
)

// Link timing parameters (cycles). The inter-device link is modeled as
// an NVLink/PCIe-class serial channel: its head latency dwarfs a mesh
// hop (hundreds of cycles of SerDes, retimers and protocol layers
// against HopCycles=3) and its per-flit occupancy is a few GPU cycles
// per 16-byte flit (tens of GB/s against the mesh's one flit per cycle
// per link).
const (
	// LinkLatencyCycles is the head-flit latency across the link.
	LinkLatencyCycles = 180
	// LinkFlitCycles is the serialization occupancy per flit: each flit
	// holds the link this many cycles, so the link's bandwidth is
	// 1/LinkFlitCycles of a mesh link's.
	LinkFlitCycles = 4
)

// legStage marks where in its three-stage journey a crossing packet is.
type legStage int

const (
	stageToGateway legStage = iota
	stageFromGateway
)

// legPacket wraps a cross-device packet for one mesh leg. It is both
// the noc.Packet the mesh routes (with the leg's own route, classed
// TrafficXDev) and the sim.Task that fires when the link transit
// completes. Pooled: steady-state crossings do not allocate.
type legPacket struct {
	f     *Fabric
	inner noc.Packet
	// final is the original route (true source, destination, port).
	final noc.Route
	// cur is the route of the mesh leg currently in flight.
	cur   noc.Route
	stage legStage
}

func (l *legPacket) NocRoute() noc.Route { return l.cur }

// Run fires when the link transit completes: launch the destination
// leg on the remote device's mesh.
func (l *legPacket) Run() {
	l.stage = stageFromGateway
	dstDev := l.f.topo.DeviceOf(l.final.Dst)
	l.cur = noc.Route{
		Src:          l.f.topo.GatewayNode(dstDev),
		Dst:          l.final.Dst,
		Port:         noc.PortGW,
		Class:        stats.TrafficXDev,
		PayloadBytes: l.final.PayloadBytes,
	}
	l.f.meshes[dstDev].Send(l)
}

// Fabric is the machine-wide send fabric: a noc.Sender that routes
// device-local packets straight to the owning mesh and carries
// cross-device packets over the inter-device link. Controllers hold it
// as their noc.Sender and stay oblivious to topology.
type Fabric struct {
	eng    *sim.Engine
	st     *stats.Stats
	meter  *energy.Meter
	topo   topology.Desc
	meshes []*noc.Mesh

	// linkFree[src][dst] is the first cycle the (src→dst) device link
	// is available; one independent link per ordered pair.
	linkFree [][]sim.Time
	// linkBusy[src][dst] counts cumulative flit-cycles each link has
	// been claimed for (monotone; sample and differentiate for
	// utilization, like noc.Mesh.LinkBusy).
	linkBusy [][]uint64
	sent     uint64
	crossed  uint64

	free []*legPacket
}

// New returns a fabric joining the given per-device meshes. meshes[d]
// must be the mesh based at d*noc.Nodes. The fabric attaches itself at
// noc.PortGW of every node of every mesh, so it must be constructed
// before handlers expect gateway deliveries and needs no further
// wiring.
func New(eng *sim.Engine, st *stats.Stats, meter *energy.Meter, topo topology.Desc, meshes []*noc.Mesh) *Fabric {
	if len(meshes) != topo.Devices {
		panic(fmt.Sprintf("interconnect: %d meshes for %d devices", len(meshes), topo.Devices))
	}
	f := &Fabric{eng: eng, st: st, meter: meter, topo: topo, meshes: meshes}
	f.linkFree = make([][]sim.Time, topo.Devices)
	f.linkBusy = make([][]uint64, topo.Devices)
	for d := range f.linkFree {
		f.linkFree[d] = make([]sim.Time, topo.Devices)
		f.linkBusy[d] = make([]uint64, topo.Devices)
		if meshes[d].Base() != noc.NodeID(d*noc.Nodes) {
			panic(fmt.Sprintf("interconnect: mesh %d based at %d (want %d)", d, meshes[d].Base(), d*noc.Nodes))
		}
		for local := 0; local < noc.Nodes; local++ {
			meshes[d].Attach(topo.Node(d, local), noc.PortGW, f)
		}
	}
	return f
}

// Attach registers a handler on the mesh owning the (global) node, so
// the fabric satisfies noc.Network and controllers can be constructed
// against it exactly as against a single mesh.
func (f *Fabric) Attach(n noc.NodeID, p noc.Port, h noc.Handler) {
	f.meshes[f.topo.DeviceOf(n)].Attach(n, p, h)
}

// Send routes p: on-device packets go straight to the owning mesh;
// cross-device packets start their source leg toward the gateway.
func (f *Fabric) Send(p noc.Packet) {
	r := p.NocRoute()
	srcDev := f.topo.DeviceOf(r.Src)
	if f.topo.DeviceOf(r.Dst) == srcDev {
		f.meshes[srcDev].Send(p)
		return
	}
	f.sent++
	var l *legPacket
	if n := len(f.free); n > 0 {
		l = f.free[n-1]
		f.free[n-1] = nil
		f.free = f.free[:n-1]
	} else {
		l = &legPacket{f: f}
	}
	l.inner, l.final, l.stage = p, r, stageToGateway
	l.cur = noc.Route{
		Src:          r.Src,
		Dst:          f.topo.GatewayNode(srcDev),
		Port:         noc.PortGW,
		Class:        stats.TrafficXDev,
		PayloadBytes: r.PayloadBytes,
	}
	f.meshes[srcDev].Send(l)
}

// Deliver receives mesh deliveries addressed to noc.PortGW: a leg that
// reached the source gateway starts its link transit; a leg that
// reached its final node unwraps and delivers the original packet.
func (f *Fabric) Deliver(p noc.Packet) {
	l, ok := p.(*legPacket)
	if !ok {
		panic(fmt.Sprintf("interconnect: non-leg packet %T delivered to gateway port", p))
	}
	switch l.stage {
	case stageToGateway:
		f.transit(l)
	case stageFromGateway:
		dst, port := l.final.Dst, l.final.Port
		inner := l.inner
		l.inner, l.cur, l.final = nil, noc.Route{}, noc.Route{}
		f.free = append(f.free, l)
		h := f.meshes[f.topo.DeviceOf(dst)].HandlerAt(dst, port)
		if h == nil {
			panic(fmt.Sprintf("interconnect: no handler attached at node %d port %d", dst, port))
		}
		h.Deliver(inner)
	}
}

// transit serializes the leg over the inter-device link and schedules
// its arrival at the remote gateway. Like a mesh link, the channel
// transmits back-to-back packets without gaps, so departures (and with
// a fixed head latency, arrivals) are FIFO per ordered device pair.
func (f *Fabric) transit(l *legPacket) {
	s, d := f.topo.DeviceOf(l.final.Src), f.topo.DeviceOf(l.final.Dst)
	flits := uint64(noc.Flits(l.final.PayloadBytes))
	occupancy := sim.Time(flits) * LinkFlitCycles

	f.crossed++
	f.st.AddFlits(stats.TrafficXDev, flits)
	f.meter.XDevFlits(flits)

	depart := f.eng.Now()
	if free := f.linkFree[s][d]; free > depart {
		depart = free
	}
	f.linkFree[s][d] = depart + occupancy
	f.linkBusy[s][d] += uint64(occupancy)
	f.eng.AtTask(depart+occupancy+LinkLatencyCycles, l)
}

// Sent returns the number of cross-device packets injected, a
// determinism diagnostic in the style of noc.Mesh.Sent.
func (f *Fabric) Sent() uint64 { return f.sent }

// LinkBusy returns cumulative flit-cycles the (src→dst) device link
// has been claimed for.
func (f *Fabric) LinkBusy(src, dst int) uint64 { return f.linkBusy[src][dst] }

// MinLatency returns the unloaded end-to-end latency for a payload of
// n bytes between two nodes on different devices: both mesh legs plus
// the link transit.
func (f *Fabric) MinLatency(a, b noc.NodeID, payloadBytes int) sim.Time {
	gwA := f.topo.GatewayNode(f.topo.DeviceOf(a))
	gwB := f.topo.GatewayNode(f.topo.DeviceOf(b))
	link := sim.Time(noc.Flits(payloadBytes))*LinkFlitCycles + LinkLatencyCycles
	return noc.MinLatency(a, gwA, payloadBytes) + link + noc.MinLatency(gwB, b, payloadBytes)
}
