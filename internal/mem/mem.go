// Package mem defines the address geometry and the flat backing store
// shared by every component of the simulated memory hierarchy.
//
// The simulated machine uses 4-byte words and 64-byte cache lines
// (16 words per line), matching the paper's configuration. Coherence
// state in the DeNovo protocol is kept at word granularity while tags
// and transfers use line granularity, so both units appear throughout
// the codebase; this package centralizes the arithmetic.
package mem

import "fmt"

// Geometry constants. These are fixed for the whole simulator: the
// paper's protocols assume 4 B words, and GPU caches use 64 B lines.
const (
	WordBytes    = 4
	LineBytes    = 64
	WordsPerLine = LineBytes / WordBytes
)

// Addr is a byte address in the unified shared address space.
type Addr uint64

// Line identifies a cache line (Addr >> 6).
type Line uint64

// Word identifies a 4-byte word (Addr >> 2).
type Word uint64

// LineOf returns the cache line containing a.
func (a Addr) LineOf() Line { return Line(a / LineBytes) }

// WordOf returns the word containing a.
func (a Addr) WordOf() Word { return Word(a / WordBytes) }

// WordIndex returns the index of a's word within its line (0..15).
func (a Addr) WordIndex() int { return int(a % LineBytes / WordBytes) }

// Aligned reports whether a is word aligned. Every access in the
// simulator is word aligned; the paper's benchmarks have no byte
// granularity accesses (its footnote 1).
func (a Addr) Aligned() bool { return a%WordBytes == 0 }

// Addr returns the byte address of the first byte of the line.
func (l Line) Addr() Addr { return Addr(l) * LineBytes }

// Word returns the i'th word of the line.
func (l Line) Word(i int) Word { return Word(l)*WordsPerLine + Word(i) }

// Addr returns the byte address of the word.
func (w Word) Addr() Addr { return Addr(w) * WordBytes }

// LineOf returns the line containing the word.
func (w Word) LineOf() Line { return Line(w / WordsPerLine) }

// Index returns the word's index within its line (0..15).
func (w Word) Index() int { return int(w % WordsPerLine) }

func (a Addr) String() string { return fmt.Sprintf("0x%x", uint64(a)) }
func (l Line) String() string { return fmt.Sprintf("line 0x%x", uint64(l)) }
func (w Word) String() string { return fmt.Sprintf("word 0x%x", uint64(w)) }

// WordMask is a bitmask over the 16 words of a line.
type WordMask uint16

// AllWords covers every word of a line.
const AllWords WordMask = 1<<WordsPerLine - 1

// Bit returns the mask with only word index i set.
func Bit(i int) WordMask { return 1 << uint(i) }

// Has reports whether word index i is in the mask.
func (m WordMask) Has(i int) bool { return m&Bit(i) != 0 }

// Count returns the number of words in the mask.
func (m WordMask) Count() int {
	n := 0
	for i := 0; i < WordsPerLine; i++ {
		if m.Has(i) {
			n++
		}
	}
	return n
}

// Backing is the flat main-memory image. It carries real data values so
// the simulation is functional as well as timed: benchmarks compute real
// results that tests verify. The zero value is ready to use; absent
// words read as zero, like zero-initialized device memory.
type Backing struct {
	words map[Word]uint32
}

// NewBacking returns an empty backing store.
func NewBacking() *Backing { return &Backing{words: make(map[Word]uint32)} }

// Read returns the value of word w.
func (b *Backing) Read(w Word) uint32 { return b.words[w] }

// Write sets the value of word w.
func (b *Backing) Write(w Word, v uint32) { b.words[w] = v }

// ReadLine returns all 16 words of line l.
func (b *Backing) ReadLine(l Line) [WordsPerLine]uint32 {
	var vals [WordsPerLine]uint32
	for i := 0; i < WordsPerLine; i++ {
		vals[i] = b.words[l.Word(i)]
	}
	return vals
}

// WriteLine stores the words of l selected by mask.
func (b *Backing) WriteLine(l Line, vals [WordsPerLine]uint32, mask WordMask) {
	for i := 0; i < WordsPerLine; i++ {
		if mask.Has(i) {
			b.words[l.Word(i)] = vals[i]
		}
	}
}

// Footprint returns the number of distinct words ever written.
func (b *Backing) Footprint() int { return len(b.words) }
