package mem

import (
	"testing"
	"testing/quick"
)

func TestGeometry(t *testing.T) {
	if WordsPerLine != 16 {
		t.Fatalf("WordsPerLine = %d, want 16", WordsPerLine)
	}
	a := Addr(0x1234)
	if !a.Aligned() {
		t.Fatal("0x1234 should be word aligned")
	}
	if a.LineOf() != Line(0x48) {
		t.Fatalf("LineOf(0x1234) = %v", a.LineOf())
	}
	if a.WordOf() != Word(0x48D) {
		t.Fatalf("WordOf(0x1234) = %v", a.WordOf())
	}
	if a.WordIndex() != 13 {
		t.Fatalf("WordIndex(0x1234) = %d, want 13", a.WordIndex())
	}
}

// Property: word/line round trips are consistent for any address.
func TestAddressRoundTripProperty(t *testing.T) {
	f := func(raw uint64) bool {
		a := Addr(raw &^ 3) // word align
		w := a.WordOf()
		l := a.LineOf()
		return w.Addr() == a &&
			w.LineOf() == l &&
			l.Word(w.Index()) == w &&
			a.WordIndex() == w.Index() &&
			l.Addr().LineOf() == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWordMask(t *testing.T) {
	m := Bit(0) | Bit(5) | Bit(15)
	if m.Count() != 3 {
		t.Fatalf("Count = %d, want 3", m.Count())
	}
	if !m.Has(5) || m.Has(6) {
		t.Fatal("Has gives wrong membership")
	}
	if AllWords.Count() != WordsPerLine {
		t.Fatalf("AllWords.Count = %d", AllWords.Count())
	}
}

// Property: mask count equals number of set bits for any mask.
func TestWordMaskCountProperty(t *testing.T) {
	f := func(m uint16) bool {
		mask := WordMask(m)
		n := 0
		for i := 0; i < 16; i++ {
			if m&(1<<i) != 0 {
				n++
			}
		}
		return mask.Count() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBackingReadWrite(t *testing.T) {
	b := NewBacking()
	if b.Read(Word(10)) != 0 {
		t.Fatal("unwritten word should read 0")
	}
	b.Write(Word(10), 42)
	if b.Read(Word(10)) != 42 {
		t.Fatal("write not visible")
	}
	if b.Footprint() != 1 {
		t.Fatalf("footprint = %d, want 1", b.Footprint())
	}
}

func TestBackingLineOps(t *testing.T) {
	b := NewBacking()
	var vals [WordsPerLine]uint32
	for i := range vals {
		vals[i] = uint32(i * 100)
	}
	l := Line(7)
	b.WriteLine(l, vals, Bit(3)|Bit(4))
	got := b.ReadLine(l)
	for i := range got {
		want := uint32(0)
		if i == 3 || i == 4 {
			want = uint32(i * 100)
		}
		if got[i] != want {
			t.Fatalf("word %d = %d, want %d (mask-selective write leaked)", i, got[i], want)
		}
	}
	b.WriteLine(l, vals, AllWords)
	got = b.ReadLine(l)
	for i := range got {
		if got[i] != vals[i] {
			t.Fatalf("full-line write word %d = %d, want %d", i, got[i], vals[i])
		}
	}
}

// Property: a masked line write followed by a read returns written values
// under the mask and leaves others untouched.
func TestBackingMaskedWriteProperty(t *testing.T) {
	f := func(line uint32, m uint16, seedVals [WordsPerLine]uint32) bool {
		b := NewBacking()
		l := Line(line)
		base := [WordsPerLine]uint32{}
		for i := range base {
			base[i] = uint32(i) + 1
		}
		b.WriteLine(l, base, AllWords)
		b.WriteLine(l, seedVals, WordMask(m))
		got := b.ReadLine(l)
		for i := 0; i < WordsPerLine; i++ {
			want := base[i]
			if WordMask(m).Has(i) {
				want = seedVals[i]
			}
			if got[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
