// Package consistency encodes the machine's memory consistency model:
// data-race-free (DRF) or heterogeneous-race-free (HRF-Indirect).
//
// The difference is deliberately small — that is the paper's point.
// Under DRF there are no scopes: every synchronization access behaves
// as if globally scoped, and the model guarantees sequential
// consistency to data-race-free programs. Under HRF, synchronization
// accesses carry a scope annotation and only same-scope
// synchronization orders accesses; the protocols exploit local scope by
// skipping invalidations, flushes, and (for DeNovo) eager ownership.
//
// The program-order requirement common to both models (an acquire
// completes before later accesses issue; earlier writes complete before
// a release; synchronization accesses are ordered with each other) is
// enforced by the CU: it wraps each synchronization access in the
// protocol's Release/Atomic/Acquire sequence and does not issue
// subsequent instructions from the thread block until the sequence
// completes.
package consistency

import "denovogpu/internal/coherence"

// Model selects the consistency model.
type Model int

const (
	// DRF is data-race-free (SC-for-DRF); scopes are ignored.
	DRF Model = iota
	// HRF is heterogeneous-race-free (HRF-Indirect); scopes are honored.
	HRF
)

func (m Model) String() string {
	if m == HRF {
		return "HRF"
	}
	return "DRF"
}

// Effective maps a program-level scope annotation to the scope the
// protocol acts on: under DRF every synchronization is global, so a
// program annotated with scopes runs correctly (if conservatively) —
// scope annotations are hints that DRF is free to ignore, which is
// exactly the programmability argument the paper makes.
func (m Model) Effective(s coherence.Scope) coherence.Scope {
	if m == DRF {
		return coherence.ScopeGlobal
	}
	return s
}
