package consistency

import (
	"testing"

	"denovogpu/internal/coherence"
)

func TestEffectiveScope(t *testing.T) {
	cases := []struct {
		model Model
		in    coherence.Scope
		want  coherence.Scope
	}{
		{DRF, coherence.ScopeLocal, coherence.ScopeGlobal},
		{DRF, coherence.ScopeGlobal, coherence.ScopeGlobal},
		{HRF, coherence.ScopeLocal, coherence.ScopeLocal},
		{HRF, coherence.ScopeGlobal, coherence.ScopeGlobal},
	}
	for _, c := range cases {
		if got := c.model.Effective(c.in); got != c.want {
			t.Errorf("%v.Effective(%v) = %v, want %v", c.model, c.in, got, c.want)
		}
	}
}

func TestString(t *testing.T) {
	if DRF.String() != "DRF" || HRF.String() != "HRF" {
		t.Fatal("model names wrong")
	}
}
