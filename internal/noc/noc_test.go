package noc

import (
	"testing"
	"testing/quick"

	"denovogpu/internal/energy"
	"denovogpu/internal/sim"
	"denovogpu/internal/stats"
)

type testPacket struct {
	src, dst NodeID
	port     Port
	class    stats.TrafficClass
	bytes    int
}

func (p testPacket) NocRoute() Route {
	return Route{Src: p.src, Dst: p.dst, Port: p.port, Class: p.class, PayloadBytes: p.bytes}
}

type collector struct {
	got []Packet
	at  []sim.Time
	eng *sim.Engine
}

func (c *collector) Deliver(p Packet) {
	c.got = append(c.got, p)
	c.at = append(c.at, c.eng.Now())
}

func newTestMesh() (*sim.Engine, *Mesh, *stats.Stats) {
	eng := sim.NewEngine(0)
	st := stats.New()
	return eng, New(eng, st, energy.NewMeter(st)), st
}

func TestHops(t *testing.T) {
	cases := []struct {
		a, b NodeID
		want int
	}{
		{0, 0, 0}, {0, 1, 1}, {0, 3, 3}, {0, 4, 1}, {0, 15, 6}, {5, 10, 2}, {3, 12, 6},
	}
	for _, c := range cases {
		if got := Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestHopsSymmetryProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		x, y := NodeID(a%Nodes), NodeID(b%Nodes)
		return Hops(x, y) == Hops(y, x) && Hops(x, y) <= 6 && Hops(x, x) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlits(t *testing.T) {
	cases := []struct{ bytes, want int }{
		{0, 1}, {8, 1}, {9, 2}, {24, 2}, {64, 5}, {4, 1},
	}
	for _, c := range cases {
		if got := Flits(c.bytes); got != c.want {
			t.Errorf("Flits(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestDeliveryAndLatency(t *testing.T) {
	eng, mesh, _ := newTestMesh()
	col := &collector{eng: eng}
	mesh.Attach(15, PortL2, col)
	p := testPacket{src: 0, dst: 15, port: PortL2, class: stats.TrafficRead, bytes: 0}
	eng.Schedule(0, func() { mesh.Send(p) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(col.got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(col.got))
	}
	want := MinLatency(0, 15, 0)
	if col.at[0] != want {
		t.Fatalf("unloaded latency = %d, want %d", col.at[0], want)
	}
}

func TestSameNodeDelivery(t *testing.T) {
	eng, mesh, st := newTestMesh()
	col := &collector{eng: eng}
	mesh.Attach(3, PortL1, col)
	eng.Schedule(0, func() {
		mesh.Send(testPacket{src: 3, dst: 3, port: PortL1, class: stats.TrafficAtomic, bytes: 8})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(col.got) != 1 {
		t.Fatal("same-node packet not delivered")
	}
	if st.TotalFlits() != 0 {
		t.Fatalf("same-node traffic crossed %d flits, want 0", st.TotalFlits())
	}
	if col.at[0] != InjectCycles+EjectCycles {
		t.Fatalf("same-node latency = %d, want %d", col.at[0], InjectCycles+EjectCycles)
	}
}

func TestFlitAccounting(t *testing.T) {
	eng, mesh, st := newTestMesh()
	col := &collector{eng: eng}
	mesh.Attach(15, PortL2, col)
	// 64-byte payload = 5 flits across 6 hops = 30 crossings.
	eng.Schedule(0, func() {
		mesh.Send(testPacket{src: 0, dst: 15, port: PortL2, class: stats.TrafficWBWT, bytes: 64})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := st.Flits[stats.TrafficWBWT]; got != 30 {
		t.Fatalf("WBWT crossings = %d, want 30", got)
	}
	if st.Flits[stats.TrafficRead] != 0 {
		t.Fatal("traffic booked under wrong class")
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	eng, mesh, _ := newTestMesh()
	col := &collector{eng: eng}
	mesh.Attach(1, PortL2, col)
	// Two 64-byte (5-flit) messages on the same link at the same time:
	// the second must arrive at least 5 cycles after the first.
	eng.Schedule(0, func() {
		mesh.Send(testPacket{src: 0, dst: 1, port: PortL2, class: stats.TrafficRead, bytes: 64})
		mesh.Send(testPacket{src: 0, dst: 1, port: PortL2, class: stats.TrafficRead, bytes: 64})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(col.at) != 2 {
		t.Fatalf("delivered %d, want 2", len(col.at))
	}
	if col.at[1] < col.at[0]+5 {
		t.Fatalf("no serialization: arrivals %d and %d", col.at[0], col.at[1])
	}
}

func TestOppositeLinksDoNotContend(t *testing.T) {
	eng, mesh, _ := newTestMesh()
	a := &collector{eng: eng}
	b := &collector{eng: eng}
	mesh.Attach(1, PortL1, a)
	mesh.Attach(0, PortL1, b)
	eng.Schedule(0, func() {
		mesh.Send(testPacket{src: 0, dst: 1, port: PortL1, class: stats.TrafficRead, bytes: 64})
		mesh.Send(testPacket{src: 1, dst: 0, port: PortL1, class: stats.TrafficRead, bytes: 64})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if a.at[0] != b.at[0] {
		t.Fatalf("opposite-direction messages interfered: %d vs %d", a.at[0], b.at[0])
	}
}

func TestUnattachedHandlerPanics(t *testing.T) {
	eng, mesh, _ := newTestMesh()
	defer func() {
		if recover() == nil {
			t.Fatal("send to unattached node should panic")
		}
	}()
	eng.Schedule(0, func() {
		mesh.Send(testPacket{src: 0, dst: 9, port: PortL1})
	})
	eng.Run()
}

// Property: every packet between random endpoints is delivered exactly
// once, and never earlier than the unloaded minimum latency.
func TestDeliveryProperty(t *testing.T) {
	f := func(pairs []struct{ A, B uint8 }) bool {
		if len(pairs) > 64 {
			pairs = pairs[:64]
		}
		eng, mesh, _ := newTestMesh()
		cols := make([]*collector, Nodes)
		for i := range cols {
			cols[i] = &collector{eng: eng}
			mesh.Attach(NodeID(i), PortL1, cols[i])
		}
		type sent struct {
			p  testPacket
			at sim.Time
		}
		var all []sent
		for i, pr := range pairs {
			p := testPacket{src: NodeID(pr.A % Nodes), dst: NodeID(pr.B % Nodes), port: PortL1, bytes: int(pr.A % 65)}
			at := sim.Time(i % 7)
			all = append(all, sent{p, at})
			eng.Schedule(at, func() { mesh.Send(p) })
		}
		if err := eng.Run(); err != nil {
			return false
		}
		total := 0
		for _, c := range cols {
			total += len(c.got)
		}
		if total != len(pairs) {
			return false
		}
		// Check min-latency bound per destination.
		for _, s := range all {
			c := cols[s.p.dst]
			found := false
			for i, got := range c.got {
				if got.(testPacket) == s.p && c.at[i] >= s.at+MinLatency(s.p.src, s.p.dst, s.p.bytes) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSamePairFIFO: messages between the same (src, dst) pair must be
// delivered in send order regardless of size — the coherence protocols'
// writeback race handling depends on this (XY routing uses one path, so
// real meshes provide it too).
func TestSamePairFIFO(t *testing.T) {
	eng, mesh, _ := newTestMesh()
	col := &collector{eng: eng}
	mesh.Attach(13, PortL1, col)
	var sent []testPacket
	eng.Schedule(0, func() {
		for i := 0; i < 20; i++ {
			p := testPacket{src: 2, dst: 13, port: PortL1, bytes: (i % 5) * 16}
			sent = append(sent, p)
			mesh.Send(p)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(col.got) != len(sent) {
		t.Fatalf("delivered %d, want %d", len(col.got), len(sent))
	}
	for i := range sent {
		if col.got[i].(testPacket) != sent[i] {
			t.Fatalf("reordered at %d: got %+v want %+v", i, col.got[i], sent[i])
		}
	}
	for i := 1; i < len(col.at); i++ {
		if col.at[i] < col.at[i-1] {
			t.Fatalf("arrival times not monotonic: %v", col.at)
		}
	}
}

// Property: same-pair FIFO holds for any mix of sizes and send times.
func TestSamePairFIFOProperty(t *testing.T) {
	f := func(sizes []uint8, gaps []uint8) bool {
		if len(sizes) == 0 || len(sizes) > 40 {
			return true
		}
		eng, mesh, _ := newTestMesh()
		col := &collector{eng: eng}
		mesh.Attach(9, PortL1, col)
		at := sim.Time(0)
		for i, sz := range sizes {
			p := testPacket{src: 4, dst: 9, port: PortL1, bytes: int(sz % 65), class: stats.TrafficClass(i % 4)}
			if i < len(gaps) {
				at += sim.Time(gaps[i] % 8)
			}
			eng.At(at, func() { mesh.Send(p) })
		}
		if err := eng.Run(); err != nil {
			return false
		}
		if len(col.got) != len(sizes) {
			return false
		}
		for i := 1; i < len(col.at); i++ {
			if col.at[i] < col.at[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSameNodeFIFO: a short message sent after a long one between
// co-located endpoints (empty route) must not overtake it — the
// regression behind a DeNovo writeback/registration race.
func TestSameNodeFIFO(t *testing.T) {
	eng, mesh, _ := newTestMesh()
	col := &collector{eng: eng}
	mesh.Attach(5, PortL2, col)
	long := testPacket{src: 5, dst: 5, port: PortL2, bytes: 64} // 5 flits
	short := testPacket{src: 5, dst: 5, port: PortL2, bytes: 0} // 1 flit
	eng.Schedule(0, func() {
		mesh.Send(long)
		mesh.Send(short)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(col.got) != 2 {
		t.Fatalf("delivered %d", len(col.got))
	}
	if col.got[0].(testPacket) != long || col.got[1].(testPacket) != short {
		t.Fatalf("same-node FIFO violated: first delivery %+v", col.got[0])
	}
}
