package noc

import (
	"testing"
	"testing/quick"

	"denovogpu/internal/energy"
	"denovogpu/internal/sim"
	"denovogpu/internal/stats"
)

// Corner-to-corner is the mesh's maximum-hop path (6 hops on a 4x4).
// Both diagonals, both directions, must achieve exactly the unloaded
// latency on an idle mesh.
func TestCornerToCornerLatency(t *testing.T) {
	corners := []struct{ a, b NodeID }{
		{0, 15}, {15, 0}, {3, 12}, {12, 3},
	}
	for _, c := range corners {
		eng, mesh, _ := newTestMesh()
		col := &collector{eng: eng}
		mesh.Attach(c.b, PortL2, col)
		p := testPacket{src: c.a, dst: c.b, port: PortL2, class: stats.TrafficRead, bytes: 64}
		eng.Schedule(0, func() { mesh.Send(p) })
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if Hops(c.a, c.b) != 6 {
			t.Fatalf("Hops(%d,%d) = %d, want the 6-hop maximum", c.a, c.b, Hops(c.a, c.b))
		}
		want := MinLatency(c.a, c.b, 64)
		if len(col.at) != 1 || col.at[0] != want {
			t.Errorf("%d->%d arrived at %v, want [%d]", c.a, c.b, col.at, want)
		}
	}
}

// XY routing resolves the X dimension first. Node 0 to node 5 must
// leave eastward (sharing node 0's east link with 0->1 traffic), not
// southward (it must not contend with 0->4 traffic).
func TestXYDimensionOrder(t *testing.T) {
	runPair := func(otherDst NodeID) (diag, other sim.Time) {
		eng, mesh, _ := newTestMesh()
		cd := &collector{eng: eng}
		co := &collector{eng: eng}
		mesh.Attach(5, PortL1, cd)
		mesh.Attach(otherDst, PortL1, co)
		eng.Schedule(0, func() {
			mesh.Send(testPacket{src: 0, dst: 5, port: PortL1, bytes: 64})
			mesh.Send(testPacket{src: 0, dst: otherDst, port: PortL1, bytes: 64})
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return cd.at[0], co.at[0]
	}

	// Sharing node 0's east link: the 0->1 message queues behind the
	// 5-flit diagonal message.
	if _, east := runPair(1); east == MinLatency(0, 1, 64) {
		t.Error("0->5 did not use node 0's east link first (not XY order)")
	}
	// Node 0's south link is untouched by the diagonal: 0->4 must be
	// unloaded.
	if _, south := runPair(4); south != MinLatency(0, 4, 64) {
		t.Error("0->5 contended with node 0's south link (YX order?)")
	}
}

// A link carries one flit per cycle: back-to-back same-link messages
// are spaced by exactly the flit count, pinning the busy-until model.
func TestLinkBusyUntilExactSpacing(t *testing.T) {
	eng, mesh, _ := newTestMesh()
	col := &collector{eng: eng}
	mesh.Attach(1, PortL2, col)
	flits := Flits(64) // 5
	eng.Schedule(0, func() {
		for i := 0; i < 3; i++ {
			mesh.Send(testPacket{src: 0, dst: 1, port: PortL2, class: stats.TrafficRead, bytes: 64})
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(col.at) != 3 {
		t.Fatalf("delivered %d, want 3", len(col.at))
	}
	base := MinLatency(0, 1, 64)
	for i, at := range col.at {
		want := base + sim.Time(i*flits)
		if at != want {
			t.Errorf("message %d arrived at %d, want %d (exact serialization)", i, at, want)
		}
	}
}

// Per-class accounting invariants over a random batch: every class's
// crossings equal the sum of flits x hops of that class's packets, the
// classes are fully separable, and NoC energy is exactly the flit-hop
// constant times total crossings.
func TestFlitAccountingInvariants(t *testing.T) {
	f := func(msgs []struct{ A, B, SZ, CL uint8 }) bool {
		if len(msgs) > 48 {
			msgs = msgs[:48]
		}
		eng, mesh, st := newTestMesh()
		cols := make([]*collector, Nodes)
		for i := range cols {
			cols[i] = &collector{eng: eng}
			mesh.Attach(NodeID(i), PortL1, cols[i])
		}
		var want [NumClassesForTest]uint64
		eng.Schedule(0, func() {
			for _, m := range msgs {
				p := testPacket{
					src:   NodeID(m.A % Nodes),
					dst:   NodeID(m.B % Nodes),
					port:  PortL1,
					class: stats.TrafficClass(m.CL % uint8(stats.NumTrafficClasses)),
					bytes: int(m.SZ % 65),
				}
				want[p.class] += uint64(Flits(p.bytes)) * uint64(Hops(p.src, p.dst))
				mesh.Send(p)
			}
		})
		if err := eng.Run(); err != nil {
			return false
		}
		var total uint64
		for c := stats.TrafficClass(0); c < stats.NumTrafficClasses; c++ {
			if st.Flits[c] != want[c] {
				return false
			}
			total += st.Flits[c]
		}
		if st.TotalFlits() != total {
			return false
		}
		// Crossings are the sole NoC energy source.
		const eps = 1e-6
		diff := st.EnergyPJ[stats.CompNoC] - energy.FlitHopPJ*float64(total)
		return diff < eps && diff > -eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// NumClassesForTest mirrors stats.NumTrafficClasses for the fixed-size
// accumulator above.
const NumClassesForTest = int(stats.NumTrafficClasses)
