// Package noc models the on-chip interconnect: a 4x4 mesh with XY
// dimension-order routing, per-link serialization, and flit-crossing
// accounting by message class — the quantity the paper's traffic
// figures report (it uses Garnet; we reproduce the same measurement).
//
// Timing model per message: the head flit pays an injection latency,
// then HopCycles per link; each link transmits one flit per cycle, so a
// message of F flits occupies each link on its path for F cycles and
// contends with other messages for that link; the tail arrives F-1
// cycles after the head, plus an ejection latency. This captures both
// the distance-dependent latency that produces the paper's Table 3
// latency ranges and the bursty-writethrough contention that its
// qualitative analysis (Table 2, "no bursty traffic") relies on.
package noc

import (
	"fmt"

	"denovogpu/internal/energy"
	"denovogpu/internal/obs"
	"denovogpu/internal/sim"
	"denovogpu/internal/stats"
)

// NodeID identifies a mesh node globally: device d owns nodes
// [d*Nodes, (d+1)*Nodes). Within a device, local nodes 0..14 are GPU
// CUs and local node 15 is the CPU/IO agent (the CPU core on device 0,
// the inter-device gateway on every device); every node also hosts one
// L2 bank. A single-device machine therefore keeps the historical
// numbering 0..15 exactly. The topology package maps between global
// and (device, local) forms.
type NodeID int

// Mesh geometry.
const (
	Width  = 4
	Height = 4
	Nodes  = Width * Height
)

// Timing parameters (cycles), chosen so achieved latencies land in the
// paper's Table 3 ranges (L2 hit 29-61, remote L1 35-83, memory
// 197-261); cmd/sweep -table3 validates this.
const (
	HopCycles    = 3 // per-link head latency (router + channel)
	InjectCycles = 2 // network interface injection
	EjectCycles  = 2 // network interface ejection
	FlitBytes    = 16
	HeaderBytes  = 8
)

// Port distinguishes the two endpoints co-located at each node.
type Port int

const (
	PortL1 Port = iota
	PortL2
	// PortGW is the inter-device gateway endpoint, present only on each
	// device's gateway node (topology.GatewayLocal). Cross-device
	// packets ride the local mesh to this port wrapped in an
	// interconnect leg, hop the inter-device link, and ride the remote
	// mesh from the remote gateway to their destination.
	PortGW
	numPorts
)

// Route is everything the mesh needs to carry a packet: addressing,
// traffic class, and payload size (which determines the flit count).
type Route struct {
	Src, Dst NodeID
	Port     Port
	Class    stats.TrafficClass
	// PayloadBytes is the data carried beyond the header.
	PayloadBytes int
}

// Packet is a routable message. The concrete message types live in the
// coherence package; the mesh needs only the Route. A single method
// returning a value struct keeps Send to one dynamic dispatch per
// packet — the earlier five-method interface cost five.
type Packet interface {
	NocRoute() Route
}

// Flits returns the number of flits needed for a payload of n bytes.
func Flits(n int) int {
	f := (HeaderBytes + n + FlitBytes - 1) / FlitBytes
	if f < 1 {
		f = 1
	}
	return f
}

// Handler receives delivered packets.
type Handler interface {
	Deliver(p Packet)
}

// Sender is the send side of an interconnect. Controllers hold a
// Sender rather than a concrete *Mesh so a multi-device machine can
// hand them the interconnect fabric (which routes device-local packets
// straight to the local mesh and cross-device packets over the
// inter-device link) without any protocol-level change.
type Sender interface {
	Send(p Packet)
}

// Network is what a controller needs from the interconnect at
// construction time: a Sender it can also attach its receive side to.
// Both *Mesh and the interconnect fabric implement it.
type Network interface {
	Sender
	Attach(n NodeID, p Port, h Handler)
}

// Tap observes every packet as it is sent (tracing/debugging hook).
type Tap interface {
	Packet(p Packet)
}

// Mesh is the interconnect for one device. A machine with D devices
// builds D meshes at bases 0, Nodes, 2*Nodes, ...; every mesh speaks
// global NodeIDs at its API (Attach, Send routes, LinkBusy) and maps
// them to its local node range internally, so protocol code is
// oblivious to which device's mesh it is talking to.
type Mesh struct {
	eng   *sim.Engine
	st    *stats.Stats
	meter *energy.Meter
	tap   Tap
	// base is the first global NodeID this mesh owns; it serves nodes
	// [base, base+Nodes). Zero for the single-device machine.
	base     NodeID
	handlers [Nodes][numPorts]Handler
	// linkFree[from][dir] is the first cycle the link is available.
	// Directions: 0=east 1=west 2=north 3=south.
	linkFree [Nodes][4]sim.Time
	// pairLast[src][dst] is the last delivery time between a pair,
	// enforcing point-to-point FIFO. Routed messages already deliver in
	// order (one XY path, per-link serialization), but same-node
	// messages have no links, so a short message could otherwise
	// overtake an earlier multi-flit one — which the coherence
	// protocols' writeback races must never see.
	pairLast [Nodes][Nodes]sim.Time
	sent     uint64

	// rec, when non-nil, receives one NoCFlitHop span per link claim
	// (track = LinkIndex, duration = the flit serialization window).
	rec *obs.Recorder
	// linkBusy[from][dir] counts cumulative flit-cycles each link has
	// been claimed for; the obs sampler differentiates it into per-link
	// utilization. Plain counter adds, so keeping it unconditionally is
	// free by the observability cost contract.
	linkBusy [Nodes][4]uint64

	// taskFree recycles delivery task payloads so steady-state Sends
	// schedule without allocating (the per-packet delivery closure was
	// ~10% of all simulation allocations).
	taskFree []*deliverTask
}

// deliverTask is the pooled payload of a delivery event.
type deliverTask struct {
	m *Mesh
	h Handler
	p Packet
}

// Run delivers the packet. The task frees itself before invoking the
// handler, so a Send issued from inside Deliver can reuse it.
func (t *deliverTask) Run() {
	m, h, p := t.m, t.h, t.p
	t.h, t.p = nil, nil
	m.taskFree = append(m.taskFree, t)
	h.Deliver(p)
}

// Link direction indices within linkFree/linkBusy.
var dirNames = [4]string{"east", "west", "north", "south"}

// LinkIndex flattens a (node, direction) pair into the obs track id used
// for NoCFlitHop events and link utilization columns.
func LinkIndex(n NodeID, dir int) int { return int(n)*4 + dir }

// LinkName returns a stable human-readable label for a link ("n03.east").
func LinkName(n NodeID, dir int) string {
	return fmt.Sprintf("n%02d.%s", int(n), dirNames[dir])
}

// New returns a mesh wired to the engine and measurement sinks,
// serving global nodes [0, Nodes) — the single-device geometry.
func New(eng *sim.Engine, st *stats.Stats, meter *energy.Meter) *Mesh {
	return &Mesh{eng: eng, st: st, meter: meter}
}

// NewAt returns a mesh serving the global node range
// [base, base+Nodes). base must be a multiple of Nodes.
func NewAt(eng *sim.Engine, st *stats.Stats, meter *energy.Meter, base NodeID) *Mesh {
	if int(base)%Nodes != 0 {
		panic(fmt.Sprintf("noc: mesh base %d is not a multiple of %d", base, Nodes))
	}
	return &Mesh{eng: eng, st: st, meter: meter, base: base}
}

// Base returns the first global NodeID this mesh owns.
func (m *Mesh) Base() NodeID { return m.base }

// local maps a global NodeID into this mesh's node range, panicking on
// a node it does not own (a routing bug, not a runtime condition).
func (m *Mesh) local(n NodeID) NodeID {
	l := n - m.base
	if l < 0 || l >= Nodes {
		panic(fmt.Sprintf("noc: node %d is outside mesh [%d,%d)", n, m.base, m.base+Nodes))
	}
	return l
}

// Attach registers the handler for a (global) node's port.
func (m *Mesh) Attach(n NodeID, p Port, h Handler) {
	m.handlers[m.local(n)][p] = h
}

// HandlerAt returns the handler attached at a (global) node's port,
// nil if none. The interconnect fabric uses it to hand a cross-device
// packet's final delivery to the same endpoint a local send would hit.
func (m *Mesh) HandlerAt(n NodeID, p Port) Handler {
	return m.handlers[m.local(n)][p]
}

// SetTap installs a packet observer (nil to remove).
func (m *Mesh) SetTap(t Tap) { m.tap = t }

// SetRecorder installs an obs recorder (nil to disable) and names every
// link track so Perfetto shows one lane per mesh link.
func (m *Mesh) SetRecorder(rec *obs.Recorder) {
	m.rec = rec
	for n := NodeID(0); n < Nodes; n++ {
		for dir := 0; dir < 4; dir++ {
			g := m.base + n
			rec.NameTrack(obs.DomainNoC, int32(LinkIndex(g, dir)), LinkName(g, dir))
		}
	}
}

// LinkBusy returns the cumulative flit-cycles link (n, dir) has been
// claimed for (monotone; sample and differentiate for utilization).
// n is a global NodeID owned by this mesh.
func (m *Mesh) LinkBusy(n NodeID, dir int) uint64 { return m.linkBusy[m.local(n)][dir] }

// Sent returns the number of packets sent, a determinism diagnostic.
func (m *Mesh) Sent() uint64 { return m.sent }

func xy(n NodeID) (x, y int) { return int(n) % Width, int(n) / Width }

// Hops returns the XY-route hop count between two nodes. The nodes
// must share a device mesh; because mesh bases are multiples of Nodes
// (and Nodes is a multiple of Width), same-device global NodeIDs give
// the same answer as their local counterparts.
func Hops(a, b NodeID) int {
	ax, ay := xy(a)
	bx, by := xy(b)
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Send routes p through the mesh and delivers it to the destination
// handler. Statistics (flit crossings by class) and NoC energy are
// recorded per link traversed. Send panics if no handler is attached at
// the destination: that is a wiring bug, not a runtime condition.
func (m *Mesh) Send(p Packet) {
	r := p.NocRoute()
	src, dst := m.local(r.Src), m.local(r.Dst)
	h := m.handlers[dst][r.Port]
	if h == nil {
		panic(fmt.Sprintf("noc: no handler attached at node %d port %d", r.Dst, r.Port))
	}
	m.sent++
	if m.tap != nil {
		m.tap.Packet(p)
	}
	flits := Flits(r.PayloadBytes)

	crossings := uint64(flits) * uint64(Hops(src, dst))
	if crossings > 0 {
		m.st.AddFlits(r.Class, crossings)
		m.meter.FlitHops(crossings)
	}

	// Walk the XY route in place (X dimension fully resolved, then Y),
	// claiming each link as the head flit reaches it; this is the
	// materialized path an earlier version allocated per Send.
	t := m.eng.Now() + InjectCycles
	cx, cy := xy(src)
	bx, by := xy(dst)
	for cx != bx || cy != by {
		var dir, nx, ny int
		switch {
		case cx < bx:
			dir, nx, ny = 0, cx+1, cy // east
		case cx > bx:
			dir, nx, ny = 1, cx-1, cy // west
		case cy < by:
			dir, nx, ny = 3, cx, cy+1 // south (increasing y)
		default:
			dir, nx, ny = 2, cx, cy-1 // north
		}
		node := NodeID(cy*Width + cx)
		free := m.linkFree[node][dir]
		if free > t {
			t = free
		}
		m.linkFree[node][dir] = t + sim.Time(flits)
		m.linkBusy[node][dir] += uint64(flits)
		if m.rec != nil {
			m.rec.EmitAt(obs.NoCFlitHop, int32(LinkIndex(m.base+node, dir)), uint64(flits), uint64(t), uint64(flits))
		}
		t += HopCycles
		cx, cy = nx, ny
	}
	t += sim.Time(flits-1) + EjectCycles
	if last := m.pairLast[src][dst]; t < last {
		t = last // same-cycle deliveries keep send order (event FIFO)
	}
	m.pairLast[src][dst] = t
	var task *deliverTask
	if n := len(m.taskFree); n > 0 {
		task = m.taskFree[n-1]
		m.taskFree[n-1] = nil
		m.taskFree = m.taskFree[:n-1]
	} else {
		task = &deliverTask{m: m}
	}
	task.h, task.p = h, p
	m.eng.AtTask(t, task)
}

// MinLatency returns the unloaded head-to-tail latency for a payload of
// n bytes between two nodes (used by tests and the Table 3 validation).
func MinLatency(a, b NodeID, payloadBytes int) sim.Time {
	return sim.Time(InjectCycles + Hops(a, b)*HopCycles + Flits(payloadBytes) - 1 + EjectCycles)
}
